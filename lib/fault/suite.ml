module Bitvec = Dfv_bitvec.Bitvec
module Pair = Dfv_core.Pair
module Txn_engine = Dfv_cosim.Txn_engine
module Scoreboard = Dfv_cosim.Scoreboard
open Dfv_designs

let names =
  [ "alu"; "fir"; "gcd"; "chain.brightness"; "chain.convolution";
    "chain.threshold"; "memsys" ]

let chain_block = function
  | "chain.brightness" -> Image_chain.Brightness
  | "chain.convolution" -> Image_chain.Convolution
  | "chain.threshold" -> Image_chain.Threshold
  | n -> failwith ("not a chain block: " ^ n)

(* The memsys harness: tagged requests through the transaction engine,
   checked by an out-of-order scoreboard against the zero-delay SLM.
   Returns true when the harness flags the (mutated) RTL — by data/tag
   mismatch, by stray completions, or by the engine running out of
   cycles with transactions still in flight. *)
let memsys_subject () =
  let c = Memsys.default_config in
  let requests =
    List.init 16 (fun i ->
        if i < 4 then { Memsys.req_tag = i; op = Memsys.Write (i * 16, (i * 7) + 1) }
        else { Memsys.req_tag = i; op = Memsys.Read ((i mod 8) * 16) })
  in
  let check rtl' =
    match
      Txn_engine.run ~rtl:rtl' ~iface:(Memsys.iface c ~ready:false)
        ~requests:(Memsys.to_engine_requests c requests) ()
    with
    | exception Txn_engine.Engine_error _ -> true
    | completions, _ ->
      let sb = Scoreboard.create Scoreboard.Out_of_order in
      let slm = Memsys.Slm.create c in
      List.iteri
        (fun i (tag, data) ->
          Scoreboard.expect sb
            ~tag:(Bitvec.create ~width:c.Memsys.tag_width tag)
            ~cycle:i
            (Bitvec.create ~width:c.Memsys.data_width data))
        (Memsys.Slm.execute_all slm requests);
      List.iter
        (fun (cp : Txn_engine.completion) ->
          Scoreboard.observe sb ~tag:cp.Txn_engine.c_tag
            ~cycle:cp.Txn_engine.c_cycle cp.Txn_engine.c_data)
        completions;
      not (Scoreboard.ok (Scoreboard.report sb))
  in
  Campaign.Cosim
    { co_name = "memsys"; co_rtl = Memsys.rtl_simple c; co_check = check }

let subject name =
  match name with
  | "alu" ->
    let t = Alu.make ~width:8 () in
    Campaign.Sec_pair
      (Pair.create ~name:"alu" ~slm:t.Alu.slm ~rtl:t.Alu.rtl ~spec:t.Alu.spec)
  | "fir" ->
    let t = Fir.make ~taps:[ 3; -5; 7; 2 ] () in
    Campaign.Sec_pair
      (Pair.create ~name:"fir" ~slm:t.Fir.slm_exact ~rtl:t.Fir.rtl
         ~spec:t.Fir.spec)
  | "gcd" ->
    let t = Gcd.make ~width:4 in
    Campaign.Sec_pair
      (Pair.create ~name:"gcd" ~slm:t.Gcd.slm ~rtl:t.Gcd.rtl ~spec:t.Gcd.spec)
  | "chain.brightness" | "chain.convolution" | "chain.threshold" ->
    let t = Image_chain.make () in
    let b = chain_block name in
    Campaign.Sec_pair
      (Pair.create ~name ~slm:(Image_chain.block_slm t b)
         ~rtl:(Image_chain.block_rtl t b)
         ~spec:(Image_chain.block_spec b))
  | "memsys" -> memsys_subject ()
  | n -> failwith (Printf.sprintf "unknown faultsim design %s" n)

let run ?budget ?(seed = 0) ?sim_vectors ?max_rtl_faults ?max_slm_faults
    ?(designs = names) () =
  List.map
    (fun name ->
      Campaign.run ?budget ?sim_vectors ~seed ?max_rtl_faults ?max_slm_faults
        (subject name))
    designs

let default_min_rate = 0.95

let gate ?(min_rate = default_min_rate) reports =
  let rate = Campaign.detection_rate reports in
  let false_eq = Campaign.false_equivalents reports in
  (rate, false_eq, rate >= min_rate && false_eq = 0)
