module Bitvec = Dfv_bitvec.Bitvec
module Pair = Dfv_core.Pair
module Txn_engine = Dfv_cosim.Txn_engine
module Scoreboard = Dfv_cosim.Scoreboard
open Dfv_designs

let names =
  [ "alu"; "fir"; "gcd"; "chain.brightness"; "chain.convolution";
    "chain.threshold"; "memsys" ]

let chain_block = function
  | "chain.brightness" -> Image_chain.Brightness
  | "chain.convolution" -> Image_chain.Convolution
  | "chain.threshold" -> Image_chain.Threshold
  | n -> failwith ("not a chain block: " ^ n)

let memsys_requests () =
  List.init 16 (fun i ->
      if i < 4 then { Memsys.req_tag = i; op = Memsys.Write (i * 16, (i * 7) + 1) }
      else { Memsys.req_tag = i; op = Memsys.Read ((i mod 8) * 16) })

(* One pass of the memsys harness over a (possibly mutated) RTL: issue
   the tagged requests through the transaction engine and score the
   completions against the zero-delay SLM with an out-of-order
   scoreboard. *)
let memsys_run c requests rtl ?on_cycle () =
  match
    Txn_engine.run ~rtl ~iface:(Memsys.iface c ~ready:false)
      ~requests:(Memsys.to_engine_requests c requests) ?on_cycle ()
  with
  | exception Txn_engine.Engine_error m -> Error m
  | completions, cycles ->
    let sb = Scoreboard.create Scoreboard.Out_of_order in
    let slm = Memsys.Slm.create c in
    List.iteri
      (fun i (tag, data) ->
        Scoreboard.expect sb
          ~tag:(Bitvec.create ~width:c.Memsys.tag_width tag)
          ~cycle:i
          (Bitvec.create ~width:c.Memsys.data_width data))
      (Memsys.Slm.execute_all slm requests);
    List.iter
      (fun (cp : Txn_engine.completion) ->
        Scoreboard.observe sb ~tag:cp.Txn_engine.c_tag
          ~cycle:cp.Txn_engine.c_cycle cp.Txn_engine.c_data)
      completions;
    Ok (Scoreboard.report sb, completions, cycles)

(* The memsys harness as a campaign subject.  [check] returns true when
   the harness flags the (mutated) RTL — by data/tag mismatch, by stray
   completions, or by the engine running out of cycles with
   transactions still in flight. *)
let memsys_subject () =
  let c = Memsys.default_config in
  let requests = memsys_requests () in
  let check rtl' =
    match memsys_run c requests rtl' () with
    | Error _ -> true
    | Ok (report, _, _) -> not (Scoreboard.ok report)
  in
  Campaign.Cosim
    { co_name = "memsys"; co_rtl = Memsys.rtl_simple c; co_check = check }

(* Seed a fault into the memsys RTL, reproduce the resulting scoreboard
   miscompare, and package the evidence as a triage bundle: the first
   enumerated mutant the harness actually flags with a data mismatch is
   run twice — once to locate the failure cycle, once more with a VCD
   window dumped around it. *)
let memsys_triage ?(seed = 0) ?(max_faults = 32) () =
  let c = Memsys.default_config in
  let requests = memsys_requests () in
  let rtl = Memsys.rtl_simple c in
  let iface = Memsys.iface c ~ready:false in
  let rec first_miscompare = function
    | [] -> None
    | f :: rest -> (
      let rtl' = f.Fault.rf_apply rtl in
      match memsys_run c requests rtl' () with
      | Ok (report, _, _) when report.Scoreboard.mismatches <> [] ->
        Some (f, rtl', report)
      | Ok _ | Error _ -> first_miscompare rest)
  in
  match first_miscompare (Fault.enumerate_rtl ~seed ~max_faults rtl) with
  | None -> None
  | Some (f, rtl', report) ->
    let mm = List.hd report.Scoreboard.mismatches in
    let window = (max 0 (mm.Scoreboard.at_cycle - 4), mm.Scoreboard.at_cycle + 4)
    in
    let buf = Buffer.create 1024 in
    let vcd = ref None in
    let on_cycle sim cycle =
      let writer =
        match !vcd with
        | Some w -> w
        | None ->
          let w = Dfv_rtl.Vcd.create buf rtl' sim in
          vcd := Some w;
          w
      in
      let lo, hi = window in
      if cycle >= lo && cycle <= hi then Dfv_rtl.Vcd.sample writer
    in
    ignore (memsys_run c requests rtl' ~on_cycle ());
    let txn_index =
      match mm.Scoreboard.tag with
      | None -> None
      | Some tag ->
        let ti = Bitvec.to_int tag in
        let rec index i = function
          | [] -> None
          | r :: _ when r.Memsys.req_tag = ti -> Some i
          | _ :: rest -> index (i + 1) rest
        in
        index 0 requests
    in
    let stimulus =
      List.mapi
        (fun i r ->
          ( Printf.sprintf "req%02d" i,
            match r.Memsys.op with
            | Memsys.Read a -> Printf.sprintf "tag=%d read addr=%d" r.Memsys.req_tag a
            | Memsys.Write (a, d) ->
              Printf.sprintf "tag=%d write addr=%d data=%d" r.Memsys.req_tag a d ))
        requests
    in
    let failures =
      List.map
        (fun (m : Scoreboard.mismatch) ->
          {
            Dfv_obs.Triage.f_port = iface.Txn_engine.resp_data;
            f_cycle = m.Scoreboard.at_cycle;
            f_expected = Option.map Bitvec.to_string m.Scoreboard.expected;
            f_got = Bitvec.to_string m.Scoreboard.observed;
          })
        report.Scoreboard.mismatches
    in
    Some
      (Dfv_obs.Triage.make ~design:"memsys" ~kind:"scoreboard-miscompare"
         ?txn_index ~stimulus ~failures ~vcd:(Buffer.contents buf)
         ~vcd_window:window
         ~notes:
           [ Printf.sprintf "injected fault: %s (%s at %s)" f.Fault.rf_name
               f.Fault.rf_class f.Fault.rf_site;
             Printf.sprintf "%d matched, %d mismatches, %d unconsumed"
               report.Scoreboard.matched
               (List.length report.Scoreboard.mismatches)
               report.Scoreboard.unconsumed ]
         ())

let subject name =
  match name with
  | "alu" ->
    let t = Alu.make ~width:8 () in
    Campaign.Sec_pair
      (Pair.create ~name:"alu" ~slm:t.Alu.slm ~rtl:t.Alu.rtl ~spec:t.Alu.spec)
  | "fir" ->
    let t = Fir.make ~taps:[ 3; -5; 7; 2 ] () in
    Campaign.Sec_pair
      (Pair.create ~name:"fir" ~slm:t.Fir.slm_exact ~rtl:t.Fir.rtl
         ~spec:t.Fir.spec)
  | "gcd" ->
    let t = Gcd.make ~width:4 in
    Campaign.Sec_pair
      (Pair.create ~name:"gcd" ~slm:t.Gcd.slm ~rtl:t.Gcd.rtl ~spec:t.Gcd.spec)
  | "chain.brightness" | "chain.convolution" | "chain.threshold" ->
    let t = Image_chain.make () in
    let b = chain_block name in
    Campaign.Sec_pair
      (Pair.create ~name ~slm:(Image_chain.block_slm t b)
         ~rtl:(Image_chain.block_rtl t b)
         ~spec:(Image_chain.block_spec b))
  | "memsys" -> memsys_subject ()
  | n -> failwith (Printf.sprintf "unknown faultsim design %s" n)

let run ?budget ?(seed = 0) ?sim_vectors ?engine ?jobs ?timeout ?deadline
    ?journal ?pool ?exec ?max_rtl_faults ?max_slm_faults ?progress
    ?(designs = names) () =
  (* One absolute deadline across the whole suite: later campaigns see
     whatever window the earlier ones left. *)
  let deadline_at =
    Option.map (fun d -> Unix.gettimeofday () +. d) deadline
  in
  List.map
    (fun name ->
      Campaign.run ?budget ?sim_vectors ~seed ?engine ?jobs ?timeout
        ?deadline_at ?journal ?pool ?exec ?max_rtl_faults ?max_slm_faults
        ?progress (subject name))
    designs

(* The canonical configuration key a suite journal is bound to: every
   knob that can change a verdict.  [jobs], [timeout], [deadline],
   [pool] and [exec] are deliberately absent — parallelism and executor
   choice never change verdicts (the {!Dfv_par.Pool.job_seed}
   guarantee), and timeout/deadline casualties are never journaled, so
   a resume may pick different values for all five. *)
let campaign_key ~budget ~seed ~sim_vectors ~engine ~max_rtl_faults
    ~max_slm_faults ~designs =
  let budget_key =
    match budget with
    | None -> "-"
    | Some b ->
      Printf.sprintf "c=%s,s=%s"
        (match b.Dfv_sat.Solver.max_conflicts with
        | Some c -> string_of_int c
        | None -> "-")
        (match b.Dfv_sat.Solver.max_seconds with
        | Some s -> Printf.sprintf "%g" s
        | None -> "-")
  in
  Printf.sprintf
    "faultsim|designs=%s|seed=%d|vectors=%d|engine=%s|max_rtl=%d|max_slm=%d|budget=%s"
    (String.concat "," designs) seed sim_vectors
    (match engine with
    | None -> "auto"
    | Some `Compiled -> "compiled"
    | Some `Interp -> "interp")
    max_rtl_faults max_slm_faults budget_key

let default_min_rate = 0.95

let gate ?(min_rate = default_min_rate) reports =
  let rate = Campaign.detection_rate reports in
  let false_eq = Campaign.false_equivalents reports in
  (rate, false_eq, rate >= min_rate && false_eq = 0)
