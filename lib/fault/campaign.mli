(** Mutation campaigns: score the verifier against injected faults.

    A campaign takes one verification subject, derives a set of single-
    fault mutants, pushes every mutant through the verification flow it
    would normally face — SEC for design pairs, the transactor-based
    co-simulation harness for cosim subjects — and classifies the
    verdicts.  The quality bar from the issue: every activatable fault
    must be {e detected} (counterexample, localized to the faulty cone)
    or end in a {e justified unknown}; a [False_equivalent] — the
    prover signing off on a fault that simulation can expose — is the
    fatal outcome the campaign exists to find.

    Each mutant runs inside {!Dfv_core.Dfv_error.guard} with its own
    SAT budget, so one crashing or diverging mutant degrades to a
    recorded verdict and the rest of the campaign still runs.  With
    [jobs > 1] (or a [timeout]) mutants additionally run in forked
    worker processes via {!Dfv_par.Pool}, upgrading that isolation to
    the process level: a segfaulting or OOM-killed mutant becomes
    [Crashed], a wall-clock-exceeded one becomes [Unknown], and the
    campaign completes either way.  Verdicts are independent of [jobs]:
    mutants are enumerated in the parent and each mutant's simulation
    seed is a pure function of the campaign seed and its index
    ({!Dfv_par.Pool.job_seed}). *)

type subject =
  | Sec_pair of Dfv_core.Pair.t
      (** verified by SEC with a simulation cross-check on Equivalent *)
  | Cosim of {
      co_name : string;
      co_rtl : Dfv_rtl.Netlist.elaborated;
      co_check : Dfv_rtl.Netlist.elaborated -> bool;
          (** the harness; returns true when it flags the mutated RTL.
              May raise — engine errors are recorded via the taxonomy. *)
    }

type mutant =
  | Rtl_mutant of Fault.rtl_fault
  | Slm_mutant of Fault.slm_fault
  | Custom_mutant of { cm_name : string; cm_run : unit -> bool }
      (** escape hatch for qualifying the campaign itself (e.g. a
          deliberately crashing mutant); [cm_run] returning true means
          detected *)

type verdict =
  | Detected of { engine : string; seconds : float; localized : bool option }
      (** [localized]: for RTL faults detected by SEC, whether the
          fault site lies in the fan-in cone of the failing check's
          port; [None] when localization does not apply *)
  | Survived of { seconds : float }
      (** SEC equivalent and simulation clean: not proven activatable
          (excluded from the detection-rate denominator) *)
  | False_equivalent of { seconds : float }
      (** SEC equivalent but simulation found a mismatch — a verifier
          soundness bug *)
  | Unknown of { reason : string; seconds : float }  (** justified *)
  | Crashed of Dfv_core.Dfv_error.t
      (** the flow failed on this mutant; recorded, campaign continues *)

type mutant_result = {
  m_name : string;
  m_class : string;
  m_site : string;
  verdict : verdict;
}

type report = {
  r_subject : string;
  r_total : int;
  r_detected : int;
  r_survived : int;
  r_unknown : int;
  r_crashed : int;
  r_false_eq : int;
  r_mislocalized : int;
      (** detected, but the cex was not localized to the faulty cone *)
  r_shed : int;
      (** mutants shed to [Unknown] by the deadline sentinel — a subset
          of [r_unknown], and never silent: {!pp_report} and the JSON
          report both carry the count *)
  r_wall : float;
  r_results : mutant_result list;
}

val run :
  ?budget:Dfv_sat.Solver.budget ->
  ?sim_vectors:int ->
  ?seed:int ->
  ?engine:Dfv_hwir.Exec.engine ->
  ?jobs:int ->
  ?timeout:float ->
  ?deadline_at:float ->
  ?journal:Dfv_par.Journal.t ->
  ?pool:bool ->
  ?exec:Dfv_par.Pool.exec_mode ->
  ?max_rtl_faults:int ->
  ?max_slm_faults:int ->
  ?extra_mutants:mutant list ->
  ?progress:bool ->
  subject ->
  report
(** Run the campaign.  [budget] (per mutant) bounds each SEC query;
    [sim_vectors] (default 400) sizes the cross-check simulation and
    [engine] selects its SLM execution engine (see {!Dfv_core.Flow.simulate});
    [max_rtl_faults] (default 16) / [max_slm_faults] (default 8) bound
    the mutant population per subject.

    [jobs] (default 1) bounds concurrent mutant workers; any value
    above 1 — or any [timeout] — switches to forked per-mutant workers
    ({!Dfv_par.Pool.map}) with identical verdicts, and [pool] overrides
    that rule in either direction (the CLI forces [pool:true] for an
    explicit [--jobs], and [pool:false] on 1-core hosts where forking
    only adds overhead).  [exec] (default [`Fork]) selects the pooled
    executor — the fork pool, the in-process domains executor, or
    adaptive dispatch between them (see {!Dfv_par.Dpool.map_auto};
    verdicts are byte-identical either way, and [`Domains] with a
    [timeout] is an error).  [timeout] is the per-mutant wall-clock
    budget in seconds: an expired mutant is killed and recorded as
    [Unknown] (budget-like), while a worker that dies is recorded as
    [Crashed].

    [journal] makes the campaign durable: each completed mutant verdict
    is appended (fsync'd) as it lands, keyed by a structural mutant
    fingerprint, and mutants already present in the journal are
    {e replayed} instead of re-run — verdicts are exact wire-form
    round-trips, so a resumed report is byte-identical to an
    uninterrupted one (timings aside).  Pool-level failures
    (crash/timeout/interruption) and shed placeholders are never
    journaled; they re-run on resume.

    [deadline_at] (absolute [Unix.gettimeofday] time) arms the
    graceful-degradation sentinel: mutants starting past the halfway
    point of the window run with linearly shrunk solver budgets, and
    mutants starting past the deadline are shed to [Unknown] (counted
    in [r_shed]) instead of the campaign dying.

    If {!Dfv_par.Pool.request_stop} fires (the CLI's SIGINT/SIGTERM
    handlers), remaining mutants are marked [Unknown "interrupted"]
    without running and the campaign returns promptly.

    [progress] (default false) drives a live {!Dfv_par.Progress} line
    on stderr — completion, rate, ETA, time to [deadline_at], and
    per-verdict tallies — stepping on every finished (or replayed, or
    shed) mutant; it renders only when stderr is a TTY. *)

val result_to_json : mutant_result -> Dfv_obs.Json.t
(** The exact wire form of one mutant result — the payload a pool
    worker ships back over its pipe.  Unlike {!json_of_reports} (a
    human-facing report), this round-trips through {!result_of_json}
    losslessly, keeping [Crashed] errors structured. *)

val result_of_json : Dfv_obs.Json.t -> (mutant_result, string) result

val detection_rate : report list -> float
(** [detected / (detected + false_equivalent + crashed)] across the
    reports — survivors and justified unknowns are excluded because
    they were never proven activatable.  1.0 when nothing qualifies. *)

val false_equivalents : report list -> int

val verdict_label : verdict -> string
(** ["detected"], ["survived"], ["false-equivalent"], ["unknown"] or
    ["crashed"]. *)

val pp_report : Format.formatter -> report -> unit

val json_of_reports : min_rate:float -> report list -> string
(** The machine-readable campaign report: overall rate and gate plus
    per-subject, per-fault verdicts, rendered via {!Dfv_obs.Json} under
    the common envelope [{"schema":"dfv-faultsim","version":1,...}]. *)
