(** Fault models over RTL netlists and HWIR system-level models.

    Mutation-based qualification of the verifier: a fault is a small,
    type- and width-preserving rewrite of one design — a stuck-at on a
    net, a flipped register bit, a substituted operator, an off-by-one
    constant.  Driving each mutant through SEC and co-simulation and
    demanding a counterexample (or a justified unknown, never a false
    equivalence) measures whether the verification environment would
    actually catch a bug of that shape.

    Faults are represented as named [apply] functions so a campaign can
    materialize one mutant at a time without copying the design list. *)

type rtl_fault = {
  rf_name : string;  (** unique descriptor, e.g. ["sa0:acc"] *)
  rf_class : string;
      (** one of ["stuck-at-0"], ["stuck-at-1"], ["op-subst"],
          ["const-off-by-one"], ["reg-init-flip"], ["reg-next-flip"] *)
  rf_site : string;  (** the wire/output/register the fault lives on *)
  rf_apply : Dfv_rtl.Netlist.elaborated -> Dfv_rtl.Netlist.elaborated;
}

type slm_fault = {
  sf_name : string;
  sf_class : string;
      (** ["op-subst"], ["const-off-by-one"], ["cond-negate"],
          ["branch-swap"] *)
  sf_site : string;  (** the HWIR function containing the mutation *)
  sf_apply : Dfv_hwir.Ast.program -> Dfv_hwir.Ast.program;
}

val enumerate_rtl :
  ?seed:int -> ?max_faults:int -> Dfv_rtl.Netlist.elaborated -> rtl_fault list
(** All single-site structural faults of the supported classes, sampled
    down to [max_faults] (default 24) with class-stratified round-robin
    so no class is starved.  Every fault is width-preserving: the
    mutated netlist still satisfies the original width closure. *)

val enumerate_slm :
  ?seed:int -> ?max_faults:int -> Dfv_hwir.Ast.program -> slm_fault list
(** Single-site semantic mutations of the SLM, type-preserving so the
    mutant still typechecks and stays conditioned (default
    [max_faults] 12). *)

val cone : Dfv_rtl.Netlist.elaborated -> output:string -> string -> bool
(** [cone rtl ~output site] is true when [site] (a wire, register,
    memory or input name — or the output itself) lies in the fan-in
    cone of [output].  Used to check that a counterexample is localized
    to the faulty logic. *)
