(** The fault-robustness suite over the bundled designs.

    One campaign per design: SEC-driven pairs for alu, fir, gcd and the
    three image-chain blocks, and the transactor/scoreboard harness for
    the memory subsystem (whose SLM is plain OCaml, so SEC does not
    apply).  The suite gate is the acceptance bar from the issue: a
    detection rate of at least {!default_min_rate} over activatable
    faults and zero false-equivalent verdicts. *)

val names : string list
(** Subject names accepted by [?designs]: alu, fir, gcd,
    chain.brightness, chain.convolution, chain.threshold, memsys. *)

val run :
  ?budget:Dfv_sat.Solver.budget ->
  ?seed:int ->
  ?sim_vectors:int ->
  ?engine:Dfv_hwir.Exec.engine ->
  ?jobs:int ->
  ?timeout:float ->
  ?deadline:float ->
  ?journal:Dfv_par.Journal.t ->
  ?pool:bool ->
  ?exec:Dfv_par.Pool.exec_mode ->
  ?max_rtl_faults:int ->
  ?max_slm_faults:int ->
  ?progress:bool ->
  ?designs:string list ->
  unit ->
  Campaign.report list
(** Run the campaigns ([designs] defaults to all of {!names}; raises
    [Failure] on an unknown name).  [jobs]/[timeout]/[pool] select the
    per-mutant worker pool inside each campaign and [exec] (default
    [`Fork]) which executor backs it (fork processes, in-process
    domains, or adaptive dispatch — see {!Dfv_par.Dpool.map_auto});
    [journal] makes every campaign durable/resumable, [deadline]
    (seconds, one budget across the whole suite) arms the degradation
    sentinel, and [progress] renders a live per-campaign progress line
    on a TTY stderr — see {!Campaign.run}. *)

val campaign_key :
  budget:Dfv_sat.Solver.budget option ->
  seed:int ->
  sim_vectors:int ->
  engine:Dfv_hwir.Exec.engine option ->
  max_rtl_faults:int ->
  max_slm_faults:int ->
  designs:string list ->
  string
(** The canonical configuration key to open a suite journal under
    ({!Dfv_par.Journal.open_} fingerprints it): exactly the knobs that
    can change verdicts.  [jobs]/[timeout]/[deadline]/[exec] are
    excluded on purpose — a campaign may be resumed at a different
    parallelism, on a different executor, or under different pressure
    without invalidating its journal. *)

val default_min_rate : float
(** 0.95. *)

val gate : ?min_rate:float -> Campaign.report list -> float * int * bool
(** [(detection_rate, false_equivalents, pass)] where [pass] requires
    rate >= min_rate (default {!default_min_rate}) and zero false
    equivalents. *)

val memsys_triage :
  ?seed:int -> ?max_faults:int -> unit -> Dfv_obs.Triage.t option
(** Force a memsys scoreboard miscompare and triage it: inject the first
    enumerated RTL fault (from [seed], scanning at most [max_faults],
    default 32) that the transactor/scoreboard harness flags with a data
    mismatch, then re-run the failing workload dumping a VCD window ±4
    cycles around the first mismatch.  The bundle names the injected
    fault, the failing transaction, the full request stimulus, and every
    scoreboard mismatch.  [None] if no enumerated fault produces a
    miscompare (the harness only sees engine timeouts). *)
