module Pair = Dfv_core.Pair
module Flow = Dfv_core.Flow
module Dfv_error = Dfv_core.Dfv_error
module Checker = Dfv_sec.Checker
module Spec = Dfv_sec.Spec
module Solver = Dfv_sat.Solver
module Pool = Dfv_par.Pool

type subject =
  | Sec_pair of Pair.t
  | Cosim of {
      co_name : string;
      co_rtl : Dfv_rtl.Netlist.elaborated;
      co_check : Dfv_rtl.Netlist.elaborated -> bool;
    }

type mutant =
  | Rtl_mutant of Fault.rtl_fault
  | Slm_mutant of Fault.slm_fault
  | Custom_mutant of { cm_name : string; cm_run : unit -> bool }

type verdict =
  | Detected of { engine : string; seconds : float; localized : bool option }
  | Survived of { seconds : float }
  | False_equivalent of { seconds : float }
  | Unknown of { reason : string; seconds : float }
  | Crashed of Dfv_error.t

type mutant_result = {
  m_name : string;
  m_class : string;
  m_site : string;
  verdict : verdict;
}

type report = {
  r_subject : string;
  r_total : int;
  r_detected : int;
  r_survived : int;
  r_unknown : int;
  r_crashed : int;
  r_false_eq : int;
  r_mislocalized : int;
  r_shed : int;
  r_wall : float;
  r_results : mutant_result list;
}

let mutant_name = function
  | Rtl_mutant f -> f.Fault.rf_name
  | Slm_mutant f -> f.Fault.sf_name
  | Custom_mutant c -> c.cm_name

let mutant_class = function
  | Rtl_mutant f -> f.Fault.rf_class
  | Slm_mutant f -> "slm:" ^ f.Fault.sf_class
  | Custom_mutant _ -> "custom"

let mutant_site = function
  | Rtl_mutant f -> f.Fault.rf_site
  | Slm_mutant f -> f.Fault.sf_site
  | Custom_mutant c -> c.cm_name

let reason_string = function
  | Solver.Conflict_limit -> "conflict budget exhausted"
  | Solver.Time_limit -> "time budget exhausted"

(* --- wire form ---------------------------------------------------------

   The per-mutant result as it crosses a worker pipe (see {!Pool.map}).
   Distinct from the report JSON below: this one round-trips exactly,
   keeping [Crashed] as a structured taxonomy value rather than a
   flattened string. *)

module Json = Dfv_obs.Json

let verdict_to_json = function
  | Detected { engine; seconds; localized } ->
    Json.Obj
      ([ ("kind", Json.String "detected");
         ("engine", Json.String engine);
         ("seconds", Json.Float seconds) ]
      @ match localized with
        | Some l -> [ ("localized", Json.Bool l) ]
        | None -> [])
  | Survived { seconds } ->
    Json.Obj [ ("kind", Json.String "survived"); ("seconds", Json.Float seconds) ]
  | False_equivalent { seconds } ->
    Json.Obj
      [ ("kind", Json.String "false_equivalent"); ("seconds", Json.Float seconds) ]
  | Unknown { reason; seconds } ->
    Json.Obj
      [ ("kind", Json.String "unknown");
        ("reason", Json.String reason);
        ("seconds", Json.Float seconds) ]
  | Crashed e ->
    Json.Obj [ ("kind", Json.String "crashed"); ("error", Dfv_error.to_json e) ]

let verdict_of_json v =
  let ( let* ) = Result.bind in
  let str name =
    match Json.field name v with
    | Some (Json.String s) -> Ok s
    | _ -> Error (Printf.sprintf "missing string field %S" name)
  in
  let seconds () =
    match Json.field "seconds" v with
    | Some (Json.Float f) -> Ok f
    | Some (Json.Int i) -> Ok (float_of_int i)
    | _ -> Error "missing number field \"seconds\""
  in
  let* kind = str "kind" in
  match kind with
  | "detected" ->
    let* engine = str "engine" in
    let* seconds = seconds () in
    let localized =
      match Json.field "localized" v with
      | Some (Json.Bool b) -> Some b
      | _ -> None
    in
    Ok (Detected { engine; seconds; localized })
  | "survived" ->
    let* seconds = seconds () in
    Ok (Survived { seconds })
  | "false_equivalent" ->
    let* seconds = seconds () in
    Ok (False_equivalent { seconds })
  | "unknown" ->
    let* reason = str "reason" in
    let* seconds = seconds () in
    Ok (Unknown { reason; seconds })
  | "crashed" -> (
    match Json.field "error" v with
    | Some e ->
      let* e = Dfv_error.of_json e in
      Ok (Crashed e)
    | None -> Error "crashed verdict without error")
  | k -> Error (Printf.sprintf "unknown verdict kind %S" k)

let result_to_json r =
  Json.Obj
    [ ("name", Json.String r.m_name);
      ("class", Json.String r.m_class);
      ("site", Json.String r.m_site);
      ("verdict", verdict_to_json r.verdict) ]

let result_of_json v =
  let ( let* ) = Result.bind in
  let str name =
    match Json.field name v with
    | Some (Json.String s) -> Ok s
    | _ -> Error (Printf.sprintf "missing string field %S" name)
  in
  let* m_name = str "name" in
  let* m_class = str "class" in
  let* m_site = str "site" in
  match Json.field "verdict" v with
  | Some verdict ->
    let* verdict = verdict_of_json verdict in
    Ok { m_name; m_class; m_site; verdict }
  | None -> Error "result without verdict"

let shed_prefix = "shed: "
let is_shed reason = String.starts_with ~prefix:shed_prefix reason

let verdict_label = function
  | Detected _ -> "detected"
  | Survived _ -> "survived"
  | False_equivalent _ -> "false-equivalent"
  | Unknown _ -> "unknown"
  | Crashed _ -> "crashed"

(* The tally tag a result files under on the live progress line: shed
   mutants are their own category — they are the deadline's doing, not
   an ordinary unknown. *)
let progress_category r =
  match r.verdict with
  | Unknown { reason; _ } when is_shed reason -> "shed"
  | v -> verdict_label v

let run ?budget ?(sim_vectors = 400) ?(seed = 0) ?engine ?(jobs = 1)
    ?timeout ?deadline_at ?journal ?pool ?(exec = (`Fork : Pool.exec_mode))
    ?(max_rtl_faults = 16) ?(max_slm_faults = 8) ?(extra_mutants = [])
    ?(progress = false) subject =
  let t_start = Unix.gettimeofday () in
  let subject_name =
    match subject with
    | Sec_pair p -> p.Pair.name
    | Cosim { co_name; _ } -> co_name
  in
  let mutants =
    (match subject with
    | Sec_pair pair ->
      List.map
        (fun f -> Rtl_mutant f)
        (Fault.enumerate_rtl ~seed ~max_faults:max_rtl_faults pair.Pair.rtl)
      @ List.map
          (fun f -> Slm_mutant f)
          (Fault.enumerate_slm ~seed ~max_faults:max_slm_faults pair.Pair.slm)
    | Cosim { co_rtl; _ } ->
      List.map
        (fun f -> Rtl_mutant f)
        (Fault.enumerate_rtl ~seed ~max_faults:max_rtl_faults co_rtl))
    @ extra_mutants
  in
  (* Graceful degradation under a wall-clock deadline: a job starting
     in the first half of the window runs with the configured budget; a
     job starting in the second half runs with the budget scaled down
     linearly (and its wall clock capped at the time remaining); a job
     starting past the deadline is shed to a reported [Unknown] instead
     of running at all.  [None] means shed. *)
  let degraded_budget () =
    match deadline_at with
    | None -> Some budget
    | Some dl ->
      let t = Unix.gettimeofday () in
      if t >= dl then None
      else begin
        let total = Float.max (dl -. t_start) 1e-9 in
        let remaining = dl -. t in
        let frac = remaining /. total in
        if frac >= 0.5 then Some budget
        else begin
          let scale = frac /. 0.5 in
          let b =
            match budget with
            | Some b -> b
            | None -> { Solver.max_conflicts = None; max_seconds = None }
          in
          let max_conflicts =
            Option.map
              (fun c -> max 1 (int_of_float (float_of_int c *. scale)))
              b.Solver.max_conflicts
          in
          let max_seconds =
            Some
              (match b.Solver.max_seconds with
              | Some s -> Float.min (s *. scale) remaining
              | None -> remaining)
          in
          Some (Some { Solver.max_conflicts; max_seconds })
        end
      end
  in
  let shed_result m =
    {
      m_name = mutant_name m;
      m_class = mutant_class m;
      m_site = mutant_site m;
      verdict =
        Unknown { reason = shed_prefix ^ "campaign deadline exceeded"; seconds = 0.0 };
    }
  in
  let run_one (i, m) =
    Dfv_obs.Trace.with_span ~cat:"fault"
      ~args:[ ("mutant", Dfv_obs.Json.String (mutant_name m)) ]
      "fault.mutant"
    @@ fun () ->
    match degraded_budget () with
    | None -> shed_result m
    | Some budget ->
    (* The simulation cross-check seed is a pure function of (campaign
       seed, mutant index): verdicts cannot depend on how mutants are
       partitioned across workers. *)
    let sim_seed = Pool.job_seed ~seed i in
    let t0 = Unix.gettimeofday () in
    let elapsed () = Unix.gettimeofday () -. t0 in
    let outcome =
      Dfv_error.guard (fun () ->
          match (m, subject) with
          | Custom_mutant { cm_run; _ }, _ ->
            if cm_run () then
              Detected
                { engine = "custom"; seconds = elapsed (); localized = None }
            else Survived { seconds = elapsed () }
          | Rtl_mutant f, Cosim { co_check; co_rtl; _ } ->
            if co_check (f.Fault.rf_apply co_rtl) then
              Detected
                { engine = "cosim"; seconds = elapsed (); localized = None }
            else Survived { seconds = elapsed () }
          | Slm_mutant _, Cosim _ ->
            Unknown
              {
                reason = "cosim subjects carry no HWIR model to mutate";
                seconds = elapsed ();
              }
          | (Rtl_mutant _ | Slm_mutant _), Sec_pair pair -> (
            let pair' =
              match m with
              | Rtl_mutant f ->
                { pair with Pair.rtl = f.Fault.rf_apply pair.Pair.rtl }
              | Slm_mutant f ->
                { pair with Pair.slm = f.Fault.sf_apply pair.Pair.slm }
              | Custom_mutant _ -> assert false
            in
            match Flow.sec ?budget pair' with
            | Checker.Not_equivalent (cex, _) ->
              let localized =
                match m with
                | Rtl_mutant f -> (
                  match cex.Checker.failed_checks with
                  | ((c : Spec.check), _) :: _ ->
                    Some
                      (Fault.cone pair'.Pair.rtl ~output:c.Spec.rtl_port
                         f.Fault.rf_site)
                  | [] -> None)
                | _ -> None
              in
              Detected { engine = "sec"; seconds = elapsed (); localized }
            | Checker.Unknown (reason, _) ->
              Unknown { reason = reason_string reason; seconds = elapsed () }
            | Checker.Equivalent _ -> (
              (* SEC accepted the mutant: cross-examine by simulation.
                 A mismatch here means the prover signed off on a
                 detectable fault — the campaign's fatal finding. *)
              match
                Flow.simulate ~seed:sim_seed ?engine ~vectors:sim_vectors
                  pair'
              with
              | Ok (Flow.Sim_mismatch _) ->
                False_equivalent { seconds = elapsed () }
              | Ok (Flow.Sim_clean _) -> Survived { seconds = elapsed () }
              | Error e ->
                Unknown
                  {
                    reason = "cross-check: " ^ Dfv_error.to_string e;
                    seconds = elapsed ();
                  })))
    in
    let verdict =
      match outcome with
      | Ok v -> v
      | Error ((Dfv_error.Elaboration_failure _ | Dfv_error.Spec_violation _) as e)
        ->
        (* A mutant the flow statically rejects cannot be silently
           proven equivalent; record it as a justified unknown. *)
        Unknown
          {
            reason = "mutant rejected: " ^ Dfv_error.to_string e;
            seconds = elapsed ();
          }
      | Error (Dfv_error.Model_runtime_fault _) ->
        (* The mutated model faults at runtime where the original did
           not (e.g. a mutated guard exposes a division by zero): an
           observable divergence, i.e. the mutant is killed. *)
        Detected
          { engine = "runtime-fault"; seconds = elapsed (); localized = None }
      | Error e -> Crashed e
    in
    {
      m_name = mutant_name m;
      m_class = mutant_class m;
      m_site = mutant_site m;
      verdict;
    }
  in
  let indexed = List.mapi (fun i m -> (i, m)) mutants in
  let use_pool =
    match pool with Some b -> b | None -> jobs > 1 || timeout <> None
  in
  let reporter =
    if progress then
      Dfv_par.Progress.create ?deadline_at
        ~mode:(if use_pool then Pool.exec_mode_to_string exec else "seq")
        ~label:("faultsim " ^ subject_name)
        ~total:(List.length mutants) ()
    else None
  in
  let prog_step r =
    match reporter with
    | Some p -> Dfv_par.Progress.step p (progress_category r)
    | None -> ()
  in
  let skeleton m verdict =
    {
      m_name = mutant_name m;
      m_class = mutant_class m;
      m_site = mutant_site m;
      verdict;
    }
  in
  (* --- durability: journal replay and incremental append ---------------
     A mutant's journal key is structural — subject, index and mutant
     identity — so a resumed run (same configuration, any [jobs]) maps
     each mutant to the same record.  Only flow-level verdicts are
     journaled: pool-level failures (crash/timeout/interruption) and
     shed placeholders re-run on resume instead of being replayed. *)
  let mutant_fp i m =
    Dfv_par.Journal.fingerprint
      (String.concat "|"
         [ "mutant"; subject_name; string_of_int i; mutant_name m;
           mutant_class m; mutant_site m ])
  in
  let durable r =
    match r.verdict with
    | Unknown { reason; _ } when is_shed reason -> false
    | _ -> true
  in
  let journal_result i m r =
    match journal with
    | Some j when durable r ->
      Dfv_par.Journal.append j ~fp:(mutant_fp i m) (result_to_json r)
    | _ -> ()
  in
  let replay i m =
    match journal with
    | None -> None
    | Some j -> (
      match Dfv_par.Journal.find j (mutant_fp i m) with
      | None -> None
      | Some payload -> (
        (* An undecodable payload is treated as missing: the mutant
           simply re-runs (deterministically), it does not poison the
           campaign. *)
        match result_of_json payload with Ok r -> Some r | Error _ -> None))
  in
  let run_seq () =
    List.map
      (fun (i, m) ->
        match replay i m with
        | Some r ->
          prog_step r;
          r
        | None ->
          if Pool.stop_requested () then
            skeleton m (Unknown { reason = "interrupted"; seconds = 0.0 })
          else begin
            let r = run_one (i, m) in
            journal_result i m r;
            prog_step r;
            r
          end)
      indexed
  in
  let run_pooled () =
    let replayed =
      List.filter_map
        (fun (i, m) -> Option.map (fun r -> (i, r)) (replay i m))
        indexed
    in
    List.iter (fun (_, r) -> prog_step r) replayed;
    let missing =
      List.filter (fun (i, _) -> not (List.mem_assoc i replayed)) indexed
    in
    let missing_arr = Array.of_list missing in
    let on_result k outcome =
      (* Runs in the parent as each job's outcome becomes final: the
         journal grows with the campaign, so a kill at any instant
         loses at most the jobs still in flight. *)
      match outcome with
      | Ok r ->
        let i, m = missing_arr.(k) in
        journal_result i m r;
        prog_step r
      | Error (Dfv_error.Interrupted _) -> ()
      | Error e ->
        let _, m = missing_arr.(k) in
        prog_step
          (skeleton m
             (match e with
             | Dfv_error.Worker_timeout { seconds; _ } ->
               Unknown { reason = Dfv_error.to_string e; seconds }
             | e -> Crashed e))
    in
    let outcomes =
      Dfv_par.Dpool.map_auto ~exec ~jobs:(max 1 jobs) ?timeout
        ~label:(fun k ->
          if k < Array.length missing_arr then mutant_name (snd missing_arr.(k))
          else string_of_int k)
        ~on_result ~encode:result_to_json ~decode:result_of_json run_one
        missing
    in
    (* Pool failures fold into the campaign taxonomy: a timed-out worker
       is an undecided mutant (budget-like), an interrupted one is an
       undecided mutant that will re-run on resume, a crashed worker is
       the crash verdict — the isolation the pool exists to provide. *)
    let missing_results =
      List.map2
        (fun (_, m) outcome ->
          match outcome with
          | Ok r -> r
          | Error (Dfv_error.Worker_timeout { seconds; _ } as e) ->
            skeleton m (Unknown { reason = Dfv_error.to_string e; seconds })
          | Error (Dfv_error.Interrupted _ as e) ->
            skeleton m (Unknown { reason = Dfv_error.to_string e; seconds = 0.0 })
          | Error e -> skeleton m (Crashed e))
        missing outcomes
    in
    let by_index = Hashtbl.create 64 in
    List.iter (fun (i, r) -> Hashtbl.replace by_index i r) replayed;
    List.iter2
      (fun (i, _) r -> Hashtbl.replace by_index i r)
      missing missing_results;
    List.map (fun (i, _) -> Hashtbl.find by_index i) indexed
  in
  let results =
    Dfv_obs.Trace.with_span ~cat:"fault"
      ~args:[ ("subject", Dfv_obs.Json.String subject_name) ]
      "fault.campaign"
      (fun () -> if use_pool then run_pooled () else run_seq ())
  in
  (match reporter with Some p -> Dfv_par.Progress.finish p | None -> ());
  let count p = List.length (List.filter p results) in
  {
    r_subject = subject_name;
    r_total = List.length results;
    r_detected = count (fun r -> match r.verdict with Detected _ -> true | _ -> false);
    r_survived = count (fun r -> match r.verdict with Survived _ -> true | _ -> false);
    r_unknown = count (fun r -> match r.verdict with Unknown _ -> true | _ -> false);
    r_crashed = count (fun r -> match r.verdict with Crashed _ -> true | _ -> false);
    r_false_eq =
      count (fun r -> match r.verdict with False_equivalent _ -> true | _ -> false);
    r_mislocalized =
      count (fun r ->
          match r.verdict with
          | Detected { localized = Some false; _ } -> true
          | _ -> false);
    r_shed =
      count (fun r ->
          match r.verdict with
          | Unknown { reason; _ } -> is_shed reason
          | _ -> false);
    r_wall = Unix.gettimeofday () -. t_start;
    r_results = results;
  }

let detection_rate reports =
  let det = List.fold_left (fun a r -> a + r.r_detected) 0 reports in
  let bad =
    List.fold_left (fun a r -> a + r.r_false_eq + r.r_crashed) 0 reports
  in
  if det + bad = 0 then 1.0 else float_of_int det /. float_of_int (det + bad)

let false_equivalents reports =
  List.fold_left (fun a r -> a + r.r_false_eq) 0 reports

let pp_report fmt r =
  Format.fprintf fmt
    "%-18s %3d mutants: %d detected, %d survived, %d unknown, %d crashed, %d \
     false-eq, %d mislocalized%s (%.2fs)@."
    r.r_subject r.r_total r.r_detected r.r_survived r.r_unknown r.r_crashed
    r.r_false_eq r.r_mislocalized
    (* Shedding is never silent: a deadline that dropped work is part of
       the headline. *)
    (if r.r_shed > 0 then Printf.sprintf ", %d SHED (deadline)" r.r_shed else "")
    r.r_wall;
  List.iter
    (fun m ->
      Format.fprintf fmt "    %-16s %-50s %s" (verdict_label m.verdict)
        m.m_name
        (match m.verdict with
        | Detected { engine; localized; _ } ->
          Printf.sprintf "via %s%s" engine
            (match localized with
            | Some true -> ", localized"
            | Some false -> ", NOT localized"
            | None -> "")
        | Unknown { reason; _ } -> reason
        | Crashed e -> Dfv_error.to_string e
        | Survived _ | False_equivalent _ -> "");
      Format.fprintf fmt "@.")
    r.r_results

(* --- JSON -------------------------------------------------------------- *)

let json_of_reports ~min_rate reports =
  let str s = Json.String s in
  let mutant_json m =
    let base =
      [ ("name", str m.m_name);
        ("class", str m.m_class);
        ("site", str m.m_site);
        ("verdict", str (verdict_label m.verdict)) ]
    in
    let extra =
      match m.verdict with
      | Detected { engine; seconds; localized } ->
        [ ("engine", str engine); ("seconds", Json.Float seconds) ]
        @ (match localized with
          | Some l -> [ ("localized", Json.Bool l) ]
          | None -> [])
      | Survived { seconds } | False_equivalent { seconds } ->
        [ ("seconds", Json.Float seconds) ]
      | Unknown { reason; seconds } ->
        [ ("reason", str reason); ("seconds", Json.Float seconds) ]
      | Crashed e -> [ ("error", str (Dfv_error.to_string e)) ]
    in
    Json.Obj (base @ extra)
  in
  let report_json r =
    Json.Obj
      [ ("name", str r.r_subject);
        ("total", Json.Int r.r_total);
        ("detected", Json.Int r.r_detected);
        ("survived", Json.Int r.r_survived);
        ("unknown", Json.Int r.r_unknown);
        ("crashed", Json.Int r.r_crashed);
        ("false_equivalent", Json.Int r.r_false_eq);
        ("mislocalized", Json.Int r.r_mislocalized);
        ("shed", Json.Int r.r_shed);
        ("wall_seconds", Json.Float r.r_wall);
        ("faults", Json.List (List.map mutant_json r.r_results)) ]
  in
  let rate = detection_rate reports in
  let false_eq = false_equivalents reports in
  Json.to_string
    (Json.envelope ~schema:"dfv-faultsim" ~version:1
       [ ("min_rate", Json.Float min_rate);
         ("detection_rate", Json.Float rate);
         ("false_equivalents", Json.Int false_eq);
         ("pass", Json.Bool (rate >= min_rate && false_eq = 0));
         ("subjects", Json.List (List.map report_json reports)) ])
