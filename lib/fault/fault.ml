module Bitvec = Dfv_bitvec.Bitvec
module Expr = Dfv_rtl.Expr
module Netlist = Dfv_rtl.Netlist
module Ast = Dfv_hwir.Ast

type rtl_fault = {
  rf_name : string;
  rf_class : string;
  rf_site : string;
  rf_apply : Netlist.elaborated -> Netlist.elaborated;
}

type slm_fault = {
  sf_name : string;
  sf_class : string;
  sf_site : string;
  sf_apply : Ast.program -> Ast.program;
}

(* --- class-stratified sampling ---------------------------------------- *)

(* Keep the fault list representative when trimming: shuffle within each
   class, then round-robin across classes so e.g. stuck-ats (numerous)
   do not crowd out register-bit flips (few). *)
let sample ~seed ~max_faults ~class_of faults =
  if List.length faults <= max_faults then faults
  else begin
    let st = Random.State.make [| seed; 0x0fa1; List.length faults |] in
    let order = ref [] in
    let buckets = Hashtbl.create 8 in
    List.iter
      (fun f ->
        let c = class_of f in
        (match Hashtbl.find_opt buckets c with
        | Some r -> r := f :: !r
        | None ->
          Hashtbl.add buckets c (ref [ f ]);
          order := c :: !order))
      faults;
    let arrays =
      List.rev_map
        (fun c ->
          let a = Array.of_list (List.rev !(Hashtbl.find buckets c)) in
          for i = Array.length a - 1 downto 1 do
            let j = Random.State.int st (i + 1) in
            let t = a.(i) in
            a.(i) <- a.(j);
            a.(j) <- t
          done;
          a)
        !order
    in
    let picked = ref [] in
    let count = ref 0 in
    let idx = ref 0 in
    let progress = ref true in
    while !count < max_faults && !progress do
      progress := false;
      List.iter
        (fun a ->
          if !count < max_faults && !idx < Array.length a then begin
            picked := a.(!idx) :: !picked;
            incr count;
            progress := true
          end)
        arrays;
      incr idx
    done;
    List.rev !picked
  end

(* --- RTL expression mutations ------------------------------------------ *)

let binop_name op =
  Expr.(
    match op with
    | Add -> "add" | Sub -> "sub" | Mul -> "mul"
    | Udiv -> "udiv" | Urem -> "urem" | Sdiv -> "sdiv" | Srem -> "srem"
    | And -> "and" | Or -> "or" | Xor -> "xor"
    | Shl -> "shl" | Lshr -> "lshr" | Ashr -> "ashr"
    | Eq -> "eq" | Ne -> "ne" | Ult -> "ult" | Ule -> "ule"
    | Slt -> "slt" | Sle -> "sle")

let unop_name op =
  Expr.(
    match op with
    | Not -> "not" | Neg -> "neg"
    | Red_and -> "rand" | Red_or -> "ror" | Red_xor -> "rxor")

(* Substitutions are width-preserving by construction: both operators of
   each pair impose identical operand/result width rules. *)
let binop_subs op =
  Expr.(
    match op with
    | Add -> [ Sub ] | Sub -> [ Add ] | Mul -> [ Add ]
    | Udiv -> [ Urem ] | Urem -> [ Udiv ]
    | Sdiv -> [ Srem ] | Srem -> [ Sdiv ]
    | And -> [ Or ] | Or -> [ Xor ] | Xor -> [ And ]
    | Shl -> [ Lshr ] | Lshr -> [ Ashr ] | Ashr -> [ Shl ]
    | Eq -> [ Ne ] | Ne -> [ Eq ]
    | Ult -> [ Ule; Slt ] | Ule -> [ Ult ]
    | Slt -> [ Sle; Ult ] | Sle -> [ Slt ])

let unop_subs op =
  Expr.(
    match op with
    | Not -> [ Neg ] | Neg -> [ Not ]
    | Red_and -> [ Red_or ] | Red_or -> [ Red_xor ] | Red_xor -> [ Red_and ])

(* All single-node rewrites of [e]: (class, descriptor, mutated). *)
let rec expr_mutations (e : Expr.t) =
  let within k rebuild =
    List.map (fun (c, d, k') -> (c, d, rebuild k')) (expr_mutations k)
  in
  let here =
    match e with
    | Expr.Binop (op, a, b) ->
      List.map
        (fun op' ->
          ( "op-subst",
            binop_name op ^ "->" ^ binop_name op',
            Expr.Binop (op', a, b) ))
        (binop_subs op)
    | Expr.Unop (u, a) ->
      List.map
        (fun u' ->
          ("op-subst", unop_name u ^ "->" ^ unop_name u', Expr.Unop (u', a)))
        (unop_subs u)
    | Expr.Const bv ->
      [ ( "const-off-by-one",
          "const+1",
          Expr.Const (Bitvec.add bv (Bitvec.one (Bitvec.width bv))) ) ]
    | _ -> []
  in
  let deeper =
    match e with
    | Expr.Const _ | Expr.Signal _ -> []
    | Expr.Unop (u, a) -> within a (fun a' -> Expr.Unop (u, a'))
    | Expr.Binop (op, a, b) ->
      within a (fun a' -> Expr.Binop (op, a', b))
      @ within b (fun b' -> Expr.Binop (op, a, b'))
    | Expr.Mux (s, t1, t2) ->
      within s (fun s' -> Expr.Mux (s', t1, t2))
      @ within t1 (fun t1' -> Expr.Mux (s, t1', t2))
      @ within t2 (fun t2' -> Expr.Mux (s, t1, t2'))
    | Expr.Slice (a, hi, lo) -> within a (fun a' -> Expr.Slice (a', hi, lo))
    | Expr.Concat es ->
      List.concat
        (List.mapi
           (fun i ei ->
             within ei (fun ei' ->
                 Expr.Concat
                   (List.mapi (fun j ej -> if i = j then ei' else ej) es)))
           es)
    | Expr.Zext (a, w) -> within a (fun a' -> Expr.Zext (a', w))
    | Expr.Sext (a, w) -> within a (fun a' -> Expr.Sext (a', w))
    | Expr.Repeat (a, n) -> within a (fun a' -> Expr.Repeat (a', n))
    | Expr.Mem_read (m, a) -> within a (fun a' -> Expr.Mem_read (m, a'))
  in
  here @ deeper

let enumerate_rtl ?(seed = 0) ?(max_faults = 24) (e : Netlist.elaborated) =
  let faults = ref [] in
  let k = ref 0 in
  let add rf_class rf_site desc rf_apply =
    incr k;
    faults :=
      {
        rf_name = Printf.sprintf "%s:%s:%s#%d" rf_class rf_site desc !k;
        rf_class;
        rf_site;
        rf_apply;
      }
      :: !faults
  in
  let mem_word n =
    match
      List.find_opt
        (fun (m : Netlist.memory) -> String.equal m.Netlist.mem_name n)
        e.Netlist.e_mems
    with
    | Some m -> m.Netlist.word_width
    | None -> raise (Netlist.Elaboration_error ("unknown memory " ^ n))
  in
  let expr_width ex = Expr.width_in e.Netlist.e_signal_width mem_word ex in
  let replace_wire n ex' el =
    {
      el with
      Netlist.e_wires =
        List.map
          (fun (m, ex) -> if String.equal m n then (m, ex') else (m, ex))
          el.Netlist.e_wires;
    }
  in
  let replace_output n ex' el =
    {
      el with
      Netlist.e_outputs =
        List.map
          (fun (m, ex) -> if String.equal m n then (m, ex') else (m, ex))
          el.Netlist.e_outputs;
    }
  in
  let map_reg n f el =
    {
      el with
      Netlist.e_regs =
        List.map
          (fun (r : Netlist.reg) ->
            if String.equal r.Netlist.reg_name n then f r else r)
          el.Netlist.e_regs;
    }
  in
  let stuck site w replace =
    add "stuck-at-0" site "sa0" (replace (Expr.Const (Bitvec.zero w)));
    add "stuck-at-1" site "sa1" (replace (Expr.Const (Bitvec.ones w)))
  in
  List.iter
    (fun (n, ex) ->
      stuck n (e.Netlist.e_signal_width n) (replace_wire n);
      List.iter
        (fun (c, d, ex') -> add c n d (replace_wire n ex'))
        (expr_mutations ex))
    e.Netlist.e_wires;
  List.iter
    (fun (n, ex) ->
      stuck n (expr_width ex) (replace_output n);
      List.iter
        (fun (c, d, ex') -> add c n d (replace_output n ex'))
        (expr_mutations ex))
    e.Netlist.e_outputs;
  List.iter
    (fun (r : Netlist.reg) ->
      let n = r.Netlist.reg_name and w = r.Netlist.reg_width in
      let bits = if w = 1 then [ 0 ] else [ 0; w - 1 ] in
      List.iter
        (fun bit ->
          add "reg-init-flip" n
            (Printf.sprintf "init[%d]" bit)
            (map_reg n (fun r ->
                 {
                   r with
                   Netlist.init =
                     Bitvec.set_bit r.Netlist.init bit
                       (not (Bitvec.get r.Netlist.init bit));
                 })))
        bits;
      List.iter
        (fun bit ->
          let onehot = Bitvec.set_bit (Bitvec.zero w) bit true in
          add "reg-next-flip" n
            (Printf.sprintf "next[%d]" bit)
            (map_reg n (fun r ->
                 {
                   r with
                   Netlist.next =
                     Expr.Binop (Expr.Xor, r.Netlist.next, Expr.Const onehot);
                 })))
        bits;
      List.iter
        (fun (c, d, ex') ->
          add c n d (map_reg n (fun r -> { r with Netlist.next = ex' })))
        (expr_mutations r.Netlist.next))
    e.Netlist.e_regs;
  sample ~seed ~max_faults ~class_of:(fun f -> f.rf_class) (List.rev !faults)

(* --- HWIR (SLM) mutations ---------------------------------------------- *)

let h_binop_name op =
  Ast.(
    match op with
    | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Rem -> "rem"
    | And -> "and" | Or -> "or" | Xor -> "xor" | Shl -> "shl" | Shr -> "shr"
    | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le"
    | Land -> "land" | Lor -> "lor")

(* Type-preserving only: both sides of each pair take and produce the
   same HWIR type, so the mutant still typechecks and stays
   conditioned. *)
let h_binop_subs op =
  Ast.(
    match op with
    | Add -> [ Sub ] | Sub -> [ Add ] | Mul -> [ Add ]
    | Div -> [] | Rem -> []
    | And -> [ Or ] | Or -> [ Xor ] | Xor -> [ And ]
    | Shl -> [ Shr ] | Shr -> [ Shl ]
    | Eq -> [ Ne ] | Ne -> [ Eq ] | Lt -> [ Le ] | Le -> [ Lt ]
    | Land -> [ Lor ] | Lor -> [ Land ])

let rec h_expr_mutations (e : Ast.expr) =
  let within k rebuild =
    List.map (fun (c, d, k') -> (c, d, rebuild k')) (h_expr_mutations k)
  in
  let here =
    match e with
    | Ast.Binop (op, a, b) ->
      List.map
        (fun op' ->
          ( "op-subst",
            h_binop_name op ^ "->" ^ h_binop_name op',
            Ast.Binop (op', a, b) ))
        (h_binop_subs op)
    | Ast.Int (bv, sg) ->
      [ ( "const-off-by-one",
          "const+1",
          Ast.Int (Bitvec.add bv (Bitvec.one (Bitvec.width bv)), sg) ) ]
    | Ast.Cond (c, a, b) -> [ ("branch-swap", "swap", Ast.Cond (c, b, a)) ]
    | _ -> []
  in
  let deeper =
    match e with
    | Ast.Int _ | Ast.Bool _ | Ast.Var _ -> []
    | Ast.Index (a, ie) -> within ie (fun ie' -> Ast.Index (a, ie'))
    | Ast.Unop (u, a) -> within a (fun a' -> Ast.Unop (u, a'))
    | Ast.Binop (op, a, b) ->
      within a (fun a' -> Ast.Binop (op, a', b))
      @ within b (fun b' -> Ast.Binop (op, a, b'))
    | Ast.Cond (c, a, b) ->
      within c (fun c' -> Ast.Cond (c', a, b))
      @ within a (fun a' -> Ast.Cond (c, a', b))
      @ within b (fun b' -> Ast.Cond (c, a, b'))
    | Ast.Cast (ty, a) -> within a (fun a' -> Ast.Cast (ty, a'))
    | Ast.Bitsel (a, hi, lo) -> within a (fun a' -> Ast.Bitsel (a', hi, lo))
    | Ast.Call (f, args) ->
      List.concat
        (List.mapi
           (fun i ai ->
             within ai (fun ai' ->
                 Ast.Call
                   (f, List.mapi (fun j aj -> if i = j then ai' else aj) args)))
           args)
  in
  here @ deeper

let rec stmt_mutations (s : Ast.stmt) =
  let in_expr e rebuild =
    List.map (fun (c, d, e') -> (c, d, rebuild e')) (h_expr_mutations e)
  in
  let in_body b rebuild =
    List.map (fun (c, d, b') -> (c, d, rebuild b')) (body_mutations b)
  in
  match s with
  | Ast.Assign (lv, e) ->
    in_expr e (fun e' -> Ast.Assign (lv, e'))
    @ (match lv with
      | Ast.Lindex (a, ie) ->
        in_expr ie (fun ie' -> Ast.Assign (Ast.Lindex (a, ie'), e))
      | Ast.Lvar _ -> [])
  | Ast.If (c, a, b) ->
    ("cond-negate", "!cond", Ast.If (Ast.Unop (Ast.Lnot, c), a, b))
    :: in_expr c (fun c' -> Ast.If (c', a, b))
    @ in_body a (fun a' -> Ast.If (c, a', b))
    @ in_body b (fun b' -> Ast.If (c, a, b'))
  | Ast.For { ivar; count; body } ->
    in_body body (fun body' -> Ast.For { ivar; count; body = body' })
  | Ast.Bounded_while { cond; max_iter; body } ->
    in_expr cond (fun cond' -> Ast.Bounded_while { cond = cond'; max_iter; body })
    @ in_body body (fun body' -> Ast.Bounded_while { cond; max_iter; body = body' })
  | Ast.Return e -> in_expr e (fun e' -> Ast.Return e')
  | Ast.While _ | Ast.Alloc _ | Ast.Alias _ | Ast.Extern_call _ -> []

and body_mutations body =
  List.concat
    (List.mapi
       (fun i si ->
         List.map
           (fun (c, d, si') ->
             (c, d, List.mapi (fun j sj -> if i = j then si' else sj) body))
           (stmt_mutations si))
       body)

(* Functions reachable from the entry point — mutating anything else
   produces guaranteed survivors (dead code). *)
let reachable_funcs (p : Ast.program) =
  let rec expr_calls acc (e : Ast.expr) =
    match e with
    | Ast.Int _ | Ast.Bool _ | Ast.Var _ -> acc
    | Ast.Index (_, ie) -> expr_calls acc ie
    | Ast.Unop (_, a) | Ast.Cast (_, a) | Ast.Bitsel (a, _, _) ->
      expr_calls acc a
    | Ast.Binop (_, a, b) -> expr_calls (expr_calls acc a) b
    | Ast.Cond (c, a, b) -> expr_calls (expr_calls (expr_calls acc c) a) b
    | Ast.Call (f, args) -> List.fold_left expr_calls (f :: acc) args
  in
  let rec stmt_calls acc (s : Ast.stmt) =
    match s with
    | Ast.Assign (Ast.Lvar _, e) | Ast.Return e -> expr_calls acc e
    | Ast.Assign (Ast.Lindex (_, ie), e) -> expr_calls (expr_calls acc ie) e
    | Ast.If (c, a, b) ->
      List.fold_left stmt_calls
        (List.fold_left stmt_calls (expr_calls acc c) a)
        b
    | Ast.For { body; _ } -> List.fold_left stmt_calls acc body
    | Ast.Bounded_while { cond; body; _ } | Ast.While (cond, body) ->
      List.fold_left stmt_calls (expr_calls acc cond) body
    | Ast.Alloc { size; _ } -> expr_calls acc size
    | Ast.Alias _ -> acc
    | Ast.Extern_call (_, args) -> List.fold_left expr_calls acc args
  in
  let seen = Hashtbl.create 8 in
  let rec visit name =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.add seen name ();
      match
        List.find_opt (fun (f : Ast.func) -> String.equal f.Ast.fname name) p.Ast.funcs
      with
      | Some f -> List.iter visit (List.fold_left stmt_calls [] f.Ast.body)
      | None -> ()
    end
  in
  visit p.Ast.entry;
  seen

let enumerate_slm ?(seed = 0) ?(max_faults = 12) (p : Ast.program) =
  let faults = ref [] in
  let k = ref 0 in
  let reachable = reachable_funcs p in
  List.iter
    (fun (f : Ast.func) ->
      let fname = f.Ast.fname in
      if Hashtbl.mem reachable fname then
        List.iter
          (fun (c, d, body') ->
            incr k;
            let apply (prog : Ast.program) =
              {
                prog with
                Ast.funcs =
                  List.map
                    (fun (g : Ast.func) ->
                      if String.equal g.Ast.fname fname then
                        { g with Ast.body = body' }
                      else g)
                    prog.Ast.funcs;
              }
            in
            faults :=
              {
                sf_name = Printf.sprintf "%s:%s:%s#%d" c fname d !k;
                sf_class = c;
                sf_site = fname;
                sf_apply = apply;
              }
              :: !faults)
          (body_mutations f.Ast.body))
    p.Ast.funcs;
  sample ~seed ~max_faults ~class_of:(fun f -> f.sf_class) (List.rev !faults)

(* --- fan-in cones ------------------------------------------------------- *)

let cone (e : Netlist.elaborated) ~output =
  let wires = Hashtbl.create 32 in
  List.iter (fun (n, ex) -> Hashtbl.replace wires n ex) e.Netlist.e_wires;
  let regs = Hashtbl.create 16 in
  List.iter
    (fun (r : Netlist.reg) -> Hashtbl.replace regs r.Netlist.reg_name r)
    e.Netlist.e_regs;
  let mems = Hashtbl.create 4 in
  List.iter
    (fun (m : Netlist.memory) -> Hashtbl.replace mems m.Netlist.mem_name m)
    e.Netlist.e_mems;
  let seen = Hashtbl.create 64 in
  let seen_mem = Hashtbl.create 8 in
  let rec visit_expr ex =
    List.iter visit_sig (Expr.signals ex);
    List.iter visit_mem (Expr.memories ex)
  and visit_sig n =
    if not (Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      (match Hashtbl.find_opt wires n with
      | Some ex -> visit_expr ex
      | None -> ());
      match Hashtbl.find_opt regs n with
      | Some r ->
        visit_expr r.Netlist.next;
        Option.iter visit_expr r.Netlist.enable
      | None -> ()
    end
  and visit_mem m =
    if not (Hashtbl.mem seen_mem m) then begin
      Hashtbl.add seen_mem m ();
      match Hashtbl.find_opt mems m with
      | Some mem ->
        List.iter
          (fun (w : Netlist.write_port) ->
            visit_expr w.Netlist.wr_enable;
            visit_expr w.Netlist.wr_addr;
            visit_expr w.Netlist.wr_data)
          mem.Netlist.writes
      | None -> ()
    end
  in
  (match List.assoc_opt output e.Netlist.e_outputs with
  | Some ex -> visit_expr ex
  | None -> ());
  fun site ->
    String.equal site output || Hashtbl.mem seen site || Hashtbl.mem seen_mem site
