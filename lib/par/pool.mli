(** A fork-based worker pool with crash isolation.

    The fault campaign and the SEC portfolio are embarrassingly
    parallel: independent mutants, independent BMC frames, independent
    solving strategies.  This pool runs such jobs across worker
    {e processes} (one [fork] per job, at most [jobs] alive at once), so
    that a worker that segfaults, is OOM-killed, or wedges becomes a
    recorded {!Dfv_core.Dfv_error.t} — never a dead run.

    {2 Protocol}

    Each worker computes its job in the forked child (the job closure
    travels by fork, not serialization) and writes exactly one result
    line — the {!Dfv_obs.Json} envelope
    [{"schema":"dfv-par","version":1,"kind":"result"|"error","job":i,...}]
    — on a private pipe, preceded by periodic [kind:"heartbeat"] lines
    emitted from a SIGALRM timer.  The parent multiplexes the pipes with
    [select], kills workers that exceed the per-job wall-clock budget
    ([Worker_timeout]) or stop heartbeating ([Worker_crashed]), and maps
    a worker that dies without delivering a result — by signal or
    nonzero exit — to [Worker_crashed] with the cause.

    {2 Determinism}

    Job outcomes must depend only on the job itself, never on which
    worker ran it or how many there are: results are returned in input
    order, and {!job_seed} derives a per-job PRNG seed from the job
    {e index}, so a campaign's verdicts are identical under any [~jobs]
    (the issue's gate: [--jobs N] never changes verdicts).

    {2 Self-healing}

    A worker failure the taxonomy classes as possibly transient
    ({!Dfv_core.Dfv_error.transient} — a crash, which may be OOM
    pressure or a stray signal rather than a property of the job) is
    retried with exponential backoff and deterministic jitter before
    the failure is recorded; a deterministic crash exhausts its retry
    budget and stays [Worker_crashed].  Retry traffic is visible in the
    {!Dfv_obs.Metrics} registry as [pool.retry.attempts] /
    [pool.retry.healed] / [pool.retry.exhausted].

    {2 Telemetry}

    Observability is fork-transparent by default: each worker zeroes its
    inherited {!Dfv_obs.Metrics} / {!Dfv_obs.Trace} /
    {!Dfv_obs.Coverage} state at job start and ships the job's deltas
    back as one extra [kind:"telemetry"] protocol line just before its
    result.  The parent merges a job's telemetry exactly once, when the
    job's outcome becomes final — counters summed, gauges max-of-high-
    water, histogram buckets summed elementwise, coverage bins summed,
    worker spans re-based into the parent trace under the worker's pid
    and tagged with the job index — so retried attempts and journal-
    replayed jobs (which never run) are never double-counted.  Shipping
    volume is visible as [pool.telemetry.shipped], merge failures as
    [pool.telemetry.errors]; pass [~telemetry:false] to turn the whole
    mechanism off. *)

val cores : unit -> int
(** Number of CPU cores available to this process (>= 1). *)

val request_stop : unit -> unit
(** Set the process-wide cooperative stop flag (safe to call from a
    signal handler).  The pool checks it every scheduling round: live
    workers are killed, nothing further is recorded, and unfinished
    jobs surface as [Error (Interrupted _)] — the caller flushes its
    {!Journal} and exits with the "interrupted, resumable" code. *)

val stop_requested : unit -> bool
val reset_stop : unit -> unit

type exec_mode = [ `Fork | `Domains | `Auto ]
(** Which executor runs a parallel workload: this fork pool ([`Fork],
    crash isolation and preemptive timeouts), the in-process
    {!Dpool} ([`Domains], no fork or pipe cost — wins on short jobs),
    or adaptive selection ([`Auto], see {!Dpool.choose_exec}).  The
    type lives here so callers can name it without depending on the
    domains executor. *)

val exec_mode_to_string : exec_mode -> string
val exec_mode_of_string : string -> exec_mode option

val merge_telemetry : ?label:string -> job:int -> Dfv_obs.Json.t -> unit
(** Merge one worker's shipped telemetry payload (the
    [{"metrics";"trace";"coverage"}] object both executors produce)
    into the process-wide sinks, counting [pool.telemetry.shipped] and
    [pool.telemetry.errors].  [label] names the worker's trace lane
    (default ["dfv worker <pid>"]).  Exposed for {!Dpool}; merge
    failures are observable but never raise. *)

type retry = {
  attempts : int;  (** extra attempts per job after the first failure *)
  backoff : float;  (** base delay in seconds before the first retry *)
  max_backoff : float;  (** cap on the exponential delay *)
  retry_timeouts : bool;
      (** whether [Worker_timeout] is retried too; off by default — the
          same job under the same budget deterministically times out
          again *)
}

val default_retry : retry
(** [{ attempts = 2; backoff = 0.05; max_backoff = 2.0;
      retry_timeouts = false }]. *)

val no_retry : retry
(** [attempts = 0]: every failure is final (the pre-retry behaviour). *)

val job_seed : seed:int -> int -> int
(** [job_seed ~seed i] mixes the campaign seed with job index [i] into
    a well-spread per-job seed (a splitmix64-style finalizer), the same
    value no matter how jobs are partitioned across workers. *)

type 'r outcome = ('r, Dfv_core.Dfv_error.t) result

val map :
  ?jobs:int ->
  ?timeout:float ->
  ?heartbeat:float ->
  ?label:(int -> string) ->
  ?retry:retry ->
  ?telemetry:bool ->
  ?on_result:(int -> 'r outcome -> unit) ->
  encode:('r -> Dfv_obs.Json.t) ->
  decode:(Dfv_obs.Json.t -> ('r, string) result) ->
  ('a -> 'r) ->
  'a list ->
  'r outcome list
(** [map ~encode ~decode f inputs] runs [f] on every input in forked
    workers and returns the outcomes {e in input order}.

    [jobs] bounds concurrent workers (default {!cores}; [jobs = 1] still
    forks, so crash isolation and the timeout apply identically — only
    parallelism changes).  [timeout] is the per-job wall-clock budget in
    seconds (default: none); an expired job is SIGKILLed and reported as
    [Error (Worker_timeout _)].  [heartbeat] (default 0.5s) sets the
    worker heartbeat period; a worker silent for 20 heartbeat periods is
    presumed wedged below the OCaml runtime (stuck in a blocking call)
    and reported as [Error (Worker_crashed _)].  [label] names job [i]
    in error values (default: its index).

    [encode]/[decode] carry the result across the pipe; a worker whose
    payload fails to decode is a [Worker_crashed] (protocol damage, same
    class as a torn write).

    [retry] (default {!default_retry}) bounds the transient-failure
    retry loop per job.  [telemetry] (default [true]) controls worker
    observability shipping — see {e Telemetry} above.  [on_result] is
    invoked in the {e parent}, in
    completion order, each time a job's outcome becomes final (after
    any retries) — the hook durable campaigns use to append to their
    {!Journal} as results arrive rather than at the end.

    If {!request_stop} fires mid-run, unfinished jobs come back as
    [Error (Interrupted _)] (and are never passed to [on_result]). *)

type 'r race = {
  winner : (int * 'r) option;
      (** first conclusive result (job index, result); [None] when no
          job concluded *)
  outcomes : 'r outcome option array;
      (** per-job outcomes, indexed like the input list; [None] for jobs
          cancelled (or never started) after the winner emerged *)
}

val race :
  ?jobs:int ->
  ?timeout:float ->
  ?heartbeat:float ->
  ?label:(int -> string) ->
  ?retry:retry ->
  ?telemetry:bool ->
  ?on_result:(int -> 'r outcome -> unit) ->
  encode:('r -> Dfv_obs.Json.t) ->
  decode:(Dfv_obs.Json.t -> ('r, string) result) ->
  conclusive:('r -> bool) ->
  ('a -> 'r) ->
  'a list ->
  'r race
(** Portfolio mode: like {!map}, but the first result for which
    [conclusive] holds wins — every other live worker is SIGKILLed,
    pending jobs are not started, and their outcomes stay [None].  When
    several workers conclude in the same [select] round the lowest job
    index wins, so ties are broken deterministically.  If no job
    concludes, [winner = None] and every outcome is filled in. *)
