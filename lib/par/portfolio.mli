(** Portfolio SEC: equivalence checks raced across worker processes.

    Two parallelization shapes, both built on {!Pool.race}:

    - {!check_slm_rtl} races {e solving strategies} — the same
      SLM-vs-RTL query attempted with and without the SAT-sweeping
      fallback — and takes the first conclusive verdict
      ([Equivalent]/[Not_equivalent]), cancelling the rest.  Which
      strategy wins the race may vary with machine load, but the verdict
      cannot: both decide the same miter, so any conclusive answer is
      the answer.

    - {!check_rtl_rtl} shards {e BMC frames}: frame miters of the
      product machine are mutually independent (the sequential checker's
      blocking clauses are only an optimization), so each worker decides
      "do the designs diverge at exactly cycle [t] from reset" in a
      private session.  Any [Sat] frame is a real divergence and
      cancels the rest; all-[Unsat] is the bounded equivalence claim.

    This module lives in [lib/par] rather than [lib/sec] because the
    pool needs the {!Dfv_core.Dfv_error} taxonomy and [lib/core] already
    depends on [lib/sec]; the portfolio wraps {!Dfv_sec.Checker} from
    the outside.

    Counterexamples cross the worker pipe reduced to parameter/input
    bitvectors (Verilog-literal strings under the [dfv-par] envelope);
    the parent rebuilds full counterexamples via
    {!Dfv_sec.Checker.cex_of_params} or product re-simulation.  Worker
    failures surface as [Error] — except a worker wall-clock timeout in
    {!check_rtl_rtl}, which degrades to [Rtl_unknown] (it is the
    parallel analogue of a solver budget running out). *)

(** {2 Wire forms}

    The reduced SLM-vs-RTL verdict that crosses a worker pipe — and,
    since the serve daemon speaks the same frames, a [dfv serve] result
    cache entry and a [dfv client] response payload.  A counterexample
    travels as its SLM parameter assignment alone; the receiving side
    rebuilds the full {!Dfv_sec.Checker.cex} with
    {!Dfv_sec.Checker.cex_of_params}, which requires having the design
    itself (the assignment determines the counterexample completely). *)

type slm_wire =
  | W_equivalent of Dfv_sec.Checker.stats
  | W_not_equivalent of
      (string * Dfv_hwir.Interp.value) list * Dfv_sec.Checker.stats
  | W_unknown of Dfv_sat.Solver.reason * Dfv_sec.Checker.stats

val slm_wire_to_json : slm_wire -> Dfv_obs.Json.t
val slm_wire_of_json : Dfv_obs.Json.t -> (slm_wire, string) result

val slm_wire_of_verdict : Dfv_sec.Checker.verdict -> slm_wire
(** Reduce a verdict to its wire form (the counterexample keeps only
    [params]). *)

val verdict_of_slm_wire :
  slm:Dfv_hwir.Ast.program ->
  rtl:Dfv_rtl.Netlist.elaborated ->
  spec:Dfv_sec.Spec.t ->
  slm_wire ->
  Dfv_sec.Checker.verdict
(** Rebuild the full verdict, re-deriving the counterexample from its
    parameter assignment against the given design. *)

val slm_conclusive : slm_wire -> bool
(** [true] for [W_equivalent]/[W_not_equivalent]: the verdicts a cache
    may serve unconditionally.  A [W_unknown] is only as good as the
    budget that produced it. *)

val check_slm_rtl :
  ?jobs:int ->
  ?timeout:float ->
  ?budget:Dfv_sat.Solver.budget ->
  ?journal:string ->
  ?progress:bool ->
  ?exec:Pool.exec_mode ->
  slm:Dfv_hwir.Ast.program ->
  rtl:Dfv_rtl.Netlist.elaborated ->
  spec:Dfv_sec.Spec.t ->
  unit ->
  (Dfv_sec.Checker.verdict, Dfv_core.Dfv_error.t) result
(** Race the sweeping and direct strategies on one SLM-vs-RTL query.
    First conclusive verdict wins; if every strategy returns [Unknown],
    the first strategy's [Unknown] is reported.  [Error] when every
    strategy's worker crashed or timed out.  [timeout] is the per-worker
    wall-clock budget in seconds; [budget] the per-query solver budget,
    as in {!Dfv_sec.Checker.check_slm_rtl}.

    [journal] (a file path) makes the race durable: the journal is
    bound to a campaign key derived from {!Dfv_sec.Fingerprint.pair}
    (the structural content of the query) plus the solver budget, each
    strategy's wire verdict is appended as it lands, and on resume a
    journaled conclusive verdict short-circuits the race entirely (the
    counterexample is rebuilt via {!Dfv_sec.Checker.cex_of_params})
    while journaled [Unknown]s — deterministic under the same budget —
    are not re-run.  If {!Pool.request_stop} fires before any verdict,
    the result is [Error (Interrupted _)] so the CLI can exit with the
    resumable code.  [progress] (default false) renders a live
    {!Progress} line per finished strategy on a TTY stderr.  [exec]
    (default [`Fork]) selects the racing executor — see
    {!Dpool.race_auto}; [`Domains] with a [timeout] is an error. *)

val check_rtl_rtl :
  ?jobs:int ->
  ?timeout:float ->
  ?budget:Dfv_sat.Solver.budget ->
  ?progress:bool ->
  ?exec:Pool.exec_mode ->
  a:Dfv_rtl.Netlist.elaborated ->
  b:Dfv_rtl.Netlist.elaborated ->
  bound:int ->
  unit ->
  (Dfv_sec.Checker.rtl_verdict, Dfv_core.Dfv_error.t) result
(** BMC with frames [0..bound-1] sharded across workers.  Any [Sat]
    frame yields [Rtl_not_equivalent] (the verdict class is
    deterministic; which frame furnishes the counterexample may depend
    on scheduling).  Otherwise: any undecided frame (solver budget or
    worker timeout) yields [Rtl_unknown]; all frames [Unsat] yields
    [Rtl_equivalent_to_bound].  A crashed worker yields [Error] — a
    crash must not silently weaken an equivalence claim.  Solver
    statistics are summed across workers; [wall_seconds] is the
    parent's elapsed time.  [progress] (default false) renders a live
    {!Progress} line per decided frame on a TTY stderr.  [exec]
    (default [`Fork]) selects the sharding executor; under [`Auto] a
    shallow [bound] (<= 8) hints the frames short and prefers domains
    — see {!Dpool.race_auto}. *)
