(** An in-process work-stealing executor on OCaml 5 domains, plus the
    adaptive dispatcher that picks between it and the fork {!Pool}.

    The fork pool buys crash isolation and preemptive timeouts at the
    price of a [fork], a pipe, and JSON serialization {e per job} — a
    price that exceeds the job itself for short work (per-mutant
    campaign runs, shallow BMC frame shards), which is exactly the
    regression [BENCH_PAR_SPEEDUP.json] recorded.  This executor runs
    the same jobs on worker {e domains} in shared memory: results pass
    by reference, job closures by capture, and the only per-job cost is
    a mutex-guarded deque pop.

    {2 Scheduling}

    Job indices are dealt round-robin onto per-worker deques at start;
    each worker pops its own deque from one end and, when empty, steals
    from the other end of a sibling's (visible as
    [pool.domains.steals]).  At most [min jobs cores] worker domains
    run — domains beyond the core count only contend.  The coordinating
    domain merges telemetry and fires [?on_result] in completion order,
    exactly like the fork parent.

    {2 Determinism}

    Outcomes are returned in input order and job seeds remain
    {!Pool.job_seed} of the job {e index}, so a campaign's verdicts are
    byte-identical across job counts {e and} across executors — the
    cross-executor gate of the parity tests.

    {2 Telemetry and isolation}

    Each job runs with all three {!Dfv_obs} sinks domain-isolated
    ({!Dfv_obs.Metrics.isolate_domain} and friends), so its metrics,
    spans and coverage are a clean delta, shipped to the coordinator as
    the same [{"metrics";"trace";"coverage"}] payload the fork protocol
    uses and merged through {!Pool.merge_telemetry} — trace lanes are
    tagged ["dfv domain N"] instead of ["dfv worker <pid>"].

    {2 What domains do not give you}

    No crash isolation: a segfaulting C stub or an OOM kill takes the
    whole process down (exceptions, including stack overflow mapped by
    {!Dfv_core.Dfv_error.guard}, are contained as [Error] outcomes).
    No preemptive timeout: a domain cannot be killed, so there is no
    [?timeout] here, and cancellation ({!race} losers, {!Pool.request_stop})
    is cooperative at job granularity — in-flight jobs finish, undealt
    jobs are never started.  Workloads needing either property belong
    on the fork pool; [`Auto] dispatch routes them there.

    {2 The fork/domains one-way door}

    OCaml 5 forbids [Unix.fork] in any process that has ever spawned a
    domain, even after every domain has been joined.  Running this
    executor therefore {e permanently} closes the fork pool for the
    process ({!fork_available} reports the door's state).  [`Auto]
    dispatch respects it — once a workload has run on domains, every
    later [`Auto] decision resolves to domains, hints and probes
    notwithstanding — but explicitly mixing [`Domains] then [`Fork] in
    one process is a caller error that the runtime rejects.  Order
    fork-pool work before domains work (the bench and test suites do),
    or pick one executor per process.

    One mitigation falls out of the single-worker fast path: a pool
    that resolves to one worker runs its jobs inline on the calling
    domain without spawning, so it neither pays the multi-domain
    runtime (every minor GC becomes a stop-the-world rendezvous) nor
    closes the door — 1-core hosts can alternate executors freely. *)

val fork_available : unit -> bool
(** [true] until the first worker domain is spawned in this process;
    [false] forever after (the OCaml 5 runtime then refuses
    [Unix.fork], so the fork {!Pool} is unusable). *)

val map :
  ?jobs:int ->
  ?label:(int -> string) ->
  ?telemetry:bool ->
  ?on_result:(int -> 'r Pool.outcome -> unit) ->
  ('a -> 'r) ->
  'a list ->
  'r Pool.outcome list
(** [map f inputs] runs [f] on every input across worker domains and
    returns the outcomes in input order; parameters have the same
    meaning as in {!Pool.map} ([jobs] is additionally clamped to
    {!Pool.cores}).  A job that raises is recorded as [Error] via
    {!Dfv_core.Dfv_error.guard}.  If {!Pool.request_stop} fires
    mid-run, jobs not yet started come back [Error (Interrupted _)]. *)

val race :
  ?jobs:int ->
  ?label:(int -> string) ->
  ?telemetry:bool ->
  ?on_result:(int -> 'r Pool.outcome -> unit) ->
  conclusive:('r -> bool) ->
  ('a -> 'r) ->
  'a list ->
  'r Pool.race
(** Portfolio mode, mirroring {!Pool.race}: the lowest-indexed
    conclusive result recorded so far wins and cancellation is
    cooperative — running jobs complete but their results are
    discarded (outcomes stay [None], [on_result] is not called). *)

(** {2 Adaptive dispatch} *)

type hint = [ `Short | `Long ]
(** A caller's static estimate of per-job cost, when it has one (mutant
    class, BMC frame depth). *)

val short_job_threshold : float
(** Measured first-job cost (seconds) at or below which [`Auto]
    dispatch prefers domains. *)

val map_auto :
  ?jobs:int ->
  ?timeout:float ->
  ?heartbeat:float ->
  ?label:(int -> string) ->
  ?retry:Pool.retry ->
  ?telemetry:bool ->
  ?on_result:(int -> 'r Pool.outcome -> unit) ->
  ?hint:hint ->
  exec:Pool.exec_mode ->
  encode:('r -> Dfv_obs.Json.t) ->
  decode:(Dfv_obs.Json.t -> ('r, string) result) ->
  ('a -> 'r) ->
  'a list ->
  'r Pool.outcome list
(** {!Pool.map} or {!map}, selected by [exec].  [`Fork] and [`Domains]
    dispatch directly ([`Domains] with a [timeout] is an
    [Invalid_argument] — a domain cannot be killed).  [`Auto] applies
    the policy: a [timeout] or [`Long] hint forces fork; a [`Short]
    hint or a single-core host forces domains; otherwise job 0 runs
    inline as a timed probe and the rest go to domains iff it finished
    within {!short_job_threshold}.  Once {!fork_available} is false,
    every decision except a [timeout]'s resolves to domains.  The
    probe's outcome is returned at
    index 0 as usual (without fork isolation — the one job [`Auto] runs
    natively).  Auto decisions are counted as [pool.exec.fork] /
    [pool.exec.domains]; explicit modes are not, so telemetry parity
    across executors holds.  Fork-only parameters ([heartbeat],
    [retry], [encode]/[decode]) are unused on the domains path. *)

val race_auto :
  ?jobs:int ->
  ?timeout:float ->
  ?heartbeat:float ->
  ?label:(int -> string) ->
  ?retry:Pool.retry ->
  ?telemetry:bool ->
  ?on_result:(int -> 'r Pool.outcome -> unit) ->
  ?hint:hint ->
  exec:Pool.exec_mode ->
  encode:('r -> Dfv_obs.Json.t) ->
  decode:(Dfv_obs.Json.t -> ('r, string) result) ->
  conclusive:('r -> bool) ->
  ('a -> 'r) ->
  'a list ->
  'r Pool.race
(** {!Pool.race} or {!race}, selected like {!map_auto} except that
    [`Auto] never probes (racing strategies are heterogeneous, and
    running one to completion first would forfeit the race): without a
    deciding [timeout]/[hint], multi-core hosts race on fork,
    single-core hosts on domains. *)
