module Bitvec = Dfv_bitvec.Bitvec
module Solver = Dfv_sat.Solver
module Sim = Dfv_rtl.Sim
module Interp = Dfv_hwir.Interp
module Checker = Dfv_sec.Checker
module Session = Dfv_sec.Session
module Dfv_error = Dfv_core.Dfv_error
module Json = Dfv_obs.Json

let now () = Unix.gettimeofday ()

(* --- wire forms -------------------------------------------------------- *)

let reason_to_json = function
  | Solver.Conflict_limit -> Json.String "conflict_limit"
  | Solver.Time_limit -> Json.String "time_limit"

let reason_of_json = function
  | Json.String "conflict_limit" -> Ok Solver.Conflict_limit
  | Json.String "time_limit" -> Ok Solver.Time_limit
  | _ -> Error "bad solver reason"

let stats_to_json (s : Checker.stats) =
  Json.Obj
    [ ("aig_ands", Json.Int s.aig_ands);
      ("sat_conflicts", Json.Int s.sat_conflicts);
      ("sat_decisions", Json.Int s.sat_decisions);
      ("sat_propagations", Json.Int s.sat_propagations);
      ("sat_clauses", Json.Int s.sat_clauses);
      ("learnts_removed", Json.Int s.learnts_removed);
      ("nodes_encoded", Json.Int s.nodes_encoded);
      ("nodes_reused", Json.Int s.nodes_reused);
      ("unroll_hits", Json.Int s.unroll_hits);
      ("queries", Json.Int s.queries);
      ("unknowns", Json.Int s.unknowns);
      ( "frame_seconds",
        Json.List (List.map (fun f -> Json.Float f) s.frame_seconds) );
      ("wall_seconds", Json.Float s.wall_seconds) ]

let ( let* ) = Result.bind

let int_field v name =
  match Json.field name v with
  | Some (Json.Int i) -> Ok i
  | _ -> Error (Printf.sprintf "missing int field %S" name)

let float_field v name =
  match Json.field name v with
  | Some (Json.Float f) -> Ok f
  | Some (Json.Int i) -> Ok (float_of_int i)
  | _ -> Error (Printf.sprintf "missing float field %S" name)

let string_field v name =
  match Json.field name v with
  | Some (Json.String s) -> Ok s
  | _ -> Error (Printf.sprintf "missing string field %S" name)

let stats_of_json v : (Checker.stats, string) result =
  let* aig_ands = int_field v "aig_ands" in
  let* sat_conflicts = int_field v "sat_conflicts" in
  let* sat_decisions = int_field v "sat_decisions" in
  let* sat_propagations = int_field v "sat_propagations" in
  let* sat_clauses = int_field v "sat_clauses" in
  let* learnts_removed = int_field v "learnts_removed" in
  let* nodes_encoded = int_field v "nodes_encoded" in
  let* nodes_reused = int_field v "nodes_reused" in
  let* unroll_hits = int_field v "unroll_hits" in
  let* queries = int_field v "queries" in
  let* unknowns = int_field v "unknowns" in
  let* frame_seconds =
    match Json.field "frame_seconds" v with
    | Some (Json.List fs) ->
      List.fold_right
        (fun f acc ->
          let* acc = acc in
          match f with
          | Json.Float f -> Ok (f :: acc)
          | Json.Int i -> Ok (float_of_int i :: acc)
          | _ -> Error "non-number frame time")
        fs (Ok [])
    | _ -> Error "missing list field \"frame_seconds\""
  in
  let* wall_seconds = float_field v "wall_seconds" in
  Ok
    {
      Checker.aig_ands;
      sat_conflicts;
      sat_decisions;
      sat_propagations;
      sat_clauses;
      learnts_removed;
      nodes_encoded;
      nodes_reused;
      unroll_hits;
      queries;
      unknowns;
      frame_seconds;
      wall_seconds;
    }

let add_stats (a : Checker.stats) (b : Checker.stats) =
  {
    Checker.aig_ands = a.aig_ands + b.aig_ands;
    sat_conflicts = a.sat_conflicts + b.sat_conflicts;
    sat_decisions = a.sat_decisions + b.sat_decisions;
    sat_propagations = a.sat_propagations + b.sat_propagations;
    sat_clauses = a.sat_clauses + b.sat_clauses;
    learnts_removed = a.learnts_removed + b.learnts_removed;
    nodes_encoded = a.nodes_encoded + b.nodes_encoded;
    nodes_reused = a.nodes_reused + b.nodes_reused;
    unroll_hits = a.unroll_hits + b.unroll_hits;
    queries = a.queries + b.queries;
    unknowns = a.unknowns + b.unknowns;
    frame_seconds = a.frame_seconds @ b.frame_seconds;
    wall_seconds = a.wall_seconds +. b.wall_seconds;
  }

let zero_stats =
  {
    Checker.aig_ands = 0;
    sat_conflicts = 0;
    sat_decisions = 0;
    sat_propagations = 0;
    sat_clauses = 0;
    learnts_removed = 0;
    nodes_encoded = 0;
    nodes_reused = 0;
    unroll_hits = 0;
    queries = 0;
    unknowns = 0;
    frame_seconds = [];
    wall_seconds = 0.0;
  }

(* SLM argument values as Verilog literals — the whole counterexample is
   a function of these (see [Checker.cex_of_params]). *)
let value_to_json = function
  | Interp.Vint bv -> Json.Obj [ ("int", Json.String (Bitvec.to_string bv)) ]
  | Interp.Varr a ->
    Json.Obj
      [ ( "arr",
          Json.List
            (Array.to_list a
            |> List.map (fun bv -> Json.String (Bitvec.to_string bv))) ) ]

let value_of_json v =
  let bv s =
    match Bitvec.of_string s with
    | bv -> Ok bv
    | exception Invalid_argument m -> Error ("bad bitvector literal: " ^ m)
  in
  match (Json.field "int" v, Json.field "arr" v) with
  | Some (Json.String s), _ ->
    let* b = bv s in
    Ok (Interp.Vint b)
  | _, Some (Json.List elems) ->
    let* bvs =
      List.fold_right
        (fun e acc ->
          let* acc = acc in
          match e with
          | Json.String s ->
            let* b = bv s in
            Ok (b :: acc)
          | _ -> Error "non-string array element")
        elems (Ok [])
    in
    Ok (Interp.Varr (Array.of_list bvs))
  | _ -> Error "bad SLM value"

let params_to_json params =
  Json.List
    (List.map
       (fun (name, v) ->
         Json.Obj [ ("name", Json.String name); ("value", value_to_json v) ])
       params)

let params_of_json = function
  | Json.List entries ->
    List.fold_right
      (fun e acc ->
        let* acc = acc in
        let* name = string_field e "name" in
        match Json.field "value" e with
        | Some v ->
          let* v = value_of_json v in
          Ok ((name, v) :: acc)
        | None -> Error "parameter without value")
      entries (Ok [])
  | _ -> Error "bad parameter list"

(* --- strategy race: SLM vs RTL ----------------------------------------- *)

(* What a strategy worker sends back: the verdict with its
   counterexample reduced to the parameter assignment. *)
type slm_wire =
  | W_equivalent of Checker.stats
  | W_not_equivalent of (string * Interp.value) list * Checker.stats
  | W_unknown of Solver.reason * Checker.stats

let slm_wire_to_json = function
  | W_equivalent stats ->
    Json.Obj
      [ ("verdict", Json.String "equivalent"); ("stats", stats_to_json stats) ]
  | W_not_equivalent (params, stats) ->
    Json.Obj
      [ ("verdict", Json.String "not_equivalent");
        ("params", params_to_json params);
        ("stats", stats_to_json stats) ]
  | W_unknown (r, stats) ->
    Json.Obj
      [ ("verdict", Json.String "unknown");
        ("reason", reason_to_json r);
        ("stats", stats_to_json stats) ]

let slm_wire_of_json v =
  let* verdict = string_field v "verdict" in
  let* stats =
    match Json.field "stats" v with
    | Some s -> stats_of_json s
    | None -> Error "missing stats"
  in
  match verdict with
  | "equivalent" -> Ok (W_equivalent stats)
  | "not_equivalent" -> (
    match Json.field "params" v with
    | Some p ->
      let* params = params_of_json p in
      Ok (W_not_equivalent (params, stats))
    | None -> Error "not_equivalent without params")
  | "unknown" -> (
    match Json.field "reason" v with
    | Some r ->
      let* r = reason_of_json r in
      Ok (W_unknown (r, stats))
    | None -> Error "unknown without reason")
  | v -> Error (Printf.sprintf "unknown verdict %S" v)

let slm_conclusive = function
  | W_equivalent _ | W_not_equivalent _ -> true
  | W_unknown _ -> false

let slm_wire_of_verdict = function
  | Checker.Equivalent stats -> W_equivalent stats
  | Checker.Not_equivalent (cex, stats) ->
    W_not_equivalent (cex.Checker.params, stats)
  | Checker.Unknown (r, stats) -> W_unknown (r, stats)

let verdict_of_slm_wire ~slm ~rtl ~spec = function
  | W_equivalent stats -> Checker.Equivalent stats
  | W_not_equivalent (params, stats) ->
    Checker.Not_equivalent (Checker.cex_of_params ~slm ~rtl ~spec params, stats)
  | W_unknown (r, stats) -> Checker.Unknown (r, stats)

let budget_key = function
  | None -> "-"
  | Some b ->
    Printf.sprintf "c=%s,s=%s"
      (match b.Solver.max_conflicts with
      | Some c -> string_of_int c
      | None -> "-")
      (match b.Solver.max_seconds with
      | Some s -> Printf.sprintf "%g" s
      | None -> "-")

let slm_wire_category = function
  | Ok (W_equivalent _) -> "equivalent"
  | Ok (W_not_equivalent _) -> "cex"
  | Ok (W_unknown _) -> "unknown"
  | Error _ -> "failed"

let check_slm_rtl ?jobs ?timeout ?budget ?journal ?(progress = false)
    ?(exec = (`Fork : Pool.exec_mode)) ~slm ~rtl ~spec () =
  Dfv_obs.Trace.with_span ~cat:"par" "par.check_slm_rtl" @@ fun () ->
  let strategies = [ ("sweep", true); ("direct", false) ] in
  let run (_, sweep) =
    match Checker.check_slm_rtl ~sweep ?budget ~slm ~rtl ~spec () with
    | Checker.Equivalent stats -> W_equivalent stats
    | Checker.Not_equivalent (cex, stats) ->
      W_not_equivalent (cex.Checker.params, stats)
    | Checker.Unknown (r, stats) -> W_unknown (r, stats)
  in
  let reconstruct = function
    | W_equivalent stats -> Ok (Checker.Equivalent stats)
    | W_not_equivalent (params, stats) ->
      Ok
        (Checker.Not_equivalent
           (Checker.cex_of_params ~slm ~rtl ~spec params, stats))
    | W_unknown (r, stats) -> Ok (Checker.Unknown (r, stats))
  in
  (* The journal is bound to the structural content of the query — the
     program, the elaborated netlist, the spec (its drives tabulated)
     and the solver budget — so a replayed verdict is trusted exactly
     when it answers the same question. *)
  let jnl =
    match journal with
    | None -> Ok None
    | Some path -> (
      let key =
        "sec-portfolio|" ^ Dfv_sec.Fingerprint.pair ~slm ~rtl ~spec
        ^ "|budget=" ^ budget_key budget
      in
      match Journal.open_ ~path ~campaign:key with
      | Ok j -> Ok (Some j)
      | Error m -> Error (Dfv_error.Internal ("journal: " ^ m)))
  in
  match jnl with
  | Error e -> Error e
  | Ok jnl -> (
    let fp name = Journal.fingerprint ("strategy|" ^ name) in
    let replay name =
      Option.bind jnl (fun j ->
          Option.bind (Journal.find j (fp name)) (fun p ->
              Result.to_option (slm_wire_of_json p)))
    in
    let replayed =
      List.filter_map
        (fun (name, _) -> Option.map (fun w -> (name, w)) (replay name))
        strategies
    in
    let finish result =
      (match jnl with Some j -> Journal.close j | None -> ());
      result
    in
    match List.find_opt (fun (_, w) -> slm_conclusive w) replayed with
    | Some (_, w) ->
      (* A conclusive verdict already on disk: no worker runs at all. *)
      finish (reconstruct w)
    | None -> (
      let missing =
        List.filter
          (fun (name, _) -> not (List.mem_assoc name replayed))
          strategies
      in
      match missing with
      | [] -> (
        (* Every strategy replayed as a (deterministic, same-budget)
           Unknown: report the first. *)
        match replayed with
        | (_, w) :: _ -> finish (reconstruct w)
        | [] ->
          finish
            (Error
               (Dfv_error.Internal "portfolio produced no outcome (empty race?)")))
      | _ :: _ -> (
        let missing_arr = Array.of_list missing in
        let reporter =
          if progress then
            Progress.create ~label:"sec portfolio"
              ~total:(List.length missing) ()
          else None
        in
        let on_result k outcome =
          (match reporter with
          | Some p -> Progress.step p (slm_wire_category outcome)
          | None -> ());
          match (jnl, outcome) with
          | Some j, Ok w ->
            Journal.append j ~fp:(fp (fst missing_arr.(k))) (slm_wire_to_json w)
          | _ -> ()
        in
        let r =
          Dpool.race_auto ~exec ?jobs ?timeout
            ~label:(fun i -> "sec:" ^ fst missing_arr.(i))
            ~on_result ~encode:slm_wire_to_json ~decode:slm_wire_of_json
            ~conclusive:slm_conclusive run missing
        in
        (match reporter with Some p -> Progress.finish p | None -> ());
        match r.Pool.winner with
        | Some (_, w) -> finish (reconstruct w)
        | None ->
          finish
            (if Pool.stop_requested () then
               Error (Dfv_error.Interrupted { job = "sec-portfolio" })
             else begin
               (* No strategy concluded: prefer a solver Unknown (an
                  honest "ran out of budget") — replayed or fresh — over
                  a worker failure. *)
               let outcomes = Array.to_list r.Pool.outcomes in
               let unknown =
                 match
                   List.find_map
                     (function (_, W_unknown (r, s)) -> Some (r, s) | _ -> None)
                     replayed
                 with
                 | Some u -> Some u
                 | None ->
                   List.find_map
                     (function
                       | Some (Ok (W_unknown (r, s))) -> Some (r, s)
                       | _ -> None)
                     outcomes
               in
               match unknown with
               | Some (r, stats) -> Ok (Checker.Unknown (r, stats))
               | None -> (
                 match
                   List.find_map
                     (function Some (Error e) -> Some e | _ -> None)
                     outcomes
                 with
                 | Some e -> Error e
                 | None ->
                   Error
                     (Dfv_error.Internal
                        "portfolio produced no outcome (empty race?)"))
             end))))

(* --- frame shards: RTL vs RTL ------------------------------------------ *)

type frame_wire =
  | F_unsat of Checker.stats
  | F_sat of Checker.rtl_cex * Checker.stats
  | F_unknown of Solver.reason * Checker.stats

let inputs_to_json inputs_per_cycle =
  Json.List
    (Array.to_list inputs_per_cycle
    |> List.map (fun ins ->
           Json.List
             (List.map
                (fun (port, bv) ->
                  Json.Obj
                    [ ("port", Json.String port);
                      ("value", Json.String (Bitvec.to_string bv)) ])
                ins)))

let inputs_of_json = function
  | Json.List cycles ->
    let* per_cycle =
      List.fold_right
        (fun cyc acc ->
          let* acc = acc in
          match cyc with
          | Json.List ins ->
            let* ins =
              List.fold_right
                (fun i acc ->
                  let* acc = acc in
                  let* port = string_field i "port" in
                  let* s = string_field i "value" in
                  match Bitvec.of_string s with
                  | bv -> Ok ((port, bv) :: acc)
                  | exception Invalid_argument m ->
                    Error ("bad bitvector literal: " ^ m))
                ins (Ok [])
            in
            Ok (ins :: acc)
          | _ -> Error "bad cycle inputs")
        cycles (Ok [])
    in
    Ok (Array.of_list per_cycle)
  | _ -> Error "bad inputs_per_cycle"

let frame_wire_to_json = function
  | F_unsat stats ->
    Json.Obj [ ("frame", Json.String "unsat"); ("stats", stats_to_json stats) ]
  | F_sat (cex, stats) ->
    Json.Obj
      [ ("frame", Json.String "sat");
        ("inputs", inputs_to_json cex.Checker.inputs_per_cycle);
        ("cycle", Json.Int cex.Checker.diverging_cycle);
        ("port", Json.String cex.Checker.diverging_port);
        ("a", Json.String (Bitvec.to_string cex.Checker.value_a));
        ("b", Json.String (Bitvec.to_string cex.Checker.value_b));
        ("stats", stats_to_json stats) ]
  | F_unknown (r, stats) ->
    Json.Obj
      [ ("frame", Json.String "unknown");
        ("reason", reason_to_json r);
        ("stats", stats_to_json stats) ]

let frame_wire_of_json v =
  let* kind = string_field v "frame" in
  let* stats =
    match Json.field "stats" v with
    | Some s -> stats_of_json s
    | None -> Error "missing stats"
  in
  match kind with
  | "unsat" -> Ok (F_unsat stats)
  | "unknown" -> (
    match Json.field "reason" v with
    | Some r ->
      let* r = reason_of_json r in
      Ok (F_unknown (r, stats))
    | None -> Error "unknown without reason")
  | "sat" ->
    let* inputs_per_cycle =
      match Json.field "inputs" v with
      | Some i -> inputs_of_json i
      | None -> Error "sat frame without inputs"
    in
    let* diverging_cycle = int_field v "cycle" in
    let* diverging_port = string_field v "port" in
    let* a = string_field v "a" in
    let* b = string_field v "b" in
    let bv s =
      match Bitvec.of_string s with
      | bv -> Ok bv
      | exception Invalid_argument m -> Error ("bad bitvector literal: " ^ m)
    in
    let* value_a = bv a in
    let* value_b = bv b in
    Ok
      (F_sat
         ( {
             Checker.inputs_per_cycle;
             diverging_cycle;
             diverging_port;
             value_a;
             value_b;
           },
           stats ))
  | k -> Error (Printf.sprintf "unknown frame verdict %S" k)

(* Same re-simulation the sequential checker performs on a SAT model
   (its [find_divergence] is private); walks both designs on the shared
   concrete inputs until an output differs. *)
let find_divergence a b inputs_per_cycle =
  let sim_a = Sim.create a and sim_b = Sim.create b in
  let n = Array.length inputs_per_cycle in
  let rec go t =
    if t >= n then None
    else begin
      let outs_a = Sim.cycle sim_a inputs_per_cycle.(t) in
      let outs_b = Sim.cycle sim_b inputs_per_cycle.(t) in
      let diff =
        List.find_opt
          (fun (name, va) -> not (Bitvec.equal va (List.assoc name outs_b)))
          outs_a
      in
      match diff with
      | Some (name, va) -> Some (t, name, va, List.assoc name outs_b)
      | None -> go (t + 1)
    end
  in
  go 0

(* Decide one frame of the product machine in a private session.  Frame
   miters are independent — the sequential checker's blocking clauses
   are an optimization, not a soundness requirement — so [Sat] here is a
   real reset-reachable divergence regardless of what other frames say. *)
let check_frame ~budget ~a ~b t =
  let session = Session.create ?budget () in
  let budget = Session.budget session in
  let t0 = now () in
  let product =
    Session.product session ~a ~b
      ~initial_a:(Session.reset_state a)
      ~initial_b:(Session.reset_state b)
  in
  let lit = Session.frame_miter product t in
  match Session.check ~budget session lit with
  | Solver.Unsat ->
    F_unsat { (Session.stats session) with wall_seconds = now () -. t0 }
  | Solver.Unknown r ->
    F_unknown (r, { (Session.stats session) with wall_seconds = now () -. t0 })
  | Solver.Sat -> (
    let all = Session.frame_inputs product in
    let concrete =
      Array.map
        (fun inputs ->
          List.map (fun (n, w) -> (n, Session.model_word session w)) inputs)
        (Array.sub all 0 (min (t + 1) (Array.length all)))
    in
    match find_divergence a b concrete with
    | Some (t, port, va, vb) ->
      F_sat
        ( {
            Checker.inputs_per_cycle = concrete;
            diverging_cycle = t;
            diverging_port = port;
            value_a = va;
            value_b = vb;
          },
          { (Session.stats session) with wall_seconds = now () -. t0 } )
    | None -> failwith "internal: SAT model did not re-simulate to a divergence")

let frame_wire_category = function
  | Ok (F_unsat _) -> "unsat"
  | Ok (F_sat _) -> "cex"
  | Ok (F_unknown _) -> "unknown"
  | Error _ -> "failed"

let check_rtl_rtl ?jobs ?timeout ?budget ?(progress = false)
    ?(exec = (`Fork : Pool.exec_mode)) ~a ~b ~bound () =
  Dfv_obs.Trace.with_span ~cat:"par" "par.check_rtl_rtl" @@ fun () ->
  if bound < 1 then
    Error (Dfv_error.Spec_violation "bound must be >= 1")
  else begin
    let t0 = now () in
    let frames = List.init bound (fun t -> t) in
    let reporter =
      if progress then Progress.create ~label:"sec bmc" ~total:bound ()
      else None
    in
    let on_result _ outcome =
      match reporter with
      | Some p -> Progress.step p (frame_wire_category outcome)
      | None -> ()
    in
    (* Shallow frame miters are short jobs (the fork tax dominates);
       deep unrollings earn fork isolation under [`Auto]. *)
    let hint = if bound <= 8 then Some `Short else None in
    let r =
      Dpool.race_auto ~exec ?hint ?jobs ?timeout
        ~label:(Printf.sprintf "bmc:frame%d")
        ~on_result ~encode:frame_wire_to_json ~decode:frame_wire_of_json
        ~conclusive:(function F_sat _ -> true | _ -> false)
        (check_frame ~budget ~a ~b) frames
    in
    (match reporter with Some p -> Progress.finish p | None -> ());
    let stats_of_outcomes () =
      Array.fold_left
        (fun acc o ->
          match o with
          | Some (Ok (F_unsat s | F_sat (_, s) | F_unknown (_, s))) ->
            add_stats acc s
          | _ -> acc)
        zero_stats r.Pool.outcomes
    in
    let finish stats = { stats with Checker.wall_seconds = now () -. t0 } in
    match r.Pool.winner with
    | Some (_, F_sat (cex, _)) ->
      Ok (Checker.Rtl_not_equivalent (cex, finish (stats_of_outcomes ())))
    | Some _ -> assert false (* only F_sat is conclusive *)
    | None -> (
      let outcomes = Array.to_list r.Pool.outcomes in
      (* A worker timeout is the wall-clock twin of a solver budget
         running out; a crash is not — it must not weaken the claim. *)
      match
        List.find_map
          (function Some (Error (Dfv_error.Worker_crashed _ as e)) -> Some e | _ -> None)
          outcomes
      with
      | Some e -> Error e
      | None -> (
        let unknown =
          List.find_map
            (function
              | Some (Ok (F_unknown (r, _))) -> Some r
              | Some (Error (Dfv_error.Worker_timeout _)) ->
                Some Solver.Time_limit
              | _ -> None)
            outcomes
        in
        match unknown with
        | Some reason ->
          Ok (Checker.Rtl_unknown (reason, finish (stats_of_outcomes ())))
        | None -> (
          match
            List.find_map
              (function Some (Error e) -> Some e | _ -> None)
              outcomes
          with
          | Some e -> Error e
          | None ->
            Ok
              (Checker.Rtl_equivalent_to_bound
                 (bound, finish (stats_of_outcomes ()))))))
  end
