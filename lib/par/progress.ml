module Metrics = Dfv_obs.Metrics

type t = {
  total : int;
  label : string;
  mode : string option; (* active exec mode, shown after the label *)
  deadline_at : float option;
  t_start : float;
  mutable done_ : int;
  tallies : (string, int ref) Hashtbl.t;
  mutable tally_order : string list; (* first-seen order *)
  retry0 : int; (* pool.retry.attempts at creation, for a run-local delta *)
  mutable last_render : float;
  mutable width : int; (* widest line printed, for clean overwrite *)
}

let retry_counter = Metrics.counter "pool.retry.attempts"

let create ?(force = false) ?mode ?deadline_at ~label ~total () =
  if total <= 0 then None
  else if not (force || Unix.isatty Unix.stderr) then None
  else
    Some
      {
        total;
        label;
        mode;
        deadline_at;
        t_start = Unix.gettimeofday ();
        done_ = 0;
        tallies = Hashtbl.create 8;
        tally_order = [];
        retry0 = Metrics.counter_value retry_counter;
        last_render = 0.0;
        width = 0;
      }

let fmt_eta secs =
  if secs < 0.0 then "--"
  else if secs < 100.0 then Printf.sprintf "%.0fs" secs
  else if secs < 6000.0 then Printf.sprintf "%.1fm" (secs /. 60.0)
  else Printf.sprintf "%.1fh" (secs /. 3600.0)

let render t ~final =
  let now = Unix.gettimeofday () in
  (* Throttle to ~10 redraws/s; the final line always lands. *)
  if final || now -. t.last_render >= 0.1 then begin
    t.last_render <- now;
    let elapsed = now -. t.t_start in
    (* Zero-elapsed (first render lands within clock resolution) and
       zero-done both yield no meaningful rate; show 0.0/s and "ETA --"
       rather than dividing into inf/nan or a billion-hour ETA. *)
    let rate = if elapsed > 0.0 then float_of_int t.done_ /. elapsed else 0.0 in
    let eta =
      if t.done_ >= t.total then ""
      else if t.done_ = 0 || rate <= 0.0 then " ETA --"
      else
        Printf.sprintf " ETA %s"
          (fmt_eta (float_of_int (t.total - t.done_) /. rate))
    in
    let deadline =
      match t.deadline_at with
      | Some d when not final ->
        Printf.sprintf " deadline %s" (fmt_eta (d -. now))
      | _ -> ""
    in
    let tallies =
      List.fold_left
        (fun acc k ->
          acc ^ Printf.sprintf " %s:%d" k !(Hashtbl.find t.tallies k))
        ""
        t.tally_order
    in
    let retries = Metrics.counter_value retry_counter - t.retry0 in
    let retries = if retries > 0 then Printf.sprintf " retry:%d" retries else "" in
    let mode =
      match t.mode with Some m -> Printf.sprintf " [%s]" m | None -> ""
    in
    let body =
      Printf.sprintf "\r%s%s %d/%d (%.0f%%) %.1f/s%s%s%s%s" t.label mode
        t.done_ t.total
        (100.0 *. float_of_int t.done_ /. float_of_int t.total)
        rate eta deadline tallies retries
    in
    let pad = max 0 (t.width - String.length body) in
    t.width <- max t.width (String.length body);
    prerr_string (body ^ String.make pad ' ');
    if final then prerr_newline () else flush stderr
  end

let step t category =
  t.done_ <- t.done_ + 1;
  (match Hashtbl.find_opt t.tallies category with
  | Some r -> Stdlib.incr r
  | None ->
    Hashtbl.add t.tallies category (ref 1);
    t.tally_order <- t.tally_order @ [ category ]);
  render t ~final:false

let finish t = render t ~final:true
