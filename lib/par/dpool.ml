module Dfv_error = Dfv_core.Dfv_error
module Json = Dfv_obs.Json
module Metrics = Dfv_obs.Metrics
module Trace = Dfv_obs.Trace
module Coverage = Dfv_obs.Coverage

let m_exec_fork = Metrics.counter "pool.exec.fork"
let m_exec_domains = Metrics.counter "pool.exec.domains"
let m_steals = Metrics.counter "pool.domains.steals"
let m_interrupted = Metrics.counter "pool.interrupted"

(* OCaml 5's one-way door: once a process has spawned any domain,
   [Unix.fork] is forbidden for the rest of its life — even after every
   spawned domain has been joined (the runtime refuses with "Unix.fork
   may not be called while other domains were created").  The flag flips
   the first time [run] spawns a worker and never flips back; adaptive
   dispatch consults it so [`Auto] can never route a later workload to
   the fork pool after an earlier one ran on domains. *)
let domains_used = Atomic.make false
let fork_available () = not (Atomic.get domains_used)

(* --- work-stealing deques ---------------------------------------------- *)

(* Every job index is dealt up front (no job spawns jobs), so a deque is
   a fixed slice with two cursors: the owner takes from [lo], thieves
   from [hi].  A plain mutex per deque beats a lock-free structure here —
   the critical section is two loads and a store, and jobs are
   simulation runs, not nanosecond tasks. *)
type deque = {
  mu : Mutex.t;
  slots : int array;
  mutable lo : int;
  mutable hi : int; (* exclusive *)
}

let pop_own d =
  Mutex.lock d.mu;
  let r =
    if d.lo < d.hi then begin
      let j = d.slots.(d.lo) in
      d.lo <- d.lo + 1;
      Some j
    end
    else None
  in
  Mutex.unlock d.mu;
  r

let steal d =
  Mutex.lock d.mu;
  let r =
    if d.lo < d.hi then begin
      d.hi <- d.hi - 1;
      Some d.slots.(d.hi)
    end
    else None
  in
  Mutex.unlock d.mu;
  r

(* --- completion queue --------------------------------------------------- *)

type 'r completion = {
  c_job : int;
  c_domain : int;
  c_outcome : 'r Pool.outcome;
  c_telemetry : Json.t option;
}

type 'r cq = {
  q_mu : Mutex.t;
  q_cv : Condition.t;
  mutable q_items : 'r completion list; (* rev completion order *)
  mutable q_exited : int; (* worker domains that have stood down *)
}

let push_completion q c =
  Mutex.lock q.q_mu;
  q.q_items <- c :: q.q_items;
  Condition.signal q.q_cv;
  Mutex.unlock q.q_mu

let announce_exit q =
  Mutex.lock q.q_mu;
  q.q_exited <- q.q_exited + 1;
  Condition.broadcast q.q_cv;
  Mutex.unlock q.q_mu

(* --- worker side -------------------------------------------------------- *)

(* One job on a worker domain: isolate all three observability sinks so
   the job records a clean delta (the in-process analogue of the fork
   child's reset-then-ship), run the job under the error taxonomy's
   guard, snapshot, release.  Isolation is unconditional even with
   telemetry off — without it, concurrent jobs would race on the global
   registries. *)
let run_job ~telemetry f x =
  Metrics.isolate_domain ();
  Trace.isolate_domain ();
  Coverage.isolate_domain ();
  Fun.protect
    ~finally:(fun () ->
      Metrics.release_domain ();
      Trace.release_domain ();
      Coverage.release_domain ())
    (fun () ->
      let outcome =
        match Dfv_error.guard (fun () -> f x) with
        | o -> o
        | exception e -> Error (Dfv_error.Internal (Printexc.to_string e))
      in
      let telem =
        if telemetry then
          Some
            (Json.Obj
               [ ("metrics", Metrics.domain_snapshot ());
                 ("trace", Trace.domain_export ());
                 ("coverage", Coverage.domain_snapshot ()) ])
        else None
      in
      (outcome, telem))

(* --- the executor ------------------------------------------------------- *)

let run (type a r) ?jobs ?label:_ ?(telemetry = true) ?on_result
    ~(conclusive : (r -> bool) option) (f : a -> r) (inputs : a list) :
    r Pool.race =
  let jobs = match jobs with None -> Pool.cores () | Some j -> j in
  if jobs < 1 then invalid_arg "Dpool: jobs must be >= 1";
  let inputs = Array.of_list inputs in
  let n = Array.length inputs in
  let outcomes : r Pool.outcome option array = Array.make n None in
  let winner = ref None in
  if n = 0 then { Pool.winner = None; outcomes }
  else begin
    (* Domains beyond the core count only contend with each other (and
       with the coordinating domain), so concurrency is clamped to the
       host — unlike the fork pool, where [jobs] is taken literally.
       Verdicts cannot tell the difference; only wall-clock can. *)
    let w = max 1 (min (min jobs n) (Pool.cores ())) in
    let cancel = Atomic.make false in
    (* The coordinating domain owns the global sinks: it merges each
       job's telemetry and fires [on_result] in completion order, so
       callers see exactly the fork pool's delivery discipline. *)
    let record c =
      if (not (Atomic.get cancel)) && outcomes.(c.c_job) = None then begin
        outcomes.(c.c_job) <- Some c.c_outcome;
        (match c.c_telemetry with
        | Some v ->
          Pool.merge_telemetry
            ~label:(Printf.sprintf "dfv domain %d" c.c_domain)
            ~job:c.c_job v
        | None -> ());
        match on_result with
        | Some notify -> notify c.c_job c.c_outcome
        | None -> ()
      end
    in
    let check_winner () =
      match conclusive with
      | Some is_conclusive when !winner = None ->
        (* Lowest job index among the recorded conclusive results wins,
           mirroring the fork pool's deterministic tie-break. *)
        let best = ref None in
        Array.iteri
          (fun i o ->
            match o with
            | Some (Ok r) when is_conclusive r ->
              if !best = None then best := Some (i, r)
            | _ -> ())
          outcomes;
        (match !best with
        | Some wn ->
          winner := Some wn;
          Atomic.set cancel true
        | None -> ())
      | _ -> ()
    in
    if w = 1 then begin
      (* A single-worker pool runs inline on the calling domain.
         Spawning one domain and blocking here would buy no parallelism
         while switching the runtime into multi-domain mode (every minor
         collection becomes a stop-the-world rendezvous — a measured
         3-4% tax on simulation-heavy campaigns) and slamming the fork
         door for the rest of the process.  Jobs run in index order, so
         the lowest-index-conclusive winner rule holds trivially. *)
      let did = (Domain.self () :> int) in
      (try
         for j = 0 to n - 1 do
           if Atomic.get cancel || Pool.stop_requested () then raise Exit;
           let outcome, telem = run_job ~telemetry f inputs.(j) in
           record
             { c_job = j; c_domain = did; c_outcome = outcome;
               c_telemetry = telem };
           check_winner ()
         done
       with Exit -> ())
    end
    else begin
      let counts = Array.make w 0 in
      for j = 0 to n - 1 do
        counts.(j mod w) <- counts.(j mod w) + 1
      done;
      let deques =
        Array.init w (fun k ->
            { mu = Mutex.create (); slots = Array.make counts.(k) 0; lo = 0;
              hi = counts.(k) })
      in
      let fill = Array.make w 0 in
      (* Round-robin dealing: worker k starts with jobs k, k+w, k+2w … so
         early (often journal-missing) indices spread across domains. *)
      for j = 0 to n - 1 do
        let k = j mod w in
        deques.(k).slots.(fill.(k)) <- j;
        fill.(k) <- fill.(k) + 1
      done;
      let q =
        { q_mu = Mutex.create (); q_cv = Condition.create (); q_items = [];
          q_exited = 0 }
      in
      let next_job k =
        match pop_own deques.(k) with
        | Some _ as j -> j
        | None ->
          let rec scan i =
            if i >= w then None
            else
              match steal deques.((k + i) mod w) with
              | Some _ as j ->
                Metrics.incr m_steals;
                j
              | None -> scan (i + 1)
          in
          scan 1
      in
      let worker k () =
        Fun.protect
          ~finally:(fun () -> announce_exit q)
          (fun () ->
            let did = (Domain.self () :> int) in
            let rec loop () =
              if Atomic.get cancel || Pool.stop_requested () then ()
              else
                match next_job k with
                | None -> ()
                | Some j ->
                  let outcome, telem = run_job ~telemetry f inputs.(j) in
                  push_completion q
                    { c_job = j; c_domain = did; c_outcome = outcome;
                      c_telemetry = telem };
                  loop ()
            in
            loop ())
      in
      Atomic.set domains_used true;
      let domains = Array.init w (fun k -> Domain.spawn (worker k)) in
      let rec drain () =
        Mutex.lock q.q_mu;
        while q.q_items = [] && q.q_exited < w do
          Condition.wait q.q_cv q.q_mu
        done;
        let batch = List.rev q.q_items in
        q.q_items <- [];
        let all_exited = q.q_exited = w in
        Mutex.unlock q.q_mu;
        List.iter record batch;
        check_winner ();
        if not (all_exited && batch = []) then drain ()
      in
      drain ();
      Array.iter Domain.join domains
    end;
    if Pool.stop_requested () && not (Atomic.get cancel) then
      Array.iter
        (fun o -> if o = None then Metrics.incr m_interrupted)
        outcomes;
    { Pool.winner = !winner; outcomes }
  end

let map ?jobs ?label ?telemetry ?on_result f inputs =
  let lbl = label in
  let r = run ?jobs ?label ?telemetry ?on_result ~conclusive:None f inputs in
  let label = match lbl with Some l -> l | None -> string_of_int in
  Array.to_list r.Pool.outcomes
  |> List.mapi (fun i o ->
         match o with
         | Some o -> o
         | None ->
           if Pool.stop_requested () then
             Error (Dfv_error.Interrupted { job = label i })
           else
             Error
               (Dfv_error.Worker_crashed
                  { job = label i; detail = "job never completed" }))

let race ?jobs ?label ?telemetry ?on_result ~conclusive f inputs =
  run ?jobs ?label ?telemetry ?on_result ~conclusive:(Some conclusive) f
    inputs

(* --- adaptive dispatch -------------------------------------------------- *)

(* Below this measured first-job cost, fork + pipe overhead dominates
   and the domains executor wins; above it, process isolation is cheap
   relative to the work and fork keeps its crash/timeout guarantees. *)
let short_job_threshold = 0.25

type hint = [ `Short | `Long ]

let note = function
  | `Fork -> Metrics.incr m_exec_fork
  | `Domains -> Metrics.incr m_exec_domains

(* Static policy, applied when no probe is possible or wanted: a
   timeout needs preemptive kill (fork only); an explicit cost hint
   decides directly — except that the fork preference yields once the
   process has spawned domains (the one-way door above); otherwise a
   single core means fork can only lose (same serial work plus fork +
   serialization per job). *)
let choose_static ~timeout ~hint =
  match (timeout, hint) with
  | Some _, _ -> Some `Fork
  | None, Some `Long ->
    Some (if fork_available () then `Fork else `Domains)
  | None, Some `Short -> Some `Domains
  | None, None ->
    if Pool.cores () = 1 || not (fork_available ()) then Some `Domains
    else None

let require_no_timeout timeout =
  match timeout with
  | Some _ ->
    invalid_arg
      "Dpool: per-job timeouts require the fork executor (a domain \
       cannot be killed preemptively)"
  | None -> ()

let map_auto (type a r) ?jobs ?timeout ?heartbeat ?label ?retry ?telemetry
    ?on_result ?hint ~(exec : Pool.exec_mode)
    ~(encode : r -> Json.t) ~(decode : Json.t -> (r, string) result)
    (f : a -> r) (inputs : a list) : r Pool.outcome list =
  let fork ?label ?on_result inputs =
    Pool.map ?jobs ?timeout ?heartbeat ?label ?retry ?telemetry ?on_result
      ~encode ~decode f inputs
  in
  let domains ?label ?on_result inputs =
    map ?jobs ?label ?telemetry ?on_result f inputs
  in
  match exec with
  | `Fork -> fork ?label ?on_result inputs
  | `Domains ->
    require_no_timeout timeout;
    domains ?label ?on_result inputs
  | `Auto -> (
    match choose_static ~timeout ~hint with
    | Some m ->
      note m;
      (match m with
      | `Fork -> fork ?label ?on_result inputs
      | `Domains -> domains ?label ?on_result inputs)
    | None -> (
      (* Measured probe: run job 0 inline (on this domain, no isolation
         — its telemetry lands in the global sinks directly, which is
         what merging would do anyway) and time it; the remaining jobs
         go to whichever executor the measured cost favours, with
         indices shifted so labels, seeds and [on_result] still see the
         original positions. *)
      match inputs with
      | [] -> []
      | x0 :: rest ->
        let t0 = Unix.gettimeofday () in
        let o0 =
          match Dfv_error.guard (fun () -> f x0) with
          | o -> o
          | exception e -> Error (Dfv_error.Internal (Printexc.to_string e))
        in
        let dt = Unix.gettimeofday () -. t0 in
        (match on_result with Some notify -> notify 0 o0 | None -> ());
        let shifted_notify =
          Option.map (fun notify i o -> notify (i + 1) o) on_result
        in
        let shifted_label = Option.map (fun l i -> l (i + 1)) label in
        let m =
          if dt <= short_job_threshold || not (fork_available ()) then
            `Domains
          else `Fork
        in
        note m;
        let rest_outcomes =
          match m with
          | `Domains ->
            domains ?label:shifted_label ?on_result:shifted_notify rest
          | `Fork -> fork ?label:shifted_label ?on_result:shifted_notify rest
        in
        o0 :: rest_outcomes))

let race_auto ?jobs ?timeout ?heartbeat ?label ?retry ?telemetry ?on_result
    ?hint ~(exec : Pool.exec_mode) ~encode ~decode ~conclusive f inputs =
  let fork () =
    Pool.race ?jobs ?timeout ?heartbeat ?label ?retry ?telemetry ?on_result
      ~encode ~decode ~conclusive f inputs
  in
  let domains () =
    race ?jobs ?label ?telemetry ?on_result ~conclusive f inputs
  in
  match exec with
  | `Fork -> fork ()
  | `Domains ->
    require_no_timeout timeout;
    domains ()
  | `Auto ->
    (* No inline probe for races: racing strategies are heterogeneous,
       so job 0's cost says nothing about the others — and running it
       to completion first would forfeit the race.  Multi-core hosts
       default to fork (isolation for long adversarial strategies)
       unless the process has already spawned domains. *)
    let m =
      match choose_static ~timeout ~hint with
      | Some m -> m
      | None -> if fork_available () then `Fork else `Domains
    in
    note m;
    (match m with `Fork -> fork () | `Domains -> domains ())
