(** Append-only, crash-safe write-ahead journal for campaign results.

    A long fault campaign or SEC portfolio is a bag of independent jobs
    whose verdicts are pure functions of the run configuration (the
    {!Pool.job_seed} determinism guarantee).  The journal makes that bag
    durable: every completed job result is appended as one line-framed
    {!Dfv_obs.Json} record — fsync'd before the append returns — keyed
    by a structural {e fingerprint} of the job, so a run killed at any
    instant can be resumed by replaying the completed records and
    re-running only the missing jobs.  Because verdicts are
    deterministic, the resumed report is byte-identical (timings aside)
    to an uninterrupted run.

    {2 File format}

    One JSON object per line, every line carrying the common artifact
    envelope [{"schema":"dfv-journal","version":1,...}]:

    - the first line is the header,
      [{..., "kind":"header", "campaign":FP}], where [FP] fingerprints
      the full run configuration — resuming under a different
      configuration is refused rather than silently mixed;
    - every further line is a result,
      [{..., "kind":"result", "fp":FP, "payload":V}], where [FP]
      fingerprints one job and [V] is its wire-form result.

    {2 Corruption policy} (deterministic, and tested)

    - A {e torn tail} — a final line segment that does not parse as a
      complete record (a write cut short by the crash the journal
      exists to survive) — is {e tolerated}: the segment is dropped,
      {!torn} reports it, and {!open_} truncates it away so new appends
      start on a clean boundary.  A single torn write can produce at
      most one such segment.
    - {e Duplicate fingerprints} (a crash between fsync and the
      caller's bookkeeping can re-append a record on resume) are
      {e tolerated}: the first record wins, later ones are counted in
      {!dropped}.
    - Everything else is {e rejected} with an error: a missing or
      malformed header, a schema/version mismatch on any line, an
      unparseable line in the interior (more than one bad trailing
      segment cannot come from a single torn write — that is external
      corruption), or a campaign fingerprint that does not match the
      resuming run. *)

type t
(** An open journal: an append fd plus the in-memory index of every
    result it already holds. *)

val fingerprint : string -> string
(** A stable fingerprint of a canonical key string (an FNV-1a 64-bit
    hash, rendered as 16 hex digits).  Used for both the campaign
    header and per-job keys; collisions across the handful of jobs in
    one campaign are not a realistic concern. *)

val open_ : path:string -> campaign:string -> (t, string) result
(** Create the journal at [path] (writing and fsyncing the header), or
    — when the file already exists — load and index it for resumption.
    Errors on the corruption cases above and when the existing header's
    campaign fingerprint differs from [campaign] (the caller passes the
    {e key string}; it is fingerprinted internally). *)

val campaign : t -> string
(** The campaign fingerprint in the header. *)

val find : t -> string -> Dfv_obs.Json.t option
(** [find t fp] is the payload recorded for job fingerprint [fp], if
    any — either replayed at {!open_} or appended this run. *)

val replayed : t -> int
(** Result records loaded from disk at {!open_} (0 for a fresh file). *)

val replayed_entries : t -> (string * Dfv_obs.Json.t) list
(** The records {!replayed} counts, as [(fp, payload)] in append order —
    what a consumer that replays {e state} rather than single lookups
    (the {!Dfv_serve} cache warming its LRU) iterates over. *)

val torn : t -> bool
(** Whether {!open_} dropped a torn final segment. *)

val dropped : t -> int
(** Duplicate-fingerprint records dropped at {!open_} (first wins). *)

val append : t -> fp:string -> Dfv_obs.Json.t -> unit
(** Durably record one job result: the line is written and fsync'd
    before returning, and indexed for {!find}.  A fingerprint already
    present is ignored (the disk record stands).  I/O failures raise
    [Sys_error] — a journal that cannot persist must not pretend to. *)

val close : t -> unit

type info = {
  info_campaign : string;  (** header campaign fingerprint *)
  info_records : int;  (** result records (after duplicate-dropping) *)
  info_dropped : int;  (** duplicates dropped *)
  info_torn : bool;  (** a torn final segment was dropped *)
}

val inspect : string -> (info, string) result
(** Read-only validation of a journal file (what [dfv validate] runs):
    the same parse and corruption policy as {!open_}, without touching
    the file. *)
