(** Live campaign progress on stderr.

    A single self-overwriting line — completion, rate, ETA, time to the
    degradation deadline, and per-category tallies (Detected / Survived
    / shed / ...), with the run's retry count appended when nonzero —
    driven from the {!Pool}'s [on_result] hook (or any per-item
    completion callback).  Rendering is throttled to ~10 redraws/s, so
    stepping on every result is cheap.

    Deliberately dumb about its output: one carriage-return line on
    stderr, no cursor addressing, and {!create} returns [None] unless
    stderr is a TTY (or [force] is set, for tests) — redirected runs and
    CI logs never see control characters. *)

type t

val create :
  ?force:bool ->
  ?mode:string ->
  ?deadline_at:float ->
  label:string ->
  total:int ->
  unit ->
  t option
(** [None] when [total <= 0] or stderr is not a TTY (unless [force]).
    [mode] names the active executor ("fork" / "domains" / "seq"),
    shown bracketed after the label.  [deadline_at] is the campaign's
    absolute degradation deadline (compare {!Dfv_fault.Campaign}) —
    when given, the remaining wall clock to it is shown alongside the
    ETA.  Before any item completes (or within clock resolution of the
    start) the ETA renders as ["--"], never [inf]/[nan]. *)

val step : t -> string -> unit
(** Count one completed item under a category tag and redraw. *)

val finish : t -> unit
(** Final redraw, then a newline so subsequent output starts clean. *)
