module Json = Dfv_obs.Json
module Metrics = Dfv_obs.Metrics

let schema = "dfv-journal"
let version = 1
let m_appends = Metrics.counter "journal.appends"
let m_replayed = Metrics.counter "journal.replayed"

(* FNV-1a over 64 bits.  Not cryptographic — the keys are canonical
   configuration strings from our own code, and a campaign holds at
   most a few hundred jobs; what matters is that the value is a pure
   function of the key, stable across runs and processes. *)
let fingerprint s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  Printf.sprintf "%016Lx" !h

type t = {
  fd : Unix.file_descr;
  path : string;
  campaign : string;
  results : (string, Json.t) Hashtbl.t;
  replayed : int;
  replayed_entries : (string * Json.t) list;
  torn : bool;
  dropped : int;
}

let campaign t = t.campaign
let find t fp = Hashtbl.find_opt t.results fp
let replayed t = t.replayed
let replayed_entries t = t.replayed_entries
let torn t = t.torn
let dropped t = t.dropped

(* --- records ------------------------------------------------------------ *)

let header_line campaign =
  Json.to_string
    (Json.envelope ~schema ~version
       [ ("kind", Json.String "header"); ("campaign", Json.String campaign) ])
  ^ "\n"

let result_line fp payload =
  Json.to_string
    (Json.envelope ~schema ~version
       [ ("kind", Json.String "result");
         ("fp", Json.String fp);
         ("payload", payload) ])
  ^ "\n"

type record = Header of string | Result of string * Json.t

(* A parsed line must still be a well-formed record: the envelope (with
   this schema and version — a version we did not write is rejected, not
   guessed at) and the per-kind fields. *)
let validate v =
  match Json.envelope_of v with
  | None -> Error "missing {schema, version} envelope"
  | Some (s, ver) when s <> schema || ver <> version ->
    Error (Printf.sprintf "not a %s v%d record (%s v%d)" schema version s ver)
  | Some _ -> (
    match Json.field "kind" v with
    | Some (Json.String "header") -> (
      match Json.field "campaign" v with
      | Some (Json.String c) -> Ok (Header c)
      | _ -> Error "header without campaign fingerprint")
    | Some (Json.String "result") -> (
      match (Json.field "fp" v, Json.field "payload" v) with
      | Some (Json.String fp), Some payload -> Ok (Result (fp, payload))
      | _ -> Error "result without fp/payload")
    | _ -> Error "unknown record kind")

type loaded = {
  l_campaign : string;
  l_results : (string * Json.t) list;  (** first occurrence wins, in order *)
  l_dropped : int;
  l_torn : bool;
  l_keep : int;  (** bytes up to the end of the last intact record *)
}

(* Split [contents] into newline-terminated segments, tracking whether
   the final one is terminated and where each starts (for torn-tail
   truncation). *)
let segments contents =
  let n = String.length contents in
  let rec go start acc =
    if start >= n then List.rev acc
    else
      match String.index_from_opt contents start '\n' with
      | Some i ->
        go (i + 1) ((start, String.sub contents start (i - start), true) :: acc)
      | None -> List.rev ((start, String.sub contents start (n - start), false) :: acc)
  in
  go 0 []

let parse_contents contents =
  match segments contents with
  | [] -> Error "empty journal"
  | (_, first, terminated) :: rest -> (
    let header =
      if not terminated then Error "torn header (journal creation died mid-write)"
      else
        match Json.parse first with
        | Error m -> Error ("unparseable header: " ^ m)
        | Ok v -> (
          match validate v with
          | Ok (Header c) -> Ok c
          | Ok (Result _) -> Error "first record is not the header"
          | Error m -> Error ("bad header: " ^ m))
    in
    match header with
    | Error m -> Error m
    | Ok l_campaign ->
      let seen = Hashtbl.create 64 in
      let rec go segs results dropped =
        match segs with
        | [] ->
          Ok
            {
              l_campaign;
              l_results = List.rev results;
              l_dropped = dropped;
              l_torn = false;
              l_keep = String.length contents;
            }
        | (start, line, terminated) :: tail -> (
          let last = tail = [] in
          match Json.parse line with
          | Error m ->
            (* Only a single unparseable (or unterminated) final segment
               can come from one torn write; anything else is external
               corruption and is rejected. *)
            if last then
              Ok
                {
                  l_campaign;
                  l_results = List.rev results;
                  l_dropped = dropped;
                  l_torn = true;
                  l_keep = start;
                }
            else Error ("corrupt journal: unparseable interior line: " ^ m)
          | Ok _ when last && not terminated ->
            Ok
              {
                l_campaign;
                l_results = List.rev results;
                l_dropped = dropped;
                l_torn = true;
                l_keep = start;
              }
          | Ok v -> (
            (* A complete, parseable line that fails validation is not a
               torn write — reject it even at the tail (this is where a
               version-mismatch record lands). *)
            match validate v with
            | Error m -> Error ("corrupt journal: " ^ m)
            | Ok (Header _) -> Error "corrupt journal: duplicate header"
            | Ok (Result (fp, payload)) ->
              if Hashtbl.mem seen fp then go tail results (dropped + 1)
              else begin
                Hashtbl.add seen fp ();
                go tail ((fp, payload) :: results) dropped
              end))
      in
      go rest [] 0)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

type info = {
  info_campaign : string;
  info_records : int;
  info_dropped : int;
  info_torn : bool;
}

let inspect path =
  match parse_contents (read_file path) with
  | Error _ as e -> e
  | Ok l ->
    Ok
      {
        info_campaign = l.l_campaign;
        info_records = List.length l.l_results;
        info_dropped = l.l_dropped;
        info_torn = l.l_torn;
      }

(* --- writing ------------------------------------------------------------ *)

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  try go 0
  with Unix.Unix_error (e, _, _) ->
    raise (Sys_error ("journal write failed: " ^ Unix.error_message e))

let fsync fd =
  try Unix.fsync fd
  with Unix.Unix_error (e, _, _) ->
    raise (Sys_error ("journal fsync failed: " ^ Unix.error_message e))

let open_ ~path ~campaign:key =
  Dfv_obs.Trace.with_span ~cat:"par" "journal.open" @@ fun () ->
  let campaign = fingerprint key in
  if Sys.file_exists path then
    match parse_contents (read_file path) with
    | Error _ as e -> e
    | Ok l ->
      if l.l_campaign <> campaign then
        Error
          (Printf.sprintf
             "campaign mismatch: journal %s was written by a run fingerprinted \
              %s, this run is %s"
             path l.l_campaign campaign)
      else begin
        let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
        (* Truncate the torn tail so appends start on a record boundary. *)
        Unix.ftruncate fd l.l_keep;
        ignore (Unix.lseek fd 0 Unix.SEEK_END);
        let results = Hashtbl.create 64 in
        List.iter (fun (fp, p) -> Hashtbl.replace results fp p) l.l_results;
        let replayed = List.length l.l_results in
        Metrics.add m_replayed replayed;
        Ok
          {
            fd;
            path;
            campaign;
            results;
            replayed;
            replayed_entries = l.l_results;
            torn = l.l_torn;
            dropped = l.l_dropped;
          }
      end
  else begin
    let fd =
      Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL ] 0o644
    in
    write_all fd (header_line campaign);
    fsync fd;
    Ok
      {
        fd;
        path;
        campaign;
        results = Hashtbl.create 64;
        replayed = 0;
        replayed_entries = [];
        torn = false;
        dropped = 0;
      }
  end

let append t ~fp payload =
  if not (Hashtbl.mem t.results fp) then begin
    write_all t.fd (result_line fp payload);
    fsync t.fd;
    Hashtbl.replace t.results fp payload;
    Metrics.incr m_appends
  end

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
