module Dfv_error = Dfv_core.Dfv_error
module Json = Dfv_obs.Json
module Metrics = Dfv_obs.Metrics
module Trace = Dfv_obs.Trace
module Coverage = Dfv_obs.Coverage

let cores () = max 1 (Domain.recommended_domain_count ())

(* --- cooperative interruption ------------------------------------------ *)

(* One process-wide flag, set from the CLI's SIGINT/SIGTERM handlers.
   Atomic, not a plain ref, so {!Dpool} worker domains observe a stop
   promptly.  The executors poll it each scheduling round: on stop the
   fork pool kills every live worker (domains finish their in-flight
   job, then stand down), nothing further is recorded, and unfinished
   outcomes surface as [Interrupted] — the caller flushes its journal
   and exits resumable. *)
let stop_flag = Atomic.make false
let request_stop () = Atomic.set stop_flag true
let stop_requested () = Atomic.get stop_flag
let reset_stop () = Atomic.set stop_flag false

(* --- executor selection ------------------------------------------------ *)

(* The mode type lives here (not in {!Dpool}) so both executors and
   every caller can name it without a dependency cycle; the adaptive
   dispatch logic itself lives in {!Dpool}, which can see both. *)
type exec_mode = [ `Fork | `Domains | `Auto ]

let exec_mode_to_string = function
  | `Fork -> "fork"
  | `Domains -> "domains"
  | `Auto -> "auto"

let exec_mode_of_string = function
  | "fork" -> Some `Fork
  | "domains" -> Some `Domains
  | "auto" -> Some `Auto
  | _ -> None

(* --- transient-failure retry ------------------------------------------- *)

type retry = {
  attempts : int;
  backoff : float;
  max_backoff : float;
  retry_timeouts : bool;
}

let default_retry =
  { attempts = 2; backoff = 0.05; max_backoff = 2.0; retry_timeouts = false }

let no_retry =
  { attempts = 0; backoff = 0.0; max_backoff = 0.0; retry_timeouts = false }

let m_retry_attempts = Metrics.counter "pool.retry.attempts"
let m_retry_healed = Metrics.counter "pool.retry.healed"
let m_retry_exhausted = Metrics.counter "pool.retry.exhausted"
let m_interrupted = Metrics.counter "pool.interrupted"
let m_telemetry_shipped = Metrics.counter "pool.telemetry.shipped"
let m_telemetry_errors = Metrics.counter "pool.telemetry.errors"

(* splitmix64-style finalizer over (seed, index), truncated to OCaml's
   63-bit int.  The point is not cryptography but spread: neighbouring
   job indices must yield uncorrelated PRNG seeds, and the value must be
   a pure function of (seed, index) so partitioning cannot change it. *)
let job_seed ~seed i =
  let z = ref (seed * 0x9E3779B9 + (i + 1) * 0xBF58476D) in
  z := (!z lxor (!z lsr 30)) * 0xBF58476D1CE4E5;
  z := (!z lxor (!z lsr 27)) * 0x94D049BB133111;
  abs (!z lxor (!z lsr 31))

type 'r outcome = ('r, Dfv_error.t) result

type 'r race = {
  winner : (int * 'r) option;
  outcomes : 'r outcome option array;
}

(* --- wire protocol ----------------------------------------------------- *)

let line kind job fields =
  Json.to_string
    (Json.envelope ~schema:"dfv-par" ~version:1
       (("kind", Json.String kind) :: ("job", Json.Int job) :: fields))
  ^ "\n"

let heartbeat_line job = line "heartbeat" job []
let result_line job payload = line "result" job [ ("payload", payload) ]
let error_line job e = line "error" job [ ("error", Dfv_error.to_json e) ]

(* The worker's observability deltas, shipped as one extra protocol line
   just before the result.  The child reset its sinks at job start, so
   each section is this job's contribution alone — the parent can merge
   by plain summation. *)
let telemetry_line job =
  line "telemetry" job
    [ ("metrics", Metrics.snapshot ());
      ("trace", Trace.export ());
      ("coverage", Coverage.snapshot ()) ]

(* --- child side -------------------------------------------------------- *)

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  try go 0 with Unix.Unix_error _ -> ()

(* Runs in the forked child; never returns.  The heartbeat fires from a
   SIGALRM handler (delivered at OCaml safe points, so a worker wedged
   below the runtime stops beating — which is exactly the signal the
   parent wants).  The timer is disarmed before the result is written so
   a heartbeat can never tear the result line. *)
let child ~heartbeat ~job ~fd ~telemetry f x encode =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Sys.set_signal Sys.sigalrm
    (Sys.Signal_handle (fun _ -> write_all fd (heartbeat_line job)));
  ignore
    (Unix.setitimer Unix.ITIMER_REAL
       { Unix.it_value = heartbeat; it_interval = heartbeat });
  (* The fork copied the parent's registries and trace ring wholesale.
     Zero them (and re-install a fresh sink under this pid/epoch) so the
     telemetry shipped at job end is this job's pure delta — the parent
     merges deltas, never absolute copies of its own state. *)
  if telemetry then begin
    Metrics.reset ();
    if Trace.enabled () then Trace.enable ();
    Coverage.reset ()
  end;
  let out =
    match Dfv_error.guard (fun () -> encode (f x)) with
    | Ok payload -> result_line job payload
    | Error e -> error_line job e
    | exception e ->
      error_line job (Dfv_error.Internal (Printexc.to_string e))
  in
  ignore
    (Unix.setitimer Unix.ITIMER_REAL { Unix.it_value = 0.0; it_interval = 0.0 });
  if telemetry then write_all fd (telemetry_line job);
  write_all fd out;
  Unix._exit 0

(* --- parent side ------------------------------------------------------- *)

type 'r worker = {
  pid : int;
  fd : Unix.file_descr;
  job : int;
  started : float;
  mutable last_beat : float;
  buf : Buffer.t;
  mutable delivered : 'r outcome option;
  mutable shipped : Json.t option; (* this attempt's telemetry line, if any *)
}

let signal_name s =
  if s = Sys.sigkill then "SIGKILL (OOM killer or operator)"
  else if s = Sys.sigsegv then "SIGSEGV"
  else if s = Sys.sigbus then "SIGBUS"
  else if s = Sys.sigabrt then "SIGABRT"
  else if s = Sys.sigterm then "SIGTERM"
  else if s = Sys.sigill then "SIGILL"
  else Printf.sprintf "signal %d" s

let status_detail = function
  | Unix.WEXITED 0 -> "worker exited 0 without delivering a result"
  | Unix.WEXITED n -> Printf.sprintf "worker exited %d" n
  | Unix.WSIGNALED s -> "worker killed by " ^ signal_name s
  | Unix.WSTOPPED s -> "worker stopped by " ^ signal_name s

let rec reap pid =
  match Unix.waitpid [] pid with
  | _, status -> status
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> reap pid
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> Unix.WEXITED 0

let kill_quietly pid =
  try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ()

(* The heartbeat staleness factor: a worker silent for this many
   heartbeat periods is presumed wedged and killed. *)
let stale_factor = 20.0

(* Merge one worker's shipped telemetry into the parent-side sinks.
   Called only when a job's outcome becomes *final*: a retried attempt's
   telemetry dies with its worker record, so replays never double-count.
   Merge failures are observable (pool.telemetry.errors) but never fail
   the job — a campaign's verdicts must not depend on bookkeeping. *)
let merge_telemetry ?label ~job v =
  let saw_error = ref false in
  let note = function
    | Ok () -> ()
    | Error _ -> saw_error := true
  in
  (match Json.field "metrics" v with
  | Some m -> note (Metrics.merge m)
  | None -> ());
  (match Json.field "trace" v with
  | Some Json.Null | None -> ()
  | Some t -> note (Trace.absorb ?label ~job t));
  (match Json.field "coverage" v with
  | Some c -> note (Coverage.merge c)
  | None -> ());
  Metrics.incr m_telemetry_shipped;
  if !saw_error then Metrics.incr m_telemetry_errors

let run (type a r) ?jobs ?timeout ?(heartbeat = 0.5) ?label
    ?(retry = default_retry) ?(telemetry = true) ?on_result
    ~(encode : r -> Json.t)
    ~(decode : Json.t -> (r, string) result)
    ~(conclusive : (r -> bool) option) (f : a -> r) (inputs : a list) :
    r race =
  let jobs = match jobs with None -> cores () | Some j -> j in
  if jobs < 1 then invalid_arg "Pool: jobs must be >= 1";
  if heartbeat <= 0.0 then invalid_arg "Pool: heartbeat must be positive";
  (match timeout with
  | Some t when t <= 0.0 -> invalid_arg "Pool: timeout must be positive"
  | _ -> ());
  let inputs = Array.of_list inputs in
  let n = Array.length inputs in
  let label = match label with Some l -> l | None -> string_of_int in
  let outcomes : r outcome option array = Array.make n None in
  let winner = ref None in
  let live : (Unix.file_descr, r worker) Hashtbl.t = Hashtbl.create 16 in
  let next = ref 0 in
  let cancelled = ref false in
  let tries = Array.make (max n 1) 0 in
  (* Jobs awaiting a retry slot: (not-before time, job index). *)
  let pending = ref [] in
  let now () = Unix.gettimeofday () in
  let retryable = function
    | Dfv_error.Worker_timeout _ -> retry.retry_timeouts
    | e -> Dfv_error.transient e
  in
  (* Exponential backoff with deterministic jitter: the k-th retry of
     job [j] waits backoff * 2^k (capped), scaled into [0.5, 1.0) by a
     pure function of (j, k) — spread without a global RNG, so two runs
     of the same campaign schedule identically. *)
  let retry_delay job k =
    let base =
      Float.min retry.max_backoff (retry.backoff *. (2.0 ** float_of_int k))
    in
    let jitter = float_of_int (job_seed ~seed:k job land 1023) /. 2048.0 in
    base *. (0.5 +. jitter)
  in
  let launch i =
    flush stdout;
    flush stderr;
    let rd, wr = Unix.pipe () in
    match Unix.fork () with
    | 0 ->
      Unix.close rd;
      (* The child inherits read ends of its siblings' pipes; closing
         them keeps the fd table tidy (EOF semantics only depend on
         write ends, which the parent closed after each earlier fork). *)
      Hashtbl.iter (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ())
        live;
      child ~heartbeat ~job:i ~fd:wr ~telemetry f inputs.(i) encode
    | pid ->
      Unix.close wr;
      let t = now () in
      Hashtbl.replace live rd
        {
          pid;
          fd = rd;
          job = i;
          started = t;
          last_beat = t;
          buf = Buffer.create 256;
          delivered = None;
          shipped = None;
        }
  in
  let deliver w outcome =
    outcomes.(w.job) <- Some outcome;
    (match w.shipped with
    | Some v -> merge_telemetry ~job:w.job v
    | None -> ());
    if tries.(w.job) > 0 then
      (match outcome with
      | Error e when retryable e -> Metrics.incr m_retry_exhausted
      | Ok _ | Error _ -> Metrics.incr m_retry_healed);
    match on_result with Some notify -> notify w.job outcome | None -> ()
  in
  (* A worker failure that may be transient (see {!Dfv_error.transient})
     re-enters the queue with backoff instead of being recorded, until
     the job's retry budget runs out — then the failure stands. *)
  let record w outcome =
    if outcomes.(w.job) = None then
      match outcome with
      | Error e
        when retryable e
             && tries.(w.job) < retry.attempts
             && (not !cancelled)
             && not (stop_requested ()) ->
        tries.(w.job) <- tries.(w.job) + 1;
        Metrics.incr m_retry_attempts;
        pending :=
          (now () +. retry_delay w.job (tries.(w.job) - 1), w.job) :: !pending
      | _ -> deliver w outcome
  in
  let close_worker w =
    Hashtbl.remove live w.fd;
    (try Unix.close w.fd with Unix.Unix_error _ -> ())
  in
  (* A finished pipe: use the delivered result if the worker sent one,
     otherwise classify from the exit status. *)
  let finalize_eof w =
    close_worker w;
    let status = reap w.pid in
    match w.delivered with
    | Some outcome -> record w outcome
    | None ->
      record w
        (Error
           (Dfv_error.Worker_crashed
              { job = label w.job; detail = status_detail status }))
  in
  let kill_with w outcome =
    close_worker w;
    kill_quietly w.pid;
    ignore (reap w.pid);
    record w outcome
  in
  let handle_line w l =
    if String.trim l = "" then ()
    else
      match Json.parse l with
      | Error m ->
        w.delivered <-
          Some
            (Error
               (Dfv_error.Worker_crashed
                  { job = label w.job; detail = "bad result line: " ^ m }))
      | Ok v -> (
        match Json.field "kind" v with
        | Some (Json.String "heartbeat") -> ()
        | Some (Json.String "telemetry") -> w.shipped <- Some v
        | Some (Json.String "result") -> (
          match Json.field "payload" v with
          | Some payload -> (
            match decode payload with
            | Ok r -> w.delivered <- Some (Ok r)
            | Error m ->
              w.delivered <-
                Some
                  (Error
                     (Dfv_error.Worker_crashed
                        { job = label w.job; detail = "undecodable payload: " ^ m })))
          | None ->
            w.delivered <-
              Some
                (Error
                   (Dfv_error.Worker_crashed
                      { job = label w.job; detail = "result line without payload" })))
        | Some (Json.String "error") -> (
          match Json.field "error" v with
          | Some ej -> (
            match Dfv_error.of_json ej with
            | Ok e -> w.delivered <- Some (Error e)
            | Error m ->
              w.delivered <-
                Some
                  (Error
                     (Dfv_error.Worker_crashed
                        { job = label w.job; detail = "undecodable error: " ^ m })))
          | None ->
            w.delivered <-
              Some
                (Error
                   (Dfv_error.Worker_crashed
                      { job = label w.job; detail = "error line without error" })))
        | _ ->
          w.delivered <-
            Some
              (Error
                 (Dfv_error.Worker_crashed
                    { job = label w.job; detail = "unknown protocol line" })))
  in
  let drain_buffer w =
    let rec go () =
      let contents = Buffer.contents w.buf in
      match String.index_opt contents '\n' with
      | None -> ()
      | Some i ->
        let l = String.sub contents 0 i in
        let rest =
          String.sub contents (i + 1) (String.length contents - i - 1)
        in
        Buffer.clear w.buf;
        Buffer.add_string w.buf rest;
        handle_line w l;
        go ()
    in
    go ()
  in
  let cancel_rest () =
    cancelled := true;
    Hashtbl.fold (fun _ w acc -> w :: acc) live []
    |> List.iter (fun w ->
           close_worker w;
           kill_quietly w.pid;
           ignore (reap w.pid))
  in
  let chunk = Bytes.create 8192 in
  (* Launch retries whose backoff has elapsed, oldest deadline first,
     as far as free worker slots allow. *)
  let launch_due t =
    let due, later = List.partition (fun (nb, _) -> nb <= t) !pending in
    let rec go = function
      | [] -> []
      | ((_, j) :: rest) as all ->
        if
          Hashtbl.length live < jobs
          && (not !cancelled)
          && not (stop_requested ())
        then begin
          launch j;
          go rest
        end
        else all
    in
    pending := go (List.sort compare due) @ later
  in
  while
    (not !cancelled)
    && (not (stop_requested ()))
    && (!next < n || Hashtbl.length live > 0 || !pending <> [])
  do
    launch_due (now ());
    while
      (not !cancelled)
      && (not (stop_requested ()))
      && !next < n
      && Hashtbl.length live < jobs
    do
      launch !next;
      incr next
    done;
    let fds = Hashtbl.fold (fun fd _ acc -> fd :: acc) live [] in
    if fds <> [] then begin
      (* Sleep until the nearest deadline (job timeout, heartbeat
         staleness or retry backoff), capped so launches — and the stop
         flag — stay responsive. *)
      let t = now () in
      let deadline =
        Hashtbl.fold
          (fun _ w acc ->
            let acc =
              match timeout with
              | Some budget -> min acc (w.started +. budget -. t)
              | None -> acc
            in
            min acc (w.last_beat +. (stale_factor *. heartbeat) -. t))
          live 1.0
      in
      let deadline =
        List.fold_left (fun acc (nb, _) -> min acc (nb -. t)) deadline !pending
      in
      let select_timeout = Float.max 0.01 (Float.min 1.0 deadline) in
      let readable =
        match Unix.select fds [] [] select_timeout with
        | r, _, _ -> r
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
      in
      let t = now () in
      List.iter
        (fun fd ->
          match Hashtbl.find_opt live fd with
          | None -> ()
          | Some w -> (
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 ->
              drain_buffer w;
              finalize_eof w
            | got ->
              w.last_beat <- t;
              Buffer.add_subbytes w.buf chunk 0 got;
              drain_buffer w
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
            | exception Unix.Unix_error _ ->
              drain_buffer w;
              finalize_eof w))
        readable;
      (* Enforce deadlines on whoever is still live and silent. *)
      let t = now () in
      Hashtbl.fold (fun _ w acc -> w :: acc) live []
      |> List.iter (fun w ->
             if w.delivered = None then begin
               match timeout with
               | Some budget when t -. w.started > budget ->
                 kill_with w
                   (Error
                      (Dfv_error.Worker_timeout
                         { job = label w.job; seconds = budget }))
               | _ ->
                 if t -. w.last_beat > stale_factor *. heartbeat then
                   kill_with w
                     (Error
                        (Dfv_error.Worker_crashed
                           {
                             job = label w.job;
                             detail =
                               Printf.sprintf
                                 "no heartbeat for %.1fs (worker wedged)"
                                 (t -. w.last_beat);
                           }))
             end);
      (* Portfolio cancellation: the lowest job index among this round's
         conclusive results wins; everyone else is cancelled. *)
      match conclusive with
      | None -> ()
      | Some is_conclusive ->
        if !winner = None then begin
          let best = ref None in
          Array.iteri
            (fun i o ->
              match o with
              | Some (Ok r) when is_conclusive r ->
                if !best = None then best := Some (i, r)
              | _ -> ())
            outcomes;
          match !best with
          | Some w ->
            winner := Some w;
            cancel_rest ()
          | None -> ()
        end
    end
    else if !pending <> [] && not (stop_requested ()) then begin
      (* Nothing live, only backoffs pending: sleep until the earliest
         retry becomes due (capped so the stop flag stays responsive). *)
      let t = now () in
      let wake =
        List.fold_left (fun acc (nb, _) -> Float.min acc (nb -. t)) 1.0 !pending
      in
      if wake > 0.0 then Unix.sleepf (Float.min 1.0 wake)
    end
  done;
  (* An operator stop: kill whatever is still running; unfinished jobs
     keep [None] outcomes and surface as [Interrupted] in {!map}. *)
  if stop_requested () && not !cancelled then begin
    cancel_rest ();
    Array.iter (fun o -> if o = None then Metrics.incr m_interrupted) outcomes
  end;
  { winner = !winner; outcomes }

let map ?jobs ?timeout ?heartbeat ?label ?retry ?telemetry ?on_result ~encode
    ~decode f inputs =
  let lbl = label in
  let r =
    run ?jobs ?timeout ?heartbeat ?label ?retry ?telemetry ?on_result ~encode
      ~decode ~conclusive:None f inputs
  in
  let label = match lbl with Some l -> l | None -> string_of_int in
  Array.to_list r.outcomes
  |> List.mapi (fun i o ->
         match o with
         | Some o -> o
         | None ->
           if stop_requested () then Error (Dfv_error.Interrupted { job = label i })
           else
             (* Unreachable in map mode (no cancellation), but total. *)
             Error
               (Dfv_error.Worker_crashed
                  { job = label i; detail = "job never completed" }))

let race ?jobs ?timeout ?heartbeat ?label ?retry ?telemetry ?on_result ~encode
    ~decode ~conclusive f inputs =
  run ?jobs ?timeout ?heartbeat ?label ?retry ?telemetry ?on_result ~encode
    ~decode ~conclusive:(Some conclusive) f inputs
