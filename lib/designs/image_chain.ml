module Bitvec = Dfv_bitvec.Bitvec
module Netlist = Dfv_rtl.Netlist
module Expr = Dfv_rtl.Expr
module Ast = Dfv_hwir.Ast
module Spec = Dfv_sec.Spec
module Stream = Dfv_cosim.Stream

type block = Brightness | Convolution | Threshold

let block_name = function
  | Brightness -> "brightness"
  | Convolution -> "convolution"
  | Threshold -> "threshold"

let all_blocks = [ Brightness; Convolution; Threshold ]

type t = {
  bias : int;
  thresh : int;
  buggy : block option;
  slm : Ast.program;
  rtl_top : Netlist.elaborated;
  rtl_brightness : Netlist.elaborated;
  rtl_conv : Netlist.elaborated;
  rtl_threshold : Netlist.elaborated;
  chain_spec : Spec.t;
}

(* The convolution kernel is fixed (sharpen) for this design. *)
let kernel_coeffs =
  Array.to_list (Array.concat (Array.to_list Conv_image.sharpen))

let conv_shift = 2
let acc_w = 20

(* --- golden ---------------------------------------------------------------- *)

let clamp8 v = max 0 (min 255 v)

let golden_brightness ~bias p = clamp8 ((p land 0xff) + bias)

let golden_conv window =
  let coeffs = Array.of_list kernel_coeffs in
  let sum = ref 0 in
  Array.iteri (fun i p -> sum := !sum + ((p land 0xff) * coeffs.(i))) window;
  clamp8 (!sum asr conv_shift)

let golden_threshold ~thresh p = if p land 0xff >= thresh then 255 else 0

let golden t window =
  golden_threshold ~thresh:t.thresh
    (golden_conv (Array.map (golden_brightness ~bias:t.bias) window))

(* --- SLM (always clean) ------------------------------------------------------ *)

let slm_program ~bias ~thresh =
  let open Ast in
  let brightness =
    {
      fname = "brightness";
      params = [ ("p", uint 8) ];
      ret = uint 8;
      locals = [ ("t", sint 10) ];
      body =
        [ assign "t" (cast (sint 10) (var "p") +^ s 10 bias);
          If (var "t" <^ s 10 0, [ ret (u 8 0) ], []);
          If (s 10 255 <^ var "t", [ ret (u 8 255) ], []);
          ret (cast (uint 8) (var "t")) ];
    }
  in
  let conv_steps =
    List.concat
      (List.mapi
         (fun i c ->
           [ assign "acc"
               (var "acc"
               +^ (cast (sint acc_w) (idx "x" (cast (uint 4) (u 32 i)))
                  *^ s acc_w c)) ])
         kernel_coeffs)
  in
  let conv =
    {
      fname = "conv";
      params = [ ("x", Tarray (uint 8, 9)) ];
      ret = uint 8;
      locals = [ ("acc", sint acc_w); ("sh", sint acc_w) ];
      body =
        conv_steps
        @ [ assign "sh" (var "acc" >>^ u 5 conv_shift);
            If (var "sh" <^ s acc_w 0, [ ret (u 8 0) ], []);
            If (s acc_w 255 <^ var "sh", [ ret (u 8 255) ], []);
            ret (cast (uint 8) (var "sh")) ];
    }
  in
  let threshold =
    {
      fname = "threshold";
      params = [ ("p", uint 8) ];
      ret = uint 8;
      locals = [];
      body =
        [ If (u 8 thresh <=^ var "p", [ ret (u 8 255) ], [ ret (u 8 0) ]) ];
    }
  in
  let chain =
    {
      fname = "chain";
      params = [ ("x", Tarray (uint 8, 9)) ];
      ret = uint 8;
      locals = [ ("y", Tarray (uint 8, 9)) ];
      body =
        [ For
            {
              ivar = "i";
              count = 9;
              body =
                [ assign_idx "y"
                    (cast (uint 4) (var "i"))
                    (Call ("brightness", [ idx "x" (cast (uint 4) (var "i")) ]))
                ];
            };
          ret (Call ("threshold", [ Call ("conv", [ var "y" ]) ])) ];
    }
  in
  { funcs = [ brightness; conv; threshold; chain ]; entry = "chain" }

(* --- RTL blocks --------------------------------------------------------------- *)

let rtl_brightness_module ~bias ~buggy =
  let open Expr in
  (* The pixel is unsigned: zero-extend it (sign-extending here is the
     very Section 3.1.1 mistake this repository exists to catch). *)
  let t = zext (sig_ "p") 10 +: const ~width:10 bias in
  let q =
    if buggy then slice t ~hi:7 ~lo:0 (* missing clamp *)
    else
      mux (t <+ const ~width:10 0) (const ~width:8 0)
        (mux (const ~width:10 255 <+ t) (const ~width:8 255)
           (slice t ~hi:7 ~lo:0))
  in
  {
    (Netlist.empty "brightness") with
    Netlist.inputs = [ { Netlist.port_name = "p"; port_width = 8 } ];
    outputs = [ ("q", q) ];
  }

let rtl_conv_module ~buggy =
  let open Expr in
  let products =
    List.mapi
      (fun i c ->
        zext (sig_ (Printf.sprintf "p%d" i)) acc_w *: const ~width:acc_w c)
      kernel_coeffs
  in
  let sum = List.fold_left ( +: ) (const ~width:acc_w 0) products in
  let shifted = sum >>+ const ~width:5 conv_shift in
  let q =
    if buggy then slice shifted ~hi:7 ~lo:0 (* wrap instead of clamp *)
    else
      mux (shifted <+ const ~width:acc_w 0) (const ~width:8 0)
        (mux (const ~width:acc_w 255 <+ shifted) (const ~width:8 255)
           (slice shifted ~hi:7 ~lo:0))
  in
  {
    (Netlist.empty "conv3x3") with
    Netlist.inputs =
      List.init 9 (fun i ->
          { Netlist.port_name = Printf.sprintf "p%d" i; port_width = 8 });
    outputs = [ ("q", q) ];
  }

let rtl_threshold_module ~thresh ~buggy =
  let open Expr in
  let hit =
    if buggy then const ~width:8 thresh <: sig_ "p" (* off-by-one: strict *)
    else const ~width:8 thresh <=: sig_ "p"
  in
  {
    (Netlist.empty "threshold") with
    Netlist.inputs = [ { Netlist.port_name = "p"; port_width = 8 } ];
    outputs = [ ("q", mux hit (const ~width:8 255) (const ~width:8 0)) ];
  }

let rtl_top_module ~bias ~thresh ~buggy =
  let open Expr in
  let is_buggy b = buggy = Some b in
  let bright = rtl_brightness_module ~bias ~buggy:(is_buggy Brightness) in
  let conv = rtl_conv_module ~buggy:(is_buggy Convolution) in
  let thr = rtl_threshold_module ~thresh ~buggy:(is_buggy Threshold) in
  let bright_insts =
    List.init 9 (fun i ->
        {
          Netlist.inst_name = Printf.sprintf "b%d" i;
          inst_module = bright;
          connections = [ ("p", sig_ (Printf.sprintf "p%d" i)) ];
        })
  in
  let conv_inst =
    {
      Netlist.inst_name = "conv";
      inst_module = conv;
      connections =
        List.init 9 (fun i ->
            (Printf.sprintf "p%d" i, sig_ (Printf.sprintf "b%d.q" i)));
    }
  in
  let thr_inst =
    {
      Netlist.inst_name = "thr";
      inst_module = thr;
      connections = [ ("p", sig_ "conv.q") ];
    }
  in
  {
    (Netlist.empty "image_chain") with
    Netlist.inputs =
      List.init 9 (fun i ->
          { Netlist.port_name = Printf.sprintf "p%d" i; port_width = 8 });
    instances = bright_insts @ [ conv_inst; thr_inst ];
    outputs = [ ("q", sig_ "thr.q") ];
  }

(* --- specs ----------------------------------------------------------------- *)

let window_drives =
  List.init 9 (fun i ->
      (Printf.sprintf "p%d" i, Spec.At (fun _ -> Spec.Param_elem ("x", i))))

let scalar_drives = [ ("p", Spec.At (fun _ -> Spec.Param "p")) ]

let comb_spec drives =
  {
    Spec.rtl_cycles = 1;
    drives;
    checks = [ { Spec.rtl_port = "q"; at_cycle = 0; expect = Spec.Result } ];
    constraints = [];
  }

let block_spec = function
  | Brightness | Threshold -> comb_spec scalar_drives
  | Convolution -> comb_spec window_drives

let make ?buggy ?(bias = 16) ?(thresh = 128) () =
  if thresh < 1 || thresh > 255 then invalid_arg "Image_chain.make: thresh";
  if bias < -255 || bias > 255 then invalid_arg "Image_chain.make: bias";
  let is_buggy b = buggy = Some b in
  {
    bias;
    thresh;
    buggy;
    slm = slm_program ~bias ~thresh;
    rtl_top = Netlist.elaborate (rtl_top_module ~bias ~thresh ~buggy);
    rtl_brightness =
      Netlist.elaborate (rtl_brightness_module ~bias ~buggy:(is_buggy Brightness));
    rtl_conv = Netlist.elaborate (rtl_conv_module ~buggy:(is_buggy Convolution));
    rtl_threshold =
      Netlist.elaborate
        (rtl_threshold_module ~thresh ~buggy:(is_buggy Threshold));
    chain_spec = comb_spec window_drives;
  }

let block_slm t block =
  let entry =
    match block with
    | Brightness -> "brightness"
    | Convolution -> "conv"
    | Threshold -> "threshold"
  in
  { t.slm with Ast.entry = entry }

let block_rtl t = function
  | Brightness -> t.rtl_brightness
  | Convolution -> t.rtl_conv
  | Threshold -> t.rtl_threshold

let slm_stage t block =
  match block with
  | Brightness ->
    Stream.slm_stage ~name:"brightness"
      (Array.map (fun p ->
           Bitvec.create ~width:8
             (golden_brightness ~bias:t.bias (Bitvec.to_int p))))
  | Threshold ->
    Stream.slm_stage ~name:"threshold"
      (Array.map (fun p ->
           Bitvec.create ~width:8
             (golden_threshold ~thresh:t.thresh (Bitvec.to_int p))))
  | Convolution ->
    invalid_arg
      "Image_chain.slm_stage: convolution is not an element-wise stage"

let hwir_stage ?engine t block =
  match block with
  | Brightness | Threshold ->
    Stream.hwir_stage
      ~name:
        (match block with
        | Brightness -> "brightness"
        | Threshold -> "threshold"
        | Convolution -> assert false)
      ?engine (block_slm t block)
  | Convolution ->
    invalid_arg
      "Image_chain.hwir_stage: convolution is not an element-wise stage"
