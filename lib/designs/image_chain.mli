(** Three-block image pipeline — partitioning, incremental SEC, and
    plug-and-play (experiments C3 and C8).

    Section 4.2 of the paper: partition the SLM and RTL consistently so
    that "the individual blocks ... have a one-to-one correspondence and
    cleanly defined interfaces", enabling block-level SEC and SLM/RTL
    plug-and-play.  This design is a window pipeline with exactly that
    structure:

    {v brightness (x9) --> 3x3 convolution --> threshold v}

    Both sides are partitioned identically: the SLM is an HWIR program
    with one function per block (the entry compose them), and the RTL is
    a hierarchical netlist with one module per block, composed through
    instances.  Per-block SEC runs compare [slm_<block>] against
    [rtl_<block>]; the monolithic run compares the composed entries.
    Bug injection per block makes localization measurable: the per-block
    runs name the guilty block, the monolithic run just says "no". *)

type block = Brightness | Convolution | Threshold

val block_name : block -> string
val all_blocks : block list

type t = {
  bias : int;  (** brightness offset, signed *)
  thresh : int;  (** threshold, 0..255 *)
  buggy : block option;
  slm : Dfv_hwir.Ast.program;
      (** functions [brightness], [conv], [threshold] and the composing
          entry [chain : uint 8 array(9) -> uint 8] *)
  rtl_top : Dfv_rtl.Netlist.elaborated;
      (** hierarchical: ports in [p0..p8], out [q] *)
  rtl_brightness : Dfv_rtl.Netlist.elaborated;  (** in [p]; out [q] *)
  rtl_conv : Dfv_rtl.Netlist.elaborated;  (** in [p0..p8]; out [q] *)
  rtl_threshold : Dfv_rtl.Netlist.elaborated;  (** in [p]; out [q] *)
  chain_spec : Dfv_sec.Spec.t;
}

val make : ?buggy:block -> ?bias:int -> ?thresh:int -> unit -> t
(** [buggy] plants one realistic bug in the named RTL block: a missing
    clamp (brightness), a wrap instead of saturate (convolution), or an
    off-by-one comparison (threshold).  The SLM is always clean. *)

val block_slm : t -> block -> Dfv_hwir.Ast.program
(** The per-block SLM as a standalone program (entry = that block). *)

val block_rtl : t -> block -> Dfv_rtl.Netlist.elaborated
val block_spec : block -> Dfv_sec.Spec.t

val golden : t -> int array -> int
(** Reference composition on a 9-pixel window (always the clean
    semantics, regardless of [buggy]). *)

val slm_stage : t -> block -> Dfv_cosim.Stream.stage
(** The block as an SLM pipeline stage over pixel streams (brightness
    and threshold are element-wise; convolution is not available as a
    single-port stream stage — use {!Conv_image} for streaming
    convolution). *)

val hwir_stage :
  ?engine:Dfv_hwir.Exec.engine -> t -> block -> Dfv_cosim.Stream.stage
(** Like {!slm_stage}, but the stage executes the block's {e HWIR}
    model ({!block_slm}) through {!Dfv_cosim.Stream.hwir_stage} —
    normalized and compiled once onto the shared slot-indexed kernel
    on the default/[`Compiled] engine — instead of the native golden
    function.  Same element-wise restriction as {!slm_stage}. *)
