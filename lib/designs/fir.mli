(** FIR filter design triple — fixed-point bit-accuracy (experiment C4).

    A saturating-MAC FIR filter, the paper's Section 3.1.1 scenario made
    concrete.  Three models of the same filter:

    - {!field:rtl}: a streaming RTL datapath (one sample per cycle, delay
      line, per-step saturating MAC, registered output with a valid);
    - [slm_exact]: a conditioned HWIR model that saturates per MAC step —
      bit-accurate with the RTL;
    - [slm_cstyle]: the "C programmer's" model that accumulates in a wide
      int and saturates once at the end — the masked-overflow mistake.
      Saturation is not a ring operation, so this diverges from the RTL
      exactly when an intermediate sum overflows, which wide C ints
      silently absorb.

    SEC proves [slm_exact] ≡ RTL and produces counterexamples against
    [slm_cstyle]; simulation measures the divergence rate. *)

type t = {
  width : int;  (** sample/coefficient width (signed) *)
  acc_width : int;  (** accumulator width = 2*width *)
  taps : int list;  (** coefficients, two's complement at [width] bits *)
  slm_exact : Dfv_hwir.Ast.program;
      (** entry [fir : int w array -> int acc_width], window of
          [List.length taps] samples, newest first *)
  slm_cstyle : Dfv_hwir.Ast.program;  (** same signature *)
  rtl : Dfv_rtl.Netlist.elaborated;
      (** ports: in [din] (w), [vin] (1); out [dout] (acc), [vout] (1) *)
  spec : Dfv_sec.Spec.t;
      (** window transaction: stream the window, check [dout] after the
          last sample *)
}

val make : ?width:int -> taps:int list -> unit -> t
(** Default width 8.  Tap values are truncated to [width] bits. *)

val golden_exact : t -> int array -> int
(** Per-step-saturating window MAC on ints (newest sample first);
    returns the accumulator as a signed int. *)

val golden_cstyle : t -> int array -> int
(** Wide accumulation, one final saturation. *)

val filter_signal : t -> int array -> int array
(** Run the exact model over a whole signal (output [i] is the window
    ending at sample [i]; the first [taps-1] outputs use a zero-filled
    history) — the untimed whole-signal SLM for the speed experiment. *)

val run_rtl_stream : t -> int array -> int array * int
(** Stream a signal through the RTL simulator; returns the outputs
    (aligned with {!filter_signal}) and the cycles consumed. *)

val run_slm_window : Dfv_hwir.Ast.program -> width:int -> int array -> int
(** Interpret an SLM window model on a concrete window (one-shot
    interpreter path — the differential oracle). *)

val slm_window_runner :
  ?engine:Dfv_hwir.Exec.engine ->
  Dfv_hwir.Ast.program ->
  width:int ->
  int array ->
  int
(** Prepared variant of {!run_slm_window}: the model is lowered and
    compiled once at partial application ([slm_window_runner prog
    ~width]), so the returned closure amortizes normalization across
    windows.  [engine] as in {!Dfv_hwir.Exec.create} (default:
    compiled with interpreter fallback). *)
