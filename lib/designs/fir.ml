module Bitvec = Dfv_bitvec.Bitvec
module Netlist = Dfv_rtl.Netlist
module Expr = Dfv_rtl.Expr
module Ast = Dfv_hwir.Ast
module Interp = Dfv_hwir.Interp
module Exec = Dfv_hwir.Exec
module Spec = Dfv_sec.Spec
module Stream = Dfv_cosim.Stream

type t = {
  width : int;
  acc_width : int;
  taps : int list;
  slm_exact : Ast.program;
  slm_cstyle : Ast.program;
  rtl : Netlist.elaborated;
  spec : Spec.t;
}

(* Signed saturation bounds at [aw] bits. *)
let sat_max aw = (1 lsl (aw - 1)) - 1
let sat_min aw = -(1 lsl (aw - 1))

let truncate_signed width v =
  let m = v land ((1 lsl width) - 1) in
  if m land (1 lsl (width - 1)) <> 0 then m - (1 lsl width) else m

(* --- HWIR models --------------------------------------------------------- *)

(* Exact model: saturate after every MAC step (matches the RTL). *)
let slm_exact_program ~width ~aw taps =
  let open Ast in
  let n = List.length taps in
  let aw2 = aw + 2 in
  let idxw = max 1 (let rec go k = if 1 lsl k >= n then k else go (k + 1) in go 0) in
  let step i tap =
    let xi = idx "x" (cast (uint idxw) (u 32 i)) in
    [ assign "p" (cast (sint aw2) xi *^ cast (sint aw2) (s aw2 tap));
      assign "t" (cast (sint aw2) (var "acc") +^ var "p");
      If
        ( s aw2 (sat_max aw) <^ var "t",
          [ assign "acc" (s aw (sat_max aw)) ],
          [ If
              ( var "t" <^ s aw2 (sat_min aw),
                [ assign "acc" (s aw (sat_min aw)) ],
                [ assign "acc" (cast (sint aw) (var "t")) ] )
          ] ) ]
  in
  {
    funcs =
      [ {
          fname = "fir";
          params = [ ("x", Tarray (sint width, n)) ];
          ret = sint aw;
          locals = [ ("acc", sint aw); ("t", sint aw2); ("p", sint aw2) ];
          body = List.concat (List.mapi step taps) @ [ ret (var "acc") ];
        } ];
    entry = "fir";
  }

(* C-style model: accumulate in a wide (32-bit) int, saturate once at the
   end — the masked-overflow idiom of Section 3.1.1. *)
let slm_cstyle_program ~width ~aw taps =
  let open Ast in
  let n = List.length taps in
  let idxw = max 1 (let rec go k = if 1 lsl k >= n then k else go (k + 1) in go 0) in
  let step i tap =
    let xi = idx "x" (cast (uint idxw) (u 32 i)) in
    [ assign "acc32"
        (var "acc32" +^ (cast (sint 32) xi *^ cast (sint 32) (s 32 tap))) ]
  in
  {
    funcs =
      [ {
          fname = "fir";
          params = [ ("x", Tarray (sint width, n)) ];
          ret = sint aw;
          locals = [ ("acc32", sint 32) ];
          body =
            List.concat (List.mapi step taps)
            @ [ If
                  ( s 32 (sat_max aw) <^ var "acc32",
                    [ ret (s aw (sat_max aw)) ],
                    [] );
                If
                  ( var "acc32" <^ s 32 (sat_min aw),
                    [ ret (s aw (sat_min aw)) ],
                    [] );
                ret (cast (sint aw) (var "acc32")) ];
        } ];
    entry = "fir";
  }

(* --- RTL ------------------------------------------------------------------ *)

(* Saturating add of [p] into [acc], both Expr of width [aw]. *)
let sat_add_expr aw acc p =
  let open Expr in
  let aw2 = aw + 2 in
  let t = sext acc aw2 +: sext p aw2 in
  let maxc = const ~width:aw2 (sat_max aw) and minc = const ~width:aw2 (sat_min aw) in
  mux (maxc <+ t)
    (const ~width:aw (sat_max aw))
    (mux (t <+ minc) (const ~width:aw (sat_min aw)) (slice t ~hi:(aw - 1) ~lo:0))

let rtl_module ~width ~aw taps =
  let open Expr in
  let n = List.length taps in
  let aw2 = aw + 2 in
  (* Delay line: d0 is the previous sample, d1 before that, ... *)
  let delay_regs =
    List.init (n - 1) (fun i ->
        let src = if i = 0 then sig_ "din" else sig_ (Printf.sprintf "d%d" (i - 1)) in
        Netlist.reg ~enable:(sig_ "vin") ~name:(Printf.sprintf "d%d" i)
          ~width src)
  in
  (* Window newest-first: din, d0, d1, ... *)
  let window =
    List.init n (fun i ->
        if i = 0 then sig_ "din" else sig_ (Printf.sprintf "d%d" (i - 1)))
  in
  let products =
    List.map2
      (fun x tap ->
        slice (sext x aw2 *: sext (const ~width:aw2 tap) aw2) ~hi:(aw - 1) ~lo:0)
      window taps
  in
  let mac =
    List.fold_left
      (fun acc p -> sat_add_expr aw acc p)
      (const ~width:aw 0) products
  in
  {
    (Netlist.empty (Printf.sprintf "fir%d_%dtap" width n)) with
    Netlist.inputs =
      [ { Netlist.port_name = "din"; port_width = width };
        { Netlist.port_name = "vin"; port_width = 1 } ];
    regs =
      delay_regs
      @ [ Netlist.reg ~enable:(sig_ "vin") ~name:"result" ~width:aw mac;
          Netlist.reg ~name:"vld" ~width:1 (sig_ "vin") ];
    outputs = [ ("dout", sig_ "result"); ("vout", sig_ "vld") ];
  }

let make ?(width = 8) ~taps () =
  let n = List.length taps in
  if n < 2 then invalid_arg "Fir.make: need at least 2 taps";
  if width < 2 then invalid_arg "Fir.make: width must be >= 2";
  let aw = 2 * width in
  if aw + 4 > 30 then invalid_arg "Fir.make: width too large for the c-style model";
  let taps = List.map (truncate_signed width) taps in
  let rtl = Netlist.elaborate (rtl_module ~width ~aw taps) in
  let spec =
    {
      (* Stream the window (newest-first SLM convention means the
         transactor feeds x[n-1] first), then sample dout one cycle after
         the last element. *)
      Spec.rtl_cycles = n + 1;
      drives =
        [ ( "din",
            Spec.At
              (fun c ->
                let i = max 0 (n - 1 - c) in
                Spec.Param_elem ("x", i)) );
          ( "vin",
            Spec.At
              (fun c ->
                Spec.Const (Bitvec.create ~width:1 (if c < n then 1 else 0))) )
        ];
      checks =
        [ { Spec.rtl_port = "dout"; at_cycle = n; expect = Spec.Result } ];
      constraints = [];
    }
  in
  {
    width;
    acc_width = aw;
    taps;
    slm_exact = slm_exact_program ~width ~aw taps;
    slm_cstyle = slm_cstyle_program ~width ~aw taps;
    rtl;
    spec;
  }

(* --- golden models (native) ------------------------------------------------ *)

let sat aw v = max (sat_min aw) (min (sat_max aw) v)

let golden_exact t window =
  let aw = t.acc_width in
  if Array.length window <> List.length t.taps then
    invalid_arg "Fir.golden_exact: window size";
  List.fold_left
    (fun (acc, i) tap ->
      let x = truncate_signed t.width window.(i) in
      (sat aw (acc + (x * tap)), i + 1))
    (0, 0) t.taps
  |> fst

let golden_cstyle t window =
  let aw = t.acc_width in
  if Array.length window <> List.length t.taps then
    invalid_arg "Fir.golden_cstyle: window size";
  let acc, _ =
    List.fold_left
      (fun (acc, i) tap ->
        let x = truncate_signed t.width window.(i) in
        (acc + (x * tap), i + 1))
      (0, 0) t.taps
  in
  sat aw acc

let filter_signal t signal =
  let n = List.length t.taps in
  Array.mapi
    (fun i _ ->
      let window =
        Array.init n (fun k -> if i - k >= 0 then signal.(i - k) else 0)
      in
      golden_exact t window)
    signal

let run_rtl_stream t signal =
  let stage =
    Stream.rtl_stage ~name:"fir" ~rtl:t.rtl ~in_port:"din" ~out_port:"dout"
      ~in_valid:"vin" ~out_valid:"vout" ()
  in
  let input = Array.map (fun v -> Bitvec.create ~width:t.width v) signal in
  let out, stats = Stream.run_stage stage input in
  (Array.map Bitvec.to_signed_int out, stats.Stream.cycles)

let slm_window_runner ?engine prog ~width =
  let ex =
    match engine with
    | None -> Exec.auto prog
    | Some e -> Exec.create ~engine:e prog
  in
  fun window ->
    let x = Interp.Varr (Array.map (fun v -> Bitvec.create ~width v) window) in
    Bitvec.to_signed_int (Interp.as_int (Exec.run ex [ x ]))

let run_slm_window prog ~width window =
  let x = Interp.Varr (Array.map (fun v -> Bitvec.create ~width v) window) in
  Bitvec.to_signed_int (Interp.as_int (Interp.run prog [ x ]))
