(** A CDCL SAT solver.

    Classic conflict-driven clause learning in the MiniSat lineage:
    two-watched-literal propagation, 1-UIP conflict analysis with clause
    minimization, VSIDS variable activity with phase saving, and Luby
    restarts.  Supports incremental solving under assumptions, which is
    what the sequential equivalence checker uses for its per-output and
    per-frame queries. *)

type t

type result =
  | Sat   (** A model was found; query it with {!value} / {!model}. *)
  | Unsat (** The clause set (under the given assumptions) is unsatisfiable. *)

type reason =
  | Conflict_limit  (** The conflict budget was exhausted. *)
  | Time_limit      (** The wall-clock budget was exhausted. *)

type budget = {
  max_conflicts : int option;  (** give up after this many conflicts *)
  max_seconds : float option;  (** give up after this much wall-clock time *)
}
(** A resource budget for {!solve_budgeted}.  [None] fields are
    unlimited.  Budgets are what keep equivalence sessions from hanging
    on a hard monolithic miter: a budgeted query always terminates, in
    the worst case with [Unknown]. *)

val no_budget : budget
(** The unlimited budget: [solve_budgeted ~budget:no_budget] = {!solve}. *)

val create : unit -> t
(** A fresh solver with no variables and no clauses. *)

val new_var : t -> int
(** Allocate a fresh variable and return its index. *)

val nvars : t -> int
(** Number of allocated variables. *)

val nclauses : t -> int
(** Number of problem (non-learnt) clauses added so far. *)

val nlearnts : t -> int
(** Number of clauses learnt so far. *)

val nconflicts : t -> int
(** Total conflicts encountered across all [solve] calls. *)

val ndecisions : t -> int
(** Total decisions made across all [solve] calls. *)

val npropagations : t -> int
(** Total unit propagations across all [solve] calls. *)

val nlearnts_removed : t -> int
(** Total learnt clauses dropped by DB reduction so far. *)

val set_learnt_limit : t -> int -> unit
(** Set the learnt-DB size that triggers the next reduction (default
    8192; the limit grows geometrically after each reduction).  Mainly
    for tests and tuning; reduction is always sound. *)

val add_clause : t -> Lit.t list -> unit
(** [add_clause s lits] adds a clause.  Duplicate literals are removed; a
    clause containing [l] and [not l] is dropped as trivially true.
    Adding the empty clause (or a clause falsified at level 0) makes the
    solver permanently unsatisfiable. *)

val solve : ?assumptions:Lit.t list -> t -> result
(** [solve ~assumptions s] decides satisfiability of the added clauses
    under the given assumption literals.  The solver remains usable
    afterwards: more variables and clauses may be added and [solve] may
    be called again (incremental use). *)

type outcome =
  | Sat
  | Unsat
  | Unknown of reason
      (** The budget ran out before the query was decided.  The solver
          remains usable: clauses learnt so far are kept, and a later
          (possibly bigger-budget) call picks up where this one left
          off. *)

val solve_budgeted :
  ?assumptions:Lit.t list -> ?budget:budget -> t -> outcome
(** Like {!solve} but bounded by [budget] (default {!no_budget}).  The
    wall clock is checked every 64 conflicts, so a query that never
    conflicts is allowed to finish even under a tiny time budget. *)

val solve_bounded :
  ?assumptions:Lit.t list -> max_conflicts:int -> t -> result option
(** Like {!solve} but gives up (returning [None]) after [max_conflicts]
    conflicts.  Used by SAT sweeping, where an undecided candidate pair
    is simply not merged.  Equivalent to {!solve_budgeted} with only a
    conflict budget. *)

val value : t -> Lit.t -> bool
(** [value s l] is the truth value of [l] in the most recent model.
    Only meaningful directly after a [solve] that returned [Sat]. *)

val model : t -> bool array
(** The most recent model as an array indexed by variable. *)

val true_lit : t -> Lit.t
(** A literal constrained true at level 0 (lazily allocated).  Useful for
    encoding constants. *)

val false_lit : t -> Lit.t
(** Negation of {!true_lit}. *)
