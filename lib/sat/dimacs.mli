(** DIMACS CNF reading and writing.

    The standalone interchange format for the SAT substrate: lets the
    solver be exercised against external instances and lets the
    equivalence checker dump the CNF of a miter for inspection. *)

type cnf = { num_vars : int; clauses : Lit.t list list }

val parse_string : string -> cnf
(** Parse DIMACS CNF text.  Comment lines ([c ...]) are skipped; the
    problem line ([p cnf V C]) is validated.  Raises [Failure] with a
    descriptive message on malformed input. *)

val parse_file : string -> cnf
(** {!parse_string} on a file's contents. *)

val to_string : cnf -> string
(** Render a CNF in DIMACS format. *)

val load : Solver.t -> cnf -> int
(** [load s cnf] allocates [cnf.num_vars] {e fresh} solver variables and
    adds all clauses, relocated onto them.  Returns the base offset [b]:
    CNF variable [v] (0-based) maps to solver variable [b + v].  The
    solver need not be fresh — loading composes with variables and
    clauses already present (and with several [load]s into one solver;
    each gets its own variable block and base). *)

val solver_lit : base:int -> Lit.t -> Lit.t
(** [solver_lit ~base l] relocates a CNF literal onto the solver
    variables of the {!load} call that returned [base]. *)
