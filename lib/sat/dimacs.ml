type cnf = { num_vars : int; clauses : Lit.t list list }

let parse_string text =
  let lines = String.split_on_char '\n' text in
  let num_vars = ref (-1) in
  let num_clauses = ref (-1) in
  let clauses = ref [] in
  let current = ref [] in
  let handle_token tok =
    match int_of_string_opt tok with
    | None -> failwith (Printf.sprintf "Dimacs: bad literal %S" tok)
    | Some 0 ->
      clauses := List.rev !current :: !clauses;
      current := []
    | Some n ->
      if !num_vars < 0 then failwith "Dimacs: literal before problem line";
      if abs n > !num_vars then
        failwith (Printf.sprintf "Dimacs: literal %d out of range" n);
      current := Lit.of_dimacs n :: !current
  in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line = "" || line.[0] = 'c' then ()
      else if line.[0] = 'p' then begin
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | [ "p"; "cnf"; v; c ] ->
          (match (int_of_string_opt v, int_of_string_opt c) with
          | Some v, Some c ->
            num_vars := v;
            num_clauses := c
          | _ -> failwith "Dimacs: bad problem line")
        | _ -> failwith "Dimacs: bad problem line"
      end
      else
        String.split_on_char ' ' line
        |> List.filter (( <> ) "")
        |> List.iter handle_token)
    lines;
  if !num_vars < 0 then failwith "Dimacs: missing problem line";
  if !current <> [] then failwith "Dimacs: clause not terminated by 0";
  let clauses = List.rev !clauses in
  if !num_clauses >= 0 && List.length clauses <> !num_clauses then
    failwith
      (Printf.sprintf "Dimacs: expected %d clauses, found %d" !num_clauses
         (List.length clauses));
  { num_vars = !num_vars; clauses }

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  parse_string text

let to_string cnf =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" cnf.num_vars (List.length cnf.clauses));
  List.iter
    (fun clause ->
      List.iter
        (fun l -> Buffer.add_string buf (Lit.to_string l ^ " "))
        clause;
      Buffer.add_string buf "0\n")
    cnf.clauses;
  Buffer.contents buf

let load solver cnf =
  let base = Solver.nvars solver in
  for _ = 1 to cnf.num_vars do
    ignore (Solver.new_var solver)
  done;
  List.iter
    (fun clause ->
      Solver.add_clause solver
        (List.map
           (fun l -> Lit.make (base + Lit.var l) (Lit.is_pos l))
           clause))
    cnf.clauses;
  base

let solver_lit ~base l = Lit.make (base + Lit.var l) (Lit.is_pos l)
