(* CDCL SAT solver (MiniSat lineage).

   Clauses are int arrays of literals with the invariant that the two
   watched literals sit at positions 0 and 1.  [watches.(l)] lists the
   clauses currently watching literal [l]; a clause is visited when one of
   its watched literals becomes false. *)

type clause = int array

type result = Sat | Unsat

type reason = Conflict_limit | Time_limit

type budget = { max_conflicts : int option; max_seconds : float option }

let no_budget = { max_conflicts = None; max_seconds = None }

(* Growable int/clause vectors: the solver's hot loops need in-place
   push/pop without list allocation. *)
module Vec = struct
  type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

  let create dummy = { data = Array.make 16 dummy; len = 0; dummy }

  let push v x =
    if v.len = Array.length v.data then begin
      let data = Array.make (2 * v.len) v.dummy in
      Array.blit v.data 0 data 0 v.len;
      v.data <- data
    end;
    v.data.(v.len) <- x;
    v.len <- v.len + 1

  let get v i = v.data.(i)
  let set v i x = v.data.(i) <- x
  let size v = v.len
  let shrink v n = v.len <- n
end

type t = {
  (* Per-variable state. *)
  mutable assign : int array;   (* -1 unassigned / 0 false / 1 true *)
  mutable level : int array;
  mutable reason : clause option array;
  mutable activity : float array;
  mutable phase : bool array;   (* saved polarity for decisions *)
  mutable heap_pos : int array; (* position in [heap], or -1 *)
  heap : int Vec.t;             (* binary max-heap of variables by activity *)
  mutable nvars : int;
  (* Clause database. *)
  clauses : clause Vec.t;
  learnts : clause Vec.t;
  mutable watches : clause Vec.t array; (* indexed by literal *)
  (* Trail. *)
  trail : int Vec.t;
  trail_lim : int Vec.t;
  mutable qhead : int;
  (* Activity bookkeeping. *)
  mutable var_inc : float;
  (* Status. *)
  mutable unsat : bool; (* conflict at level 0: permanently unsat *)
  mutable const_true : int; (* lazily allocated always-true literal, or -1 *)
  (* Statistics. *)
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable conflict_budget : int; (* -1 = unlimited; counts down in solve *)
  mutable deadline : float; (* absolute gettimeofday bound; infinity = none *)
  (* Learnt-DB reduction. *)
  mutable learnt_limit : int; (* reduce when learnts exceed this; grows *)
  mutable learnts_removed : int;
  (* Scratch for conflict analysis. *)
  mutable seen : bool array;
}

let create () =
  {
    assign = Array.make 16 (-1);
    level = Array.make 16 0;
    reason = Array.make 16 None;
    activity = Array.make 16 0.0;
    phase = Array.make 16 false;
    heap_pos = Array.make 16 (-1);
    heap = Vec.create 0;
    nvars = 0;
    clauses = Vec.create [||];
    learnts = Vec.create [||];
    watches = Array.init 32 (fun _ -> Vec.create [||]);
    trail = Vec.create 0;
    trail_lim = Vec.create 0;
    qhead = 0;
    var_inc = 1.0;
    unsat = false;
    const_true = -1;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    conflict_budget = -1;
    deadline = infinity;
    learnt_limit = 8192;
    learnts_removed = 0;
    seen = Array.make 16 false;
  }

let nvars s = s.nvars
let nclauses s = Vec.size s.clauses
let nlearnts s = Vec.size s.learnts
let nconflicts s = s.conflicts
let ndecisions s = s.decisions
let npropagations s = s.propagations
let nlearnts_removed s = s.learnts_removed

let set_learnt_limit s n =
  if n < 1 then invalid_arg "Solver.set_learnt_limit";
  s.learnt_limit <- n

(* --- heap of variables ordered by activity ------------------------- *)

let heap_lt s v w = s.activity.(v) > s.activity.(w)

let heap_swap s i j =
  let vi = Vec.get s.heap i and vj = Vec.get s.heap j in
  Vec.set s.heap i vj;
  Vec.set s.heap j vi;
  s.heap_pos.(vi) <- j;
  s.heap_pos.(vj) <- i

let rec heap_up s i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if heap_lt s (Vec.get s.heap i) (Vec.get s.heap p) then begin
      heap_swap s i p;
      heap_up s p
    end
  end

let rec heap_down s i =
  let n = Vec.size s.heap in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < n && heap_lt s (Vec.get s.heap l) (Vec.get s.heap !best) then best := l;
  if r < n && heap_lt s (Vec.get s.heap r) (Vec.get s.heap !best) then best := r;
  if !best <> i then begin
    heap_swap s i !best;
    heap_down s !best
  end

let heap_insert s v =
  if s.heap_pos.(v) < 0 then begin
    Vec.push s.heap v;
    s.heap_pos.(v) <- Vec.size s.heap - 1;
    heap_up s (Vec.size s.heap - 1)
  end

let heap_pop s =
  let top = Vec.get s.heap 0 in
  let last = Vec.get s.heap (Vec.size s.heap - 1) in
  Vec.shrink s.heap (Vec.size s.heap - 1);
  s.heap_pos.(top) <- -1;
  if Vec.size s.heap > 0 then begin
    Vec.set s.heap 0 last;
    s.heap_pos.(last) <- 0;
    heap_down s 0
  end;
  top

let heap_decrease s v = if s.heap_pos.(v) >= 0 then heap_up s s.heap_pos.(v)

(* --- variables ------------------------------------------------------ *)

let grow_arrays s =
  let n = Array.length s.assign in
  let grow a dummy =
    let b = Array.make (2 * n) dummy in
    Array.blit a 0 b 0 n;
    b
  in
  s.assign <- grow s.assign (-1);
  s.level <- grow s.level 0;
  s.reason <- grow s.reason None;
  s.activity <- grow s.activity 0.0;
  s.phase <- grow s.phase false;
  s.heap_pos <- grow s.heap_pos (-1);
  s.seen <- grow s.seen false;
  let w = Array.init (4 * n) (fun _ -> Vec.create [||]) in
  Array.blit s.watches 0 w 0 (2 * n);
  s.watches <- w

let new_var s =
  if s.nvars = Array.length s.assign then grow_arrays s;
  let v = s.nvars in
  s.nvars <- s.nvars + 1;
  heap_insert s v;
  v

(* --- assignment ----------------------------------------------------- *)

let lit_value s l =
  (* -1 unassigned, 0 false, 1 true *)
  let a = s.assign.(Lit.var l) in
  if a < 0 then -1 else if Lit.is_pos l then a else 1 - a

let decision_level s = Vec.size s.trail_lim

let enqueue s l reason =
  let v = Lit.var l in
  s.assign.(v) <- (if Lit.is_pos l then 1 else 0);
  s.level.(v) <- decision_level s;
  s.reason.(v) <- reason;
  Vec.push s.trail l

(* --- propagation ---------------------------------------------------- *)

exception Conflict of clause

let propagate s =
  try
    while s.qhead < Vec.size s.trail do
      let p = Vec.get s.trail s.qhead in
      s.qhead <- s.qhead + 1;
      s.propagations <- s.propagations + 1;
      (* Literal [np] just became false: visit its watchers. *)
      let np = Lit.negate p in
      let ws = s.watches.(np) in
      let j = ref 0 in
      (* In-place compaction: clauses that keep watching [np] are copied
         down to position [j]. *)
      (try
         let i = ref 0 in
         while !i < Vec.size ws do
           let c = Vec.get ws !i in
           incr i;
           (* Ensure the false watch is at position 1. *)
           if c.(0) = np then begin
             c.(0) <- c.(1);
             c.(1) <- np
           end;
           if lit_value s c.(0) = 1 then begin
             (* Clause already satisfied by the other watch. *)
             Vec.set ws !j c;
             incr j
           end
           else begin
             (* Look for a new literal to watch. *)
             let n = Array.length c in
             let k = ref 2 in
             while !k < n && lit_value s c.(!k) = 0 do
               incr k
             done;
             if !k < n then begin
               (* Move the new watch into position 1. *)
               c.(1) <- c.(!k);
               c.(!k) <- np;
               Vec.push s.watches.(c.(1)) c
               (* and drop c from ws by not copying it down *)
             end
             else if lit_value s c.(0) = 0 then begin
               (* All other literals false and c.(0) false: conflict.
                  Keep remaining watchers in place before aborting. *)
               Vec.set ws !j c;
               incr j;
               while !i < Vec.size ws do
                 Vec.set ws !j (Vec.get ws !i);
                 incr i;
                 incr j
               done;
               Vec.shrink ws !j;
               s.qhead <- Vec.size s.trail;
               raise (Conflict c)
             end
             else begin
               (* Unit clause: propagate c.(0). *)
               Vec.set ws !j c;
               incr j;
               enqueue s c.(0) (Some c)
             end
           end
         done;
         Vec.shrink ws !j
       with Conflict _ as e -> raise e)
    done;
    None
  with Conflict c -> Some c

(* --- activity ------------------------------------------------------- *)

let var_bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  heap_decrease s v

let var_decay s = s.var_inc <- s.var_inc /. 0.95

(* --- backtracking --------------------------------------------------- *)

let cancel_until s lvl =
  if decision_level s > lvl then begin
    let bound = Vec.get s.trail_lim lvl in
    for i = Vec.size s.trail - 1 downto bound do
      let l = Vec.get s.trail i in
      let v = Lit.var l in
      s.phase.(v) <- Lit.is_pos l;
      s.assign.(v) <- -1;
      s.reason.(v) <- None;
      heap_insert s v
    done;
    Vec.shrink s.trail bound;
    Vec.shrink s.trail_lim lvl;
    s.qhead <- bound
  end

(* --- conflict analysis (1-UIP) -------------------------------------- *)

let analyze s conflict =
  let learnt = ref [] in
  let path = ref 0 in
  let p = ref (-1) in
  let idx = ref (Vec.size s.trail - 1) in
  let c = ref conflict in
  let continue = ref true in
  while !continue do
    Array.iter
      (fun q ->
        (* Skip the asserting literal itself on non-first iterations. *)
        if q <> !p then begin
          let v = Lit.var q in
          if (not s.seen.(v)) && s.level.(v) > 0 then begin
            s.seen.(v) <- true;
            var_bump s v;
            if s.level.(v) >= decision_level s then incr path
            else learnt := q :: !learnt
          end
        end)
      !c;
    (* Walk the trail backwards to the next marked literal. *)
    while not s.seen.(Lit.var (Vec.get s.trail !idx)) do
      decr idx
    done;
    let l = Vec.get s.trail !idx in
    decr idx;
    let v = Lit.var l in
    s.seen.(v) <- false;
    decr path;
    if !path = 0 then begin
      (* l is the 1-UIP; its negation asserts the learnt clause. *)
      p := Lit.negate l;
      continue := false
    end
    else begin
      match s.reason.(v) with
      | Some r ->
        c := r;
        p := l
      | None -> assert false (* a decision cannot be interior to the cut *)
    end
  done;
  (* Clause minimization: drop a literal whose reason's literals are all
     already in the clause (self-subsumption, non-recursive). *)
  let in_clause v = s.seen.(v) in
  List.iter (fun q -> s.seen.(Lit.var q) <- true) !learnt;
  let minimized =
    List.filter
      (fun q ->
        match s.reason.(Lit.var q) with
        | None -> true
        | Some r ->
          not
            (Array.for_all
               (fun l -> Lit.var l = Lit.var q || in_clause (Lit.var l) || s.level.(Lit.var l) = 0)
               r))
      !learnt
  in
  List.iter (fun q -> s.seen.(Lit.var q) <- false) !learnt;
  let learnt_arr = Array.of_list (!p :: minimized) in
  (* Find the backtrack level: the highest level among the non-asserting
     literals (0 if the clause is unit). *)
  let blevel = ref 0 in
  let pos = ref 0 in
  for i = 1 to Array.length learnt_arr - 1 do
    let lv = s.level.(Lit.var learnt_arr.(i)) in
    if lv > !blevel then begin
      blevel := lv;
      pos := i
    end
  done;
  (* Put the second-highest-level literal at index 1 (watch invariant). *)
  if Array.length learnt_arr > 1 then begin
    let tmp = learnt_arr.(1) in
    learnt_arr.(1) <- learnt_arr.(!pos);
    learnt_arr.(!pos) <- tmp
  end;
  (learnt_arr, !blevel)

(* --- clause addition ------------------------------------------------ *)

let attach_clause s c =
  Vec.push s.watches.(c.(0)) c;
  Vec.push s.watches.(c.(1)) c

let add_clause s lits =
  if not s.unsat then begin
    List.iter
      (fun l ->
        if Lit.var l >= s.nvars || l < 0 then
          invalid_arg "Solver.add_clause: unallocated variable")
      lits;
    (* Normalize: sort, dedupe, drop tautologies and level-0-false lits. *)
    let lits = List.sort_uniq compare lits in
    let tautology =
      List.exists (fun l -> List.mem (Lit.negate l) lits) lits
    in
    let lits =
      List.filter
        (fun l ->
          not (lit_value s l = 0 && s.level.(Lit.var l) = 0))
        lits
    in
    let satisfied =
      List.exists (fun l -> lit_value s l = 1 && s.level.(Lit.var l) = 0) lits
    in
    if not (tautology || satisfied) then begin
      match lits with
      | [] -> s.unsat <- true
      | [ l ] ->
        if lit_value s l = -1 then begin
          enqueue s l None;
          if propagate s <> None then s.unsat <- true
        end
      | _ ->
        let c = Array.of_list lits in
        Vec.push s.clauses c;
        attach_clause s c
    end
  end

(* --- learnt-DB reduction --------------------------------------------- *)

(* A learnt clause is locked while it is the reason for a current
   assignment: it must survive reduction so conflict analysis can still
   walk the implication graph through it. *)
let is_locked s c =
  let v = Lit.var c.(0) in
  s.assign.(v) >= 0
  && (match s.reason.(v) with Some r -> r == c | None -> false)

(* Drop roughly half of the learnt clauses, longest first.  Binary and
   locked clauses always survive.  Sound at any point outside
   [propagate]: removing learnt (implied) clauses never changes
   satisfiability, and every watch list is rebuilt from scratch with the
   same watched literals, so the two-watched invariant is preserved. *)
let reduce_learnts s =
  let keep = ref [] and cands = ref [] in
  for i = 0 to Vec.size s.learnts - 1 do
    let c = Vec.get s.learnts i in
    if Array.length c <= 2 || is_locked s c then keep := c :: !keep
    else cands := c :: !cands
  done;
  let cands =
    List.sort (fun a b -> compare (Array.length a) (Array.length b)) !cands
  in
  let target = List.length cands / 2 in
  let kept_cands = List.filteri (fun i _ -> i < target) cands in
  let removed = List.length cands - target in
  if removed > 0 then begin
    s.learnts_removed <- s.learnts_removed + removed;
    Vec.shrink s.learnts 0;
    List.iter (Vec.push s.learnts) !keep;
    List.iter (Vec.push s.learnts) kept_cands;
    (* Rebuild every watch list: problem clauses plus surviving learnts. *)
    Array.iter (fun w -> Vec.shrink w 0) s.watches;
    for i = 0 to Vec.size s.clauses - 1 do
      let c = Vec.get s.clauses i in
      Vec.push s.watches.(c.(0)) c;
      Vec.push s.watches.(c.(1)) c
    done;
    for i = 0 to Vec.size s.learnts - 1 do
      let c = Vec.get s.learnts i in
      Vec.push s.watches.(c.(0)) c;
      Vec.push s.watches.(c.(1)) c
    done;
    Dfv_obs.Trace.instant ~cat:"sat"
      ~args:[ ("removed", Dfv_obs.Json.Int removed) ]
      "sat.reduce_learnts"
  end

(* --- search --------------------------------------------------------- *)

let luby i =
  (* Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
  let rec go k sz seq_i =
    if sz - 1 = seq_i then k
    else if seq_i >= sz / 2 then go k (sz / 2) (seq_i - (sz / 2))
    else go (k - 1) (sz / 2) seq_i
  in
  let rec size k = if k = 0 then 1 else (2 * size (k - 1)) + 1 in
  let rec find k = if size k - 1 >= i then k else find (k + 1) in
  let k = find 0 in
  1 lsl go k (size k) i

exception Result of result
exception Out_of_budget of reason

let solve ?(assumptions = []) s =
  if s.unsat then Unsat
  else begin
    let n_assumps = List.length assumptions in
    let assumps = Array.of_list assumptions in
    let restart_unit = 100 in
    let restart_idx = ref 0 in
    let budget = ref (restart_unit * luby !restart_idx) in
    try
      (* Main CDCL loop. *)
      while true do
        match propagate s with
        | Some conflict ->
          s.conflicts <- s.conflicts + 1;
          if s.conflict_budget > 0 then begin
            s.conflict_budget <- s.conflict_budget - 1;
            if s.conflict_budget = 0 then begin
              cancel_until s 0;
              raise (Out_of_budget Conflict_limit)
            end
          end;
          if
            s.deadline < infinity
            && s.conflicts land 63 = 0
            && Unix.gettimeofday () > s.deadline
          then begin
            cancel_until s 0;
            raise (Out_of_budget Time_limit)
          end;
          decr budget;
          if decision_level s <= n_assumps then begin
            (* Conflict among assumptions (or at level 0). *)
            if decision_level s = 0 then s.unsat <- true;
            cancel_until s 0;
            raise (Result Unsat)
          end;
          let learnt, blevel = analyze s conflict in
          (* Never backtrack past the assumption levels' consequences:
             analyze can produce blevel below assumptions; that is fine —
             the learnt clause stays valid, and re-deciding assumptions is
             handled by the decision loop. *)
          cancel_until s (max blevel 0);
          if Array.length learnt = 1 then begin
            if decision_level s > 0 then cancel_until s 0;
            if lit_value s learnt.(0) = 0 then begin
              s.unsat <- true;
              raise (Result Unsat)
            end
            else if lit_value s learnt.(0) = -1 then enqueue s learnt.(0) None
          end
          else begin
            Vec.push s.learnts learnt;
            attach_clause s learnt;
            enqueue s learnt.(0) (Some learnt)
          end;
          var_decay s
        | None ->
          if !budget <= 0 && decision_level s > n_assumps then begin
            (* Restart; also the safe point for learnt-DB reduction. *)
            incr restart_idx;
            budget := restart_unit * luby !restart_idx;
            cancel_until s n_assumps;
            if Vec.size s.learnts >= s.learnt_limit then begin
              reduce_learnts s;
              (* Geometric growth keeps reductions amortized. *)
              s.learnt_limit <- s.learnt_limit + (s.learnt_limit / 2)
            end
          end
          else begin
            (* Decide: first the assumptions, then free variables. *)
            let dl = decision_level s in
            if dl < n_assumps then begin
              let a = assumps.(dl) in
              if Lit.var a >= s.nvars then
                invalid_arg "Solver.solve: assumption over unallocated variable";
              match lit_value s a with
              | 1 ->
                (* Already true: open an empty level to keep indices
                   aligned with the assumption array. *)
                Vec.push s.trail_lim (Vec.size s.trail)
              | 0 -> raise (Result Unsat)
              | _ ->
                Vec.push s.trail_lim (Vec.size s.trail);
                enqueue s a None
            end
            else begin
              (* Pick an unassigned variable by activity. *)
              let rec pick () =
                if Vec.size s.heap = 0 then None
                else begin
                  let v = heap_pop s in
                  if s.assign.(v) < 0 then Some v else pick ()
                end
              in
              match pick () with
              | None -> raise (Result Sat)
              | Some v ->
                s.decisions <- s.decisions + 1;
                Vec.push s.trail_lim (Vec.size s.trail);
                enqueue s (Lit.make v s.phase.(v)) None
            end
          end
      done;
      assert false
    with Result r ->
      if r = Sat then begin
        (* Snapshot would happen here if we cleared the trail; instead we
           leave the trail intact so [value] can read it, and reset lazily
           on the next solve/add. *)
        ()
      end;
      r
  end

let value s l =
  match lit_value s l with
  | 1 -> true
  | 0 -> false
  | _ -> false (* unassigned vars are don't-cares; report false *)

let model s = Array.init s.nvars (fun v -> s.assign.(v) = 1)

let true_lit s =
  if s.const_true < 0 then begin
    (* Must be added at level 0. *)
    cancel_until s 0;
    let v = new_var s in
    s.const_true <- Lit.pos v;
    add_clause s [ Lit.pos v ]
  end;
  s.const_true

let false_lit s = Lit.negate (true_lit s)

(* Keep the solver reusable: callers may add clauses after a solve; make
   sure additions happen at level 0. *)
let add_clause s lits =
  cancel_until s 0;
  add_clause s lits

let solve_raw = solve

(* --- observability --------------------------------------------------- *)

let m_solves = Dfv_obs.Metrics.counter "sat.solves"
let m_conflicts = Dfv_obs.Metrics.counter "sat.conflicts"
let m_decisions = Dfv_obs.Metrics.counter "sat.decisions"
let m_propagations = Dfv_obs.Metrics.counter "sat.propagations"
let m_learnts_removed = Dfv_obs.Metrics.counter "sat.learnts_removed"
let m_solve_us = Dfv_obs.Metrics.histogram "sat.solve_us"

(* Publish one batch of counter deltas per solve call instead of touching
   the registry from the search loops: the hot path keeps its local
   stat fields and observability costs a handful of subtractions per
   solve. *)
let observed s f =
  let c0 = s.conflicts and d0 = s.decisions in
  let p0 = s.propagations and l0 = s.learnts_removed in
  let t0 = Unix.gettimeofday () in
  let finally () =
    Dfv_obs.Metrics.incr m_solves;
    Dfv_obs.Metrics.add m_conflicts (s.conflicts - c0);
    Dfv_obs.Metrics.add m_decisions (s.decisions - d0);
    Dfv_obs.Metrics.add m_propagations (s.propagations - p0);
    Dfv_obs.Metrics.add m_learnts_removed (s.learnts_removed - l0);
    Dfv_obs.Metrics.observe m_solve_us
      (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6))
  in
  Dfv_obs.Trace.with_span ~cat:"sat" "sat.solve" (fun () ->
      Fun.protect ~finally f)

let solve ?assumptions s =
  cancel_until s 0;
  s.conflict_budget <- -1;
  s.deadline <- infinity;
  observed s (fun () -> solve_raw ?assumptions s)

type outcome = Sat | Unsat | Unknown of reason

let solve_budgeted ?assumptions ?(budget = no_budget) s : outcome =
  (match budget.max_conflicts with
  | Some n when n < 1 -> invalid_arg "Solver.solve_budgeted: max_conflicts"
  | Some _ | None -> ());
  (match budget.max_seconds with
  | Some sec when sec < 0.0 -> invalid_arg "Solver.solve_budgeted: max_seconds"
  | Some _ | None -> ());
  cancel_until s 0;
  s.conflict_budget <-
    (match budget.max_conflicts with Some n -> n | None -> -1);
  s.deadline <-
    (match budget.max_seconds with
    | Some sec -> Unix.gettimeofday () +. sec
    | None -> infinity);
  let restore () =
    s.conflict_budget <- -1;
    s.deadline <- infinity
  in
  match observed s (fun () -> solve_raw ?assumptions s) with
  | r ->
    restore ();
    (match r with Sat -> Sat | Unsat -> Unsat)
  | exception Out_of_budget reason ->
    restore ();
    Unknown reason

let solve_bounded ?assumptions ~max_conflicts s =
  let budget = { max_conflicts = Some max_conflicts; max_seconds = None } in
  match solve_budgeted ?assumptions ~budget s with
  | Sat -> Some (Sat : result)
  | Unsat -> Some (Unsat : result)
  | Unknown _ -> None
