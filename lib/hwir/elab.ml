module Bitvec = Dfv_bitvec.Bitvec
module Aig = Dfv_aig.Aig
module Word = Dfv_aig.Word
open Ast

type shape = Word of Word.w | Bank of Word.w array

exception Not_synthesizable of string

let fail fmt = Printf.ksprintf (fun m -> raise (Not_synthesizable m)) fmt

(* Symbolic slots: like the interpreter's, but holding AIG words. *)
type slot =
  | Eint of { mutable w : Word.w; signed : bool }
  | Earr of { mutable bank : Word.w array; signed : bool }

type env = {
  g : Aig.t;
  prog : program;
  vars : (string, slot) Hashtbl.t;
  (* Early-return tracking: once [returned] is true (symbolically), all
     further writes in the function are masked out. *)
  mutable returned : Aig.lit;
  mutable retval : shape option;
}

let truthy g (w : Word.w) = Word.reduce_or g w

(* --- symbolic expression evaluation ----------------------------------- *)

(* Call-depth guard state is domain-local so concurrent elaborations on
   {!Dfv_par.Dpool} worker domains track their own recursion depth. *)
let elab_depth_key : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)
let elab_depth () = Domain.DLS.get elab_depth_key

let rec eval (env : env) (e : expr) : Word.w * bool =
  let g = env.g in
  match e with
  | Int (bv, signed) -> (Word.const bv, signed)
  | Bool b -> (Word.const (Bitvec.of_bool b), false)
  | Var n -> (
    match Hashtbl.find_opt env.vars n with
    | Some (Eint { w; signed }) -> (w, signed)
    | Some (Earr _) -> fail "array %s used as a scalar" n
    | None -> fail "unknown variable %s" n)
  | Index (a, i) -> (
    match Hashtbl.find_opt env.vars a with
    | Some (Earr { bank; signed }) ->
      let iw, _ = eval env i in
      let width = Array.length bank.(0) in
      let default = Array.make width Aig.false_ in
      (Word.mux_index g ~default iw bank, signed)
    | Some (Eint _) -> fail "scalar %s indexed as an array" a
    | None -> fail "unknown array %s" a)
  | Unop (Not, a) ->
    let w, sg = eval env a in
    (Word.lognot w, sg)
  | Unop (Neg, a) ->
    let w, sg = eval env a in
    (Word.neg g w, sg)
  | Unop (Lnot, a) ->
    let w, _ = eval env a in
    ([| Aig.not_ (truthy g w) |], false)
  | Binop (Land, a, b) ->
    let wa, _ = eval env a and wb, _ = eval env b in
    ([| Aig.and_ g (truthy g wa) (truthy g wb) |], false)
  | Binop (Lor, a, b) ->
    let wa, _ = eval env a and wb, _ = eval env b in
    ([| Aig.or_ g (truthy g wa) (truthy g wb) |], false)
  | Binop (op, a, b) -> (
    let wa, sa = eval env a in
    let wb, _ = eval env b in
    match op with
    | Add -> (Word.add g wa wb, sa)
    | Sub -> (Word.sub g wa wb, sa)
    | Mul -> (Word.mul g wa wb, sa)
    | Div -> ((if sa then Word.sdiv g wa wb else Word.udiv g wa wb), sa)
    | Rem -> ((if sa then Word.srem g wa wb else Word.urem g wa wb), sa)
    | And -> (Word.logand g wa wb, sa)
    | Or -> (Word.logor g wa wb, sa)
    | Xor -> (Word.logxor g wa wb, sa)
    | Shl -> (Word.shift_left_var g wa wb, sa)
    | Shr ->
      ( (if sa then Word.shift_right_arith_var g wa wb
         else Word.shift_right_logical_var g wa wb),
        sa )
    | Eq -> ([| Word.eq g wa wb |], false)
    | Ne -> ([| Word.ne g wa wb |], false)
    | Lt -> ([| (if sa then Word.slt g wa wb else Word.ult g wa wb) |], false)
    | Le -> ([| (if sa then Word.sle g wa wb else Word.ule g wa wb) |], false)
    | Land | Lor -> assert false)
  | Cond (c, a, b) ->
    let wc, _ = eval env c in
    let wa, sa = eval env a in
    let wb, _ = eval env b in
    (Word.mux g ~sel:(truthy g wc) wa wb, sa)
  | Cast (Tint { width; signed }, a) ->
    let w, sa = eval env a in
    ((if sa then Word.sresize w width else Word.uresize w width), signed)
  | Cast (Tarray _, _) -> fail "cast to array type"
  | Bitsel (a, hi, lo) ->
    let w, _ = eval env a in
    (Word.select w ~hi ~lo, false)
  | Call (f, args) -> (
    match eval_call env f args with
    | Word w ->
      let signed =
        match find_func env.prog f with
        | Some { ret = Tint { signed; _ }; _ } -> signed
        | _ -> false
      in
      (w, signed)
    | Bank _ -> fail "array-returning call %s used in scalar context" f)

and eval_arg env (e : expr) : shape =
  match e with
  | Var n -> (
    match Hashtbl.find_opt env.vars n with
    | Some (Eint { w; _ }) -> Word w
    | Some (Earr { bank; _ }) -> Bank (Array.copy bank)
    | None -> fail "unknown variable %s" n)
  | Call (f, args) -> eval_call env f args
  | _ ->
    let w, _ = eval env e in
    Word w

and eval_call env f args : shape =
  match find_func env.prog f with
  | None -> fail "call to unknown function %s" f
  | Some fn ->
    let argv = List.map (eval_arg env) args in
    elab_func env.g env.prog fn argv

(* --- statement elaboration --------------------------------------------- *)

and masked_write env old_w new_w =
  (* Writes after a (symbolic) return keep the old value. *)
  Word.mux env.g ~sel:env.returned old_w new_w

and exec (env : env) (st : stmt) : unit =
  let g = env.g in
  match st with
  | Assign (Lvar n, e) -> (
    match Hashtbl.find_opt env.vars n with
    | Some (Eint cell) ->
      let w, _ = eval env e in
      cell.w <- masked_write env cell.w w
    | Some (Earr cell) -> (
      match eval_arg env e with
      | Bank src ->
        if Array.length src <> Array.length cell.bank then
          fail "array assignment to %s: size mismatch" n;
        cell.bank <-
          Array.mapi (fun i old -> masked_write env old src.(i)) cell.bank
      | Word _ -> fail "scalar assigned to array %s" n)
    | None -> fail "unknown variable %s" n)
  | Assign (Lindex (a, i), e) -> (
    match Hashtbl.find_opt env.vars a with
    | Some (Earr cell) ->
      let iw, _ = eval env i in
      let w, _ = eval env e in
      (* Address-decoded write, masked by the return guard. *)
      cell.bank <-
        Array.mapi
          (fun k old ->
            if
              Array.length iw < Sys.int_size - 2
              && k >= 1 lsl Array.length iw
            then old (* index can never reach this element *)
            else begin
              let kw = Word.const (Bitvec.create ~width:(Array.length iw) k) in
              let hit =
                Aig.and_ g (Word.eq g iw kw) (Aig.not_ env.returned)
              in
              Word.mux g ~sel:hit w old
            end)
          cell.bank
    | Some (Eint _) -> fail "scalar %s indexed as an array" a
    | None -> fail "unknown array %s" a)
  | If (c, t, e) ->
    let wc, _ = eval env c in
    let cond = truthy g wc in
    exec_branches env cond t e
  | For { ivar; count; body } ->
    let cell = Eint { w = Word.const (Bitvec.zero 32); signed = false } in
    Hashtbl.replace env.vars ivar cell;
    for i = 0 to count - 1 do
      (match cell with
      | Eint c -> c.w <- Word.const (Bitvec.create ~width:32 i)
      | Earr _ -> assert false);
      List.iter (exec env) body
    done;
    Hashtbl.remove env.vars ivar
  | Bounded_while { cond; max_iter; body } ->
    (* Unroll to the static bound; each iteration guarded by the exit
       condition — the transformation the paper prescribes. *)
    for _ = 1 to max_iter do
      let wc, _ = eval env cond in
      exec_branches env (truthy g wc) body []
    done
  | While _ ->
    fail
      "data-dependent loop: cannot be statically unrolled (convert to a \
       bounded loop with a conditional exit)"
  | Return e ->
    let v = eval_arg env e in
    (match (env.retval, v) with
    | None, v -> env.retval <- Some v
    | Some (Word old), Word w ->
      env.retval <- Some (Word (Word.mux g ~sel:env.returned old w))
    | Some (Bank old), Bank b ->
      env.retval <-
        Some
          (Bank
             (Array.mapi
                (fun i o -> Word.mux g ~sel:env.returned o b.(i))
                old))
    | Some (Word _), Bank _ | Some (Bank _), Word _ ->
      fail "inconsistent return shapes");
    env.returned <- Aig.true_
  | Alloc { var; _ } ->
    fail "dynamic allocation of %s: not statically analyzable" var
  | Alias { var; target } ->
    fail "pointer aliasing (%s = %s): not statically analyzable" var target
  | Extern_call (callee, _) ->
    fail "external call to %s: model is not self-contained" callee

(* Execute both branches of a conditional on separate copies of the
   environment and mux the results. *)
and exec_branches env cond then_ else_ =
  let g = env.g in
  let snapshot () =
    let vars = Hashtbl.create (Hashtbl.length env.vars) in
    Hashtbl.iter
      (fun k v ->
        let v' =
          match v with
          | Eint { w; signed } -> Eint { w; signed }
          | Earr { bank; signed } -> Earr { bank = Array.copy bank; signed }
        in
        Hashtbl.replace vars k v')
      env.vars;
    { env with vars }
  in
  let env_t = snapshot () and env_e = snapshot () in
  List.iter (exec env_t) then_;
  List.iter (exec env_e) else_;
  (* Merge: for every variable, mux the two branches' values. *)
  Hashtbl.iter
    (fun k v ->
      match (v, Hashtbl.find_opt env_t.vars k, Hashtbl.find_opt env_e.vars k) with
      | Eint cell, Some (Eint t), Some (Eint e) ->
        cell.w <- Word.mux g ~sel:cond t.w e.w
      | Earr cell, Some (Earr t), Some (Earr e) ->
        cell.bank <-
          Array.mapi (fun i _ -> Word.mux g ~sel:cond t.bank.(i) e.bank.(i)) cell.bank
      | _ -> fail "branch changed the shape of a variable")
    env.vars;
  env.returned <- Aig.mux g ~sel:cond env_t.returned env_e.returned;
  env.retval <-
    (match (env_t.retval, env_e.retval) with
    | None, None -> None
    | Some v, None | None, Some v -> Some v
    | Some (Word a), Some (Word b) -> Some (Word (Word.mux g ~sel:cond a b))
    | Some (Bank a), Some (Bank b) ->
      Some (Bank (Array.mapi (fun i w -> Word.mux g ~sel:cond w b.(i)) a))
    | Some (Word _), Some (Bank _) | Some (Bank _), Some (Word _) ->
      fail "inconsistent return shapes across branches")

and elab_func g prog (fn : func) (argv : shape list) : shape =
  let depth = elab_depth () in
  incr depth;
  if !depth > 64 then begin
    depth := 0;
    fail "call depth exceeded (recursion in %s?)" fn.fname
  end;
  let env =
    {
      g;
      prog;
      vars = Hashtbl.create 16;
      returned = Aig.false_;
      retval = None;
    }
  in
  (try
     List.iter2
       (fun (name, ty) v ->
         match (ty, v) with
         | Tint { signed; _ }, Word w ->
           Hashtbl.replace env.vars name (Eint { w; signed })
         | Tarray (Tint { signed; _ }, _), Bank bank ->
           Hashtbl.replace env.vars name (Earr { bank; signed })
         | _ -> fail "%s: argument %s has the wrong shape" fn.fname name)
       fn.params argv
   with Invalid_argument _ -> fail "%s: arity mismatch" fn.fname);
  List.iter
    (fun (name, ty) ->
      match ty with
      | Tint { width; signed } ->
        Hashtbl.replace env.vars name
          (Eint { w = Word.const (Bitvec.zero width); signed })
      | Tarray (Tint { width; signed }, size) ->
        Hashtbl.replace env.vars name
          (Earr
             {
               bank = Array.make size (Word.const (Bitvec.zero width));
               signed;
             })
      | Tarray (Tarray _, _) -> fail "%s: nested array local" fn.fname)
    fn.locals;
  List.iter (exec env) fn.body;
  decr depth;
  match env.retval with
  | Some v -> v
  | None -> fail "%s: no path returns a value" fn.fname

let apply_func prog ~g fname args =
  match find_func prog fname with
  | None -> fail "function %s not found" fname
  | Some fn ->
    elab_depth () := 0;
    elab_func g prog fn args

let apply prog ~g args = apply_func prog ~g prog.entry args

let elaborate prog ~g =
  match find_func prog prog.entry with
  | None -> fail "entry function %s not found" prog.entry
  | Some fn ->
    elab_depth () := 0;
    let params =
      List.map
        (fun (name, ty) ->
          match ty with
          | Tint { width; _ } -> (name, Word (Word.inputs ~name g width))
          | Tarray (Tint { width; _ }, size) ->
            ( name,
              Bank
                (Array.init size (fun i ->
                     Word.inputs ~name:(Printf.sprintf "%s[%d]" name i) g width)) )
          | Tarray (Tarray _, _) -> fail "entry parameter %s: nested array" name)
        fn.params
    in
    let result = elab_func g prog fn (List.map snd params) in
    (params, result)
