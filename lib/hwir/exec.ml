(* Engine switch for system-level model execution, mirroring
   [Rtl.Sim]'s `Compiled / `Interp selector: the compiled normal form
   is the default, the tree-walking interpreter stays as the
   differential oracle and as the fallback for models outside the
   normal form. *)

type engine = [ `Compiled | `Interp ]

type t =
  | E_interp of Ast.program
  | E_compiled of Compile.t

let create ?(engine = `Compiled) (p : Ast.program) : t =
  match engine with
  | `Interp -> E_interp p
  | `Compiled -> E_compiled (Compile.of_program p)

let auto (p : Ast.program) : t =
  match Compile.of_program p with
  | c -> E_compiled c
  | exception Norm.Rejected _ -> E_interp p

let engine = function E_interp _ -> `Interp | E_compiled _ -> `Compiled

let run (t : t) (args : Interp.value list) : Interp.value =
  match t with
  | E_interp p -> Interp.run p args
  | E_compiled c -> Compile.run c args
