(** Verified normal form (VNF): the firewall between the HWIR frontend
    and the compiled backend.

    [lower] flattens an elaborated, typechecked HWIR program into a
    linear sequence of guarded assignments over dense slot/array ids
    with fully explicit evaluation order — calls inlined, loops
    unrolled to their static bounds, short-circuit operators and
    conditionals turned into guard computations.  Constructs outside
    the normal form are rejected with a source-located [diagnostic]
    naming the construct and the violated rule:

    - [VNF-T0] — the program does not typecheck;
    - [VNF-L1] — [While]: data-dependent loop bound;
    - [VNF-M1] — [Alloc]: dynamically sized array storage;
    - [VNF-M2] — [Alias]: aliased array names;
    - [VNF-X1] — [Extern_call]: the model is not self-contained;
    - [VNF-S1] — the lowered instruction count exceeds the budget.

    [validate] is the machine-checked well-formedness gate over the
    normal form itself; [lower] self-checks its output and
    [Compile.compile] re-validates its input.

    The semantic contract: executing the VNF in instruction order
    (skipping instructions whose guard slot is 0) is observably
    identical to [Interp] on the same program — same values, same
    evaluation order, and the same [Interp.Runtime_error] messages. *)

(** {1 Diagnostics} *)

type loc = {
  l_func : string;  (** enclosing HWIR function *)
  l_path : string;  (** statement path, e.g. ["body[2]/then[0]"] *)
}

type diagnostic = {
  d_construct : string;  (** offending construct, e.g. ["while loop"] *)
  d_rule : string;  (** violated rule, e.g. ["VNF-L1"] *)
  d_reason : string;
  d_loc : loc;
  d_hint : string;  (** how to condition the model, echoing [Guideline] *)
}

exception Rejected of diagnostic

val pp_diagnostic : Format.formatter -> diagnostic -> unit
val diagnostic_to_string : diagnostic -> string

(** {1 The normal form}

    All types are public so tests can build (deliberately broken)
    normal forms by hand and drive them through [validate]. *)

type operand = Oslot of int | Oimm of Dfv_bitvec.Bitvec.t

type guard =
  | Galways  (** executes unconditionally *)
  | Gslot of int  (** executes iff the 1-bit guard slot is non-zero *)

type vop =
  | Vmov of operand
  | Vnot of operand
  | Vneg of operand
  | Vlnot of operand  (** logical not: 1-bit, 1 iff operand is zero *)
  | Vbin of { op : Ast.binop; sa : bool; a : operand; b : operand }
      (** [sa]: signed arithmetic (division, remainder, arithmetic
          shift, ordered comparison). [Land]/[Lor] are frontend
          constructs and never appear. *)
  | Vcast of { signed : bool; a : operand }
      (** resize to the destination width; [signed] is the {e source}
          signedness (sign- vs zero-extension) *)
  | Vbitsel of { a : operand; hi : int; lo : int }
  | Vload of { arr : int; idx : operand; aname : string }
      (** bounds-checked read; [aname] is the source-level array name
          used in the out-of-bounds error message *)
  | Vcheck of { arr : int; idx : operand; aname : string }
      (** bounds check alone, at the index's evaluation point (the
          interpreter checks before evaluating the stored value) *)
  | Vstore of { arr : int; idx : operand; v : operand; aname : string }
  | Vcopy of { adst : int; asrc : int }  (** whole-array by-value copy *)
  | Vfill of int  (** zero-fill an array (local initialization) *)
  | Vfail of string
      (** raise [Interp.Runtime_error] with this message when the guard
          holds; may carry a placeholder destination slot *)

type inst = {
  i_dst : int;  (** destination slot, or [-1] for effect-only ops *)
  i_guard : guard;
  i_op : vop;
}

type param =
  | P_int of { p_name : string; p_width : int; p_slot : int }
  | P_arr of { p_name : string; p_width : int; p_size : int; p_arr : int }

type ret = Rslot of int | Rarr of int

type stats = {
  n_insts : int;
  n_slots : int;
  n_arrays : int;
  n_folded : int;  (** operations folded to constants during lowering *)
  n_cse : int;  (** operations deduplicated by structural CSE *)
}

type vnf = {
  v_entry : string;
  v_params : param list;
      (** entry parameters; their slots/arrays are written by the
          runtime binder before instruction 0, never by instructions *)
  v_slots : int array;  (** slot widths, indexed by slot id *)
  v_arrays : (int * int) array;  (** (element width, size) per array id *)
  v_insts : inst array;  (** executed in order, 0 to [n-1] *)
  v_ret : ret;
  v_stats : stats;
}

(** {1 Lowering and gates} *)

val default_budget : int

val lower : ?budget:int -> Ast.program -> vnf
(** Lower a program to its normal form, or raise [Rejected].  The
    result is deterministic (same program, same VNF) and has passed
    [validate].  Runs under the ["hwir.normalize"] trace span. *)

exception Ill_formed of string

val validate : vnf -> unit
(** Machine-check well-formedness, raising [Ill_formed] on the first
    violation: ids dense and in range, every slot defined (by a
    parameter or an earlier instruction) before use, guard slots 1-bit,
    per-op width discipline, arrays initialized before access, no
    frontend constructs, return reference defined. *)
