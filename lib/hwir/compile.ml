(* Compiled HWIR execution: the verified normal form lowered onto the
   shared slot-indexed closure kernel (Dfv_kernel).

   Every VNF instruction becomes one closure over the kernel's dense
   store — native-int slots for widths on the unboxed fast path, boxed
   [Bitvec.t] slots above it — and a run is a linear sweep over the
   closure array.  Guarded instructions test their 1-bit guard slot and
   skip; there is no branching structure left to interpret, no
   environment lookup, no allocation on the narrow path.

   The backend does not trust the frontend: [compile] re-runs
   [Norm.validate] before building closures, so a broken VNF (hand-
   built or a lowering bug) is rejected at the gate rather than
   miscompiled.

   Observable behaviour is bit-for-bit [Interp]: the argument binder
   reproduces the interpreter's checks and messages in order, division
   and bounds failures raise [Interp.Runtime_error] with identical
   strings, and evaluation order is the VNF's instruction order, which
   [Norm] constructed to match the interpreter's. *)

module Bitvec = Dfv_bitvec.Bitvec
module U = Bitvec.Unboxed
module Metrics = Dfv_obs.Metrics
module Trace = Dfv_obs.Trace
open Dfv_kernel.Kernel
open Ast
open Norm

let fail fmt = Printf.ksprintf (fun m -> raise (Interp.Runtime_error m)) fmt

(* Arrays follow the same fast/boxed split as scalar slots. *)
type arr_store = A_int of int array | A_bv of Bitvec.t array

type t = {
  vnf : vnf;
  store : Store.t;
  arrays : arr_store array;
  mutable insts : (unit -> unit) array;
}

let owidth c = function
  | Oimm bv -> Bitvec.width bv
  | Oslot s -> c.vnf.v_slots.(s)

let cexp_of c = function
  | Oslot s -> Store.reader c.store s
  | Oimm bv ->
    let w = Bitvec.width bv in
    if narrow w then begin
      let v = U.of_bitvec bv in
      CI (fun () -> v)
    end
    else CB (fun () -> bv)

(* Array index as a native int, clamped like the interpreter: an index
   wider than the fast path cannot name a valid element, so it reads as
   [max_int] and fails the bounds check with the interpreter's own
   number. *)
let indexer c o : unit -> int =
  match o with
  | Oimm bv ->
    let k =
      if Bitvec.width bv > U.max_width then max_int else Bitvec.to_int bv
    in
    fun () -> k
  | Oslot s ->
    let w = c.vnf.v_slots.(s) in
    if narrow w then as_int (Store.reader c.store s) else fun () -> max_int

(* Narrow operands fused to a slot index or a precomputed native int:
   the instruction closure reads the store directly instead of calling
   through a reader closure per operand — the dominant cost of a run is
   indirect calls, not arithmetic. *)
type iop = Kslot of int | Kimm of int

let iarg = function
  | Oimm bv -> Kimm (U.of_bitvec bv)
  | Oslot s -> Kslot s

let fuse2 ival f a b : unit -> int =
  match (iarg a, iarg b) with
  | Kslot x, Kslot y -> fun () -> f ival.(x) ival.(y)
  | Kslot x, Kimm y -> fun () -> f ival.(x) y
  | Kimm x, Kslot y -> fun () -> f x ival.(y)
  | Kimm x, Kimm y -> fun () -> f x y

let fuse1 ival f a : unit -> int =
  match iarg a with
  | Kslot x -> fun () -> f ival.(x)
  | Kimm x ->
    let v = f x in
    fun () -> v

let fuse2b ival cmp a b : unit -> int =
  match (iarg a, iarg b) with
  | Kslot x, Kslot y -> fun () -> if cmp ival.(x) ival.(y) then 1 else 0
  | Kslot x, Kimm y -> fun () -> if cmp ival.(x) y then 1 else 0
  | Kimm x, Kslot y -> fun () -> if cmp x ival.(y) then 1 else 0
  | Kimm x, Kimm y -> fun () -> if cmp x y then 1 else 0

let compile_binop c ~w op sa a b : cexp =
  ignore w;
  let wa = owidth c a in
  let ival = c.store.Store.ival in
  match op with
  | Land | Lor -> assert false (* frontend constructs; Norm.validate rejects *)
  | Eq | Ne | Lt | Le ->
    if narrow wa then begin
      let cmp =
        match op with
        | Eq -> fun x y -> x = y
        | Ne -> fun x y -> x <> y
        | Lt -> if sa then U.slt wa else U.ult
        | Le -> if sa then U.sle wa else U.ule
        | _ -> assert false
      in
      CI (fuse2b ival cmp a b)
    end
    else begin
      let fa = as_bv wa (cexp_of c a) in
      let fb = as_bv wa (cexp_of c b) in
      let cmp =
        match op with
        | Eq -> Bitvec.equal
        | Ne -> fun x y -> not (Bitvec.equal x y)
        | Lt -> if sa then Bitvec.slt else Bitvec.ult
        | Le -> if sa then Bitvec.sle else Bitvec.ule
        | _ -> assert false
      in
      CI (fun () -> if cmp (fa ()) (fb ()) then 1 else 0)
    end
  | Shl | Shr ->
    (* The amount clamps to [wa] — by value, or statically when its
       width alone puts it past the fast path. *)
    let wb = owidth c b in
    let amount =
      if wb > U.max_width then fun () -> wa
      else
        let fb = as_int (cexp_of c b) in
        fun () -> min (fb ()) wa
    in
    if narrow wa then begin
      let fa = as_int (cexp_of c a) in
      match op with
      | Shl -> CI (fun () -> U.shift_left wa (fa ()) (amount ()))
      | _ ->
        if sa then CI (fun () -> U.shift_right_arith wa (fa ()) (amount ()))
        else CI (fun () -> U.shift_right_logical (fa ()) (amount ()))
    end
    else begin
      let fa = as_bv wa (cexp_of c a) in
      match op with
      | Shl -> CB (fun () -> Bitvec.shift_left (fa ()) (amount ()))
      | _ ->
        if sa then CB (fun () -> Bitvec.shift_right_arith (fa ()) (amount ()))
        else CB (fun () -> Bitvec.shift_right_logical (fa ()) (amount ()))
    end
  | Div | Rem ->
    let msg =
      match op with Div -> "division by zero" | _ -> "remainder by zero"
    in
    if narrow wa then begin
      let f =
        match (op, sa) with
        | Div, true -> U.sdiv wa
        | Div, false -> U.udiv
        | _, true -> U.srem wa
        | _, false -> U.urem
      in
      (* Operand order preserved: x is read before y, y before the zero
         check, exactly as the interpreter evaluates. *)
      CI (fuse2 ival (fun x y -> if y = 0 then fail "%s" msg else f x y) a b)
    end
    else begin
      let fa = as_bv wa (cexp_of c a) in
      let fb = as_bv wa (cexp_of c b) in
      let f =
        match (op, sa) with
        | Div, true -> Bitvec.sdiv
        | Div, false -> Bitvec.udiv
        | _, true -> Bitvec.srem
        | _, false -> Bitvec.urem
      in
      CB
        (fun () ->
          let x = fa () in
          let y = fb () in
          if Bitvec.is_zero y then fail "%s" msg else f x y)
    end
  | Add | Sub | Mul | And | Or | Xor ->
    if narrow wa then begin
      let f =
        match op with
        | Add -> U.add wa
        | Sub -> U.sub wa
        | Mul -> U.mul wa
        | And -> U.logand
        | Or -> U.logor
        | Xor -> U.logxor
        | _ -> assert false
      in
      CI (fuse2 ival f a b)
    end
    else begin
      let fa = as_bv wa (cexp_of c a) in
      let fb = as_bv wa (cexp_of c b) in
      let f =
        match op with
        | Add -> Bitvec.add
        | Sub -> Bitvec.sub
        | Mul -> Bitvec.mul
        | And -> Bitvec.logand
        | Or -> Bitvec.logor
        | Xor -> Bitvec.logxor
        | _ -> assert false
      in
      CB (fun () -> f (fa ()) (fb ()))
    end

(* Pure value-producing ops; [w] is the destination slot's width. *)
let compile_op c ~w (op : vop) : cexp =
  let ival = c.store.Store.ival in
  match op with
  | Vmov a -> cexp_of c a
  | Vnot a ->
    let wa = owidth c a in
    if narrow wa then CI (fuse1 ival (U.lognot wa) a)
    else
      let f = as_bv wa (cexp_of c a) in
      CB (fun () -> Bitvec.lognot (f ()))
  | Vneg a ->
    let wa = owidth c a in
    if narrow wa then CI (fuse1 ival (U.neg wa) a)
    else
      let f = as_bv wa (cexp_of c a) in
      CB (fun () -> Bitvec.neg (f ()))
  | Vlnot a ->
    let wa = owidth c a in
    if narrow wa then CI (fuse1 ival (fun v -> if v = 0 then 1 else 0) a)
    else
      let f = as_bv wa (cexp_of c a) in
      CI (fun () -> if Bitvec.is_zero (f ()) then 1 else 0)
  | Vbin { op; sa; a; b } -> compile_binop c ~w op sa a b
  | Vcast { signed; a } -> (
    let ws = owidth c a in
    let src = cexp_of c a in
    match (narrow ws, narrow w) with
    | true, true ->
      if w <= ws then
        let m = U.mask w in
        CI (fuse1 ival (fun v -> v land m) a)
      else if signed then CI (fuse1 ival (U.sext ~from:ws ~width:w) a)
      else CI (as_int src)
      (* zero-extension of an unsigned native int is itself *)
    | true, false ->
      let f = as_int src in
      let resize = if signed then Bitvec.sresize else Bitvec.uresize in
      CB (fun () -> resize (U.to_bitvec ~width:ws (f ())) w)
    | false, true ->
      let f = as_bv ws src in
      let resize = if signed then Bitvec.sresize else Bitvec.uresize in
      CI (fun () -> U.of_bitvec (resize (f ()) w))
    | false, false ->
      let f = as_bv ws src in
      let resize = if signed then Bitvec.sresize else Bitvec.uresize in
      CB (fun () -> resize (f ()) w))
  | Vbitsel { a; hi; lo } ->
    let wa = owidth c a in
    if narrow wa then CI (fuse1 ival (U.select ~hi ~lo) a)
    else
      let f = as_bv wa (cexp_of c a) in
      if narrow w then CI (fun () -> U.of_bitvec (Bitvec.select (f ()) ~hi ~lo))
      else CB (fun () -> Bitvec.select (f ()) ~hi ~lo)
  | Vload { arr; idx; aname } -> (
    let ew, size = c.vnf.v_arrays.(arr) in
    let gi = indexer c idx in
    (* An immediate index is bounds-resolved at compile time: in range
       it reads unchecked, out of range it always fails. *)
    let static_k =
      match idx with
      | Oimm bv ->
        Some
          (if Bitvec.width bv > U.max_width then max_int else Bitvec.to_int bv)
      | Oslot _ -> None
    in
    match (c.arrays.(arr), static_k) with
    | A_int a, Some k when k < size -> CI (fun () -> a.(k))
    | A_bv a, Some k when k < size ->
      ignore ew;
      CB (fun () -> a.(k))
    | _, Some k ->
      CI (fun () -> fail "index %d out of bounds for %s (size %d)" k aname size)
    | A_int a, None ->
      CI
        (fun () ->
          let k = gi () in
          if k >= size then
            fail "index %d out of bounds for %s (size %d)" k aname size;
          a.(k))
    | A_bv a, None ->
      CB
        (fun () ->
          let k = gi () in
          if k >= size then
            fail "index %d out of bounds for %s (size %d)" k aname size;
          a.(k)))
  | Vcheck _ | Vstore _ | Vcopy _ | Vfill _ | Vfail _ ->
    assert false (* effect-only; handled in [compile_inst] *)

let compile_inst c (inst : inst) : unit -> unit =
  match inst.i_op with
  | (Vmov _ | Vnot _ | Vneg _ | Vlnot _ | Vbin _ | Vcast _ | Vbitsel _
    | Vload _) as op -> (
    let w = c.vnf.v_slots.(inst.i_dst) in
    let ce = compile_op c ~w op in
    match inst.i_guard with
    | Galways -> Store.assigner c.store inst.i_dst ce
    | Gslot s -> (
      let ival = c.store.Store.ival in
      match ce with
      | CI f when narrow w ->
        (* Fused guarded write: one closure instead of a guard wrapper
           around an assigner around the op (what [Store.assigner] does
           on the narrow path is exactly this store). *)
        let dst = inst.i_dst in
        fun () -> if ival.(s) <> 0 then ival.(dst) <- f ()
      | _ ->
        let a = Store.assigner c.store inst.i_dst ce in
        fun () -> if ival.(s) <> 0 then a ()))
  | Vcheck _ | Vstore _ | Vcopy _ | Vfill _ | Vfail _ ->
  let body =
    match inst.i_op with
    | Vcheck { arr; idx; aname } ->
      let size = snd c.vnf.v_arrays.(arr) in
      let gi = indexer c idx in
      fun () ->
        let k = gi () in
        if k >= size then
          fail "store index %d out of bounds for %s (size %d)" k aname size
    | Vstore { arr; idx; v; aname } -> (
      let ew, size = c.vnf.v_arrays.(arr) in
      let gi = indexer c idx in
      match c.arrays.(arr) with
      | A_int a ->
        let fv = as_int (cexp_of c v) in
        fun () ->
          let k = gi () in
          if k >= size then
            fail "store index %d out of bounds for %s (size %d)" k aname size;
          a.(k) <- fv ()
      | A_bv a ->
        let fv = as_bv ew (cexp_of c v) in
        fun () ->
          let k = gi () in
          if k >= size then
            fail "store index %d out of bounds for %s (size %d)" k aname size;
          a.(k) <- fv ())
    | Vcopy { adst; asrc } -> (
      match (c.arrays.(adst), c.arrays.(asrc)) with
      | A_int d, A_int s -> fun () -> Array.blit s 0 d 0 (Array.length d)
      | A_bv d, A_bv s -> fun () -> Array.blit s 0 d 0 (Array.length d)
      | _ -> assert false (* same shape per Norm.validate *))
    | Vfill arr -> (
      match c.arrays.(arr) with
      | A_int d -> fun () -> Array.fill d 0 (Array.length d) 0
      | A_bv d ->
        let z = Bitvec.zero (fst c.vnf.v_arrays.(arr)) in
        fun () -> Array.fill d 0 (Array.length d) z)
    | Vfail msg -> fun () -> raise (Interp.Runtime_error msg)
    | Vmov _ | Vnot _ | Vneg _ | Vlnot _ | Vbin _ | Vcast _ | Vbitsel _
    | Vload _ ->
      assert false (* value-producing; handled above *)
  in
  (match inst.i_guard with
  | Galways -> body
  | Gslot s ->
    let ival = c.store.Store.ival in
    fun () -> if ival.(s) <> 0 then body ())

(* --- metrics -------------------------------------------------------------- *)

let m_insts = Metrics.counter "hwir.compile.insts"
let m_slots = Metrics.counter "hwir.compile.slots"
let m_arrays = Metrics.counter "hwir.compile.arrays"
let m_folded = Metrics.counter "hwir.compile.folded"
let m_cse = Metrics.counter "hwir.compile.cse_hits"
let m_runs = Metrics.counter "hwir.compile.runs"
let span_compile = "hwir.compile"

(* --- copy-out elision ------------------------------------------------------ *)

(* Lowering materializes every expression in a fresh temp and then
   moves it into the destination slot, so the instruction stream is
   full of [t := op; d := t] pairs.  When [t] has no reader other than
   that adjacent move (and is not the return slot or a parameter), the
   defining instruction can be retargeted to [d] and the move dropped.
   The rewrite is local: the two instructions are adjacent and share
   the same guard, so no observable state changes between them. *)

let reads_slot t ins =
  let rd = function Oslot s -> s = t | Oimm _ -> false in
  (match ins.i_guard with Gslot g -> g = t | Galways -> false)
  ||
  match ins.i_op with
  | Vmov o | Vnot o | Vneg o | Vlnot o
  | Vcast { a = o; _ }
  | Vbitsel { a = o; _ } ->
    rd o
  | Vbin { a; b; _ } -> rd a || rd b
  | Vload { idx; _ } | Vcheck { idx; _ } -> rd idx
  | Vstore { idx; v; _ } -> rd idx || rd v
  | Vcopy _ | Vfill _ | Vfail _ -> false

let value_op = function
  | Vmov _ | Vnot _ | Vneg _ | Vlnot _ | Vbin _ | Vcast _ | Vbitsel _
  | Vload _ ->
    true
  | Vcheck _ | Vstore _ | Vcopy _ | Vfill _ | Vfail _ -> false

let elide_copyouts (vnf : vnf) : vnf =
  let insts = vnf.v_insts in
  let n = Array.length insts in
  let param_slot t =
    List.exists
      (function P_int { p_slot; _ } -> p_slot = t | P_arr _ -> false)
      vnf.v_params
  in
  let ret_slot t = match vnf.v_ret with Rslot r -> r = t | Rarr _ -> false in
  (* [t] must not be read by any instruction after position [i] (the
     move itself), nor by the return reference, nor be rebindable as a
     parameter slot. Reads at or before the defining instruction see
     older values of [t] and are unaffected. *)
  let dead_after i t =
    (not (ret_slot t))
    && (not (param_slot t))
    &&
    let ok = ref true in
    for j = i + 1 to n - 1 do
      if reads_slot t insts.(j) then ok := false
    done;
    !ok
  in
  let out = ref [] in
  Array.iteri
    (fun i ins ->
      match (ins.i_op, !out) with
      | Vmov (Oslot t), prev :: rest
        when ins.i_dst >= 0 && prev.i_dst = t
             && t <> ins.i_dst
             && prev.i_guard = ins.i_guard
             && (match ins.i_guard with Gslot g -> g <> t | Galways -> true)
             && vnf.v_slots.(t) = vnf.v_slots.(ins.i_dst)
             && value_op prev.i_op
             && dead_after i t ->
        out := { prev with i_dst = ins.i_dst } :: rest
      | _ -> out := ins :: !out)
    insts;
  let v_insts = Array.of_list (List.rev !out) in
  {
    vnf with
    v_insts;
    v_stats = { vnf.v_stats with n_insts = Array.length v_insts };
  }

(* --- compilation ---------------------------------------------------------- *)

let compile (vnf : vnf) : t =
  Trace.with_span span_compile (fun () ->
      Norm.validate vnf (* the backend does not trust the frontend *);
      let vnf = elide_copyouts vnf in
      Norm.validate vnf (* and does not trust its own peephole either *);
      let store = Store.create vnf.v_slots in
      let arrays =
        Array.map
          (fun (ew, size) ->
            if narrow ew then A_int (Array.make size 0)
            else A_bv (Array.make size (Bitvec.zero ew)))
          vnf.v_arrays
      in
      let c = { vnf; store; arrays; insts = [||] } in
      c.insts <- Array.map (compile_inst c) vnf.v_insts;
      Metrics.add m_insts vnf.v_stats.n_insts;
      Metrics.add m_slots vnf.v_stats.n_slots;
      Metrics.add m_arrays vnf.v_stats.n_arrays;
      Metrics.add m_folded vnf.v_stats.n_folded;
      Metrics.add m_cse vnf.v_stats.n_cse;
      c)

let of_program ?budget p = compile (Norm.lower ?budget p)
let stats c = c.vnf.v_stats
let vnf c = c.vnf

(* --- running -------------------------------------------------------------- *)

(* Reproduce the interpreter's entry binding exactly: argument count
   first, then per parameter in declaration order the width / size /
   element-width / shape checks, with identical messages. *)
let bind_args c (args : Interp.value list) =
  let fname = c.vnf.v_entry in
  let nparams = List.length c.vnf.v_params in
  let nargs = List.length args in
  if nargs <> nparams then
    fail "%s: expected %d arguments, got %d" fname nparams nargs;
  List.iter2
    (fun p (v : Interp.value) ->
      match (p, v) with
      | P_int { p_name; p_width; p_slot }, Vint bv ->
        if Bitvec.width bv <> p_width then
          fail "%s: argument %s has width %d, expected %d" fname p_name
            (Bitvec.width bv) p_width;
        Store.write c.store p_slot bv
      | P_arr { p_name; p_width; p_size; p_arr }, Varr arr -> (
        if Array.length arr <> p_size then
          fail "%s: argument %s has %d elements, expected %d" fname p_name
            (Array.length arr) p_size;
        Array.iter
          (fun w ->
            if Bitvec.width w <> p_width then
              fail "%s: argument %s has a %d-bit element, expected %d" fname
                p_name (Bitvec.width w) p_width)
          arr;
        match c.arrays.(p_arr) with
        | A_int d -> Array.iteri (fun i bv -> d.(i) <- U.of_bitvec bv) arr
        | A_bv d -> Array.blit arr 0 d 0 p_size)
      | P_int { p_name; _ }, Varr _ | P_arr { p_name; _ }, Vint _ ->
        fail "%s: argument %s has the wrong shape" fname p_name)
    c.vnf.v_params args

let run c (args : Interp.value list) : Interp.value =
  Metrics.incr m_runs;
  bind_args c args;
  let insts = c.insts in
  for i = 0 to Array.length insts - 1 do
    (Array.unsafe_get insts i) ()
  done;
  match c.vnf.v_ret with
  | Rslot s -> Interp.Vint (Store.read c.store s)
  | Rarr a -> (
    let ew, size = c.vnf.v_arrays.(a) in
    match c.arrays.(a) with
    | A_int d -> Interp.Varr (Array.init size (fun i -> U.to_bitvec ~width:ew d.(i)))
    | A_bv d -> Interp.Varr (Array.copy d))
