(** Engine selection for executing system-level models, mirroring
    [Rtl.Sim]'s selector: [`Compiled] lowers through the verified
    normal form onto the shared slot-indexed kernel ({!Compile});
    [`Interp] keeps the tree-walking reference ({!Interp}).  Both
    engines agree bit-for-bit on values and on every
    {!Interp.Runtime_error} message. *)

type engine = [ `Compiled | `Interp ]

type t

val create : ?engine:engine -> Ast.program -> t
(** Prepare a model for repeated execution.  [engine] defaults to
    [`Compiled], which raises {!Norm.Rejected} (with a source-located
    diagnostic) on models outside the verified normal form. *)

val auto : Ast.program -> t
(** [`Compiled] when the model is in the normal form, falling back to
    [`Interp] when {!Norm.lower} rejects it.  Use when the caller must
    accept unconditioned models (e.g. guideline-violation demos). *)

val engine : t -> engine
(** The engine actually in use. *)

val run : t -> Interp.value list -> Interp.value
(** Evaluate the entry function on the chosen engine; same contract as
    {!Interp.run}. *)
