(* Lowering to the verified normal form (VNF).

   The frontend/backend firewall of the compiled HWIR engine.  An
   elaborated HWIR program (functions, structured control flow, calls)
   is lowered to a flat, fully explicit normal form:

   - one linear instruction sequence with explicit evaluation order —
     instruction [i] runs before instruction [i+1], full stop;
   - deterministic dense ids: every scalar value lives in a numbered
     slot, every array in a numbered array; ids are assigned in
     lowering order, so the same program always lowers to the same VNF;
   - control flow flattened into guarded assignments: an instruction
     carries a guard slot and is skipped when the guard is 0, so an
     [If] becomes two guard computations plus guarded writes, a [Cond]
     evaluates only the taken arm, short-circuit [Land]/[Lor] evaluate
     the right operand under the left's guard, and bounded loops unroll;
   - calls inlined with fresh slots per instance (recursion is already
     rejected by the typechecker), parameters bound by value;
   - a per-instance return flag threads early [Return]s: code after a
     conditional return runs under [guard && !returned], and a function
     body that can fall off the end gets an epilogue that raises the
     interpreter's "finished without returning" error.

   The lowering constant-folds (loop indices, literal arithmetic,
   statically taken branches) and value-numbers repeated pure
   computations (structural CSE over (op, operand versions, guard)).
   Anything outside the normal form — data-dependent loops, dynamic
   allocation, aliasing, external calls — is rejected with a
   source-located diagnostic naming the construct and the VNF rule,
   echoing the conditioning guidance of [Guideline].

   [validate] is the machine-checked well-formedness gate: dense ids in
   range, every slot defined before use, guards 1-bit, widths
   consistent per op, arrays initialized before access, no frontend
   constructs.  [lower] self-checks its output; [Compile] re-validates
   its input, so the backend never trusts the frontend.

   The semantic contract, held by test/test_hwir_engines.ml: running
   the compiled VNF is observably identical to [Interp] — values,
   evaluation order, and every [Interp.Runtime_error] message. *)

module Bitvec = Dfv_bitvec.Bitvec
open Ast

(* --- diagnostics --------------------------------------------------------- *)

type loc = { l_func : string; l_path : string }

type diagnostic = {
  d_construct : string;
  d_rule : string;
  d_reason : string;
  d_loc : loc;
  d_hint : string;
}

exception Rejected of diagnostic

let pp_diagnostic fmt d =
  Format.fprintf fmt "%s: %s is outside the verified normal form [%s]: %s@ (hint: %s)"
    d.d_loc.l_path d.d_construct d.d_rule d.d_reason d.d_hint

let diagnostic_to_string d = Format.asprintf "%a" pp_diagnostic d

let reject ~construct ~rule ~reason ~loc ~hint =
  raise
    (Rejected
       { d_construct = construct; d_rule = rule; d_reason = reason; d_loc = loc; d_hint = hint })

(* --- the normal form ----------------------------------------------------- *)

type operand = Oslot of int | Oimm of Bitvec.t

type guard = Galways | Gslot of int

type vop =
  | Vmov of operand
  | Vnot of operand
  | Vneg of operand
  | Vlnot of operand
  | Vbin of { op : binop; sa : bool; a : operand; b : operand }
  | Vcast of { signed : bool; a : operand }
  | Vbitsel of { a : operand; hi : int; lo : int }
  | Vload of { arr : int; idx : operand; aname : string }
  | Vcheck of { arr : int; idx : operand; aname : string }
  | Vstore of { arr : int; idx : operand; v : operand; aname : string }
  | Vcopy of { adst : int; asrc : int }
  | Vfill of int
  | Vfail of string

type inst = { i_dst : int; i_guard : guard; i_op : vop }

type param =
  | P_int of { p_name : string; p_width : int; p_slot : int }
  | P_arr of { p_name : string; p_width : int; p_size : int; p_arr : int }

type ret = Rslot of int | Rarr of int

type stats = {
  n_insts : int;
  n_slots : int;
  n_arrays : int;
  n_folded : int;
  n_cse : int;
}

type vnf = {
  v_entry : string;
  v_params : param list;
  v_slots : int array; (* slot widths *)
  v_arrays : (int * int) array; (* element width, size *)
  v_insts : inst array;
  v_ret : ret;
  v_stats : stats;
}

(* --- lowering state ------------------------------------------------------ *)

(* CSE entries are keyed by a canonical string of (op, operand slot
   versions / immediate values); an entry is reusable when its defining
   guard was unconditional, or is the same guard slot at the same
   version as the requesting site. *)
type centry = { ce_guard : guard; ce_gver : int; ce_dst : int }

type st = {
  prog : program;
  mutable insts : inst list; (* reversed *)
  mutable n_insts : int;
  mutable slot_w : int list; (* reversed *)
  mutable n_slots : int;
  mutable arr_i : (int * int) list; (* reversed *)
  mutable n_arrays : int;
  vers : (int, int) Hashtbl.t; (* slot -> version (writes seen) *)
  avers : (int, int) Hashtbl.t; (* array -> version *)
  consts : (int, Bitvec.t) Hashtbl.t; (* slot -> known constant *)
  cse : (string, centry) Hashtbl.t;
  mutable n_folded : int;
  mutable n_cse : int;
  mutable cur : loc;
  budget : int;
}

let ver st s = Option.value ~default:0 (Hashtbl.find_opt st.vers s)
let aver st a = Option.value ~default:0 (Hashtbl.find_opt st.avers a)
let bump tbl k = Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))

let new_slot st w =
  let s = st.n_slots in
  st.n_slots <- s + 1;
  st.slot_w <- w :: st.slot_w;
  s

let new_arr st ~elem_w ~size =
  let a = st.n_arrays in
  st.n_arrays <- a + 1;
  st.arr_i <- (elem_w, size) :: st.arr_i;
  a

let emit st (g : guard) dst op =
  if st.n_insts >= st.budget then
    reject ~construct:"model size" ~rule:"VNF-S1"
      ~reason:
        (Printf.sprintf "lowered instruction count exceeds the budget (%d)"
           st.budget)
      ~loc:st.cur
      ~hint:"reduce static loop bounds or split the model into stages";
  st.insts <- { i_dst = dst; i_guard = g; i_op = op } :: st.insts;
  st.n_insts <- st.n_insts + 1;
  if dst >= 0 then begin
    bump st.vers dst;
    match (op, g) with
    | Vmov (Oimm bv), Galways -> Hashtbl.replace st.consts dst bv
    | _ -> Hashtbl.remove st.consts dst
  end;
  match op with
  | Vstore { arr; _ } -> bump st.avers arr
  | Vcopy { adst; _ } -> bump st.avers adst
  | Vfill a -> bump st.avers a
  | _ -> ()

(* Read a slot, folding through the constant map. *)
let rd st s =
  match Hashtbl.find_opt st.consts s with
  | Some bv -> Oimm bv
  | None -> Oslot s

(* --- compile-time evaluation (mirrors Interp exactly) -------------------- *)

let clamp_shift amount width =
  if Bitvec.width amount > 62 then width
  else min (Bitvec.to_int amount) width

let truthy = Bitvec.reduce_or

(* Evaluate an all-immediate operation.  [None] defers to run time: a
   constant division/remainder by zero must still raise the
   interpreter's error when (and only when) its guard holds. *)
let fold_op ~w op =
  match op with
  | Vmov (Oimm v) -> Some v
  | Vnot (Oimm v) -> Some (Bitvec.lognot v)
  | Vneg (Oimm v) -> Some (Bitvec.neg v)
  | Vlnot (Oimm v) -> Some (Bitvec.of_bool (not (truthy v)))
  | Vbin { op; sa; a = Oimm va; b = Oimm vb } -> (
    match op with
    | Add -> Some (Bitvec.add va vb)
    | Sub -> Some (Bitvec.sub va vb)
    | Mul -> Some (Bitvec.mul va vb)
    | Div ->
      if Bitvec.is_zero vb then None
      else Some (if sa then Bitvec.sdiv va vb else Bitvec.udiv va vb)
    | Rem ->
      if Bitvec.is_zero vb then None
      else Some (if sa then Bitvec.srem va vb else Bitvec.urem va vb)
    | And -> Some (Bitvec.logand va vb)
    | Or -> Some (Bitvec.logor va vb)
    | Xor -> Some (Bitvec.logxor va vb)
    | Shl -> Some (Bitvec.shift_left va (clamp_shift vb (Bitvec.width va)))
    | Shr ->
      let n = clamp_shift vb (Bitvec.width va) in
      Some
        (if sa then Bitvec.shift_right_arith va n
         else Bitvec.shift_right_logical va n)
    | Eq -> Some (Bitvec.of_bool (Bitvec.equal va vb))
    | Ne -> Some (Bitvec.of_bool (not (Bitvec.equal va vb)))
    | Lt ->
      Some (Bitvec.of_bool (if sa then Bitvec.slt va vb else Bitvec.ult va vb))
    | Le ->
      Some (Bitvec.of_bool (if sa then Bitvec.sle va vb else Bitvec.ule va vb))
    | Land | Lor -> assert false (* lowered structurally, never emitted *))
  | Vcast { signed; a = Oimm v } ->
    Some (if signed then Bitvec.sresize v w else Bitvec.uresize v w)
  | Vbitsel { a = Oimm v; hi; lo } -> Some (Bitvec.select v ~hi ~lo)
  | _ -> None

(* --- structural CSE ------------------------------------------------------ *)

let okey st = function
  | Oimm v -> "#" ^ Bitvec.to_string v
  | Oslot s -> Printf.sprintf "s%d.%d" s (ver st s)

let binop_tag = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Rem -> "rem"
  | And -> "and" | Or -> "or" | Xor -> "xor" | Shl -> "shl" | Shr -> "shr"
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Land -> "land"
  | Lor -> "lor"
[@@ocamlformat "disable"]

(* Canonical key for a pure computation, [None] when the op is not
   value-numberable.  Loads fold the array's version in, so any store
   or copy invalidates them. *)
let ckey st ~w op =
  match op with
  | Vnot a -> Some (Printf.sprintf "not:%d:%s" w (okey st a))
  | Vneg a -> Some (Printf.sprintf "neg:%d:%s" w (okey st a))
  | Vlnot a -> Some (Printf.sprintf "lnot:%s" (okey st a))
  | Vbin { op; sa; a; b } ->
    Some
      (Printf.sprintf "bin:%s:%b:%d:%s:%s" (binop_tag op) sa w (okey st a)
         (okey st b))
  | Vcast { signed; a } ->
    Some (Printf.sprintf "cast:%b:%d:%s" signed w (okey st a))
  | Vbitsel { a; hi; lo } ->
    Some (Printf.sprintf "sel:%d:%d:%s" hi lo (okey st a))
  | Vload { arr; idx; _ } ->
    Some (Printf.sprintf "load:%d.%d:%s" arr (aver st arr) (okey st idx))
  | Vmov _ | Vcheck _ | Vstore _ | Vcopy _ | Vfill _ | Vfail _ -> None

let guard_usable st (e : centry) (g : guard) =
  match (e.ce_guard, g) with
  | Galways, _ -> true (* computed unconditionally: valid everywhere after *)
  | Gslot s, Gslot s' -> s = s' && ver st s = e.ce_gver
  | Gslot _, Galways -> false

(* Emit a pure computation: constant-fold when every operand is
   immediate, value-number against earlier identical computations,
   otherwise allocate a fresh single-write temp. *)
let emit_op st (g : guard) ~w op : operand =
  match fold_op ~w op with
  | Some bv ->
    st.n_folded <- st.n_folded + 1;
    Oimm bv
  | None -> (
    let key = ckey st ~w op in
    match key with
    | Some k when Hashtbl.mem st.cse k
                  && guard_usable st (Hashtbl.find st.cse k) g ->
      st.n_cse <- st.n_cse + 1;
      Oslot (Hashtbl.find st.cse k).ce_dst
    | _ ->
      let dst = new_slot st w in
      emit st g dst op;
      (match key with
      | Some k ->
        let gver = match g with Galways -> 0 | Gslot s -> ver st s in
        Hashtbl.replace st.cse k { ce_guard = g; ce_gver = gver; ce_dst = dst }
      | None -> ());
      Oslot dst)

(* Guard conjunction: [conj st g c] is the guard for code that runs when
   both [g] and the 1-bit operand [c] hold.  [None] means statically
   dead.  Conjunction temps are computed unconditionally — if [g] is
   false the stale operand is masked by [g] itself being 0. *)
let conj st (g : guard) (c : operand) : guard option =
  match c with
  | Oimm v -> if Bitvec.is_zero v then None else Some g
  | Oslot s -> (
    match g with
    | Galways -> Some (Gslot s)
    | Gslot gs -> (
      match
        emit_op st Galways ~w:1
          (Vbin { op = And; sa = false; a = Oslot gs; b = Oslot s })
      with
      | Oslot t -> Some (Gslot t)
      | Oimm v -> if Bitvec.is_zero v then None else Some g))

let negate st (c : operand) : operand = emit_op st Galways ~w:1 (Vlnot c)

(* --- per-instance lowering environment ----------------------------------- *)

type binding =
  | Bscalar of { slot : int; bw : int; bsigned : bool }
  | Barr of { arr : int; ew : int; esigned : bool; size : int }

type rtarget = Tslot of { slot : int; rw : int; rsigned : bool } | Tarr of int

type ienv = {
  scope : (string, binding) Hashtbl.t;
  fn : func;
  rf : int; (* 1-bit "has returned" flag slot *)
  ret_t : rtarget;
}

type aval =
  | Ascalar of operand * int * bool (* operand, width, signedness *)
  | Aarr of int * int * bool * int (* array id, elem width, signed, size *)

(* Result of lowering a region: [l_ret] — a Return was lowered in it;
   [l_term] — it returns whenever it executes (dominating return), so
   everything after it under the same guard is dead. *)
type lres = { l_ret : bool; l_term : bool }

let binding env name =
  (* Total: the program typechecked (VNF-T0). *)
  match Hashtbl.find_opt env.scope name with
  | Some b -> b
  | None -> invalid_arg ("Norm: unbound name " ^ name)

let loc_at env path = { l_func = env.fn.fname; l_path = path }

(* --- expression lowering -------------------------------------------------- *)

let rec lower_expr st env (g : guard) (e : expr) : operand * int * bool =
  match e with
  | Int (bv, signed) -> (Oimm bv, Bitvec.width bv, signed)
  | Bool b -> (Oimm (Bitvec.of_bool b), 1, false)
  | Var n -> (
    match binding env n with
    | Bscalar { slot; bw; bsigned } -> (rd st slot, bw, bsigned)
    | Barr _ -> invalid_arg "Norm: array used as scalar")
  | Index (a, i) -> (
    match binding env a with
    | Barr { arr; ew; esigned; size } -> (
      let iv, _, _ = lower_expr st env g i in
      match iv with
      | Oimm v ->
        let k = if Bitvec.width v > 62 then max_int else Bitvec.to_int v in
        if k >= size then begin
          (* Still fails at run time, under this guard, with the
             interpreter's message; the dst slot is a placeholder that
             is never actually written. *)
          let dst = new_slot st ew in
          emit st g dst
            (Vfail
               (Printf.sprintf "index %d out of bounds for %s (size %d)" k a
                  size));
          (Oslot dst, ew, esigned)
        end
        else (emit_op st g ~w:ew (Vload { arr; idx = iv; aname = a }), ew, esigned)
      | Oslot _ ->
        (emit_op st g ~w:ew (Vload { arr; idx = iv; aname = a }), ew, esigned))
    | Bscalar _ -> invalid_arg "Norm: scalar indexed as array")
  | Unop (Not, a) ->
    let va, w, sg = lower_expr st env g a in
    (emit_op st g ~w (Vnot va), w, sg)
  | Unop (Neg, a) ->
    let va, w, sg = lower_expr st env g a in
    (emit_op st g ~w (Vneg va), w, sg)
  | Unop (Lnot, a) ->
    let va, _, _ = lower_expr st env g a in
    (emit_op st g ~w:1 (Vlnot va), 1, false)
  | Binop (Land, a, b) -> (
    (* Short-circuit: the right operand only evaluates (and only can
       fail) when the left is true — it is lowered under [g && a]. *)
    let va, _, _ = lower_expr st env g a in
    match va with
    | Oimm v ->
      if truthy v then
        let vb, _, _ = lower_expr st env g b in
        (vb, 1, false)
      else (Oimm (Bitvec.of_bool false), 1, false)
    | Oslot _ -> (
      let gb = conj st g va in
      let vb, _, _ =
        match gb with
        | Some gb -> lower_expr st env gb b
        | None -> assert false (* conj of a slot is never dead *)
      in
      match vb with
      | Oimm v when not (truthy v) -> (Oimm (Bitvec.of_bool false), 1, false)
      | Oimm _ -> (va, 1, false)
      | Oslot _ ->
        ( emit_op st g ~w:1 (Vbin { op = And; sa = false; a = va; b = vb }),
          1,
          false )))
  | Binop (Lor, a, b) -> (
    let va, _, _ = lower_expr st env g a in
    match va with
    | Oimm v ->
      if truthy v then (Oimm (Bitvec.of_bool true), 1, false)
      else
        let vb, _, _ = lower_expr st env g b in
        (vb, 1, false)
    | Oslot _ -> (
      let nva = negate st va in
      let gb = conj st g nva in
      let vb, _, _ =
        match gb with
        | Some gb -> lower_expr st env gb b
        | None -> assert false
      in
      match vb with
      | Oimm v when truthy v -> (Oimm (Bitvec.of_bool true), 1, false)
      | Oimm _ -> (va, 1, false)
      | Oslot _ ->
        ( emit_op st g ~w:1 (Vbin { op = Or; sa = false; a = va; b = vb }),
          1,
          false )))
  | Binop (op, a, b) ->
    let va, wa, sa = lower_expr st env g a in
    let vb, _, _ = lower_expr st env g b in
    let w, sg =
      match op with
      | Eq | Ne | Lt | Le -> (1, false)
      | _ -> (wa, sa)
    in
    (emit_op st g ~w (Vbin { op; sa; a = va; b = vb }), w, sg)
  | Cond (c, a, b) -> (
    let cv, _, _ = lower_expr st env g c in
    match cv with
    | Oimm v -> if truthy v then lower_expr st env g a else lower_expr st env g b
    | Oslot _ -> (
      (* Both guards derive from the condition's value *before* either
         arm runs; only the taken arm's instructions execute. *)
      let nc = negate st cv in
      let gt = conj st g cv in
      let ge = conj st g nc in
      match (gt, ge) with
      | Some gt, Some ge ->
        let va, w, sg = lower_expr st env gt a in
        let vb, _, _ = lower_expr st env ge b in
        let r = new_slot st w in
        emit st gt r (Vmov va);
        emit st ge r (Vmov vb);
        (Oslot r, w, sg)
      | _ -> assert false))
  | Cast (Tint { width; signed }, a) ->
    let va, wa, sa = lower_expr st env g a in
    if width = wa then (va, width, signed)
    else (emit_op st g ~w:width (Vcast { signed = sa; a = va }), width, signed)
  | Cast (Tarray _, _) -> invalid_arg "Norm: cast to array type"
  | Bitsel (a, hi, lo) ->
    let va, _, _ = lower_expr st env g a in
    (emit_op st g ~w:(hi - lo + 1) (Vbitsel { a = va; hi; lo }), hi - lo + 1, false)
  | Call (f, args) -> (
    match lower_call st env g f args with
    | Ascalar (v, w, sg) -> (v, w, sg)
    | Aarr _ -> invalid_arg "Norm: array-returning call in scalar context")

(* Argument position: whole arrays may be passed (by value). *)
and lower_arg st env (g : guard) (e : expr) : aval =
  match e with
  | Var n -> (
    match binding env n with
    | Barr { arr; ew; esigned; size } -> Aarr (arr, ew, esigned, size)
    | Bscalar _ ->
      let v, w, sg = lower_expr st env g e in
      Ascalar (v, w, sg))
  | Call (f, args) -> lower_call st env g f args
  | _ ->
    let v, w, sg = lower_expr st env g e in
    Ascalar (v, w, sg)

(* Inline a call: fresh slots for this instance, arguments evaluated
   left-to-right under the caller's guard, parameters and locals bound
   by unconditional moves (stale values are masked by the guards of
   every instruction that reads them; unconditional binds let constant
   arguments fold inside the callee). *)
and lower_call st env (g : guard) f args : aval =
  let fn =
    match find_func st.prog f with
    | Some fn -> fn
    | None -> invalid_arg ("Norm: call to unknown function " ^ f)
  in
  let avals =
    List.fold_left (fun acc a -> lower_arg st env g a :: acc) [] args
    |> List.rev
  in
  let scope = Hashtbl.create 16 in
  List.iter2
    (fun (name, ty) av ->
      match (ty, av) with
      | Tint { width; signed }, Ascalar (v, _, _) ->
        let p = new_slot st width in
        emit st Galways p (Vmov v);
        Hashtbl.replace scope name
          (Bscalar { slot = p; bw = width; bsigned = signed })
      | Tarray (Tint { width; signed }, size), Aarr (src, _, _, _) ->
        let ap = new_arr st ~elem_w:width ~size in
        emit st Galways (-1) (Vcopy { adst = ap; asrc = src });
        Hashtbl.replace scope name
          (Barr { arr = ap; ew = width; esigned = signed; size })
      | _ -> invalid_arg "Norm: argument shape mismatch")
    fn.params avals;
  lower_body st ~scope ~fn g

(* Shared between inlined calls and the entry function: locals, return
   flag, return target, body, fall-off-the-end epilogue. *)
and lower_body st ~scope ~(fn : func) g : aval =
  List.iter
    (fun (name, ty) ->
      match ty with
      | Tint { width; signed } ->
        let l = new_slot st width in
        emit st Galways l (Vmov (Oimm (Bitvec.zero width)));
        Hashtbl.replace scope name
          (Bscalar { slot = l; bw = width; bsigned = signed })
      | Tarray (Tint { width; signed }, size) ->
        let la = new_arr st ~elem_w:width ~size in
        emit st Galways (-1) (Vfill la);
        Hashtbl.replace scope name
          (Barr { arr = la; ew = width; esigned = signed; size })
      | Tarray (Tarray _, _) -> invalid_arg "Norm: nested array local")
    fn.locals;
  let rf = new_slot st 1 in
  emit st Galways rf (Vmov (Oimm (Bitvec.zero 1)));
  let ret_t =
    match fn.ret with
    | Tint { width; signed } ->
      let rs = new_slot st width in
      emit st Galways rs (Vmov (Oimm (Bitvec.zero width)));
      Tslot { slot = rs; rw = width; rsigned = signed }
    | Tarray (Tint { width; _ }, size) ->
      let ra = new_arr st ~elem_w:width ~size in
      emit st Galways (-1) (Vfill ra);
      Tarr ra
    | Tarray (Tarray _, _) -> invalid_arg "Norm: nested array return"
  in
  let env = { scope; fn; rf; ret_t } in
  let r = lower_block st env g fn.body "body" in
  if not r.l_term then begin
    (* The body can run to completion without returning (e.g. a
       zero-trip loop around the only Return): raise exactly where and
       when the interpreter would. *)
    let nrf = negate st (rd st rf) in
    match conj st g nrf with
    | None -> ()
    | Some gf ->
      emit st gf (-1)
        (Vfail
           (Printf.sprintf "%s: function finished without returning" fn.fname))
  end;
  match ret_t with
  | Tslot { slot; rw; rsigned } -> Ascalar (rd st slot, rw, rsigned)
  | Tarr ra -> (
    match fn.ret with
    | Tarray (Tint { width; signed }, size) -> Aarr (ra, width, signed, size)
    | _ -> assert false)

(* --- statement lowering --------------------------------------------------- *)

and lower_block st env (g : guard) stmts path : lres =
  let rec go g i ret = function
    | [] -> { l_ret = ret; l_term = false }
    | stmt :: rest -> (
      st.cur <- loc_at env (Printf.sprintf "%s[%d]" path i);
      let r = lower_stmt st env g stmt (Printf.sprintf "%s[%d]" path i) in
      if r.l_term then { l_ret = ret || r.l_ret; l_term = true }
      else if not r.l_ret then go g (i + 1) ret rest
      else
        (* A conditional return happened somewhere inside: the rest of
           this block runs only while the flag is still clear. *)
        let nrf = negate st (rd st env.rf) in
        match conj st g nrf with
        | None -> { l_ret = true; l_term = true }
        | Some g' -> go g' (i + 1) true rest)
  in
  go g 0 false stmts

and lower_stmt st env (g : guard) (stmt : stmt) path : lres =
  let no_ret = { l_ret = false; l_term = false } in
  match stmt with
  | Assign (Lvar n, e) -> (
    match binding env n with
    | Bscalar { slot; _ } ->
      let v, _, _ = lower_expr st env g e in
      emit st g slot (Vmov v);
      no_ret
    | Barr { arr; _ } -> (
      match lower_arg st env g e with
      | Aarr (src, _, _, _) ->
        emit st g (-1) (Vcopy { adst = arr; asrc = src });
        no_ret
      | Ascalar _ -> invalid_arg "Norm: scalar assigned to array"))
  | Assign (Lindex (a, i), e) -> (
    match binding env a with
    | Barr { arr; size; _ } -> (
      let iv, _, _ = lower_expr st env g i in
      match iv with
      | Oimm v ->
        let k = if Bitvec.width v > 62 then max_int else Bitvec.to_int v in
        if k >= size then begin
          (* The interpreter bounds-checks before evaluating the rhs;
             code after this point (under this guard) is unreachable. *)
          emit st g (-1)
            (Vfail
               (Printf.sprintf "store index %d out of bounds for %s (size %d)"
                  k a size));
          no_ret
        end
        else begin
          let v, _, _ = lower_expr st env g e in
          emit st g (-1) (Vstore { arr; idx = iv; v; aname = a });
          no_ret
        end
      | Oslot _ ->
        (* Bounds-check at the index's evaluation point, before the rhs
           runs — evaluation order is part of the observable contract
           (the rhs may itself fail). *)
        emit st g (-1) (Vcheck { arr; idx = iv; aname = a });
        let v, _, _ = lower_expr st env g e in
        emit st g (-1) (Vstore { arr; idx = iv; v; aname = a });
        no_ret)
    | Bscalar _ -> invalid_arg "Norm: scalar indexed as array")
  | If (c, t, e) -> (
    let cv, _, _ = lower_expr st env g c in
    match cv with
    | Oimm v ->
      if truthy v then lower_block st env g t (path ^ "/then")
      else lower_block st env g e (path ^ "/else")
    | Oslot _ -> (
      let nc = negate st cv in
      let gt = conj st g cv in
      let ge = conj st g nc in
      match (gt, ge) with
      | Some gt, Some ge ->
        let rt = lower_block st env gt t (path ^ "/then") in
        let re = lower_block st env ge e (path ^ "/else") in
        { l_ret = rt.l_ret || re.l_ret; l_term = rt.l_term && re.l_term }
      | _ -> assert false))
  | For { ivar; count; body } ->
    let iv = new_slot st 32 in
    Hashtbl.replace env.scope ivar
      (Bscalar { slot = iv; bw = 32; bsigned = false });
    let rec iterate g_cur i ret =
      if i >= count then { l_ret = ret; l_term = false }
      else begin
        emit st Galways iv (Vmov (Oimm (Bitvec.create ~width:32 i)));
        let r = lower_block st env g_cur body (path ^ "/for") in
        if r.l_term then { l_ret = true; l_term = true }
        else if not r.l_ret then iterate g_cur (i + 1) ret
        else
          let nrf = negate st (rd st env.rf) in
          match conj st g nrf with
          | None -> { l_ret = true; l_term = true }
          | Some g' -> iterate g' (i + 1) true
      end
    in
    let r = iterate g 0 false in
    Hashtbl.remove env.scope ivar;
    r
  | Bounded_while { cond; max_iter; body } ->
    (* Unroll to the static bound; iteration [i] runs under the
       conjunction of every earlier condition, so once the condition is
       false the rest of the unrolling is masked — and a constant-false
       condition cuts the unrolling short at compile time. *)
    let rec iterate g_cur i ret =
      if i >= max_iter then { l_ret = ret; l_term = false }
      else
        let cv, _, _ = lower_expr st env g_cur cond in
        match conj st g_cur cv with
        | None -> { l_ret = ret; l_term = false }
        | Some g_b -> (
          let r = lower_block st env g_b body (path ^ "/while") in
          (* The loop dominates only if this body dominates *and* the
             guard is still exactly the statement's own guard, i.e. no
             dynamic condition (or earlier conditional return) could
             have skipped getting here. *)
          if r.l_term && g_b = g then { l_ret = true; l_term = true }
          else if not (r.l_ret || r.l_term) then iterate g_b (i + 1) ret
          else
            match conj st g_b (negate st (rd st env.rf)) with
            | None -> { l_ret = true; l_term = true }
            | Some g' -> iterate g' (i + 1) true)
    in
    iterate g 0 false
  | While _ ->
    reject ~construct:"while loop" ~rule:"VNF-L1"
      ~reason:"the loop bound is data-dependent, so the lowering cannot unroll it"
      ~loc:(loc_at env path)
      ~hint:
        "use a for loop or a bounded_while (static bound with a conditional \
         exit), as the conditioning guideline requires"
  | Return e ->
    (match env.ret_t with
    | Tslot { slot; _ } ->
      let v, _, _ = lower_expr st env g e in
      emit st g slot (Vmov v)
    | Tarr ra -> (
      match lower_arg st env g e with
      | Aarr (src, _, _, _) -> emit st g (-1) (Vcopy { adst = ra; asrc = src })
      | Ascalar _ -> invalid_arg "Norm: scalar returned as array"));
    emit st g env.rf (Vmov (Oimm (Bitvec.of_bool true)));
    { l_ret = true; l_term = true }
  | Alloc { var; _ } ->
    reject
      ~construct:(Printf.sprintf "dynamic allocation of %s" var)
      ~rule:"VNF-M1"
      ~reason:"array storage must be statically sized for slot interning"
      ~loc:(loc_at env path)
      ~hint:"use a statically sized array local, as the conditioning guideline requires"
  | Alias { var; target } ->
    reject
      ~construct:(Printf.sprintf "alias %s of %s" var target)
      ~rule:"VNF-M2"
      ~reason:"aliasing breaks the one-array-per-id discipline of the normal form"
      ~loc:(loc_at env path)
      ~hint:"index the original array directly, as the conditioning guideline requires"
  | Extern_call (callee, _) ->
    reject
      ~construct:(Printf.sprintf "external call to %s" callee)
      ~rule:"VNF-X1"
      ~reason:"the model is not self-contained, so the call cannot be inlined"
      ~loc:(loc_at env path)
      ~hint:"model the external behaviour as an HWIR function"

(* --- entry point ---------------------------------------------------------- *)

let default_budget = 1 lsl 18

let lower_program ?(budget = default_budget) (p : program) : vnf =
  (match Typecheck.check p with
  | () -> ()
  | exception Typecheck.Type_error msg ->
    reject ~construct:"ill-typed program" ~rule:"VNF-T0" ~reason:msg
      ~loc:{ l_func = p.entry; l_path = p.entry }
      ~hint:"the normal form is only defined for well-typed programs");
  let fn =
    match find_func p p.entry with
    | Some fn -> fn
    | None -> assert false (* VNF-T0 *)
  in
  let st =
    {
      prog = p;
      insts = [];
      n_insts = 0;
      slot_w = [];
      n_slots = 0;
      arr_i = [];
      n_arrays = 0;
      vers = Hashtbl.create 256;
      avers = Hashtbl.create 16;
      consts = Hashtbl.create 256;
      cse = Hashtbl.create 256;
      n_folded = 0;
      n_cse = 0;
      cur = { l_func = p.entry; l_path = "body" };
      budget;
    }
  in
  let scope = Hashtbl.create 16 in
  (* Entry parameters are bound by the runtime binder, not by
     instructions: their slots are listed in [v_params] and written
     before instruction 0 of every run. *)
  let params =
    List.map
      (fun (name, ty) ->
        match ty with
        | Tint { width; signed } ->
          let s = new_slot st width in
          Hashtbl.replace scope name
            (Bscalar { slot = s; bw = width; bsigned = signed });
          P_int { p_name = name; p_width = width; p_slot = s }
        | Tarray (Tint { width; signed }, size) ->
          let a = new_arr st ~elem_w:width ~size in
          Hashtbl.replace scope name
            (Barr { arr = a; ew = width; esigned = signed; size });
          P_arr { p_name = name; p_width = width; p_size = size; p_arr = a }
        | Tarray (Tarray _, _) -> assert false (* VNF-T0 *))
      fn.params
  in
  let result = lower_body st ~scope ~fn Galways in
  let v_ret =
    match result with
    | Ascalar (Oslot s, _, _) -> Rslot s
    | Ascalar ((Oimm _ as v), _, _) ->
      (* The return value folded to a constant: materialize it so the
         runtime has a definite slot to read. *)
      let s = new_slot st (ty_width fn.ret) in
      emit st Galways s (Vmov v);
      Rslot s
    | Aarr (a, _, _, _) -> Rarr a
  in
  {
    v_entry = p.entry;
    v_params = params;
    v_slots = Array.of_list (List.rev st.slot_w);
    v_arrays = Array.of_list (List.rev st.arr_i);
    v_insts = Array.of_list (List.rev st.insts);
    v_ret;
    v_stats =
      {
        n_insts = st.n_insts;
        n_slots = st.n_slots;
        n_arrays = st.n_arrays;
        n_folded = st.n_folded;
        n_cse = st.n_cse;
      };
  }

(* --- well-formedness gates ------------------------------------------------ *)

exception Ill_formed of string

let gate_fail fmt = Printf.ksprintf (fun m -> raise (Ill_formed m)) fmt

let validate (v : vnf) : unit =
  let n = Array.length v.v_slots and na = Array.length v.v_arrays in
  Array.iteri
    (fun s w -> if w < 1 then gate_fail "slot %d has width %d" s w)
    v.v_slots;
  Array.iteri
    (fun a (ew, size) ->
      if ew < 1 then gate_fail "array %d has element width %d" a ew;
      if size < 1 then gate_fail "array %d has size %d" a size)
    v.v_arrays;
  let defined = Array.make (max n 1) false in
  let adefined = Array.make (max na 1) false in
  List.iter
    (fun p ->
      match p with
      | P_int { p_slot; p_width; p_name } ->
        if p_slot < 0 || p_slot >= n then
          gate_fail "parameter %s: slot %d out of range" p_name p_slot;
        if v.v_slots.(p_slot) <> p_width then
          gate_fail "parameter %s: slot width %d, declared %d" p_name
            v.v_slots.(p_slot) p_width;
        defined.(p_slot) <- true
      | P_arr { p_arr; p_width; p_size; p_name } ->
        if p_arr < 0 || p_arr >= na then
          gate_fail "parameter %s: array %d out of range" p_name p_arr;
        let ew, size = v.v_arrays.(p_arr) in
        if ew <> p_width || size <> p_size then
          gate_fail "parameter %s: array shape %d/%d, declared %d/%d" p_name
            ew size p_width p_size;
        adefined.(p_arr) <- true)
    v.v_params;
  let owidth i = function
    | Oimm bv -> Bitvec.width bv
    | Oslot s ->
      if s < 0 || s >= n then gate_fail "inst %d: slot %d out of range" i s;
      if not defined.(s) then
        gate_fail "inst %d: slot %d used before definition" i s;
      v.v_slots.(s)
  in
  let arr_ok i a what =
    if a < 0 || a >= na then gate_fail "inst %d: array %d out of range" i a;
    if not adefined.(a) then
      gate_fail "inst %d: %s of uninitialized array %d" i what a
  in
  Array.iteri
    (fun i inst ->
      (match inst.i_guard with
      | Galways -> ()
      | Gslot s ->
        if owidth i (Oslot s) <> 1 then
          gate_fail "inst %d: guard slot %d is not 1-bit" i s);
      let dw =
        if inst.i_dst < 0 then -1
        else if inst.i_dst >= n then
          gate_fail "inst %d: destination slot %d out of range" i inst.i_dst
        else v.v_slots.(inst.i_dst)
      in
      let need_dst what =
        if inst.i_dst < 0 then gate_fail "inst %d: %s needs a destination" i what
      in
      let no_dst what =
        if inst.i_dst >= 0 then
          gate_fail "inst %d: %s takes no destination" i what
      in
      (match inst.i_op with
      | Vmov a ->
        need_dst "mov";
        if owidth i a <> dw then
          gate_fail "inst %d: mov of width %d into %d-bit slot" i (owidth i a)
            dw
      | Vnot a | Vneg a ->
        need_dst "unop";
        if owidth i a <> dw then gate_fail "inst %d: unop width mismatch" i
      | Vlnot a ->
        need_dst "lnot";
        ignore (owidth i a);
        if dw <> 1 then gate_fail "inst %d: lnot into %d-bit slot" i dw
      | Vbin { op; a; b; _ } -> (
        need_dst "binop";
        let wa = owidth i a and wb = owidth i b in
        match op with
        | Land | Lor ->
          gate_fail "inst %d: frontend operator %s in normal form" i
            (binop_tag op)
        | Shl | Shr ->
          if wa <> dw then gate_fail "inst %d: shift width mismatch" i
        | Eq | Ne | Lt | Le ->
          if wa <> wb then
            gate_fail "inst %d: comparison on widths %d and %d" i wa wb;
          if dw <> 1 then gate_fail "inst %d: comparison into %d-bit slot" i dw
        | Add | Sub | Mul | Div | Rem | And | Or | Xor ->
          if wa <> wb || wa <> dw then
            gate_fail "inst %d: binop widths %d, %d into %d" i wa wb dw)
      | Vcast { a; _ } ->
        need_dst "cast";
        ignore (owidth i a)
      | Vbitsel { a; hi; lo } ->
        need_dst "bitsel";
        let wa = owidth i a in
        if lo < 0 || hi < lo || hi >= wa then
          gate_fail "inst %d: bit-select [%d:%d] out of range for width %d" i
            hi lo wa;
        if dw <> hi - lo + 1 then gate_fail "inst %d: bitsel width mismatch" i
      | Vload { arr; idx; _ } ->
        need_dst "load";
        arr_ok i arr "load";
        ignore (owidth i idx);
        if fst v.v_arrays.(arr) <> dw then
          gate_fail "inst %d: load of %d-bit element into %d-bit slot" i
            (fst v.v_arrays.(arr)) dw
      | Vcheck { arr; idx; _ } ->
        no_dst "check";
        arr_ok i arr "check";
        ignore (owidth i idx)
      | Vstore { arr; idx; v = value; _ } ->
        no_dst "store";
        arr_ok i arr "store";
        ignore (owidth i idx);
        if owidth i value <> fst v.v_arrays.(arr) then
          gate_fail "inst %d: store of width %d into %d-bit array" i
            (owidth i value)
            (fst v.v_arrays.(arr))
      | Vcopy { adst; asrc } ->
        no_dst "copy";
        arr_ok i asrc "copy source";
        if adst < 0 || adst >= na then
          gate_fail "inst %d: array %d out of range" i adst;
        if v.v_arrays.(adst) <> v.v_arrays.(asrc) then
          gate_fail "inst %d: copy between mismatched arrays" i;
        adefined.(adst) <- true
      | Vfill a ->
        no_dst "fill";
        if a < 0 || a >= na then
          gate_fail "inst %d: array %d out of range" i a;
        adefined.(a) <- true
      | Vfail _ -> () (* may carry a placeholder destination *));
      if inst.i_dst >= 0 then defined.(inst.i_dst) <- true)
    v.v_insts;
  (match v.v_ret with
  | Rslot s ->
    if s < 0 || s >= n then gate_fail "return slot %d out of range" s;
    if not defined.(s) then gate_fail "return slot %d never defined" s
  | Rarr a ->
    if a < 0 || a >= na then gate_fail "return array %d out of range" a;
    if not adefined.(a) then gate_fail "return array %d never initialized" a)

let span_normalize = "hwir.normalize"

let lower ?budget (p : program) : vnf =
  Dfv_obs.Trace.with_span span_normalize (fun () ->
      let v = lower_program ?budget p in
      validate v;
      v)
