(** Compiled HWIR execution.

    Lowers a {!Norm.vnf} onto the shared slot-indexed closure kernel
    ({!Dfv_kernel.Kernel}) — the same engine that backs
    [Rtl.Compile] — and runs it as a linear sweep over per-instruction
    closures.  This module is the engine behind
    [Exec.create ~engine:`Compiled]; [Interp] stays as the
    differential-testing oracle.

    All observable behaviour — result values, evaluation order, and
    every [Interp.Runtime_error] message, including entry argument
    binding — matches the interpreter bit-for-bit. *)

type t

val compile : Norm.vnf -> t
(** Compile a normal form.  Re-runs {!Norm.validate} first (the
    backend does not trust the frontend) and raises {!Norm.Ill_formed}
    if the gate fails.  Runs under the ["hwir.compile"] trace span and
    reports ["hwir.compile.*"] metrics. *)

val of_program : ?budget:int -> Ast.program -> t
(** [Norm.lower] then {!compile}; raises {!Norm.Rejected} on programs
    outside the normal form. *)

val run : t -> Interp.value list -> Interp.value
(** Evaluate the entry function.  Same contract as {!Interp.run}:
    raises {!Interp.Runtime_error} with the interpreter's messages on
    argument mismatch, division by zero, out-of-bounds access, or a
    body that finishes without returning. *)

val stats : t -> Norm.stats
val vnf : t -> Norm.vnf
