module Bitvec = Dfv_bitvec.Bitvec
open Netlist

type engine = [ `Compiled | `Interp ]

(* --- tree-walking interpreter ------------------------------------------- *)
(* Retained as the differential-testing oracle for the compiled kernel
   (test/test_sim_engines.ml); [`Compiled] is the default engine. *)

type interp = {
  design : elaborated;
  values : (string, Bitvec.t) Hashtbl.t; (* inputs, wires, regs *)
  mems : (string, Bitvec.t array) Hashtbl.t;
}

let m_cycles = Dfv_obs.Metrics.counter "rtl.sim.cycles"
let m_evals = Dfv_obs.Metrics.counter "rtl.sim.evals"

let mem_initial mem =
  match mem.mem_init with
  | Some init -> Array.copy init
  | None -> Array.make mem.mem_size (Bitvec.zero mem.word_width)

let i_reset st =
  Hashtbl.reset st.values;
  List.iter
    (fun r -> Hashtbl.replace st.values r.reg_name r.init)
    st.design.e_regs;
  List.iter
    (fun m -> Hashtbl.replace st.mems m.mem_name (mem_initial m))
    st.design.e_mems

let lookup st name =
  match Hashtbl.find_opt st.values name with
  | Some v -> v
  | None -> raise Not_found

(* Expression evaluation over the settled value table. *)
let rec eval st e =
  match e with
  | Expr.Const bv -> bv
  | Expr.Signal n -> lookup st n
  | Expr.Unop (op, a) ->
    let va = eval st a in
    (match op with
    | Expr.Not -> Bitvec.lognot va
    | Expr.Neg -> Bitvec.neg va
    | Expr.Red_and -> Bitvec.of_bool (Bitvec.reduce_and va)
    | Expr.Red_or -> Bitvec.of_bool (Bitvec.reduce_or va)
    | Expr.Red_xor -> Bitvec.of_bool (Bitvec.reduce_xor va))
  | Expr.Binop (op, a, b) ->
    let va = eval st a in
    (match op with
    | Expr.Shl | Expr.Lshr | Expr.Ashr ->
      let vb = eval st b in
      (* Dynamic shift amount; clamp at width (Bitvec shifts by int). *)
      let amount =
        if Bitvec.width vb > 62 then Bitvec.width va (* saturate *)
        else min (Bitvec.to_int vb) (Bitvec.width va)
      in
      (match op with
      | Expr.Shl -> Bitvec.shift_left va amount
      | Expr.Lshr -> Bitvec.shift_right_logical va amount
      | Expr.Ashr -> Bitvec.shift_right_arith va amount
      | _ -> assert false)
    | _ ->
      let vb = eval st b in
      (match op with
      | Expr.Add -> Bitvec.add va vb
      | Expr.Sub -> Bitvec.sub va vb
      | Expr.Mul -> Bitvec.mul va vb
      | Expr.Udiv -> Bitvec.udiv va vb
      | Expr.Urem -> Bitvec.urem va vb
      | Expr.Sdiv -> Bitvec.sdiv va vb
      | Expr.Srem -> Bitvec.srem va vb
      | Expr.And -> Bitvec.logand va vb
      | Expr.Or -> Bitvec.logor va vb
      | Expr.Xor -> Bitvec.logxor va vb
      | Expr.Eq -> Bitvec.of_bool (Bitvec.equal va vb)
      | Expr.Ne -> Bitvec.of_bool (not (Bitvec.equal va vb))
      | Expr.Ult -> Bitvec.of_bool (Bitvec.ult va vb)
      | Expr.Ule -> Bitvec.of_bool (Bitvec.ule va vb)
      | Expr.Slt -> Bitvec.of_bool (Bitvec.slt va vb)
      | Expr.Sle -> Bitvec.of_bool (Bitvec.sle va vb)
      | Expr.Shl | Expr.Lshr | Expr.Ashr -> assert false))
  | Expr.Mux (s, a, b) ->
    if Bitvec.reduce_or (eval st s) then eval st a else eval st b
  | Expr.Slice (a, hi, lo) -> Bitvec.select (eval st a) ~hi ~lo
  | Expr.Concat es -> Bitvec.concat (List.map (eval st) es)
  | Expr.Zext (a, w) -> Bitvec.uresize (eval st a) w
  | Expr.Sext (a, w) -> Bitvec.sresize (eval st a) w
  | Expr.Repeat (a, n) -> Bitvec.repeat (eval st a) n
  | Expr.Mem_read (m, a) ->
    let arr = Hashtbl.find st.mems m in
    let addr = eval st a in
    let i = if Bitvec.width addr > 62 then max_int else Bitvec.to_int addr in
    if i < Array.length arr then arr.(i)
    else Bitvec.zero (Bitvec.width arr.(0))

let i_settle st =
  List.iter
    (fun (n, e) -> Hashtbl.replace st.values n (eval st e))
    st.design.e_wires

let i_apply_inputs st inputs =
  List.iter
    (fun p ->
      match List.assoc_opt p.port_name inputs with
      | None ->
        invalid_arg
          (Printf.sprintf "Sim.cycle: missing input %s" p.port_name)
      | Some v ->
        if Bitvec.width v <> p.port_width then
          invalid_arg
            (Printf.sprintf "Sim.cycle: input %s has width %d, expected %d"
               p.port_name (Bitvec.width v) p.port_width);
        Hashtbl.replace st.values p.port_name v)
    st.design.e_inputs;
  List.iter
    (fun (n, _) ->
      if not (List.exists (fun p -> p.port_name = n) st.design.e_inputs) then
        invalid_arg (Printf.sprintf "Sim.cycle: no input port named %s" n))
    inputs

let i_clock_edge st =
  (* Compute all next-state values from settled current values, then
     commit — registers update simultaneously. *)
  let reg_updates =
    List.filter_map
      (fun r ->
        let enabled =
          match r.enable with
          | None -> true
          | Some e -> Bitvec.reduce_or (eval st e)
        in
        if enabled then Some (r.reg_name, eval st r.next) else None)
      st.design.e_regs
  in
  let mem_updates =
    List.concat_map
      (fun m ->
        let arr = Hashtbl.find st.mems m.mem_name in
        List.filter_map
          (fun wp ->
            if Bitvec.reduce_or (eval st wp.wr_enable) then begin
              (* Clamp a write address too wide for [to_int] to
                 out-of-range, the same rule Mem_read applies — wide
                 addresses are discarded, not a crash. *)
              let a = eval st wp.wr_addr in
              let addr =
                if Bitvec.width a > 62 then max_int else Bitvec.to_int a
              in
              if addr < Array.length arr then
                Some (arr, addr, eval st wp.wr_data)
              else None
            end
            else None)
          m.writes)
      st.design.e_mems
  in
  List.iter (fun (n, v) -> Hashtbl.replace st.values n v) reg_updates;
  List.iter (fun (arr, i, v) -> arr.(i) <- v) mem_updates

let i_peek st name =
  match Hashtbl.find_opt st.values name with
  | Some v -> v
  | None ->
    (* An un-settled wire or unknown name. *)
    if List.mem_assoc name st.design.e_wires then
      invalid_arg (Printf.sprintf "Sim.peek: wire %s not settled yet" name)
    else raise Not_found

let i_peek_mem st name i =
  let arr = Hashtbl.find st.mems name in
  arr.(i)

(* --- engine dispatch ----------------------------------------------------- *)

type kernel = Interp of interp | Compiled of Compile.t

type t = {
  kernel : kernel;
  mutable ncycles : int;
  evals_per_cycle : int; (* wire + output + register evaluations *)
}

let create ?(engine = `Compiled) design =
  let kernel =
    match engine with
    | `Compiled -> Compiled (Compile.compile design)
    | `Interp ->
      let st =
        { design; values = Hashtbl.create 64; mems = Hashtbl.create 8 }
      in
      i_reset st;
      Interp st
  in
  {
    kernel;
    ncycles = 0;
    evals_per_cycle =
      List.length design.e_wires
      + List.length design.e_outputs
      + List.length design.e_regs;
  }

let engine sim =
  match sim.kernel with Compiled _ -> `Compiled | Interp _ -> `Interp

let reset sim =
  (match sim.kernel with
  | Compiled c -> Compile.reset c
  | Interp st -> i_reset st);
  sim.ncycles <- 0

let cycle sim inputs =
  let outputs =
    match sim.kernel with
    | Compiled c ->
      Compile.bind_inputs c inputs;
      Compile.settle c;
      let outputs = Compile.outputs c in
      Compile.clock_edge c;
      outputs
    | Interp st ->
      i_apply_inputs st inputs;
      i_settle st;
      let outputs =
        List.map (fun (n, e) -> (n, eval st e)) st.design.e_outputs
      in
      i_clock_edge st;
      outputs
  in
  sim.ncycles <- sim.ncycles + 1;
  Dfv_obs.Metrics.incr m_cycles;
  Dfv_obs.Metrics.add m_evals sim.evals_per_cycle;
  outputs

let peek sim name =
  match sim.kernel with
  | Compiled c -> Compile.peek c name
  | Interp st -> i_peek st name

let peek_mem sim name i =
  match sim.kernel with
  | Compiled c -> Compile.peek_mem c name i
  | Interp st -> i_peek_mem st name i

let cycles_run sim = sim.ncycles

let run sim ~inputs ~cycles =
  (* Explicit loop: Array.init's application order is unspecified, and
     [cycle] is stateful. *)
  let out = Array.make cycles [] in
  for i = 0 to cycles - 1 do
    out.(i) <- cycle sim (inputs i)
  done;
  out
