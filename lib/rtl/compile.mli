(** Compiled RTL simulation kernel.

    Compiles an elaborated netlist once into a slot-indexed closure
    kernel: names are interned to dense integer slots over flat value
    stores (a native-int store for widths <= [Bitvec.Unboxed.max_width],
    a boxed [Bitvec.t] store for wider signals), the combinational
    logic is levelized into a topologically-sorted schedule, and every
    expression becomes a chain of per-operator closures with
    compile-time constant folding.

    This module is the engine behind [Sim.create ~engine:`Compiled]
    (the default); [Sim] keeps the tree-walking interpreter as the
    differential-testing oracle.  All observable behaviour — values,
    evaluation order, and exceptions — matches the interpreter
    bit-for-bit. *)

type t

type stats = Dfv_kernel.Kernel.stats = {
  n_slots : int;  (** interned input/wire/register slots *)
  n_levels : int;  (** depth of the levelized combinational schedule *)
  n_folded : int;  (** sub-expressions folded to constants at compile *)
  n_shared : int;
      (** repeated subtrees deduplicated by structural CSE, each
          compiled once and memoized per evaluation generation *)
}

val compile : Netlist.elaborated -> t
(** Compile a netlist.  Re-levelizes the combinational wires (the
    elaborator's order is not trusted, since [Netlist.elaborated] is a
    public record) and raises [Netlist.Elaboration_error] on a
    combinational cycle or a reference to an unknown signal/memory. *)

val stats : t -> stats

(** {1 Per-cycle kernel}

    [Sim.cycle] is [bind_inputs; settle; outputs ...; clock_edge]. *)

val bind_inputs : t -> (string * Dfv_bitvec.Bitvec.t) list -> unit
(** Bind input port values through the precompiled binder table.
    Raises [Invalid_argument] with the same messages and in the same
    order as the interpreter: missing/mis-sized inputs first in port
    declaration order, then unknown port names in argument order.
    Duplicate names: first occurrence wins. *)

val settle : t -> unit
(** Run the levelized combinational schedule. *)

val outputs : t -> (string * Dfv_bitvec.Bitvec.t) list
(** Sample the output expressions, in declaration order. *)

val clock_edge : t -> unit
(** Evaluate every register next/enable and memory write port against
    the settled pre-edge values, then commit registers and memory
    writes (write ports in declaration order; later ports win on an
    address collision). *)

(** {1 Observation} *)

val reset : t -> unit
(** Registers back to their init values, memories to their initial
    contents, inputs and wires invalidated. *)

val peek : t -> string -> Dfv_bitvec.Bitvec.t
(** Same contract as [Sim.peek]: raises [Not_found] for unknown names
    and for inputs not yet bound, [Invalid_argument] for wires read
    before the first [settle]. *)

val peek_mem : t -> string -> int -> Dfv_bitvec.Bitvec.t
(** Same contract as [Sim.peek_mem]. *)
