(* Compiled RTL simulation, rebased on the shared closure kernel.

   The tree-walking interpreter in [Sim] pays a string-keyed hashtable
   lookup per signal reference per cycle.  This pass trades a one-time
   compile at [create] for a run-many kernel built on [Dfv_kernel.Kernel]:

   - every input/wire/register name is interned to a dense integer slot
     over the kernel's dual store (a native-int store for widths <= 62
     via [Bitvec.Unboxed], a boxed [Bitvec.t] store for wider signals);
   - the combinational netlist is levelized once into a topologically
     sorted evaluation schedule (raising [Netlist.Elaboration_error] on
     a combinational cycle rather than silently mis-settling);
   - each wire/output/next-state/enable/write-port expression is
     compiled to an OCaml closure chain specialised per operator and
     per width class, with compile-time constant folding;
   - input binding is a precompiled per-port table instead of an
     O(ports * inputs) assoc scan.

   The netlist-specific parts — operator compilation over [Expr],
   register/memory commit discipline, port binding, peek semantics —
   live here; the representation ([cexp], [Store]), memoization,
   folding, [Pending] scratch and levelization come from the kernel,
   which [Hwir.Compile] shares.

   Exception behaviour ([Division_by_zero], peek on unsettled wires,
   missing/mis-sized inputs) matches the interpreter; the differential
   suite in test/test_sim_engines.ml holds the two engines to
   bit-identical outputs, state and VCD dumps. *)

module Bitvec = Dfv_bitvec.Bitvec
module U = Bitvec.Unboxed
open Dfv_kernel.Kernel
open Netlist

let fail fmt = Printf.ksprintf (fun s -> raise (Elaboration_error s)) fmt

type slot_kind = K_input | K_wire | K_reg

type mem_store = M_int of int array | M_bv of Bitvec.t array

type mem = {
  m_name : string;
  m_width : int;
  m_size : int;
  m_store : mem_store;
  m_init : Bitvec.t array option;
}

type port_binding = {
  pb_name : string;
  pb_width : int;
  pb_slot : int;
  pb_narrow : bool;
}

type nonrec stats = stats = {
  n_slots : int;
  n_levels : int;
  n_folded : int;
  n_shared : int;
}

type t = {
  (* slot-indexed value stores (kernel dual store) *)
  store : Store.t;
  kinds : slot_kind array;
  slot_of : (string, int) Hashtbl.t;
  (* memories *)
  memories : mem array;
  mem_of : (string, int) Hashtbl.t;
  (* levelized combinational schedule and sampled outputs *)
  schedule : (unit -> unit) array;
  out_fns : (string * (unit -> Bitvec.t)) array;
  (* clock edge: evaluate-all-then-commit *)
  reg_eval : (unit -> unit) array;
  reg_commit : (unit -> unit) array;
  wr_eval : (unit -> unit) array;
  wr_commit : (unit -> unit) array;
  reg_inits : (int * Bitvec.t) array;
  (* precompiled input binder *)
  ports : port_binding array;
  port_index : (string, int) Hashtbl.t;
  bound_gen : int array;
  given : Bitvec.t array;
  mutable gen : int;
  (* per-cycle evaluation generation for memoized shared subtrees *)
  eval_gen : gen;
  (* peek validity, mirroring the interpreter's value-table presence *)
  mutable inputs_valid : bool;
  mutable wires_valid : bool;
  c_stats : stats;
}

let reset c =
  next_gen c.eval_gen;
  Array.iter (fun (s, init) -> Store.write c.store s init) c.reg_inits;
  Array.iter
    (fun m ->
      match (m.m_store, m.m_init) with
      | M_int arr, None -> Array.fill arr 0 (Array.length arr) 0
      | M_int arr, Some init ->
        Array.iteri (fun i w -> arr.(i) <- Bitvec.to_int w) init
      | M_bv arr, None ->
        Array.fill arr 0 (Array.length arr) (Bitvec.zero m.m_width)
      | M_bv arr, Some init -> Array.blit init 0 arr 0 (Array.length arr))
    c.memories;
  c.inputs_valid <- false;
  c.wires_valid <- false

let compile (design : elaborated) : t =
  (* --- pass 1: widths and the levelized wire order -------------------- *)
  let widths_tbl : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let declare name w =
    if Hashtbl.mem widths_tbl name then fail "duplicate signal name %s" name;
    Hashtbl.add widths_tbl name w
  in
  List.iter (fun p -> declare p.port_name p.port_width) design.e_inputs;
  List.iter (fun r -> declare r.reg_name r.reg_width) design.e_regs;
  let mem_word_tbl : (string, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun m ->
      if Hashtbl.mem mem_word_tbl m.mem_name then
        fail "duplicate memory name %s" m.mem_name;
      Hashtbl.add mem_word_tbl m.mem_name m.word_width)
    design.e_mems;
  let sig_w n =
    match Hashtbl.find_opt widths_tbl n with
    | Some w -> w
    | None -> fail "reference to unknown signal %s" n
  and mem_w n =
    match Hashtbl.find_opt mem_word_tbl n with
    | Some w -> w
    | None -> fail "reference to unknown memory %s" n
  in
  let wire_names : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (n, _) ->
      if Hashtbl.mem widths_tbl n || Hashtbl.mem wire_names n then
        fail "duplicate signal name %s" n;
      Hashtbl.add wire_names n ())
    design.e_wires;
  (* Levelize: depth-first topological sort over wire->wire dependency
     edges (inputs, registers and memories are state, not edges).  The
     elaborator already schedules [e_wires], but hand-assembled
     [elaborated] values reach us too, so the kernel re-levelizes and
     rejects combinational cycles itself. *)
  let wires_levelized, n_levels =
    levelize ~defs:design.e_wires ~deps:Expr.signals ~on_cycle:(fun name ->
        fail "combinational cycle through wire %s" name)
  in
  List.iter
    (fun (n, e, _) ->
      let w =
        try Expr.width_in sig_w mem_w e
        with Expr.Width_error msg -> fail "wire %s: %s" n msg
      in
      declare n w)
    wires_levelized;
  (* --- slot interning -------------------------------------------------- *)
  let slot_of : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let rev_slots = ref [] and nslots = ref 0 in
  let intern kind name =
    let s = !nslots in
    incr nslots;
    Hashtbl.add slot_of name s;
    rev_slots := (kind, Hashtbl.find widths_tbl name) :: !rev_slots;
    s
  in
  List.iter (fun p -> ignore (intern K_input p.port_name)) design.e_inputs;
  List.iter (fun r -> ignore (intern K_reg r.reg_name)) design.e_regs;
  List.iter (fun (n, _, _) -> ignore (intern K_wire n)) wires_levelized;
  let slots = Array.of_list (List.rev !rev_slots) in
  let kinds = Array.map fst slots in
  let swidth = Array.map snd slots in
  let n = Array.length slots in
  let store = Store.create swidth in
  let ival = store.Store.ival and bval = store.Store.bval in
  (* --- memories --------------------------------------------------------- *)
  let mem_of : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let memories =
    Array.of_list
      (List.mapi
         (fun i m ->
           Hashtbl.add mem_of m.mem_name i;
           let mstore =
             if narrow m.word_width then M_int (Array.make m.mem_size 0)
             else M_bv (Array.make m.mem_size (Bitvec.zero m.word_width))
           in
           {
             m_name = m.mem_name;
             m_width = m.word_width;
             m_size = m.mem_size;
             m_store = mstore;
             m_init = m.mem_init;
           })
         design.e_mems)
  in
  (* --- pass 2: closure compilation -------------------------------------- *)
  (* Occurrence counts for structural CSE: a subtree appearing more than
     once across the netlist compiles to ONE closure whose result is
     memoized per evaluation generation (one generation per cycle).
     Sound because expressions are pure over slot/memory state that is
     stable for the whole generation: wires settle in levelized order,
     so every slot a subtree reads is final before its first demand, and
     register/memory commits happen after all clock-edge evaluation. *)
  let occurs : (Expr.t, int) Hashtbl.t = Hashtbl.create 256 in
  let rec count e =
    let c = Option.value ~default:0 (Hashtbl.find_opt occurs e) in
    Hashtbl.replace occurs e (c + 1);
    if c = 0 then
      match e with
      | Expr.Const _ | Expr.Signal _ -> ()
      | Expr.Unop (_, a)
      | Expr.Slice (a, _, _)
      | Expr.Zext (a, _)
      | Expr.Sext (a, _)
      | Expr.Repeat (a, _)
      | Expr.Mem_read (_, a) -> count a
      | Expr.Binop (_, a, b) ->
        count a;
        count b
      | Expr.Mux (s, a, b) ->
        count s;
        count a;
        count b
      | Expr.Concat es -> List.iter count es
  in
  List.iter (fun (_, e, _) -> count e) wires_levelized;
  List.iter (fun (_, e) -> count e) design.e_outputs;
  List.iter
    (fun r ->
      count r.next;
      Option.iter count r.enable)
    design.e_regs;
  List.iter
    (fun m ->
      List.iter
        (fun wp ->
          count wp.wr_enable;
          count wp.wr_addr;
          count wp.wr_data)
        m.writes)
    design.e_mems;
  let eval_gen = new_gen () in
  let n_folded = ref 0 in
  let n_shared = ref 0 in
  let fold ce =
    match try_fold ce with
    | Some folded ->
      incr n_folded;
      folded
    | None -> ce
  in
  let ret w k ce = (w, (if k then fold ce else ce), k) in
  let ccache : (Expr.t, int * cexp * bool) Hashtbl.t = Hashtbl.create 256 in
  let rec go e : int * cexp * bool =
    (* The cache both shares compiled closures across every occurrence
       of a subtree and keeps compile time linear in the DAG size. *)
    match Hashtbl.find_opt ccache e with
    | Some r -> r
    | None ->
      let w, ce, k = go_expr e in
      let r =
        if
          (not k)
          && (match e with
             | Expr.Const _ | Expr.Signal _ -> false
             | _ -> true)
          && Option.value ~default:0 (Hashtbl.find_opt occurs e) > 1
        then begin
          incr n_shared;
          (w, memoize eval_gen w ce, k)
        end
        else (w, ce, k)
      in
      Hashtbl.add ccache e r;
      r
  and go_expr e : int * cexp * bool =
    match e with
    | Expr.Const bv ->
      let w = Bitvec.width bv in
      if narrow w then
        let v = Bitvec.to_int bv in
        (w, CI (fun () -> v), true)
      else (w, CB (fun () -> bv), true)
    | Expr.Signal name ->
      let s =
        match Hashtbl.find_opt slot_of name with
        | Some s -> s
        | None -> fail "reference to unknown signal %s" name
      in
      (swidth.(s), Store.reader store s, false)
    | Expr.Unop (op, a) -> (
      let wa, ca, ka = go a in
      match op with
      | Expr.Not ->
        ret wa ka
          (if narrow wa then
             let f = as_int ca in
             CI (fun () -> U.lognot wa (f ()))
           else
             let f = as_bv wa ca in
             CB (fun () -> Bitvec.lognot (f ())))
      | Expr.Neg ->
        ret wa ka
          (if narrow wa then
             let f = as_int ca in
             CI (fun () -> U.neg wa (f ()))
           else
             let f = as_bv wa ca in
             CB (fun () -> Bitvec.neg (f ())))
      | Expr.Red_and | Expr.Red_or | Expr.Red_xor ->
        let bit : unit -> bool =
          if narrow wa then
            let f = as_int ca in
            match op with
            | Expr.Red_and -> fun () -> U.reduce_and wa (f ())
            | Expr.Red_or -> fun () -> U.reduce_or (f ())
            | _ -> fun () -> U.reduce_xor (f ())
          else
            let f = as_bv wa ca in
            match op with
            | Expr.Red_and -> fun () -> Bitvec.reduce_and (f ())
            | Expr.Red_or -> fun () -> Bitvec.reduce_or (f ())
            | _ -> fun () -> Bitvec.reduce_xor (f ())
        in
        ret 1 ka (CI (fun () -> if bit () then 1 else 0)))
    | Expr.Binop (op, a, b) -> (
      let wa, ca, ka = go a in
      let wb, cb, kb = go b in
      let k = ka && kb in
      match op with
      | Expr.Shl | Expr.Lshr | Expr.Ashr ->
        (* Dynamic shift amount, clamped at the value width; a >62-bit
           amount saturates (mirrors the interpreter exactly, including
           evaluating the amount expression for its effects). *)
        let amount : unit -> int =
          if wb > U.max_width then
            let fb = force cb in
            fun () ->
              fb ();
              wa
          else
            let fb = as_int cb in
            fun () -> min (fb ()) wa
        in
        if narrow wa then
          let fa = as_int ca in
          ret wa k
            (CI
               (match op with
               | Expr.Shl ->
                 fun () ->
                   let v = fa () in
                   U.shift_left wa v (amount ())
               | Expr.Lshr ->
                 fun () ->
                   let v = fa () in
                   U.shift_right_logical v (amount ())
               | _ ->
                 fun () ->
                   let v = fa () in
                   U.shift_right_arith wa v (amount ())))
        else
          let fa = as_bv wa ca in
          ret wa k
            (CB
               (match op with
               | Expr.Shl ->
                 fun () ->
                   let v = fa () in
                   Bitvec.shift_left v (amount ())
               | Expr.Lshr ->
                 fun () ->
                   let v = fa () in
                   Bitvec.shift_right_logical v (amount ())
               | _ ->
                 fun () ->
                   let v = fa () in
                   Bitvec.shift_right_arith v (amount ())))
      | Expr.Eq | Expr.Ne | Expr.Ult | Expr.Ule | Expr.Slt | Expr.Sle ->
        if wa <> wb then
          fail "comparison: operand widths %d and %d differ" wa wb;
        let bit : unit -> bool =
          if narrow wa then
            let fa = as_int ca and fb = as_int cb in
            match op with
            | Expr.Eq ->
              fun () ->
                let x = fa () in
                x = fb ()
            | Expr.Ne ->
              fun () ->
                let x = fa () in
                x <> fb ()
            | Expr.Ult ->
              fun () ->
                let x = fa () in
                U.ult x (fb ())
            | Expr.Ule ->
              fun () ->
                let x = fa () in
                U.ule x (fb ())
            | Expr.Slt ->
              fun () ->
                let x = fa () in
                U.slt wa x (fb ())
            | _ ->
              fun () ->
                let x = fa () in
                U.sle wa x (fb ())
          else
            let fa = as_bv wa ca and fb = as_bv wb cb in
            match op with
            | Expr.Eq ->
              fun () ->
                let x = fa () in
                Bitvec.equal x (fb ())
            | Expr.Ne ->
              fun () ->
                let x = fa () in
                not (Bitvec.equal x (fb ()))
            | Expr.Ult ->
              fun () ->
                let x = fa () in
                Bitvec.ult x (fb ())
            | Expr.Ule ->
              fun () ->
                let x = fa () in
                Bitvec.ule x (fb ())
            | Expr.Slt ->
              fun () ->
                let x = fa () in
                Bitvec.slt x (fb ())
            | _ ->
              fun () ->
                let x = fa () in
                Bitvec.sle x (fb ())
        in
        ret 1 k (CI (fun () -> if bit () then 1 else 0))
      | Expr.Add | Expr.Sub | Expr.Mul | Expr.Udiv | Expr.Urem | Expr.Sdiv
      | Expr.Srem | Expr.And | Expr.Or | Expr.Xor ->
        if wa <> wb then
          fail "operator: operand widths %d and %d differ" wa wb;
        if narrow wa then
          let fa = as_int ca and fb = as_int cb in
          ret wa k
            (CI
               (match op with
               | Expr.Add ->
                 fun () ->
                   let x = fa () in
                   U.add wa x (fb ())
               | Expr.Sub ->
                 fun () ->
                   let x = fa () in
                   U.sub wa x (fb ())
               | Expr.Mul ->
                 fun () ->
                   let x = fa () in
                   U.mul wa x (fb ())
               | Expr.Udiv ->
                 fun () ->
                   let x = fa () in
                   U.udiv x (fb ())
               | Expr.Urem ->
                 fun () ->
                   let x = fa () in
                   U.urem x (fb ())
               | Expr.Sdiv ->
                 fun () ->
                   let x = fa () in
                   U.sdiv wa x (fb ())
               | Expr.Srem ->
                 fun () ->
                   let x = fa () in
                   U.srem wa x (fb ())
               | Expr.And ->
                 fun () ->
                   let x = fa () in
                   U.logand x (fb ())
               | Expr.Or ->
                 fun () ->
                   let x = fa () in
                   U.logor x (fb ())
               | _ ->
                 fun () ->
                   let x = fa () in
                   U.logxor x (fb ())))
        else
          let fa = as_bv wa ca and fb = as_bv wb cb in
          ret wa k
            (CB
               (match op with
               | Expr.Add ->
                 fun () ->
                   let x = fa () in
                   Bitvec.add x (fb ())
               | Expr.Sub ->
                 fun () ->
                   let x = fa () in
                   Bitvec.sub x (fb ())
               | Expr.Mul ->
                 fun () ->
                   let x = fa () in
                   Bitvec.mul x (fb ())
               | Expr.Udiv ->
                 fun () ->
                   let x = fa () in
                   Bitvec.udiv x (fb ())
               | Expr.Urem ->
                 fun () ->
                   let x = fa () in
                   Bitvec.urem x (fb ())
               | Expr.Sdiv ->
                 fun () ->
                   let x = fa () in
                   Bitvec.sdiv x (fb ())
               | Expr.Srem ->
                 fun () ->
                   let x = fa () in
                   Bitvec.srem x (fb ())
               | Expr.And ->
                 fun () ->
                   let x = fa () in
                   Bitvec.logand x (fb ())
               | Expr.Or ->
                 fun () ->
                   let x = fa () in
                   Bitvec.logor x (fb ())
               | _ ->
                 fun () ->
                   let x = fa () in
                   Bitvec.logxor x (fb ()))))
    | Expr.Mux (s, a, b) ->
      let ws, cs, ks = go s in
      if ws <> 1 then fail "mux select must be 1 bit, got %d" ws;
      let fs = as_int cs in
      let wa, ca, ka = go a in
      let wb, cb, kb = go b in
      if wa <> wb then fail "mux arms have widths %d and %d" wa wb;
      let k = ks && ka && kb in
      if narrow wa then
        let fa = as_int ca and fb = as_int cb in
        ret wa k (CI (fun () -> if fs () <> 0 then fa () else fb ()))
      else
        let fa = as_bv wa ca and fb = as_bv wb cb in
        ret wa k (CB (fun () -> if fs () <> 0 then fa () else fb ()))
    | Expr.Slice (a, hi, lo) ->
      let wa, ca, ka = go a in
      if lo < 0 || hi < lo || hi >= wa then
        fail "slice [%d:%d] out of range for width %d" hi lo wa;
      let w = hi - lo + 1 in
      if narrow wa then
        let fa = as_int ca in
        ret w ka (CI (fun () -> U.select ~hi ~lo (fa ())))
      else
        let fa = as_bv wa ca in
        if narrow w then
          ret w ka (CI (fun () -> Bitvec.to_int (Bitvec.select (fa ()) ~hi ~lo)))
        else ret w ka (CB (fun () -> Bitvec.select (fa ()) ~hi ~lo))
    | Expr.Concat [] -> fail "empty concat"
    | Expr.Concat es ->
      let parts = List.map go es in
      let w = List.fold_left (fun acc (wi, _, _) -> acc + wi) 0 parts in
      let k = List.for_all (fun (_, _, ki) -> ki) parts in
      if narrow w then
        (* Head is most significant; fold the parts into one closure
           chain shifting the accumulated prefix left as it goes. *)
        let f =
          List.fold_left
            (fun g (wi, ci, _) ->
              let fi = as_int ci in
              fun () ->
                let prefix = g () in
                (prefix lsl wi) lor fi ())
            (fun () -> 0)
            parts
        in
        ret w k (CI f)
      else
        let fs = List.map (fun (wi, ci, _) -> as_bv wi ci) parts in
        ret w k (CB (fun () -> Bitvec.concat (List.map (fun f -> f ()) fs)))
    | Expr.Zext (a, w) ->
      let wa, ca, ka = go a in
      if w < wa then
        fail "extension to %d narrower than operand width %d" w wa;
      if narrow w then ret w ka (CI (as_int ca))
      else
        let fa = as_bv wa ca in
        ret w ka (CB (fun () -> Bitvec.uresize (fa ()) w))
    | Expr.Sext (a, w) ->
      let wa, ca, ka = go a in
      if w < wa then
        fail "extension to %d narrower than operand width %d" w wa;
      if narrow w then
        let fa = as_int ca in
        ret w ka (CI (fun () -> U.sext ~from:wa ~width:w (fa ())))
      else
        let fa = as_bv wa ca in
        ret w ka (CB (fun () -> Bitvec.sresize (fa ()) w))
    | Expr.Repeat (a, count) ->
      if count < 1 then fail "repeat count %d" count;
      let wa, ca, ka = go a in
      let w = count * wa in
      if narrow w then
        let fa = as_int ca in
        ret w ka
          (CI
             (fun () ->
               let v = fa () in
               let r = ref 0 in
               for _ = 1 to count do
                 r := (!r lsl wa) lor v
               done;
               !r))
      else
        let fa = as_bv wa ca in
        ret w ka (CB (fun () -> Bitvec.repeat (fa ()) count))
    | Expr.Mem_read (m, a) -> (
      let mi =
        match Hashtbl.find_opt mem_of m with
        | Some i -> i
        | None -> fail "reference to unknown memory %s" m
      in
      let mem = memories.(mi) in
      let size = mem.m_size and ww = mem.m_width in
      let wa, ca, _ = go a in
      (* Address wider than the fast path: unrepresentable, hence
         necessarily out of range — evaluate for effect, read default
         (the interpreter's max_int clamp). *)
      let addr : unit -> int =
        if wa > U.max_width then
          let fa = force ca in
          fun () ->
            fa ();
            max_int
        else as_int ca
      in
      match mem.m_store with
      | M_int arr ->
        ( ww,
          CI
            (fun () ->
              let i = addr () in
              if i < size then arr.(i) else 0),
          false )
      | M_bv arr ->
        let default = Bitvec.zero ww in
        ( ww,
          CB
            (fun () ->
              let i = addr () in
              if i < size then arr.(i) else default),
          false ))
  in
  let as_bool_fn e =
    let w, ce, _ = go e in
    if narrow w then
      let f = as_int ce in
      fun () -> f () <> 0
    else
      let f = as_bv w ce in
      fun () -> Bitvec.reduce_or (f ())
  in
  (* Wires: slot assignment thunks in levelized order. *)
  let schedule =
    Array.of_list
      (List.map
         (fun (name, e, _) ->
           let s = Hashtbl.find slot_of name in
           let _, ce, _ = go e in
           Store.assigner store s ce)
         wires_levelized)
  in
  (* Outputs: sampled (boxed) after settle, in declaration order. *)
  let out_fns =
    Array.of_list
      (List.map
         (fun (name, e) ->
           let w, ce, _ = go e in
           (name, as_bv w ce))
         design.e_outputs)
  in
  (* Registers: evaluate next/enable against settled pre-edge values
     into the kernel's pending scratch, then commit — simultaneous
     update. *)
  let nregs = List.length design.e_regs in
  let rp = Pending.create nregs in
  let reg_eval =
    Array.of_list
      (List.mapi
         (fun i r ->
           let wn, cn, _ = go r.next in
           match r.enable with
           | None ->
             (* Always enabled: rp.en.(i) stays true forever (set
                below, never cleared), so the eval is a bare store. *)
             rp.Pending.en.(i) <- true;
             if narrow r.reg_width then begin
               let f = as_int cn in
               fun () -> rp.Pending.vi.(i) <- f ()
             end
             else begin
               let f = as_bv wn cn in
               fun () -> rp.Pending.vb.(i) <- f ()
             end
           | Some e ->
             let en = as_bool_fn e in
             if narrow r.reg_width then begin
               let f = as_int cn in
               fun () ->
                 let e = en () in
                 rp.Pending.en.(i) <- e;
                 if e then rp.Pending.vi.(i) <- f ()
             end
             else begin
               let f = as_bv wn cn in
               fun () ->
                 let e = en () in
                 rp.Pending.en.(i) <- e;
                 if e then rp.Pending.vb.(i) <- f ()
             end)
         design.e_regs)
  in
  let reg_commit =
    Array.of_list
      (List.mapi
         (fun i r ->
           let s = Hashtbl.find slot_of r.reg_name in
           if narrow r.reg_width then
             (fun () -> if rp.Pending.en.(i) then ival.(s) <- rp.Pending.vi.(i))
           else fun () ->
             if rp.Pending.en.(i) then bval.(s) <- rp.Pending.vb.(i))
         design.e_regs)
  in
  let reg_inits =
    Array.of_list
      (List.map
         (fun r -> (Hashtbl.find slot_of r.reg_name, r.init))
         design.e_regs)
  in
  (* Memory write ports: each evaluates enable, then address, then data
     (only when in range) into per-port pending cells; the commit phase
     applies them in declaration order, so a later port wins an address
     collision — exactly the interpreter's list order.  A write address
     wider than the fast path is discarded as out-of-range, the same
     clamp Mem_read applies. *)
  let all_writes =
    List.concat_map
      (fun m ->
        List.map (fun wp -> (memories.(Hashtbl.find mem_of m.mem_name), wp))
          m.writes)
      design.e_mems
  in
  let nwrites = List.length all_writes in
  let wp_ = Pending.create nwrites in
  let wr_eval =
    Array.of_list
      (List.mapi
         (fun j (mem, wp) ->
           let en = as_bool_fn wp.wr_enable in
           let wa, caddr, _ = go wp.wr_addr in
           let addr : unit -> int =
             if wa > U.max_width then
               let fa = force caddr in
               fun () ->
                 fa ();
                 max_int
             else as_int caddr
           in
           let wd, cdata, _ = go wp.wr_data in
           match mem.m_store with
           | M_int _ ->
             let fd = as_int cdata in
             fun () ->
               wp_.Pending.en.(j) <- false;
               if en () then begin
                 let i = addr () in
                 if i < mem.m_size then begin
                   wp_.Pending.en.(j) <- true;
                   wp_.Pending.idx.(j) <- i;
                   wp_.Pending.vi.(j) <- fd ()
                 end
               end
           | M_bv _ ->
             let fd = as_bv wd cdata in
             fun () ->
               wp_.Pending.en.(j) <- false;
               if en () then begin
                 let i = addr () in
                 if i < mem.m_size then begin
                   wp_.Pending.en.(j) <- true;
                   wp_.Pending.idx.(j) <- i;
                   wp_.Pending.vb.(j) <- fd ()
                 end
               end)
         all_writes)
  in
  let wr_commit =
    Array.of_list
      (List.mapi
         (fun j (mem, _) ->
           match mem.m_store with
           | M_int arr ->
             fun () ->
               if wp_.Pending.en.(j) then
                 arr.(wp_.Pending.idx.(j)) <- wp_.Pending.vi.(j)
           | M_bv arr ->
             fun () ->
               if wp_.Pending.en.(j) then
                 arr.(wp_.Pending.idx.(j)) <- wp_.Pending.vb.(j))
         all_writes)
  in
  (* Input binder table. *)
  let ports =
    Array.of_list
      (List.map
         (fun p ->
           {
             pb_name = p.port_name;
             pb_width = p.port_width;
             pb_slot = Hashtbl.find slot_of p.port_name;
             pb_narrow = narrow p.port_width;
           })
         design.e_inputs)
  in
  let port_index = Hashtbl.create (max 8 (Array.length ports)) in
  Array.iteri (fun i pb -> Hashtbl.replace port_index pb.pb_name i) ports;
  let c =
    {
      store;
      kinds;
      slot_of;
      memories;
      mem_of;
      schedule;
      out_fns;
      reg_eval;
      reg_commit;
      wr_eval;
      wr_commit;
      reg_inits;
      ports;
      port_index;
      bound_gen = Array.make (Array.length ports) 0;
      given = Array.make (Array.length ports) (Bitvec.zero 1);
      gen = 0;
      eval_gen;
      inputs_valid = false;
      wires_valid = false;
      c_stats =
        { n_slots = n; n_levels; n_folded = !n_folded; n_shared = !n_shared };
    }
  in
  reset c;
  c

let stats c = c.c_stats

(* --- per-cycle kernel --------------------------------------------------- *)

let commit_port c pb (v : Bitvec.t) =
  if Bitvec.width v <> pb.pb_width then
    invalid_arg
      (Printf.sprintf "Sim.cycle: input %s has width %d, expected %d"
         pb.pb_name (Bitvec.width v) pb.pb_width);
  if pb.pb_narrow then c.store.Store.ival.(pb.pb_slot) <- Bitvec.to_int v
  else c.store.Store.bval.(pb.pb_slot) <- v

let rec bind_inputs c inputs =
  next_gen c.eval_gen;
  (* Fast path: inputs listed exactly in port declaration order (the
     overwhelmingly common case for generated drivers) bind with one
     string comparison per port and no table lookups.  Committing as we
     scan matches the interpreter, which also binds port-by-port; on
     the first out-of-order name we fall back to the general binder,
     which rebinds every port from scratch. *)
  let ports = c.ports in
  let n = Array.length ports in
  let rec fast i = function
    | [] ->
      if i = n then c.inputs_valid <- true else bind_inputs_slow c inputs
    | (name, v) :: rest ->
      if i < n && String.equal name ports.(i).pb_name then begin
        commit_port c ports.(i) v;
        fast (i + 1) rest
      end
      else bind_inputs_slow c inputs
  in
  fast 0 inputs

and bind_inputs_slow c inputs =
  c.gen <- c.gen + 1;
  let g = c.gen in
  let unknown = ref [] in
  List.iter
    (fun (name, v) ->
      match Hashtbl.find_opt c.port_index name with
      | None -> unknown := name :: !unknown
      | Some i ->
        (* First occurrence wins, like List.assoc in the interpreter. *)
        if c.bound_gen.(i) <> g then begin
          c.bound_gen.(i) <- g;
          c.given.(i) <- v
        end)
    inputs;
  Array.iteri
    (fun i pb ->
      if c.bound_gen.(i) <> g then
        invalid_arg (Printf.sprintf "Sim.cycle: missing input %s" pb.pb_name);
      let v = c.given.(i) in
      if Bitvec.width v <> pb.pb_width then
        invalid_arg
          (Printf.sprintf "Sim.cycle: input %s has width %d, expected %d"
             pb.pb_name (Bitvec.width v) pb.pb_width))
    c.ports;
  (match List.rev !unknown with
  | name :: _ ->
    invalid_arg (Printf.sprintf "Sim.cycle: no input port named %s" name)
  | [] -> ());
  Array.iteri
    (fun i pb -> Store.write c.store pb.pb_slot c.given.(i))
    c.ports;
  c.inputs_valid <- true

let settle c =
  let sched = c.schedule in
  for i = 0 to Array.length sched - 1 do
    sched.(i) ()
  done;
  c.wires_valid <- true

let outputs c =
  Array.fold_right (fun (name, f) acc -> (name, f ()) :: acc) c.out_fns []

let clock_edge c =
  (* Evaluate every next-state and write port from the settled pre-edge
     values, then commit — registers and memories update together. *)
  Array.iter (fun f -> f ()) c.reg_eval;
  Array.iter (fun f -> f ()) c.wr_eval;
  Array.iter (fun f -> f ()) c.reg_commit;
  Array.iter (fun f -> f ()) c.wr_commit

(* --- observation --------------------------------------------------------- *)

let peek c name =
  match Hashtbl.find_opt c.slot_of name with
  | None -> raise Not_found
  | Some s -> (
    match c.kinds.(s) with
    | K_reg -> Store.read c.store s
    | K_input -> if c.inputs_valid then Store.read c.store s else raise Not_found
    | K_wire ->
      if c.wires_valid then Store.read c.store s
      else
        invalid_arg (Printf.sprintf "Sim.peek: wire %s not settled yet" name))

let peek_mem c name i =
  let mem = c.memories.(Hashtbl.find c.mem_of name) in
  match mem.m_store with
  | M_int arr -> U.to_bitvec ~width:mem.m_width arr.(i)
  | M_bv arr -> arr.(i)
