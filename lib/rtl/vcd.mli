(** Value Change Dump (IEEE 1364 VCD) waveform output.

    Debugging aid for co-simulation mismatches: attach a writer to a
    simulator, call {!sample} once per simulated cycle, and inspect the
    resulting file in any waveform viewer.

    Sampling model: {!sample} must be called immediately after
    {!Sim.cycle}; it records the combinational values the cycle settled
    to and the register values *after* that cycle's clock edge, at
    timestamp [cycles_run - 1].  The timestamp is read from the
    simulator itself, so cycles may be run without sampling and samples
    resumed later — the timeline stays aligned with the cycle count
    (useful for dumping only a window around a failure).  A sample taken
    before the first cycle is clamped to timestamp 0. *)

type t

val create : Buffer.t -> Netlist.elaborated -> Sim.t -> t
(** Write the VCD header (date, timescale, variable declarations for
    every signal of the design) into the buffer and return a writer. *)

val sample : t -> unit
(** Record the current values of all signals; only changes since the last
    sample are emitted, per the VCD format. *)

val to_file : string -> Netlist.elaborated -> Sim.t -> (unit -> unit) * (unit -> unit)
(** [to_file path design sim] is [(sample, close)]: a convenience wrapper
    that buffers samples and writes the file on [close]. *)
