(** Cycle-accurate RTL simulation.

    Two-phase semantics per clock cycle: combinational wires settle (in
    the elaborated topological order), outputs are sampled, then all
    registers and memory write ports update simultaneously from the
    settled values.  This is exactly the single-clock synchronous
    abstraction the paper assumes of "the RTL model" — and the slow,
    detailed end of the experiment C1 speed comparison. *)

type t

type engine = [ `Compiled | `Interp ]
(** [`Compiled] (the default) runs the slot-indexed closure kernel from
    {!Compile}: the netlist is levelized and compiled once at creation,
    then every cycle executes straight-line closures over dense value
    stores.  [`Interp] is the original tree-walking interpreter,
    retained as the differential-testing oracle — the two engines are
    bit-identical in outputs, state, peeks and exceptions. *)

val create : ?engine:engine -> Netlist.elaborated -> t
(** Instantiate a simulator in its reset state (registers at their init
    values, memories at their init contents or zero).  [engine]
    defaults to [`Compiled]. *)

val engine : t -> engine
(** Which kernel this simulator runs on. *)

val reset : t -> unit
(** Return to the reset state. *)

val cycle : t -> (string * Dfv_bitvec.Bitvec.t) list -> (string * Dfv_bitvec.Bitvec.t) list
(** [cycle sim inputs] runs one clock cycle: applies the given input
    values (every input port must be present, with the right width),
    settles combinational logic, returns the output port values sampled
    this cycle, and performs the clock-edge state update.  Raises
    [Invalid_argument] on missing/mis-sized inputs. *)

val peek : t -> string -> Dfv_bitvec.Bitvec.t
(** Value of any signal (input, wire, register) as of the last settled
    cycle.  Registers read their *current* (pre-update at sample time)
    value.  Raises [Not_found] for unknown names. *)

val peek_mem : t -> string -> int -> Dfv_bitvec.Bitvec.t
(** [peek_mem sim mem i] reads word [i] of a memory. *)

val cycles_run : t -> int
(** Number of [cycle] calls since creation / last reset. *)

val run :
  t ->
  inputs:(int -> (string * Dfv_bitvec.Bitvec.t) list) ->
  cycles:int ->
  (string * Dfv_bitvec.Bitvec.t) list array
(** Drive the simulator for [cycles] cycles, computing the input vector
    for each cycle with [inputs]; collects the outputs of every cycle. *)
