module Bitvec = Dfv_bitvec.Bitvec

type t = {
  buf : Buffer.t;
  sim : Sim.t;
  signals : (string * string * int) list; (* name, vcd id, width *)
  last : (string, Bitvec.t) Hashtbl.t;
}

(* VCD identifier codes: printable ASCII 33..126, shortest-first. *)
let id_of_index i =
  let base = 94 in
  let rec go i acc =
    let c = Char.chr (33 + (i mod base)) in
    let acc = String.make 1 c ^ acc in
    if i < base then acc else go ((i / base) - 1) acc
  in
  go i ""

let create buf design sim =
  let names = Netlist.signal_names design in
  let signals =
    List.mapi
      (fun i n -> (n, id_of_index i, design.Netlist.e_signal_width n))
      names
  in
  Buffer.add_string buf "$date reproduction run $end\n";
  Buffer.add_string buf "$version dfv rtl simulator $end\n";
  Buffer.add_string buf "$timescale 1ns $end\n";
  Buffer.add_string buf
    (Printf.sprintf "$scope module %s $end\n" design.Netlist.e_name);
  List.iter
    (fun (n, id, w) ->
      Buffer.add_string buf (Printf.sprintf "$var wire %d %s %s $end\n" w id n))
    signals;
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  { buf; sim; signals; last = Hashtbl.create 64 }

let binary_digits bv =
  let w = Bitvec.width bv in
  String.init w (fun i -> if Bitvec.get bv (w - 1 - i) then '1' else '0')

let sample t =
  (* Timestamp follows the documented [cycles_run - 1] convention.  A
     sample taken before the first cycle would land at -1, which is not
     a legal VCD time: clamp it to 0. *)
  let time = max 0 (Sim.cycles_run t.sim - 1) in
  Buffer.add_string t.buf (Printf.sprintf "#%d\n" time);
  List.iter
    (fun (n, id, w) ->
      match Sim.peek t.sim n with
      | v ->
        let changed =
          match Hashtbl.find_opt t.last n with
          | Some prev -> not (Bitvec.equal prev v)
          | None -> true
        in
        if changed then begin
          Hashtbl.replace t.last n v;
          if w = 1 then
            Buffer.add_string t.buf
              (Printf.sprintf "%c%s\n" (if Bitvec.get v 0 then '1' else '0') id)
          else
            Buffer.add_string t.buf
              (Printf.sprintf "b%s %s\n" (binary_digits v) id)
        end
      | exception (Not_found | Invalid_argument _) ->
        (* Signal not yet settled (e.g. before the first cycle). *)
        ())
    t.signals

let to_file path design sim =
  let buf = Buffer.create 4096 in
  let t = create buf design sim in
  let close () =
    let oc = open_out path in
    Buffer.output_buffer oc buf;
    close_out oc
  in
  ((fun () -> sample t), close)
