(* The shared slot-indexed closure kernel.

   Hoisted out of lib/rtl/compile.ml so that both execution backends —
   the compiled RTL simulator (Rtl.Compile) and the compiled HWIR
   engine (Hwir.Compile) — target the same machinery:

   - [cexp], the two-kinded compiled expression: a native-int producer
     for widths that fit the [Bitvec.Unboxed] fast path (<= 62 bits),
     or a boxed [Bitvec.t] producer for wider values;
   - [Store], the dense slot-indexed dual value store the closures read
     and write (a flat int array for narrow slots, a flat [Bitvec.t]
     array for wide ones);
   - per-generation memoization for structurally shared subtrees;
   - compile-time constant folding that keeps the unfolded closure when
     evaluation raises, so run-time exceptions surface exactly where
     the reference engine would raise them;
   - [Pending], the evaluate-all-then-commit scratch arrays used for
     simultaneous state update (registers, memory write ports);
   - [levelize], the dependency-ordered scheduling pass with cycle
     rejection.

   The kernel is engine-agnostic: nothing here knows about netlists or
   HWIR programs.  Backends keep their own operator compilation and
   their own error vocabulary, and hold the kernel to the contract that
   observable behaviour matches their interpreter bit-for-bit. *)

module Bitvec = Dfv_bitvec.Bitvec
module U = Bitvec.Unboxed

type cexp = CI of (unit -> int) | CB of (unit -> Bitvec.t)

let narrow w = U.fits w

(* Coercions between the two closure kinds; [as_int] requires the
   expression width to fit the fast path. *)
let as_int = function
  | CI f -> f
  | CB f -> fun () -> Bitvec.to_int (f ())

let as_bv w = function
  | CB f -> f
  | CI f -> fun () -> U.to_bitvec ~width:w (f ())

let force = function
  | CI f -> fun () -> ignore (f ())
  | CB f -> fun () -> ignore (f ())

(* --- per-generation memoization ----------------------------------------- *)

type gen = int ref

let new_gen () = ref 0
let next_gen g = incr g

let memoize gen w ce =
  match ce with
  | CI f ->
    let v = ref 0 and g = ref min_int in
    CI
      (fun () ->
        if !g = !gen then !v
        else begin
          let r = f () in
          v := r;
          g := !gen;
          r
        end)
  | CB f ->
    let v = ref (Bitvec.zero w) and g = ref min_int in
    CB
      (fun () ->
        if !g = !gen then !v
        else begin
          let r = f () in
          v := r;
          g := !gen;
          r
        end)

(* --- constant folding ---------------------------------------------------- *)

let try_fold ce =
  (* Evaluate a signal-free expression once at compile time.  [None] if
     it raises (e.g. a constant division by zero): the caller keeps the
     unfolded closure so the exception still surfaces at evaluation
     time, exactly as the reference interpreter would. *)
  try
    Some
      (match ce with
      | CI f ->
        let v = f () in
        CI (fun () -> v)
      | CB f ->
        let v = f () in
        CB (fun () -> v))
  with _ -> None

(* --- dense slot store ---------------------------------------------------- *)

module Store = struct
  type t = {
    ival : int array; (* slots with width <= Unboxed.max_width *)
    bval : Bitvec.t array; (* wider slots *)
    swidth : int array;
  }

  let create swidth =
    let n = Array.length swidth in
    { ival = Array.make n 0; bval = Array.make n (Bitvec.zero 1); swidth }

  let read t s =
    if narrow t.swidth.(s) then U.to_bitvec ~width:t.swidth.(s) t.ival.(s)
    else t.bval.(s)

  let write t s v =
    if narrow t.swidth.(s) then t.ival.(s) <- Bitvec.to_int v
    else t.bval.(s) <- v

  let reader t s =
    let w = t.swidth.(s) in
    if narrow w then
      let ival = t.ival in
      CI (fun () -> ival.(s))
    else
      let bval = t.bval in
      CB (fun () -> bval.(s))

  let assigner t s ce =
    if narrow t.swidth.(s) then begin
      let ival = t.ival in
      let f = as_int ce in
      fun () -> ival.(s) <- f ()
    end
    else begin
      let bval = t.bval in
      let f = as_bv t.swidth.(s) ce in
      fun () -> bval.(s) <- f ()
    end
end

(* --- evaluate-then-commit scratch ---------------------------------------- *)

module Pending = struct
  type t = {
    en : bool array;
    idx : int array;
    vi : int array;
    vb : Bitvec.t array;
  }

  let create n =
    {
      en = Array.make n false;
      idx = Array.make n 0;
      vi = Array.make n 0;
      vb = Array.make n (Bitvec.zero 1);
    }
end

(* --- levelization -------------------------------------------------------- *)

let levelize ~defs ~deps ~on_cycle =
  (* Depth-first topological sort over def->def dependency edges; names
     without a definition (state: inputs, registers, memories) are level
     0 and not scheduled.  Visits run in declaration order so the
     resulting schedule is deterministic. *)
  let tbl = Hashtbl.create 64 in
  List.iter (fun (n, e) -> Hashtbl.replace tbl n e) defs;
  let order = ref [] in
  let levels = Hashtbl.create 64 in
  let visiting = Hashtbl.create 16 in
  let rec visit name =
    match Hashtbl.find_opt levels name with
    | Some l -> l
    | None -> (
      if Hashtbl.mem visiting name then on_cycle name
      else
        match Hashtbl.find_opt tbl name with
        | None -> 0
        | Some e ->
          Hashtbl.add visiting name ();
          let l =
            1 + List.fold_left (fun acc d -> max acc (visit d)) 0 (deps e)
          in
          Hashtbl.remove visiting name;
          Hashtbl.add levels name l;
          order := (name, e, l) :: !order;
          l)
  in
  List.iter (fun (n, _) -> ignore (visit n)) defs;
  let ordered = List.rev !order in
  let n_levels = List.fold_left (fun acc (_, _, l) -> max acc l) 0 ordered in
  (ordered, n_levels)

(* --- compile statistics --------------------------------------------------- *)

type stats = { n_slots : int; n_levels : int; n_folded : int; n_shared : int }
