(** The shared slot-indexed closure kernel.

    The engine-agnostic machinery behind both compiled execution
    backends: {!Rtl.Compile} (netlists) and {!Hwir.Compile} (system-
    level models in the conditioned-C IR).  Each backend interns its
    values into a dense {!Store}, compiles its operators to {!cexp}
    closure chains, and keeps its interpreter as the differential
    oracle; the kernel supplies the representation, the fast/boxed
    split, memoization, constant folding, commit scratch and
    scheduling, and knows nothing about either source language. *)

module Bitvec = Dfv_bitvec.Bitvec

type cexp = CI of (unit -> int) | CB of (unit -> Bitvec.t)
(** A compiled expression: a native-int producer for widths on the
    [Bitvec.Unboxed] fast path (<= 62 bits), or a boxed producer. *)

val narrow : int -> bool
(** [narrow w] — does a [w]-bit value fit the native-int fast path? *)

val as_int : cexp -> unit -> int
(** Coerce to the fast path; the expression width must be narrow. *)

val as_bv : int -> cexp -> unit -> Bitvec.t
(** [as_bv w ce] — coerce to a boxed producer of width [w]. *)

val force : cexp -> unit -> unit
(** Evaluate for effect only. *)

(** {1 Per-generation memoization}

    Structurally shared subtrees compile to one closure whose result is
    cached per evaluation generation.  Sound when expressions are pure
    over state that is stable for the whole generation (the backend
    bumps the generation once per cycle / per run). *)

type gen = int ref

val new_gen : unit -> gen
val next_gen : gen -> unit
val memoize : gen -> int -> cexp -> cexp
(** [memoize gen w ce] — cache [ce]'s value (width [w]) per generation. *)

val try_fold : cexp -> cexp option
(** Evaluate a signal-free expression once at compile time.  [None] if
    evaluation raises (e.g. a constant division by zero), in which case
    the caller must keep the unfolded closure so the exception still
    surfaces at run time, exactly as the reference engine would. *)

(** {1 Dense slot store} *)

module Store : sig
  type t = {
    ival : int array;  (** slots with width <= [Bitvec.Unboxed.max_width] *)
    bval : Bitvec.t array;  (** wider slots *)
    swidth : int array;
  }

  val create : int array -> t
  (** [create swidth] — all-zero store with the given per-slot widths. *)

  val read : t -> int -> Bitvec.t
  val write : t -> int -> Bitvec.t -> unit

  val reader : t -> int -> cexp
  (** A closure reading slot [s], on the matching fast/boxed path. *)

  val assigner : t -> int -> cexp -> unit -> unit
  (** A thunk assigning [ce]'s value into slot [s]. *)
end

(** {1 Evaluate-all-then-commit scratch}

    Flat pending arrays for simultaneous state update: evaluate every
    next-state value against settled pre-update state into the scratch,
    then commit.  [idx] carries a target index for indexed commits
    (memory write ports); plain register commits ignore it. *)

module Pending : sig
  type t = {
    en : bool array;
    idx : int array;
    vi : int array;
    vb : Bitvec.t array;
  }

  val create : int -> t
end

val levelize :
  defs:(string * 'a) list ->
  deps:('a -> string list) ->
  on_cycle:(string -> int) ->
  (string * 'a * int) list * int
(** Depth-first topological sort of [defs] over [deps] edges; names
    without a definition are treated as state (level 0).  Returns the
    schedule in dependency order (deterministic: visits follow
    declaration order) with each definition's level, and the maximum
    level.  [on_cycle] is called with the offending name when a cycle
    is hit and must raise. *)

type stats = {
  n_slots : int;  (** interned slots *)
  n_levels : int;  (** depth of the levelized schedule *)
  n_folded : int;  (** sub-expressions folded to constants at compile *)
  n_shared : int;
      (** repeated subtrees deduplicated by structural CSE, each
          compiled once and memoized per evaluation generation *)
}
