(** Structural fingerprints of verification inputs.

    The journal/resume machinery ({!Dfv_par.Journal}) and the planned
    content-addressed verification cache key results by {e what was
    checked}, not by file names or process state.  These digests are
    pure functions of the structural content of a model, netlist or
    spec: the same design built by the same code path yields the same
    key across processes and runs, so a resumed portfolio can trust a
    replayed verdict.

    Digests are MD5 over a closure-free structural serialization
    ([Marshal] with [No_sharing], so physical sharing cannot perturb
    the bytes).  The two closure-carrying corners are reflected first:
    an elaborated netlist's width oracle is dropped (it is derived from
    the ports/wires/regs already serialized) and a spec's per-cycle
    drive functions are evaluated over the spec's own cycle horizon. *)

val slm : Dfv_hwir.Ast.program -> string
(** Digest of a conditioned-C program. *)

val rtl : Dfv_rtl.Netlist.elaborated -> string
(** Digest of an elaborated netlist's structure: name, ports, wires (in
    schedule order), registers and memories. *)

val spec : Spec.t -> string
(** Digest of a transaction spec with its drive closures evaluated at
    every cycle in [0 .. rtl_cycles - 1]. *)

val pair : slm:Dfv_hwir.Ast.program -> rtl:Dfv_rtl.Netlist.elaborated ->
  spec:Spec.t -> string
(** Combined key for one SLM-vs-RTL equivalence query. *)

val aig : Dfv_aig.Aig.t -> outputs:(string * Dfv_aig.Aig.lit) list -> string
(** Digest of an and-inverter graph through its canonical AIGER text
    form (node arrays are an implementation detail; the AIGER view is
    the structure). *)

val stimulus : seed:int -> vectors:int -> string
(** Digest of a constrained-random stimulus configuration: the seed and
    the vector count determine every transaction drawn, so two runs
    with equal fingerprints replay identical stimulus. *)

val combine : string list -> string
(** Digest of an ordered list of fingerprints/config atoms — the
    request-level key of the {!Dfv_serve} verification cache: combine
    the operation name, the structural fingerprints above, and the
    budget/seed knobs that can change a verdict, and nothing else. *)
