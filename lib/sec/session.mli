(** Incremental equivalence-checking sessions.

    A session is the reusable solving substrate the checker entry points
    drive: it owns one AIG, one SAT solver and one persistent CNF
    encoder, so that every query issued through it — per-output checks,
    per-block checks, successive BMC frames — shares structure, Tseitin
    encoding and learnt clauses with the queries before it.

    The three reuse mechanisms:

    - {e incremental encoding}: {!encode}/{!check} only add clauses for
      AIG nodes not already encoded (counted by [nodes_encoded] vs
      [nodes_reused] in {!stats});
    - {e activation literals}: {!activation}/{!guard}/{!retire} scope a
      query's side constraints so they can be switched off afterwards
      without invalidating the solver state;
    - {e cached prefixes}: {!unroll_from_reset} memoizes unrollings (and
      extends a cached shorter run instead of re-synthesizing it), and
      {!product} returns the existing product machine when called again
      with the same designs and initial states, so BMC to depth [d+1]
      extends the depth-[d] encoding frame by frame.

    Every solve goes through {!check}, which applies the session's
    {!Dfv_sat.Solver.budget} (or a per-call override) — a budgeted query
    always terminates, in the worst case with
    [Unknown]. *)

type t
(** A solving session: one AIG + one solver + one CNF map + counters. *)

type stats = {
  aig_ands : int;  (** AND nodes in the session graph *)
  sat_conflicts : int;
  sat_decisions : int;
  sat_propagations : int;
  sat_clauses : int;  (** problem clauses added *)
  learnts_removed : int;  (** learnt clauses dropped by DB reduction *)
  nodes_encoded : int;  (** AIG nodes Tseitin-encoded (fresh work) *)
  nodes_reused : int;  (** cone visits answered by an existing encoding *)
  unroll_hits : int;  (** unroll/product cache hits *)
  queries : int;  (** {!check} calls issued *)
  unknowns : int;  (** queries that ran out of budget *)
  frame_seconds : float list;  (** per-query solve times, oldest first *)
  wall_seconds : float;  (** since the session was created *)
}

exception Error of string
(** Ill-formed query: undriven input port, output width mismatch. *)

val create : ?graph:Dfv_aig.Aig.t -> ?budget:Dfv_sat.Solver.budget -> unit -> t
(** A fresh session.  [graph] supplies an existing AIG to solve against
    (used by the sweeping fallback, which rewrites the graph); the
    default is an empty one.  [budget] bounds every {!check} unless
    overridden per call (default: unlimited). *)

val graph : t -> Dfv_aig.Aig.t
val solver : t -> Dfv_sat.Solver.t
val budget : t -> Dfv_sat.Solver.budget

val stats : t -> stats
(** Cumulative counters over the session's whole lifetime. *)

(** {1 Encoding and solving} *)

val encode : t -> Dfv_aig.Aig.lit -> Dfv_sat.Lit.t
(** Encode a literal's cone (incrementally) and return its solver
    literal. *)

val assert_lit : t -> Dfv_aig.Aig.lit -> unit
(** Permanently constrain a literal true.  Only sound for session-level
    facts (e.g. blocking a miter already proved unsatisfiable); use
    {!guard} for per-query constraints. *)

val block : t -> Dfv_aig.Aig.lit -> unit
(** [block t l] = [assert_lit t (not l)]: permanently rule a literal
    out.  BMC uses it on each frame miter proved unreachable. *)

val activation : t -> Dfv_sat.Lit.t
(** A fresh activation literal for scoping a query's constraints. *)

val guard : t -> Dfv_sat.Lit.t -> Dfv_aig.Aig.lit -> unit
(** [guard t act l] constrains [l] true only while [act] is assumed:
    pass [act] in {!check}'s [assumptions] to activate, {!retire} it to
    switch the constraint off for the rest of the session. *)

val retire : t -> Dfv_sat.Lit.t -> unit
(** Permanently deactivate an activation literal (asserts its negation,
    letting the solver simplify the guarded clauses away).  Retiring
    invalidates the current model — decode counterexamples first. *)

val check :
  ?assumptions:Dfv_sat.Lit.t list ->
  ?budget:Dfv_sat.Solver.budget ->
  t ->
  Dfv_aig.Aig.lit ->
  Dfv_sat.Solver.outcome
(** [check t l] decides whether [l] is satisfiable under the session's
    clauses and the given assumptions.  Encodes [l] on demand; bounded
    by [budget] (default: the session budget).  Updates the query
    counters and per-query solve times in {!stats}. *)

val model_lit : t -> Dfv_aig.Aig.lit -> bool
(** A literal's value in the most recent [Sat] model; literals whose
    cone was never encoded are don't-cares (false). *)

val model_word : t -> Dfv_aig.Word.w -> Dfv_bitvec.Bitvec.t
(** {!model_lit} across a word. *)

(** {1 Sequential unrolling} *)

val reset_state :
  Dfv_rtl.Netlist.elaborated -> (Dfv_rtl.Synth.state_id * Dfv_aig.Word.w) list
(** Each state element bound to its (constant) initial value. *)

val arbitrary_state :
  t ->
  tag:string ->
  Dfv_rtl.Netlist.elaborated ->
  (Dfv_rtl.Synth.state_id * Dfv_aig.Word.w) list
(** Each state element bound to fresh inputs (for induction steps);
    [tag] disambiguates the input names between the two designs. *)

val unroll_from_reset :
  t ->
  Dfv_rtl.Netlist.elaborated ->
  cycles:int ->
  input_words:(int -> (string * Dfv_aig.Word.w) list) ->
  (string * Dfv_aig.Word.w) list array
(** Unroll the design [cycles] steps from reset inside the session
    graph, feeding inputs from [input_words t]; returns each cycle's
    output words.  Memoized: a repeat call with the same design and
    input words is free, and a call extending a cached shorter run
    re-synthesizes only the new cycles (both count as [unroll_hits]). *)

(** {1 Product machines (RTL vs RTL)} *)

type product
(** A lazily-unrolled product of two designs sharing inputs by port
    name: frame [t] compares every common output at cycle [t]. *)

val product :
  t ->
  a:Dfv_rtl.Netlist.elaborated ->
  b:Dfv_rtl.Netlist.elaborated ->
  initial_a:(Dfv_rtl.Synth.state_id * Dfv_aig.Word.w) list ->
  initial_b:(Dfv_rtl.Synth.state_id * Dfv_aig.Word.w) list ->
  product
(** The product machine of [a] and [b] from the given initial states.
    Cached: the same designs and initial states return the existing
    product with all its frames already built, so a deeper BMC run
    extends the previous one's encoding instead of starting over. *)

val frame_miter : product -> int -> Dfv_aig.Aig.lit
(** The miter of frame [t] ("some output differs at cycle [t]"),
    unrolling further frames on demand.  Raises {!Error} on output
    width mismatches between the designs. *)

val frames : product -> int
(** Number of frames unrolled so far. *)

val frame_inputs : product -> (string * Dfv_aig.Word.w) list array
(** The shared input words of every unrolled frame, oldest first. *)
