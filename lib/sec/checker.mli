(** The sequential equivalence checker.

    Two entry points:

    - {!check_slm_rtl}: the paper's headline flow — an SLM block (a
      conditioned HWIR program, statically elaborated to combinational
      logic) against an RTL block, under a transaction {!Spec.t}.  The
      RTL is unrolled [rtl_cycles] steps from its reset state, inputs
      are tied to the SLM's parameters per the spec, and a SAT query
      decides whether any constraint-satisfying input makes an observed
      output differ.

    - {!check_rtl_rtl}: RTL-vs-RTL sequential equivalence on a product
      machine — bounded model checking from reset with shared inputs,
      plus {!prove_rtl_rtl} for unbounded proofs by k-induction.

    Every entry point is a thin driver over {!Session}: pass [?session]
    to share one solving substrate (solver, AIG, CNF encoding, learnt
    clauses, unroll caches) across many calls, and [?budget] to bound
    each SAT query so no check can hang — a budgeted query that runs out
    returns the {!Unknown} / {!Rtl_unknown} verdict instead.

    All verdicts carry solver statistics so the experiments can report
    effort (time-to-counterexample, conflicts, graph sizes) and reuse
    (nodes re-encoded vs reused, cache hits). *)

type stats = Session.stats = {
  aig_ands : int;
  sat_conflicts : int;
  sat_decisions : int;
  sat_propagations : int;
  sat_clauses : int;
  learnts_removed : int;
  nodes_encoded : int;
  nodes_reused : int;
  unroll_hits : int;
  queries : int;
  unknowns : int;
  frame_seconds : float list;
  wall_seconds : float;
}
(** Re-export of {!Session.stats}.  When a call supplied its own
    session the counters are cumulative over that session's lifetime;
    [wall_seconds] is always the reporting call's own elapsed time. *)

type cex = {
  params : (string * Dfv_hwir.Interp.value) list;
      (** SLM argument values that exhibit the divergence. *)
  slm_result : Dfv_hwir.Interp.value option;
      (** The SLM's output on those arguments ([None] if the interpreter
          rejected them, e.g. division by zero). *)
  failed_checks : (Spec.check * Dfv_bitvec.Bitvec.t) list;
      (** Which observations differ, with the RTL's value (from
          re-simulation of the counterexample). *)
}

type verdict =
  | Equivalent of stats
  | Not_equivalent of cex * stats
  | Unknown of Dfv_sat.Solver.reason * stats
      (** The budget ran out before the query was decided. *)

exception Spec_error of string
(** Malformed specification: undriven RTL input, unknown port or
    parameter, width mismatch, out-of-range cycle, non-bool constraint. *)

val cex_of_params :
  slm:Dfv_hwir.Ast.program ->
  rtl:Dfv_rtl.Netlist.elaborated ->
  spec:Spec.t ->
  (string * Dfv_hwir.Interp.value) list ->
  cex
(** Rebuild a full {!cex} from the SLM argument assignment alone: re-run
    the SLM interpreter for [slm_result] and re-simulate the RTL on the
    concrete stimulus for [failed_checks].  The assignment determines
    the counterexample completely, so a worker process (see
    {!Dfv_par.Portfolio}) can ship just the parameter bitvectors over
    its result pipe and the parent reconstructs the rest here. *)

val check_slm_rtl :
  ?sweep:bool ->
  ?budget:Dfv_sat.Solver.budget ->
  ?session:Session.t ->
  slm:Dfv_hwir.Ast.program ->
  rtl:Dfv_rtl.Netlist.elaborated ->
  spec:Spec.t ->
  unit ->
  verdict
(** Run one SLM-vs-RTL transaction equivalence query.  The SLM program
    must typecheck and be conditioned (statically elaborable); the
    checker raises {!Dfv_hwir.Elab.Not_synthesizable} otherwise — the
    tool-flow consequence of violating the Section 4.3 guidelines.

    Solving is a portfolio: a bounded direct attempt first, then SAT
    sweeping ({!Dfv_aig.Sweep}) plus a query under whatever budget
    remains; [sweep:false] disables the sweeping fallback (for ablation
    measurements), making the direct attempt use the full budget.

    [session] shares the solving substrate with other calls (per-block
    checks of one design reuse its encoding); the default is a private
    one.  [budget] bounds each SAT query, defaulting to the session's
    budget; when it runs out the verdict is {!Unknown}. *)

val check_slm_slm :
  ?sweep:bool ->
  ?budget:Dfv_sat.Solver.budget ->
  ?session:Session.t ->
  a:Dfv_hwir.Ast.program ->
  b:Dfv_hwir.Ast.program ->
  ?constraints:Dfv_hwir.Ast.expr list ->
  unit ->
  verdict
(** Equivalence of two SLM blocks with identical entry signatures —
    the cross-abstraction consistency check (e.g. an IEEE-faithful float
    model against its corner-cutting twin, experiment C5).  Both are
    statically elaborated over one shared set of inputs; [constraints]
    restrict the input space as in {!check_slm_rtl}.  The returned
    counterexample's [slm_result] is model [a]'s output; [failed_checks]
    is empty (there is no RTL to re-simulate) — interpret both models on
    [params] to see the divergence. *)

type rtl_cex = {
  inputs_per_cycle : (string * Dfv_bitvec.Bitvec.t) list array;
  diverging_cycle : int;
  diverging_port : string;
  value_a : Dfv_bitvec.Bitvec.t;
  value_b : Dfv_bitvec.Bitvec.t;
}

type rtl_verdict =
  | Rtl_equivalent_to_bound of int * stats
      (** No divergence within the bound (bounded claim only). *)
  | Rtl_proved of int * stats
      (** Proved equivalent for all time by k-induction at depth k. *)
  | Rtl_not_equivalent of rtl_cex * stats
  | Rtl_unknown of Dfv_sat.Solver.reason * stats
      (** The budget ran out before some frame was decided. *)

val check_rtl_rtl :
  ?budget:Dfv_sat.Solver.budget ->
  ?session:Session.t ->
  a:Dfv_rtl.Netlist.elaborated ->
  b:Dfv_rtl.Netlist.elaborated ->
  bound:int ->
  unit ->
  rtl_verdict
(** BMC on the product machine: both designs start at reset, share input
    values by port name (the designs must have identical input and
    output port lists), and every common output is compared at every
    cycle up to [bound].  Frames are unrolled and solved one at a time —
    a shared [session] caches the product machine, so a later call at a
    deeper bound extends the earlier encoding (and re-verifies already
    blocked frames by unit propagation) instead of starting over. *)

val prove_rtl_rtl :
  ?budget:Dfv_sat.Solver.budget ->
  a:Dfv_rtl.Netlist.elaborated ->
  b:Dfv_rtl.Netlist.elaborated ->
  k:int ->
  unit ->
  rtl_verdict
(** k-induction: base case = BMC to depth [k]; inductive step = from an
    arbitrary pair of states, [k] cycles of output agreement imply
    agreement at cycle [k+1].  Returns [Rtl_proved] on success,
    [Rtl_not_equivalent] on a real (reset-reachable) divergence, and
    [Rtl_equivalent_to_bound] when the induction step fails (the bounded
    claim still holds).  The induction step always runs in a private
    session (its hypothesis clauses are not theorems, so they must not
    leak into a shared one). *)
