(* Incremental equivalence-checking sessions.

   One AIG + one solver + one persistent CNF encoder, shared by every
   query issued through the session.  The checker entry points are thin
   drivers over this module; all the reuse machinery (incremental
   Tseitin encoding, activation literals, unroll/product caches) lives
   here. *)

module Bitvec = Dfv_bitvec.Bitvec
module Aig = Dfv_aig.Aig
module Word = Dfv_aig.Word
module Netlist = Dfv_rtl.Netlist
module Synth = Dfv_rtl.Synth
module Solver = Dfv_sat.Solver
module L = Dfv_sat.Lit

exception Error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt
let now () = Unix.gettimeofday ()

type stats = {
  aig_ands : int;
  sat_conflicts : int;
  sat_decisions : int;
  sat_propagations : int;
  sat_clauses : int;
  learnts_removed : int;
  nodes_encoded : int;
  nodes_reused : int;
  unroll_hits : int;
  queries : int;
  unknowns : int;
  frame_seconds : float list;
  wall_seconds : float;
}

(* A memoized unrolling-from-reset: the input words fed at each cycle,
   the output words produced, and the state words after the last cycle
   (so a longer run can continue where this one stopped). *)
type unroll_entry = {
  u_design : Netlist.elaborated;
  mutable u_inputs : (string * Word.w) list array;
  mutable u_outs : (string * Word.w) list array;
  mutable u_state : (Synth.state_id * Word.w) list;
}

type t = {
  g : Aig.t;
  solver : Solver.t;
  m : Aig.cnf_map;
  budget : Solver.budget;
  created : float;
  mutable queries : int;
  mutable unknowns : int;
  mutable frame_seconds_rev : float list;
  mutable unrolls : unroll_entry list;
  mutable unroll_hits : int;
  mutable products : product list;
}

and product = {
  p_session : t;
  p_a : Netlist.elaborated;
  p_b : Netlist.elaborated;
  p_init_a : (Synth.state_id * Word.w) list;
  p_init_b : (Synth.state_id * Word.w) list;
  mutable p_state_a : (Synth.state_id * Word.w) list;
  mutable p_state_b : (Synth.state_id * Word.w) list;
  mutable p_inputs_rev : (string * Word.w) list list;
  mutable p_miters_rev : Aig.lit list;
  mutable p_frames : int;
}

let create ?graph ?(budget = Solver.no_budget) () =
  let g = match graph with Some g -> g | None -> Aig.create () in
  let solver = Solver.create () in
  {
    g;
    solver;
    m = Aig.encoder g solver;
    budget;
    created = now ();
    queries = 0;
    unknowns = 0;
    frame_seconds_rev = [];
    unrolls = [];
    unroll_hits = 0;
    products = [];
  }

let graph t = t.g
let solver t = t.solver
let budget t = t.budget

let stats t =
  {
    aig_ands = Aig.num_ands t.g;
    sat_conflicts = Solver.nconflicts t.solver;
    sat_decisions = Solver.ndecisions t.solver;
    sat_propagations = Solver.npropagations t.solver;
    sat_clauses = Solver.nclauses t.solver;
    learnts_removed = Solver.nlearnts_removed t.solver;
    nodes_encoded = Aig.fresh_encoded t.m;
    nodes_reused = Aig.reuse_hits t.m;
    unroll_hits = t.unroll_hits;
    queries = t.queries;
    unknowns = t.unknowns;
    frame_seconds = List.rev t.frame_seconds_rev;
    wall_seconds = now () -. t.created;
  }

(* --- encoding and solving -------------------------------------------- *)

let encode t l = Aig.encode t.m l
let assert_lit t l = Solver.add_clause t.solver [ encode t l ]
let block t l = Solver.add_clause t.solver [ L.negate (encode t l) ]
let activation t = L.pos (Solver.new_var t.solver)
let guard t act l = Solver.add_clause t.solver [ L.negate act; encode t l ]
let retire t act = Solver.add_clause t.solver [ L.negate act ]

let m_queries = Dfv_obs.Metrics.counter "sec.queries"
let m_unknowns = Dfv_obs.Metrics.counter "sec.unknowns"
let m_unroll_hits = Dfv_obs.Metrics.counter "sec.unroll_hits"
let m_frame_us = Dfv_obs.Metrics.histogram "sec.frame_us"

let check ?(assumptions = []) ?budget t l =
  let sp = Dfv_obs.Trace.begin_span ~cat:"sec" "sec.frame" in
  let b = match budget with Some b -> b | None -> t.budget in
  let t0 = now () in
  let sl = encode t l in
  let outcome =
    Fun.protect
      ~finally:(fun () -> Dfv_obs.Trace.end_span sp)
      (fun () ->
        Solver.solve_budgeted ~assumptions:(assumptions @ [ sl ]) ~budget:b
          t.solver)
  in
  t.queries <- t.queries + 1;
  Dfv_obs.Metrics.incr m_queries;
  (match outcome with
  | Solver.Unknown _ ->
    t.unknowns <- t.unknowns + 1;
    Dfv_obs.Metrics.incr m_unknowns
  | Solver.Sat | Solver.Unsat -> ());
  let dt = now () -. t0 in
  Dfv_obs.Metrics.observe m_frame_us (int_of_float (dt *. 1e6));
  t.frame_seconds_rev <- dt :: t.frame_seconds_rev;
  outcome

let model_lit t l =
  if l = Aig.false_ then false
  else if l = Aig.true_ then true
  else begin
    match Aig.sat_lit t.m l with
    | sl -> Solver.value t.solver sl
    | exception Not_found -> false
  end

let model_word t (w : Word.w) = Bitvec.of_bits (Array.map (model_lit t) w)

(* --- sequential unrolling -------------------------------------------- *)

let reset_state (d : Netlist.elaborated) =
  List.map (fun (id, _, init) -> (id, Word.const init)) (Synth.state_elements d)

let arbitrary_state t ~tag (d : Netlist.elaborated) =
  List.map
    (fun (id, w, _) ->
      ( id,
        Word.inputs
          ~name:(Printf.sprintf "%s.%s#0" tag (Synth.state_id_name id))
          t.g w ))
    (Synth.state_elements d)

let build_cycle t design ~inputs ~state =
  Synth.build design ~g:t.g
    ~inputs:(fun n ->
      match List.assoc_opt n inputs with
      | Some w -> w
      | None -> fail "input port %s not driven" n)
    ~state:(fun id -> List.assoc id state)

let unroll_from_reset t (design : Netlist.elaborated) ~cycles ~input_words =
  if cycles < 1 then invalid_arg "Session.unroll_from_reset";
  let inputs = Array.init cycles input_words in
  (* [matches n u]: the cached run [u] fed the same first [n] cycles. *)
  let matches n (u : unroll_entry) =
    u.u_design == design
    && Array.length u.u_inputs >= n
    &&
    let ok = ref true in
    for i = 0 to n - 1 do
      if u.u_inputs.(i) <> inputs.(i) then ok := false
    done;
    !ok
  in
  match
    List.find_opt
      (fun u -> Array.length u.u_inputs >= cycles && matches cycles u)
      t.unrolls
  with
  | Some u ->
    t.unroll_hits <- t.unroll_hits + 1;
    Dfv_obs.Metrics.incr m_unroll_hits;
    Array.sub u.u_outs 0 cycles
  | None ->
    (* No covering run; continue the longest cached prefix, if any. *)
    let best =
      List.fold_left
        (fun acc u ->
          let n = Array.length u.u_inputs in
          if n < cycles && matches n u then begin
            match acc with
            | Some prev when Array.length prev.u_inputs >= n -> acc
            | Some _ | None -> Some u
          end
          else acc)
        None t.unrolls
    in
    let start, state0, prev_outs =
      match best with
      | Some u ->
        t.unroll_hits <- t.unroll_hits + 1;
        Dfv_obs.Metrics.incr m_unroll_hits;
        (Array.length u.u_inputs, u.u_state, u.u_outs)
      | None -> (0, reset_state design, [||])
    in
    let outs = Array.make cycles [] in
    Array.blit prev_outs 0 outs 0 start;
    let state = ref state0 in
    for tm = start to cycles - 1 do
      let o, next = build_cycle t design ~inputs:inputs.(tm) ~state:!state in
      outs.(tm) <- o;
      state := next
    done;
    (match best with
    | Some u ->
      u.u_inputs <- inputs;
      u.u_outs <- outs;
      u.u_state <- !state
    | None ->
      t.unrolls <-
        { u_design = design; u_inputs = inputs; u_outs = outs; u_state = !state }
        :: t.unrolls);
    outs

(* --- product machines ------------------------------------------------- *)

let product t ~a ~b ~initial_a ~initial_b =
  match
    List.find_opt
      (fun p ->
        p.p_a == a && p.p_b == b && p.p_init_a = initial_a
        && p.p_init_b = initial_b)
      t.products
  with
  | Some p ->
    t.unroll_hits <- t.unroll_hits + 1;
    Dfv_obs.Metrics.incr m_unroll_hits;
    p
  | None ->
    let p =
      {
        p_session = t;
        p_a = a;
        p_b = b;
        p_init_a = initial_a;
        p_init_b = initial_b;
        p_state_a = initial_a;
        p_state_b = initial_b;
        p_inputs_rev = [];
        p_miters_rev = [];
        p_frames = 0;
      }
    in
    t.products <- p :: t.products;
    p

let extend_frame p =
  let t = p.p_session in
  let tm = p.p_frames in
  let inputs =
    List.map
      (fun q ->
        ( q.Netlist.port_name,
          Word.inputs
            ~name:(Printf.sprintf "%s@%d" q.Netlist.port_name tm)
            t.g q.Netlist.port_width ))
      p.p_a.Netlist.e_inputs
  in
  let outs_a, next_a = build_cycle t p.p_a ~inputs ~state:p.p_state_a in
  let outs_b, next_b = build_cycle t p.p_b ~inputs ~state:p.p_state_b in
  p.p_state_a <- next_a;
  p.p_state_b <- next_b;
  let diffs =
    List.map
      (fun (name, wa) ->
        match List.assoc_opt name outs_b with
        | None ->
          fail "no output port named %s in %s" name p.p_b.Netlist.e_name
        | Some wb ->
          if Array.length wa <> Array.length wb then
            fail "output %s has width %d in %s but %d in %s" name
              (Array.length wa) p.p_a.Netlist.e_name (Array.length wb)
              p.p_b.Netlist.e_name;
          Word.ne t.g wa wb)
      outs_a
  in
  p.p_inputs_rev <- inputs :: p.p_inputs_rev;
  p.p_miters_rev <- Aig.or_list t.g diffs :: p.p_miters_rev;
  p.p_frames <- tm + 1

let frame_miter p tm =
  if tm < 0 then invalid_arg "Session.frame_miter";
  while p.p_frames <= tm do
    extend_frame p
  done;
  List.nth p.p_miters_rev (p.p_frames - 1 - tm)

let frames p = p.p_frames
let frame_inputs p = Array.of_list (List.rev p.p_inputs_rev)
