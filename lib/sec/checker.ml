module Bitvec = Dfv_bitvec.Bitvec
module Aig = Dfv_aig.Aig
module Word = Dfv_aig.Word
module Netlist = Dfv_rtl.Netlist
module Sim = Dfv_rtl.Sim
module Ast = Dfv_hwir.Ast
module Elab = Dfv_hwir.Elab
module Interp = Dfv_hwir.Interp
module Typecheck = Dfv_hwir.Typecheck
module Solver = Dfv_sat.Solver

type stats = Session.stats = {
  aig_ands : int;
  sat_conflicts : int;
  sat_decisions : int;
  sat_propagations : int;
  sat_clauses : int;
  learnts_removed : int;
  nodes_encoded : int;
  nodes_reused : int;
  unroll_hits : int;
  queries : int;
  unknowns : int;
  frame_seconds : float list;
  wall_seconds : float;
}

type cex = {
  params : (string * Interp.value) list;
  slm_result : Interp.value option;
  failed_checks : (Spec.check * Bitvec.t) list;
}

type verdict =
  | Equivalent of stats
  | Not_equivalent of cex * stats
  | Unknown of Solver.reason * stats

exception Spec_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Spec_error m)) fmt

let now () = Unix.gettimeofday ()

(* Scope a session's cumulative stats to one checker call: the counters
   describe the whole session (that is the point of sharing one), but the
   wall clock reported for a verdict is this call's. *)
let stats_of session t0 =
  { (Session.stats session) with wall_seconds = now () -. t0 }

(* Checker calls on a caller-supplied session use the session's budget
   unless the call overrides it. *)
let effective_budget budget session =
  match budget with Some b -> b | None -> Session.budget session

let get_session budget session =
  match session with Some s -> s | None -> Session.create ?budget ()

(* --- SLM vs RTL ------------------------------------------------------- *)

let source_word ~param_shapes ~port ~width (src : Spec.source) : Word.w =
  match src with
  | Spec.Const bv ->
    if Bitvec.width bv <> width then
      fail "constant for port %s has width %d, port is %d" port
        (Bitvec.width bv) width;
    Word.const bv
  | Spec.Param name -> (
    match List.assoc_opt name param_shapes with
    | Some (Elab.Word w) ->
      if Array.length w <> width then
        fail "parameter %s has width %d, port %s is %d" name (Array.length w)
          port width;
      w
    | Some (Elab.Bank _) -> fail "parameter %s is an array (use Param_elem)" name
    | None -> fail "unknown SLM parameter %s" name)
  | Spec.Param_elem (name, i) -> (
    match List.assoc_opt name param_shapes with
    | Some (Elab.Bank bank) ->
      if i < 0 || i >= Array.length bank then
        fail "element %d out of range for parameter %s" i name;
      if Array.length bank.(i) <> width then
        fail "elements of %s have width %d, port %s is %d" name
          (Array.length bank.(i)) port width;
      bank.(i)
    | Some (Elab.Word _) -> fail "parameter %s is a scalar (use Param)" name
    | None -> fail "unknown SLM parameter %s" name)
  | Spec.Param_bits { name; hi; lo } -> (
    match List.assoc_opt name param_shapes with
    | Some (Elab.Word w) ->
      if lo < 0 || hi < lo || hi >= Array.length w then
        fail "bits [%d:%d] out of range for parameter %s" hi lo name;
      if hi - lo + 1 <> width then
        fail "bits [%d:%d] of %s have width %d, port %s is %d" hi lo name
          (hi - lo + 1) port width;
      Word.select w ~hi ~lo
    | Some (Elab.Bank _) -> fail "parameter %s is an array" name
    | None -> fail "unknown SLM parameter %s" name)

let constraint_words slm ~g param_shapes constraints =
  List.mapi
    (fun i expr ->
      let fn =
        match Ast.find_func slm slm.Ast.entry with
        | Some f -> f
        | None -> fail "SLM entry %s not found" slm.Ast.entry
      in
      let cname = Printf.sprintf "__constraint_%d" i in
      let wrapper =
        {
          Ast.funcs =
            slm.Ast.funcs
            @ [ {
                  Ast.fname = cname;
                  params = fn.Ast.params;
                  ret = Ast.bool_ty;
                  locals = [];
                  body = [ Ast.Return expr ];
                } ];
          entry = cname;
        }
      in
      (match Typecheck.check wrapper with
      | () -> ()
      | exception Typecheck.Type_error m -> fail "constraint %d: %s" i m);
      match Elab.apply wrapper ~g (List.map snd param_shapes) with
      | Elab.Word w when Array.length w = 1 -> w.(0)
      | Elab.Word _ | Elab.Bank _ -> fail "constraint %d is not boolean" i)
    constraints


(* Deciding the miter.

   Portfolio: first attempt the query directly with a bounded conflict
   budget — cheap miters (and most refutable ones) finish immediately.
   If the budget runs out, SAT-sweep the graph (merging internally
   equivalent nodes so structural differences between the two sides
   collapse locally) and re-solve in a throwaway session on the swept
   graph, under whatever budget remains.  [sweep:false] disables the
   fallback, for ablation measurements.

   The query's side constraints are guarded by an activation literal so
   they evaporate from the session afterwards; the model (if any) is
   decoded into SLM parameter values before the literal is retired,
   since retiring invalidates the model. *)
let direct_budget = 5_000

let decide_miter ~sweep ~budget session param_shapes violated cstrs =
  let decode_params sn ps =
    List.map
      (fun (name, shape) ->
        let v =
          match shape with
          | Elab.Word w -> Interp.Vint (Session.model_word sn w)
          | Elab.Bank bank ->
            Interp.Varr (Array.map (Session.model_word sn) bank)
        in
        (name, v))
      ps
  in
  let run sn b ps v cs =
    let act = Session.activation sn in
    List.iter (Session.guard sn act) cs;
    let outcome = Session.check ~assumptions:[ act ] ~budget:b sn v in
    let params =
      match outcome with
      | Solver.Sat -> Some (decode_params sn ps)
      | Solver.Unsat | Solver.Unknown _ -> None
    in
    Session.retire sn act;
    (outcome, params)
  in
  let deadline =
    match budget.Solver.max_seconds with
    | None -> None
    | Some s -> Some (now () +. s)
  in
  let first_budget =
    if not sweep then budget
    else
      {
        budget with
        Solver.max_conflicts =
          Some
            (match budget.Solver.max_conflicts with
            | Some n -> min n direct_budget
            | None -> direct_budget);
      }
  in
  match run session first_budget param_shapes violated cstrs with
  | (Solver.Unknown r, _) when sweep ->
    (* Retry on the swept graph only with budget left to spend. *)
    let retry_budget =
      let conflicts_left =
        match (r, budget.Solver.max_conflicts) with
        | Solver.Conflict_limit, Some n -> n > direct_budget
        | (Solver.Conflict_limit | Solver.Time_limit), _ -> true
      in
      if not conflicts_left then None
      else begin
        match deadline with
        | None -> Some budget
        | Some d ->
          let left = d -. now () in
          if left <= 0. then None
          else Some { budget with Solver.max_seconds = Some left }
      end
    in
    (match retry_budget with
    | None -> (Solver.Unknown r, None, session)
    | Some b2 ->
      let g2, tr = Dfv_aig.Sweep.fraig (Session.graph session) in
      let tr_shape = function
        | Elab.Word w -> Elab.Word (Array.map tr w)
        | Elab.Bank b -> Elab.Bank (Array.map (Array.map tr) b)
      in
      let ps2 = List.map (fun (n, sh) -> (n, tr_shape sh)) param_shapes in
      let sn2 = Session.create ~graph:g2 ~budget:b2 () in
      let outcome, params = run sn2 b2 ps2 (tr violated) (List.map tr cstrs) in
      (outcome, params, sn2))
  | outcome, params -> (outcome, params, session)

(* Rebuild a full counterexample from the SLM argument assignment alone:
   re-run the SLM interpreter for the expected result and re-simulate
   the RTL on the concrete stimulus for the actual diverging values.
   The assignment fully determines the cex, which lets a portfolio
   worker ship only [params] (plain bitvectors) over its result pipe
   and the parent reconstruct the rest here. *)
let cex_of_params ~slm ~rtl ~(spec : Spec.t) params =
  let port_width p =
    match
      List.find_opt (fun q -> q.Netlist.port_name = p) rtl.Netlist.e_inputs
    with
    | Some q -> q.Netlist.port_width
    | None -> fail "no RTL input port named %s" p
  in
  let slm_result =
    match Interp.run slm (List.map snd params) with
    | v -> Some v
    | exception Interp.Runtime_error _ -> None
  in
  (* Re-simulate the RTL on the concrete stimulus to report the actual
     diverging values. *)
  let sim = Sim.create rtl in
  let concrete_source (src : Spec.source) width =
    match src with
    | Spec.Const bv -> bv
    | Spec.Param name -> (
      match List.assoc name params with
      | Interp.Vint bv -> bv
      | Interp.Varr _ -> assert false)
    | Spec.Param_elem (name, i) -> (
      match List.assoc name params with
      | Interp.Varr a -> a.(i)
      | Interp.Vint _ -> assert false)
    | Spec.Param_bits { name; hi; lo } -> (
      match List.assoc name params with
      | Interp.Vint bv ->
        ignore width;
        Bitvec.select bv ~hi ~lo
      | Interp.Varr _ -> assert false)
  in
  let rtl_outputs = Array.make spec.rtl_cycles [] in
  for t = 0 to spec.rtl_cycles - 1 do
    let ins =
      List.map
        (fun (port, drive) ->
          let width = port_width port in
          let src =
            match drive with
            | Spec.Hold bv -> Spec.Const bv
            | Spec.At f -> f t
          in
          (port, concrete_source src width))
        spec.drives
    in
    rtl_outputs.(t) <- Sim.cycle sim ins
  done;
  let expected_value (c : Spec.check) =
    match (c.expect, slm_result) with
    | Spec.Result, Some (Interp.Vint bv) -> Some bv
    | Spec.Result_elem i, Some (Interp.Varr a) -> Some a.(i)
    | _, _ -> None
  in
  let failed_checks =
    List.filter_map
      (fun (c : Spec.check) ->
        let rtl_v = List.assoc c.rtl_port rtl_outputs.(c.at_cycle) in
        match expected_value c with
        | Some e when Bitvec.equal e rtl_v -> None
        | Some _ | None -> Some (c, rtl_v))
      spec.checks
  in
  { params; slm_result; failed_checks }

let check_slm_rtl ?(sweep = true) ?budget ?session ~slm ~rtl ~(spec : Spec.t)
    () =
  let t0 = now () in
  Typecheck.check slm;
  if spec.rtl_cycles < 1 then fail "rtl_cycles must be >= 1";
  let session = get_session budget session in
  let budget = effective_budget budget session in
  let g = Session.graph session in
  let param_shapes, result = Elab.elaborate slm ~g in
  (* Validate the drive list covers the RTL inputs exactly. *)
  let port_width p =
    match
      List.find_opt (fun q -> q.Netlist.port_name = p) rtl.Netlist.e_inputs
    with
    | Some q -> q.Netlist.port_width
    | None -> fail "no RTL input port named %s" p
  in
  List.iter
    (fun p ->
      match List.assoc_opt p.Netlist.port_name spec.drives with
      | Some _ -> ()
      | None -> fail "RTL input %s is not driven by the spec" p.Netlist.port_name)
    rtl.Netlist.e_inputs;
  List.iter (fun (p, _) -> ignore (port_width p)) spec.drives;
  let input_words t =
    List.map
      (fun (port, drive) ->
        let width = port_width port in
        let src =
          match drive with
          | Spec.Hold bv -> Spec.Const bv
          | Spec.At f -> f t
        in
        (port, source_word ~param_shapes ~port ~width src))
      spec.drives
  in
  let outs =
    try
      Session.unroll_from_reset session rtl ~cycles:spec.rtl_cycles
        ~input_words
    with Session.Error m -> raise (Spec_error m)
  in
  (* Expected words from the SLM result. *)
  let expected_word (c : Spec.check) width =
    match (c.expect, result) with
    | Spec.Result, Elab.Word w ->
      if Array.length w <> width then
        fail "SLM result has width %d, RTL port %s is %d" (Array.length w)
          c.rtl_port width;
      w
    | Spec.Result_elem i, Elab.Bank bank ->
      if i < 0 || i >= Array.length bank then
        fail "result element %d out of range" i;
      if Array.length bank.(i) <> width then
        fail "SLM result elements have width %d, RTL port %s is %d"
          (Array.length bank.(i)) c.rtl_port width;
      bank.(i)
    | Spec.Result, Elab.Bank _ ->
      fail "SLM result is an array (use Result_elem)"
    | Spec.Result_elem _, Elab.Word _ ->
      fail "SLM result is a scalar (use Result)"
  in
  if spec.checks = [] then fail "spec has no output checks";
  let diffs =
    List.map
      (fun (c : Spec.check) ->
        if c.at_cycle < 0 || c.at_cycle >= spec.rtl_cycles then
          fail "check on %s at cycle %d outside transaction of %d cycles"
            c.rtl_port c.at_cycle spec.rtl_cycles;
        match List.assoc_opt c.rtl_port outs.(c.at_cycle) with
        | None -> fail "no RTL output port named %s" c.rtl_port
        | Some w -> Word.ne g w (expected_word c (Array.length w)))
      spec.checks
  in
  let violated = Aig.or_list g diffs in
  let cstrs = constraint_words slm ~g param_shapes spec.constraints in
  let outcome, params, dsession =
    decide_miter ~sweep ~budget session param_shapes violated cstrs
  in
  match (outcome, params) with
  | Solver.Unsat, _ -> Equivalent (stats_of dsession t0)
  | Solver.Unknown r, _ -> Unknown (r, stats_of dsession t0)
  | Solver.Sat, None -> assert false
  | Solver.Sat, Some params ->
    Not_equivalent (cex_of_params ~slm ~rtl ~spec params, stats_of dsession t0)

(* --- SLM vs SLM -------------------------------------------------------- *)

let check_slm_slm ?(sweep = true) ?budget ?session ~a ~b ?(constraints = [])
    () =
  let t0 = now () in
  Typecheck.check a;
  Typecheck.check b;
  let sig_of (p : Ast.program) =
    match Ast.find_func p p.Ast.entry with
    | Some f -> (f.Ast.params, f.Ast.ret)
    | None -> fail "entry %s not found" p.Ast.entry
  in
  if sig_of a <> sig_of b then
    fail "entry signatures of the two SLMs differ";
  let session = get_session budget session in
  let budget = effective_budget budget session in
  let g = Session.graph session in
  let param_shapes, result_a = Elab.elaborate a ~g in
  let result_b = Elab.apply b ~g (List.map snd param_shapes) in
  let violated =
    match (result_a, result_b) with
    | Elab.Word wa, Elab.Word wb -> Word.ne g wa wb
    | Elab.Bank ba, Elab.Bank bb ->
      if Array.length ba <> Array.length bb then
        fail "result banks have different sizes";
      Aig.or_list g
        (Array.to_list (Array.map2 (fun wa wb -> Word.ne g wa wb) ba bb))
    | Elab.Word _, Elab.Bank _ | Elab.Bank _, Elab.Word _ ->
      fail "result shapes differ"
  in
  let cstrs = constraint_words a ~g param_shapes constraints in
  let outcome, params, dsession =
    decide_miter ~sweep ~budget session param_shapes violated cstrs
  in
  match (outcome, params) with
  | Solver.Unsat, _ -> Equivalent (stats_of dsession t0)
  | Solver.Unknown r, _ -> Unknown (r, stats_of dsession t0)
  | Solver.Sat, None -> assert false
  | Solver.Sat, Some params ->
    let slm_result =
      match Interp.run a (List.map snd params) with
      | v -> Some v
      | exception Interp.Runtime_error _ -> None
    in
    Not_equivalent
      ({ params; slm_result; failed_checks = [] }, stats_of dsession t0)

(* --- RTL vs RTL -------------------------------------------------------- *)

type rtl_cex = {
  inputs_per_cycle : (string * Bitvec.t) list array;
  diverging_cycle : int;
  diverging_port : string;
  value_a : Bitvec.t;
  value_b : Bitvec.t;
}

type rtl_verdict =
  | Rtl_equivalent_to_bound of int * stats
  | Rtl_proved of int * stats
  | Rtl_not_equivalent of rtl_cex * stats
  | Rtl_unknown of Solver.reason * stats

let check_port_compatibility (a : Netlist.elaborated) (b : Netlist.elaborated) =
  let sig_of d =
    List.sort compare
      (List.map (fun p -> (p.Netlist.port_name, p.Netlist.port_width)) d.Netlist.e_inputs)
  in
  if sig_of a <> sig_of b then
    fail "designs %s and %s have different input ports" a.Netlist.e_name
      b.Netlist.e_name;
  let outs d = List.sort compare (List.map fst d.Netlist.e_outputs) in
  if outs a <> outs b then
    fail "designs %s and %s have different output ports" a.Netlist.e_name
      b.Netlist.e_name

let find_divergence a b inputs_per_cycle =
  let sim_a = Sim.create a and sim_b = Sim.create b in
  let n = Array.length inputs_per_cycle in
  let rec go t =
    if t >= n then None
    else begin
      let outs_a = Sim.cycle sim_a inputs_per_cycle.(t) in
      let outs_b = Sim.cycle sim_b inputs_per_cycle.(t) in
      let diff =
        List.find_opt
          (fun (name, va) -> not (Bitvec.equal va (List.assoc name outs_b)))
          outs_a
      in
      match diff with
      | Some (name, va) -> Some (t, name, va, List.assoc name outs_b)
      | None -> go (t + 1)
    end
  in
  go 0

let check_rtl_rtl ?budget ?session ~a ~b ~bound () =
  let t0 = now () in
  if bound < 1 then fail "bound must be >= 1";
  check_port_compatibility a b;
  let session = get_session budget session in
  let budget = effective_budget budget session in
  let product =
    try
      Session.product session ~a ~b
        ~initial_a:(Session.reset_state a)
        ~initial_b:(Session.reset_state b)
    with Session.Error m -> raise (Spec_error m)
  in
  let miter t =
    try Session.frame_miter product t
    with Session.Error m -> raise (Spec_error m)
  in
  let rec frames t =
    if t >= bound then Rtl_equivalent_to_bound (bound, stats_of session t0)
    else begin
      let lit = miter t in
      match Session.check ~budget session lit with
      | Solver.Unknown r -> Rtl_unknown (r, stats_of session t0)
      | Solver.Unsat ->
        (* This frame can never diverge (given earlier frames were also
           checked); block it and move on.  The blocking clause is a
           theorem of the product encoding, so it is sound to keep even
           when the session is shared across calls. *)
        Session.block session lit;
        frames (t + 1)
      | Solver.Sat ->
        let all = Session.frame_inputs product in
        let concrete =
          Array.map
            (fun inputs ->
              List.map (fun (n, w) -> (n, Session.model_word session w)) inputs)
            (Array.sub all 0 (min bound (Array.length all)))
        in
        (match find_divergence a b concrete with
        | Some (t, port, va, vb) ->
          Rtl_not_equivalent
            ( {
                inputs_per_cycle = concrete;
                diverging_cycle = t;
                diverging_port = port;
                value_a = va;
                value_b = vb;
              },
              stats_of session t0 )
        | None ->
          (* The model satisfied the miter symbolically, so simulation
             must reproduce it; not doing so is a checker bug. *)
          fail "internal: SAT model did not re-simulate to a divergence")
    end
  in
  frames 0

(* Fold a base-case verdict's counters into an induction verdict's. *)
let add_stats (b : stats) (s : stats) =
  {
    s with
    aig_ands = s.aig_ands + b.aig_ands;
    sat_conflicts = s.sat_conflicts + b.sat_conflicts;
    sat_decisions = s.sat_decisions + b.sat_decisions;
    sat_propagations = s.sat_propagations + b.sat_propagations;
    sat_clauses = s.sat_clauses + b.sat_clauses;
    learnts_removed = s.learnts_removed + b.learnts_removed;
    nodes_encoded = s.nodes_encoded + b.nodes_encoded;
    nodes_reused = s.nodes_reused + b.nodes_reused;
    unroll_hits = s.unroll_hits + b.unroll_hits;
    queries = s.queries + b.queries;
    unknowns = s.unknowns + b.unknowns;
    frame_seconds = b.frame_seconds @ s.frame_seconds;
  }

let prove_rtl_rtl ?budget ~a ~b ~k () =
  let t0 = now () in
  if k < 1 then fail "k must be >= 1";
  (* Base case. *)
  match check_rtl_rtl ?budget ~a ~b ~bound:k () with
  | (Rtl_not_equivalent _ | Rtl_unknown _) as v -> v
  | Rtl_proved _ -> assert false
  | Rtl_equivalent_to_bound (_, base_stats) -> (
    (* Inductive step: arbitrary initial states, k agreeing cycles imply
       agreement at cycle k (0-based: frames 0..k-1 agree => frame k
       agrees).  The induction hypotheses are not theorems of the
       product machine, so this step runs in its own session rather
       than a shared one. *)
    check_port_compatibility a b;
    let session = Session.create ?budget () in
    let budget = Session.budget session in
    let product =
      Session.product session ~a ~b
        ~initial_a:(Session.arbitrary_state session ~tag:"a" a)
        ~initial_b:(Session.arbitrary_state session ~tag:"b" b)
    in
    let miter t =
      try Session.frame_miter product t
      with Session.Error m -> raise (Spec_error m)
    in
    for t = 0 to k - 1 do
      Session.block session (miter t)
    done;
    match Session.check ~budget session (miter k) with
    | Solver.Unsat ->
      Rtl_proved (k, add_stats base_stats (stats_of session t0))
    | Solver.Sat ->
      (* Induction failed: only the bounded claim survives. *)
      Rtl_equivalent_to_bound (k, stats_of session t0)
    | Solver.Unknown r -> Rtl_unknown (r, stats_of session t0))

(* --- observability ---------------------------------------------------- *)

(* Span-wrapped shadows of the public entry points, so every checker call
   shows up as one "sec.*" span enclosing its per-frame [Session.check]
   spans. *)

let check_slm_rtl ?sweep ?budget ?session ~slm ~rtl ~spec () =
  Dfv_obs.Trace.with_span ~cat:"sec" "sec.check_slm_rtl" (fun () ->
      check_slm_rtl ?sweep ?budget ?session ~slm ~rtl ~spec ())

let check_slm_slm ?sweep ?budget ?session ~a ~b ?constraints () =
  Dfv_obs.Trace.with_span ~cat:"sec" "sec.check_slm_slm" (fun () ->
      check_slm_slm ?sweep ?budget ?session ~a ~b ?constraints ())

let check_rtl_rtl ?budget ?session ~a ~b ~bound () =
  Dfv_obs.Trace.with_span ~cat:"sec" "sec.check_rtl_rtl" (fun () ->
      check_rtl_rtl ?budget ?session ~a ~b ~bound ())

let prove_rtl_rtl ?budget ~a ~b ~k () =
  Dfv_obs.Trace.with_span ~cat:"sec" "sec.prove_rtl_rtl" (fun () ->
      prove_rtl_rtl ?budget ~a ~b ~k ())
