module Netlist = Dfv_rtl.Netlist

(* No_sharing forces a purely structural serialization: two values that
   are structurally equal digest identically even when one run shares
   subtrees the other copies.  All serialized types are immutable
   algebraic data (bitvectors included), so the bytes are a stable
   function of structure alone. *)
let digest v =
  Digest.to_hex (Digest.string (Marshal.to_string v [ Marshal.No_sharing ]))

let slm (p : Dfv_hwir.Ast.program) = digest p

let rtl (e : Netlist.elaborated) =
  (* Everything but the derived width oracle (a closure). *)
  digest
    (e.Netlist.e_name, e.Netlist.e_inputs, e.Netlist.e_outputs,
     e.Netlist.e_wires, e.Netlist.e_regs, e.Netlist.e_mems)

let spec (s : Spec.t) =
  (* A drive is a function of the cycle; over the spec's own bounded
     horizon its full behaviour is the value table, which is plain
     data. *)
  let drives =
    List.map
      (fun (port, d) ->
        match d with
        | Spec.Hold bv -> (port, Either.Left bv)
        | Spec.At f ->
          (port, Either.Right (List.init (max s.Spec.rtl_cycles 1) f)))
      s.Spec.drives
  in
  digest (s.Spec.rtl_cycles, drives, s.Spec.checks, s.Spec.constraints)

let pair ~slm:p ~rtl:e ~spec:s = digest (slm p, rtl e, spec s)

let aig g ~outputs =
  (* The AIG carries internal arrays whose layout depends on build
     order; the AIGER text form is the canonical structural view. *)
  digest (Dfv_aig.Aiger.to_string g ~outputs)

let stimulus ~seed ~vectors = digest ("stimulus", seed, vectors)

let combine parts = digest ("combine", parts)
