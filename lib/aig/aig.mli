(** And-Inverter Graphs.

    The formal-netlist representation used by the sequential equivalence
    checker: every combinational function is reduced to two-input AND
    gates and inverters, with structural hashing so that syntactically
    identical subfunctions share nodes.  Literals follow the AIGER
    convention: literal [2*n] is node [n], literal [2*n+1] is its
    complement; node 0 is the constant, so literal 0 is [false] and
    literal 1 is [true]. *)

type t
(** A mutable AIG under construction. *)

type lit = int
(** An AIG literal (node index with complement bit). *)

val create : unit -> t
(** An empty graph (just the constant node). *)

val false_ : lit
val true_ : lit

val input : ?name:string -> t -> lit
(** Allocate a fresh primary input and return its positive literal. *)

val num_inputs : t -> int
(** Number of primary inputs allocated so far. *)

val num_ands : t -> int
(** Number of AND nodes (a size measure for experiment reporting). *)

val input_name : t -> int -> string
(** [input_name g i] is the name of input [i] (a generated one if the
    input was anonymous). *)

val not_ : lit -> lit
(** Complement a literal (free: flips the complement bit). *)

val and_ : t -> lit -> lit -> lit
(** AND with constant folding ([x & 0 = 0], [x & 1 = x], [x & x = x],
    [x & ~x = 0]) and structural hashing. *)

val or_ : t -> lit -> lit -> lit
val xor_ : t -> lit -> lit -> lit
val implies : t -> lit -> lit -> lit

val mux : t -> sel:lit -> lit -> lit -> lit
(** [mux g ~sel a b] is [a] when [sel] is true, else [b]. *)

val and_list : t -> lit list -> lit
val or_list : t -> lit list -> lit

val is_const : lit -> bool
(** Whether a literal is the constant true or false. *)

val eval : t -> (int -> bool) -> lit -> bool
(** [eval g env l] evaluates [l] with primary input [i] set to [env i].
    Cost is linear in the graph; use {!simulate} for many literals. *)

val simulate : t -> bool array -> bool array
(** [simulate g inputs] evaluates the whole graph under the given input
    assignment and returns the value of every *node* (indexed by node,
    not literal).  Read literal [l] as
    [values.(l lsr 1) <> (l land 1 = 1)]. *)

val lit_of_node_value : bool array -> lit -> bool
(** Read a literal's value out of a {!simulate} result. *)

val simulate_words : t -> int array -> int array
(** Bit-parallel simulation: input [k] carries a 62-bit pattern word;
    the result gives each node's 62 evaluations packed the same way.
    This powers the candidate detection of SAT sweeping. *)

val node_fanins : t -> int -> (lit * lit) option
(** [node_fanins g n] is [Some (a, b)] when node [n] is an AND of
    literals [a] and [b]; [None] for the constant and inputs. *)

val node_input : t -> int -> int option
(** [node_input g n] is [Some k] when node [n] is primary input [k]. *)

val num_nodes : t -> int
(** Total nodes including the constant and inputs; node indices are
    [0 .. num_nodes - 1] in topological order. *)

(** {1 SAT bridge} *)

type cnf_map
(** A mapping from AIG literals to solver literals produced by
    {!to_solver}. *)

val to_solver : t -> Dfv_sat.Solver.t -> lit list -> cnf_map
(** [to_solver g s roots] adds Tseitin clauses for the cones of [roots]
    to the solver and returns the literal map.  Incremental: calling it
    again with more roots on the same [cnf_map]'s solver reuses the
    variables already allocated (pass the same graph and solver; a fresh
    map is returned that shares the encoding). *)

val sat_lit : cnf_map -> lit -> Dfv_sat.Lit.t
(** Solver literal for an encoded AIG literal.  Raises [Not_found] if the
    literal's node was not in any encoded cone. *)

val encoder : t -> Dfv_sat.Solver.t -> cnf_map
(** An empty mapping for incremental use: encode literals on demand with
    {!encode}.  The sequential equivalence checker uses one encoder per
    session so successive bounded queries share learnt clauses. *)

val encode : cnf_map -> lit -> Dfv_sat.Lit.t
(** Encode the cone of a literal (if not already encoded) and return its
    solver literal. *)

(** {2 Reuse counters}

    A [cnf_map] is persistent across solves: repeated {!encode} calls
    add clauses only for nodes not yet encoded.  The counters below
    quantify that reuse — the incremental-session statistic the
    equivalence checker reports (nodes re-encoded vs. reused). *)

val fresh_encoded : cnf_map -> int
(** Number of AIG nodes this map has Tseitin-encoded (variables
    allocated and clauses added). *)

val reuse_hits : cnf_map -> int
(** Number of cone visits answered by an already-present encoding — both
    sharing within one {!encode} call and hits from earlier calls. *)

val encoded_nodes : cnf_map -> int
(** Number of distinct AIG nodes currently encoded (= {!fresh_encoded}). *)

val check_sat :
  ?assumptions:lit list -> t -> lit -> [ `Sat of bool array | `Unsat ]
(** [check_sat g l] decides whether some input assignment makes [l] true;
    on [`Sat], the witness assigns each primary input (indexed by input
    number).  One-shot convenience wrapper over {!to_solver}. *)

val equivalent : t -> lit -> lit -> [ `Yes | `No of bool array ]
(** [equivalent g a b] checks functional equivalence of two literals by
    deciding the miter [a xor b]; [`No w] carries a distinguishing input
    assignment. *)
