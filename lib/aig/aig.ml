(* And-Inverter Graphs with structural hashing.

   Node array layout: node 0 is the constant-false node.  Each node is
   either an input (fanins (-1, input_number)) or an AND of two literals
   (fanin0, fanin1) with fanin0 >= fanin1, both strictly smaller than the
   node's own positive literal — so node order is a topological order. *)

type lit = int

type node =
  | Const
  | Input of int (* input number *)
  | And of lit * lit

type t = {
  mutable nodes : node array;
  mutable n : int; (* number of nodes in use *)
  strash : (int * int, int) Hashtbl.t; (* (fanin0, fanin1) -> node id *)
  mutable names : string array;
  mutable ninputs : int;
}

let false_ : lit = 0
let true_ : lit = 1

let create () =
  {
    nodes = Array.make 64 Const;
    n = 1;
    strash = Hashtbl.create 256;
    names = Array.make 16 "";
    ninputs = 0;
  }

let push_node g node =
  if g.n = Array.length g.nodes then begin
    let a = Array.make (2 * g.n) Const in
    Array.blit g.nodes 0 a 0 g.n;
    g.nodes <- a
  end;
  g.nodes.(g.n) <- node;
  g.n <- g.n + 1;
  g.n - 1

let input ?name g =
  let k = g.ninputs in
  if k = Array.length g.names then begin
    let a = Array.make (2 * k) "" in
    Array.blit g.names 0 a 0 k;
    g.names <- a
  end;
  g.names.(k) <- (match name with Some s -> s | None -> Printf.sprintf "i%d" k);
  g.ninputs <- k + 1;
  let id = push_node g (Input k) in
  id * 2

let num_inputs g = g.ninputs

let num_ands g =
  let c = ref 0 in
  for i = 0 to g.n - 1 do
    match g.nodes.(i) with And _ -> incr c | Const | Input _ -> ()
  done;
  !c

let input_name g i =
  if i < 0 || i >= g.ninputs then invalid_arg "Aig.input_name";
  g.names.(i)

let not_ l = l lxor 1
let is_const l = l lsr 1 = 0

let and_ g a b =
  (* Order fanins for canonicity. *)
  let a, b = if a >= b then (a, b) else (b, a) in
  if b = false_ then false_
  else if b = true_ then a
  else if a = b then a
  else if a = not_ b then false_
  else begin
    match Hashtbl.find_opt g.strash (a, b) with
    | Some id -> id * 2
    | None ->
      let id = push_node g (And (a, b)) in
      Hashtbl.add g.strash (a, b) id;
      id * 2
  end

let or_ g a b = not_ (and_ g (not_ a) (not_ b))
let implies g a b = or_ g (not_ a) b

let xor_ g a b =
  (* a^b = (a|b) & ~(a&b); structural hashing shares subterms. *)
  and_ g (or_ g a b) (not_ (and_ g a b))

let mux g ~sel a b = or_ g (and_ g sel a) (and_ g (not_ sel) b)

let and_list g = List.fold_left (and_ g) true_
let or_list g = List.fold_left (or_ g) false_

(* --- simulation ----------------------------------------------------- *)

let lit_of_node_value values l = values.(l lsr 1) <> (l land 1 = 1)

let simulate g inputs =
  let values = Array.make g.n false in
  for i = 0 to g.n - 1 do
    match g.nodes.(i) with
    | Const -> values.(i) <- false
    | Input k ->
      values.(i) <- (if k < Array.length inputs then inputs.(k) else false)
    | And (a, b) ->
      values.(i) <- lit_of_node_value values a && lit_of_node_value values b
  done;
  values

let eval g env l =
  let inputs = Array.init g.ninputs env in
  lit_of_node_value (simulate g inputs) l

let word_mask = (1 lsl 62) - 1

let simulate_words g inputs =
  let values = Array.make g.n 0 in
  for i = 0 to g.n - 1 do
    match g.nodes.(i) with
    | Const -> values.(i) <- 0
    | Input k ->
      values.(i) <-
        (if k < Array.length inputs then inputs.(k) land word_mask else 0)
    | And (a, b) ->
      let va =
        let v = values.(a lsr 1) in
        if a land 1 = 1 then lnot v land word_mask else v
      in
      let vb =
        let v = values.(b lsr 1) in
        if b land 1 = 1 then lnot v land word_mask else v
      in
      values.(i) <- va land vb
  done;
  values

let node_fanins g n =
  match g.nodes.(n) with
  | And (a, b) -> Some (a, b)
  | Const | Input _ -> None

let node_input g n =
  match g.nodes.(n) with Input k -> Some k | Const | And _ -> None

let num_nodes g = g.n

(* --- Tseitin conversion ---------------------------------------------- *)

module S = Dfv_sat.Solver
module L = Dfv_sat.Lit

type cnf_map = {
  solver : S.t;
  vars : (int, L.t) Hashtbl.t;
  graph : t;
  mutable fresh_nodes : int;  (* nodes Tseitin-encoded by this map *)
  mutable reuse_hits : int;   (* cone visits answered by an existing encoding *)
}

let sat_lit m l =
  let v = Hashtbl.find m.vars (l lsr 1) in
  if l land 1 = 1 then L.negate v else v

let fresh_encoded m = m.fresh_nodes
let reuse_hits m = m.reuse_hits
let encoded_nodes m = Hashtbl.length m.vars

let encode_cone m root =
  (* Iterative DFS over the cone of [root]; nodes are numbered in
     topological order so a simple upward sweep also works, but DFS keeps
     the encoding restricted to the cone of influence.  A reuse hit is
     any edge of the traversal answered by an existing encoding — a
     shared node inside this cone, or the boundary with cones encoded by
     earlier queries. *)
  let g = m.graph and s = m.solver in
  let seen = Hashtbl.create 64 in
  let stack = ref [ root lsr 1 ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | id :: rest ->
      if Hashtbl.mem m.vars id then begin
        m.reuse_hits <- m.reuse_hits + 1;
        stack := rest
      end
      else begin
        match g.nodes.(id) with
        | Const ->
          Hashtbl.add m.vars id (S.false_lit s);
          m.fresh_nodes <- m.fresh_nodes + 1;
          stack := rest
        | Input _ ->
          Hashtbl.add m.vars id (L.pos (S.new_var s));
          m.fresh_nodes <- m.fresh_nodes + 1;
          stack := rest
        | And (a, b) when not (Hashtbl.mem seen id) ->
          (* First visit: count already-encoded children as reuse, push
             the rest, and come back to build once they are done. *)
          Hashtbl.add seen id ();
          let ia = a lsr 1 and ib = b lsr 1 in
          let need_a = not (Hashtbl.mem m.vars ia) in
          let need_b = not (Hashtbl.mem m.vars ib) in
          if not need_a then m.reuse_hits <- m.reuse_hits + 1;
          if not need_b then m.reuse_hits <- m.reuse_hits + 1;
          stack :=
            (if need_a then [ ia ] else [])
            @ (if need_b then [ ib ] else [])
            @ !stack
        | And (a, b) ->
          (* Revisit: the children are encoded now (they sat above us on
             the stack). *)
          let n = L.pos (S.new_var s) in
          let la = sat_lit m a and lb = sat_lit m b in
          (* n <-> la & lb *)
          S.add_clause s [ L.negate n; la ];
          S.add_clause s [ L.negate n; lb ];
          S.add_clause s [ n; L.negate la; L.negate lb ];
          Hashtbl.add m.vars id n;
          m.fresh_nodes <- m.fresh_nodes + 1;
          stack := rest
      end
  done

let encoder g s =
  {
    solver = s;
    vars = Hashtbl.create 1024;
    graph = g;
    fresh_nodes = 0;
    reuse_hits = 0;
  }

let to_solver g s roots =
  let m = encoder g s in
  List.iter (encode_cone m) roots;
  m

let encode m l =
  encode_cone m l;
  sat_lit m l

(* --- one-shot checks -------------------------------------------------- *)

let witness_of_model m =
  let g = m.graph in
  let w = Array.make g.ninputs false in
  for id = 0 to g.n - 1 do
    match g.nodes.(id) with
    | Input k ->
      (match Hashtbl.find_opt m.vars id with
      | Some sl -> w.(k) <- S.value m.solver sl
      | None -> () (* input outside the encoded cone: don't-care *))
    | Const | And _ -> ()
  done;
  w

let check_sat ?(assumptions = []) g l =
  if l = false_ then `Unsat
  else begin
    let s = S.create () in
    let m = to_solver g s (l :: assumptions) in
    S.add_clause s [ sat_lit m l ];
    List.iter (fun a -> S.add_clause s [ sat_lit m a ]) assumptions;
    match S.solve s with
    | S.Sat -> `Sat (witness_of_model m)
    | S.Unsat -> `Unsat
  end

let equivalent g a b =
  let miter = xor_ g a b in
  match check_sat g miter with
  | `Unsat -> `Yes
  | `Sat w -> `No w
