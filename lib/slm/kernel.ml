(* Discrete-event kernel with SystemC semantics.

   Thread processes are effect-handled coroutines: [wait_*] performs the
   [Wait] effect; the handler packages the continuation as a resumption
   closure that the scheduler re-runs when the trigger fires.

   A delta cycle is: evaluate (drain the runnable queue), update (run
   requested update callbacks), delta-notify (move waiters of delta-
   notified events to the runnable queue).  Time advances only when a
   delta cycle ends with nothing runnable. *)

type trigger = On_event of event_rec | On_any of event_rec list | On_time of int

and outcome = Finished | Suspended of trigger * (unit -> outcome)

and resumption = { proc_name : string; mutable fired : bool; resume : unit -> outcome }
(* [fired] guards multi-event waits: the first firing event claims the
   resumption; the others find it spent. *)

and event_rec = {
  ev_name : string;
  kernel : t;
  mutable waiters : waiter list;
}

and waiter = Resume of resumption | Run_method of method_rec

and method_rec = { m_name : string; body : unit -> unit }

and t = {
  mutable time : int;
  runnable : (string * (unit -> outcome)) Queue.t;
  mutable updates : (unit -> unit) list;
  mutable delta_pending : event_rec list;
  (* Timed notifications: time -> events to fire. *)
  timed : (int, event_rec list) Hashtbl.t;
  mutable timed_times : int list; (* sorted ascending, lazily maintained *)
  mutable deltas : int;
  mutable activations : int;
  mutable stopping : bool;
  mutable blocked : (string, unit) Hashtbl.t;
  (* Watchdog state: absolute counter thresholds armed by [run], and a
     ring of recently activated process names so a trip can say *who*
     was spinning, not just that something was. *)
  mutable wd_max_deltas : int option;
  mutable wd_max_activations : int option;
  recent : string array;
  mutable recent_n : int;
}

type event = event_rec

exception Not_in_thread

type watchdog = {
  max_deltas : int option;
  max_activations : int option;
  expect_idle : bool;
}

let watchdog ?max_deltas ?max_activations ?(expect_idle = false) () =
  (match max_deltas with
  | Some n when n < 1 -> invalid_arg "Kernel.watchdog: max_deltas must be >= 1"
  | _ -> ());
  (match max_activations with
  | Some n when n < 1 ->
    invalid_arg "Kernel.watchdog: max_activations must be >= 1"
  | _ -> ());
  { max_deltas; max_activations; expect_idle }

type trip_kind = Delta_limit | Activation_limit | Starvation

type trip = {
  trip_kind : trip_kind;
  trip_time : int;
  trip_deltas : int;
  trip_activations : int;
  trip_processes : string list;
}

exception Watchdog_trip of trip

let create () =
  {
    time = 0;
    runnable = Queue.create ();
    updates = [];
    delta_pending = [];
    timed = Hashtbl.create 64;
    timed_times = [];
    deltas = 0;
    activations = 0;
    stopping = false;
    blocked = Hashtbl.create 16;
    wd_max_deltas = None;
    wd_max_activations = None;
    recent = Array.make 8 "";
    recent_n = 0;
  }

let now k = k.time
let delta_count k = k.deltas
let activations k = k.activations

let event k name = { ev_name = name; kernel = k; waiters = [] }

(* --- effects ---------------------------------------------------------- *)

type _ Effect.t += Wait : trigger -> unit Effect.t

let make_runner body : unit -> outcome =
 fun () ->
  Effect.Deep.match_with body ()
    {
      retc = (fun () -> Finished);
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Wait trg ->
            Some
              (fun (kont : (a, outcome) Effect.Deep.continuation) ->
                Suspended (trg, fun () -> Effect.Deep.continue kont ()))
          | _ -> None);
    }

let wait_event e =
  try Effect.perform (Wait (On_event e)) with Effect.Unhandled _ -> raise Not_in_thread

let wait_any es =
  match es with
  | [] -> invalid_arg "Kernel.wait_any: empty event list"
  | _ -> (
    try Effect.perform (Wait (On_any es)) with Effect.Unhandled _ -> raise Not_in_thread)

let wait_time _k d =
  if d < 1 then invalid_arg "Kernel.wait_time: delay must be >= 1";
  try Effect.perform (Wait (On_time d)) with Effect.Unhandled _ -> raise Not_in_thread

(* --- scheduling ------------------------------------------------------- *)

let schedule_timed k at ev =
  (match Hashtbl.find_opt k.timed at with
  | Some evs -> Hashtbl.replace k.timed at (ev :: evs)
  | None ->
    Hashtbl.add k.timed at [ ev ];
    k.timed_times <- List.merge compare [ at ] k.timed_times);
  ()

let notify e =
  let k = e.kernel in
  if not (List.memq e k.delta_pending) then
    k.delta_pending <- e :: k.delta_pending

let notify_in e d =
  if d < 1 then invalid_arg "Kernel.notify_in: delay must be >= 1";
  let k = e.kernel in
  schedule_timed k (k.time + d) e

let request_update k f = k.updates <- f :: k.updates

(* A private per-thread timeout event used by On_time. *)
let register_waiter k (trg : trigger) (r : resumption) =
  Hashtbl.replace k.blocked r.proc_name ();
  match trg with
  | On_event e -> e.waiters <- e.waiters @ [ Resume r ]
  | On_any es -> List.iter (fun e -> e.waiters <- e.waiters @ [ Resume r ]) es
  | On_time d ->
    let e = event k (r.proc_name ^ ".timeout") in
    e.waiters <- [ Resume r ];
    schedule_timed k (k.time + d) e

let enqueue_runnable k name fn = Queue.push (name, fn) k.runnable

let thread k ~name body = enqueue_runnable k name (make_runner body)

let method_ k ~name ~sensitive body =
  let m = { m_name = name; body } in
  List.iter (fun e -> e.waiters <- e.waiters @ [ Run_method m ]) sensitive;
  (* Initial run at simulation start. *)
  enqueue_runnable k name (fun () ->
      body ();
      Finished)

let wait_delta k =
  let e = event k "delta" in
  notify e;
  wait_event e

let stop k = k.stopping <- true

let fire k e =
  let ws = e.waiters in
  (* Method waiters stay registered (static sensitivity); resumptions are
     one-shot. *)
  e.waiters <-
    List.filter (function Run_method _ -> true | Resume _ -> false) ws;
  List.iter
    (fun w ->
      match w with
      | Run_method m ->
        enqueue_runnable k m.m_name (fun () ->
            m.body ();
            Finished)
      | Resume r ->
        if not r.fired then begin
          r.fired <- true;
          Hashtbl.remove k.blocked r.proc_name;
          enqueue_runnable k r.proc_name r.resume
        end)
    ws

(* Most recently activated process names, most recent first, deduped. *)
let recent_names k =
  let cap = Array.length k.recent in
  let n = min k.recent_n cap in
  let acc = ref [] in
  for i = 0 to n - 1 do
    let name = k.recent.((k.recent_n - 1 - i) mod cap) in
    if not (List.mem name !acc) then acc := !acc @ [ name ]
  done;
  !acc

let m_deltas = Dfv_obs.Metrics.counter "slm.kernel.deltas"
let m_activations = Dfv_obs.Metrics.counter "slm.kernel.activations"
let m_trips = Dfv_obs.Metrics.counter "slm.kernel.watchdog_trips"

let trip k kind procs =
  Dfv_obs.Metrics.incr m_trips;
  Dfv_obs.Trace.instant ~cat:"slm"
    ~args:
      [ ( "kind",
          Dfv_obs.Json.String
            (match kind with
            | Delta_limit -> "delta-limit"
            | Activation_limit -> "activation-limit"
            | Starvation -> "starvation") );
        ("time", Dfv_obs.Json.Int k.time) ]
    "slm.watchdog_trip";
  raise
    (Watchdog_trip
       {
         trip_kind = kind;
         trip_time = k.time;
         trip_deltas = k.deltas;
         trip_activations = k.activations;
         trip_processes = procs;
       })

let eval_phase k =
  while not (Queue.is_empty k.runnable) do
    let name, fn = Queue.pop k.runnable in
    k.activations <- k.activations + 1;
    Dfv_obs.Metrics.incr m_activations;
    k.recent.(k.recent_n mod Array.length k.recent) <- name;
    k.recent_n <- k.recent_n + 1;
    (match k.wd_max_activations with
    | Some lim when k.activations > lim ->
      trip k Activation_limit (recent_names k)
    | _ -> ());
    match fn () with
    | Finished -> ()
    | Suspended (trg, resume) ->
      register_waiter k trg { proc_name = name; fired = false; resume }
  done

let update_phase k =
  let us = List.rev k.updates in
  k.updates <- [];
  List.iter (fun f -> f ()) us

let delta_notify_phase k =
  let evs = List.rev k.delta_pending in
  k.delta_pending <- [];
  List.iter (fire k) evs

let run_deltas k =
  let continue_ = ref true in
  while !continue_ do
    k.deltas <- k.deltas + 1;
    Dfv_obs.Metrics.incr m_deltas;
    (match k.wd_max_deltas with
    | Some lim when k.deltas > lim -> trip k Delta_limit (recent_names k)
    | _ -> ());
    eval_phase k;
    update_phase k;
    delta_notify_phase k;
    if k.stopping then begin
      Queue.clear k.runnable;
      continue_ := false
    end
    else if Queue.is_empty k.runnable then continue_ := false
  done

let blocked_threads k =
  Hashtbl.fold (fun name () acc -> name :: acc) k.blocked []
  |> List.sort compare

let run ?watchdog:wd ?until k =
  Dfv_obs.Trace.with_span ~cat:"slm" "slm.run" @@ fun () ->
  (match wd with
  | Some w ->
    k.wd_max_deltas <- Option.map (fun n -> k.deltas + n) w.max_deltas;
    k.wd_max_activations <-
      Option.map (fun n -> k.activations + n) w.max_activations
  | None ->
    k.wd_max_deltas <- None;
    k.wd_max_activations <- None);
  run_deltas k;
  let continue_ = ref (not k.stopping) in
  while !continue_ do
    match k.timed_times with
    | [] -> continue_ := false
    | t :: rest ->
      let past_limit = match until with Some u -> t > u | None -> false in
      if past_limit then continue_ := false
      else begin
        k.timed_times <- rest;
        let evs = try Hashtbl.find k.timed t with Not_found -> [] in
        Hashtbl.remove k.timed t;
        k.time <- t;
        List.iter (fire k) (List.rev evs);
        run_deltas k;
        if k.stopping then continue_ := false
      end
  done;
  match wd with
  | Some { expect_idle = true; _ }
    when (not k.stopping) && k.timed_times = [] -> (
    match blocked_threads k with
    | [] -> ()
    | procs -> trip k Starvation procs)
  | _ -> ()
