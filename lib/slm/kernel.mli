(** The system-level modeling kernel.

    A discrete-event simulation kernel with SystemC semantics: evaluate /
    update phases, delta cycles, timed event notification, thread
    processes (coroutines that [wait]) and method processes (re-run on
    sensitivity).  This is the substrate on which the repository's SLMs
    are written — the role SystemC (or a home-grown C++ kernel) plays in
    the paper.

    Thread processes are OCaml 5 effect handlers: [wait] performs an
    effect that suspends the coroutine until its trigger fires, giving
    SLM authors the straight-line style of [SC_THREAD].

    Determinism: runnable processes execute in a fixed (registration,
    then FIFO) order, so simulations are exactly reproducible. *)

type t
(** A simulation kernel. *)

type event
(** A notification channel processes can wait on. *)

val create : unit -> t
(** A fresh kernel at time 0 with no processes. *)

val now : t -> int
(** Current simulation time (abstract ticks; designs typically treat one
    tick as 1 ns). *)

val delta_count : t -> int
(** Total delta cycles executed — a cost measure for experiment C1. *)

val activations : t -> int
(** Total process activations executed — the kernel-load measure used by
    the speed experiments. *)

(** {1 Events} *)

val event : t -> string -> event
(** Create a named event. *)

val notify : event -> unit
(** Delta notification: waiters run in the next delta cycle. *)

val notify_in : event -> int -> unit
(** [notify_in e d] fires [e] at time [now + d] ([d >= 1]).  Multiple
    pending timed notifications all fire (simplified from SystemC's
    single-pending-notification rule; documented divergence, none of the
    bundled models depend on it). *)

(** {1 Processes} *)

val thread : t -> name:string -> (unit -> unit) -> unit
(** Register a thread process.  It starts when the simulation runs
    (time 0, first delta) and may call the [wait_*] functions. *)

val method_ : t -> name:string -> sensitive:event list -> (unit -> unit) -> unit
(** Register a method process: runs once at start, then re-runs whenever
    any event in its sensitivity list fires.  Must not call [wait_*]. *)

(** {1 Waiting (inside thread processes only)} *)

val wait_event : event -> unit
(** Suspend until the event fires. *)

val wait_any : event list -> unit
(** Suspend until any of the events fires. *)

val wait_time : t -> int -> unit
(** Suspend for [d >= 1] time units. *)

val wait_delta : t -> unit
(** Suspend for one delta cycle (SystemC [wait(SC_ZERO_TIME)]). *)

exception Not_in_thread
(** Raised when a [wait_*] function is called outside a thread process. *)

(** {1 Update phase (for channel implementors)} *)

val request_update : t -> (unit -> unit) -> unit
(** Schedule a callback for the update phase of the current delta cycle.
    Used by {!Signal} and {!Fifo} to implement request/update semantics;
    ordinary models never need it. *)

(** {1 Watchdogs}

    Guards against runaway models: an SLM with a delta-notification
    cycle (process A delta-notifies B, B delta-notifies A) spins
    forever without advancing time, and a mutated model can deadlock
    with every thread parked on an event nobody will fire.  A watchdog
    bounds a single {!run} call and reports the {e named} culprit
    processes when it trips, instead of hanging the whole campaign. *)

type watchdog

val watchdog :
  ?max_deltas:int -> ?max_activations:int -> ?expect_idle:bool -> unit -> watchdog
(** [max_deltas] / [max_activations] bound the delta cycles / process
    activations executed by one [run] call (both [>= 1]).  With
    [expect_idle] set, a run that ends with threads still blocked and no
    timed activity pending trips with [Starvation] — use it when the
    model is supposed to drain completely. *)

type trip_kind = Delta_limit | Activation_limit | Starvation

type trip = {
  trip_kind : trip_kind;
  trip_time : int;  (** simulation time at the trip *)
  trip_deltas : int;  (** kernel-lifetime delta count at the trip *)
  trip_activations : int;  (** kernel-lifetime activation count *)
  trip_processes : string list;
      (** for [Delta_limit]/[Activation_limit]: recently activated
          processes, most recent first; for [Starvation]: the blocked
          thread names *)
}

exception Watchdog_trip of trip

(** {1 Running} *)

val run : ?watchdog:watchdog -> ?until:int -> t -> unit
(** Run the simulation until no activity remains, or just past [until]
    (events at times [<= until] are processed).  May be called repeatedly
    to advance further.  Returning with {!blocked_threads} non-empty is
    normal (e.g. a consumer parked on an empty FIFO at end of input).
    When a [watchdog] is given its limits apply to this call only and
    {!Watchdog_trip} is raised on violation. *)

val blocked_threads : t -> string list
(** Names of thread processes still suspended on an event — the
    diagnostic for distinguishing "finished" from "starved" models. *)

val stop : t -> unit
(** Request the simulation to stop at the end of the current delta cycle
    (SystemC [sc_stop]). *)
