type protocol_error = { channel : string; detail : string }

exception Protocol_violation of protocol_error

type ('req, 'rsp) kind =
  | Untimed of ('req -> 'rsp)
  | Loosely_timed of { kernel : Kernel.t; latency : int; f : 'req -> 'rsp }
  | Queued of {
      kernel : Kernel.t;
      requests : ('req * ('rsp, string) result option ref * Kernel.event) Fifo.t;
    }

type ('req, 'rsp) target = {
  kind : ('req, 'rsp) kind;
  t_name : string;
  mutable count : int;
}

let untimed ?(name = "tlm.untimed") f =
  { kind = Untimed f; t_name = name; count = 0 }

let loosely_timed ?(name = "tlm.lt") kernel ~latency f =
  if latency < 1 then invalid_arg "Tlm.loosely_timed: latency must be >= 1";
  { kind = Loosely_timed { kernel; latency; f }; t_name = name; count = 0 }

let queued kernel ~name ~depth ~service_time f =
  if service_time < 1 then invalid_arg "Tlm.queued: service_time must be >= 1";
  let requests = Fifo.create kernel (name ^ ".q") ~capacity:depth in
  Kernel.thread kernel ~name:(name ^ ".server") (fun () ->
      while true do
        let req, cell, done_ev = Fifo.read requests in
        Kernel.wait_time kernel service_time;
        (* A faulting computation must not kill the server thread (and
           with it the kernel run): record the failure in the response
           cell so the *initiator* sees a protocol violation. *)
        (match f req with
        | rsp -> cell := Some (Ok rsp)
        | exception e -> cell := Some (Error (Printexc.to_string e)));
        Kernel.notify done_ev
      done);
  { kind = Queued { kernel; requests }; t_name = name; count = 0 }

let violation t detail =
  raise (Protocol_violation { channel = t.t_name; detail })

let transport t req =
  t.count <- t.count + 1;
  match t.kind with
  | Untimed f -> f req
  | Loosely_timed { kernel; latency; f } ->
    Kernel.wait_time kernel latency;
    f req
  | Queued { kernel; requests } ->
    let cell = ref None in
    let done_ev = Kernel.event kernel (t.t_name ^ ".done") in
    Fifo.write requests (req, cell, done_ev);
    Kernel.wait_event done_ev;
    (match !cell with
    | Some (Ok rsp) -> rsp
    | Some (Error m) -> violation t ("server computation raised: " ^ m)
    | None -> violation t "server signalled completion before writing a response")

let transport_result t req =
  match transport t req with
  | rsp -> Ok rsp
  | exception Protocol_violation e -> Error e

let transactions t = t.count
