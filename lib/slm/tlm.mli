(** Transaction-level modeling sockets.

    Section 4.4 of the paper: separate the computational kernel from the
    communication so the same functional core can be reused from the
    untimed architectural model down to the verification model — "the
    primary recommendation of transaction-based modeling".

    A {!target} wraps a computation behind a blocking-transport
    interface; initiators call {!transport}.  Three constructors give the
    three abstraction levels:

    - {!untimed}: a pure function call — zero simulation time;
    - {!loosely_timed}: the same function plus a latency annotation —
      the caller's thread waits, but there is no per-cycle activity;
    - {!queued}: a server thread drains requests through a FIFO, one per
      [service_time] — contention and back-pressure become visible.

    All three run the {e same} computation function, which is exactly the
    reuse the paper prescribes. *)

type ('req, 'rsp) target

type protocol_error = { channel : string; detail : string }
(** A broken transport contract on the named channel: the server
    signalled completion without writing a response, or the server
    computation itself raised. *)

exception Protocol_violation of protocol_error

val untimed : ?name:string -> ('req -> 'rsp) -> ('req, 'rsp) target

val loosely_timed :
  ?name:string -> Kernel.t -> latency:int -> ('req -> 'rsp) -> ('req, 'rsp) target
(** Each transport call consumes [latency] time units of the calling
    thread. *)

val queued :
  Kernel.t ->
  name:string ->
  depth:int ->
  service_time:int ->
  ('req -> 'rsp) ->
  ('req, 'rsp) target
(** A server process with a request FIFO of [depth]: transports block
    when the queue is full, and each request takes [service_time] units
    to serve, in order.  Must be created before the simulation runs. *)

val transport : ('req, 'rsp) target -> 'req -> 'rsp
(** Blocking transport.  For {!loosely_timed} and {!queued} targets this
    must be called from a thread process.  Raises {!Protocol_violation}
    when a queued server signals completion without a response (e.g. its
    computation raised) — a typed error the caller can record instead of
    a bare failure. *)

val transport_result :
  ('req, 'rsp) target -> 'req -> ('rsp, protocol_error) result
(** Like {!transport} but returns the protocol violation as a value. *)

val transactions : ('req, 'rsp) target -> int
(** Number of transports completed — the utilization counter for
    architectural studies. *)
