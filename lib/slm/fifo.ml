type 'a t = {
  fifo_name : string;
  cap : int;
  items : 'a Queue.t;
  written_ev : Kernel.event;
  read_ev : Kernel.event;
  depth_gauge : Dfv_obs.Metrics.gauge;
}

(* Occupancy distribution across every FIFO, sampled after each
   successful write; the per-FIFO gauge additionally tracks the
   high-water mark of each individual channel. *)
let m_depth = Dfv_obs.Metrics.histogram "slm.fifo.depth"

let create k name ~capacity =
  if capacity < 1 then invalid_arg "Fifo.create: capacity must be >= 1";
  {
    fifo_name = name;
    cap = capacity;
    items = Queue.create ();
    written_ev = Kernel.event k (name ^ ".written");
    read_ev = Kernel.event k (name ^ ".read");
    depth_gauge = Dfv_obs.Metrics.gauge ("slm.fifo." ^ name ^ ".depth");
  }

let length f = Queue.length f.items
let capacity f = f.cap
let name f = f.fifo_name
let data_written f = f.written_ev
let data_read f = f.read_ev

let try_write f v =
  if Queue.length f.items >= f.cap then false
  else begin
    Queue.push v f.items;
    let depth = Queue.length f.items in
    Dfv_obs.Metrics.set_gauge f.depth_gauge depth;
    Dfv_obs.Metrics.observe m_depth depth;
    Kernel.notify f.written_ev;
    true
  end

let try_read f =
  match Queue.pop f.items with
  | v ->
    Dfv_obs.Metrics.set_gauge f.depth_gauge (Queue.length f.items);
    Kernel.notify f.read_ev;
    Some v
  | exception Queue.Empty -> None

let rec write f v =
  if try_write f v then ()
  else begin
    Kernel.wait_event f.read_ev;
    write f v
  end

let rec read f =
  match try_read f with
  | Some v -> v
  | None ->
    Kernel.wait_event f.written_ev;
    read f
