module Bitvec = Dfv_bitvec.Bitvec

type policy = Exact_cycle | In_order | Out_of_order

type mismatch = {
  at_cycle : int;
  expected : Bitvec.t option;
  observed : Bitvec.t;
  tag : Bitvec.t option;
}

type report = {
  matched : int;
  mismatches : mismatch list;
  unconsumed : int;
  latencies : int list;
}

type expectation = { e_cycle : int; e_value : Bitvec.t; e_tag : Bitvec.t option }

type t = {
  policy : policy;
  pending : expectation Queue.t;  (* In_order / Exact_cycle *)
  by_tag : (string, expectation Queue.t) Hashtbl.t;  (* Out_of_order *)
  mutable matched : int;
  mutable mismatches : mismatch list;
  mutable latencies : int list;
  mutable value_cov : (Dfv_obs.Coverage.point * (Bitvec.t -> int)) option;
  mutable latency_cov : Dfv_obs.Coverage.point option;
}

let m_matches = Dfv_obs.Metrics.counter "cosim.scoreboard.matches"
let m_mismatches = Dfv_obs.Metrics.counter "cosim.scoreboard.mismatches"

let create policy =
  {
    policy;
    pending = Queue.create ();
    by_tag = Hashtbl.create 16;
    matched = 0;
    mismatches = [];
    latencies = [];
    value_cov = None;
    latency_cov = None;
  }

let attach_value_coverage t point ~of_value =
  t.value_cov <- Some (point, of_value)

let attach_latency_coverage t point = t.latency_cov <- Some point

let tag_key tag = Bitvec.to_string tag

let expect ?tag t ~cycle value =
  let e = { e_cycle = cycle; e_value = value; e_tag = tag } in
  match t.policy with
  | Exact_cycle | In_order -> Queue.push e t.pending
  | Out_of_order -> (
    match tag with
    | None -> invalid_arg "Scoreboard.expect: Out_of_order requires a tag"
    | Some tag ->
      let key = tag_key tag in
      let q =
        match Hashtbl.find_opt t.by_tag key with
        | Some q -> q
        | None ->
          let q = Queue.create () in
          Hashtbl.add t.by_tag key q;
          q
      in
      Queue.push e q)

let record_match t e ~cycle =
  t.matched <- t.matched + 1;
  Dfv_obs.Metrics.incr m_matches;
  let latency = cycle - e.e_cycle in
  (match t.latency_cov with
  | Some p -> Dfv_obs.Coverage.sample p latency
  | None -> ());
  t.latencies <- latency :: t.latencies

let record_mismatch t ~cycle ~expected ~observed ~tag =
  Dfv_obs.Metrics.incr m_mismatches;
  Dfv_obs.Trace.instant ~cat:"cosim"
    ~args:
      [ ("cycle", Dfv_obs.Json.Int cycle);
        ("observed", Dfv_obs.Json.String (Bitvec.to_string observed));
        ( "expected",
          match expected with
          | Some e -> Dfv_obs.Json.String (Bitvec.to_string e)
          | None -> Dfv_obs.Json.Null ) ]
    "cosim.mismatch";
  t.mismatches <- { at_cycle = cycle; expected; observed; tag } :: t.mismatches

let observe ?tag t ~cycle value =
  (match t.value_cov with
  | Some (p, of_value) -> Dfv_obs.Coverage.sample p (of_value value)
  | None -> ());
  match t.policy with
  | Exact_cycle -> (
    match Queue.peek_opt t.pending with
    | Some e when e.e_cycle = cycle && Bitvec.equal e.e_value value ->
      ignore (Queue.pop t.pending);
      record_match t e ~cycle
    | Some e ->
      (* Either the value differs or the cycle is off: both are
         mismatches under the exact-cycle discipline. *)
      ignore (Queue.pop t.pending);
      record_mismatch t ~cycle ~expected:(Some e.e_value) ~observed:value ~tag
    | None -> record_mismatch t ~cycle ~expected:None ~observed:value ~tag)
  | In_order -> (
    match Queue.pop t.pending with
    | e ->
      if Bitvec.equal e.e_value value then record_match t e ~cycle
      else record_mismatch t ~cycle ~expected:(Some e.e_value) ~observed:value ~tag
    | exception Queue.Empty ->
      record_mismatch t ~cycle ~expected:None ~observed:value ~tag)
  | Out_of_order -> (
    match tag with
    | None -> invalid_arg "Scoreboard.observe: Out_of_order requires a tag"
    | Some tg -> (
      let q = Hashtbl.find_opt t.by_tag (tag_key tg) in
      let popped =
        match q with
        | Some q when not (Queue.is_empty q) -> Some (Queue.pop q)
        | Some _ | None -> None
      in
      match popped with
      | Some e ->
        if Bitvec.equal e.e_value value then record_match t e ~cycle
        else
          record_mismatch t ~cycle ~expected:(Some e.e_value) ~observed:value
            ~tag
      | None -> record_mismatch t ~cycle ~expected:None ~observed:value ~tag))

let report t =
  let unconsumed =
    Queue.length t.pending
    + Hashtbl.fold (fun _ q acc -> acc + Queue.length q) t.by_tag 0
  in
  {
    matched = t.matched;
    mismatches = List.rev t.mismatches;
    unconsumed;
    latencies = List.rev t.latencies;
  }

let ok (r : report) = r.mismatches = [] && r.unconsumed = 0
