(** Scoreboards: comparing SLM expectations with RTL observations.

    Section 3.2 of the paper catalogues why SLM and RTL outputs do not
    line up cycle-for-cycle: abstracted micro-architecture, interface
    refinement, stalls, and even out-of-order completion.  Each cause
    needs a different comparison discipline, embodied here as a policy:

    - {!Exact_cycle}: outputs must match value {e and} cycle — only
      usable when the SLM is fully cycle-accurate;
    - {!In_order}: values must match in order, with free latency — for
      in-order RTL with variable delay (pipelines, stalls);
    - {!Out_of_order}: observations carry a tag and match the pending
      expectation with the same tag — for completion-reordering RTL
      (e.g. a cache that hits under a miss).

    The scoreboard records per-item latency so experiment F2 can report
    latency histograms per policy. *)

type policy = Exact_cycle | In_order | Out_of_order

type mismatch = {
  at_cycle : int;  (** cycle of the observation that failed *)
  expected : Dfv_bitvec.Bitvec.t option;
      (** what the SLM predicted ([None]: nothing was pending) *)
  observed : Dfv_bitvec.Bitvec.t;
  tag : Dfv_bitvec.Bitvec.t option;
}

type report = {
  matched : int;
  mismatches : mismatch list;  (** in observation order *)
  unconsumed : int;  (** expectations never observed *)
  latencies : int list;
      (** per matched item: observation cycle - expectation cycle *)
}

type t

val create : policy -> t

val expect :
  ?tag:Dfv_bitvec.Bitvec.t -> t -> cycle:int -> Dfv_bitvec.Bitvec.t -> unit
(** Record a golden prediction.  [cycle] is the SLM-side timestamp (for
    [Exact_cycle] the cycle at which the RTL must produce it; for the
    other policies the baseline for latency measurement).  [tag] is
    required for [Out_of_order]. *)

val observe :
  ?tag:Dfv_bitvec.Bitvec.t -> t -> cycle:int -> Dfv_bitvec.Bitvec.t -> unit
(** Record an RTL observation. *)

val attach_value_coverage :
  t ->
  Dfv_obs.Coverage.point ->
  of_value:(Dfv_bitvec.Bitvec.t -> int) ->
  unit
(** Sample the coverpoint with [of_value v] on every observation —
    functional coverage of what the DUT actually produced. *)

val attach_latency_coverage : t -> Dfv_obs.Coverage.point -> unit
(** Sample the coverpoint with the observation latency (observe cycle -
    expect cycle) on every match. *)

val report : t -> report
(** Summarize; call after the run.  Pending expectations count as
    [unconsumed]. *)

val ok : report -> bool
(** No mismatches and nothing unconsumed. *)
