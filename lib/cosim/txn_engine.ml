module Bitvec = Dfv_bitvec.Bitvec
module Netlist = Dfv_rtl.Netlist
module Sim = Dfv_rtl.Sim

type request = { tag : Bitvec.t; payload : (string * Bitvec.t) list }

type completion = { c_cycle : int; c_tag : Bitvec.t; c_data : Bitvec.t }

type interface = {
  idle : (string * Bitvec.t) list;
  issue_valid : string;
  req_tag : string option;
  ready : string option;
  resp_valid : string;
  resp_tag : string;
  resp_data : string;
}

exception Engine_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Engine_error m)) fmt

let run ~rtl ~iface ~requests ?(gap = fun _ -> false) ?max_cycles
    ?(on_cycle = fun _ _ -> ()) () =
  let n = List.length requests in
  let budget = match max_cycles with Some m -> m | None -> (64 * n) + 256 in
  let sim = Sim.create rtl in
  let pending = ref requests in
  let completions = ref [] in
  let ncompleted = ref 0 in
  let cycle = ref 0 in
  (* The ready signal is combinational: we need its value *before*
     committing the cycle.  The two-phase simulator samples outputs
     during [Sim.cycle], so issuing uses a try-then-commit shape: we
     optimistically present the request; if the design reports not-ready
     on that same cycle, the request stays pending (the design, by
     convention, latches only when ready && valid — the standard
     handshake). *)
  while !ncompleted < n && !cycle < budget do
    let issuing, payload =
      match !pending with
      | r :: _ when not (gap !cycle) ->
        let tag_drive =
          match iface.req_tag with
          | Some port -> [ (port, r.tag) ]
          | None -> []
        in
        (true, tag_drive @ r.payload)
      | _ -> (false, [])
    in
    let override = (iface.issue_valid, Bitvec.of_bool issuing) :: payload in
    let inputs =
      override
      @ List.filter (fun (p, _) -> not (List.mem_assoc p override)) iface.idle
    in
    let outs = Sim.cycle sim inputs in
    let accepted =
      issuing
      &&
      match iface.ready with
      | None -> true
      | Some p -> Bitvec.reduce_or (List.assoc p outs)
    in
    if accepted then begin
      match !pending with
      | _ :: rest -> pending := rest
      | [] -> assert false
    end;
    if Bitvec.reduce_or (List.assoc iface.resp_valid outs) then begin
      completions :=
        {
          c_cycle = !cycle;
          c_tag = List.assoc iface.resp_tag outs;
          c_data = List.assoc iface.resp_data outs;
        }
        :: !completions;
      incr ncompleted
    end;
    on_cycle sim !cycle;
    incr cycle
  done;
  if !ncompleted < n then begin
    let done_tags =
      List.map (fun c -> Bitvec.to_string c.c_tag) !completions
    in
    let missing =
      List.filter
        (fun r -> not (List.mem (Bitvec.to_string r.tag) done_tags))
        requests
    in
    fail "%d of %d requests incomplete after %d cycles (missing tags: %s)"
      (n - !ncompleted) n budget
      (String.concat ", "
         (List.map (fun r -> Bitvec.to_string r.tag) missing))
  end;
  (List.rev !completions, !cycle)
