(** Stream transactors and wrapped-RTL stages.

    The paper's Section 2 step 2: to reuse SLM stimulus for RTL, write
    adapters that serialize the SLM's parallel interface onto the RTL's
    streaming interface, instantiate the RTL under those transactors —
    the {e wrapped-RTL} — and compare.  A {!stage} is one such wrapped
    block (or a plain SLM function), and {!run_pipeline} composes stages
    so SLM and RTL implementations of pipeline blocks can be mixed
    plug-and-play (paper Section 4.2). *)

type data = Dfv_bitvec.Bitvec.t array

type stage_stats = {
  stage_name : string;
  kind : [ `Slm | `Rtl ];
  cycles : int;  (** RTL cycles consumed (0 for SLM stages) *)
}

type stage

val slm_stage : name:string -> (data -> data) -> stage
(** A stage computed by the system-level model directly. *)

val hwir_stage :
  name:string ->
  ?engine:Dfv_hwir.Exec.engine ->
  Dfv_hwir.Ast.program ->
  stage
(** A stage computed by an HWIR model whose entry maps one scalar
    element to one scalar element, applied element-wise.  The model is
    prepared once at stage construction (compiled through the verified
    normal form on the default/[`Compiled] engine — see
    {!Dfv_hwir.Exec.create}); [`Compiled] raises
    [Dfv_hwir.Norm.Rejected] on models outside the normal form, while
    the default falls back to the interpreter for them. *)

val rtl_stage :
  name:string ->
  rtl:Dfv_rtl.Netlist.elaborated ->
  in_port:string ->
  out_port:string ->
  ?in_valid:string ->
  ?out_valid:string ->
  ?latency:int ->
  ?stall:(int -> bool) ->
  ?max_cycles:int ->
  unit ->
  stage
(** A wrapped-RTL stage.  Elements are fed one per cycle on [in_port];
    when [in_valid] is given that port is driven 1 on feeding cycles and
    0 otherwise.  Outputs are collected from [out_port]: on cycles where
    [out_valid] (if given) reads 1, otherwise on every cycle starting
    when the first element was fed (fixed-latency designs should supply
    [out_valid] or tolerate the default).  [stall] makes the driver
    pause on cycles where it returns true — stimulus-side back-pressure
    for experiment C7.  The run stops when as many outputs as inputs
    have been collected, or after [max_cycles] (default
    [16 * n + 64]). *)

exception Stage_error of string
(** Unknown port, or the wrapped RTL failed to produce enough outputs
    within the cycle budget. *)

val run_stage : stage -> data -> data * stage_stats

val run_pipeline : stage list -> data -> data * stage_stats list
(** Feed the data through every stage in order. *)
