module Bitvec = Dfv_bitvec.Bitvec
module Netlist = Dfv_rtl.Netlist
module Sim = Dfv_rtl.Sim

type data = Bitvec.t array

type stage_stats = {
  stage_name : string;
  kind : [ `Slm | `Rtl ];
  cycles : int;
}

exception Stage_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Stage_error m)) fmt

type rtl_config = {
  rtl : Netlist.elaborated;
  in_port : string;
  out_port : string;
  in_valid : string option;
  out_valid : string option;
  latency : int;
  stall : int -> bool;
  max_cycles : int option;
}

type stage =
  | Slm of { name : string; f : data -> data }
  | Rtl of { name : string; config : rtl_config }

let slm_stage ~name f = Slm { name; f }

let hwir_stage ~name ?engine prog =
  let module Exec = Dfv_hwir.Exec in
  let module Interp = Dfv_hwir.Interp in
  let ex =
    match engine with
    | None -> Exec.auto prog
    | Some e -> Exec.create ~engine:e prog
  in
  let f =
    Array.map (fun bv -> Interp.as_int (Exec.run ex [ Interp.Vint bv ]))
  in
  Slm { name; f }

let rtl_stage ~name ~rtl ~in_port ~out_port ?in_valid ?out_valid ?(latency = 1)
    ?(stall = fun _ -> false) ?max_cycles () =
  if latency < 0 then fail "stage %s: negative latency" name;
  let has_input p =
    List.exists (fun q -> q.Netlist.port_name = p) rtl.Netlist.e_inputs
  in
  let has_output p = List.mem_assoc p rtl.Netlist.e_outputs in
  if not (has_input in_port) then fail "stage %s: no input port %s" name in_port;
  if not (has_output out_port) then fail "stage %s: no output port %s" name out_port;
  Option.iter
    (fun p -> if not (has_input p) then fail "stage %s: no input port %s" name p)
    in_valid;
  Option.iter
    (fun p ->
      if not (has_output p) then fail "stage %s: no output port %s" name p)
    out_valid;
  Rtl
    {
      name;
      config =
        { rtl; in_port; out_port; in_valid; out_valid; latency; stall; max_cycles };
    }

let port_width rtl p =
  (List.find (fun q -> q.Netlist.port_name = p) rtl.Netlist.e_inputs)
    .Netlist.port_width

let run_rtl name (c : rtl_config) (input : data) : data * int =
  let n = Array.length input in
  if n = 0 then ([||], 0)
  else begin
    let sim = Sim.create c.rtl in
    let width = port_width c.rtl c.in_port in
    Array.iter
      (fun v ->
        if Bitvec.width v <> width then
          fail "stage %s: element width %d, port %s is %d" name
            (Bitvec.width v) c.in_port width)
      input;
    let budget =
      match c.max_cycles with Some m -> m | None -> (16 * n) + 64
    in
    let collected = ref [] in
    let ncollected = ref 0 in
    let fed = ref 0 in
    let feed_cycles : (int, unit) Hashtbl.t = Hashtbl.create 64 in
    let cycle = ref 0 in
    while !ncollected < n && !cycle < budget do
      let feeding = !fed < n && not (c.stall !cycle) in
      let data_in =
        if feeding then input.(!fed)
        else if !fed > 0 then input.(!fed - 1)
        else Bitvec.zero width
      in
      let inputs =
        (c.in_port, data_in)
        ::
        (match c.in_valid with
        | Some p -> [ (p, Bitvec.of_bool feeding) ]
        | None -> [])
      in
      if feeding then begin
        Hashtbl.replace feed_cycles !cycle ();
        incr fed
      end;
      let outs = Sim.cycle sim inputs in
      let valid =
        match c.out_valid with
        | Some p -> Bitvec.reduce_or (List.assoc p outs)
        | None ->
          (* Without a valid signal, assume a fixed latency: element i's
             output appears [latency] cycles after element i was fed. *)
          Hashtbl.mem feed_cycles (!cycle - c.latency)
      in
      if valid && !ncollected < n then begin
        collected := List.assoc c.out_port outs :: !collected;
        incr ncollected
      end;
      incr cycle
    done;
    if !ncollected < n then
      fail "stage %s: produced %d of %d outputs within %d cycles" name
        !ncollected n budget;
    (Array.of_list (List.rev !collected), !cycle)
  end

let run_stage stage input =
  match stage with
  | Slm { name; f } ->
    (f input, { stage_name = name; kind = `Slm; cycles = 0 })
  | Rtl { name; config } ->
    let out, cycles = run_rtl name config input in
    (out, { stage_name = name; kind = `Rtl; cycles })

let run_pipeline stages input =
  let data = ref input and stats = ref [] in
  List.iter
    (fun stage ->
      let out, st = run_stage stage !data in
      data := out;
      stats := st :: !stats)
    stages;
  (!data, List.rev !stats)
