(** Tagged-transaction co-simulation engine.

    For RTL blocks with request/response interfaces and variable (even
    reordering) completion — the paper's hardest timing-alignment case
    (Section 3.2, "out-of-order output generation ... complicated
    transactors").  The engine issues a list of tagged requests,
    respecting the design's ready signal, watches for tagged responses,
    and feeds a caller-supplied scoreboard-ready stream of completions. *)

type request = {
  tag : Dfv_bitvec.Bitvec.t;
  payload : (string * Dfv_bitvec.Bitvec.t) list;
      (** input-port values to drive while issuing this request *)
}

type completion = {
  c_cycle : int;
  c_tag : Dfv_bitvec.Bitvec.t;
  c_data : Dfv_bitvec.Bitvec.t;
}

type interface = {
  idle : (string * Dfv_bitvec.Bitvec.t) list;
      (** input values driven when no request is being issued; must cover
          every input port not covered by request payloads *)
  issue_valid : string;  (** 1-bit input: request present this cycle *)
  req_tag : string option;
      (** input port to drive with the request's tag while issuing;
          [None] if the design derives tags itself (the payload must then
          encode whatever identity the design echoes back) *)
  ready : string option;
      (** 1-bit output: design accepts a request this cycle; [None] =
          always ready *)
  resp_valid : string;  (** 1-bit output: completion this cycle *)
  resp_tag : string;  (** output carrying the completion's tag *)
  resp_data : string;  (** output carrying the completion's data *)
}

exception Engine_error of string

val run :
  rtl:Dfv_rtl.Netlist.elaborated ->
  iface:interface ->
  requests:request list ->
  ?gap:(int -> bool) ->
  ?max_cycles:int ->
  ?on_cycle:(Dfv_rtl.Sim.t -> int -> unit) ->
  unit ->
  completion list * int
(** Run until every request has completed (or [max_cycles], default
    [64 * n + 256], after which {!Engine_error} is raised listing the
    missing tags).  [gap cycle] inserts issue-side idle cycles (request
    throttling).  [on_cycle sim cycle] is called after every simulated
    cycle with the engine's internal simulator — an observation hook for
    waveform capture (e.g. a windowed {!Dfv_rtl.Vcd} dump around a
    failure); it must not drive the simulator.  Returns the completions
    in observation order and the total cycles consumed. *)
