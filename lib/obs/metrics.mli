(** Process-wide metrics registry: named counters, gauges and
    log2-bucketed histograms.

    Handles are looked up (or created) by name once, at module init or
    construction time; the hot-path operations ({!incr}, {!add},
    {!set_gauge}, {!observe}) touch only the handle's own mutable
    fields — no table lookup, no allocation — so instrumented inner
    loops pay an integer store.  Counters accumulate for the life of
    the process; {!reset} zeroes values but keeps registrations, so
    benchmarks can diff windows. *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Find-or-create; the same name always yields the same handle. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val gauge : string -> gauge
val set_gauge : gauge -> int -> unit
(** Also tracks the high-water mark, reported alongside the value. *)

val gauge_value : gauge -> int
val gauge_max : gauge -> int

val histogram : string -> histogram

val observe : histogram -> int -> unit
(** Bucket a sample: values [<= 0] land in bucket 0, a value [v >= 1]
    in bucket [floor(log2 v) + 1] — so bucket [i >= 1] spans
    [[2^(i-1), 2^i - 1]]. *)

val bucket_of : int -> int
val bucket_bounds : int -> int * int
(** Inclusive [lo, hi] of a bucket index (bucket 0 is [(min_int, 0)]). *)

val bucket_counts : histogram -> int array
val histogram_count : histogram -> int
val histogram_sum : histogram -> int

val reset : unit -> unit
(** Zero every registered value (registrations survive). *)

(** {2 Domain-local isolation}

    The in-process analogue of the fork executor's reset-then-ship
    telemetry protocol (see {!Dfv_par.Pool}): a worker {e domain} calls
    {!isolate_domain} at job start, after which every metric operation
    on that domain — including operations through handles created
    before isolation — records into a private, initially-empty shadow
    registry instead of the process-wide one.  {!domain_snapshot} then
    renders exactly the job's delta in the ordinary [dfv-metrics] wire
    form, ready for {!merge} on the coordinating domain, and
    {!release_domain} uninstalls the shadow.  Registries are never
    shared across domains, so the hot paths stay race-free without
    per-operation locking; when no domain is isolated the extra cost is
    one atomic load and a branch. *)

val isolate_domain : unit -> unit
(** Install a fresh shadow registry on the calling domain.  Raises
    [Invalid_argument] if one is already installed. *)

val domain_snapshot : unit -> Json.t
(** The calling domain's shadow registry as a [dfv-metrics] snapshot.
    Raises [Invalid_argument] when not isolated. *)

val release_domain : unit -> unit
(** Uninstall the calling domain's shadow registry (a no-op when none
    is installed); subsequent operations hit the global registry. *)

val snapshot : unit -> Json.t
(** All registered metrics under the common envelope
    [{"schema":"dfv-metrics","version":1,...}]; histogram buckets are
    listed sparsely as [{"lo","hi","count"}]. *)

val merge : Json.t -> (unit, string) result
(** Fold another process's {!snapshot} into this registry: counters are
    summed, gauges take the max of both value and high-water mark,
    histogram [count]/[sum] are summed and buckets summed elementwise
    (the bucket index is recovered from each bucket's [lo] bound).
    This is how the {!Dfv_par.Pool} parent absorbs worker telemetry.
    Unknown names register on the fly; a malformed snapshot reports the
    first offending field (already-valid fields are still merged). *)

val timing_metric : string -> bool
(** Whether a metric name denotes a duration-valued (hence
    run-nondeterministic) metric — suffix [_us], [_ns] or [_ms]. *)

val strip_timing : Json.t -> Json.t
(** Project a {!snapshot} onto its run-deterministic core: drop
    {!timing_metric} entries and reduce gauges to their high-water
    [max].  Two runs of the same workload — sequential or sharded and
    merged — compare byte-identical after this projection. *)
