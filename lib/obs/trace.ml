type ev = {
  ev_name : string;
  ev_cat : string;
  ev_ph : char; (* 'X' complete span, 'i' instant *)
  ev_ts : float; (* microseconds since sink install *)
  ev_dur : float; (* microseconds; 0 for instants *)
  ev_depth : int;
  ev_pid : int; (* recording process; differs for absorbed worker events *)
  ev_args : (string * Json.t) list;
}

let dummy_ev =
  { ev_name = ""; ev_cat = ""; ev_ph = 'X'; ev_ts = 0.0; ev_dur = 0.0;
    ev_depth = 0; ev_pid = 0; ev_args = [] }

type sink = {
  ring : ev array;
  mutable pushed : int; (* total events ever pushed *)
  mutable depth : int;
  mutable max_depth : int;
  t0 : float; (* gettimeofday at install *)
  mutable last : float; (* monotonization high-water mark, us *)
  pid : int; (* process that installed the sink *)
  mutable foreign_dropped : int; (* drops reported by absorbed exports *)
  mutable procs : (int * string) list; (* pid -> display label, rev *)
}

let current : sink option ref = ref None

(* Domain-local shadow sinks, mirroring {!Metrics}: a worker domain
   records spans into its own private ring (installed per job via
   {!isolate_domain}) so the main sink's ring and depth counters are
   never touched cross-domain.  The shadow is exported in the same
   [dfv-trace-export] wire form the fork executor ships, with the
   domain id standing in for the worker pid. *)
let shadows_active = Atomic.make 0

let shadow_key : sink option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let shadow () =
  if Atomic.get shadows_active = 0 then None else Domain.DLS.get shadow_key

(* The sink recording ops target: the domain's shadow when isolated,
   the process-wide sink otherwise. *)
let active () = match shadow () with Some _ as s -> s | None -> !current

(* Registered eagerly so a truncated trace is detectable from the
   metrics artifact alone, even when the count is zero. *)
let dropped_counter = Metrics.counter "trace.dropped"

(* Wall clock, monotonized: the reported time never decreases within a
   sink's lifetime even if the system clock steps backwards, so
   [dur >= 0] and parent spans always enclose their children. *)
let now_us s =
  let t = (Unix.gettimeofday () -. s.t0) *. 1e6 in
  let t = if t > s.last then t else s.last in
  s.last <- t;
  t

let make_sink ~capacity ~pid =
  {
    ring = Array.make capacity dummy_ev;
    pushed = 0;
    depth = 0;
    max_depth = 0;
    t0 = Unix.gettimeofday ();
    last = 0.0;
    pid;
    foreign_dropped = 0;
    procs = [ (pid, "dfv") ];
  }

let enable ?(capacity = 65536) () =
  if capacity < 1 then invalid_arg "Trace.enable: capacity must be >= 1";
  current := Some (make_sink ~capacity ~pid:(Unix.getpid ()))

let disable () = current := None
let enabled () = active () <> None

let push s e =
  if s.pushed >= Array.length s.ring then Metrics.incr dropped_counter;
  s.ring.(s.pushed mod Array.length s.ring) <- e;
  s.pushed <- s.pushed + 1

type span =
  | Null_span
  | Span of {
      sp_sink : sink;
      sp_name : string;
      sp_cat : string;
      sp_args : (string * Json.t) list;
      sp_t0 : float;
      sp_depth : int;
      mutable sp_closed : bool;
    }

let null_span = Null_span

let begin_span ?(cat = "dfv") ?(args = []) name =
  match active () with
  | None -> Null_span
  | Some s ->
    let d = s.depth in
    s.depth <- d + 1;
    if s.depth > s.max_depth then s.max_depth <- s.depth;
    Span
      {
        sp_sink = s;
        sp_name = name;
        sp_cat = cat;
        sp_args = args;
        sp_t0 = now_us s;
        sp_depth = d;
        sp_closed = false;
      }

let end_span span =
  match span with
  | Null_span -> ()
  | Span sp ->
    if not sp.sp_closed then begin
      sp.sp_closed <- true;
      let s = sp.sp_sink in
      (* Only record into the sink the span was begun under: a span that
         straddles a disable/enable would otherwise write nonsense
         timestamps into the new sink. *)
      if (match active () with Some c -> c == s | None -> false) then begin
        s.depth <- max 0 (s.depth - 1);
        push s
          {
            ev_name = sp.sp_name;
            ev_cat = sp.sp_cat;
            ev_ph = 'X';
            ev_ts = sp.sp_t0;
            ev_dur = now_us s -. sp.sp_t0;
            ev_depth = sp.sp_depth;
            ev_pid = s.pid;
            ev_args = sp.sp_args;
          }
      end
    end

let with_span ?cat ?args name f =
  match active () with
  | None -> f ()
  | Some _ ->
    let sp = begin_span ?cat ?args name in
    Fun.protect ~finally:(fun () -> end_span sp) f

let instant ?(cat = "dfv") ?(args = []) name =
  match active () with
  | None -> ()
  | Some s ->
    push s
      {
        ev_name = name;
        ev_cat = cat;
        ev_ph = 'i';
        ev_ts = now_us s;
        ev_dur = 0.0;
        ev_depth = s.depth;
        ev_pid = s.pid;
        ev_args = args;
      }

let depth () = match active () with Some s -> s.depth | None -> 0
let max_depth () = match active () with Some s -> s.max_depth | None -> 0

let stored s = min s.pushed (Array.length s.ring)

(* Oldest-first chronological order.  Complete events are pushed when the
   span *ends*, so the raw ring is end-ordered; sort by start time the
   way trace viewers expect. *)
let ordered s =
  let n = stored s in
  let cap = Array.length s.ring in
  let start = s.pushed - n in
  let evs = Array.init n (fun i -> s.ring.((start + i) mod cap)) in
  let a = Array.mapi (fun i e -> (e.ev_ts, i, e)) evs in
  Array.sort compare a;
  Array.to_list (Array.map (fun (_, _, e) -> e) a)

let events () =
  match !current with
  | None -> []
  | Some s ->
    List.map (fun e -> (e.ev_name, e.ev_ts, e.ev_dur, e.ev_depth)) (ordered s)

let json_of_ev e =
  let base =
    [ ("name", Json.String e.ev_name);
      ("cat", Json.String e.ev_cat);
      ("ph", Json.String (String.make 1 e.ev_ph));
      ("ts", Json.Float e.ev_ts);
      ("pid", Json.Int e.ev_pid);
      ("tid", Json.Int 1) ]
  in
  let dur = if e.ev_ph = 'X' then [ ("dur", Json.Float e.ev_dur) ] else [] in
  let scope = if e.ev_ph = 'i' then [ ("s", Json.String "t") ] else [] in
  let args =
    match e.ev_args with
    | [] -> []
    | args -> [ ("args", Json.Obj args) ]
  in
  Json.Obj (base @ dur @ scope @ args)

(* Chrome "M" metadata events naming each process lane, so a merged
   multi-pid timeline labels the parent and every worker. *)
let metadata_events s =
  List.rev_map
    (fun (pid, label) ->
      Json.Obj
        [ ("name", Json.String "process_name");
          ("ph", Json.String "M");
          ("pid", Json.Int pid);
          ("tid", Json.Int 1);
          ("args", Json.Obj [ ("name", Json.String label) ]) ])
    s.procs

let local_dropped s = s.pushed - stored s

let recent_json ?(limit = 32) () =
  match !current with
  | None -> Json.List []
  | Some s ->
    let evs = ordered s in
    let n = List.length evs in
    let evs = List.filteri (fun i _ -> i >= n - limit) evs in
    Json.List (List.map json_of_ev evs)

let to_json () =
  match !current with
  | None ->
    Json.envelope ~schema:"dfv-trace" ~version:1
      [ ("traceEvents", Json.List []); ("dropped", Json.Int 0) ]
  | Some s ->
    Json.envelope ~schema:"dfv-trace" ~version:1
      [ ("displayTimeUnit", Json.String "ms");
        ( "traceEvents",
          Json.List (metadata_events s @ List.map json_of_ev (ordered s)) );
        ("dropped", Json.Int (local_dropped s + s.foreign_dropped));
        ("maxDepth", Json.Int s.max_depth) ]

(* The bare Chrome "JSON array format": no envelope keys at all, for
   tools that choke on the object form.  The drop count still travels,
   as an instant in the stream rather than a top-level field. *)
let raw_json () =
  match !current with
  | None -> Json.List []
  | Some s ->
    let dropped = local_dropped s + s.foreign_dropped in
    let drop_ev =
      if dropped = 0 then []
      else
        [ Json.Obj
            [ ("name", Json.String "trace.dropped");
              ("ph", Json.String "i");
              ("ts", Json.Float 0.0);
              ("pid", Json.Int s.pid);
              ("tid", Json.Int 1);
              ("s", Json.String "g");
              ("args", Json.Obj [ ("dropped", Json.Int dropped) ]) ] ]
    in
    Json.List (metadata_events s @ drop_ev @ List.map json_of_ev (ordered s))

(* -- cross-process shipping ------------------------------------------- *)

let wire_of_ev e =
  let base =
    [ ("name", Json.String e.ev_name);
      ("cat", Json.String e.ev_cat);
      ("ph", Json.String (String.make 1 e.ev_ph));
      ("ts", Json.Float e.ev_ts);
      ("dur", Json.Float e.ev_dur);
      ("depth", Json.Int e.ev_depth) ]
  in
  match e.ev_args with
  | [] -> Json.Obj base
  | args -> Json.Obj (base @ [ ("args", Json.Obj args) ])

let export_of s =
  Json.envelope ~schema:"dfv-trace-export" ~version:1
    [ ("pid", Json.Int s.pid);
      ("t0_us", Json.Float (s.t0 *. 1e6));
      ("dropped", Json.Int (local_dropped s + s.foreign_dropped));
      ("max_depth", Json.Int s.max_depth);
      ("events", Json.List (List.map wire_of_ev (ordered s))) ]

let export () =
  match !current with None -> Json.Null | Some s -> export_of s

(* --- domain-local isolation -------------------------------------------- *)

(* A shadow is installed only when the process sink is live: with
   tracing off there is nothing to merge into, and the worker's spans
   stay the usual one-branch no-ops.  The shadow's [pid] field carries
   the worker's domain id — {!absorb} turns it into a per-domain lane
   exactly as it gives forked workers per-pid lanes. *)
let isolate_domain () =
  (match Domain.DLS.get shadow_key with
  | Some _ -> invalid_arg "Trace.isolate_domain: already isolated"
  | None -> ());
  match !current with
  | None -> ()
  | Some main ->
    Domain.DLS.set shadow_key
      (Some
         (make_sink
            ~capacity:(Array.length main.ring)
            ~pid:(Domain.self () :> int)));
    Atomic.incr shadows_active

let domain_export () =
  match Domain.DLS.get shadow_key with
  | None -> Json.Null
  | Some s -> export_of s

let release_domain () =
  match Domain.DLS.get shadow_key with
  | Some _ ->
    Domain.DLS.set shadow_key None;
    Atomic.decr shadows_active
  | None -> ()

let ev_of_wire ~pid ~job ~offset_us j =
  let str name = match Json.field name j with
    | Some (Json.String s) -> Some s
    | _ -> None
  in
  let num name = match Json.field name j with
    | Some (Json.Float f) -> Some f
    | Some (Json.Int i) -> Some (float_of_int i)
    | _ -> None
  in
  match (str "name", str "ph", num "ts", num "dur") with
  | Some name, Some ph, Some ts, Some dur when String.length ph = 1 ->
    let args =
      match Json.field "args" j with Some (Json.Obj a) -> a | _ -> []
    in
    let args =
      match job with
      | Some i -> args @ [ ("job", Json.Int i) ]
      | None -> args
    in
    Some
      {
        ev_name = name;
        ev_cat = (match str "cat" with Some c -> c | None -> "dfv");
        ev_ph = ph.[0];
        ev_ts = ts +. offset_us;
        ev_dur = dur;
        ev_depth =
          (match Json.field "depth" j with Some (Json.Int d) -> d | _ -> 0);
        ev_pid = pid;
        ev_args = args;
      }
  | _ -> None

let absorb ?label ?job j =
  match !current with
  | None -> Ok () (* parent is not tracing; nothing to merge into *)
  | Some s -> (
    match Json.envelope_of j with
    | Some ("dfv-trace-export", 1) -> (
      match
        (Json.field "pid" j, Json.field "t0_us" j, Json.field "events" j)
      with
      | Some (Json.Int pid), Some t0, Some (Json.List evs) ->
        let t0_us =
          match t0 with
          | Json.Float f -> f
          | Json.Int i -> float_of_int i
          | _ -> s.t0 *. 1e6
        in
        (* Re-base onto this sink's epoch: both epochs come from the
           same wall clock, so worker spans land where they actually
           ran relative to the parent's own spans. *)
        let offset_us = t0_us -. (s.t0 *. 1e6) in
        (match Json.field "dropped" j with
        | Some (Json.Int d) -> s.foreign_dropped <- s.foreign_dropped + d
        | _ -> ());
        (match Json.field "max_depth" j with
        | Some (Json.Int d) -> if d > s.max_depth then s.max_depth <- d
        | _ -> ());
        if not (List.mem_assoc pid s.procs) then begin
          let lane =
            match label with
            | Some l -> l
            | None -> Printf.sprintf "dfv worker %d" pid
          in
          s.procs <- (pid, lane) :: s.procs
        end;
        let bad = ref 0 in
        List.iter
          (fun w ->
            match ev_of_wire ~pid ~job ~offset_us w with
            | Some e -> push s e
            | None -> Stdlib.incr bad)
          evs;
        if !bad = 0 then Ok ()
        else Error (Printf.sprintf "Trace.absorb: %d malformed events" !bad)
      | _ -> Error "Trace.absorb: missing pid/t0_us/events"
      )
    | _ -> Error "Trace.absorb: not a dfv-trace-export v1 payload")

let write_file ?(raw = false) path =
  Json.write_file path (if raw then raw_json () else to_json ())
