type ev = {
  ev_name : string;
  ev_cat : string;
  ev_ph : char; (* 'X' complete span, 'i' instant *)
  ev_ts : float; (* microseconds since sink install *)
  ev_dur : float; (* microseconds; 0 for instants *)
  ev_depth : int;
  ev_args : (string * Json.t) list;
}

let dummy_ev =
  { ev_name = ""; ev_cat = ""; ev_ph = 'X'; ev_ts = 0.0; ev_dur = 0.0;
    ev_depth = 0; ev_args = [] }

type sink = {
  ring : ev array;
  mutable pushed : int; (* total events ever pushed *)
  mutable depth : int;
  mutable max_depth : int;
  t0 : float; (* gettimeofday at install *)
  mutable last : float; (* monotonization high-water mark, us *)
}

let current : sink option ref = ref None

(* Wall clock, monotonized: the reported time never decreases within a
   sink's lifetime even if the system clock steps backwards, so
   [dur >= 0] and parent spans always enclose their children. *)
let now_us s =
  let t = (Unix.gettimeofday () -. s.t0) *. 1e6 in
  let t = if t > s.last then t else s.last in
  s.last <- t;
  t

let enable ?(capacity = 65536) () =
  if capacity < 1 then invalid_arg "Trace.enable: capacity must be >= 1";
  current :=
    Some
      {
        ring = Array.make capacity dummy_ev;
        pushed = 0;
        depth = 0;
        max_depth = 0;
        t0 = Unix.gettimeofday ();
        last = 0.0;
      }

let disable () = current := None
let enabled () = !current <> None

let push s e =
  s.ring.(s.pushed mod Array.length s.ring) <- e;
  s.pushed <- s.pushed + 1

type span =
  | Null_span
  | Span of {
      sp_sink : sink;
      sp_name : string;
      sp_cat : string;
      sp_args : (string * Json.t) list;
      sp_t0 : float;
      sp_depth : int;
      mutable sp_closed : bool;
    }

let null_span = Null_span

let begin_span ?(cat = "dfv") ?(args = []) name =
  match !current with
  | None -> Null_span
  | Some s ->
    let d = s.depth in
    s.depth <- d + 1;
    if s.depth > s.max_depth then s.max_depth <- s.depth;
    Span
      {
        sp_sink = s;
        sp_name = name;
        sp_cat = cat;
        sp_args = args;
        sp_t0 = now_us s;
        sp_depth = d;
        sp_closed = false;
      }

let end_span span =
  match span with
  | Null_span -> ()
  | Span sp ->
    if not sp.sp_closed then begin
      sp.sp_closed <- true;
      let s = sp.sp_sink in
      (* Only record into the sink the span was begun under: a span that
         straddles a disable/enable would otherwise write nonsense
         timestamps into the new sink. *)
      if (match !current with Some c -> c == s | None -> false) then begin
        s.depth <- max 0 (s.depth - 1);
        push s
          {
            ev_name = sp.sp_name;
            ev_cat = sp.sp_cat;
            ev_ph = 'X';
            ev_ts = sp.sp_t0;
            ev_dur = now_us s -. sp.sp_t0;
            ev_depth = sp.sp_depth;
            ev_args = sp.sp_args;
          }
      end
    end

let with_span ?cat ?args name f =
  match !current with
  | None -> f ()
  | Some _ ->
    let sp = begin_span ?cat ?args name in
    Fun.protect ~finally:(fun () -> end_span sp) f

let instant ?(cat = "dfv") ?(args = []) name =
  match !current with
  | None -> ()
  | Some s ->
    push s
      {
        ev_name = name;
        ev_cat = cat;
        ev_ph = 'i';
        ev_ts = now_us s;
        ev_dur = 0.0;
        ev_depth = s.depth;
        ev_args = args;
      }

let depth () = match !current with Some s -> s.depth | None -> 0
let max_depth () = match !current with Some s -> s.max_depth | None -> 0

let stored s = min s.pushed (Array.length s.ring)

(* Oldest-first chronological order.  Complete events are pushed when the
   span *ends*, so the raw ring is end-ordered; sort by start time the
   way trace viewers expect. *)
let ordered s =
  let n = stored s in
  let cap = Array.length s.ring in
  let start = s.pushed - n in
  let evs = Array.init n (fun i -> s.ring.((start + i) mod cap)) in
  let a = Array.mapi (fun i e -> (e.ev_ts, i, e)) evs in
  Array.sort compare a;
  Array.to_list (Array.map (fun (_, _, e) -> e) a)

let events () =
  match !current with
  | None -> []
  | Some s ->
    List.map (fun e -> (e.ev_name, e.ev_ts, e.ev_dur, e.ev_depth)) (ordered s)

let json_of_ev e =
  let base =
    [ ("name", Json.String e.ev_name);
      ("cat", Json.String e.ev_cat);
      ("ph", Json.String (String.make 1 e.ev_ph));
      ("ts", Json.Float e.ev_ts);
      ("pid", Json.Int 1);
      ("tid", Json.Int 1) ]
  in
  let dur = if e.ev_ph = 'X' then [ ("dur", Json.Float e.ev_dur) ] else [] in
  let scope = if e.ev_ph = 'i' then [ ("s", Json.String "t") ] else [] in
  let args =
    match e.ev_args with
    | [] -> []
    | args -> [ ("args", Json.Obj args) ]
  in
  Json.Obj (base @ dur @ scope @ args)

let recent_json ?(limit = 32) () =
  match !current with
  | None -> Json.List []
  | Some s ->
    let evs = ordered s in
    let n = List.length evs in
    let evs = List.filteri (fun i _ -> i >= n - limit) evs in
    Json.List (List.map json_of_ev evs)

let to_json () =
  match !current with
  | None ->
    Json.envelope ~schema:"dfv-trace" ~version:1
      [ ("traceEvents", Json.List []); ("dropped", Json.Int 0) ]
  | Some s ->
    Json.envelope ~schema:"dfv-trace" ~version:1
      [ ("displayTimeUnit", Json.String "ms");
        ("traceEvents", Json.List (List.map json_of_ev (ordered s)));
        ("dropped", Json.Int (s.pushed - stored s));
        ("maxDepth", Json.Int s.max_depth) ]

let write_file path = Json.write_file path (to_json ())
