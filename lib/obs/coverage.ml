type kind = Count | Ignore_bin | Illegal

type bin = { b_name : string; b_lo : int; b_hi : int; b_kind : kind }

type point = {
  pt_name : string;
  pt_bins : bin array;
  pt_hits : int array;
  pt_at_least : int;
  mutable pt_illegal : int;
  mutable pt_misses : int;
  mutable pt_samples : int;
}

type group = { grp_name : string; mutable grp_points : point list (* rev *) }

(* Registries keep insertion order so snapshots are stable. *)
type registry_t = {
  tbl : (string, group) Hashtbl.t;
  mutable order : group list; (* rev *)
}

let fresh_registry () = { tbl = Hashtbl.create 8; order = [] }
let registry = fresh_registry ()

(* Cold-path guard: worker domains may find-or-create groups by name
   while the main domain snapshots.  Points and samples only touch the
   group/point records the caller already holds — under domain
   isolation those live in the domain's own shadow, so the hot sampling
   path needs no lock. *)
let registry_lock = Mutex.create ()

let with_lock f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

(* Domain-local shadow registries, mirroring {!Metrics}: a {!Dfv_par.Dpool}
   worker domain resolves covergroups into its own private registry so
   each job's coverage is a clean delta, merged back on the coordinating
   domain through {!merge}. *)
let shadows_active = Atomic.make 0

let shadow_key : registry_t option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let shadow () =
  if Atomic.get shadows_active = 0 then None else Domain.DLS.get shadow_key

let on = ref false
let enable () = on := true
let disable () = on := false
let enabled () = !on

let bin ?(kind = Count) name ~lo ~hi =
  if hi < lo then invalid_arg "Coverage.bin: hi < lo";
  { b_name = name; b_lo = lo; b_hi = hi; b_kind = kind }

let group_in r name =
  match Hashtbl.find_opt r.tbl name with
  | Some g -> g
  | None ->
    let g = { grp_name = name; grp_points = [] } in
    Hashtbl.add r.tbl name g;
    r.order <- g :: r.order;
    g

let group name =
  match shadow () with
  | Some r -> group_in r name
  | None -> with_lock (fun () -> group_in registry name)

let point g name ?(at_least = 1) bins =
  match List.find_opt (fun p -> p.pt_name = name) g.grp_points with
  | Some p -> p
  | None ->
    if at_least < 1 then invalid_arg "Coverage.point: at_least must be >= 1";
    let p =
      {
        pt_name = name;
        pt_bins = Array.of_list bins;
        pt_hits = Array.make (List.length bins) 0;
        pt_at_least = at_least;
        pt_illegal = 0;
        pt_misses = 0;
        pt_samples = 0;
      }
    in
    g.grp_points <- p :: g.grp_points;
    p

let sample p v =
  p.pt_samples <- p.pt_samples + 1;
  let n = Array.length p.pt_bins in
  let rec find i =
    if i >= n then p.pt_misses <- p.pt_misses + 1
    else begin
      let b = p.pt_bins.(i) in
      if v >= b.b_lo && v <= b.b_hi then begin
        p.pt_hits.(i) <- p.pt_hits.(i) + 1;
        match b.b_kind with
        | Count | Ignore_bin -> ()
        | Illegal ->
          p.pt_illegal <- p.pt_illegal + 1;
          Trace.instant ~cat:"coverage"
            ~args:
              [ ("point", Json.String p.pt_name);
                ("bin", Json.String b.b_name);
                ("value", Json.Int v) ]
            "coverage.illegal"
      end
      else find (i + 1)
    end
  in
  find 0

let bin_hits p =
  Array.to_list
    (Array.mapi
       (fun i b -> (b.b_name, b.b_kind, p.pt_hits.(i)))
       p.pt_bins)

let illegal_count p = p.pt_illegal
let miss_count p = p.pt_misses
let samples p = p.pt_samples

let point_coverage p =
  let total = ref 0 and covered = ref 0 in
  Array.iteri
    (fun i b ->
      if b.b_kind = Count then begin
        Stdlib.incr total;
        if p.pt_hits.(i) >= p.pt_at_least then Stdlib.incr covered
      end)
    p.pt_bins;
  if !total = 0 then 1.0 else float_of_int !covered /. float_of_int !total

let group_coverage g =
  match g.grp_points with
  | [] -> 1.0
  | ps ->
    List.fold_left (fun acc p -> acc +. point_coverage p) 0.0 ps
    /. float_of_int (List.length ps)

let group_name g = g.grp_name
let points g = List.rev g.grp_points
let point_name p = p.pt_name
let groups () = List.rev registry.order

let reset () =
  Hashtbl.iter
    (fun _ g ->
      List.iter
        (fun p ->
          Array.fill p.pt_hits 0 (Array.length p.pt_hits) 0;
          p.pt_illegal <- 0;
          p.pt_misses <- 0;
          p.pt_samples <- 0)
        g.grp_points)
    registry.tbl

let clear () =
  Hashtbl.reset registry.tbl;
  registry.order <- []

let kind_string = function
  | Count -> "count"
  | Ignore_bin -> "ignore"
  | Illegal -> "illegal"

let kind_of_string = function
  | "count" -> Some Count
  | "ignore" -> Some Ignore_bin
  | "illegal" -> Some Illegal
  | _ -> None

let point_json p =
  Json.Obj
    [ ("name", Json.String p.pt_name);
      ("samples", Json.Int p.pt_samples);
      ("at_least", Json.Int p.pt_at_least);
      ("coverage", Json.Float (point_coverage p));
      ("illegal_hits", Json.Int p.pt_illegal);
      ("misses", Json.Int p.pt_misses);
      ( "bins",
        Json.List
          (Array.to_list
             (Array.mapi
                (fun i b ->
                  Json.Obj
                    [ ("name", Json.String b.b_name);
                      ("kind", Json.String (kind_string b.b_kind));
                      ("lo", Json.Int b.b_lo);
                      ("hi", Json.Int b.b_hi);
                      ("hits", Json.Int p.pt_hits.(i)) ])
                p.pt_bins)) ) ]

let group_json g =
  Json.Obj
    [ ("name", Json.String g.grp_name);
      ("coverage", Json.Float (group_coverage g));
      ("points", Json.List (List.map point_json (points g))) ]

let snapshot_of r =
  Json.envelope ~schema:"dfv-coverage" ~version:1
    [ ("groups", Json.List (List.map group_json (List.rev r.order))) ]

let snapshot () = snapshot_of registry

(* --- domain-local isolation (the in-process worker protocol) ----------- *)

let isolate_domain () =
  (match Domain.DLS.get shadow_key with
  | Some _ -> invalid_arg "Coverage.isolate_domain: already isolated"
  | None -> ());
  Domain.DLS.set shadow_key (Some (fresh_registry ()));
  Atomic.incr shadows_active

let domain_snapshot () =
  match Domain.DLS.get shadow_key with
  | Some r -> snapshot_of r
  | None -> invalid_arg "Coverage.domain_snapshot: not isolated"

let release_domain () =
  match Domain.DLS.get shadow_key with
  | Some _ ->
    Domain.DLS.set shadow_key None;
    Atomic.decr shadows_active
  | None -> ()

(* -- cross-process merge ---------------------------------------------- *)

let int_field name j =
  match Json.field name j with Some (Json.Int i) -> Some i | _ -> None

let str_field name j =
  match Json.field name j with Some (Json.String s) -> Some s | _ -> None

(* Rebuild a worker's bins from their wire descriptors so the parent
   needs no prior registration: groups and points are found-or-created
   with the shipped shape, then hit counts are summed by bin position.
   Merging never re-emits illegal-hit trace instants — the worker
   already recorded those when it sampled. *)
let merge_point g pj =
  match (str_field "name" pj, Json.field "bins" pj) with
  | Some name, Some (Json.List bins_j) ->
    let descr =
      List.map
        (fun bj ->
          match
            ( str_field "name" bj,
              str_field "kind" bj,
              int_field "lo" bj,
              int_field "hi" bj,
              int_field "hits" bj )
          with
          | Some bname, Some k, Some lo, Some hi, Some hits -> (
            match kind_of_string k with
            | Some kind when hi >= lo -> Some (bin ~kind bname ~lo ~hi, hits)
            | _ -> None)
          | _ -> None)
        bins_j
    in
    if List.exists (fun d -> d = None) descr then
      Error ("Coverage.merge: malformed bin in point " ^ name)
    else begin
      let descr = List.filter_map Fun.id descr in
      let at_least =
        match int_field "at_least" pj with Some a when a >= 1 -> a | _ -> 1
      in
      let p = point g name ~at_least (List.map fst descr) in
      if Array.length p.pt_bins <> List.length descr then
        Error ("Coverage.merge: bin shape mismatch in point " ^ name)
      else begin
        List.iteri (fun i (_, hits) -> p.pt_hits.(i) <- p.pt_hits.(i) + hits)
          descr;
        (match int_field "illegal_hits" pj with
        | Some n -> p.pt_illegal <- p.pt_illegal + n
        | None -> ());
        (match int_field "misses" pj with
        | Some n -> p.pt_misses <- p.pt_misses + n
        | None -> ());
        (match int_field "samples" pj with
        | Some n -> p.pt_samples <- p.pt_samples + n
        | None -> ());
        Ok ()
      end
    end
  | _ -> Error "Coverage.merge: malformed point"

let merge j =
  match Json.envelope_of j with
  | Some ("dfv-coverage", 1) -> (
    match Json.field "groups" j with
    | Some (Json.List gs) ->
      List.fold_left
        (fun acc gj ->
          match (str_field "name" gj, Json.field "points" gj) with
          | Some gname, Some (Json.List ps) ->
            let g = group gname in
            List.fold_left
              (fun acc pj ->
                match merge_point g pj with
                | Ok () -> acc
                | Error _ as e -> if acc = Ok () then e else acc)
              acc ps
          | _ ->
            if acc = Ok () then Error "Coverage.merge: malformed group"
            else acc)
        (Ok ()) gs
    | _ -> Error "Coverage.merge: missing groups")
  | _ -> Error "Coverage.merge: not a dfv-coverage v1 snapshot"
