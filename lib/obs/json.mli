(** Escape-correct JSON emission, and a strict reader for it.

    Every machine-readable artifact this repository produces — fault
    campaign reports, traces, metrics, coverage, triage bundles, worker
    pool result lines — goes through this one printer, so escaping is
    right exactly once.  {!parse} is the inverse, added for the two
    places the repository reads its {e own} JSON back: the fork pool
    ({!Dfv_par.Pool}) aggregating per-job results over pipes, and
    [dfv validate] checking uploaded CI artifacts for the common
    [{"schema","version"}] envelope. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** non-finite values are emitted as [null] *)
  | String of string
  | List of t list
  | Obj of (string * t) list

val escape_to_buffer : Buffer.t -> string -> unit
(** Append the JSON string literal (including the quotes) for [s]. *)

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string

val envelope : schema:string -> version:int -> (string * t) list -> t
(** The common envelope every dfv JSON artifact agrees on:
    [{"schema": schema, "version": version, ...fields}]. *)

val write_file : string -> t -> unit
(** Write the value (newline-terminated) to [path]. *)

val parse : string -> (t, string) result
(** Parse one complete JSON value (surrounding whitespace allowed).
    Strict: trailing garbage, unterminated strings, bad escapes and
    malformed numbers are errors, not best-effort recoveries —
    [parse (to_string v)] reconstructs [v] exactly for every [v] whose
    floats are finite (non-finite floats print as [null]). *)

val field : string -> t -> t option
(** [field name v] is the value of field [name] when [v] is an [Obj]
    carrying it, [None] otherwise. *)

val envelope_of : t -> (string * int) option
(** [(schema, version)] when the value is an object carrying the common
    envelope — a [String] ["schema"] and an [Int] ["version"] field. *)
