(** Escape-correct JSON emission.

    Every machine-readable artifact this repository produces — fault
    campaign reports, traces, metrics, coverage, triage bundles — goes
    through this one printer, so escaping is right exactly once.  There
    is deliberately no parser: the repository only {e writes} JSON. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** non-finite values are emitted as [null] *)
  | String of string
  | List of t list
  | Obj of (string * t) list

val escape_to_buffer : Buffer.t -> string -> unit
(** Append the JSON string literal (including the quotes) for [s]. *)

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string

val envelope : schema:string -> version:int -> (string * t) list -> t
(** The common envelope every dfv JSON artifact agrees on:
    [{"schema": schema, "version": version, ...fields}]. *)

val write_file : string -> t -> unit
(** Write the value (newline-terminated) to [path]. *)
