(** Mismatch triage bundles.

    When a SEC counterexample or a cosim scoreboard miscompare is found,
    the interesting evidence is scattered: which transaction failed, what
    stimulus provoked it, what the waves looked like around the failure
    cycle, and what the solver/kernel counters were doing at the time.
    A triage bundle gathers all of it into one JSON document
    ([{"schema":"dfv-triage","version":1,...}]) so a failure can be
    diagnosed from the report alone.

    The VCD slice is carried as an opaque string so this module stays
    free of RTL dependencies — callers render the window themselves. *)

type failure = {
  f_port : string;
  f_cycle : int;
  f_expected : string option;  (** [None] for unexpected/extra outputs. *)
  f_got : string;
}

type t

val make :
  design:string ->
  kind:string ->
  ?txn_index:int ->
  ?stimulus:(string * string) list ->
  ?failures:failure list ->
  ?vcd:string ->
  ?vcd_window:int * int ->
  ?notes:string list ->
  unit ->
  t
(** Build a bundle.  [kind] names the failure class (e.g.
    ["sec-counterexample"], ["scoreboard-miscompare"]).  The metrics
    snapshot, recent trace events and coverage report are captured
    automatically at call time. *)

val design : t -> string
val kind : t -> string
val txn_index : t -> int option
val failures : t -> failure list
val vcd : t -> string option

val to_json : t -> Json.t
val write_file : string -> t -> unit
val pp : Format.formatter -> t -> unit
(** Human-oriented summary (no VCD body, no raw metrics). *)
