(** Functional coverage, OSVVM style: named covergroups of coverpoints,
    each coverpoint a list of value bins.

    Bin semantics follow the industry convention (OSVVM / SystemVerilog
    covergroups): the {e first} bin whose [lo..hi] range contains the
    sampled value claims it.  [Count] bins accumulate hits and define
    the coverage percentage; [Ignore_bin] bins swallow values that are
    legal but uninteresting; [Illegal] bins record values that should
    never occur — an illegal hit is reported separately and never
    improves coverage.  Values matching no bin are counted as misses
    (a modelling gap, not an error).

    Covergroups register globally so the CLI can dump every design's
    coverage in one report.  Construction is guarded by {!enabled}
    at the instrumentation sites, making the layer free when off. *)

type kind = Count | Ignore_bin | Illegal

type bin
type point
type group

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

val bin : ?kind:kind -> string -> lo:int -> hi:int -> bin
(** A value bin over the inclusive range [lo..hi] ([kind] defaults to
    [Count]). *)

val group : string -> group
(** Find-or-create a registered covergroup. *)

val point : group -> string -> ?at_least:int -> bin list -> point
(** Find-or-create a coverpoint ([at_least], default 1, is the hit
    count a [Count] bin needs to count as covered).  Re-requesting an
    existing point returns it unchanged. *)

val sample : point -> int -> unit

val bin_hits : point -> (string * kind * int) list
val illegal_count : point -> int
val miss_count : point -> int
val samples : point -> int

val point_coverage : point -> float
(** Fraction (0..1) of [Count] bins with at least [at_least] hits. *)

val group_coverage : group -> float
(** Unweighted mean over the group's points (1.0 for an empty group). *)

val group_name : group -> string
val points : group -> point list
val point_name : point -> string
val groups : unit -> group list

val reset : unit -> unit
(** Zero all hit counts (groups and points survive). *)

val clear : unit -> unit
(** Drop every registered group (for tests). *)

val group_json : group -> Json.t

val snapshot : unit -> Json.t
(** All groups under the common envelope
    [{"schema":"dfv-coverage","version":1,...}]; each point's bins
    carry their full descriptor ([kind], [lo], [hi], [at_least]) so a
    snapshot is self-contained enough to {!merge} elsewhere. *)

val merge : Json.t -> (unit, string) result
(** Fold another process's {!snapshot} into this registry: groups and
    points are found-or-created from the shipped bin descriptors, bin
    hits / illegal hits / misses / samples are summed.  Registration
    happens even when {!enabled} is false — merging is bookkeeping, not
    sampling, and never re-emits illegal-hit trace instants.  Errors
    name the first malformed or shape-mismatched point; well-formed
    points are still merged. *)

(** {2 Domain-local isolation}

    Mirrors {!Metrics}: a {!Dfv_par.Dpool} worker domain calls
    {!isolate_domain} at job start, after which {!group} resolves into
    a private shadow registry, so the job's covergroups are a clean
    delta ready for {!merge} on the coordinating domain. *)

val isolate_domain : unit -> unit
(** Install a fresh shadow registry on the calling domain.  Raises
    [Invalid_argument] if one is already installed. *)

val domain_snapshot : unit -> Json.t
(** The calling domain's shadow registry as a [dfv-coverage] snapshot.
    Raises [Invalid_argument] when not isolated. *)

val release_domain : unit -> unit
(** Uninstall the calling domain's shadow registry (a no-op when none
    is installed). *)
