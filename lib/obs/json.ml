type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_to_buffer buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | ch when Char.code ch < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char buf ch)
    s;
  Buffer.add_char buf '"'

let rec to_buffer buf v =
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
    if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.6g" f)
    else Buffer.add_string buf "null"
  | String s -> escape_to_buffer buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (name, value) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to_buffer buf name;
        Buffer.add_char buf ':';
        to_buffer buf value)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

let envelope ~schema ~version fields =
  Obj (("schema", String schema) :: ("version", Int version) :: fields)

let write_file path v =
  let oc = open_out path in
  output_string oc (to_string v);
  output_char oc '\n';
  close_out oc
