type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_to_buffer buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | ch when Char.code ch < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char buf ch)
    s;
  Buffer.add_char buf '"'

let rec to_buffer buf v =
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
    if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.6g" f)
    else Buffer.add_string buf "null"
  | String s -> escape_to_buffer buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (name, value) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to_buffer buf name;
        Buffer.add_char buf ':';
        to_buffer buf value)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

let envelope ~schema ~version fields =
  Obj (("schema", String schema) :: ("version", Int version) :: fields)

let write_file path v =
  let oc = open_out path in
  output_string oc (to_string v);
  output_char oc '\n';
  close_out oc

(* --- parsing ----------------------------------------------------------- *)

(* A strict recursive-descent parser for the subset of JSON this module
   prints (which is all of JSON minus non-finite numbers).  It exists so
   that the repository can read its *own* artifacts back: the worker
   pool (lib/par) aggregates per-job results over pipes as envelope
   lines, and `dfv validate` checks uploaded artifacts in CI.  It is not
   a general-purpose JSON library: inputs it did not print may be
   rejected (e.g. numbers with exotic spellings), which is fine — a
   rejection is exactly the validation signal. *)

exception Parse of string

let parse_error fmt = Printf.ksprintf (fun m -> raise (Parse m)) fmt

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> parse_error "expected '%c' at offset %d, got '%c'" c !pos c'
    | None -> parse_error "expected '%c' at offset %d, got end of input" c !pos
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let literal word v =
    let w = String.length word in
    if !pos + w <= n && String.sub s !pos w = word then begin
      pos := !pos + w;
      v
    end
    else parse_error "bad literal at offset %d" !pos
  in
  let utf8_of_code buf c =
    (* Encode the BMP codepoint from a \uXXXX escape as UTF-8. *)
    if c < 0x80 then Buffer.add_char buf (Char.chr c)
    else if c < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (c lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (c lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> parse_error "unterminated string at offset %d" !pos
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some '"' -> advance (); Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance (); Buffer.add_char buf '\\'; go ()
        | Some '/' -> advance (); Buffer.add_char buf '/'; go ()
        | Some 'b' -> advance (); Buffer.add_char buf '\b'; go ()
        | Some 'f' -> advance (); Buffer.add_char buf '\012'; go ()
        | Some 'n' -> advance (); Buffer.add_char buf '\n'; go ()
        | Some 'r' -> advance (); Buffer.add_char buf '\r'; go ()
        | Some 't' -> advance (); Buffer.add_char buf '\t'; go ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then parse_error "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          (match int_of_string_opt ("0x" ^ hex) with
          | Some c -> utf8_of_code buf c
          | None -> parse_error "bad \\u escape %S at offset %d" hex !pos);
          pos := !pos + 4;
          go ()
        | Some c -> parse_error "bad escape '\\%c' at offset %d" c !pos
        | None -> parse_error "unterminated escape at offset %d" !pos)
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    (* OCaml's conversions are laxer than the JSON grammar (leading
       zeros, underscores, hex), so validate the shape first:
       minus? (0 | nonzero digits) frac? exp? *)
    let valid =
      let n = String.length tok in
      let i = ref (if n > 0 && tok.[0] = '-' then 1 else 0) in
      let digit c = c >= '0' && c <= '9' in
      let run_digits () =
        let s = !i in
        while !i < n && digit tok.[!i] do
          incr i
        done;
        !i > s
      in
      let int_ok =
        if !i < n && tok.[!i] = '0' then (incr i; true) else run_digits ()
      in
      let frac_ok =
        if !i < n && tok.[!i] = '.' then (incr i; run_digits ()) else true
      in
      let exp_ok =
        if !i < n && (tok.[!i] = 'e' || tok.[!i] = 'E') then begin
          incr i;
          if !i < n && (tok.[!i] = '+' || tok.[!i] = '-') then incr i;
          run_digits ()
        end
        else true
      in
      n > 0 && int_ok && frac_ok && exp_ok && !i = n
    in
    if not valid then parse_error "bad number %S at offset %d" tok start;
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> parse_error "bad number %S at offset %d" tok start)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> parse_error "expected ',' or ']' at offset %d" !pos
        in
        List (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let name = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((name, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((name, v) :: acc)
          | _ -> parse_error "expected ',' or '}' at offset %d" !pos
        in
        Obj (fields [])
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> parse_error "unexpected '%c' at offset %d" c !pos
    | None -> parse_error "unexpected end of input at offset %d" !pos
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then parse_error "trailing garbage at offset %d" !pos;
    v
  with
  | v -> Ok v
  | exception Parse m -> Error m

(* --- accessors --------------------------------------------------------- *)

let field name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let envelope_of v =
  match (field "schema" v, field "version" v) with
  | Some (String schema), Some (Int version) -> Some (schema, version)
  | _ -> None
