type failure = {
  f_port : string;
  f_cycle : int;
  f_expected : string option;
  f_got : string;
}

type t = {
  design : string;
  kind : string;
  txn_index : int option;
  stimulus : (string * string) list;
  failures : failure list;
  vcd : string option;
  vcd_window : (int * int) option;
  notes : string list;
  metrics : Json.t;
  events : Json.t;
  coverage : Json.t;
}

let make ~design ~kind ?txn_index ?(stimulus = []) ?(failures = []) ?vcd
    ?vcd_window ?(notes = []) () =
  {
    design;
    kind;
    txn_index;
    stimulus;
    failures;
    vcd;
    vcd_window;
    notes;
    metrics = Metrics.snapshot ();
    events = Trace.recent_json ();
    coverage = Coverage.snapshot ();
  }

let design t = t.design
let kind t = t.kind
let txn_index t = t.txn_index
let failures t = t.failures
let vcd t = t.vcd

let json_of_failure f =
  Json.Obj
    [ ("port", Json.String f.f_port);
      ("cycle", Json.Int f.f_cycle);
      ( "expected",
        match f.f_expected with None -> Json.Null | Some e -> Json.String e );
      ("got", Json.String f.f_got) ]

let opt_int = function None -> Json.Null | Some i -> Json.Int i

let to_json t =
  Json.envelope ~schema:"dfv-triage" ~version:1
    [ ("design", Json.String t.design);
      ("kind", Json.String t.kind);
      ("txn_index", opt_int t.txn_index);
      ( "stimulus",
        Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) t.stimulus) );
      ("failures", Json.List (List.map json_of_failure t.failures));
      ( "vcd",
        match t.vcd with None -> Json.Null | Some v -> Json.String v );
      ( "vcd_window",
        match t.vcd_window with
        | None -> Json.Null
        | Some (lo, hi) -> Json.List [ Json.Int lo; Json.Int hi ] );
      ("notes", Json.List (List.map (fun n -> Json.String n) t.notes));
      ("metrics", t.metrics);
      ("recent_events", t.events);
      ("coverage", t.coverage) ]

let write_file path t = Json.write_file path (to_json t)

let pp fmt t =
  Format.fprintf fmt "@[<v>triage: %s (%s)@," t.design t.kind;
  (match t.txn_index with
  | Some i -> Format.fprintf fmt "  transaction: #%d@," i
  | None -> ());
  (match t.vcd_window with
  | Some (lo, hi) -> Format.fprintf fmt "  vcd window: cycles %d..%d@," lo hi
  | None -> ());
  List.iter
    (fun f ->
      Format.fprintf fmt "  %s @@ cycle %d: got %s%s@," f.f_port f.f_cycle
        f.f_got
        (match f.f_expected with
        | Some e -> Printf.sprintf " (expected %s)" e
        | None -> " (unexpected)"))
    t.failures;
  List.iter (fun n -> Format.fprintf fmt "  note: %s@," n) t.notes;
  Format.fprintf fmt "@]"
