(* A handle's [id] is its slot in the global registry's id space
   (assigned under the lock at creation); shadow-born handles carry -1
   and are already domain-local.  The id turns the shadow hot path into
   an array access instead of a per-operation string hash. *)
type counter = { c_name : string; c_id : int; mutable c : int }

type gauge = {
  g_name : string;
  g_id : int;
  mutable g : int;
  mutable g_max : int;
}

let nbuckets = 63

type histogram = {
  h_name : string;
  h_id : int;
  buckets : int array; (* length nbuckets *)
  mutable h_count : int;
  mutable h_sum : int;
}

(* Registries keep insertion order so snapshots are stable.  The
   [*_slots] arrays are the id-indexed fast lanes a shadow registry uses
   to find (or lazily create) its domain-local counterpart of a global
   handle; the global registry leaves them empty. *)
type registry = {
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
  mutable order : [ `C of counter | `G of gauge | `H of histogram ] list;
  mutable c_slots : counter option array;
  mutable g_slots : gauge option array;
  mutable h_slots : histogram option array;
}

let fresh_registry () =
  {
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
    order = [];
    c_slots = [||];
    g_slots = [||];
    h_slots = [||];
  }

let global = fresh_registry ()

(* Registration is a cold path but may race when worker domains create
   handles by name while the main domain snapshots; a mutex keeps the
   global tables consistent.  Hot-path operations never take it. *)
let registry_lock = Mutex.create ()

(* Global id allocators, bumped under [registry_lock]. *)
let c_ids = ref 0
let g_ids = ref 0
let h_ids = ref 0

(* Domain-local shadow registries: while a {!Dpool} worker domain runs
   a job it records into its own private registry (installed via
   {!isolate_domain}), so the hot paths stay free of cross-domain data
   races and each job's telemetry is a clean delta — the in-process
   analogue of the fork executor's reset-then-ship protocol.  The
   [shadows_active] fast path keeps the cost on runs with no domain
   workers to one atomic load and a branch. *)
let shadows_active = Atomic.make 0

let shadow_key : registry option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let shadow () =
  if Atomic.get shadows_active = 0 then None else Domain.DLS.get shadow_key

(* [id] is consumed only on actual creation (a thunk, so global id
   allocation happens exactly once per name). *)
let no_id () = -1

let take ids () =
  let i = !ids in
  ids := i + 1;
  i

let counter_in ~id r name =
  match Hashtbl.find_opt r.counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; c_id = id (); c = 0 } in
    Hashtbl.add r.counters name c;
    r.order <- `C c :: r.order;
    c

let gauge_in ~id r name =
  match Hashtbl.find_opt r.gauges name with
  | Some g -> g
  | None ->
    let g = { g_name = name; g_id = id (); g = 0; g_max = 0 } in
    Hashtbl.add r.gauges name g;
    r.order <- `G g :: r.order;
    g

let histogram_in ~id r name =
  match Hashtbl.find_opt r.histograms name with
  | Some h -> h
  | None ->
    let h =
      {
        h_name = name;
        h_id = id ();
        buckets = Array.make nbuckets 0;
        h_count = 0;
        h_sum = 0;
      }
    in
    Hashtbl.add r.histograms name h;
    r.order <- `H h :: r.order;
    h

(* Slot lookup: the shadow's counterpart of a global handle, created on
   first touch (and entered into tbl/order so snapshots see it).  A
   shadow-born handle (id -1) is already this domain's record. *)
let grow slots i =
  let n = max 16 (max (i + 1) (2 * Array.length slots)) in
  let a = Array.make n None in
  Array.blit slots 0 a 0 (Array.length slots);
  a

let slot_counter r (c : counter) =
  let i = c.c_id in
  if i < 0 then c
  else begin
    if i >= Array.length r.c_slots then r.c_slots <- grow r.c_slots i;
    match r.c_slots.(i) with
    | Some c' -> c'
    | None ->
      let c' = counter_in ~id:(fun () -> i) r c.c_name in
      r.c_slots.(i) <- Some c';
      c'
  end

let slot_gauge r (g : gauge) =
  let i = g.g_id in
  if i < 0 then g
  else begin
    if i >= Array.length r.g_slots then r.g_slots <- grow r.g_slots i;
    match r.g_slots.(i) with
    | Some g' -> g'
    | None ->
      let g' = gauge_in ~id:(fun () -> i) r g.g_name in
      r.g_slots.(i) <- Some g';
      g'
  end

let slot_histogram r (h : histogram) =
  let i = h.h_id in
  if i < 0 then h
  else begin
    if i >= Array.length r.h_slots then r.h_slots <- grow r.h_slots i;
    match r.h_slots.(i) with
    | Some h' -> h'
    | None ->
      let h' = histogram_in ~id:(fun () -> i) r h.h_name in
      r.h_slots.(i) <- Some h';
      h'
  end

let with_lock f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

let counter name =
  match shadow () with
  | Some r -> counter_in ~id:no_id r name
  | None -> with_lock (fun () -> counter_in ~id:(take c_ids) global name)

let incr c =
  match shadow () with
  | Some r ->
    let c = slot_counter r c in
    c.c <- c.c + 1
  | None -> c.c <- c.c + 1

let add c n =
  match shadow () with
  | Some r ->
    let c = slot_counter r c in
    c.c <- c.c + n
  | None -> c.c <- c.c + n

let counter_value c = c.c

let gauge name =
  match shadow () with
  | Some r -> gauge_in ~id:no_id r name
  | None -> with_lock (fun () -> gauge_in ~id:(take g_ids) global name)

let set_gauge g v =
  let g = match shadow () with Some r -> slot_gauge r g | None -> g in
  g.g <- v;
  if v > g.g_max then g.g_max <- v

let gauge_value g = g.g
let gauge_max g = g.g_max

let histogram name =
  match shadow () with
  | Some r -> histogram_in ~id:no_id r name
  | None -> with_lock (fun () -> histogram_in ~id:(take h_ids) global name)

let bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 1 and x = ref v in
    while !x > 1 do
      x := !x lsr 1;
      b := !b + 1
    done;
    min !b (nbuckets - 1)
  end

let bucket_bounds i =
  if i < 0 || i >= nbuckets then invalid_arg "Metrics.bucket_bounds";
  if i = 0 then (min_int, 0)
  else if i = nbuckets - 1 then (1 lsl (i - 1), max_int)
  else (1 lsl (i - 1), (1 lsl i) - 1)

let observe h v =
  let h = match shadow () with Some r -> slot_histogram r h | None -> h in
  let b = h.buckets in
  let i = bucket_of v in
  b.(i) <- b.(i) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v

let bucket_counts h = Array.copy h.buckets
let histogram_count h = h.h_count
let histogram_sum h = h.h_sum

let reset () =
  Hashtbl.iter (fun _ c -> c.c <- 0) global.counters;
  Hashtbl.iter
    (fun _ g ->
      g.g <- 0;
      g.g_max <- 0)
    global.gauges;
  Hashtbl.iter
    (fun _ h ->
      Array.fill h.buckets 0 nbuckets 0;
      h.h_count <- 0;
      h.h_sum <- 0)
    global.histograms

(* Duration-valued metrics (wall-clock microseconds and friends) are
   non-deterministic across runs; everything else in a snapshot is a
   pure function of the workload.  The suffix convention is load-bearing:
   name a histogram [foo_us] and parity comparisons will ignore it. *)
let timing_metric name =
  let suffixed s =
    let n = String.length name and k = String.length s in
    n > k && String.sub name (n - k) k = s
  in
  suffixed "_us" || suffixed "_ns" || suffixed "_ms"

let merge j =
  let err what = Error ("Metrics.merge: " ^ what) in
  match Json.envelope_of j with
  | Some ("dfv-metrics", 1) ->
    let bad = ref None in
    let fail what = if !bad = None then bad := Some what in
    (match Json.field "counters" j with
    | Some (Json.Obj fields) ->
      List.iter
        (fun (name, v) ->
          match v with
          | Json.Int n -> add (counter name) n
          | _ -> fail ("counter " ^ name))
        fields
    | _ -> fail "counters");
    (match Json.field "gauges" j with
    | Some (Json.Obj fields) ->
      List.iter
        (fun (name, v) ->
          match (Json.field "value" v, Json.field "max" v) with
          | Some (Json.Int value), Some (Json.Int max_v) ->
            let g = gauge name in
            (* Max-of-high-water: a merged gauge reports the peak any
               process saw; the instantaneous value has no cross-process
               meaning, so it too takes the max. *)
            if value > g.g then g.g <- value;
            if max_v > g.g_max then g.g_max <- max_v
          | _ -> fail ("gauge " ^ name))
        fields
    | _ -> fail "gauges");
    (match Json.field "histograms" j with
    | Some (Json.Obj fields) ->
      List.iter
        (fun (name, v) ->
          match
            (Json.field "count" v, Json.field "sum" v, Json.field "buckets" v)
          with
          | Some (Json.Int count), Some (Json.Int sum), Some (Json.List bs) ->
            let h = histogram name in
            h.h_count <- h.h_count + count;
            h.h_sum <- h.h_sum + sum;
            List.iter
              (fun b ->
                match (Json.field "lo" b, Json.field "count" b) with
                | Some (Json.Int lo), Some (Json.Int n) ->
                  (* [bucket_of lo] inverts [bucket_bounds]: lo <= 0 is
                     bucket 0, lo = 2^(i-1) is bucket i. *)
                  let i = bucket_of lo in
                  h.buckets.(i) <- h.buckets.(i) + n
                | _ -> fail ("histogram bucket in " ^ name))
              bs
          | _ -> fail ("histogram " ^ name))
        fields
    | _ -> fail "histograms");
    (match !bad with None -> Ok () | Some what -> err ("malformed " ^ what))
  | _ -> err "not a dfv-metrics v1 snapshot"

(* Reduce a snapshot to its run-deterministic core: drop duration-valued
   metrics wholesale and keep only the high-water mark of each gauge, so
   a sharded run's merged snapshot compares equal to the sequential
   run's byte for byte. *)
let strip_timing j =
  let keep (name, _) = not (timing_metric name) in
  match j with
  | Json.Obj fields ->
    Json.Obj
      (List.map
         (fun (k, v) ->
           match (k, v) with
           | ("counters", Json.Obj fs) | ("histograms", Json.Obj fs) ->
             (k, Json.Obj (List.filter keep fs))
           | ("gauges", Json.Obj fs) ->
             ( k,
               Json.Obj
                 (List.filter_map
                    (fun (name, v) ->
                      if timing_metric name then None
                      else
                        match Json.field "max" v with
                        | Some m -> Some (name, Json.Obj [ ("max", m) ])
                        | None -> Some (name, v))
                    fs) )
           | _ -> (k, v))
         fields)
  | _ -> j

let snapshot_of r =
  let cs = ref [] and gs = ref [] and hs = ref [] in
  List.iter
    (function
      | `C c -> cs := (c.c_name, Json.Int c.c) :: !cs
      | `G g ->
        gs :=
          ( g.g_name,
            Json.Obj [ ("value", Json.Int g.g); ("max", Json.Int g.g_max) ] )
          :: !gs
      | `H h ->
        let buckets = ref [] in
        for i = nbuckets - 1 downto 0 do
          if h.buckets.(i) > 0 then begin
            let lo, hi = bucket_bounds i in
            buckets :=
              Json.Obj
                [ ("lo", Json.Int lo);
                  ("hi", Json.Int hi);
                  ("count", Json.Int h.buckets.(i)) ]
              :: !buckets
          end
        done;
        hs :=
          ( h.h_name,
            Json.Obj
              [ ("count", Json.Int h.h_count);
                ("sum", Json.Int h.h_sum);
                ("buckets", Json.List !buckets) ] )
          :: !hs)
    r.order;
  Json.envelope ~schema:"dfv-metrics" ~version:1
    [ ("counters", Json.Obj !cs);
      ("gauges", Json.Obj !gs);
      ("histograms", Json.Obj !hs) ]

let snapshot () = snapshot_of global

(* --- domain-local isolation (the in-process worker protocol) ----------- *)

let isolate_domain () =
  (match Domain.DLS.get shadow_key with
  | Some _ -> invalid_arg "Metrics.isolate_domain: already isolated"
  | None -> ());
  Domain.DLS.set shadow_key (Some (fresh_registry ()));
  Atomic.incr shadows_active

let domain_snapshot () =
  match Domain.DLS.get shadow_key with
  | Some r -> snapshot_of r
  | None -> invalid_arg "Metrics.domain_snapshot: not isolated"

let release_domain () =
  match Domain.DLS.get shadow_key with
  | Some _ ->
    Domain.DLS.set shadow_key None;
    Atomic.decr shadows_active
  | None -> ()
