type counter = { c_name : string; mutable c : int }
type gauge = { g_name : string; mutable g : int; mutable g_max : int }

let nbuckets = 63

type histogram = {
  h_name : string;
  buckets : int array; (* length nbuckets *)
  mutable h_count : int;
  mutable h_sum : int;
}

(* Registries keep insertion order so snapshots are stable. *)
let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16
let order : [ `C of counter | `G of gauge | `H of histogram ] list ref = ref []

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; c = 0 } in
    Hashtbl.add counters name c;
    order := `C c :: !order;
    c

let incr c = c.c <- c.c + 1
let add c n = c.c <- c.c + n
let counter_value c = c.c

let gauge name =
  match Hashtbl.find_opt gauges name with
  | Some g -> g
  | None ->
    let g = { g_name = name; g = 0; g_max = 0 } in
    Hashtbl.add gauges name g;
    order := `G g :: !order;
    g

let set_gauge g v =
  g.g <- v;
  if v > g.g_max then g.g_max <- v

let gauge_value g = g.g
let gauge_max g = g.g_max

let histogram name =
  match Hashtbl.find_opt histograms name with
  | Some h -> h
  | None ->
    let h =
      { h_name = name; buckets = Array.make nbuckets 0; h_count = 0; h_sum = 0 }
    in
    Hashtbl.add histograms name h;
    order := `H h :: !order;
    h

let bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 1 and x = ref v in
    while !x > 1 do
      x := !x lsr 1;
      b := !b + 1
    done;
    min !b (nbuckets - 1)
  end

let bucket_bounds i =
  if i < 0 || i >= nbuckets then invalid_arg "Metrics.bucket_bounds";
  if i = 0 then (min_int, 0)
  else if i = nbuckets - 1 then (1 lsl (i - 1), max_int)
  else (1 lsl (i - 1), (1 lsl i) - 1)

let observe h v =
  let b = h.buckets in
  let i = bucket_of v in
  b.(i) <- b.(i) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v

let bucket_counts h = Array.copy h.buckets
let histogram_count h = h.h_count
let histogram_sum h = h.h_sum

let reset () =
  Hashtbl.iter (fun _ c -> c.c <- 0) counters;
  Hashtbl.iter
    (fun _ g ->
      g.g <- 0;
      g.g_max <- 0)
    gauges;
  Hashtbl.iter
    (fun _ h ->
      Array.fill h.buckets 0 nbuckets 0;
      h.h_count <- 0;
      h.h_sum <- 0)
    histograms

(* Duration-valued metrics (wall-clock microseconds and friends) are
   non-deterministic across runs; everything else in a snapshot is a
   pure function of the workload.  The suffix convention is load-bearing:
   name a histogram [foo_us] and parity comparisons will ignore it. *)
let timing_metric name =
  let suffixed s =
    let n = String.length name and k = String.length s in
    n > k && String.sub name (n - k) k = s
  in
  suffixed "_us" || suffixed "_ns" || suffixed "_ms"

let merge j =
  let err what = Error ("Metrics.merge: " ^ what) in
  match Json.envelope_of j with
  | Some ("dfv-metrics", 1) ->
    let bad = ref None in
    let fail what = if !bad = None then bad := Some what in
    (match Json.field "counters" j with
    | Some (Json.Obj fields) ->
      List.iter
        (fun (name, v) ->
          match v with
          | Json.Int n -> add (counter name) n
          | _ -> fail ("counter " ^ name))
        fields
    | _ -> fail "counters");
    (match Json.field "gauges" j with
    | Some (Json.Obj fields) ->
      List.iter
        (fun (name, v) ->
          match (Json.field "value" v, Json.field "max" v) with
          | Some (Json.Int value), Some (Json.Int max_v) ->
            let g = gauge name in
            (* Max-of-high-water: a merged gauge reports the peak any
               process saw; the instantaneous value has no cross-process
               meaning, so it too takes the max. *)
            if value > g.g then g.g <- value;
            if max_v > g.g_max then g.g_max <- max_v
          | _ -> fail ("gauge " ^ name))
        fields
    | _ -> fail "gauges");
    (match Json.field "histograms" j with
    | Some (Json.Obj fields) ->
      List.iter
        (fun (name, v) ->
          match
            (Json.field "count" v, Json.field "sum" v, Json.field "buckets" v)
          with
          | Some (Json.Int count), Some (Json.Int sum), Some (Json.List bs) ->
            let h = histogram name in
            h.h_count <- h.h_count + count;
            h.h_sum <- h.h_sum + sum;
            List.iter
              (fun b ->
                match (Json.field "lo" b, Json.field "count" b) with
                | Some (Json.Int lo), Some (Json.Int n) ->
                  (* [bucket_of lo] inverts [bucket_bounds]: lo <= 0 is
                     bucket 0, lo = 2^(i-1) is bucket i. *)
                  let i = bucket_of lo in
                  h.buckets.(i) <- h.buckets.(i) + n
                | _ -> fail ("histogram bucket in " ^ name))
              bs
          | _ -> fail ("histogram " ^ name))
        fields
    | _ -> fail "histograms");
    (match !bad with None -> Ok () | Some what -> err ("malformed " ^ what))
  | _ -> err "not a dfv-metrics v1 snapshot"

(* Reduce a snapshot to its run-deterministic core: drop duration-valued
   metrics wholesale and keep only the high-water mark of each gauge, so
   a sharded run's merged snapshot compares equal to the sequential
   run's byte for byte. *)
let strip_timing j =
  let keep (name, _) = not (timing_metric name) in
  match j with
  | Json.Obj fields ->
    Json.Obj
      (List.map
         (fun (k, v) ->
           match (k, v) with
           | ("counters", Json.Obj fs) | ("histograms", Json.Obj fs) ->
             (k, Json.Obj (List.filter keep fs))
           | ("gauges", Json.Obj fs) ->
             ( k,
               Json.Obj
                 (List.filter_map
                    (fun (name, v) ->
                      if timing_metric name then None
                      else
                        match Json.field "max" v with
                        | Some m -> Some (name, Json.Obj [ ("max", m) ])
                        | None -> Some (name, v))
                    fs) )
           | _ -> (k, v))
         fields)
  | _ -> j

let snapshot () =
  let cs = ref [] and gs = ref [] and hs = ref [] in
  List.iter
    (function
      | `C c -> cs := (c.c_name, Json.Int c.c) :: !cs
      | `G g ->
        gs :=
          ( g.g_name,
            Json.Obj [ ("value", Json.Int g.g); ("max", Json.Int g.g_max) ] )
          :: !gs
      | `H h ->
        let buckets = ref [] in
        for i = nbuckets - 1 downto 0 do
          if h.buckets.(i) > 0 then begin
            let lo, hi = bucket_bounds i in
            buckets :=
              Json.Obj
                [ ("lo", Json.Int lo);
                  ("hi", Json.Int hi);
                  ("count", Json.Int h.buckets.(i)) ]
              :: !buckets
          end
        done;
        hs :=
          ( h.h_name,
            Json.Obj
              [ ("count", Json.Int h.h_count);
                ("sum", Json.Int h.h_sum);
                ("buckets", Json.List !buckets) ] )
          :: !hs)
    !order;
  Json.envelope ~schema:"dfv-metrics" ~version:1
    [ ("counters", Json.Obj !cs);
      ("gauges", Json.Obj !gs);
      ("histograms", Json.Obj !hs) ]
