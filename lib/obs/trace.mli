(** Span tracer: nestable, monotonic-clock-timed spans with typed
    attributes, collected into a bounded ring buffer and emitted as
    Chrome [trace_event] JSON (load the file in [chrome://tracing] or
    Perfetto).

    The tracer is a process-wide sink.  When no sink is installed —
    the default — every entry point is a cheap no-op: [begin_span]
    returns a shared null span after one reference comparison, so
    instrumented hot paths cost a branch.  Timestamps come from a
    monotonized wall clock (never decreasing within a sink's life), so
    span durations are always non-negative and nesting is reconstructible
    from [ts]/[dur] alone, which is exactly how Chrome renders it. *)

type span

val null_span : span

val enable : ?capacity:int -> unit -> unit
(** Install a fresh sink with room for [capacity] (default 65536)
    events; older events are overwritten ring-buffer style and counted
    as dropped. *)

val disable : unit -> unit
(** Remove the sink (recorded events are discarded). *)

val enabled : unit -> bool

val begin_span :
  ?cat:string -> ?args:(string * Json.t) list -> string -> span

val end_span : span -> unit
(** Close the span and record it as one complete ("ph":"X") event.
    Closing [null_span] (or any span begun while disabled) is a no-op. *)

val with_span :
  ?cat:string -> ?args:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span; the span is closed even on exceptions. *)

val instant : ?cat:string -> ?args:(string * Json.t) list -> string -> unit
(** Record a zero-duration ("ph":"i") event. *)

val depth : unit -> int
(** Current span nesting depth (0 when disabled or outside any span). *)

val max_depth : unit -> int
(** Deepest nesting observed since the sink was installed. *)

val events : unit -> (string * float * float * int) list
(** Recorded events, oldest first, as [(name, ts_us, dur_us, depth)] —
    the typed view the tests inspect. *)

val recent_json : ?limit:int -> unit -> Json.t
(** The last [limit] (default 32) events as a JSON list — the span
    snapshot embedded in triage bundles. *)

val to_json : unit -> Json.t
(** The whole buffer under the common envelope:
    [{"schema":"dfv-trace","version":1,"traceEvents":[...],...}].
    Chrome's JSON object format ignores the extra keys.  Events carry
    the pid of the process that recorded them (absorbed worker events
    keep their worker's pid), preceded by ["process_name"] metadata
    events labelling each lane; ["dropped"] counts ring overwrites here
    {e plus} drops reported by absorbed exports. *)

val raw_json : unit -> Json.t
(** The bare Chrome "JSON array format" — just the event list, no
    envelope keys — for consumers that reject the object form.  A
    nonzero drop count is carried as a ["trace.dropped"] instant. *)

val export : unit -> Json.t
(** Worker side of cross-process shipping: the sink's whole buffer as a
    [{"schema":"dfv-trace-export","version":1,...}] payload carrying
    this process's pid, the sink's absolute epoch (so the parent can
    re-base timestamps), the drop count, and every event with its
    sink-relative timestamps.  [Json.Null] when disabled. *)

val absorb : ?label:string -> ?job:int -> Json.t -> (unit, string) result
(** Parent side: merge an {!export}ed buffer into the current sink.
    Timestamps are re-based from the worker's epoch onto this sink's,
    events keep the worker's pid (rendering as a separate process lane,
    named [label] when given — e.g. ["dfv domain 3"] — else
    ["dfv worker <pid>"]) and are tagged with [args.job] when [job] is
    given; the export's drop count accumulates into this sink's
    reported [dropped].  A no-op [Ok ()] when tracing is disabled
    here. *)

(** {2 Domain-local isolation}

    The in-process analogue of {!export}/{!absorb} for
    {!Dfv_par.Dpool} worker domains: {!isolate_domain} installs a
    private shadow sink on the calling domain (only when process-wide
    tracing is enabled — otherwise spans stay no-ops), after which the
    domain's spans record into its own ring, tagged with the domain id
    in place of a worker pid.  {!domain_export} renders the shadow in
    the same [dfv-trace-export] wire form, ready for {!absorb} on the
    coordinating domain, and {!release_domain} uninstalls it. *)

val isolate_domain : unit -> unit
(** Install a fresh shadow sink on the calling domain (no-op when
    tracing is disabled).  Raises [Invalid_argument] if the domain is
    already isolated. *)

val domain_export : unit -> Json.t
(** The calling domain's shadow sink as a [dfv-trace-export] payload;
    [Json.Null] when the domain is not isolated. *)

val release_domain : unit -> unit
(** Uninstall the calling domain's shadow sink (a no-op when none is
    installed). *)

val write_file : ?raw:bool -> string -> unit
(** Write {!to_json} (or {!raw_json} when [raw]) to [path]. *)
