(* Arbitrary-width two-state bit-vectors.

   Representation: little-endian array of 32-bit limbs stored in OCaml
   ints.  Invariants: [width >= 1]; [Array.length limbs = (width+31)/32];
   unused high bits of the top limb are zero.  Limb products are computed
   via 16-bit digit splitting so every intermediate fits in a 63-bit
   OCaml int. *)

type t = { width : int; limbs : int array }

exception Width_mismatch of string
exception Invalid_width of int

let limb_bits = 32
let limb_mask = 0xFFFFFFFF

let nlimbs width = (width + limb_bits - 1) / limb_bits

(* Mask of valid bits in the top limb of a [width]-bit vector. *)
let top_mask width =
  let r = width mod limb_bits in
  if r = 0 then limb_mask else (1 lsl r) - 1

let check_width w = if w < 1 then raise (Invalid_width w)

let normalize width limbs =
  let n = nlimbs width in
  limbs.(n - 1) <- limbs.(n - 1) land top_mask width;
  { width; limbs }

let zero w =
  check_width w;
  { width = w; limbs = Array.make (nlimbs w) 0 }

let ones w =
  check_width w;
  let limbs = Array.make (nlimbs w) limb_mask in
  normalize w limbs

let create ~width v =
  check_width width;
  let n = nlimbs width in
  let limbs = Array.make n 0 in
  (* Fill from [v]; negative values sign-extend with all-ones limbs. *)
  let fill = if v < 0 then limb_mask else 0 in
  let rec loop i x =
    if i < n then begin
      limbs.(i) <- x land limb_mask;
      (* Arithmetic shift keeps the sign for negative [v]. *)
      loop (i + 1) (x asr limb_bits)
    end
  in
  loop 0 v;
  (* [asr] exhausts to 0 or -1; pad remaining limbs accordingly. *)
  let filled = min n ((Sys.int_size + limb_bits - 1) / limb_bits) in
  for i = filled to n - 1 do
    limbs.(i) <- fill
  done;
  normalize width limbs

let one w = create ~width:w 1
let of_bool b = if b then one 1 else zero 1

let width t = t.width

let get t i =
  if i < 0 || i >= t.width then
    invalid_arg (Printf.sprintf "Bitvec.get: bit %d of %d-bit vector" i t.width);
  t.limbs.(i lsr 5) land (1 lsl (i land 31)) <> 0

let set_bit t i b =
  if i < 0 || i >= t.width then
    invalid_arg
      (Printf.sprintf "Bitvec.set_bit: bit %d of %d-bit vector" i t.width);
  let limbs = Array.copy t.limbs in
  let j = i lsr 5 and m = 1 lsl (i land 31) in
  limbs.(j) <- (if b then limbs.(j) lor m else limbs.(j) land lnot m);
  { t with limbs }

let of_bits a =
  let w = Array.length a in
  check_width w;
  let limbs = Array.make (nlimbs w) 0 in
  for i = 0 to w - 1 do
    if a.(i) then limbs.(i lsr 5) <- limbs.(i lsr 5) lor (1 lsl (i land 31))
  done;
  { width = w; limbs }

let to_bits t = Array.init t.width (fun i -> get t i)

let is_zero t = Array.for_all (fun l -> l = 0) t.limbs

let msb t = get t (t.width - 1)

let popcount t =
  let count_limb l =
    let rec go acc x = if x = 0 then acc else go (acc + (x land 1)) (x lsr 1) in
    go 0 l
  in
  Array.fold_left (fun acc l -> acc + count_limb l) 0 t.limbs

let to_int t =
  let n = Array.length t.limbs in
  if n > 2 then begin
    for i = 2 to n - 1 do
      if t.limbs.(i) <> 0 then failwith "Bitvec.to_int: value too wide"
    done
  end;
  let lo = t.limbs.(0) in
  let hi = if n >= 2 then t.limbs.(1) else 0 in
  if hi lsr (Sys.int_size - 1 - limb_bits) <> 0 then
    failwith "Bitvec.to_int: value too wide";
  (hi lsl limb_bits) lor lo

let to_signed_int t =
  if not (msb t) then to_int t
  else begin
    (* Value is negative: compute -(two's complement). *)
    let n = Array.length t.limbs in
    (* Negate: invert all valid bits, add one, then read as unsigned. *)
    let limbs = Array.map (fun l -> lnot l land limb_mask) t.limbs in
    let rec add1 i =
      if i < n then begin
        let s = limbs.(i) + 1 in
        limbs.(i) <- s land limb_mask;
        if s > limb_mask then add1 (i + 1)
      end
    in
    add1 0;
    let v = normalize t.width limbs in
    let mag =
      try to_int v with Failure _ -> failwith "Bitvec.to_signed_int: value too wide"
    in
    -mag
  end

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)

let equal a b = a.width = b.width && a.limbs = b.limbs

let ucompare a b =
  if a.width <> b.width then raise (Width_mismatch "ucompare");
  let n = Array.length a.limbs in
  let rec go i =
    if i < 0 then 0
    else if a.limbs.(i) <> b.limbs.(i) then compare a.limbs.(i) b.limbs.(i)
    else go (i - 1)
  in
  go (n - 1)

let scompare a b =
  if a.width <> b.width then raise (Width_mismatch "scompare");
  match (msb a, msb b) with
  | true, false -> -1
  | false, true -> 1
  | _ -> ucompare a b

let compare a b =
  if a.width <> b.width then Stdlib.compare a.width b.width else ucompare a b

let ult a b = ucompare a b < 0
let ule a b = ucompare a b <= 0
let ugt a b = ucompare a b > 0
let uge a b = ucompare a b >= 0
let slt a b = scompare a b < 0
let sle a b = scompare a b <= 0
let sgt a b = scompare a b > 0
let sge a b = scompare a b >= 0

(* ------------------------------------------------------------------ *)
(* Resizing                                                            *)

let uresize t w =
  check_width w;
  if w = t.width then t
  else begin
    let n = nlimbs w in
    let limbs = Array.make n 0 in
    Array.blit t.limbs 0 limbs 0 (min n (Array.length t.limbs));
    normalize w limbs
  end

let sresize t w =
  check_width w;
  if w = t.width then t
  else if w < t.width || not (msb t) then uresize t w
  else begin
    let n = nlimbs w in
    let limbs = Array.make n limb_mask in
    let on = Array.length t.limbs in
    Array.blit t.limbs 0 limbs 0 on;
    (* Extend the sign through the unused bits of the old top limb. *)
    let r = t.width mod limb_bits in
    if r <> 0 then limbs.(on - 1) <- t.limbs.(on - 1) lor (limb_mask lxor top_mask t.width);
    normalize w limbs
  end

(* ------------------------------------------------------------------ *)
(* Bitwise                                                             *)

let map2 name f a b =
  if a.width <> b.width then raise (Width_mismatch name);
  let limbs = Array.init (Array.length a.limbs) (fun i -> f a.limbs.(i) b.limbs.(i)) in
  normalize a.width limbs

let logand a b = map2 "logand" ( land ) a b
let logor a b = map2 "logor" ( lor ) a b
let logxor a b = map2 "logxor" ( lxor ) a b

let lognot a =
  let limbs = Array.map (fun l -> lnot l land limb_mask) a.limbs in
  normalize a.width limbs

let reduce_and t = equal t (ones t.width)
let reduce_or t = not (is_zero t)
let reduce_xor t = popcount t land 1 = 1

let shift_left t n =
  if n < 0 then invalid_arg "Bitvec.shift_left: negative amount";
  if n = 0 then t
  else if n >= t.width then zero t.width
  else begin
    let nl = Array.length t.limbs in
    let limbs = Array.make nl 0 in
    let limb_shift = n lsr 5 and bit_shift = n land 31 in
    for i = nl - 1 downto limb_shift do
      let lo = t.limbs.(i - limb_shift) lsl bit_shift in
      let hi =
        if bit_shift = 0 || i - limb_shift - 1 < 0 then 0
        else t.limbs.(i - limb_shift - 1) lsr (limb_bits - bit_shift)
      in
      limbs.(i) <- (lo lor hi) land limb_mask
    done;
    normalize t.width limbs
  end

let shift_right_logical t n =
  if n < 0 then invalid_arg "Bitvec.shift_right_logical: negative amount";
  if n = 0 then t
  else if n >= t.width then zero t.width
  else begin
    let nl = Array.length t.limbs in
    let limbs = Array.make nl 0 in
    let limb_shift = n lsr 5 and bit_shift = n land 31 in
    for i = 0 to nl - 1 - limb_shift do
      let lo = t.limbs.(i + limb_shift) lsr bit_shift in
      let hi =
        if bit_shift = 0 || i + limb_shift + 1 >= nl then 0
        else (t.limbs.(i + limb_shift + 1) lsl (limb_bits - bit_shift)) land limb_mask
      in
      limbs.(i) <- lo lor hi
    done;
    normalize t.width limbs
  end

let shift_right_arith t n =
  if n < 0 then invalid_arg "Bitvec.shift_right_arith: negative amount";
  if not (msb t) then shift_right_logical t n
  else if n >= t.width then ones t.width
  else begin
    let shifted = shift_right_logical t n in
    (* Set the top [n] bits. *)
    let fill = shift_left (ones t.width) (t.width - n) in
    logor shifted fill
  end

(* ------------------------------------------------------------------ *)
(* Structure                                                           *)

let select t ~hi ~lo =
  if lo < 0 || hi < lo || hi >= t.width then
    invalid_arg
      (Printf.sprintf "Bitvec.select: [%d:%d] of %d-bit vector" hi lo t.width);
  uresize (shift_right_logical t lo) (hi - lo + 1)

let concat parts =
  match parts with
  | [] -> invalid_arg "Bitvec.concat: empty list"
  | _ ->
    let w = List.fold_left (fun acc p -> acc + p.width) 0 parts in
    let bits = Array.make w false in
    (* Head is most significant: fill from the top down. *)
    let pos = ref w in
    List.iter
      (fun p ->
        pos := !pos - p.width;
        for i = 0 to p.width - 1 do
          bits.(!pos + i) <- get p i
        done)
      parts;
    of_bits bits

let repeat t n =
  if n < 1 then invalid_arg "Bitvec.repeat: count must be >= 1";
  concat (List.init n (fun _ -> t))

(* ------------------------------------------------------------------ *)
(* Arithmetic                                                          *)

let add a b =
  if a.width <> b.width then raise (Width_mismatch "add");
  let n = Array.length a.limbs in
  let limbs = Array.make n 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = a.limbs.(i) + b.limbs.(i) + !carry in
    limbs.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  normalize a.width limbs

let neg a = add (lognot a) (one a.width)

let sub a b =
  if a.width <> b.width then raise (Width_mismatch "sub");
  add a (neg b)

let add_carry a b =
  if a.width <> b.width then raise (Width_mismatch "add_carry");
  let w = a.width + 1 in
  add (uresize a w) (uresize b w)

(* 16-bit digit view of the limbs, for overflow-free multiplication. *)
let to_digits t =
  let nl = Array.length t.limbs in
  Array.init (2 * nl) (fun i ->
      let l = t.limbs.(i lsr 1) in
      if i land 1 = 0 then l land 0xFFFF else l lsr 16)

let of_digits width digits =
  let n = nlimbs width in
  let limbs =
    Array.init n (fun i ->
        let lo = if 2 * i < Array.length digits then digits.(2 * i) else 0 in
        let hi = if (2 * i) + 1 < Array.length digits then digits.((2 * i) + 1) else 0 in
        lo lor (hi lsl 16))
  in
  normalize width limbs

let mul_full a b =
  let da = to_digits a and db = to_digits b in
  let na = Array.length da and nb = Array.length db in
  let acc = Array.make (na + nb) 0 in
  for i = 0 to na - 1 do
    if da.(i) <> 0 then begin
      let carry = ref 0 in
      for j = 0 to nb - 1 do
        let p = (da.(i) * db.(j)) + acc.(i + j) + !carry in
        acc.(i + j) <- p land 0xFFFF;
        carry := p lsr 16
      done;
      let k = ref (i + nb) in
      while !carry <> 0 do
        let p = acc.(!k) + !carry in
        acc.(!k) <- p land 0xFFFF;
        carry := p lsr 16;
        incr k
      done
    end
  done;
  of_digits (a.width + b.width) acc

let mul a b =
  if a.width <> b.width then raise (Width_mismatch "mul");
  uresize (mul_full a b) a.width

(* Restoring shift-subtract division: O(width) compares on limb arrays.
   Acceptable for the widths this library is used at (<= a few hundred
   bits). *)
let udivrem a b =
  if a.width <> b.width then raise (Width_mismatch "udiv/urem");
  if is_zero b then raise Division_by_zero;
  let w = a.width in
  let q = ref (zero w) and r = ref (zero w) in
  for i = w - 1 downto 0 do
    r := shift_left !r 1;
    if get a i then r := set_bit !r 0 true;
    if uge !r b then begin
      r := sub !r b;
      q := set_bit !q i true
    end
  done;
  (!q, !r)

let udiv a b = fst (udivrem a b)
let urem a b = snd (udivrem a b)

let abs_s t = if msb t then neg t else t

let sdiv a b =
  if a.width <> b.width then raise (Width_mismatch "sdiv");
  if is_zero b then raise Division_by_zero;
  let q = udiv (abs_s a) (abs_s b) in
  if msb a <> msb b then neg q else q

let srem a b =
  if a.width <> b.width then raise (Width_mismatch "srem");
  if is_zero b then raise Division_by_zero;
  let r = urem (abs_s a) (abs_s b) in
  if msb a then neg r else r

(* ------------------------------------------------------------------ *)
(* Text                                                                *)

let to_string t =
  let ndigits = (t.width + 3) / 4 in
  let buf = Buffer.create (ndigits + 8) in
  Buffer.add_string buf (string_of_int t.width);
  Buffer.add_string buf "'h";
  for d = ndigits - 1 downto 0 do
    let nib = ref 0 in
    for b = 3 downto 0 do
      let i = (d * 4) + b in
      nib := (!nib lsl 1) lor (if i < t.width && get t i then 1 else 0)
    done;
    Buffer.add_char buf "0123456789abcdef".[!nib]
  done;
  Buffer.contents buf

let to_binary_string t =
  let buf = Buffer.create (t.width + 8) in
  Buffer.add_string buf (string_of_int t.width);
  Buffer.add_string buf "'b";
  for i = t.width - 1 downto 0 do
    Buffer.add_char buf (if get t i then '1' else '0')
  done;
  Buffer.contents buf

let pp fmt t = Format.pp_print_string fmt (to_string t)

let digit_value base c =
  let v =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg (Printf.sprintf "Bitvec.of_string: bad digit %c" c)
  in
  if v >= base then invalid_arg (Printf.sprintf "Bitvec.of_string: bad digit %c" c);
  v

let of_string s =
  match String.index_opt s '\'' with
  | None -> invalid_arg "Bitvec.of_string: missing width separator (')"
  | Some q ->
    let w =
      match int_of_string_opt (String.sub s 0 q) with
      | Some w when w >= 1 -> w
      | _ -> invalid_arg "Bitvec.of_string: bad width"
    in
    if q + 1 >= String.length s then invalid_arg "Bitvec.of_string: missing base";
    let base =
      match Char.lowercase_ascii s.[q + 1] with
      | 'b' -> 2
      | 'o' -> 8
      | 'd' -> 10
      | 'h' -> 16
      | c -> invalid_arg (Printf.sprintf "Bitvec.of_string: bad base %c" c)
    in
    let digits = String.sub s (q + 2) (String.length s - q - 2) in
    if digits = "" then invalid_arg "Bitvec.of_string: missing digits";
    (* Accumulate digit-by-digit at width w+4 so an overflowing literal is
       detected rather than silently truncated. *)
    let acc_w = w + 5 in
    let base_v = create ~width:acc_w base in
    let acc = ref (zero acc_w) in
    String.iter
      (fun c ->
        if c <> '_' then begin
          let d = digit_value base c in
          acc := add (mul !acc base_v) (create ~width:acc_w d)
        end)
      digits;
    if not (is_zero (shift_right_logical !acc w)) then
      invalid_arg (Printf.sprintf "Bitvec.of_string: %s does not fit in %d bits" s w);
    uresize !acc w

let random st ~width =
  check_width width;
  let random_limb () =
    (* Random.State.bits yields 30 bits; compose two draws into 32. *)
    (Random.State.bits st land 0xFFFF)
    lor ((Random.State.bits st land 0xFFFF) lsl 16)
  in
  let limbs = Array.init (nlimbs width) (fun _ -> random_limb ()) in
  normalize width limbs

(* ------------------------------------------------------------------ *)
(* Unboxed fast path                                                   *)

(* Operations on plain OCaml ints standing for unsigned masked values
   of a known width <= 62.  Callers keep the invariant that every value
   is already masked to its width; each operation re-establishes it for
   its result.  Two's-complement wrap-around of the native int is
   exactly modular arithmetic, so masking the low [w] bits after a
   wrapping [+]/[-]/[*] yields the same bits the limb implementation
   produces. *)
module Unboxed = struct
  let max_width = 62
  let fits w = w >= 1 && w <= max_width
  let mask w = (1 lsl w) - 1

  let signed w v = if v land (1 lsl (w - 1)) <> 0 then v lor (-1 lsl w) else v

  let to_bitvec ~width v =
    check_width width;
    if width > max_width then
      invalid_arg "Bitvec.Unboxed.to_bitvec: width exceeds the fast path";
    let limbs =
      if width <= limb_bits then [| v land limb_mask |]
      else [| v land limb_mask; (v lsr limb_bits) land limb_mask |]
    in
    normalize width limbs

  let of_bitvec = to_int

  let add w a b = (a + b) land mask w
  let sub w a b = (a - b) land mask w
  let neg w a = -a land mask w
  let mul w a b = a * b land mask w
  let udiv a b = a / b
  let urem a b = a mod b
  let sdiv w a b = signed w a / signed w b land mask w
  let srem w a b = signed w a mod signed w b land mask w

  let logand a b = a land b
  let logor a b = a lor b
  let logxor a b = a lxor b
  let lognot w a = lnot a land mask w

  (* Shift amounts are expected pre-clamped to [0, w]; shifting by the
     full width is well-defined here (w <= 62 < Sys.int_size). *)
  let shift_left w a n = if n >= w then 0 else a lsl n land mask w
  let shift_right_logical a n = a lsr n

  let shift_right_arith w a n =
    if n >= w then if a land (1 lsl (w - 1)) <> 0 then mask w else 0
    else signed w a asr n land mask w

  let reduce_and w a = a = mask w
  let reduce_or a = a <> 0

  let reduce_xor a =
    let x = a lxor (a lsr 32) in
    let x = x lxor (x lsr 16) in
    let x = x lxor (x lsr 8) in
    let x = x lxor (x lsr 4) in
    let x = x lxor (x lsr 2) in
    let x = x lxor (x lsr 1) in
    x land 1 = 1

  let ult a b = a < b
  let ule a b = a <= b
  let slt w a b = signed w a < signed w b
  let sle w a b = signed w a <= signed w b

  let select ~hi ~lo a = (a lsr lo) land mask (hi - lo + 1)
  let sext ~from ~width v = signed from v land mask width
end
