(** Arbitrary-width two-state bit-vectors with Verilog-2001 semantics.

    This module is the datatype substrate the paper's Section 3.1 calls for:
    a bit-vector library whose sign-extension, truncation and arithmetic
    rules faithfully match those of standard HDLs, so that system-level
    models built on it are bit-accurate with respect to RTL.

    Values are immutable.  Every value carries its width (in bits, >= 1).
    Binary operations require equal operand widths and raise
    {!Width_mismatch} otherwise; use {!uresize} / {!sresize} to adjust
    widths explicitly.  All arithmetic wraps modulo [2^width], exactly as a
    Verilog assignment to a [width]-bit net does. *)

type t

exception Width_mismatch of string
(** Raised when a binary operation is applied to operands of unequal
    width.  The payload names the offending operation. *)

exception Invalid_width of int
(** Raised when a width [< 1] is requested. *)

(** {1 Construction} *)

val create : width:int -> int -> t
(** [create ~width v] is the two's-complement encoding of [v] truncated to
    [width] bits.  Negative [v] sign-extends before truncation, so
    [create ~width:8 (-1)] is [8'hff]. *)

val zero : int -> t
(** [zero w] is the [w]-bit all-zeros vector. *)

val one : int -> t
(** [one w] is the [w]-bit vector with value 1. *)

val ones : int -> t
(** [ones w] is the [w]-bit all-ones vector. *)

val of_bool : bool -> t
(** [of_bool b] is the 1-bit vector encoding [b]. *)

val of_bits : bool array -> t
(** [of_bits a] builds a vector from bits listed LSB-first.  Its width is
    [Array.length a]; the array must be non-empty. *)

val of_string : string -> t
(** [of_string s] parses a Verilog-style sized literal: ["8'hff"],
    ["4'b1010"], ["16'd1234"], ["12'o777"].  Underscores in the digit part
    are ignored.  Raises [Invalid_argument] on malformed input or if the
    value does not fit the declared width. *)

val random : Random.State.t -> width:int -> t
(** [random st ~width] draws a uniformly random [width]-bit vector. *)

(** {1 Observation} *)

val width : t -> int
(** [width t] is the number of bits in [t]. *)

val get : t -> int -> bool
(** [get t i] is bit [i] of [t] (bit 0 is the LSB).  Raises
    [Invalid_argument] when [i] is out of range. *)

val to_bits : t -> bool array
(** [to_bits t] lists the bits of [t] LSB-first. *)

val to_int : t -> int
(** [to_int t] is the unsigned value of [t].  Raises [Failure] if the
    value does not fit in an OCaml [int] (i.e. needs more than 62 bits). *)

val to_signed_int : t -> int
(** [to_signed_int t] is the two's-complement value of [t].  Raises
    [Failure] if it does not fit in an OCaml [int]. *)

val is_zero : t -> bool
(** [is_zero t] is [true] iff every bit of [t] is 0. *)

val msb : t -> bool
(** [msb t] is the most significant (sign) bit of [t]. *)

val popcount : t -> int
(** [popcount t] is the number of set bits in [t]. *)

val to_string : t -> string
(** [to_string t] prints [t] as a sized hexadecimal literal, e.g.
    ["8'h3a"]. *)

val to_binary_string : t -> string
(** [to_binary_string t] prints [t] as a sized binary literal, e.g.
    ["4'b0101"]. *)

val pp : Format.formatter -> t -> unit
(** Pretty-printer; same rendering as {!to_string}. *)

(** {1 Comparison} *)

val equal : t -> t -> bool
(** Structural equality; vectors of different widths are never equal. *)

val compare : t -> t -> int
(** Total order: first by width, then by unsigned value.  Suitable for
    [Map]/[Set] functors. *)

val ucompare : t -> t -> int
(** Unsigned value comparison of equal-width vectors. *)

val scompare : t -> t -> int
(** Two's-complement value comparison of equal-width vectors. *)

val ult : t -> t -> bool
val ule : t -> t -> bool
val ugt : t -> t -> bool
val uge : t -> t -> bool
val slt : t -> t -> bool
val sle : t -> t -> bool
val sgt : t -> t -> bool
val sge : t -> t -> bool

(** {1 Width adjustment} *)

val uresize : t -> int -> t
(** [uresize t w] zero-extends or truncates [t] to [w] bits — the Verilog
    rule for unsigned expressions. *)

val sresize : t -> int -> t
(** [sresize t w] sign-extends or truncates [t] to [w] bits — the Verilog
    rule for signed expressions. *)

(** {1 Bitwise operations} *)

val lognot : t -> t
val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t

val shift_left : t -> int -> t
(** [shift_left t n] shifts in zeros at the LSB; width is preserved. *)

val shift_right_logical : t -> int -> t
(** [shift_right_logical t n] shifts in zeros at the MSB. *)

val shift_right_arith : t -> int -> t
(** [shift_right_arith t n] shifts in copies of the sign bit. *)

val reduce_and : t -> bool
val reduce_or : t -> bool
val reduce_xor : t -> bool

(** {1 Structural operations} *)

val select : t -> hi:int -> lo:int -> t
(** [select t ~hi ~lo] is bits [hi:lo] of [t], a vector of width
    [hi - lo + 1].  Requires [0 <= lo <= hi < width t]. *)

val concat : t list -> t
(** [concat parts] concatenates [parts] with the head as the most
    significant part, like Verilog [{a, b, c}].  The list must be
    non-empty. *)

val repeat : t -> int -> t
(** [repeat t n] is the Verilog replication [{n{t}}]; requires [n >= 1]. *)

val set_bit : t -> int -> bool -> t
(** [set_bit t i b] is [t] with bit [i] replaced by [b]. *)

(** {1 Arithmetic}

    All operations below require equal operand widths and produce a result
    of that same width, wrapping on overflow — the behaviour of a sized
    Verilog assignment, and the root cause of the paper's Fig. 1
    non-associativity example. *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t

val mul : t -> t -> t
(** Low [width] bits of the product. *)

val mul_full : t -> t -> t
(** [mul_full a b] is the exact product, of width
    [width a + width b]. *)

val add_carry : t -> t -> t
(** [add_carry a b] is the exact sum, one bit wider than the operands. *)

val udiv : t -> t -> t
(** Unsigned division.  Raises [Division_by_zero] when the divisor is 0
    (Verilog would produce X; we are a two-state library). *)

val urem : t -> t -> t
(** Unsigned remainder.  Raises [Division_by_zero] on a zero divisor. *)

val sdiv : t -> t -> t
(** Signed division truncating toward zero (Verilog [/] on signed
    operands).  Raises [Division_by_zero] on a zero divisor. *)

val srem : t -> t -> t
(** Signed remainder with the sign of the dividend (Verilog [%]).
    Raises [Division_by_zero] on a zero divisor. *)

(** {1 Unboxed fast path}

    Native-int mirrors of the operations above for widths up to
    {!Unboxed.max_width} (62) bits, used by the compiled RTL simulation
    engine so that narrow signals never touch limb arrays on the hot
    path.  A value is a plain non-negative [int] holding the unsigned
    (masked) encoding of the vector; every operation assumes its
    operands respect that invariant and re-establishes it for its
    result.  Semantics are bit-identical to the boxed operations —
    property-tested against them in the test suite. *)
module Unboxed : sig
  val max_width : int
  (** 62: the widest vector an OCaml [int] can carry unsigned. *)

  val fits : int -> bool
  (** [fits w] is [1 <= w <= max_width]. *)

  val mask : int -> int
  (** [mask w] is [2^w - 1] (valid for [w <= max_width]). *)

  val signed : int -> int -> int
  (** [signed w v] reads [v] as a [w]-bit two's-complement value. *)

  val of_bitvec : t -> int
  (** Unsigned value; raises [Failure] beyond 62 bits (= {!to_int}). *)

  val to_bitvec : width:int -> int -> t
  (** [to_bitvec ~width v] boxes a masked value back into a vector. *)

  val add : int -> int -> int -> int
  (** [add w a b]; likewise [sub]/[neg]/[mul] below — all wrap mod
      [2^w]. *)

  val sub : int -> int -> int -> int
  val neg : int -> int -> int
  val mul : int -> int -> int -> int

  val udiv : int -> int -> int
  (** Unsigned division; raises [Division_by_zero] like {!Bitvec.udiv}.
      Likewise [urem]/[sdiv]/[srem]. *)

  val urem : int -> int -> int
  val sdiv : int -> int -> int -> int
  val srem : int -> int -> int -> int
  val logand : int -> int -> int
  val logor : int -> int -> int
  val logxor : int -> int -> int
  val lognot : int -> int -> int

  val shift_left : int -> int -> int -> int
  (** [shift_left w a n] with [n] pre-clamped to [0, w] by the caller;
      same for the right shifts. *)

  val shift_right_logical : int -> int -> int
  val shift_right_arith : int -> int -> int -> int
  val reduce_and : int -> int -> bool
  val reduce_or : int -> bool
  val reduce_xor : int -> bool
  val ult : int -> int -> bool
  val ule : int -> int -> bool
  val slt : int -> int -> int -> bool
  val sle : int -> int -> int -> bool

  val select : hi:int -> lo:int -> int -> int
  (** Bits [hi:lo], like {!Bitvec.select}. *)

  val sext : from:int -> width:int -> int -> int
  (** Sign-extend a [from]-bit value to [width] bits. *)
end
