type watchdog_kind = Delta_limit | Activation_limit | Starvation

type t =
  | Stimulus_exhausted of { attempts : int; rounds : int; detail : string }
  | Protocol_violation of { channel : string; detail : string }
  | Watchdog of {
      kind : watchdog_kind;
      at_time : int;
      deltas : int;
      activations : int;
      processes : string list;
    }
  | Transaction_incomplete of string
  | Elaboration_failure of string
  | Spec_violation of string
  | Model_runtime_fault of string
  | Internal of string

let watchdog_kind_string = function
  | Delta_limit -> "delta limit"
  | Activation_limit -> "activation limit"
  | Starvation -> "starvation"

let to_string = function
  | Stimulus_exhausted { attempts; rounds; detail } ->
    Printf.sprintf
      "stimulus exhausted: no satisfying vector after %d attempts over %d \
       widening rounds (%s)"
      attempts rounds detail
  | Protocol_violation { channel; detail } ->
    Printf.sprintf "protocol violation on %s: %s" channel detail
  | Watchdog { kind; at_time; deltas; activations; processes } ->
    Printf.sprintf
      "kernel watchdog (%s) at time %d: %d deltas, %d activations; processes: \
       %s"
      (watchdog_kind_string kind)
      at_time deltas activations
      (match processes with [] -> "<none>" | ps -> String.concat ", " ps)
  | Transaction_incomplete m -> "transactions incomplete: " ^ m
  | Elaboration_failure m -> "elaboration failure: " ^ m
  | Spec_violation m -> "spec violation: " ^ m
  | Model_runtime_fault m -> "model runtime fault: " ^ m
  | Internal m -> "internal error: " ^ m

let pp fmt e = Format.pp_print_string fmt (to_string e)

let exit_code = function
  | Stimulus_exhausted _ | Watchdog _ | Transaction_incomplete _ -> 2
  | Protocol_violation _ | Elaboration_failure _ | Spec_violation _
  | Model_runtime_fault _ | Internal _ ->
    3

let of_exn = function
  | Dfv_slm.Kernel.Watchdog_trip trip ->
    let kind =
      match trip.Dfv_slm.Kernel.trip_kind with
      | Dfv_slm.Kernel.Delta_limit -> Delta_limit
      | Dfv_slm.Kernel.Activation_limit -> Activation_limit
      | Dfv_slm.Kernel.Starvation -> Starvation
    in
    Watchdog
      {
        kind;
        at_time = trip.Dfv_slm.Kernel.trip_time;
        deltas = trip.Dfv_slm.Kernel.trip_deltas;
        activations = trip.Dfv_slm.Kernel.trip_activations;
        processes = trip.Dfv_slm.Kernel.trip_processes;
      }
  | Dfv_slm.Tlm.Protocol_violation { channel; detail } ->
    Protocol_violation { channel; detail }
  | Dfv_slm.Kernel.Not_in_thread ->
    Protocol_violation
      { channel = "kernel"; detail = "wait called outside a thread process" }
  | Dfv_cosim.Txn_engine.Engine_error m -> Transaction_incomplete m
  | Dfv_cosim.Stream.Stage_error m ->
    Protocol_violation { channel = "stream.stage"; detail = m }
  | Dfv_rtl.Netlist.Elaboration_error m -> Elaboration_failure m
  | Dfv_rtl.Expr.Width_error m -> Elaboration_failure ("width error: " ^ m)
  | Dfv_hwir.Elab.Not_synthesizable m ->
    Elaboration_failure ("not synthesizable: " ^ m)
  | Dfv_hwir.Typecheck.Type_error m -> Elaboration_failure ("type error: " ^ m)
  | Dfv_sec.Checker.Spec_error m -> Spec_violation m
  | Dfv_sec.Session.Error m -> Spec_violation ("session: " ^ m)
  | Dfv_hwir.Interp.Runtime_error m -> Model_runtime_fault m
  | Division_by_zero -> Model_runtime_fault "division by zero"
  | Dfv_bitvec.Bitvec.Width_mismatch m -> Internal ("width mismatch: " ^ m)
  | Dfv_bitvec.Bitvec.Invalid_width w ->
    Internal (Printf.sprintf "invalid width %d" w)
  | Failure m -> Internal m
  | Invalid_argument m -> Internal ("invalid argument: " ^ m)
  | e -> Internal (Printexc.to_string e)

let guard f =
  match f () with
  | v -> Ok v
  | exception ((Out_of_memory | Stack_overflow | Sys.Break) as e) -> raise e
  | exception e -> Error (of_exn e)
