type watchdog_kind = Delta_limit | Activation_limit | Starvation

type t =
  | Stimulus_exhausted of { attempts : int; rounds : int; detail : string }
  | Protocol_violation of { channel : string; detail : string }
  | Watchdog of {
      kind : watchdog_kind;
      at_time : int;
      deltas : int;
      activations : int;
      processes : string list;
    }
  | Transaction_incomplete of string
  | Elaboration_failure of string
  | Spec_violation of string
  | Model_runtime_fault of string
  | Worker_crashed of { job : string; detail : string }
  | Worker_timeout of { job : string; seconds : float }
  | Interrupted of { job : string }
  | Internal of string

let watchdog_kind_string = function
  | Delta_limit -> "delta limit"
  | Activation_limit -> "activation limit"
  | Starvation -> "starvation"

let to_string = function
  | Stimulus_exhausted { attempts; rounds; detail } ->
    Printf.sprintf
      "stimulus exhausted: no satisfying vector after %d attempts over %d \
       widening rounds (%s)"
      attempts rounds detail
  | Protocol_violation { channel; detail } ->
    Printf.sprintf "protocol violation on %s: %s" channel detail
  | Watchdog { kind; at_time; deltas; activations; processes } ->
    Printf.sprintf
      "kernel watchdog (%s) at time %d: %d deltas, %d activations; processes: \
       %s"
      (watchdog_kind_string kind)
      at_time deltas activations
      (match processes with [] -> "<none>" | ps -> String.concat ", " ps)
  | Transaction_incomplete m -> "transactions incomplete: " ^ m
  | Elaboration_failure m -> "elaboration failure: " ^ m
  | Spec_violation m -> "spec violation: " ^ m
  | Model_runtime_fault m -> "model runtime fault: " ^ m
  | Worker_crashed { job; detail } ->
    Printf.sprintf "worker crashed on %s: %s" job detail
  | Worker_timeout { job; seconds } ->
    Printf.sprintf "worker timed out on %s after %.1fs" job seconds
  | Interrupted { job } ->
    Printf.sprintf "interrupted before %s completed (resumable)" job
  | Internal m -> "internal error: " ^ m

let pp fmt e = Format.pp_print_string fmt (to_string e)

let exit_code = function
  | Stimulus_exhausted _ | Watchdog _ | Transaction_incomplete _
  | Worker_timeout _ ->
    2
  | Protocol_violation _ | Elaboration_failure _ | Spec_violation _
  | Model_runtime_fault _ | Worker_crashed _ | Internal _ ->
    3
  | Interrupted _ -> 4

(* Retry classification for the worker pool.  A [Worker_crashed] may be
   environmental (OOM kill under transient memory pressure, an operator
   signal, a scheduler hiccup starving the heartbeat) — worth a bounded
   retry; if the crash is deterministic the retries fail identically and
   the error stands.  A [Worker_timeout] re-run under the same budget
   deterministically times out again, and every other constructor is a
   structured verdict about the job itself, so neither is transient. *)
let transient = function
  | Worker_crashed _ -> true
  | Stimulus_exhausted _ | Protocol_violation _ | Watchdog _
  | Transaction_incomplete _ | Elaboration_failure _ | Spec_violation _
  | Model_runtime_fault _ | Worker_timeout _ | Interrupted _ | Internal _ ->
    false

let of_exn = function
  | Dfv_slm.Kernel.Watchdog_trip trip ->
    let kind =
      match trip.Dfv_slm.Kernel.trip_kind with
      | Dfv_slm.Kernel.Delta_limit -> Delta_limit
      | Dfv_slm.Kernel.Activation_limit -> Activation_limit
      | Dfv_slm.Kernel.Starvation -> Starvation
    in
    Watchdog
      {
        kind;
        at_time = trip.Dfv_slm.Kernel.trip_time;
        deltas = trip.Dfv_slm.Kernel.trip_deltas;
        activations = trip.Dfv_slm.Kernel.trip_activations;
        processes = trip.Dfv_slm.Kernel.trip_processes;
      }
  | Dfv_slm.Tlm.Protocol_violation { channel; detail } ->
    Protocol_violation { channel; detail }
  | Dfv_slm.Kernel.Not_in_thread ->
    Protocol_violation
      { channel = "kernel"; detail = "wait called outside a thread process" }
  | Dfv_cosim.Txn_engine.Engine_error m -> Transaction_incomplete m
  | Dfv_cosim.Stream.Stage_error m ->
    Protocol_violation { channel = "stream.stage"; detail = m }
  | Dfv_rtl.Netlist.Elaboration_error m -> Elaboration_failure m
  | Dfv_rtl.Expr.Width_error m -> Elaboration_failure ("width error: " ^ m)
  | Dfv_hwir.Elab.Not_synthesizable m ->
    Elaboration_failure ("not synthesizable: " ^ m)
  | Dfv_hwir.Typecheck.Type_error m -> Elaboration_failure ("type error: " ^ m)
  | Dfv_sec.Checker.Spec_error m -> Spec_violation m
  | Dfv_sec.Session.Error m -> Spec_violation ("session: " ^ m)
  | Dfv_hwir.Interp.Runtime_error m -> Model_runtime_fault m
  | Division_by_zero -> Model_runtime_fault "division by zero"
  | Dfv_bitvec.Bitvec.Width_mismatch m -> Internal ("width mismatch: " ^ m)
  | Dfv_bitvec.Bitvec.Invalid_width w ->
    Internal (Printf.sprintf "invalid width %d" w)
  | Failure m -> Internal m
  | Invalid_argument m -> Internal ("invalid argument: " ^ m)
  | e -> Internal (Printexc.to_string e)

let guard f =
  match f () with
  | v -> Ok v
  | exception ((Out_of_memory | Stack_overflow | Sys.Break) as e) -> raise e
  | exception e -> Error (of_exn e)

(* --- JSON round-trip --------------------------------------------------- *)

module Json = Dfv_obs.Json

let to_json e =
  let str s = Json.String s in
  let obj kind fields = Json.Obj (("kind", str kind) :: fields) in
  match e with
  | Stimulus_exhausted { attempts; rounds; detail } ->
    obj "stimulus_exhausted"
      [ ("attempts", Json.Int attempts);
        ("rounds", Json.Int rounds);
        ("detail", str detail) ]
  | Protocol_violation { channel; detail } ->
    obj "protocol_violation" [ ("channel", str channel); ("detail", str detail) ]
  | Watchdog { kind; at_time; deltas; activations; processes } ->
    obj "watchdog"
      [ ( "watchdog_kind",
          str
            (match kind with
            | Delta_limit -> "delta_limit"
            | Activation_limit -> "activation_limit"
            | Starvation -> "starvation") );
        ("at_time", Json.Int at_time);
        ("deltas", Json.Int deltas);
        ("activations", Json.Int activations);
        ("processes", Json.List (List.map str processes)) ]
  | Transaction_incomplete m -> obj "transaction_incomplete" [ ("detail", str m) ]
  | Elaboration_failure m -> obj "elaboration_failure" [ ("detail", str m) ]
  | Spec_violation m -> obj "spec_violation" [ ("detail", str m) ]
  | Model_runtime_fault m -> obj "model_runtime_fault" [ ("detail", str m) ]
  | Worker_crashed { job; detail } ->
    obj "worker_crashed" [ ("job", str job); ("detail", str detail) ]
  | Worker_timeout { job; seconds } ->
    obj "worker_timeout" [ ("job", str job); ("seconds", Json.Float seconds) ]
  | Interrupted { job } -> obj "interrupted" [ ("job", str job) ]
  | Internal m -> obj "internal" [ ("detail", str m) ]

let of_json v =
  let str name =
    match Json.field name v with
    | Some (Json.String s) -> Ok s
    | _ -> Error (Printf.sprintf "missing string field %S" name)
  in
  let int name =
    match Json.field name v with
    | Some (Json.Int i) -> Ok i
    | _ -> Error (Printf.sprintf "missing int field %S" name)
  in
  let num name =
    match Json.field name v with
    | Some (Json.Float f) -> Ok f
    | Some (Json.Int i) -> Ok (float_of_int i)
    | _ -> Error (Printf.sprintf "missing number field %S" name)
  in
  let ( let* ) = Result.bind in
  let* kind = str "kind" in
  match kind with
  | "stimulus_exhausted" ->
    let* attempts = int "attempts" in
    let* rounds = int "rounds" in
    let* detail = str "detail" in
    Ok (Stimulus_exhausted { attempts; rounds; detail })
  | "protocol_violation" ->
    let* channel = str "channel" in
    let* detail = str "detail" in
    Ok (Protocol_violation { channel; detail })
  | "watchdog" ->
    let* k = str "watchdog_kind" in
    let* kind =
      match k with
      | "delta_limit" -> Ok Delta_limit
      | "activation_limit" -> Ok Activation_limit
      | "starvation" -> Ok Starvation
      | k -> Error (Printf.sprintf "unknown watchdog kind %S" k)
    in
    let* at_time = int "at_time" in
    let* deltas = int "deltas" in
    let* activations = int "activations" in
    let* processes =
      match Json.field "processes" v with
      | Some (Json.List ps) ->
        List.fold_right
          (fun p acc ->
            let* acc = acc in
            match p with
            | Json.String s -> Ok (s :: acc)
            | _ -> Error "non-string process name")
          ps (Ok [])
      | _ -> Error "missing list field \"processes\""
    in
    Ok (Watchdog { kind; at_time; deltas; activations; processes })
  | "transaction_incomplete" ->
    let* m = str "detail" in
    Ok (Transaction_incomplete m)
  | "elaboration_failure" ->
    let* m = str "detail" in
    Ok (Elaboration_failure m)
  | "spec_violation" ->
    let* m = str "detail" in
    Ok (Spec_violation m)
  | "model_runtime_fault" ->
    let* m = str "detail" in
    Ok (Model_runtime_fault m)
  | "worker_crashed" ->
    let* job = str "job" in
    let* detail = str "detail" in
    Ok (Worker_crashed { job; detail })
  | "worker_timeout" ->
    let* job = str "job" in
    let* seconds = num "seconds" in
    Ok (Worker_timeout { job; seconds })
  | "interrupted" ->
    let* job = str "job" in
    Ok (Interrupted { job })
  | "internal" ->
    let* m = str "detail" in
    Ok (Internal m)
  | kind -> Error (Printf.sprintf "unknown error kind %S" kind)
