module Bitvec = Dfv_bitvec.Bitvec
module Ast = Dfv_hwir.Ast
module Interp = Dfv_hwir.Interp
module Exec = Dfv_hwir.Exec
module Typecheck = Dfv_hwir.Typecheck
module Netlist = Dfv_rtl.Netlist
module Sim = Dfv_rtl.Sim
module Vcd = Dfv_rtl.Vcd
module Spec = Dfv_sec.Spec
module Checker = Dfv_sec.Checker
module Trace = Dfv_obs.Trace
module Coverage = Dfv_obs.Coverage
module Triage = Dfv_obs.Triage

type sim_outcome =
  | Sim_clean of { vectors : int }
  | Sim_mismatch of {
      vector_index : int;
      params : (string * Interp.value) list;
      failed_checks : (Spec.check * Bitvec.t * Bitvec.t) list;
    }

let random_value st (ty : Ast.ty) =
  match ty with
  | Ast.Tint { width; _ } -> Interp.Vint (Bitvec.random st ~width)
  | Ast.Tarray (Ast.Tint { width; _ }, n) ->
    Interp.Varr (Array.init n (fun _ -> Bitvec.random st ~width))
  | Ast.Tarray (Ast.Tarray _, _) -> failwith "Flow: nested array parameter"

(* Engine selection for SLM execution: an explicit request is honored
   (and [`Compiled] raises [Norm.Rejected] on unconditioned models);
   by default the compiled normal form runs when the model is in it,
   with the interpreter as the fallback. *)
let prepare ?engine p =
  match engine with
  | None -> Exec.auto p
  | Some e -> Exec.create ~engine:e p

(* Constraints are evaluated by executing a wrapper function, exactly
   mirroring how the SEC path elaborates them.  Each wrapper is
   prepared once (compiled once on the compiled engine) and then run
   per candidate vector. *)
let constraint_checkers ?engine (pair : Pair.t) =
  let fn =
    match Ast.find_func pair.Pair.slm pair.Pair.slm.Ast.entry with
    | Some f -> f
    | None -> failwith "Flow: SLM entry not found"
  in
  List.mapi
    (fun i expr ->
      let cname = Printf.sprintf "__sim_constraint_%d" i in
      let wrapper =
        {
          Ast.funcs =
            pair.Pair.slm.Ast.funcs
            @ [ {
                  Ast.fname = cname;
                  params = fn.Ast.params;
                  ret = Ast.bool_ty;
                  locals = [];
                  body = [ Ast.Return expr ];
                } ];
          entry = cname;
        }
      in
      let ex = prepare ?engine wrapper in
      fun args ->
        match Exec.run ex args with
        | Interp.Vint b -> not (Bitvec.is_zero b)
        | Interp.Varr _ -> false
        | exception Interp.Runtime_error _ -> false)
    pair.Pair.spec.Spec.constraints

let concrete_source params (src : Spec.source) =
  match src with
  | Spec.Const bv -> bv
  | Spec.Param name -> (
    match List.assoc name params with
    | Interp.Vint bv -> bv
    | Interp.Varr _ -> failwith "Flow: array param used as scalar")
  | Spec.Param_elem (name, i) -> (
    match List.assoc name params with
    | Interp.Varr a -> a.(i)
    | Interp.Vint _ -> failwith "Flow: scalar param indexed")
  | Spec.Param_bits { name; hi; lo } -> (
    match List.assoc name params with
    | Interp.Vint bv -> Bitvec.select bv ~hi ~lo
    | Interp.Varr _ -> failwith "Flow: array param sliced")

let drive_inputs (spec : Spec.t) params t =
  List.map
    (fun (port, drive) ->
      let src =
        match drive with Spec.Hold bv -> Spec.Const bv | Spec.At f -> f t
      in
      (port, concrete_source params src))
    spec.Spec.drives

(* Run one concrete transaction through the RTL simulator and compare the
   spec's checks against the SLM result ([slm_exec] is the prepared
   engine for the pair's model). *)
let run_transaction (pair : Pair.t) slm_exec params =
  let spec = pair.Pair.spec in
  let slm_result = Exec.run slm_exec (List.map snd params) in
  let sim = Sim.create pair.Pair.rtl in
  let outputs = Array.make spec.Spec.rtl_cycles [] in
  for t = 0 to spec.Spec.rtl_cycles - 1 do
    outputs.(t) <- Sim.cycle sim (drive_inputs spec params t)
  done;
  let expected (c : Spec.check) =
    match (c.Spec.expect, slm_result) with
    | Spec.Result, Interp.Vint bv -> bv
    | Spec.Result_elem i, Interp.Varr a -> a.(i)
    | Spec.Result, Interp.Varr _ | Spec.Result_elem _, Interp.Vint _ ->
      failwith "Flow: result shape does not match the spec"
  in
  List.filter_map
    (fun (c : Spec.check) ->
      let got = List.assoc c.Spec.rtl_port outputs.(c.Spec.at_cycle) in
      let e = expected c in
      if Bitvec.equal got e then None else Some (c, e, got))
    spec.Spec.checks

(* Flip one random bit of one random (element of a) parameter value —
   the local move of the widening search. *)
let mutate_value st (v : Interp.value) =
  match v with
  | Interp.Vint bv ->
    let i = Random.State.int st (Bitvec.width bv) in
    Interp.Vint (Bitvec.set_bit bv i (not (Bitvec.get bv i)))
  | Interp.Varr a ->
    let a = Array.copy a in
    let j = Random.State.int st (Array.length a) in
    let bv = a.(j) in
    let i = Random.State.int st (Bitvec.width bv) in
    a.(j) <- Bitvec.set_bit bv i (not (Bitvec.get bv i));
    Interp.Varr a

(* Width-independent magnitude class of a parameter value — the sampled
   coordinate of the auto covergroups: 0 all-zero, 1 msb clear (small),
   2 msb set (large), 3 all-ones. *)
let value_class bv =
  let w = Bitvec.width bv in
  if Bitvec.is_zero bv then 0
  else if Bitvec.equal bv (Bitvec.ones w) then 3
  else if Bitvec.get bv (w - 1) then 2
  else 1

(* One coverpoint per entry parameter, in the covergroup
   ["sim.<design>"]; empty when functional coverage is off. *)
let stimulus_points (pair : Pair.t) =
  if not (Coverage.enabled ()) then []
  else begin
    let params_sig, _ = Typecheck.entry_signature pair.Pair.slm in
    let g = Coverage.group ("sim." ^ pair.Pair.name) in
    let bins () =
      [ Coverage.bin "zero" ~lo:0 ~hi:0;
        Coverage.bin "small" ~lo:1 ~hi:1;
        Coverage.bin "large" ~lo:2 ~hi:2;
        Coverage.bin "max" ~lo:3 ~hi:3 ]
    in
    List.map (fun (n, _) -> (n, Coverage.point g n (bins ()))) params_sig
  end

let sample_stimulus points params =
  if points <> [] then
    List.iter
      (fun (n, v) ->
        match List.assoc_opt n points with
        | None -> ()
        | Some p -> (
          match v with
          | Interp.Vint bv -> Coverage.sample p (value_class bv)
          | Interp.Varr a ->
            Array.iter (fun bv -> Coverage.sample p (value_class bv)) a))
      params

let simulate ?(seed = 0) ?(max_rounds = 4) ?engine ~vectors (pair : Pair.t) =
  let body () =
    let cov_points = stimulus_points pair in
    let params_sig, _ = Typecheck.entry_signature pair.Pair.slm in
    let st = Random.State.make [| seed; Hashtbl.hash pair.Pair.name |] in
    let slm_exec = prepare ?engine pair.Pair.slm in
    let checkers = constraint_checkers ?engine pair in
    let nconstraints = List.length checkers in
    let unsat_counts = Array.make (max nconstraints 1) 0 in
    let total_attempts = ref 0 in
    (* Number of constraints a candidate satisfies; tallies rejections
       per constraint for the exhaustion diagnostic. *)
    let score params =
      let args = List.map snd params in
      let sat = ref 0 in
      List.iteri
        (fun i c ->
          if c args then incr sat
          else unsat_counts.(i) <- unsat_counts.(i) + 1)
        checkers;
      !sat
    in
    let fresh () =
      List.map (fun (n, ty) -> (n, random_value st ty)) params_sig
    in
    let mutate params =
      let j = Random.State.int st (List.length params) in
      List.mapi
        (fun i (n, v) -> if i = j then (n, mutate_value st v) else (n, v))
        params
    in
    let tightest () =
      if nconstraints = 0 then "no constraints to satisfy"
      else
        List.init nconstraints (fun i -> i)
        |> List.sort (fun a b -> compare unsat_counts.(b) unsat_counts.(a))
        |> List.filteri (fun rank _ -> rank < 2)
        |> List.map (fun i ->
               Printf.sprintf "constraint #%d rejected %d draws" i
                 unsat_counts.(i))
        |> String.concat ", "
    in
    (* One satisfying vector, or [None] when the widening search is
       exhausted.  Round [r] gets a doubled attempt budget; from round 1
       on, every other candidate is a bit-flip mutation of the best
       (most-constraints-satisfied) candidate seen so far.  Accepted
       vectors always satisfy every constraint. *)
    let draw () =
      let best = ref None in
      let rec round r =
        if r >= max_rounds then None
        else begin
          let budget = 200 * (1 lsl r) in
          let rec attempt i =
            if i >= budget then round (r + 1)
            else begin
              incr total_attempts;
              let params =
                match !best with
                | Some (_, b) when r > 0 && i land 1 = 1 -> mutate b
                | _ -> fresh ()
              in
              let sc = score params in
              (match !best with
              | Some (bs, _) when bs >= sc -> ()
              | _ -> best := Some (sc, params));
              if sc = nconstraints then
                (* Vectors on which the SLM itself faults (e.g. division
                   by zero) are outside the comparison domain; redraw. *)
                match Exec.run slm_exec (List.map snd params) with
                | _ -> Some params
                | exception Interp.Runtime_error _ -> attempt (i + 1)
              else attempt (i + 1)
            end
          in
          attempt 0
        end
      in
      round 0
    in
    let rec loop i =
      if i >= vectors then Ok (Sim_clean { vectors })
      else
        match draw () with
        | None ->
          Error
            (Dfv_error.Stimulus_exhausted
               {
                 attempts = !total_attempts;
                 rounds = max_rounds;
                 detail = tightest ();
               })
        | Some params -> (
          sample_stimulus cov_points params;
          match run_transaction pair slm_exec params with
          | [] -> loop (i + 1)
          | failed_checks ->
            Trace.instant ~cat:"flow"
              ~args:
                [ ("design", Dfv_obs.Json.String pair.Pair.name);
                  ("transaction", Dfv_obs.Json.Int i) ]
              "flow.sim_mismatch";
            Ok (Sim_mismatch { vector_index = i; params; failed_checks }))
    in
    loop 0
  in
  Trace.with_span ~cat:"flow"
    ~args:[ ("design", Dfv_obs.Json.String pair.Pair.name) ]
    "flow.simulate" (fun () ->
      match Dfv_error.guard body with Ok r -> r | Error e -> Error e)

let sec ?budget ?session (pair : Pair.t) =
  Checker.check_slm_rtl ?budget ?session ~slm:pair.Pair.slm ~rtl:pair.Pair.rtl
    ~spec:pair.Pair.spec ()

type verify_outcome =
  | Proved of Checker.stats
  | Refuted of Checker.cex * Checker.stats
  | Undecided of Dfv_sat.Solver.reason * Checker.stats
  | Simulated of sim_outcome
  | Errored of Dfv_error.t

type report = { audit : Pair.audit; outcome : verify_outcome }

let verify ?seed ?(sim_vectors = 1000) ?engine ?budget ?session pair =
  Trace.with_span ~cat:"flow"
    ~args:[ ("design", Dfv_obs.Json.String pair.Pair.name) ]
    "flow.verify"
  @@ fun () ->
  let audit = Pair.audit pair in
  let outcome =
    if audit.Pair.sec_ready then begin
      match Dfv_error.guard (fun () -> sec ?budget ?session pair) with
      | Ok (Checker.Equivalent stats) -> Proved stats
      | Ok (Checker.Not_equivalent (cex, stats)) -> Refuted (cex, stats)
      | Ok (Checker.Unknown (reason, stats)) -> Undecided (reason, stats)
      | Error e -> Errored e
    end
    else
      match simulate ?seed ?engine ~vectors:sim_vectors pair with
      | Ok s -> Simulated s
      | Error e -> Errored e
  in
  { audit; outcome }

let pp_value fmt = function
  | Interp.Vint bv -> Bitvec.pp fmt bv
  | Interp.Varr a ->
    Format.fprintf fmt "[%s]"
      (String.concat "; " (Array.to_list (Array.map Bitvec.to_string a)))

let pp_report fmt r =
  let open Format in
  Pair.pp_audit fmt r.audit;
  match r.outcome with
  | Proved stats ->
    fprintf fmt "verdict: EQUIVALENT (proved; %d AIG nodes, %d conflicts, %.3fs)@."
      stats.Checker.aig_ands stats.Checker.sat_conflicts
      stats.Checker.wall_seconds
  | Refuted (cex, stats) ->
    fprintf fmt "verdict: NOT EQUIVALENT (%.3fs)@." stats.Checker.wall_seconds;
    List.iter
      (fun (n, v) -> fprintf fmt "  %s = %a@." n pp_value v)
      cex.Checker.params
  | Undecided (reason, stats) ->
    fprintf fmt "verdict: UNKNOWN (%s after %d conflicts, %.3fs)@."
      (match reason with
      | Dfv_sat.Solver.Conflict_limit -> "conflict budget exhausted"
      | Dfv_sat.Solver.Time_limit -> "time budget exhausted")
      stats.Checker.sat_conflicts stats.Checker.wall_seconds
  | Simulated (Sim_clean { vectors }) ->
    fprintf fmt "verdict: SIMULATION CLEAN (%d transactions; no proof)@." vectors
  | Simulated (Sim_mismatch { vector_index; params; failed_checks }) ->
    fprintf fmt "verdict: SIMULATION MISMATCH at transaction %d@." vector_index;
    List.iter (fun (n, v) -> fprintf fmt "  %s = %a@." n pp_value v) params;
    List.iter
      (fun ((c : Spec.check), e, got) ->
        fprintf fmt "  %s@%d: expected %a, got %a@." c.Spec.rtl_port
          c.Spec.at_cycle Bitvec.pp e Bitvec.pp got)
      failed_checks
  | Errored e -> fprintf fmt "verdict: ERROR (%a)@." Dfv_error.pp e

(* --- mismatch triage -------------------------------------------------- *)

let stimulus_strings params =
  List.map
    (fun (n, v) ->
      ( n,
        match v with
        | Interp.Vint bv -> Bitvec.to_string bv
        | Interp.Varr a ->
          "["
          ^ String.concat "; " (Array.to_list (Array.map Bitvec.to_string a))
          ^ "]" ))
    params

(* Re-simulate the failing transaction, dumping waves only inside the
   [lo..hi] cycle window — the VCD slice attached to a triage bundle. *)
let vcd_slice (pair : Pair.t) params ~window:(lo, hi) =
  let spec = pair.Pair.spec in
  let sim = Sim.create pair.Pair.rtl in
  let buf = Buffer.create 1024 in
  let vcd = Vcd.create buf pair.Pair.rtl sim in
  for t = 0 to spec.Spec.rtl_cycles - 1 do
    ignore (Sim.cycle sim (drive_inputs spec params t));
    if t >= lo && t <= hi then Vcd.sample vcd
  done;
  Buffer.contents buf

let triage_window (pair : Pair.t) failures =
  let fail_cycle =
    List.fold_left
      (fun acc f -> min acc f.Triage.f_cycle)
      max_int failures
  in
  let fail_cycle = if fail_cycle = max_int then 0 else fail_cycle in
  ( max 0 (fail_cycle - 4),
    min (pair.Pair.spec.Spec.rtl_cycles - 1) (fail_cycle + 4) )

let triage_bundle (pair : Pair.t) ~kind ?txn_index params failures =
  let window = triage_window pair failures in
  let vcd =
    match vcd_slice pair params ~window with
    | v -> Some v
    | exception _ -> None
  in
  Triage.make ~design:pair.Pair.name ~kind ?txn_index
    ~stimulus:(stimulus_strings params)
    ~failures ?vcd ~vcd_window:window ()

let expected_of_slm slm_result (c : Spec.check) =
  match (c.Spec.expect, slm_result) with
  | Spec.Result, Some (Interp.Vint bv) -> Some (Bitvec.to_string bv)
  | Spec.Result_elem i, Some (Interp.Varr a) when i >= 0 && i < Array.length a
    ->
    Some (Bitvec.to_string a.(i))
  | _ -> None

let triage_of_report (pair : Pair.t) (r : report) =
  match r.outcome with
  | Proved _ | Undecided _ | Simulated (Sim_clean _) | Errored _ -> None
  | Refuted (cex, _) ->
    let failures =
      List.map
        (fun ((c : Spec.check), got) ->
          {
            Triage.f_port = c.Spec.rtl_port;
            f_cycle = c.Spec.at_cycle;
            f_expected = expected_of_slm cex.Checker.slm_result c;
            f_got = Bitvec.to_string got;
          })
        cex.Checker.failed_checks
    in
    Some
      (triage_bundle pair ~kind:"sec-counterexample" cex.Checker.params
         failures)
  | Simulated (Sim_mismatch { vector_index; params; failed_checks }) ->
    let failures =
      List.map
        (fun ((c : Spec.check), e, got) ->
          {
            Triage.f_port = c.Spec.rtl_port;
            f_cycle = c.Spec.at_cycle;
            f_expected = Some (Bitvec.to_string e);
            f_got = Bitvec.to_string got;
          })
        failed_checks
    in
    Some
      (triage_bundle pair ~kind:"sim-miscompare" ~txn_index:vector_index
         params failures)
