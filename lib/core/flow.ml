module Bitvec = Dfv_bitvec.Bitvec
module Ast = Dfv_hwir.Ast
module Interp = Dfv_hwir.Interp
module Typecheck = Dfv_hwir.Typecheck
module Netlist = Dfv_rtl.Netlist
module Sim = Dfv_rtl.Sim
module Spec = Dfv_sec.Spec
module Checker = Dfv_sec.Checker

type sim_outcome =
  | Sim_clean of { vectors : int }
  | Sim_mismatch of {
      vector_index : int;
      params : (string * Interp.value) list;
      failed_checks : (Spec.check * Bitvec.t * Bitvec.t) list;
    }

let random_value st (ty : Ast.ty) =
  match ty with
  | Ast.Tint { width; _ } -> Interp.Vint (Bitvec.random st ~width)
  | Ast.Tarray (Ast.Tint { width; _ }, n) ->
    Interp.Varr (Array.init n (fun _ -> Bitvec.random st ~width))
  | Ast.Tarray (Ast.Tarray _, _) -> failwith "Flow: nested array parameter"

(* Constraints are evaluated by interpreting a wrapper function, exactly
   mirroring how the SEC path elaborates them. *)
let constraint_checkers (pair : Pair.t) =
  let fn =
    match Ast.find_func pair.Pair.slm pair.Pair.slm.Ast.entry with
    | Some f -> f
    | None -> failwith "Flow: SLM entry not found"
  in
  List.mapi
    (fun i expr ->
      let cname = Printf.sprintf "__sim_constraint_%d" i in
      let wrapper =
        {
          Ast.funcs =
            pair.Pair.slm.Ast.funcs
            @ [ {
                  Ast.fname = cname;
                  params = fn.Ast.params;
                  ret = Ast.bool_ty;
                  locals = [];
                  body = [ Ast.Return expr ];
                } ];
          entry = cname;
        }
      in
      fun args ->
        match Interp.run wrapper args with
        | Interp.Vint b -> not (Bitvec.is_zero b)
        | Interp.Varr _ -> false
        | exception Interp.Runtime_error _ -> false)
    pair.Pair.spec.Spec.constraints

let concrete_source params (src : Spec.source) =
  match src with
  | Spec.Const bv -> bv
  | Spec.Param name -> (
    match List.assoc name params with
    | Interp.Vint bv -> bv
    | Interp.Varr _ -> failwith "Flow: array param used as scalar")
  | Spec.Param_elem (name, i) -> (
    match List.assoc name params with
    | Interp.Varr a -> a.(i)
    | Interp.Vint _ -> failwith "Flow: scalar param indexed")
  | Spec.Param_bits { name; hi; lo } -> (
    match List.assoc name params with
    | Interp.Vint bv -> Bitvec.select bv ~hi ~lo
    | Interp.Varr _ -> failwith "Flow: array param sliced")

(* Run one concrete transaction through the RTL simulator and compare the
   spec's checks against the SLM result. *)
let run_transaction (pair : Pair.t) params =
  let spec = pair.Pair.spec in
  let slm_result = Interp.run pair.Pair.slm (List.map snd params) in
  let sim = Sim.create pair.Pair.rtl in
  let outputs = Array.make spec.Spec.rtl_cycles [] in
  for t = 0 to spec.Spec.rtl_cycles - 1 do
    let ins =
      List.map
        (fun (port, drive) ->
          let src =
            match drive with Spec.Hold bv -> Spec.Const bv | Spec.At f -> f t
          in
          (port, concrete_source params src))
        spec.Spec.drives
    in
    outputs.(t) <- Sim.cycle sim ins
  done;
  let expected (c : Spec.check) =
    match (c.Spec.expect, slm_result) with
    | Spec.Result, Interp.Vint bv -> bv
    | Spec.Result_elem i, Interp.Varr a -> a.(i)
    | Spec.Result, Interp.Varr _ | Spec.Result_elem _, Interp.Vint _ ->
      failwith "Flow: result shape does not match the spec"
  in
  List.filter_map
    (fun (c : Spec.check) ->
      let got = List.assoc c.Spec.rtl_port outputs.(c.Spec.at_cycle) in
      let e = expected c in
      if Bitvec.equal got e then None else Some (c, e, got))
    spec.Spec.checks

let simulate ?(seed = 0) ~vectors (pair : Pair.t) =
  let params_sig, _ = Typecheck.entry_signature pair.Pair.slm in
  let st = Random.State.make [| seed; Hashtbl.hash pair.Pair.name |] in
  let checkers = constraint_checkers pair in
  let draw () =
    let rec go attempts =
      if attempts > 100 * vectors then
        failwith "Flow.simulate: constraints too tight for random stimulus";
      let params =
        List.map (fun (n, ty) -> (n, random_value st ty)) params_sig
      in
      let args = List.map snd params in
      if List.for_all (fun c -> c args) checkers then
        (* Vectors on which the SLM itself faults (e.g. division by
           zero) are outside the comparison domain; redraw. *)
        match Interp.run pair.Pair.slm args with
        | _ -> params
        | exception Interp.Runtime_error _ -> go (attempts + 1)
      else go (attempts + 1)
    in
    go 0
  in
  let rec loop i =
    if i >= vectors then Sim_clean { vectors }
    else begin
      let params = draw () in
      match run_transaction pair params with
      | [] -> loop (i + 1)
      | failed_checks -> Sim_mismatch { vector_index = i; params; failed_checks }
    end
  in
  loop 0

let sec ?budget ?session (pair : Pair.t) =
  Checker.check_slm_rtl ?budget ?session ~slm:pair.Pair.slm ~rtl:pair.Pair.rtl
    ~spec:pair.Pair.spec ()

type verify_outcome =
  | Proved of Checker.stats
  | Refuted of Checker.cex * Checker.stats
  | Undecided of Dfv_sat.Solver.reason * Checker.stats
  | Simulated of sim_outcome

type report = { audit : Pair.audit; outcome : verify_outcome }

let verify ?seed ?(sim_vectors = 1000) ?budget ?session pair =
  let audit = Pair.audit pair in
  let outcome =
    if audit.Pair.sec_ready then begin
      match sec ?budget ?session pair with
      | Checker.Equivalent stats -> Proved stats
      | Checker.Not_equivalent (cex, stats) -> Refuted (cex, stats)
      | Checker.Unknown (reason, stats) -> Undecided (reason, stats)
    end
    else Simulated (simulate ?seed ~vectors:sim_vectors pair)
  in
  { audit; outcome }

let pp_value fmt = function
  | Interp.Vint bv -> Bitvec.pp fmt bv
  | Interp.Varr a ->
    Format.fprintf fmt "[%s]"
      (String.concat "; " (Array.to_list (Array.map Bitvec.to_string a)))

let pp_report fmt r =
  let open Format in
  Pair.pp_audit fmt r.audit;
  match r.outcome with
  | Proved stats ->
    fprintf fmt "verdict: EQUIVALENT (proved; %d AIG nodes, %d conflicts, %.3fs)@."
      stats.Checker.aig_ands stats.Checker.sat_conflicts
      stats.Checker.wall_seconds
  | Refuted (cex, stats) ->
    fprintf fmt "verdict: NOT EQUIVALENT (%.3fs)@." stats.Checker.wall_seconds;
    List.iter
      (fun (n, v) -> fprintf fmt "  %s = %a@." n pp_value v)
      cex.Checker.params
  | Undecided (reason, stats) ->
    fprintf fmt "verdict: UNKNOWN (%s after %d conflicts, %.3fs)@."
      (match reason with
      | Dfv_sat.Solver.Conflict_limit -> "conflict budget exhausted"
      | Dfv_sat.Solver.Time_limit -> "time budget exhausted")
      stats.Checker.sat_conflicts stats.Checker.wall_seconds
  | Simulated (Sim_clean { vectors }) ->
    fprintf fmt "verdict: SIMULATION CLEAN (%d transactions; no proof)@." vectors
  | Simulated (Sim_mismatch { vector_index; params; failed_checks }) ->
    fprintf fmt "verdict: SIMULATION MISMATCH at transaction %d@." vector_index;
    List.iter (fun (n, v) -> fprintf fmt "  %s = %a@." n pp_value v) params;
    List.iter
      (fun ((c : Spec.check), e, got) ->
        fprintf fmt "  %s@%d: expected %a, got %a@." c.Spec.rtl_port
          c.Spec.at_cycle Bitvec.pp e Bitvec.pp got)
      failed_checks
