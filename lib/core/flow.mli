(** Verification flows over a design pair.

    The paper's two ways of leveraging an SLM for RTL verification
    (Section 2), both driven by the {e same} transaction specification:

    - {!simulate}: simulation-based comparison — random transactions,
      the SLM (interpreter) produces expected outputs, the RTL simulator
      is driven through the spec's stimulus adapter, and the spec's
      checks are compared;
    - {!sec}: sequential equivalence checking via {!Dfv_sec.Checker}.

    {!verify} combines them the way a design team would: audit first,
    SEC when the model is conditioned, simulation as the fallback — and
    always reports which path ran. *)

type sim_outcome =
  | Sim_clean of { vectors : int }
  | Sim_mismatch of {
      vector_index : int;  (** 0-based index of the failing transaction *)
      params : (string * Dfv_hwir.Interp.value) list;
      failed_checks : (Dfv_sec.Spec.check * Dfv_bitvec.Bitvec.t * Dfv_bitvec.Bitvec.t) list;
          (** (check, expected, got) *)
    }

val simulate :
  ?seed:int ->
  ?max_rounds:int ->
  ?engine:Dfv_hwir.Exec.engine ->
  vectors:int ->
  Pair.t ->
  (sim_outcome, Dfv_error.t) result
(** Run [vectors] random transactions, stopping at the first mismatch.

    [engine] selects how the SLM side executes: [`Compiled] lowers the
    model through the verified normal form onto the shared slot-indexed
    kernel (and errors on models outside it), [`Interp] forces the
    tree-walking reference.  When omitted, the compiled engine runs for
    conditioned models with automatic fallback to the interpreter.
    Parameter values are drawn uniformly; vectors violating the spec's
    constraints are redrawn with a widening search: each of the
    [max_rounds] (default 4) rounds doubles the attempt budget, and
    rounds after the first also mutate the best candidate seen so far
    (most constraints satisfied) by single bit flips.  Every accepted
    vector still satisfies {e all} constraints — widening only changes
    how hard the generator looks.  When the search is exhausted the
    result is [Error (Stimulus_exhausted _)] naming the tightest
    constraints; engine failures while simulating map through
    {!Dfv_error.of_exn} instead of escaping as exceptions. *)

val sec :
  ?budget:Dfv_sat.Solver.budget ->
  ?session:Dfv_sec.Session.t ->
  Pair.t ->
  Dfv_sec.Checker.verdict
(** One SEC query on the pair.  [budget] bounds the SAT effort (the
    verdict is [Unknown] when it runs out); [session] shares one solving
    substrate across several queries (see {!Dfv_sec.Session}). *)

type verify_outcome =
  | Proved of Dfv_sec.Checker.stats
  | Refuted of Dfv_sec.Checker.cex * Dfv_sec.Checker.stats
  | Undecided of Dfv_sat.Solver.reason * Dfv_sec.Checker.stats
      (** SEC ran but its budget expired before a verdict. *)
  | Simulated of sim_outcome
      (** SEC was blocked (see the audit); simulation ran instead. *)
  | Errored of Dfv_error.t
      (** the flow itself failed; recorded, not raised, so campaign
          drivers can keep going *)

type report = { audit : Pair.audit; outcome : verify_outcome }

val verify :
  ?seed:int ->
  ?sim_vectors:int ->
  ?engine:Dfv_hwir.Exec.engine ->
  ?budget:Dfv_sat.Solver.budget ->
  ?session:Dfv_sec.Session.t ->
  Pair.t ->
  report
(** The combined flow ([sim_vectors] defaults to 1000); [budget] and
    [session] are passed to {!sec} when the SEC path runs, [engine] to
    {!simulate} when the simulation path runs. *)

val pp_report : Format.formatter -> report -> unit

val triage_of_report : Pair.t -> report -> Dfv_obs.Triage.t option
(** A mismatch triage bundle for a failed report — [Some] exactly when
    the outcome is [Refuted] (kind ["sec-counterexample"]) or
    [Simulated (Sim_mismatch _)] (kind ["sim-miscompare"]).  The bundle
    carries the failing transaction's stimulus, each diverging check,
    and a VCD slice of the re-simulated transaction windowed ±4 cycles
    around the earliest failing cycle, plus automatic metric/span/
    coverage snapshots (see {!Dfv_obs.Triage}). *)
