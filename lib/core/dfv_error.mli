(** Structured error taxonomy for the DFV stack.

    The flows in this library orchestrate engines that historically
    signalled trouble with bare [Failure]/ad-hoc exceptions: the HWIR
    interpreter, the RTL elaborator, the SLM kernel, the TLM sockets and
    the transaction engine.  For a single interactive run an exception is
    fine; for a fault-injection campaign (hundreds of mutants, each
    allowed to misbehave) one bad mutant must degrade to a recorded
    verdict instead of aborting the batch.

    [Dfv_error.t] is the shared vocabulary: every engine failure maps to
    one constructor, [of_exn] performs that mapping, and [guard] turns
    an exception-raising thunk into a [result].  [Flow], the fault
    campaign and [bin/dfv] thread these values instead of letting
    exceptions escape. *)

type watchdog_kind =
  | Delta_limit  (** runaway delta loop: too many delta cycles in one run *)
  | Activation_limit  (** too many process activations in one run *)
  | Starvation
      (** the kernel went idle with threads still blocked and no timed
          activity pending — a wait cycle / deadlock *)

type t =
  | Stimulus_exhausted of { attempts : int; rounds : int; detail : string }
      (** constrained-random stimulus generation gave up after widening *)
  | Protocol_violation of { channel : string; detail : string }
      (** a TLM/stream channel broke its transport contract *)
  | Watchdog of {
      kind : watchdog_kind;
      at_time : int;
      deltas : int;
      activations : int;
      processes : string list;  (** named culprit / blocked processes *)
    }
  | Transaction_incomplete of string
      (** the cosim transaction engine ran out of cycles with
          transactions still in flight *)
  | Elaboration_failure of string
      (** HWIR/RTL static elaboration or typecheck failed *)
  | Spec_violation of string  (** the transaction spec is ill-formed *)
  | Model_runtime_fault of string
      (** the SLM faulted while executing (e.g. division by zero) *)
  | Worker_crashed of { job : string; detail : string }
      (** a pool worker process died without delivering a result: killed
          by a signal (segfault, OOM kill), a nonzero exit, or a lost
          heartbeat (see {!Dfv_par.Pool}) *)
  | Worker_timeout of { job : string; seconds : float }
      (** a pool worker exceeded its per-job wall-clock budget and was
          killed — the parallel analogue of a solver budget running out *)
  | Interrupted of { job : string }
      (** the run was stopped by an operator signal (SIGINT/SIGTERM)
          before this job completed; the work is resumable from a
          journal (see {!Dfv_par.Journal}) *)
  | Internal of string  (** anything else; carries the raw message *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val exit_code : t -> int
(** CLI exit code for this error under the documented convention:
    2 for "could not decide" failures (budget-like: stimulus exhaustion,
    watchdog trips, incomplete transactions, worker timeouts), 3 for
    structural/internal errors (including worker crashes), 4 for
    "interrupted, resumable". *)

val transient : t -> bool
(** Whether a bounded retry of the failed job could plausibly succeed.
    Only [Worker_crashed] qualifies — a worker death may be
    environmental (OOM pressure, a stray signal, a starved heartbeat)
    rather than a property of the job.  [Worker_timeout] under the same
    budget fails identically, and every other constructor is a
    structured verdict about the job itself.  {!Dfv_par.Pool} consults
    this to decide which failures enter its retry-with-backoff loop. *)

val to_json : t -> Dfv_obs.Json.t
(** Structured rendering, a tagged object [{"kind": ..., ...fields}].
    {!of_json} inverts it exactly; the worker pool uses the pair to
    carry taxonomy values across the result pipe without flattening
    them to strings. *)

val of_json : Dfv_obs.Json.t -> (t, string) result

val of_exn : exn -> t
(** Total mapping from engine exceptions to the taxonomy; unrecognized
    exceptions become [Internal] with their printed form. *)

val guard : (unit -> 'a) -> ('a, t) result
(** Run a thunk, converting any raised exception via {!of_exn}.
    Asynchronous/fatal exceptions ([Out_of_memory], [Stack_overflow],
    [Sys.Break]) are re-raised, not captured. *)
