module Json = Dfv_obs.Json
module Metrics = Dfv_obs.Metrics
module Journal = Dfv_par.Journal

(* Every dfv-serve store ever written shares one campaign key: the
   cache is content-addressed, so the *records* carry all the identity
   there is (the key inside each payload), and a store outliving any
   particular server configuration is the point. *)
let store_campaign = "dfv-serve-store|v1"

let m_hit = Metrics.counter "serve.cache.hit"
let m_miss = Metrics.counter "serve.cache.miss"
let m_evicted = Metrics.counter "serve.cache.evicted"
let m_rejected = Metrics.counter "serve.cache.rejected"
let g_size = Metrics.gauge "serve.cache.size"

(* Intrusive doubly-linked LRU list; [head] is most recent, [tail]
   least.  O(1) touch/insert/evict — a request's cache probe must never
   be the slow part of a hit. *)
type entry = {
  key : string;
  payload : Json.t;
  mutable prev : entry option;  (** towards head (more recent) *)
  mutable next : entry option;  (** towards tail (less recent) *)
}

type t = {
  capacity : int;
  table : (string, entry) Hashtbl.t;
  mutable head : entry option;
  mutable tail : entry option;
  journal : Journal.t option;
  mutable hits : int;
  mutable misses : int;
  mutable evicted : int;
  mutable rejected : int;
  replayed : int;
}

let size t = Hashtbl.length t.table
let capacity t = t.capacity
let hits t = t.hits
let misses t = t.misses
let evicted t = t.evicted
let rejected t = t.rejected
let replayed t = t.replayed

let unlink t e =
  (match e.prev with
  | Some p -> p.next <- e.next
  | None -> t.head <- e.next);
  (match e.next with
  | Some n -> n.prev <- e.prev
  | None -> t.tail <- e.prev);
  e.prev <- None;
  e.next <- None

let push_front t e =
  e.prev <- None;
  e.next <- t.head;
  (match t.head with Some h -> h.prev <- Some e | None -> t.tail <- Some e);
  t.head <- Some e

let evict_tail t =
  match t.tail with
  | None -> ()
  | Some e ->
    unlink t e;
    Hashtbl.remove t.table e.key;
    t.evicted <- t.evicted + 1;
    Metrics.incr m_evicted

(* The on-disk record wraps the payload with its own key, so a record
   landing under the wrong journal fingerprint — an FNV collision, or a
   file edited/corrupted into a valid-looking line — is detectable and
   rejected rather than served as someone else's verdict. *)
let record_of ~key payload =
  Json.Obj [ ("key", Json.String key); ("entry", payload) ]

let record_fields v =
  match (Json.field "key" v, Json.field "entry" v) with
  | Some (Json.String k), Some payload -> Some (k, payload)
  | _ -> None

let insert_unchecked t ~key payload =
  if t.capacity > 0 && not (Hashtbl.mem t.table key) then begin
    while Hashtbl.length t.table >= t.capacity do
      evict_tail t
    done;
    let e = { key; payload; prev = None; next = None } in
    Hashtbl.replace t.table key e;
    push_front t e;
    Metrics.set_gauge g_size (Hashtbl.length t.table)
  end

let create ?(capacity = 256) ?store ?(validate = fun _ -> true) () =
  if capacity < 1 then Error "cache capacity must be >= 1"
  else begin
    let journal =
      match store with
      | None -> Ok None
      | Some path -> (
        match Journal.open_ ~path ~campaign:store_campaign with
        | Ok j -> Ok (Some j)
        | Error m -> Error (Printf.sprintf "store %s: %s" path m))
    in
    match journal with
    | Error _ as e -> e
    | Ok journal ->
      let t =
        {
          capacity;
          table = Hashtbl.create (2 * capacity);
          head = None;
          tail = None;
          journal;
          hits = 0;
          misses = 0;
          evicted = 0;
          rejected = 0;
          replayed =
            (match journal with Some j -> Journal.replayed j | None -> 0);
        }
      in
      (match journal with
      | None -> ()
      | Some j ->
        (* Warm the LRU in append order (oldest first), so when the
           store holds more than [capacity] the oldest entries are the
           ones that fall out — reload order is eviction order. *)
        List.iter
          (fun (fp, record) ->
            match record_fields record with
            | Some (key, payload)
              when String.equal (Journal.fingerprint key) fp
                   && validate payload ->
              insert_unchecked t ~key payload
            | Some _ | None ->
              (* Poisoned: the record does not re-derive its own
                 fingerprint, or its payload fails shape validation.
                 Dropping it only costs a re-solve. *)
              t.rejected <- t.rejected + 1;
              Metrics.incr m_rejected)
          (Journal.replayed_entries j));
      Ok t
  end

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some e ->
    unlink t e;
    push_front t e;
    t.hits <- t.hits + 1;
    Metrics.incr m_hit;
    Some e.payload
  | None ->
    t.misses <- t.misses + 1;
    Metrics.incr m_miss;
    None

let mem t key = Hashtbl.mem t.table key

let add t ~key payload =
  if not (Hashtbl.mem t.table key) then begin
    (* Disk first: a crash between the fsync'd append and the in-memory
       insert re-serves from the store on restart; the reverse order
       would serve from memory once and forget. *)
    (match t.journal with
    | Some j -> Journal.append j ~fp:(Journal.fingerprint key) (record_of ~key payload)
    | None -> ());
    insert_unchecked t ~key payload
  end

let lru_keys t =
  let rec go acc = function
    | None -> acc
    | Some e -> go (e.key :: acc) e.next
  in
  (* Walk from head (most recent) consing, so the result is least-
     recent first — the order eviction would take them. *)
  go [] t.head

let close t = match t.journal with Some j -> Journal.close j | None -> ()
