(** The [dfv serve] wire protocol: line-framed JSON requests and
    responses over a Unix-domain socket.

    Framing follows the [dfv-par] worker pipe discipline — one complete
    JSON object per newline-terminated line — and every frame carries
    the common artifact envelope
    [{"schema":"dfv-serve","version":1,"kind":...}].  Two frame kinds:

    {v
    frame    ::= request | response
    request  ::= {envelope, "kind":"request", "id":INT, "op":OP, ...op fields}
    OP       ::= "sec" | "sim" | "faultsim" | "ping" | "stats" | "shutdown"
    response ::= {envelope, "kind":"response", "id":INT, "key":STR,
                  "cached":BOOL, "seconds":FLOAT,
                  "result":PAYLOAD | "error":DFV_ERROR}
    v}

    [id] is a client-chosen correlation number echoed in the response;
    a client may pipeline many requests on one connection and match
    answers by [id].  Errors travel as the structured
    {!Dfv_core.Dfv_error} taxonomy ([to_json]/[of_json]), never as
    flattened strings, so a client exits with the same code the cold
    CLI would have. *)

val schema : string
(** ["dfv-serve"]. *)

val version : int

(** {2 Operations} *)

type op =
  | Sec of {
      design : string;
      bug : string;  (** ["none"] for the reference model *)
      budget : Dfv_sat.Solver.budget option;
    }
  | Sim of { design : string; bug : string; vectors : int; seed : int }
  | Faultsim of {
      designs : string list;
      seed : int;
      max_rtl_faults : int;
      max_slm_faults : int;
      sim_vectors : int;
      budget : Dfv_sat.Solver.budget option;
    }
  | Ping  (** liveness probe; never cached *)
  | Stats  (** server/cache counters as a [dfv-serve] stats document *)
  | Shutdown  (** acknowledged, then the daemon exits cleanly *)

val op_name : op -> string

val budget_key : Dfv_sat.Solver.budget option -> string
(** Canonical budget rendering for cache keys: an [Unknown] verdict is
    only reusable under the budget that produced it. *)

type request = { id : int; op : op }

(** {2 Result payloads} *)

type sim_wire =
  | Sim_clean of int  (** vectors run, no mismatch *)
  | Sim_mismatch of int  (** first mismatching vector index *)

type faultsim_wire = {
  f_pass : bool;
  f_rate : float;
  f_false_eq : int;
  f_report : Dfv_obs.Json.t;  (** the full dfv-faultsim report document *)
}

type payload =
  | R_sec of Dfv_par.Portfolio.slm_wire
  | R_sim of sim_wire
  | R_faultsim of faultsim_wire
  | R_pong
  | R_stats of Dfv_obs.Json.t
  | R_shutdown

val payload_status : payload -> string
(** One-word outcome ("equivalent", "mismatch", "pass", ...) used in
    request logs and for the client's exit-code mapping. *)

type response = {
  rsp_id : int;
  key : string;  (** cache key; [""] for control operations *)
  cached : bool;
  seconds : float;  (** server-side handling time *)
  outcome : (payload, Dfv_core.Dfv_error.t) result;
}

(** {2 JSON codecs}

    [X_of_json (X_to_json v)] reconstructs [v] for every protocol
    value (timings aside: floats round-trip via the strict printer). *)

val budget_to_json : Dfv_sat.Solver.budget option -> Dfv_obs.Json.t
val budget_of_json :
  Dfv_obs.Json.t -> (Dfv_sat.Solver.budget option, string) result

val request_to_json : request -> Dfv_obs.Json.t
val request_of_json : Dfv_obs.Json.t -> (request, string) result

val payload_to_json : payload -> Dfv_obs.Json.t
val payload_of_json : Dfv_obs.Json.t -> (payload, string) result

val payload_valid : Dfv_obs.Json.t -> bool
(** Shape validation for cache entries read back from a disk store: a
    record whose payload does not decode is poisoned and must be
    rejected, not served. *)

val response_to_json : response -> Dfv_obs.Json.t
val response_of_json : Dfv_obs.Json.t -> (response, string) result

(** {2 Framing} *)

val frame : Dfv_obs.Json.t -> string
(** One newline-terminated line. *)

val parse_frame : string -> (Dfv_obs.Json.t, string) result
