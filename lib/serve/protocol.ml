module Json = Dfv_obs.Json
module Dfv_error = Dfv_core.Dfv_error
module Solver = Dfv_sat.Solver
module Portfolio = Dfv_par.Portfolio

let schema = "dfv-serve"
let version = 1

(* --- operations --------------------------------------------------------- *)

type op =
  | Sec of { design : string; bug : string; budget : Solver.budget option }
  | Sim of { design : string; bug : string; vectors : int; seed : int }
  | Faultsim of {
      designs : string list;
      seed : int;
      max_rtl_faults : int;
      max_slm_faults : int;
      sim_vectors : int;
      budget : Solver.budget option;
    }
  | Ping
  | Stats
  | Shutdown

let op_name = function
  | Sec _ -> "sec"
  | Sim _ -> "sim"
  | Faultsim _ -> "faultsim"
  | Ping -> "ping"
  | Stats -> "stats"
  | Shutdown -> "shutdown"

(* The canonical rendering of a solver budget inside a cache key: an
   [Unknown] verdict is only reusable under the budget that produced
   it, so the budget is part of the question. *)
let budget_key = function
  | None -> "-"
  | Some b ->
    Printf.sprintf "c=%s,s=%s"
      (match b.Solver.max_conflicts with
      | Some c -> string_of_int c
      | None -> "-")
      (match b.Solver.max_seconds with
      | Some s -> Printf.sprintf "%g" s
      | None -> "-")

type request = { id : int; op : op }

(* --- result payloads ---------------------------------------------------- *)

type sim_wire = Sim_clean of int | Sim_mismatch of int

type faultsim_wire = {
  f_pass : bool;
  f_rate : float;
  f_false_eq : int;
  f_report : Json.t;  (** the full dfv-faultsim report document *)
}

type payload =
  | R_sec of Portfolio.slm_wire
  | R_sim of sim_wire
  | R_faultsim of faultsim_wire
  | R_pong
  | R_stats of Json.t
  | R_shutdown

(* One-word outcome classification, used for request-log lines and the
   CLI exit code (the same 0/1/2 mapping as the cold commands). *)
let payload_status = function
  | R_sec (Portfolio.W_equivalent _) -> "equivalent"
  | R_sec (Portfolio.W_not_equivalent _) -> "not_equivalent"
  | R_sec (Portfolio.W_unknown _) -> "unknown"
  | R_sim (Sim_clean _) -> "clean"
  | R_sim (Sim_mismatch _) -> "mismatch"
  | R_faultsim { f_pass = true; _ } -> "pass"
  | R_faultsim { f_pass = false; _ } -> "fail"
  | R_pong -> "pong"
  | R_stats _ -> "stats"
  | R_shutdown -> "shutdown"

type response = {
  rsp_id : int;
  key : string;  (** cache key; [""] for control operations *)
  cached : bool;
  seconds : float;  (** server-side handling time *)
  outcome : (payload, Dfv_error.t) result;
}

(* --- JSON forms --------------------------------------------------------- *)

let budget_to_json = function
  | None -> Json.Null
  | Some b ->
    Json.Obj
      [ ( "conflicts",
          match b.Solver.max_conflicts with
          | Some c -> Json.Int c
          | None -> Json.Null );
        ( "seconds",
          match b.Solver.max_seconds with
          | Some s -> Json.Float s
          | None -> Json.Null ) ]

let budget_of_json = function
  | Json.Null -> Ok None
  | Json.Obj _ as v ->
    let conflicts =
      match Json.field "conflicts" v with
      | Some (Json.Int c) -> Some c
      | _ -> None
    in
    let seconds =
      match Json.field "seconds" v with
      | Some (Json.Float s) -> Some s
      | Some (Json.Int s) -> Some (float_of_int s)
      | _ -> None
    in
    if conflicts = None && seconds = None then Ok None
    else Ok (Some { Solver.max_conflicts = conflicts; max_seconds = seconds })
  | _ -> Error "bad budget"

let envelope kind fields =
  Json.envelope ~schema ~version (("kind", Json.String kind) :: fields)

let request_to_json { id; op } =
  let fields =
    match op with
    | Sec { design; bug; budget } ->
      [ ("design", Json.String design);
        ("bug", Json.String bug);
        ("budget", budget_to_json budget) ]
    | Sim { design; bug; vectors; seed } ->
      [ ("design", Json.String design);
        ("bug", Json.String bug);
        ("vectors", Json.Int vectors);
        ("seed", Json.Int seed) ]
    | Faultsim { designs; seed; max_rtl_faults; max_slm_faults; sim_vectors; budget }
      ->
      [ ("designs", Json.List (List.map (fun d -> Json.String d) designs));
        ("seed", Json.Int seed);
        ("max_rtl_faults", Json.Int max_rtl_faults);
        ("max_slm_faults", Json.Int max_slm_faults);
        ("sim_vectors", Json.Int sim_vectors);
        ("budget", budget_to_json budget) ]
    | Ping | Stats | Shutdown -> []
  in
  envelope "request" (("id", Json.Int id) :: ("op", Json.String (op_name op)) :: fields)

let ( let* ) = Result.bind

let str_field v name =
  match Json.field name v with
  | Some (Json.String s) -> Ok s
  | _ -> Error (Printf.sprintf "missing string field %S" name)

let int_field v name =
  match Json.field name v with
  | Some (Json.Int i) -> Ok i
  | _ -> Error (Printf.sprintf "missing int field %S" name)

let int_field_default v name d =
  match Json.field name v with
  | Some (Json.Int i) -> Ok i
  | None -> Ok d
  | Some _ -> Error (Printf.sprintf "bad int field %S" name)

let budget_field v =
  match Json.field "budget" v with
  | Some b -> budget_of_json b
  | None -> Ok None

let check_envelope v =
  match Json.envelope_of v with
  | Some (s, ver) when s = schema && ver = version -> Ok ()
  | Some (s, ver) ->
    Error (Printf.sprintf "not a %s v%d frame (%s v%d)" schema version s ver)
  | None -> Error "missing {schema, version} envelope"

let request_of_json v =
  let* () = check_envelope v in
  let* kind = str_field v "kind" in
  if kind <> "request" then Error (Printf.sprintf "not a request frame (%s)" kind)
  else
    let* id = int_field v "id" in
    let* op_s = str_field v "op" in
    let* op =
      match op_s with
      | "sec" ->
        let* design = str_field v "design" in
        let* bug =
          match Json.field "bug" v with
          | Some (Json.String b) -> Ok b
          | None -> Ok "none"
          | Some _ -> Error "bad bug field"
        in
        let* budget = budget_field v in
        Ok (Sec { design; bug; budget })
      | "sim" ->
        let* design = str_field v "design" in
        let* bug =
          match Json.field "bug" v with
          | Some (Json.String b) -> Ok b
          | None -> Ok "none"
          | Some _ -> Error "bad bug field"
        in
        let* vectors = int_field_default v "vectors" 1000 in
        let* seed = int_field_default v "seed" 0 in
        Ok (Sim { design; bug; vectors; seed })
      | "faultsim" ->
        let* designs =
          match Json.field "designs" v with
          | Some (Json.List ds) ->
            List.fold_right
              (fun d acc ->
                let* acc = acc in
                match d with
                | Json.String s -> Ok (s :: acc)
                | _ -> Error "non-string design")
              ds (Ok [])
          | _ -> Error "faultsim without designs"
        in
        let* seed = int_field_default v "seed" 0 in
        let* max_rtl_faults = int_field_default v "max_rtl_faults" 16 in
        let* max_slm_faults = int_field_default v "max_slm_faults" 8 in
        let* sim_vectors = int_field_default v "sim_vectors" 400 in
        let* budget = budget_field v in
        Ok
          (Faultsim
             { designs; seed; max_rtl_faults; max_slm_faults; sim_vectors; budget })
      | "ping" -> Ok Ping
      | "stats" -> Ok Stats
      | "shutdown" -> Ok Shutdown
      | op -> Error (Printf.sprintf "unknown op %S" op)
    in
    Ok { id; op }

let payload_to_json = function
  | R_sec w ->
    Json.Obj [ ("sec", Portfolio.slm_wire_to_json w) ]
  | R_sim (Sim_clean vectors) ->
    Json.Obj [ ("sim", Json.Obj [ ("clean", Json.Int vectors) ]) ]
  | R_sim (Sim_mismatch at) ->
    Json.Obj [ ("sim", Json.Obj [ ("mismatch_at", Json.Int at) ]) ]
  | R_faultsim { f_pass; f_rate; f_false_eq; f_report } ->
    Json.Obj
      [ ( "faultsim",
          Json.Obj
            [ ("pass", Json.Bool f_pass);
              ("rate", Json.Float f_rate);
              ("false_equivalents", Json.Int f_false_eq);
              ("report", f_report) ] ) ]
  | R_pong -> Json.Obj [ ("pong", Json.Bool true) ]
  | R_stats s -> Json.Obj [ ("stats", s) ]
  | R_shutdown -> Json.Obj [ ("shutdown", Json.Bool true) ]

let payload_of_json v =
  match
    ( Json.field "sec" v,
      Json.field "sim" v,
      Json.field "faultsim" v,
      Json.field "pong" v,
      Json.field "stats" v,
      Json.field "shutdown" v )
  with
  | Some w, _, _, _, _, _ ->
    let* w = Portfolio.slm_wire_of_json w in
    Ok (R_sec w)
  | _, Some s, _, _, _, _ -> (
    match (Json.field "clean" s, Json.field "mismatch_at" s) with
    | Some (Json.Int n), _ -> Ok (R_sim (Sim_clean n))
    | _, Some (Json.Int at) -> Ok (R_sim (Sim_mismatch at))
    | _ -> Error "bad sim payload")
  | _, _, Some f, _, _, _ ->
    let* f_rate =
      match Json.field "rate" f with
      | Some (Json.Float r) -> Ok r
      | Some (Json.Int r) -> Ok (float_of_int r)
      | _ -> Error "faultsim payload without rate"
    in
    let* f_false_eq = int_field f "false_equivalents" in
    let* f_pass =
      match Json.field "pass" f with
      | Some (Json.Bool b) -> Ok b
      | _ -> Error "faultsim payload without pass"
    in
    let* f_report =
      match Json.field "report" f with
      | Some r -> Ok r
      | None -> Error "faultsim payload without report"
    in
    Ok (R_faultsim { f_pass; f_rate; f_false_eq; f_report })
  | _, _, _, Some (Json.Bool true), _, _ -> Ok R_pong
  | _, _, _, _, Some s, _ -> Ok (R_stats s)
  | _, _, _, _, _, Some (Json.Bool true) -> Ok R_shutdown
  | _ -> Error "unrecognized result payload"

(* A cached entry is exactly a payload document; reload-time validation
   ("poisoned-entry rejection") is decodability. *)
let payload_valid v = Result.is_ok (payload_of_json v)

let response_to_json r =
  let fields =
    [ ("id", Json.Int r.rsp_id);
      ("key", Json.String r.key);
      ("cached", Json.Bool r.cached);
      ("seconds", Json.Float r.seconds) ]
  in
  match r.outcome with
  | Ok p -> envelope "response" (fields @ [ ("result", payload_to_json p) ])
  | Error e -> envelope "response" (fields @ [ ("error", Dfv_error.to_json e) ])

let response_of_json v =
  let* () = check_envelope v in
  let* kind = str_field v "kind" in
  if kind <> "response" then
    Error (Printf.sprintf "not a response frame (%s)" kind)
  else
    let* rsp_id = int_field v "id" in
    let* key = str_field v "key" in
    let* cached =
      match Json.field "cached" v with
      | Some (Json.Bool b) -> Ok b
      | _ -> Error "missing cached flag"
    in
    let* seconds =
      match Json.field "seconds" v with
      | Some (Json.Float s) -> Ok s
      | Some (Json.Int s) -> Ok (float_of_int s)
      | _ -> Error "missing seconds"
    in
    let* outcome =
      match (Json.field "result" v, Json.field "error" v) with
      | Some p, _ ->
        let* p = payload_of_json p in
        Ok (Ok p)
      | _, Some e -> (
        match Dfv_error.of_json e with
        | Ok e -> Ok (Error e)
        | Error m -> Error ("undecodable error: " ^ m))
      | None, None -> Error "response without result or error"
    in
    Ok { rsp_id; key; cached; seconds; outcome }

(* --- framing ------------------------------------------------------------ *)

let frame v = Json.to_string v ^ "\n"

let parse_frame line =
  match Json.parse line with
  | Ok v -> Ok v
  | Error m -> Error ("bad frame: " ^ m)
