(** The content-addressed verification-result cache behind [dfv serve].

    Entries are keyed by structural fingerprints
    ({!Dfv_sec.Fingerprint}) of {e what was verified} — design
    structure, spec, stimulus seed, solver budget — never by file
    names, request ids or wall-clock state, so two clients asking the
    same question share one solve no matter when or from where they
    ask.

    Two layers:

    - an in-memory LRU bounded by [capacity] (an [add] beyond it
      evicts the least-recently-used entry);
    - an optional on-disk store — an append-only {!Dfv_par.Journal}
      ([{"schema":"dfv-journal"}] line framing, fsync per append, torn
      tails truncated, duplicates first-wins) — replayed into the LRU
      at {!create}, so a daemon killed at any instant restarts warm.

    {2 Integrity}

    Each disk record wraps the payload with its own cache key; on
    reload a record is {e rejected} (counted, never served) when the
    key does not re-derive the record's journal fingerprint (hash
    collision or external corruption) or when the payload fails the
    caller's [validate].  The disk store is append-only and unbounded:
    eviction trims memory, not history — a store can hold more verdicts
    than the LRU will warm (oldest fall out first). *)

type t

val store_campaign : string
(** The campaign key every dfv-serve store journal is bound to.  One
    constant on purpose: the cache is content-addressed, so the records
    carry all the identity there is, and a store outliving any server
    configuration is the point. *)

val create :
  ?capacity:int ->
  ?store:string ->
  ?validate:(Dfv_obs.Json.t -> bool) ->
  unit ->
  (t, string) result
(** [capacity] defaults to 256 entries and must be >= 1.  [store]
    opens (or creates) the on-disk journal at that path and replays it
    through [validate] (default: accept).  Errors when the store file
    exists but is not a valid dfv-serve store journal. *)

val find : t -> string -> Dfv_obs.Json.t option
(** Cache probe: a hit touches the entry most-recently-used and counts
    in [serve.cache.hit]; a miss counts in [serve.cache.miss]. *)

val mem : t -> string -> bool
(** Presence test without touching LRU order or hit/miss counters. *)

val add : t -> key:string -> Dfv_obs.Json.t -> unit
(** Insert (no-op if the key is already present).  With a [store] the
    record is journaled — written and fsync'd — {e before} the
    in-memory insert, so no served-then-lost window exists across a
    crash.  May evict the least-recently-used entry. *)

val lru_keys : t -> string list
(** Keys least-recently-used first — the order eviction takes them. *)

val size : t -> int
val capacity : t -> int

val hits : t -> int
val misses : t -> int
val evicted : t -> int

val rejected : t -> int
(** Poisoned/collided disk records dropped at {!create}. *)

val replayed : t -> int
(** Disk records read at {!create} (before validation). *)

val close : t -> unit
