(** The [dfv serve] daemon: verification as a shared, cached service.

    One process listens on a Unix-domain socket, speaks the
    {!Protocol} frames, and answers SEC / cosimulation / fault-campaign
    requests from a content-addressed {!Cache} — solving only what no
    one has asked before.

    {2 Request lifecycle}

    The select loop (250 ms tick, polling
    {!Dfv_par.Pool.stop_requested}) drains every readable client and
    collects one {e batch} per tick.  Control operations (ping, stats,
    shutdown) are answered inline.  Verify operations are keyed by
    structural fingerprint, probed against the cache (hits answered
    immediately), and the misses — {e coalesced} so concurrent
    duplicates cost one solve — are dispatched as one
    {!Dfv_par.Dpool.map_auto} batch onto the configured executor.
    Campaigns inside a worker run with their own per-mutant pool
    disabled; the server's executor is the only layer of parallelism.

    Successful verdicts enter the cache (and its optional disk store,
    journaled before the response is written); errors are returned but
    never cached — an error is a fact about this run, not the design.

    {2 Telemetry}

    Counters [serve.requests], [serve.solves], [serve.coalesced],
    [serve.errors]; cache counters from {!Cache}; gauge
    [serve.queue.depth]; one trace span per request (category
    ["serve"]) plus a [serve.solve_batch] span per dispatched batch.
    On exit the daemon writes the optional summary artifact
    [{"schema":"dfv-serve","version":1,"kind":"summary",...}] with
    per-endpoint hit rates and the (bounded) request log — the
    document [dfv validate] and [dfv report] understand. *)

type config = {
  socket : string;  (** Unix-domain socket path *)
  capacity : int;  (** in-memory LRU capacity *)
  store : string option;  (** on-disk journal store path *)
  jobs : int;  (** solver batch parallelism *)
  exec : Dfv_par.Pool.exec_mode;
  summary : string option;  (** summary artifact path, written on exit *)
  log_limit : int;  (** request-log entries kept for the summary *)
}

val default_config : socket:string -> config
(** capacity 256, no store, [jobs = Pool.cores ()], [`Auto] executor,
    no summary, log limit 4096. *)

val run :
  resolve:(design:string -> bug:string -> (Dfv_core.Pair.t, string) result) ->
  config ->
  int
(** Run the daemon until a [shutdown] request (returns 0) or
    {!Dfv_par.Pool.request_stop} (returns 4 — the interrupted,
    resumable exit code; a disk store left behind replays on restart).
    [resolve] maps a (design, bug) request to a {!Dfv_core.Pair} — the
    CLI passes its design registry, keeping name parsing out of the
    library.  Raises [Failure] when the socket cannot be bound or the
    store fails validation. *)
