module Json = Dfv_obs.Json

type t = {
  fd : Unix.file_descr;
  mutable pending_input : string;
  mutable next_id : int;
}

let connect ?(retries = 0) ?(delay = 0.1) path =
  let attempt () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> Ok { fd; pending_input = ""; next_id = 1 }
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Unix.error_message e)
  in
  let rec go n =
    match attempt () with
    | Ok _ as ok -> ok
    | Error m ->
      if n <= 0 then
        Error (Printf.sprintf "cannot reach dfv serve at %s: %s" path m)
      else begin
        (* The daemon may still be binding; a short linear backoff is
           all a CI smoke needs. *)
        ignore (Unix.select [] [] [] delay);
        go (n - 1)
      end
  in
  go retries

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let write_all t s =
  let b = Bytes.of_string s in
  let n = ref 0 in
  while !n < Bytes.length b do
    n := !n + Unix.write t.fd b !n (Bytes.length b - !n)
  done

let read_line t =
  let rec go () =
    match String.index_opt t.pending_input '\n' with
    | Some i ->
      let line = String.sub t.pending_input 0 i in
      t.pending_input <-
        String.sub t.pending_input (i + 1)
          (String.length t.pending_input - i - 1);
      Ok line
    | None ->
      let buf = Bytes.create 65536 in
      let n =
        try Unix.read t.fd buf 0 (Bytes.length buf)
        with Unix.Unix_error (e, _, _) ->
          failwith ("dfv serve connection: " ^ Unix.error_message e)
      in
      if n = 0 then Error "dfv serve closed the connection"
      else begin
        t.pending_input <- t.pending_input ^ Bytes.sub_string buf 0 n;
        go ()
      end
  in
  try go () with Failure m -> Error m

let send t op =
  let id = t.next_id in
  t.next_id <- id + 1;
  write_all t (Protocol.frame (Protocol.request_to_json { Protocol.id; op }));
  id

let receive t ~id =
  (* Responses arrive in server completion order; skip frames for other
     pipelined ids is not needed on a single-request connection, but a
     pipelining caller matches by id. *)
  let rec go () =
    match read_line t with
    | Error _ as e -> e
    | Ok line -> (
      match
        Result.bind (Protocol.parse_frame line) Protocol.response_of_json
      with
      | Error _ as e -> e
      | Ok r -> if r.Protocol.rsp_id = id then Ok r else go ())
  in
  go ()

let call t op =
  let id = send t op in
  receive t ~id

let one_shot ?retries ?delay ~socket op =
  match connect ?retries ?delay socket with
  | Error _ as e -> e
  | Ok t ->
    let r = call t op in
    close t;
    r
