(** A blocking client for the [dfv serve] socket.

    One connection can pipeline many requests ({!send} assigns
    monotonically increasing ids, {!receive} matches frames by id) or
    run the simple {!call} / {!one_shot} request-response shape the
    CLI uses.  All errors — connection refused, daemon gone, malformed
    frame — surface as [Error string]; protocol-level verification
    errors arrive inside a well-formed {!Protocol.response}. *)

type t

val connect : ?retries:int -> ?delay:float -> string -> (t, string) result
(** Connect to the socket path; on failure retry up to [retries] times
    (default 0) sleeping [delay] seconds (default 0.1) between
    attempts — for racing a daemon that is still binding. *)

val close : t -> unit

val send : t -> Protocol.op -> int
(** Write one request frame; returns its correlation id. *)

val receive : t -> id:int -> (Protocol.response, string) result
(** Read frames until the response with [id] arrives. *)

val call : t -> Protocol.op -> (Protocol.response, string) result

val one_shot :
  ?retries:int ->
  ?delay:float ->
  socket:string ->
  Protocol.op ->
  (Protocol.response, string) result
(** Connect, {!call}, close. *)
