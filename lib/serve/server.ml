module Json = Dfv_obs.Json
module Metrics = Dfv_obs.Metrics
module Trace = Dfv_obs.Trace
module Dfv_error = Dfv_core.Dfv_error
module Pool = Dfv_par.Pool
module Dpool = Dfv_par.Dpool
module Portfolio = Dfv_par.Portfolio
module Fingerprint = Dfv_sec.Fingerprint
module Pair = Dfv_core.Pair
module Flow = Dfv_core.Flow
module Suite = Dfv_fault.Suite
module Campaign = Dfv_fault.Campaign

let m_requests = Metrics.counter "serve.requests"
let m_solves = Metrics.counter "serve.solves"
let m_coalesced = Metrics.counter "serve.coalesced"
let m_errors = Metrics.counter "serve.errors"
let g_queue = Metrics.gauge "serve.queue.depth"

type config = {
  socket : string;
  capacity : int;
  store : string option;
  jobs : int;
  exec : Pool.exec_mode;
  summary : string option;
  log_limit : int;
}

let default_config ~socket =
  {
    socket;
    capacity = 256;
    store = None;
    jobs = Pool.cores ();
    exec = `Auto;
    summary = None;
    log_limit = 4096;
  }

(* --- cache keys --------------------------------------------------------- *)

(* The key names *what was verified*: operation, structural fingerprints
   of the design/spec, and exactly the knobs that can change a verdict
   (budget, stimulus seed).  Never file names, request ids, or jobs —
   see DESIGN.md §16. *)
let sec_key pair budget =
  Fingerprint.combine
    [ "sec";
      Fingerprint.pair ~slm:pair.Pair.slm ~rtl:pair.Pair.rtl
        ~spec:pair.Pair.spec;
      Protocol.budget_key budget ]

let sim_key pair ~vectors ~seed =
  Fingerprint.combine
    [ "sim";
      Fingerprint.pair ~slm:pair.Pair.slm ~rtl:pair.Pair.rtl
        ~spec:pair.Pair.spec;
      Fingerprint.stimulus ~seed ~vectors ]

let faultsim_key ~designs ~seed ~max_rtl_faults ~max_slm_faults ~sim_vectors
    ~budget =
  Fingerprint.combine
    [ "faultsim";
      Suite.campaign_key ~budget ~seed ~sim_vectors ~engine:None
        ~max_rtl_faults ~max_slm_faults ~designs ]

(* --- solvable jobs ------------------------------------------------------ *)

type solvable =
  | J_sec of Pair.t * Dfv_sat.Solver.budget option
  | J_sim of Pair.t * int * int  (** vectors, seed *)
  | J_faultsim of {
      designs : string list;
      seed : int;
      max_rtl_faults : int;
      max_slm_faults : int;
      sim_vectors : int;
      budget : Dfv_sat.Solver.budget option;
    }

(* Runs inside a pool worker.  Campaigns run with the per-mutant pool
   disabled: the server's executor is the parallelism, and forking
   again inside a forked worker (or inside a domain) is exactly the
   layering the executors forbid. *)
let solve = function
  | J_sec (pair, budget) ->
    let v = Flow.sec ?budget pair in
    Ok (Protocol.R_sec (Portfolio.slm_wire_of_verdict v))
  | J_sim (pair, vectors, seed) -> (
    match Flow.simulate ~seed ~vectors pair with
    | Ok (Flow.Sim_clean { vectors }) ->
      Ok (Protocol.R_sim (Protocol.Sim_clean vectors))
    | Ok (Flow.Sim_mismatch { vector_index; _ }) ->
      Ok (Protocol.R_sim (Protocol.Sim_mismatch vector_index))
    | Error e -> Error e)
  | J_faultsim { designs; seed; max_rtl_faults; max_slm_faults; sim_vectors; budget }
    ->
    let reports =
      Suite.run ?budget ~seed ~sim_vectors ~pool:false ~max_rtl_faults
        ~max_slm_faults ~designs ()
    in
    let f_rate, f_false_eq, f_pass =
      Suite.gate ~min_rate:Suite.default_min_rate reports
    in
    let f_report =
      match
        Json.parse
          (Campaign.json_of_reports ~min_rate:Suite.default_min_rate reports)
      with
      | Ok v -> v
      | Error m -> Json.Obj [ ("unrenderable", Json.String m) ]
    in
    Ok (Protocol.R_faultsim { f_pass; f_rate; f_false_eq; f_report })

let solved_to_json = function
  | Ok p -> Json.Obj [ ("ok", Protocol.payload_to_json p) ]
  | Error e -> Json.Obj [ ("err", Dfv_error.to_json e) ]

let solved_of_json v =
  match (Json.field "ok" v, Json.field "err" v) with
  | Some p, _ -> Result.map (fun p -> Ok p) (Protocol.payload_of_json p)
  | _, Some e -> (
    match Dfv_error.of_json e with
    | Ok e -> Ok (Error e)
    | Error m -> Error m)
  | None, None -> Error "bad solved frame"

(* --- clients ------------------------------------------------------------ *)

type client = {
  fd : Unix.file_descr;
  mutable pending_input : string;  (** partial last line *)
  mutable closed : bool;
}

let write_all c s =
  if not c.closed then
    try
      let b = Bytes.of_string s in
      let n = ref 0 in
      while !n < Bytes.length b do
        n := !n + Unix.write c.fd b !n (Bytes.length b - !n)
      done
    with Unix.Unix_error _ | Sys_error _ -> c.closed <- true

let close_client c =
  if not c.closed then begin
    c.closed <- true;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

(* --- per-endpoint accounting -------------------------------------------- *)

type endpoint = {
  mutable ep_requests : int;
  mutable ep_hits : int;
  mutable ep_misses : int;
  mutable ep_solves : int;
  mutable ep_errors : int;
  mutable ep_seconds : float;
}

type state = {
  cfg : config;
  cache : Cache.t;
  endpoints : (string, endpoint) Hashtbl.t;
  mutable log : Json.t list;  (** newest first, bounded by [log_limit] *)
  mutable logged : int;
  mutable requests : int;
  started : float;
  resolve_pair : design:string -> bug:string -> (Pair.t, string) result;
}

let endpoint st name =
  match Hashtbl.find_opt st.endpoints name with
  | Some e -> e
  | None ->
    let e =
      {
        ep_requests = 0;
        ep_hits = 0;
        ep_misses = 0;
        ep_solves = 0;
        ep_errors = 0;
        ep_seconds = 0.;
      }
    in
    Hashtbl.replace st.endpoints name e;
    e

let log_request st ~id ~op ~key ~cached ~seconds ~status =
  st.logged <- st.logged + 1;
  st.log <-
    Json.Obj
      [ ("id", Json.Int id);
        ("op", Json.String op);
        ("key", Json.String key);
        ("cached", Json.Bool cached);
        ("seconds", Json.Float seconds);
        ("status", Json.String status) ]
    :: (if List.length st.log >= st.cfg.log_limit then
          List.filteri (fun i _ -> i < st.cfg.log_limit - 1) st.log
        else st.log)

let summary_json st =
  let endpoints =
    Hashtbl.fold
      (fun name e acc ->
        let hit_rate =
          if e.ep_requests = 0 then 0.
          else float_of_int e.ep_hits /. float_of_int e.ep_requests
        in
        Json.Obj
          [ ("op", Json.String name);
            ("requests", Json.Int e.ep_requests);
            ("hits", Json.Int e.ep_hits);
            ("misses", Json.Int e.ep_misses);
            ("solves", Json.Int e.ep_solves);
            ("errors", Json.Int e.ep_errors);
            ("hit_rate", Json.Float hit_rate);
            ( "mean_seconds",
              Json.Float
                (if e.ep_requests = 0 then 0.
                 else e.ep_seconds /. float_of_int e.ep_requests) ) ]
        :: acc)
      st.endpoints []
    |> List.sort compare
  in
  Json.envelope ~schema:Protocol.schema ~version:Protocol.version
    [ ("kind", Json.String "summary");
      ("requests", Json.Int st.requests);
      ("endpoints", Json.List endpoints);
      ( "cache",
        Json.Obj
          [ ("size", Json.Int (Cache.size st.cache));
            ("capacity", Json.Int (Cache.capacity st.cache));
            ("hits", Json.Int (Cache.hits st.cache));
            ("misses", Json.Int (Cache.misses st.cache));
            ("evicted", Json.Int (Cache.evicted st.cache));
            ("rejected", Json.Int (Cache.rejected st.cache));
            ("replayed", Json.Int (Cache.replayed st.cache)) ] );
      ("uptime_seconds", Json.Float (Unix.gettimeofday () -. st.started));
      ("log_truncated", Json.Bool (st.logged > List.length st.log));
      ("log", Json.List (List.rev st.log)) ]

(* --- request handling --------------------------------------------------- *)

type pending = {
  p_client : client;
  p_id : int;
  p_name : string;
  p_key : string;
  p_job : solvable;
  p_span : Trace.span;
  p_start : float;
}

let respond st c ~id ~name ~key ~cached ~start ~span outcome =
  let seconds = Unix.gettimeofday () -. start in
  let e = endpoint st name in
  e.ep_seconds <- e.ep_seconds +. seconds;
  let status =
    match outcome with
    | Ok p -> Protocol.payload_status p
    | Error err ->
      e.ep_errors <- e.ep_errors + 1;
      Metrics.incr m_errors;
      Dfv_error.to_string err
  in
  log_request st ~id ~op:name ~key ~cached ~seconds ~status;
  Trace.end_span span;
  write_all c
    (Protocol.frame
       (Protocol.response_to_json
          { Protocol.rsp_id = id; key; cached; seconds; outcome }))

(* Answer one parsed request frame.  Control ops are answered inline;
   verify ops come back as [Some pending] for the batch. *)
let admit st c (req : Protocol.request) running =
  st.requests <- st.requests + 1;
  Metrics.incr m_requests;
  let name = Protocol.op_name req.op in
  let e = endpoint st name in
  e.ep_requests <- e.ep_requests + 1;
  let span =
    Trace.begin_span ~cat:"serve"
      ~args:[ ("id", Json.Int req.id) ]
      ("serve." ^ name)
  in
  let start = Unix.gettimeofday () in
  let inline payload =
    respond st c ~id:req.id ~name ~key:"" ~cached:false ~start ~span
      (Ok payload);
    None
  in
  let reject m =
    respond st c ~id:req.id ~name ~key:"" ~cached:false ~start ~span
      (Error (Dfv_error.Internal m));
    None
  in
  let verify ~key job =
    Some
      {
        p_client = c;
        p_id = req.id;
        p_name = name;
        p_key = key;
        p_job = job;
        p_span = span;
        p_start = start;
      }
  in
  match req.op with
  | Protocol.Ping -> inline Protocol.R_pong
  | Protocol.Stats -> inline (Protocol.R_stats (summary_json st))
  | Protocol.Shutdown ->
    running := false;
    inline Protocol.R_shutdown
  | Protocol.Sec { design; bug; budget } -> (
    match st.resolve_pair ~design ~bug with
    | Error m -> reject m
    | Ok pair -> verify ~key:(sec_key pair budget) (J_sec (pair, budget)))
  | Protocol.Sim { design; bug; vectors; seed } -> (
    match st.resolve_pair ~design ~bug with
    | Error m -> reject m
    | Ok pair ->
      verify ~key:(sim_key pair ~vectors ~seed) (J_sim (pair, vectors, seed)))
  | Protocol.Faultsim
      { designs; seed; max_rtl_faults; max_slm_faults; sim_vectors; budget } ->
    let key =
      faultsim_key ~designs ~seed ~max_rtl_faults ~max_slm_faults ~sim_vectors
        ~budget
    in
    verify ~key
      (J_faultsim
         { designs; seed; max_rtl_faults; max_slm_faults; sim_vectors; budget })

(* Serve a batch of verify requests: probe the cache, coalesce misses by
   key, dispatch one solve per unique key, fan results back out. *)
let serve_batch st batch =
  let hits, misses =
    List.partition_map
      (fun p ->
        match Cache.find st.cache p.p_key with
        | Some payload -> Left (p, payload)
        | None -> Right p)
      batch
  in
  List.iter
    (fun (p, payload) ->
      let outcome =
        match Protocol.payload_of_json payload with
        | Ok pl -> Ok pl
        | Error m -> Error (Dfv_error.Internal ("poisoned cache entry: " ^ m))
      in
      let e = endpoint st p.p_name in
      e.ep_hits <- e.ep_hits + 1;
      respond st p.p_client ~id:p.p_id ~name:p.p_name ~key:p.p_key
        ~cached:true ~start:p.p_start ~span:p.p_span outcome)
    hits;
  if misses <> [] then begin
    (* Coalesce: one solve per unique key, every duplicate waiter
       answered from that one result. *)
    let order = ref [] in
    let groups : (string, pending list ref) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun p ->
        let e = endpoint st p.p_name in
        e.ep_misses <- e.ep_misses + 1;
        match Hashtbl.find_opt groups p.p_key with
        | Some l ->
          Metrics.incr m_coalesced;
          l := p :: !l
        | None ->
          Hashtbl.replace groups p.p_key (ref [ p ]);
          order := p.p_key :: !order)
      misses;
    let keys = List.rev !order in
    let rep key = List.hd !(Hashtbl.find groups key) in
    Metrics.add m_solves (List.length keys);
    List.iter
      (fun key ->
        let e = endpoint st (rep key).p_name in
        e.ep_solves <- e.ep_solves + 1)
      keys;
    let outcomes =
      Trace.with_span ~cat:"serve"
        ~args:[ ("solves", Json.Int (List.length keys)) ]
        "serve.solve_batch"
        (fun () ->
          Dpool.map_auto ~jobs:st.cfg.jobs ~exec:st.cfg.exec
            ~label:(fun i -> "serve:" ^ (rep (List.nth keys i)).p_name)
            ~encode:solved_to_json
            ~decode:solved_of_json
            (fun key -> solve (rep key).p_job)
            keys)
    in
    List.iter2
      (fun key outcome ->
        let outcome =
          match outcome with
          | Ok (Ok p) ->
            (* Only successful verdicts enter the cache: an error is a
               fact about this run, not about the design. *)
            Cache.add st.cache ~key (Protocol.payload_to_json p);
            Ok p
          | Ok (Error e) -> Error e
          | Error e -> Error e
        in
        List.iter
          (fun p ->
            respond st p.p_client ~id:p.p_id ~name:p.p_name ~key:p.p_key
              ~cached:false ~start:p.p_start ~span:p.p_span outcome)
          (List.rev !(Hashtbl.find groups key)))
      keys outcomes
  end

(* --- the daemon --------------------------------------------------------- *)

let run ~resolve cfg =
  let cache =
    match
      Cache.create ~capacity:cfg.capacity ?store:cfg.store
        ~validate:Protocol.payload_valid ()
    with
    | Ok c -> c
    | Error m -> failwith m
  in
  let st =
    {
      cfg;
      cache;
      endpoints = Hashtbl.create 8;
      log = [];
      logged = 0;
      requests = 0;
      started = Unix.gettimeofday ();
      resolve_pair = resolve;
    }
  in
  (* A stale socket file from a dead daemon would make bind fail; a
     *live* daemon holds the path, and replacing it out from under one
     is on the operator. *)
  (try Unix.unlink cfg.socket with Unix.Unix_error _ -> ());
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX cfg.socket);
  Unix.listen listener 64;
  Printf.printf "dfv serve: listening on %s (cache %d%s)\n%!" cfg.socket
    cfg.capacity
    (match cfg.store with
    | Some s ->
      Printf.sprintf ", store %s, %d replayed, %d rejected" s
        (Cache.replayed cache) (Cache.rejected cache)
    | None -> "");
  let clients = ref [] in
  let running = ref true in
  (* Ignore EPIPE: a client that disconnects mid-response must not kill
     the daemon; write_all maps the failure to a closed client. *)
  let prev_sigpipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ | Sys_error _ -> None
  in
  while !running && not (Pool.stop_requested ()) do
    let fds = listener :: List.map (fun c -> c.fd) !clients in
    let readable, _, _ =
      try Unix.select fds [] [] 0.25
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    if List.mem listener readable then begin
      match Unix.accept listener with
      | fd, _ ->
        clients :=
          { fd; pending_input = ""; closed = false } :: !clients
      | exception Unix.Unix_error _ -> ()
    end;
    let batch = ref [] in
    List.iter
      (fun c ->
        if (not c.closed) && List.mem c.fd readable then begin
          let buf = Bytes.create 65536 in
          let n =
            try Unix.read c.fd buf 0 (Bytes.length buf)
            with Unix.Unix_error _ -> 0
          in
          if n = 0 then close_client c
          else begin
            let data = c.pending_input ^ Bytes.sub_string buf 0 n in
            let parts = String.split_on_char '\n' data in
            let rec go = function
              | [] -> ()
              | [ last ] -> c.pending_input <- last
              | line :: rest ->
                (if String.trim line <> "" then
                   match
                     Result.bind (Protocol.parse_frame line)
                       Protocol.request_of_json
                   with
                   | Ok req -> (
                     match admit st c req running with
                     | Some p -> batch := p :: !batch
                     | None -> ())
                   | Error m ->
                     write_all c
                       (Protocol.frame
                          (Protocol.response_to_json
                             {
                               Protocol.rsp_id = -1;
                               key = "";
                               cached = false;
                               seconds = 0.;
                               outcome = Error (Dfv_error.Internal m);
                             })));
                go rest
            in
            go parts
          end
        end)
      !clients;
    Metrics.set_gauge g_queue (List.length !batch);
    serve_batch st (List.rev !batch);
    Metrics.set_gauge g_queue 0;
    clients := List.filter (fun c -> not c.closed) !clients
  done;
  let interrupted = Pool.stop_requested () in
  List.iter close_client !clients;
  (try Unix.close listener with Unix.Unix_error _ -> ());
  (try Unix.unlink cfg.socket with Unix.Unix_error _ -> ());
  (match cfg.summary with
  | Some path -> Json.write_file path (summary_json st)
  | None -> ());
  Cache.close cache;
  (match prev_sigpipe with
  | Some b -> ( try ignore (Sys.signal Sys.sigpipe b) with _ -> ())
  | None -> ());
  if interrupted then 4 else 0
