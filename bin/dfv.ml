(* The dfv command-line tool: run the design-for-verification flows on
   the bundled design pairs.

     dfv list                     enumerate bundled designs
     dfv audit  <design>          Section 3/4 checks on the pair
     dfv sec    <design>          sequential equivalence check
     dfv sim    <design> [-n N]   simulation-based comparison
     dfv verify <design>          audit + SEC (or simulation fallback)

   Bugs can be planted with --bug (see `dfv list`) to watch the flows
   catch them. *)

open Cmdliner
module Checker = Dfv_sec.Checker
open Dfv_designs
open Dfv_core

(* --- bundled designs -------------------------------------------------- *)

let alu_bugs =
  List.map (fun b -> (Alu.bug_name b, Some b)) Alu.all_bugs @ [ ("none", None) ]

let make_pair design bug =
  match design with
  | "gcd" ->
    if bug <> "none" then failwith "gcd has no bug variants";
    let t = Gcd.make ~width:4 in
    Pair.create ~name:"gcd" ~slm:t.Gcd.slm ~rtl:t.Gcd.rtl ~spec:t.Gcd.spec
  | "alu" ->
    let bug =
      match List.assoc_opt bug alu_bugs with
      | Some b -> b
      | None -> failwith (Printf.sprintf "unknown alu bug %s" bug)
    in
    let t = Alu.make ?bug ~width:8 () in
    Pair.create ~name:"alu" ~slm:t.Alu.slm ~rtl:t.Alu.rtl ~spec:t.Alu.spec
  | "fir" ->
    let t = Fir.make ~taps:[ 3; -5; 7; 2 ] () in
    let slm =
      if bug = "cstyle" then t.Fir.slm_cstyle
      else if bug = "none" then t.Fir.slm_exact
      else failwith "fir bugs: cstyle"
    in
    Pair.create ~name:"fir" ~slm ~rtl:t.Fir.rtl ~spec:t.Fir.spec
  | "fir-hot" ->
    let t = Fir.make ~taps:[ 127; 127; 127; -128 ] () in
    let slm =
      if bug = "cstyle" then t.Fir.slm_cstyle
      else if bug = "none" then t.Fir.slm_exact
      else failwith "fir-hot bugs: cstyle"
    in
    Pair.create ~name:"fir-hot" ~slm ~rtl:t.Fir.rtl ~spec:t.Fir.spec
  | "conv" ->
    let clamped = bug <> "wrap" in
    if bug <> "none" && bug <> "wrap" then failwith "conv bugs: wrap";
    let good = Conv_image.make ~kernel:Conv_image.sharpen ~shift:2 () in
    let rtl =
      if clamped then good.Conv_image.rtl_window
      else
        (Conv_image.make ~clamped:false ~kernel:Conv_image.sharpen ~shift:2 ())
          .Conv_image.rtl_window
    in
    Pair.create ~name:"conv" ~slm:good.Conv_image.slm_window ~rtl
      ~spec:good.Conv_image.window_spec
  | "uart" ->
    let t = Uart.make ~baud_div:4 () in
    let rtl =
      if bug = "baud" then (Uart.make ~baud_div:5 ()).Uart.rtl
      else if bug = "none" then t.Uart.rtl
      else failwith "uart bugs: baud"
    in
    Pair.create ~name:"uart" ~slm:t.Uart.slm ~rtl ~spec:t.Uart.spec
  | "chain" ->
    let buggy =
      match bug with
      | "none" -> None
      | "brightness" -> Some Image_chain.Brightness
      | "convolution" -> Some Image_chain.Convolution
      | "threshold" -> Some Image_chain.Threshold
      | _ -> failwith "chain bugs: brightness | convolution | threshold"
    in
    let t = Image_chain.make ?buggy () in
    Pair.create ~name:"chain" ~slm:t.Image_chain.slm ~rtl:t.Image_chain.rtl_top
      ~spec:t.Image_chain.chain_spec
  | d -> failwith (Printf.sprintf "unknown design %s (try `dfv list`)" d)

let designs_doc =
  [ ("gcd", "4-bit Euclid: HWIR SLM vs sequential RTL datapath");
    ("alu", "8-bit ALU; bugs: unsigned-slt, truncated-shift-amount, missing-carry, swapped-or-xor");
    ("fir", "4-tap saturating FIR (mild taps); bugs: cstyle");
    ("fir-hot", "4-tap saturating FIR (overflowing taps); bugs: cstyle");
    ("conv", "3x3 convolution window datapath; bugs: wrap");
    ("uart", "UART transmitter vs frame function; bugs: baud (divisor mismatch)");
    ("chain", "brightness|conv|threshold pipeline; bugs: brightness, convolution, threshold") ]

(* --- commands ----------------------------------------------------------- *)

let list_cmd =
  let doc = "List the bundled design pairs and their plantable bugs." in
  let run () =
    List.iter (fun (n, d) -> Printf.printf "%-8s %s\n" n d) designs_doc;
    0
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let design_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"DESIGN")

let bug_arg =
  Arg.(value & opt string "none" & info [ "bug" ] ~docv:"BUG" ~doc:"Plant a bug variant.")

let wrap run = fun design bug ->
  match run (make_pair design bug) with
  | () -> 0
  | exception Failure m ->
    Printf.eprintf "error: %s\n" m;
    1

let audit_cmd =
  let doc = "Run the design-for-verification audit on a pair." in
  let run pair = Format.printf "%a" Pair.pp_audit (Pair.audit pair) in
  Cmd.v (Cmd.info "audit" ~doc) Term.(const (wrap run) $ design_arg $ bug_arg)

let budget_term =
  let conflicts =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget" ] ~docv:"CONFLICTS"
          ~doc:
            "Give up on a SAT query after $(docv) conflicts (the verdict \
             becomes UNKNOWN instead of hanging).")
  in
  let seconds =
    Arg.(
      value
      & opt (some float) None
      & info [ "budget-seconds" ] ~docv:"S"
          ~doc:"Give up on a SAT query after $(docv) seconds of wall clock.")
  in
  let combine c s =
    match (c, s) with
    | None, None -> Ok None
    | _ ->
      if (match c with Some n -> n < 1 | None -> false) then
        Error (`Msg "--budget must be at least 1 conflict")
      else if (match s with Some x -> x <= 0.0 | None -> false) then
        Error (`Msg "--budget-seconds must be positive")
      else
        Ok
          (Some
             { Dfv_sat.Solver.max_conflicts = c; Dfv_sat.Solver.max_seconds = s })
  in
  Term.(term_result (const combine $ conflicts $ seconds))

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print session statistics: encoding reuse, clause counts, \
           per-query solve times.")

let reason_string = function
  | Dfv_sat.Solver.Conflict_limit -> "conflict budget exhausted"
  | Dfv_sat.Solver.Time_limit -> "time budget exhausted"

let print_stats (s : Checker.stats) =
  let reuse_pct =
    let total = s.Checker.nodes_encoded + s.Checker.nodes_reused in
    if total = 0 then 0.0
    else 100.0 *. float_of_int s.Checker.nodes_reused /. float_of_int total
  in
  Printf.printf "stats:\n";
  Printf.printf "  aig ands         %d\n" s.Checker.aig_ands;
  Printf.printf "  nodes encoded    %d\n" s.Checker.nodes_encoded;
  Printf.printf "  nodes reused     %d (%.1f%%)\n" s.Checker.nodes_reused
    reuse_pct;
  Printf.printf "  clauses          %d (%d learnts reduced away)\n"
    s.Checker.sat_clauses s.Checker.learnts_removed;
  Printf.printf "  conflicts        %d\n" s.Checker.sat_conflicts;
  Printf.printf "  decisions        %d\n" s.Checker.sat_decisions;
  Printf.printf "  propagations     %d\n" s.Checker.sat_propagations;
  Printf.printf "  unroll hits      %d\n" s.Checker.unroll_hits;
  Printf.printf "  queries          %d (%d unknown)\n" s.Checker.queries
    s.Checker.unknowns;
  Printf.printf "  solve times      %s\n"
    (String.concat " "
       (List.map (Printf.sprintf "%.3fs") s.Checker.frame_seconds));
  Printf.printf "  wall             %.3fs\n" s.Checker.wall_seconds

let sec_cmd =
  let doc = "Run sequential equivalence checking on a pair." in
  let run budget stats =
    wrap (fun pair ->
        let finish s = if stats then print_stats s in
        match Flow.sec ?budget pair with
        | Checker.Equivalent stats ->
          Printf.printf
            "EQUIVALENT  (%d AIG nodes, %d conflicts, %d decisions, %.3fs)\n"
            stats.Checker.aig_ands stats.Checker.sat_conflicts
            stats.Checker.sat_decisions stats.Checker.wall_seconds;
          finish stats
        | Checker.Not_equivalent (cex, stats) ->
          Printf.printf "NOT EQUIVALENT  (%.3fs)\ncounterexample:\n"
            stats.Checker.wall_seconds;
          List.iter
            (fun (n, v) ->
              match v with
              | Dfv_hwir.Interp.Vint bv ->
                Printf.printf "  %s = %s\n" n (Dfv_bitvec.Bitvec.to_string bv)
              | Dfv_hwir.Interp.Varr a ->
                Printf.printf "  %s = [%s]\n" n
                  (String.concat "; "
                     (Array.to_list (Array.map Dfv_bitvec.Bitvec.to_string a))))
            cex.Checker.params;
          finish stats
        | Checker.Unknown (reason, stats) ->
          Printf.printf "UNKNOWN  (%s after %.3fs)\n" (reason_string reason)
            stats.Checker.wall_seconds;
          finish stats)
  in
  Cmd.v (Cmd.info "sec" ~doc)
    Term.(const run $ budget_term $ stats_arg $ design_arg $ bug_arg)

let vectors_arg =
  Arg.(value & opt int 1000 & info [ "n"; "vectors" ] ~docv:"N" ~doc:"Number of random transactions.")

let sim_cmd =
  let doc = "Run simulation-based SLM/RTL comparison on a pair." in
  let run vectors = fun design bug ->
    let pair = make_pair design bug in
    match Flow.simulate ~vectors pair with
    | Flow.Sim_clean { vectors } ->
      Printf.printf "CLEAN after %d transactions (no proof)\n" vectors;
      0
    | Flow.Sim_mismatch { vector_index; _ } ->
      Printf.printf "MISMATCH at transaction %d\n" vector_index;
      0
    | exception Failure m ->
      Printf.eprintf "error: %s\n" m;
      1
  in
  Cmd.v (Cmd.info "sim" ~doc)
    Term.(const run $ vectors_arg $ design_arg $ bug_arg)

let verify_cmd =
  let doc = "Audit, then SEC (or simulation when SEC is blocked)." in
  let run budget =
    wrap (fun pair ->
        Format.printf "%a" Flow.pp_report (Flow.verify ?budget pair))
  in
  Cmd.v (Cmd.info "verify" ~doc)
    Term.(const run $ budget_term $ design_arg $ bug_arg)

let () =
  let doc = "design-for-verification flows between system-level models and RTL" in
  let info = Cmd.info "dfv" ~version:"1.0.0" ~doc in
  exit (Cmd.eval' (Cmd.group info [ list_cmd; audit_cmd; sec_cmd; sim_cmd; verify_cmd ]))
