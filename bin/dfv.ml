(* The dfv command-line tool: run the design-for-verification flows on
   the bundled design pairs.

     dfv list                     enumerate bundled designs
     dfv audit  <design>          Section 3/4 checks on the pair
     dfv sec    <design>          sequential equivalence check
     dfv sim    <design> [-n N]   simulation-based comparison
     dfv verify <design>          audit + SEC (or simulation fallback)
     dfv faultsim [--design D]    mutation campaign scoring the verifier
     dfv triage <design>          reproduce a failure as a triage bundle
     dfv validate <file>...       check artifacts parse + carry the envelope

   faultsim runs its mutants in forked workers (--jobs, default = core
   count; --timeout bounds each mutant's wall clock); sec --jobs N
   races solving strategies in a portfolio.

   Bugs can be planted with --bug (see `dfv list`) to watch the flows
   catch them.  The flow commands take --trace FILE (Chrome trace_event
   span timeline) and --coverage FILE (functional coverage report);
   verify and triage take --report FILE (mismatch triage bundle).  All
   files share the {"schema": ..., "version": ...} envelope.

   Exit codes: 0 equivalent/pass, 1 counterexample/mismatch, 2 unknown
   (budget or stimulus exhausted, audit-blocked), 3 usage/internal
   error. *)

open Cmdliner
module Checker = Dfv_sec.Checker
open Dfv_designs
open Dfv_core

let exit_ok = 0
let exit_cex = 1
let exit_unknown = 2
let exit_error = 3

let exits =
  [ Cmd.Exit.info exit_ok ~doc:"equivalence proved / simulation clean / gate passed.";
    Cmd.Exit.info exit_cex ~doc:"a counterexample or simulation mismatch was found (or the faultsim gate failed).";
    Cmd.Exit.info exit_unknown
      ~doc:"no verdict: SAT budget or stimulus exhausted, or the audit blocks SEC.";
    Cmd.Exit.info exit_error ~doc:"usage or internal error." ]

(* --- bundled designs -------------------------------------------------- *)

let alu_bugs =
  List.map (fun b -> (Alu.bug_name b, Some b)) Alu.all_bugs @ [ ("none", None) ]

let make_pair design bug =
  match design with
  | "gcd" ->
    if bug <> "none" then failwith "gcd has no bug variants";
    let t = Gcd.make ~width:4 in
    Pair.create ~name:"gcd" ~slm:t.Gcd.slm ~rtl:t.Gcd.rtl ~spec:t.Gcd.spec
  | "alu" ->
    let bug =
      match List.assoc_opt bug alu_bugs with
      | Some b -> b
      | None -> failwith (Printf.sprintf "unknown alu bug %s" bug)
    in
    let t = Alu.make ?bug ~width:8 () in
    Pair.create ~name:"alu" ~slm:t.Alu.slm ~rtl:t.Alu.rtl ~spec:t.Alu.spec
  | "fir" ->
    let t = Fir.make ~taps:[ 3; -5; 7; 2 ] () in
    let slm =
      if bug = "cstyle" then t.Fir.slm_cstyle
      else if bug = "none" then t.Fir.slm_exact
      else failwith "fir bugs: cstyle"
    in
    Pair.create ~name:"fir" ~slm ~rtl:t.Fir.rtl ~spec:t.Fir.spec
  | "fir-hot" ->
    let t = Fir.make ~taps:[ 127; 127; 127; -128 ] () in
    let slm =
      if bug = "cstyle" then t.Fir.slm_cstyle
      else if bug = "none" then t.Fir.slm_exact
      else failwith "fir-hot bugs: cstyle"
    in
    Pair.create ~name:"fir-hot" ~slm ~rtl:t.Fir.rtl ~spec:t.Fir.spec
  | "conv" ->
    let clamped = bug <> "wrap" in
    if bug <> "none" && bug <> "wrap" then failwith "conv bugs: wrap";
    let good = Conv_image.make ~kernel:Conv_image.sharpen ~shift:2 () in
    let rtl =
      if clamped then good.Conv_image.rtl_window
      else
        (Conv_image.make ~clamped:false ~kernel:Conv_image.sharpen ~shift:2 ())
          .Conv_image.rtl_window
    in
    Pair.create ~name:"conv" ~slm:good.Conv_image.slm_window ~rtl
      ~spec:good.Conv_image.window_spec
  | "uart" ->
    let t = Uart.make ~baud_div:4 () in
    let rtl =
      if bug = "baud" then (Uart.make ~baud_div:5 ()).Uart.rtl
      else if bug = "none" then t.Uart.rtl
      else failwith "uart bugs: baud"
    in
    Pair.create ~name:"uart" ~slm:t.Uart.slm ~rtl ~spec:t.Uart.spec
  | "chain" ->
    let buggy =
      match bug with
      | "none" -> None
      | "brightness" -> Some Image_chain.Brightness
      | "convolution" -> Some Image_chain.Convolution
      | "threshold" -> Some Image_chain.Threshold
      | _ -> failwith "chain bugs: brightness | convolution | threshold"
    in
    let t = Image_chain.make ?buggy () in
    Pair.create ~name:"chain" ~slm:t.Image_chain.slm ~rtl:t.Image_chain.rtl_top
      ~spec:t.Image_chain.chain_spec
  | d -> failwith (Printf.sprintf "unknown design %s (try `dfv list`)" d)

let designs_doc =
  [ ("gcd", "4-bit Euclid: HWIR SLM vs sequential RTL datapath");
    ("alu", "8-bit ALU; bugs: unsigned-slt, truncated-shift-amount, missing-carry, swapped-or-xor");
    ("fir", "4-tap saturating FIR (mild taps); bugs: cstyle");
    ("fir-hot", "4-tap saturating FIR (overflowing taps); bugs: cstyle");
    ("conv", "3x3 convolution window datapath; bugs: wrap");
    ("uart", "UART transmitter vs frame function; bugs: baud (divisor mismatch)");
    ("chain", "brightness|conv|threshold pipeline; bugs: brightness, convolution, threshold") ]

(* --- commands ----------------------------------------------------------- *)

let list_cmd =
  let doc = "List the bundled design pairs and their plantable bugs." in
  let run () =
    List.iter (fun (n, d) -> Printf.printf "%-8s %s\n" n d) designs_doc;
    exit_ok
  in
  Cmd.v (Cmd.info "list" ~doc ~exits) Term.(const run $ const ())

let design_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"DESIGN")

let bug_arg =
  Arg.(value & opt string "none" & info [ "bug" ] ~docv:"BUG" ~doc:"Plant a bug variant.")

(* Commands return their exit code; anything the engines throw is mapped
   through the taxonomy to the documented code instead of a stack
   trace. *)
let wrap run = fun design bug ->
  match Dfv_error.guard (fun () -> run (make_pair design bug)) with
  | Ok code -> code
  | Error e ->
    Printf.eprintf "error: %s\n" (Dfv_error.to_string e);
    Dfv_error.exit_code e

(* --- observability flags ----------------------------------------------- *)

type obs = { trace_file : string option; coverage_file : string option }

let obs_term =
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Capture a span timeline of the run and write it to $(docv) as \
             Chrome trace_event JSON (load in chrome://tracing or Perfetto).")
  in
  let coverage =
    Arg.(
      value
      & opt (some string) None
      & info [ "coverage" ] ~docv:"FILE"
          ~doc:
            "Collect functional coverage (stimulus covergroups) and write \
             the report to $(docv).")
  in
  let combine trace_file coverage_file = { trace_file; coverage_file } in
  Term.(const combine $ trace $ coverage)

(* Enable the requested sinks around [f] and flush the files afterwards
   (also on exceptions: a crashed run still leaves its trace behind). *)
let with_obs obs f =
  if obs.trace_file <> None then Dfv_obs.Trace.enable ();
  if obs.coverage_file <> None then Dfv_obs.Coverage.enable ();
  let finish () =
    (match obs.trace_file with
    | Some file -> Dfv_obs.Trace.write_file file
    | None -> ());
    match obs.coverage_file with
    | Some file -> Dfv_obs.Json.write_file file (Dfv_obs.Coverage.snapshot ())
    | None -> ()
  in
  Fun.protect ~finally:finish f

let report_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "report" ] ~docv:"FILE"
        ~doc:
          "Write a mismatch triage bundle (failing transaction, stimulus, \
           VCD slice, metric/span snapshot) to $(docv).")

let no_failure_json design =
  Dfv_obs.Json.envelope ~schema:"dfv-triage" ~version:1
    [ ("design", Dfv_obs.Json.String design);
      ("kind", Dfv_obs.Json.String "no-failure") ]

let audit_cmd =
  let doc = "Run the design-for-verification audit on a pair." in
  let run pair =
    let audit = Pair.audit pair in
    Format.printf "%a" Pair.pp_audit audit;
    if audit.Pair.sec_ready then exit_ok else exit_unknown
  in
  Cmd.v (Cmd.info "audit" ~doc ~exits) Term.(const (wrap run) $ design_arg $ bug_arg)

let budget_term =
  let conflicts =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget" ] ~docv:"CONFLICTS"
          ~doc:
            "Give up on a SAT query after $(docv) conflicts (the verdict \
             becomes UNKNOWN instead of hanging).")
  in
  let seconds =
    Arg.(
      value
      & opt (some float) None
      & info [ "budget-seconds" ] ~docv:"S"
          ~doc:"Give up on a SAT query after $(docv) seconds of wall clock.")
  in
  let combine c s =
    match (c, s) with
    | None, None -> Ok None
    | _ ->
      if (match c with Some n -> n < 1 | None -> false) then
        Error (`Msg "--budget must be at least 1 conflict")
      else if (match s with Some x -> x <= 0.0 | None -> false) then
        Error (`Msg "--budget-seconds must be positive")
      else
        Ok
          (Some
             { Dfv_sat.Solver.max_conflicts = c; Dfv_sat.Solver.max_seconds = s })
  in
  Term.(term_result (const combine $ conflicts $ seconds))

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print session statistics: encoding reuse, clause counts, \
           per-query solve times.")

(* Worker-pool flags.  [default] lets each command pick its own resting
   point: faultsim parallelizes by default (= cores), sec stays
   sequential unless asked (portfolio mode is a behavioural switch, not
   just a speedup). *)
let jobs_term ~default =
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Number of worker processes (faultsim defaults to the \
             machine's core count; sec to 1).  Jobs run in forked \
             workers with crash isolation; verdicts are independent of \
             $(docv).")
  in
  let check = function
    | Some n when n < 1 -> Error (`Msg "--jobs must be at least 1")
    | Some n -> Ok n
    | None -> Ok (default ())
  in
  Term.(term_result (const check $ jobs))

let timeout_term =
  let t =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"S"
          ~doc:
            "Per-job wall-clock budget in seconds; an expired worker is \
             killed and its job recorded as undecided.")
  in
  let check = function
    | Some s when s <= 0.0 -> Error (`Msg "--timeout must be positive")
    | t -> Ok t
  in
  Term.(term_result (const check $ t))

let reason_string = function
  | Dfv_sat.Solver.Conflict_limit -> "conflict budget exhausted"
  | Dfv_sat.Solver.Time_limit -> "time budget exhausted"

let print_stats (s : Checker.stats) =
  let reuse_pct =
    let total = s.Checker.nodes_encoded + s.Checker.nodes_reused in
    if total = 0 then 0.0
    else 100.0 *. float_of_int s.Checker.nodes_reused /. float_of_int total
  in
  Printf.printf "stats:\n";
  Printf.printf "  aig ands         %d\n" s.Checker.aig_ands;
  Printf.printf "  nodes encoded    %d\n" s.Checker.nodes_encoded;
  Printf.printf "  nodes reused     %d (%.1f%%)\n" s.Checker.nodes_reused
    reuse_pct;
  Printf.printf "  clauses          %d (%d learnts reduced away)\n"
    s.Checker.sat_clauses s.Checker.learnts_removed;
  Printf.printf "  conflicts        %d\n" s.Checker.sat_conflicts;
  Printf.printf "  decisions        %d\n" s.Checker.sat_decisions;
  Printf.printf "  propagations     %d\n" s.Checker.sat_propagations;
  Printf.printf "  unroll hits      %d\n" s.Checker.unroll_hits;
  Printf.printf "  queries          %d (%d unknown)\n" s.Checker.queries
    s.Checker.unknowns;
  Printf.printf "  solve times      %s\n"
    (String.concat " "
       (List.map (Printf.sprintf "%.3fs") s.Checker.frame_seconds));
  Printf.printf "  wall             %.3fs\n" s.Checker.wall_seconds

let sec_cmd =
  let doc =
    "Run sequential equivalence checking on a pair.  With --jobs above 1 \
     the check runs as a strategy portfolio: solving variants race in \
     forked workers and the first conclusive verdict cancels the rest."
  in
  let run budget stats jobs obs design bug =
    with_obs obs @@ fun () ->
    (wrap (fun pair ->
        let finish s = if stats then print_stats s in
        let report = function
          | Checker.Equivalent stats ->
            Printf.printf
              "EQUIVALENT  (%d AIG nodes, %d conflicts, %d decisions, %.3fs)\n"
              stats.Checker.aig_ands stats.Checker.sat_conflicts
              stats.Checker.sat_decisions stats.Checker.wall_seconds;
            finish stats;
            exit_ok
          | Checker.Not_equivalent (cex, stats) ->
            Printf.printf "NOT EQUIVALENT  (%.3fs)\ncounterexample:\n"
              stats.Checker.wall_seconds;
            List.iter
              (fun (n, v) ->
                match v with
                | Dfv_hwir.Interp.Vint bv ->
                  Printf.printf "  %s = %s\n" n (Dfv_bitvec.Bitvec.to_string bv)
                | Dfv_hwir.Interp.Varr a ->
                  Printf.printf "  %s = [%s]\n" n
                    (String.concat "; "
                       (Array.to_list (Array.map Dfv_bitvec.Bitvec.to_string a))))
              cex.Checker.params;
            finish stats;
            exit_cex
          | Checker.Unknown (reason, stats) ->
            Printf.printf "UNKNOWN  (%s after %.3fs)\n" (reason_string reason)
              stats.Checker.wall_seconds;
            finish stats;
            exit_unknown
        in
        if jobs <= 1 then report (Flow.sec ?budget pair)
        else
          match
            Dfv_par.Portfolio.check_slm_rtl ~jobs ?budget ~slm:pair.Pair.slm
              ~rtl:pair.Pair.rtl ~spec:pair.Pair.spec ()
          with
          | Ok v -> report v
          | Error e ->
            Printf.eprintf "error: %s\n" (Dfv_error.to_string e);
            Dfv_error.exit_code e))
      design bug
  in
  Cmd.v (Cmd.info "sec" ~doc ~exits)
    Term.(
      const run $ budget_term $ stats_arg
      $ jobs_term ~default:(fun () -> 1)
      $ obs_term $ design_arg $ bug_arg)

let vectors_arg =
  Arg.(value & opt int 1000 & info [ "n"; "vectors" ] ~docv:"N" ~doc:"Number of random transactions.")

let engine_term =
  let engine_conv = Arg.enum [ ("interp", `Interp); ("compiled", `Compiled) ] in
  Arg.(
    value
    & opt (some engine_conv) None
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "System-level model execution engine: $(b,compiled) lowers the \
           model through the verified normal form onto the shared \
           slot-indexed kernel (and errors on models outside the normal \
           form); $(b,interp) forces the tree-walking reference.  Default: \
           compiled for conditioned models, with automatic fallback to the \
           interpreter.")

let sim_cmd =
  let doc = "Run simulation-based SLM/RTL comparison on a pair." in
  let run vectors engine obs design bug =
    with_obs obs @@ fun () ->
    (wrap (fun pair ->
         match Flow.simulate ?engine ~vectors pair with
         | Ok (Flow.Sim_clean { vectors }) ->
           Printf.printf "CLEAN after %d transactions (no proof)\n" vectors;
           exit_ok
         | Ok (Flow.Sim_mismatch { vector_index; _ }) ->
           Printf.printf "MISMATCH at transaction %d\n" vector_index;
           exit_cex
         | Error e ->
           Printf.eprintf "error: %s\n" (Dfv_error.to_string e);
           Dfv_error.exit_code e))
      design bug
  in
  Cmd.v (Cmd.info "sim" ~doc ~exits)
    Term.(const run $ vectors_arg $ engine_term $ obs_term $ design_arg $ bug_arg)

let verify_cmd =
  let doc = "Audit, then SEC (or simulation when SEC is blocked)." in
  let run budget engine obs report_file design bug =
    with_obs obs @@ fun () ->
    (wrap (fun pair ->
         let report = Flow.verify ?engine ?budget pair in
         Format.printf "%a" Flow.pp_report report;
         (match report_file with
         | Some file -> (
           match Flow.triage_of_report pair report with
           | Some t -> Dfv_obs.Triage.write_file file t
           | None ->
             Dfv_obs.Json.write_file file (no_failure_json pair.Pair.name))
         | None -> ());
         match report.Flow.outcome with
         | Flow.Proved _ | Flow.Simulated (Flow.Sim_clean _) -> exit_ok
         | Flow.Refuted _ | Flow.Simulated (Flow.Sim_mismatch _) -> exit_cex
         | Flow.Undecided _ -> exit_unknown
         | Flow.Errored e -> Dfv_error.exit_code e))
      design bug
  in
  Cmd.v (Cmd.info "verify" ~doc ~exits)
    Term.(
      const run $ budget_term $ engine_term $ obs_term $ report_arg
      $ design_arg $ bug_arg)

let faultsim_cmd =
  let doc =
    "Run the fault-injection campaign: mutate the designs, demand that \
     SEC/co-simulation detect every activatable fault, and report the \
     detection rate (exit 1 when the gate fails)."
  in
  let designs_arg =
    Arg.(
      value
      & opt_all string []
      & info [ "design" ] ~docv:"DESIGN"
          ~doc:
            "Subject(s) to mutate (repeatable): alu, fir, gcd, \
             chain.brightness, chain.convolution, chain.threshold, memsys. \
             Default: all.")
  in
  let seed_arg =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc:"Fault sampling seed.")
  in
  let max_faults_arg =
    Arg.(
      value
      & opt int 16
      & info [ "max-faults" ] ~docv:"N"
          ~doc:"Structural RTL faults per subject (class-stratified sample).")
  in
  let max_slm_faults_arg =
    Arg.(
      value
      & opt int 8
      & info [ "max-slm-faults" ] ~docv:"N"
          ~doc:"Semantic SLM mutations per subject.")
  in
  let sim_vectors_arg =
    Arg.(
      value
      & opt int 400
      & info [ "vectors" ] ~docv:"N"
          ~doc:"Cross-check simulation vectors per Equivalent mutant.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the machine-readable detection report to $(docv).")
  in
  let run budget designs seed max_faults max_slm_faults sim_vectors engine
      jobs timeout json obs =
    with_obs obs @@ fun () ->
    match
      Dfv_error.guard (fun () ->
          let designs =
            match designs with [] -> Dfv_fault.Suite.names | ds -> ds
          in
          let reports =
            Dfv_fault.Suite.run ?budget ~seed ~sim_vectors ?engine ~jobs
              ?timeout ~max_rtl_faults:max_faults ~max_slm_faults ~designs ()
          in
          List.iter (Format.printf "%a" Dfv_fault.Campaign.pp_report) reports;
          let rate, false_eq, pass =
            Dfv_fault.Suite.gate
              ~min_rate:Dfv_fault.Suite.default_min_rate reports
          in
          Printf.printf
            "detection rate %.1f%% (min %.0f%%), %d false equivalents: %s\n"
            (100.0 *. rate)
            (100.0 *. Dfv_fault.Suite.default_min_rate)
            false_eq
            (if pass then "PASS" else "FAIL");
          (match json with
          | Some file ->
            let oc = open_out file in
            output_string oc
              (Dfv_fault.Campaign.json_of_reports
                 ~min_rate:Dfv_fault.Suite.default_min_rate reports);
            output_char oc '\n';
            close_out oc
          | None -> ());
          if pass then exit_ok else exit_cex)
    with
    | Ok code -> code
    | Error e ->
      Printf.eprintf "error: %s\n" (Dfv_error.to_string e);
      Dfv_error.exit_code e
  in
  Cmd.v (Cmd.info "faultsim" ~doc ~exits)
    Term.(
      const run $ budget_term $ designs_arg $ seed_arg $ max_faults_arg
      $ max_slm_faults_arg $ sim_vectors_arg $ engine_term
      $ jobs_term ~default:Dfv_par.Pool.cores
      $ timeout_term $ json_arg $ obs_term)

let validate_cmd =
  let doc =
    "Validate machine-readable artifacts: each FILE must parse as JSON \
     and carry the shared {\"schema\", \"version\"} envelope.  Exits 0 \
     when every file passes, 3 otherwise.  CI runs this over uploaded \
     BENCH_*.json / fault-report / trace / coverage artifacts."
  in
  let files_arg =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE")
  in
  let run files =
    let validate file =
      let contents =
        let ic = open_in_bin file in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
      in
      match Dfv_obs.Json.parse contents with
      | Error m ->
        Printf.printf "%-40s FAIL  %s\n" file ("parse error: " ^ m);
        false
      | Ok v -> (
        match Dfv_obs.Json.envelope_of v with
        | Some (schema, version) ->
          Printf.printf "%-40s ok    %s v%d\n" file schema version;
          true
        | None ->
          Printf.printf "%-40s FAIL  missing {schema, version} envelope\n"
            file;
          false)
    in
    let ok =
      List.fold_left (fun acc f -> validate f && acc) true files
    in
    if ok then exit_ok else exit_error
  in
  Cmd.v (Cmd.info "validate" ~doc ~exits) Term.(const run $ files_arg)

let triage_cmd =
  let doc =
    "Reproduce a failure and bundle the evidence: the failing transaction \
     index, its stimulus, a VCD slice around the failure cycle, and \
     metric/span/coverage snapshots.  For the bundled SEC pairs this runs \
     the verify flow (plant a bug with --bug to force a failure); for \
     memsys it injects the first RTL fault the transactor/scoreboard \
     harness flags.  Exits 1 when a bundle was produced, 0 when the \
     design verified clean."
  in
  let seed_arg =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"N" ~doc:"Fault seed (memsys triage only).")
  in
  let run budget obs report_file seed design bug =
    with_obs obs @@ fun () ->
    match
      Dfv_error.guard (fun () ->
          let bundle =
            if design = "memsys" then begin
              if bug <> "none" then
                failwith
                  "memsys triage injects its own fault; --bug is not \
                   supported";
              Dfv_fault.Suite.memsys_triage ~seed ()
            end
            else begin
              let pair = make_pair design bug in
              let report = Flow.verify ?budget pair in
              Flow.triage_of_report pair report
            end
          in
          match bundle with
          | Some t ->
            Format.printf "%a@." Dfv_obs.Triage.pp t;
            (match report_file with
            | Some file -> Dfv_obs.Triage.write_file file t
            | None -> ());
            exit_cex
          | None ->
            Printf.printf "no failure to triage\n";
            (match report_file with
            | Some file ->
              Dfv_obs.Json.write_file file (no_failure_json design)
            | None -> ());
            exit_ok)
    with
    | Ok code -> code
    | Error e ->
      Printf.eprintf "error: %s\n" (Dfv_error.to_string e);
      Dfv_error.exit_code e
  in
  Cmd.v (Cmd.info "triage" ~doc ~exits)
    Term.(
      const run $ budget_term $ obs_term $ report_arg $ seed_arg $ design_arg
      $ bug_arg)

let () =
  let doc = "design-for-verification flows between system-level models and RTL" in
  let info = Cmd.info "dfv" ~version:"1.0.0" ~doc ~exits in
  let code =
    Cmd.eval'
      (Cmd.group info
         [ list_cmd; audit_cmd; sec_cmd; sim_cmd; verify_cmd; faultsim_cmd;
           triage_cmd; validate_cmd ])
  in
  (* cmdliner's own cli-error (124) / internal-error (125) codes fold
     into the documented "usage or internal error" code. *)
  exit (if code >= 124 then exit_error else code)
