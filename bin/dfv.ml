(* The dfv command-line tool: run the design-for-verification flows on
   the bundled design pairs.

     dfv list                     enumerate bundled designs
     dfv audit  <design>          Section 3/4 checks on the pair
     dfv sec    <design>          sequential equivalence check
     dfv sim    <design> [-n N]   simulation-based comparison
     dfv verify <design>          audit + SEC (or simulation fallback)
     dfv faultsim [--design D]    mutation campaign scoring the verifier
     dfv serve [--socket S]       persistent verification daemon + cache
     dfv client <op> ...          query a running daemon
     dfv triage <design>          reproduce a failure as a triage bundle
     dfv validate <file>...       check artifacts parse + carry the envelope

   faultsim runs its mutants in pooled workers (--jobs, default = core
   count, except on 1-core hosts where the default falls back to the
   in-process path; --timeout bounds each mutant's wall clock); sec
   --jobs N races solving strategies in a portfolio.  --exec-mode
   fork|domains|auto picks the executor backing either pool: forked
   processes (crash isolation, timeouts), in-process work-stealing
   domains (fastest on short jobs), or adaptive dispatch between the
   two — verdicts are byte-identical across modes.  Both commands
   take --journal FILE (durable write-ahead journal of verdicts) and
   --resume FILE (replay a journal and run only what is missing);
   faultsim also takes --deadline S (graceful degradation: shrink
   solver budgets, then shed mutants to UNKNOWN instead of dying).
   SIGINT/SIGTERM stop the campaign cleanly: workers are killed, the
   journal is flushed, and the exit code is 4 ("interrupted,
   resumable").

   Bugs can be planted with --bug (see `dfv list`) to watch the flows
   catch them.  The flow commands take --trace FILE (Chrome trace_event
   span timeline) and --coverage FILE (functional coverage report);
   verify and triage take --report FILE (mismatch triage bundle).  All
   files share the {"schema": ..., "version": ...} envelope.

   Exit codes: 0 equivalent/pass, 1 counterexample/mismatch, 2 unknown
   (budget or stimulus exhausted, audit-blocked), 3 usage/internal
   error, 4 interrupted (resumable via --resume). *)

open Cmdliner
module Checker = Dfv_sec.Checker
open Dfv_designs
open Dfv_core

let exit_ok = 0
let exit_cex = 1
let exit_unknown = 2
let exit_error = 3
let exit_interrupted = 4

let exits =
  [ Cmd.Exit.info exit_ok ~doc:"equivalence proved / simulation clean / gate passed.";
    Cmd.Exit.info exit_cex ~doc:"a counterexample or simulation mismatch was found (or the faultsim gate failed).";
    Cmd.Exit.info exit_unknown
      ~doc:"no verdict: SAT budget or stimulus exhausted, or the audit blocks SEC.";
    Cmd.Exit.info exit_error ~doc:"usage or internal error.";
    Cmd.Exit.info exit_interrupted
      ~doc:
        "interrupted by SIGINT/SIGTERM before completion; with --journal \
         or --resume the run can be resumed from the journal." ]

(* Route SIGINT/SIGTERM through the pool's cooperative stop flag for
   the duration of [f]: workers are killed, the journal (if any) stays
   flushed — every completed verdict was fsync'd as it landed — and
   the command exits with {!exit_interrupted} instead of dying
   mid-write.  Handlers are restored afterwards so cmdliner's own
   error paths keep default signal behaviour. *)
let with_interrupt f =
  Dfv_par.Pool.reset_stop ();
  let install s =
    try
      Some
        (Sys.signal s (Sys.Signal_handle (fun _ -> Dfv_par.Pool.request_stop ())))
    with Invalid_argument _ | Sys_error _ -> None
  in
  let restore s prev =
    match prev with
    | Some b -> ( try Sys.set_signal s b with Invalid_argument _ | Sys_error _ -> ())
    | None -> ()
  in
  let prev_int = install Sys.sigint in
  let prev_term = install Sys.sigterm in
  Fun.protect
    ~finally:(fun () ->
      restore Sys.sigint prev_int;
      restore Sys.sigterm prev_term)
    f

(* --- bundled designs -------------------------------------------------- *)

let alu_bugs =
  List.map (fun b -> (Alu.bug_name b, Some b)) Alu.all_bugs @ [ ("none", None) ]

let make_pair design bug =
  match design with
  | "gcd" ->
    if bug <> "none" then failwith "gcd has no bug variants";
    let t = Gcd.make ~width:4 in
    Pair.create ~name:"gcd" ~slm:t.Gcd.slm ~rtl:t.Gcd.rtl ~spec:t.Gcd.spec
  | "alu" ->
    let bug =
      match List.assoc_opt bug alu_bugs with
      | Some b -> b
      | None -> failwith (Printf.sprintf "unknown alu bug %s" bug)
    in
    let t = Alu.make ?bug ~width:8 () in
    Pair.create ~name:"alu" ~slm:t.Alu.slm ~rtl:t.Alu.rtl ~spec:t.Alu.spec
  | "fir" ->
    let t = Fir.make ~taps:[ 3; -5; 7; 2 ] () in
    let slm =
      if bug = "cstyle" then t.Fir.slm_cstyle
      else if bug = "none" then t.Fir.slm_exact
      else failwith "fir bugs: cstyle"
    in
    Pair.create ~name:"fir" ~slm ~rtl:t.Fir.rtl ~spec:t.Fir.spec
  | "fir-hot" ->
    let t = Fir.make ~taps:[ 127; 127; 127; -128 ] () in
    let slm =
      if bug = "cstyle" then t.Fir.slm_cstyle
      else if bug = "none" then t.Fir.slm_exact
      else failwith "fir-hot bugs: cstyle"
    in
    Pair.create ~name:"fir-hot" ~slm ~rtl:t.Fir.rtl ~spec:t.Fir.spec
  | "conv" ->
    let clamped = bug <> "wrap" in
    if bug <> "none" && bug <> "wrap" then failwith "conv bugs: wrap";
    let good = Conv_image.make ~kernel:Conv_image.sharpen ~shift:2 () in
    let rtl =
      if clamped then good.Conv_image.rtl_window
      else
        (Conv_image.make ~clamped:false ~kernel:Conv_image.sharpen ~shift:2 ())
          .Conv_image.rtl_window
    in
    Pair.create ~name:"conv" ~slm:good.Conv_image.slm_window ~rtl
      ~spec:good.Conv_image.window_spec
  | "uart" ->
    let t = Uart.make ~baud_div:4 () in
    let rtl =
      if bug = "baud" then (Uart.make ~baud_div:5 ()).Uart.rtl
      else if bug = "none" then t.Uart.rtl
      else failwith "uart bugs: baud"
    in
    Pair.create ~name:"uart" ~slm:t.Uart.slm ~rtl ~spec:t.Uart.spec
  | "chain" ->
    let buggy =
      match bug with
      | "none" -> None
      | "brightness" -> Some Image_chain.Brightness
      | "convolution" -> Some Image_chain.Convolution
      | "threshold" -> Some Image_chain.Threshold
      | _ -> failwith "chain bugs: brightness | convolution | threshold"
    in
    let t = Image_chain.make ?buggy () in
    Pair.create ~name:"chain" ~slm:t.Image_chain.slm ~rtl:t.Image_chain.rtl_top
      ~spec:t.Image_chain.chain_spec
  | d -> failwith (Printf.sprintf "unknown design %s (try `dfv list`)" d)

let designs_doc =
  [ ("gcd", "4-bit Euclid: HWIR SLM vs sequential RTL datapath");
    ("alu", "8-bit ALU; bugs: unsigned-slt, truncated-shift-amount, missing-carry, swapped-or-xor");
    ("fir", "4-tap saturating FIR (mild taps); bugs: cstyle");
    ("fir-hot", "4-tap saturating FIR (overflowing taps); bugs: cstyle");
    ("conv", "3x3 convolution window datapath; bugs: wrap");
    ("uart", "UART transmitter vs frame function; bugs: baud (divisor mismatch)");
    ("chain", "brightness|conv|threshold pipeline; bugs: brightness, convolution, threshold") ]

(* --- commands ----------------------------------------------------------- *)

let list_cmd =
  let doc = "List the bundled design pairs and their plantable bugs." in
  let run () =
    List.iter (fun (n, d) -> Printf.printf "%-8s %s\n" n d) designs_doc;
    exit_ok
  in
  Cmd.v (Cmd.info "list" ~doc ~exits) Term.(const run $ const ())

let design_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"DESIGN")

let bug_arg =
  Arg.(value & opt string "none" & info [ "bug" ] ~docv:"BUG" ~doc:"Plant a bug variant.")

(* Commands return their exit code; anything the engines throw is mapped
   through the taxonomy to the documented code instead of a stack
   trace. *)
let wrap run = fun design bug ->
  match Dfv_error.guard (fun () -> run (make_pair design bug)) with
  | Ok code -> code
  | Error e ->
    Printf.eprintf "error: %s\n" (Dfv_error.to_string e);
    Dfv_error.exit_code e

(* --- observability flags ----------------------------------------------- *)

type obs = {
  trace_file : string option;
  raw_trace : bool;
  coverage_file : string option;
  metrics_file : string option;
}

let obs_term =
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Capture a span timeline of the run and write it to $(docv) as \
             Chrome trace_event JSON (load in chrome://tracing or Perfetto). \
             Pooled runs merge worker spans in under each worker's pid, so \
             the timeline is multi-process.")
  in
  let raw =
    Arg.(
      value & flag
      & info [ "raw" ]
          ~doc:
            "Write --trace output as the bare Chrome JSON array (no \
             {schema, version} envelope) for consumers that reject the \
             object form.  Raw traces do not pass $(b,dfv validate).")
  in
  let coverage =
    Arg.(
      value
      & opt (some string) None
      & info [ "coverage" ] ~docv:"FILE"
          ~doc:
            "Collect functional coverage (stimulus covergroups) and write \
             the report to $(docv).")
  in
  let metrics =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Write the end-of-run metrics snapshot (counters, gauges, \
             histograms; worker deltas merged in on pooled runs) to \
             $(docv).")
  in
  let combine trace_file raw_trace coverage_file metrics_file =
    { trace_file; raw_trace; coverage_file; metrics_file }
  in
  Term.(const combine $ trace $ raw $ coverage $ metrics)

(* Enable the requested sinks around [f] and flush the files afterwards
   (also on exceptions: a crashed run still leaves its trace behind). *)
let with_obs obs f =
  if obs.trace_file <> None then Dfv_obs.Trace.enable ();
  if obs.coverage_file <> None then Dfv_obs.Coverage.enable ();
  let finish () =
    (match obs.trace_file with
    | Some file -> Dfv_obs.Trace.write_file ~raw:obs.raw_trace file
    | None -> ());
    (match obs.coverage_file with
    | Some file -> Dfv_obs.Json.write_file file (Dfv_obs.Coverage.snapshot ())
    | None -> ());
    match obs.metrics_file with
    | Some file -> Dfv_obs.Json.write_file file (Dfv_obs.Metrics.snapshot ())
    | None -> ()
  in
  Fun.protect ~finally:finish f

let progress_arg =
  Arg.(
    value & flag
    & info [ "progress" ]
        ~doc:
          "Render a live progress line on stderr: completion, rate, ETA, \
           time to --deadline, and running verdict tallies.  Only when \
           stderr is a TTY; off by default.")

let report_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "report" ] ~docv:"FILE"
        ~doc:
          "Write a mismatch triage bundle (failing transaction, stimulus, \
           VCD slice, metric/span snapshot) to $(docv).")

let no_failure_json design =
  Dfv_obs.Json.envelope ~schema:"dfv-triage" ~version:1
    [ ("design", Dfv_obs.Json.String design);
      ("kind", Dfv_obs.Json.String "no-failure") ]

let audit_cmd =
  let doc = "Run the design-for-verification audit on a pair." in
  let run pair =
    let audit = Pair.audit pair in
    Format.printf "%a" Pair.pp_audit audit;
    if audit.Pair.sec_ready then exit_ok else exit_unknown
  in
  Cmd.v (Cmd.info "audit" ~doc ~exits) Term.(const (wrap run) $ design_arg $ bug_arg)

let budget_term =
  let conflicts =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget" ] ~docv:"CONFLICTS"
          ~doc:
            "Give up on a SAT query after $(docv) conflicts (the verdict \
             becomes UNKNOWN instead of hanging).")
  in
  let seconds =
    Arg.(
      value
      & opt (some float) None
      & info [ "budget-seconds" ] ~docv:"S"
          ~doc:"Give up on a SAT query after $(docv) seconds of wall clock.")
  in
  let combine c s =
    match (c, s) with
    | None, None -> Ok None
    | _ ->
      if (match c with Some n -> n < 1 | None -> false) then
        Error (`Msg "--budget must be at least 1 conflict")
      else if (match s with Some x -> x <= 0.0 | None -> false) then
        Error (`Msg "--budget-seconds must be positive")
      else
        Ok
          (Some
             { Dfv_sat.Solver.max_conflicts = c; Dfv_sat.Solver.max_seconds = s })
  in
  Term.(term_result (const combine $ conflicts $ seconds))

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print session statistics: encoding reuse, clause counts, \
           per-query solve times.")

(* Worker-pool flags.  The term yields [None] when --jobs was absent so
   each command can pick its own resting point — and so an explicit
   --jobs N (any N, even 1) can force the fork pool while the absent
   default may choose the in-process path on 1-core hosts, where
   forking only adds overhead. *)
let jobs_term =
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Number of worker processes (faultsim defaults to the \
             machine's core count, or the in-process path on a 1-core \
             host; sec to 1).  Jobs run in forked workers with crash \
             isolation; verdicts are independent of $(docv).  An \
             explicit $(docv) — even 1 — always forces the fork pool.")
  in
  let check = function
    | Some n when n < 1 -> Error (`Msg "--jobs must be at least 1")
    | v -> Ok v
  in
  Term.(term_result (const check $ jobs))

(* --journal (create or resume) / --resume (must already exist): both
   name the same write-ahead journal file, differing only in whether a
   missing file is an error. *)
let journal_term =
  let journal =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Write-ahead journal: append every completed verdict \
             (fsync'd) to $(docv) as it lands, creating the file if \
             needed and replaying it if it already exists.  A killed \
             run can then be resumed with --resume $(docv).")
  in
  let resume =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume" ] ~docv:"FILE"
          ~doc:
            "Resume from the journal at $(docv) (which must exist): \
             journaled verdicts are replayed instead of re-run, the \
             rest of the campaign runs and keeps appending to the same \
             journal.  The final report is byte-identical (timings \
             aside) to an uninterrupted run.")
  in
  let combine j r =
    match (j, r) with
    | Some _, Some _ -> Error (`Msg "--journal and --resume are mutually exclusive")
    | None, Some f when not (Sys.file_exists f) ->
      Error (`Msg (Printf.sprintf "--resume %s: no such journal" f))
    | (Some _ as v), None | None, (Some _ as v) -> Ok v
    | None, None -> Ok None
  in
  Term.(term_result (const combine $ journal $ resume))

let deadline_term =
  let t =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"S"
          ~doc:
            "Soft wall-clock budget in seconds for the whole run: jobs \
             started past the halfway point run with linearly shrunk \
             solver budgets, and jobs started past the deadline are \
             shed to UNKNOWN (reported, never silent) instead of the \
             run overshooting.")
  in
  let check = function
    | Some s when s <= 0.0 -> Error (`Msg "--deadline must be positive")
    | t -> Ok t
  in
  Term.(term_result (const check $ t))

let timeout_term =
  let t =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"S"
          ~doc:
            "Per-job wall-clock budget in seconds; an expired worker is \
             killed and its job recorded as undecided.")
  in
  let check = function
    | Some s when s <= 0.0 -> Error (`Msg "--timeout must be positive")
    | t -> Ok t
  in
  Term.(term_result (const check $ t))

(* --exec-mode: which executor backs the worker pool.  The term yields
   [None] when the flag was absent (the command then defaults to [`Auto]
   once it decides to pool at all) so an explicit --exec-mode can also
   force the pooled path where the resting default would have chosen the
   plain in-process one. *)
let exec_mode_term =
  let mode_conv =
    Arg.enum [ ("fork", `Fork); ("domains", `Domains); ("auto", `Auto) ]
  in
  Arg.(
    value
    & opt (some mode_conv) None
    & info [ "exec-mode" ] ~docv:"MODE"
        ~doc:
          "Executor backing the worker pool: $(b,fork) runs each job in a \
           forked process (crash isolation, --timeout support), \
           $(b,domains) runs jobs on in-process work-stealing domains (no \
           fork or pipe overhead — fastest on short jobs — but no crash \
           isolation and incompatible with --timeout), $(b,auto) routes \
           short jobs to domains and keeps fork for long or \
           timeout-bearing workloads.  Verdicts are byte-identical across \
           modes.  Default: auto.")

let reason_string = function
  | Dfv_sat.Solver.Conflict_limit -> "conflict budget exhausted"
  | Dfv_sat.Solver.Time_limit -> "time budget exhausted"

let print_stats (s : Checker.stats) =
  let reuse_pct =
    let total = s.Checker.nodes_encoded + s.Checker.nodes_reused in
    if total = 0 then 0.0
    else 100.0 *. float_of_int s.Checker.nodes_reused /. float_of_int total
  in
  Printf.printf "stats:\n";
  Printf.printf "  aig ands         %d\n" s.Checker.aig_ands;
  Printf.printf "  nodes encoded    %d\n" s.Checker.nodes_encoded;
  Printf.printf "  nodes reused     %d (%.1f%%)\n" s.Checker.nodes_reused
    reuse_pct;
  Printf.printf "  clauses          %d (%d learnts reduced away)\n"
    s.Checker.sat_clauses s.Checker.learnts_removed;
  Printf.printf "  conflicts        %d\n" s.Checker.sat_conflicts;
  Printf.printf "  decisions        %d\n" s.Checker.sat_decisions;
  Printf.printf "  propagations     %d\n" s.Checker.sat_propagations;
  Printf.printf "  unroll hits      %d\n" s.Checker.unroll_hits;
  Printf.printf "  queries          %d (%d unknown)\n" s.Checker.queries
    s.Checker.unknowns;
  Printf.printf "  solve times      %s\n"
    (String.concat " "
       (List.map (Printf.sprintf "%.3fs") s.Checker.frame_seconds));
  Printf.printf "  wall             %.3fs\n" s.Checker.wall_seconds

(* Shared verdict rendering for `dfv sec`, `dfv sec --serve-socket` and
   `dfv client sec`.  All three print from the wire form (a cold verdict
   is reduced via {!Dfv_par.Portfolio.slm_wire_of_verdict} first), so a
   served answer is byte-identical on stdout to the cold CLI's by
   construction — the CI smoke diffs the two. *)
let print_slm_wire ~stats:want_stats w =
  let finish s = if want_stats then print_stats s in
  match w with
  | Dfv_par.Portfolio.W_equivalent stats ->
    Printf.printf
      "EQUIVALENT  (%d AIG nodes, %d conflicts, %d decisions, %.3fs)\n"
      stats.Checker.aig_ands stats.Checker.sat_conflicts
      stats.Checker.sat_decisions stats.Checker.wall_seconds;
    finish stats;
    exit_ok
  | Dfv_par.Portfolio.W_not_equivalent (params, stats) ->
    Printf.printf "NOT EQUIVALENT  (%.3fs)\ncounterexample:\n"
      stats.Checker.wall_seconds;
    List.iter
      (fun (n, v) ->
        match v with
        | Dfv_hwir.Interp.Vint bv ->
          Printf.printf "  %s = %s\n" n (Dfv_bitvec.Bitvec.to_string bv)
        | Dfv_hwir.Interp.Varr a ->
          Printf.printf "  %s = [%s]\n" n
            (String.concat "; "
               (Array.to_list (Array.map Dfv_bitvec.Bitvec.to_string a))))
      params;
    finish stats;
    exit_cex
  | Dfv_par.Portfolio.W_unknown (reason, stats) ->
    Printf.printf "UNKNOWN  (%s after %.3fs)\n" (reason_string reason)
      stats.Checker.wall_seconds;
    finish stats;
    exit_unknown

let print_sim_wire = function
  | Dfv_serve.Protocol.Sim_clean vectors ->
    Printf.printf "CLEAN after %d transactions (no proof)\n" vectors;
    exit_ok
  | Dfv_serve.Protocol.Sim_mismatch vector_index ->
    Printf.printf "MISMATCH at transaction %d\n" vector_index;
    exit_cex

(* One request-response against a daemon.  The cache-hit notice goes to
   stderr so stdout stays diffable against the cold command. *)
let client_call ~socket ~retries op k =
  match Dfv_serve.Client.one_shot ~retries ~socket op with
  | Error m ->
    Printf.eprintf "error: %s\n" m;
    exit_error
  | Ok r ->
    if r.Dfv_serve.Protocol.cached then
      Printf.eprintf "dfv serve: served from cache in %.3fs\n"
        r.Dfv_serve.Protocol.seconds;
    (match r.Dfv_serve.Protocol.outcome with
    | Error e ->
      Printf.eprintf "error: %s\n" (Dfv_error.to_string e);
      Dfv_error.exit_code e
    | Ok p -> k p)

let serve_socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "serve-socket" ] ~docv:"SOCK"
        ~doc:
          "Fast path: send the query to the $(b,dfv serve) daemon \
           listening on $(docv) instead of solving locally.  A repeated \
           query is answered from the daemon's content-addressed cache; \
           stdout and the exit code are identical to the local run \
           (cache notices go to stderr).")

let sec_cmd =
  let doc =
    "Run sequential equivalence checking on a pair.  With --jobs above 1 \
     the check runs as a strategy portfolio: solving variants race in \
     forked workers and the first conclusive verdict cancels the rest.  \
     With --serve-socket the query is answered by a dfv serve daemon."
  in
  let run budget stats jobs exec journal progress serve_socket obs design bug =
    with_obs obs @@ fun () ->
    with_interrupt @@ fun () ->
    match serve_socket with
    | Some socket ->
      client_call ~socket ~retries:0
        (Dfv_serve.Protocol.Sec { design; bug; budget })
        (function
          | Dfv_serve.Protocol.R_sec w -> print_slm_wire ~stats w
          | _ ->
            Printf.eprintf "error: unexpected response payload\n";
            exit_error)
    | None ->
    (wrap (fun pair ->
        let report v =
          print_slm_wire ~stats (Dfv_par.Portfolio.slm_wire_of_verdict v)
        in
        (* A journal, --progress or an explicit --exec-mode implies the
           portfolio path (that is where verdicts are journaled/reported
           and where the executor choice matters), even without --jobs. *)
        if jobs = None && exec = None && journal = None && not progress then
          report (Flow.sec ?budget pair)
        else
          let jobs = Option.value jobs ~default:1 in
          let exec = Option.value exec ~default:`Auto in
          match
            Dfv_par.Portfolio.check_slm_rtl ~jobs ~exec ?budget ?journal
              ~progress ~slm:pair.Pair.slm ~rtl:pair.Pair.rtl
              ~spec:pair.Pair.spec ()
          with
          | Ok v -> report v
          | Error e ->
            Printf.eprintf "error: %s\n" (Dfv_error.to_string e);
            (match (e, journal) with
            | Dfv_error.Interrupted _, Some path ->
              Printf.eprintf "resume with: dfv sec --resume %s ...\n" path
            | _ -> ());
            Dfv_error.exit_code e))
      design bug
  in
  Cmd.v (Cmd.info "sec" ~doc ~exits)
    Term.(
      const run $ budget_term $ stats_arg $ jobs_term $ exec_mode_term
      $ journal_term $ progress_arg $ serve_socket_arg $ obs_term
      $ design_arg $ bug_arg)

let vectors_arg =
  Arg.(value & opt int 1000 & info [ "n"; "vectors" ] ~docv:"N" ~doc:"Number of random transactions.")

let engine_term =
  let engine_conv = Arg.enum [ ("interp", `Interp); ("compiled", `Compiled) ] in
  Arg.(
    value
    & opt (some engine_conv) None
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "System-level model execution engine: $(b,compiled) lowers the \
           model through the verified normal form onto the shared \
           slot-indexed kernel (and errors on models outside the normal \
           form); $(b,interp) forces the tree-walking reference.  Default: \
           compiled for conditioned models, with automatic fallback to the \
           interpreter.")

let sim_cmd =
  let doc =
    "Run simulation-based SLM/RTL comparison on a pair.  With \
     --serve-socket the run is answered by a dfv serve daemon (--engine \
     is then moot: the engines are behaviourally identical and the \
     daemon picks)."
  in
  let run vectors engine serve_socket obs design bug =
    with_obs obs @@ fun () ->
    match serve_socket with
    | Some socket ->
      client_call ~socket ~retries:0
        (Dfv_serve.Protocol.Sim { design; bug; vectors; seed = 0 })
        (function
          | Dfv_serve.Protocol.R_sim w -> print_sim_wire w
          | _ ->
            Printf.eprintf "error: unexpected response payload\n";
            exit_error)
    | None ->
    (wrap (fun pair ->
         match Flow.simulate ?engine ~vectors pair with
         | Ok (Flow.Sim_clean { vectors }) ->
           print_sim_wire (Dfv_serve.Protocol.Sim_clean vectors)
         | Ok (Flow.Sim_mismatch { vector_index; _ }) ->
           print_sim_wire (Dfv_serve.Protocol.Sim_mismatch vector_index)
         | Error e ->
           Printf.eprintf "error: %s\n" (Dfv_error.to_string e);
           Dfv_error.exit_code e))
      design bug
  in
  Cmd.v (Cmd.info "sim" ~doc ~exits)
    Term.(
      const run $ vectors_arg $ engine_term $ serve_socket_arg $ obs_term
      $ design_arg $ bug_arg)

let verify_cmd =
  let doc = "Audit, then SEC (or simulation when SEC is blocked)." in
  let run budget engine obs report_file design bug =
    with_obs obs @@ fun () ->
    (wrap (fun pair ->
         let report = Flow.verify ?engine ?budget pair in
         Format.printf "%a" Flow.pp_report report;
         (match report_file with
         | Some file -> (
           match Flow.triage_of_report pair report with
           | Some t -> Dfv_obs.Triage.write_file file t
           | None ->
             Dfv_obs.Json.write_file file (no_failure_json pair.Pair.name))
         | None -> ());
         match report.Flow.outcome with
         | Flow.Proved _ | Flow.Simulated (Flow.Sim_clean _) -> exit_ok
         | Flow.Refuted _ | Flow.Simulated (Flow.Sim_mismatch _) -> exit_cex
         | Flow.Undecided _ -> exit_unknown
         | Flow.Errored e -> Dfv_error.exit_code e))
      design bug
  in
  Cmd.v (Cmd.info "verify" ~doc ~exits)
    Term.(
      const run $ budget_term $ engine_term $ obs_term $ report_arg
      $ design_arg $ bug_arg)

let faultsim_cmd =
  let doc =
    "Run the fault-injection campaign: mutate the designs, demand that \
     SEC/co-simulation detect every activatable fault, and report the \
     detection rate (exit 1 when the gate fails)."
  in
  let designs_arg =
    Arg.(
      value
      & opt_all string []
      & info [ "design" ] ~docv:"DESIGN"
          ~doc:
            "Subject(s) to mutate (repeatable): alu, fir, gcd, \
             chain.brightness, chain.convolution, chain.threshold, memsys. \
             Default: all.")
  in
  let seed_arg =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc:"Fault sampling seed.")
  in
  let max_faults_arg =
    Arg.(
      value
      & opt int 16
      & info [ "max-faults" ] ~docv:"N"
          ~doc:"Structural RTL faults per subject (class-stratified sample).")
  in
  let max_slm_faults_arg =
    Arg.(
      value
      & opt int 8
      & info [ "max-slm-faults" ] ~docv:"N"
          ~doc:"Semantic SLM mutations per subject.")
  in
  let sim_vectors_arg =
    Arg.(
      value
      & opt int 400
      & info [ "vectors" ] ~docv:"N"
          ~doc:"Cross-check simulation vectors per Equivalent mutant.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the machine-readable detection report to $(docv).")
  in
  let run budget designs seed max_faults max_slm_faults sim_vectors engine
      jobs exec timeout deadline journal_path json progress obs =
    with_obs obs @@ fun () ->
    with_interrupt @@ fun () ->
    (match (exec, timeout) with
    | Some `Domains, Some _ ->
      Printf.eprintf
        "error: --exec-mode domains is incompatible with --timeout \
         (in-process domains cannot be killed mid-job); use --exec-mode \
         fork or drop --timeout\n";
      exit exit_error
    | _ -> ());
    match
      Dfv_error.guard (fun () ->
          let designs =
            match designs with [] -> Dfv_fault.Suite.names | ds -> ds
          in
          (* Explicit --jobs (any N) forces the pool; the absent default
             is the core count, except on a 1-core host with no --timeout
             and no explicit --exec-mode, where pooling per mutant only
             adds overhead and the in-process path is behaviourally
             identical.  An explicit --exec-mode forces the pooled path
             so the executor choice takes effect. *)
          let jobs, pool =
            match jobs with
            | Some n -> (n, Some true)
            | None ->
              let n = Dfv_par.Pool.cores () in
              if n = 1 && timeout = None && exec = None then (1, Some false)
              else if exec = None then (n, None)
              else (n, Some true)
          in
          let exec = Option.value exec ~default:`Auto in
          let journal =
            match journal_path with
            | None -> None
            | Some path -> (
              let key =
                Dfv_fault.Suite.campaign_key ~budget ~seed ~sim_vectors
                  ~engine ~max_rtl_faults:max_faults ~max_slm_faults ~designs
              in
              match Dfv_par.Journal.open_ ~path ~campaign:key with
              | Ok j -> Some j
              | Error m -> failwith (Printf.sprintf "journal %s: %s" path m))
          in
          Fun.protect
            ~finally:(fun () -> Option.iter Dfv_par.Journal.close journal)
          @@ fun () ->
          (match journal with
          | Some j when Dfv_par.Journal.replayed j > 0 ->
            Printf.printf "resumed: %d verdicts replayed from journal\n"
              (Dfv_par.Journal.replayed j)
          | _ -> ());
          let reports =
            Dfv_fault.Suite.run ?budget ~seed ~sim_vectors ?engine ~jobs
              ?timeout ?deadline ?journal ?pool ~exec
              ~max_rtl_faults:max_faults ~max_slm_faults ~progress ~designs ()
          in
          if Dfv_par.Pool.stop_requested () then begin
            (match journal_path with
            | Some p ->
              Printf.eprintf "interrupted; resume with: dfv faultsim --resume %s ...\n" p
            | None ->
              Printf.eprintf
                "interrupted (no --journal, progress lost; re-run with \
                 --journal FILE to make the campaign resumable)\n");
            exit_interrupted
          end
          else begin
            List.iter (Format.printf "%a" Dfv_fault.Campaign.pp_report) reports;
            let rate, false_eq, pass =
              Dfv_fault.Suite.gate
                ~min_rate:Dfv_fault.Suite.default_min_rate reports
            in
            let shed =
              List.fold_left
                (fun acc r -> acc + r.Dfv_fault.Campaign.r_shed)
                0 reports
            in
            if shed > 0 then
              Printf.printf
                "%d mutants shed to UNKNOWN by --deadline (not counted \
                 against the gate)\n"
                shed;
            Printf.printf
              "detection rate %.1f%% (min %.0f%%), %d false equivalents: %s\n"
              (100.0 *. rate)
              (100.0 *. Dfv_fault.Suite.default_min_rate)
              false_eq
              (if pass then "PASS" else "FAIL");
            (match json with
            | Some file ->
              let oc = open_out file in
              output_string oc
                (Dfv_fault.Campaign.json_of_reports
                   ~min_rate:Dfv_fault.Suite.default_min_rate reports);
              output_char oc '\n';
              close_out oc
            | None -> ());
            if pass then exit_ok else exit_cex
          end)
    with
    | Ok code -> code
    | Error e ->
      Printf.eprintf "error: %s\n" (Dfv_error.to_string e);
      Dfv_error.exit_code e
  in
  Cmd.v (Cmd.info "faultsim" ~doc ~exits)
    Term.(
      const run $ budget_term $ designs_arg $ seed_arg $ max_faults_arg
      $ max_slm_faults_arg $ sim_vectors_arg $ engine_term $ jobs_term
      $ exec_mode_term $ timeout_term $ deadline_term $ journal_term
      $ json_arg $ progress_arg $ obs_term)

(* --- serve / client ---------------------------------------------------- *)

let socket_arg =
  Arg.(
    value
    & opt string "dfv-serve.sock"
    & info [ "socket" ] ~docv:"SOCK"
        ~doc:"Unix-domain socket path the daemon listens on.")

let serve_cmd =
  let doc =
    "Run the persistent verification daemon: accept SEC, co-simulation \
     and fault-campaign requests over a Unix-domain socket (line-framed \
     JSON, see dfv client), answer repeats from a content-addressed \
     result cache keyed by structural fingerprints, and batch the \
     misses onto the worker executor.  SIGINT/SIGTERM (or a client \
     shutdown request) stop the daemon cleanly; with --store the cache \
     survives restarts — even a SIGKILL loses at most the in-flight \
     solves."
  in
  let cache_arg =
    Arg.(
      value & opt int 256
      & info [ "cache" ] ~docv:"N"
          ~doc:"In-memory cache capacity in entries (LRU eviction).")
  in
  let store_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"FILE"
          ~doc:
            "On-disk cache store: an append-only dfv-journal file, \
             fsync'd per entry, replayed into the cache at startup \
             (poisoned records are rejected and counted).")
  in
  let summary_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "summary" ] ~docv:"FILE"
          ~doc:
            "Write the dfv-serve summary artifact (per-endpoint hit \
             rates, cache counters, request log) to $(docv) on exit.")
  in
  let run socket cache store summary jobs exec obs =
    with_obs obs @@ fun () ->
    with_interrupt @@ fun () ->
    let resolve ~design ~bug =
      match Dfv_error.guard (fun () -> make_pair design bug) with
      | Ok p -> Ok p
      | Error e -> Error (Dfv_error.to_string e)
    in
    match
      Dfv_error.guard (fun () ->
          let cfg =
            {
              (Dfv_serve.Server.default_config ~socket) with
              Dfv_serve.Server.capacity = cache;
              store;
              summary;
              jobs = Option.value jobs ~default:(Dfv_par.Pool.cores ());
              exec = Option.value exec ~default:`Auto;
            }
          in
          Dfv_serve.Server.run ~resolve cfg)
    with
    | Ok code -> code
    | Error e ->
      Printf.eprintf "error: %s\n" (Dfv_error.to_string e);
      Dfv_error.exit_code e
  in
  Cmd.v (Cmd.info "serve" ~doc ~exits)
    Term.(
      const run $ socket_arg $ cache_arg $ store_arg $ summary_arg
      $ jobs_term $ exec_mode_term $ obs_term)

let client_cmd =
  let retries_arg =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Retry the connection up to $(docv) times (0.1s apart) — \
             for racing a daemon that is still starting.")
  in
  let seed_arg =
    Arg.(
      value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc:"Stimulus seed.")
  in
  let sec =
    let doc = "Request a SEC verdict from the daemon." in
    let run socket retries budget stats design bug =
      client_call ~socket ~retries
        (Dfv_serve.Protocol.Sec { design; bug; budget })
        (function
          | Dfv_serve.Protocol.R_sec w -> print_slm_wire ~stats w
          | _ ->
            Printf.eprintf "error: unexpected response payload\n";
            exit_error)
    in
    Cmd.v (Cmd.info "sec" ~doc ~exits)
      Term.(
        const run $ socket_arg $ retries_arg $ budget_term $ stats_arg
        $ design_arg $ bug_arg)
  in
  let sim =
    let doc = "Request a simulation comparison from the daemon." in
    let run socket retries vectors seed design bug =
      client_call ~socket ~retries
        (Dfv_serve.Protocol.Sim { design; bug; vectors; seed })
        (function
          | Dfv_serve.Protocol.R_sim w -> print_sim_wire w
          | _ ->
            Printf.eprintf "error: unexpected response payload\n";
            exit_error)
    in
    Cmd.v (Cmd.info "sim" ~doc ~exits)
      Term.(
        const run $ socket_arg $ retries_arg $ vectors_arg $ seed_arg
        $ design_arg $ bug_arg)
  in
  let faultsim =
    let doc = "Request a fault campaign from the daemon." in
    let designs_arg =
      Arg.(
        value
        & opt_all string []
        & info [ "design" ] ~docv:"DESIGN"
            ~doc:"Subject(s) to mutate (repeatable).  Default: all.")
    in
    let max_faults_arg =
      Arg.(
        value & opt int 16
        & info [ "max-faults" ] ~docv:"N"
            ~doc:"Structural RTL faults per subject.")
    in
    let max_slm_faults_arg =
      Arg.(
        value & opt int 8
        & info [ "max-slm-faults" ] ~docv:"N"
            ~doc:"Semantic SLM mutations per subject.")
    in
    let sim_vectors_arg =
      Arg.(
        value & opt int 400
        & info [ "vectors" ] ~docv:"N"
            ~doc:"Cross-check simulation vectors per Equivalent mutant.")
    in
    let json_arg =
      Arg.(
        value
        & opt (some string) None
        & info [ "json" ] ~docv:"FILE"
            ~doc:"Write the returned dfv-faultsim report to $(docv).")
    in
    let run socket retries budget designs seed max_faults max_slm_faults
        sim_vectors json =
      let designs =
        match designs with [] -> Dfv_fault.Suite.names | ds -> ds
      in
      client_call ~socket ~retries
        (Dfv_serve.Protocol.Faultsim
           {
             designs;
             seed;
             max_rtl_faults = max_faults;
             max_slm_faults;
             sim_vectors;
             budget;
           })
        (function
          | Dfv_serve.Protocol.R_faultsim f ->
            (match json with
            | Some file ->
              Dfv_obs.Json.write_file file f.Dfv_serve.Protocol.f_report
            | None -> ());
            Printf.printf
              "fault detection rate %.1f%% with %d false equivalents: %s\n"
              (100.0 *. f.Dfv_serve.Protocol.f_rate)
              f.Dfv_serve.Protocol.f_false_eq
              (if f.Dfv_serve.Protocol.f_pass then "PASS" else "FAIL");
            if f.Dfv_serve.Protocol.f_pass then exit_ok else exit_cex
          | _ ->
            Printf.eprintf "error: unexpected response payload\n";
            exit_error)
    in
    Cmd.v (Cmd.info "faultsim" ~doc ~exits)
      Term.(
        const run $ socket_arg $ retries_arg $ budget_term $ designs_arg
        $ seed_arg $ max_faults_arg $ max_slm_faults_arg $ sim_vectors_arg
        $ json_arg)
  in
  let ping =
    let doc = "Liveness probe: succeed iff the daemon answers." in
    let run socket retries =
      client_call ~socket ~retries Dfv_serve.Protocol.Ping (function
        | Dfv_serve.Protocol.R_pong ->
          Printf.printf "pong\n";
          exit_ok
        | _ ->
          Printf.eprintf "error: unexpected response payload\n";
          exit_error)
    in
    Cmd.v (Cmd.info "ping" ~doc ~exits)
      Term.(const run $ socket_arg $ retries_arg)
  in
  let stats =
    let doc =
      "Fetch the daemon's live summary document (requests, per-endpoint \
       hit rates, cache counters) as one line of dfv-serve JSON."
    in
    let run socket retries =
      client_call ~socket ~retries Dfv_serve.Protocol.Stats (function
        | Dfv_serve.Protocol.R_stats s ->
          print_endline (Dfv_obs.Json.to_string s);
          exit_ok
        | _ ->
          Printf.eprintf "error: unexpected response payload\n";
          exit_error)
    in
    Cmd.v (Cmd.info "stats" ~doc ~exits)
      Term.(const run $ socket_arg $ retries_arg)
  in
  let shutdown =
    let doc = "Ask the daemon to exit cleanly (cache store stays valid)." in
    let run socket retries =
      client_call ~socket ~retries Dfv_serve.Protocol.Shutdown (function
        | Dfv_serve.Protocol.R_shutdown ->
          Printf.printf "shutdown acknowledged\n";
          exit_ok
        | _ ->
          Printf.eprintf "error: unexpected response payload\n";
          exit_error)
    in
    Cmd.v (Cmd.info "shutdown" ~doc ~exits)
      Term.(const run $ socket_arg $ retries_arg)
  in
  let doc =
    "Talk to a dfv serve daemon: sec, sim and faultsim queries plus \
     ping/stats/shutdown control.  Verify verdicts print byte-identically \
     to the corresponding local command."
  in
  Cmd.group
    (Cmd.info "client" ~doc ~exits)
    [ sec; sim; faultsim; ping; stats; shutdown ]

let validate_cmd =
  let doc =
    "Validate machine-readable artifacts: each FILE must parse as JSON \
     and carry the shared {\"schema\", \"version\"} envelope.  \
     dfv-trace and dfv-metrics payloads are additionally checked for \
     their expected shape (traceEvents array; counter/gauge/histogram \
     objects).  Exits 0 when every file passes, 3 otherwise.  \
     Line-framed dfv-journal files are recognised by their first line \
     and checked record by record.  CI runs this over uploaded \
     BENCH_*.json / fault-report / trace / coverage / journal artifacts."
  in
  let files_arg =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE")
  in
  let run files =
    let validate file =
      let contents =
        let ic = open_in_bin file in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
      in
      (* A journal is line-framed JSON, not one document: recognise it
         by its first line and validate the whole record stream. *)
      let first_line =
        match String.index_opt contents '\n' with
        | Some i -> String.sub contents 0 i
        | None -> contents
      in
      let is_journal =
        match Dfv_obs.Json.parse first_line with
        | Ok v -> (
          match Dfv_obs.Json.envelope_of v with
          | Some ("dfv-journal", _) -> true
          | Some _ | None -> false)
        | Error _ -> false
      in
      if is_journal then
        match Dfv_par.Journal.inspect file with
        | Ok info ->
          Printf.printf "%-40s ok    dfv-journal v1 (%d records%s%s)\n" file
            info.Dfv_par.Journal.info_records
            (if info.Dfv_par.Journal.info_dropped > 0 then
               Printf.sprintf ", %d duplicates dropped"
                 info.Dfv_par.Journal.info_dropped
             else "")
            (if info.Dfv_par.Journal.info_torn then ", torn tail" else "");
          true
        | Error m ->
          Printf.printf "%-40s FAIL  %s\n" file m;
          false
      else
        match Dfv_obs.Json.parse contents with
        | Error m ->
          Printf.printf "%-40s FAIL  %s\n" file ("parse error: " ^ m);
          false
        | Ok v -> (
          match Dfv_obs.Json.envelope_of v with
          | Some (schema, version) -> (
            (* Structural checks for the schemas dfv itself consumes
               back (trace merging, metrics merging): the envelope alone
               does not prove the payload has the right shape. *)
            let shape =
              match schema with
              | "dfv-trace" -> (
                match Dfv_obs.Json.field "traceEvents" v with
                | Some (Dfv_obs.Json.List evs) ->
                  Ok (Printf.sprintf " (%d events)" (List.length evs))
                | Some _ -> Error "traceEvents is not an array"
                | None -> Error "missing traceEvents")
              | "dfv-metrics" ->
                let section name =
                  match Dfv_obs.Json.field name v with
                  | Some (Dfv_obs.Json.Obj _) -> None
                  | Some _ -> Some (name ^ " is not an object")
                  | None -> Some ("missing " ^ name)
                in
                let missing =
                  List.filter_map section
                    [ "counters"; "gauges"; "histograms" ]
                in
                if missing = [] then Ok "" else Error (List.hd missing)
              | "dfv-bench" -> (
                (* par_speedup now records one row per executor; the CI
                   gate reads mode/cores out of those rows, so their
                   shape is part of the artifact contract. *)
                match Dfv_obs.Json.field "experiment" v with
                | Some (Dfv_obs.Json.String "par_speedup") -> (
                  match Dfv_obs.Json.field "modes" v with
                  | Some (Dfv_obs.Json.List rows) ->
                    let row_ok row =
                      (match Dfv_obs.Json.field "mode" row with
                      | Some (Dfv_obs.Json.String _) -> true
                      | _ -> false)
                      && (match Dfv_obs.Json.field "cores" row with
                         | Some (Dfv_obs.Json.Int _) -> true
                         | _ -> false)
                      && (match Dfv_obs.Json.field "speedup" row with
                         | Some (Dfv_obs.Json.Float _ | Dfv_obs.Json.Int _) ->
                           true
                         | _ -> false)
                    in
                    if rows = [] then Error "modes is empty"
                    else if List.for_all row_ok rows then
                      Ok
                        (Printf.sprintf " (%d executor rows)"
                           (List.length rows))
                    else
                      Error
                        "modes rows need string mode, int cores, numeric \
                         speedup"
                  | Some _ -> Error "modes is not an array"
                  | None -> Error "par_speedup is missing modes")
                | _ -> Ok "")
              | "dfv-serve" -> (
                (* The serve smoke uploads the daemon summary; its
                   endpoint rows and cache counters are what the CI
                   assertions read, so their shape is contractual. *)
                match Dfv_obs.Json.field "kind" v with
                | Some (Dfv_obs.Json.String "summary") -> (
                  match
                    ( Dfv_obs.Json.field "requests" v,
                      Dfv_obs.Json.field "endpoints" v,
                      Dfv_obs.Json.field "cache" v )
                  with
                  | ( Some (Dfv_obs.Json.Int n),
                      Some (Dfv_obs.Json.List eps),
                      Some (Dfv_obs.Json.Obj _) ) ->
                    Ok
                      (Printf.sprintf " (summary: %d requests, %d endpoints)"
                         n (List.length eps))
                  | _ ->
                    Error
                      "summary needs int requests, endpoints array, cache \
                       object")
                | Some (Dfv_obs.Json.String ("request" | "response")) -> Ok ""
                | Some (Dfv_obs.Json.String k) ->
                  Error ("unknown dfv-serve kind " ^ k)
                | _ -> Error "missing kind")
              | _ -> Ok ""
            in
            match shape with
            | Ok extra ->
              Printf.printf "%-40s ok    %s v%d%s\n" file schema version
                extra;
              true
            | Error m ->
              Printf.printf "%-40s FAIL  %s: %s\n" file schema m;
              false)
          | None ->
            Printf.printf "%-40s FAIL  missing {schema, version} envelope\n"
              file;
            false)
    in
    let ok =
      List.fold_left (fun acc f -> validate f && acc) true files
    in
    if ok then exit_ok else exit_error
  in
  Cmd.v (Cmd.info "validate" ~doc ~exits) Term.(const run $ files_arg)

(* --- report ----------------------------------------------------------- *)

(* Human-readable rendering of the machine artifacts: one renderer per
   schema, dispatched on the shared {"schema","version"} envelope. *)
let report_cmd =
  let doc =
    "Summarize dfv JSON artifacts for humans: campaign reports (verdict \
     tallies, slowest mutants), journals (resumable progress), metrics \
     snapshots (counters, histograms, solver-time attribution), merged \
     traces (per-span time attribution, slowest spans, worker pids) and \
     coverage reports (holes).  Exits 0 when every file rendered, 3 \
     otherwise."
  in
  let files_arg = Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE") in
  let top_arg =
    Arg.(
      value & opt int 5
      & info [ "top" ] ~docv:"N"
          ~doc:"List the $(docv) slowest mutants/spans and worst holes.")
  in
  let run top files =
    let module J = Dfv_obs.Json in
    let str_field name v =
      match J.field name v with Some (J.String s) -> Some s | _ -> None
    in
    let int_field name v =
      match J.field name v with Some (J.Int i) -> Some i | _ -> None
    in
    let num_field name v =
      match J.field name v with
      | Some (J.Float f) -> Some f
      | Some (J.Int i) -> Some (float_of_int i)
      | _ -> None
    in
    let ints name v = Option.value ~default:0 (int_field name v) in
    let take n l = List.filteri (fun i _ -> i < n) l in
    let report_faultsim v =
      let subjects =
        match J.field "subjects" v with Some (J.List l) -> l | _ -> []
      in
      List.iter
        (fun s ->
          Printf.printf
            "  %-18s %3d mutants: %d detected, %d survived, %d unknown, %d \
             crashed, %d false-eq%s (%.2fs)\n"
            (Option.value ~default:"?" (str_field "name" s))
            (ints "total" s) (ints "detected" s) (ints "survived" s)
            (ints "unknown" s) (ints "crashed" s) (ints "false_equivalent" s)
            (let shed = ints "shed" s in
             if shed > 0 then Printf.sprintf ", %d shed" shed else "")
            (Option.value ~default:0.0 (num_field "wall_seconds" s)))
        subjects;
      (match
         (num_field "detection_rate" v, J.field "pass" v, int_field
            "false_equivalents" v)
       with
      | Some rate, Some (J.Bool pass), Some false_eq ->
        Printf.printf
          "  detection rate %.1f%%, %d false equivalents: %s\n" (100.0 *. rate)
          false_eq
          (if pass then "PASS" else "FAIL")
      | _ -> ());
      let mutants =
        List.concat_map
          (fun s ->
            let subject = Option.value ~default:"?" (str_field "name" s) in
            match J.field "faults" s with
            | Some (J.List fs) ->
              List.filter_map
                (fun f ->
                  match num_field "seconds" f with
                  | Some sec ->
                    Some
                      ( sec,
                        subject,
                        Option.value ~default:"?" (str_field "name" f),
                        Option.value ~default:"?" (str_field "verdict" f) )
                  | None -> None)
                fs
            | _ -> [])
          subjects
      in
      let slowest =
        take top
          (List.sort (fun (a, _, _, _) (b, _, _, _) -> compare b a) mutants)
      in
      if slowest <> [] then begin
        Printf.printf "  slowest mutants:\n";
        List.iter
          (fun (sec, subject, name, verdict) ->
            Printf.printf "    %8.3fs  %-18s %-40s %s\n" sec subject name
              verdict)
          slowest
      end
    in
    let report_metrics v =
      (match J.field "counters" v with
      | Some (J.Obj fs) when fs <> [] ->
        Printf.printf "  counters:\n";
        List.iter
          (fun (name, c) ->
            match c with
            | J.Int n -> Printf.printf "    %-40s %d\n" name n
            | _ -> ())
          fs
      | _ -> ());
      (match J.field "gauges" v with
      | Some (J.Obj fs) when fs <> [] ->
        Printf.printf "  gauges:\n";
        List.iter
          (fun (name, g) ->
            Printf.printf "    %-40s value=%d max=%d\n" name (ints "value" g)
              (ints "max" g))
          fs
      | _ -> ());
      match J.field "histograms" v with
      | Some (J.Obj fs) when fs <> [] ->
        Printf.printf "  histograms:\n";
        List.iter
          (fun (name, h) ->
            let count = ints "count" h and sum = ints "sum" h in
            Printf.printf "    %-40s n=%d sum=%d mean=%.1f\n" name count sum
              (if count = 0 then 0.0
               else float_of_int sum /. float_of_int count))
          fs;
        (* Time attribution: duration-valued histograms (the [_us]/
           [_ns]/[_ms] naming convention) as shares of total solver/
           engine time. *)
        let unit_scale name =
          if String.ends_with ~suffix:"_ns" name then 1e-9
          else if String.ends_with ~suffix:"_us" name then 1e-6
          else 1e-3
        in
        let timed =
          List.filter_map
            (fun (name, h) ->
              if Dfv_obs.Metrics.timing_metric name then
                Some
                  ( name,
                    float_of_int (ints "sum" h) *. unit_scale name,
                    ints "count" h )
              else None)
            fs
        in
        let total = List.fold_left (fun a (_, s, _) -> a +. s) 0.0 timed in
        if timed <> [] && total > 0.0 then begin
          Printf.printf "  time attribution:\n";
          List.iter
            (fun (name, sec, n) ->
              Printf.printf "    %-40s %8.3fs over %d samples (%4.1f%%)\n"
                name sec n
                (100.0 *. sec /. total))
            (List.sort (fun (_, a, _) (_, b, _) -> compare b a) timed)
        end
      | _ -> ()
    in
    let report_trace v =
      let evs =
        match J.field "traceEvents" v with Some (J.List l) -> l | _ -> []
      in
      let spans =
        List.filter_map
          (fun e ->
            match (str_field "ph" e, str_field "name" e) with
            | Some "X", Some name ->
              Some
                ( name,
                  Option.value ~default:0.0 (num_field "dur" e),
                  ints "pid" e )
            | _ -> None)
          evs
      in
      let pids =
        List.sort_uniq compare
          (List.filter_map (fun e -> int_field "pid" e) evs)
      in
      Printf.printf "  %d spans across %d process(es)%s, %d events dropped\n"
        (List.length spans) (List.length pids)
        (match pids with
        | [] -> ""
        | _ ->
          Printf.sprintf " (pids %s)"
            (String.concat ", " (List.map string_of_int pids)))
        (ints "dropped" v);
      (* Per-name attribution, insertion order preserved then sorted by
         total time. *)
      let order = ref [] in
      let tbl = Hashtbl.create 16 in
      List.iter
        (fun (name, dur, _) ->
          match Hashtbl.find_opt tbl name with
          | Some (n, total, mx) ->
            Hashtbl.replace tbl name (n + 1, total +. dur, max mx dur)
          | None ->
            order := name :: !order;
            Hashtbl.add tbl name (1, dur, dur))
        spans;
      let by_name =
        List.sort
          (fun (_, (_, a, _)) (_, (_, b, _)) -> compare b a)
          (List.rev_map (fun n -> (n, Hashtbl.find tbl n)) !order)
      in
      if by_name <> [] then begin
        Printf.printf "  time per span name:\n";
        List.iter
          (fun (name, (n, total, mx)) ->
            Printf.printf "    %-40s %9.3fms over %d spans (max %.3fms)\n"
              name (total /. 1e3) n (mx /. 1e3))
          by_name
      end;
      let slowest =
        take top
          (List.sort (fun (_, a, _) (_, b, _) -> compare b a) spans)
      in
      if slowest <> [] then begin
        Printf.printf "  slowest spans:\n";
        List.iter
          (fun (name, dur, pid) ->
            Printf.printf "    %9.3fms  pid %-7d %s\n" (dur /. 1e3) pid name)
          slowest
      end
    in
    let report_coverage v =
      let groups =
        match J.field "groups" v with Some (J.List l) -> l | _ -> []
      in
      let holes = ref [] in
      List.iter
        (fun g ->
          let gname = Option.value ~default:"?" (str_field "name" g) in
          Printf.printf "  %-30s %.1f%%\n" gname
            (100.0 *. Option.value ~default:0.0 (num_field "coverage" g));
          match J.field "points" g with
          | Some (J.List ps) ->
            List.iter
              (fun p ->
                let pname = Option.value ~default:"?" (str_field "name" p) in
                Printf.printf "    %-28s %.1f%% (%d samples)\n" pname
                  (100.0 *. Option.value ~default:0.0 (num_field "coverage" p))
                  (ints "samples" p);
                let at_least = max 1 (ints "at_least" p) in
                match J.field "bins" p with
                | Some (J.List bs) ->
                  List.iter
                    (fun b ->
                      let hits = ints "hits" b in
                      if
                        str_field "kind" b = Some "count" && hits < at_least
                      then
                        holes :=
                          ( at_least - hits,
                            Printf.sprintf "%s/%s/%s" gname pname
                              (Option.value ~default:"?" (str_field "name" b)),
                            hits, at_least )
                          :: !holes)
                    bs
                | _ -> ())
              ps
          | _ -> ())
        groups;
      let holes = List.rev !holes in
      if holes <> [] then begin
        Printf.printf "  %d coverage hole(s); worst:\n" (List.length holes);
        List.iter
          (fun (_, where, hits, need) ->
            Printf.printf "    %-50s %d/%d hits\n" where hits need)
          (take top
             (List.sort
                (fun (a, _, _, _) (b, _, _, _) -> compare b a)
                holes))
      end
      else Printf.printf "  no coverage holes\n"
    in
    let report_serve v =
      (match int_field "requests" v with
      | Some n -> Printf.printf "  %d request(s)\n" n
      | None -> ());
      (match J.field "endpoints" v with
      | Some (J.List eps) when eps <> [] ->
        Printf.printf "  endpoints:\n";
        List.iter
          (fun e ->
            Printf.printf
              "    %-10s %4d requests: %d hits (%.1f%% hit rate), %d \
               misses, %d solves, %d errors, mean %.3fs\n"
              (Option.value ~default:"?" (str_field "op" e))
              (ints "requests" e) (ints "hits" e)
              (100.0 *. Option.value ~default:0.0 (num_field "hit_rate" e))
              (ints "misses" e) (ints "solves" e) (ints "errors" e)
              (Option.value ~default:0.0 (num_field "mean_seconds" e)))
          eps
      | _ -> ());
      (match J.field "cache" v with
      | Some c ->
        let h = ints "hits" c and m = ints "misses" c in
        Printf.printf
          "  cache: %d/%d entries, %d hits / %d misses (%.1f%% hit rate), \
           %d evicted, %d replayed, %d rejected\n"
          (ints "size" c) (ints "capacity" c) h m
          (if h + m = 0 then 0.0
           else 100.0 *. float_of_int h /. float_of_int (h + m))
          (ints "evicted" c) (ints "replayed" c) (ints "rejected" c)
      | None -> ());
      (match num_field "uptime_seconds" v with
      | Some s -> Printf.printf "  uptime %.1fs\n" s
      | None -> ());
      match J.field "log" v with
      | Some (J.List log) when log <> [] ->
        (* Status tally over the request log, then the slowest entries. *)
        let order = ref [] in
        let tally = Hashtbl.create 8 in
        List.iter
          (fun e ->
            let s = Option.value ~default:"?" (str_field "status" e) in
            match Hashtbl.find_opt tally s with
            | Some n -> Hashtbl.replace tally s (n + 1)
            | None ->
              order := s :: !order;
              Hashtbl.add tally s 1)
          log;
        Printf.printf "  request log (%d entries%s):\n" (List.length log)
          (match J.field "log_truncated" v with
          | Some (J.Bool true) -> ", truncated"
          | _ -> "");
        List.iter
          (fun s -> Printf.printf "    %-30s %d\n" s (Hashtbl.find tally s))
          (List.rev !order);
        let slow =
          take top
            (List.sort
               (fun a b ->
                 compare
                   (Option.value ~default:0.0 (num_field "seconds" b))
                   (Option.value ~default:0.0 (num_field "seconds" a)))
               log)
        in
        Printf.printf "  slowest requests:\n";
        List.iter
          (fun e ->
            Printf.printf "    %8.3fs  %-10s %s%s\n"
              (Option.value ~default:0.0 (num_field "seconds" e))
              (Option.value ~default:"?" (str_field "op" e))
              (Option.value ~default:"?" (str_field "status" e))
              (match J.field "cached" e with
              | Some (J.Bool true) -> " (cached)"
              | _ -> ""))
          slow
      | _ -> ()
    in
    let report_generic v =
      match v with
      | J.Obj fields ->
        List.iter
          (fun (name, f) ->
            if name <> "schema" && name <> "version" then
              match f with
              | J.Int n -> Printf.printf "  %-30s %d\n" name n
              | J.Float x -> Printf.printf "  %-30s %g\n" name x
              | J.Bool b -> Printf.printf "  %-30s %b\n" name b
              | J.String s when String.length s <= 120 ->
                Printf.printf "  %-30s %s\n" name s
              | J.String s -> Printf.printf "  %-30s <%d chars>\n" name (String.length s)
              | J.List l -> Printf.printf "  %-30s [%d items]\n" name (List.length l)
              | J.Obj o -> Printf.printf "  %-30s {%d fields}\n" name (List.length o)
              | J.Null -> ())
          fields
      | _ -> ()
    in
    (* A journal is a record stream, not one document: summarize the
       header info and tally the journaled verdicts. *)
    let report_journal file contents =
      match Dfv_par.Journal.inspect file with
      | Error m ->
        Printf.printf "  FAIL %s\n" m;
        false
      | Ok info ->
        Printf.printf "  %d result record(s)%s%s\n"
          info.Dfv_par.Journal.info_records
          (if info.Dfv_par.Journal.info_dropped > 0 then
             Printf.sprintf ", %d duplicates dropped"
               info.Dfv_par.Journal.info_dropped
           else "")
          (if info.Dfv_par.Journal.info_torn then ", torn tail" else "");
        let order = ref [] in
        let tally = Hashtbl.create 8 in
        String.split_on_char '\n' contents
        |> List.iter (fun line ->
               if String.trim line <> "" then
                 match J.parse line with
                 | Ok r when str_field "kind" r = Some "result" -> (
                   let label =
                     match J.field "payload" r with
                     | Some p -> (
                       match (str_field "verdict" p, J.field "verdict" p) with
                       | Some s, _ -> Some s
                       | None, Some vk -> str_field "kind" vk
                       | None, None -> str_field "kind" p)
                     | None -> None
                   in
                   match label with
                   | Some l ->
                     (match Hashtbl.find_opt tally l with
                     | Some n -> Hashtbl.replace tally l (n + 1)
                     | None ->
                       order := l :: !order;
                       Hashtbl.add tally l 1)
                   | None -> ())
                 | _ -> ());
        List.iter
          (fun l -> Printf.printf "    %-30s %d\n" l (Hashtbl.find tally l))
          (List.rev !order);
        true
    in
    let render file =
      let contents =
        let ic = open_in_bin file in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
      in
      let first_line =
        match String.index_opt contents '\n' with
        | Some i -> String.sub contents 0 i
        | None -> contents
      in
      let is_journal =
        match J.parse first_line with
        | Ok v -> (
          match J.envelope_of v with
          | Some ("dfv-journal", _) -> true
          | Some _ | None -> false)
        | Error _ -> false
      in
      if is_journal then begin
        Printf.printf "%s — dfv-journal v1\n" file;
        report_journal file contents
      end
      else
        match J.parse contents with
        | Error m ->
          Printf.printf "%s — FAIL parse error: %s\n" file m;
          false
        | Ok v -> (
          match J.envelope_of v with
          | None ->
            Printf.printf "%s — FAIL missing {schema, version} envelope\n"
              file;
            false
          | Some (schema, version) ->
            Printf.printf "%s — %s v%d\n" file schema version;
            (match schema with
            | "dfv-faultsim" -> report_faultsim v
            | "dfv-metrics" -> report_metrics v
            | "dfv-trace" -> report_trace v
            | "dfv-coverage" -> report_coverage v
            | "dfv-serve" -> report_serve v
            | _ -> report_generic v);
            true)
    in
    let ok =
      List.fold_left
        (fun acc f ->
          let r = render f in
          print_newline ();
          r && acc)
        true files
    in
    if ok then exit_ok else exit_error
  in
  Cmd.v (Cmd.info "report" ~doc ~exits) Term.(const run $ top_arg $ files_arg)

let triage_cmd =
  let doc =
    "Reproduce a failure and bundle the evidence: the failing transaction \
     index, its stimulus, a VCD slice around the failure cycle, and \
     metric/span/coverage snapshots.  For the bundled SEC pairs this runs \
     the verify flow (plant a bug with --bug to force a failure); for \
     memsys it injects the first RTL fault the transactor/scoreboard \
     harness flags.  Exits 1 when a bundle was produced, 0 when the \
     design verified clean."
  in
  let seed_arg =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"N" ~doc:"Fault seed (memsys triage only).")
  in
  let run budget obs report_file seed design bug =
    with_obs obs @@ fun () ->
    match
      Dfv_error.guard (fun () ->
          let bundle =
            if design = "memsys" then begin
              if bug <> "none" then
                failwith
                  "memsys triage injects its own fault; --bug is not \
                   supported";
              Dfv_fault.Suite.memsys_triage ~seed ()
            end
            else begin
              let pair = make_pair design bug in
              let report = Flow.verify ?budget pair in
              Flow.triage_of_report pair report
            end
          in
          match bundle with
          | Some t ->
            Format.printf "%a@." Dfv_obs.Triage.pp t;
            (match report_file with
            | Some file -> Dfv_obs.Triage.write_file file t
            | None -> ());
            exit_cex
          | None ->
            Printf.printf "no failure to triage\n";
            (match report_file with
            | Some file ->
              Dfv_obs.Json.write_file file (no_failure_json design)
            | None -> ());
            exit_ok)
    with
    | Ok code -> code
    | Error e ->
      Printf.eprintf "error: %s\n" (Dfv_error.to_string e);
      Dfv_error.exit_code e
  in
  Cmd.v (Cmd.info "triage" ~doc ~exits)
    Term.(
      const run $ budget_term $ obs_term $ report_arg $ seed_arg $ design_arg
      $ bug_arg)

let () =
  let doc = "design-for-verification flows between system-level models and RTL" in
  let info = Cmd.info "dfv" ~version:"1.0.0" ~doc ~exits in
  let code =
    Cmd.eval'
      (Cmd.group info
         [ list_cmd; audit_cmd; sec_cmd; sim_cmd; verify_cmd; faultsim_cmd;
           serve_cmd; client_cmd; triage_cmd; validate_cmd; report_cmd ])
  in
  (* cmdliner's own cli-error (124) / internal-error (125) codes fold
     into the documented "usage or internal error" code. *)
  exit (if code >= 124 then exit_error else code)
