(* The benchmark harness: one experiment per figure / quantitative claim
   of the paper (see DESIGN.md section 4 for the index).

     dune exec bench/main.exe            -- run every experiment
     dune exec bench/main.exe -- f1 c2   -- run a subset

   The paper has two figures (both qualitative) and a set of in-text
   quantitative claims; each experiment regenerates the corresponding
   rows and states the expected shape next to the measured one. *)

open Dfv_bitvec
open Dfv_rtl
open Dfv_hwir
open Dfv_sec
open Dfv_slm
open Dfv_cosim
open Dfv_designs

let now () = Unix.gettimeofday ()

(* Optional SAT budget for the heavyweight queries (set with `-- --budget N`
   on the command line); lets CI smoke-run the expensive experiments. *)
let budget_opt : Dfv_sat.Solver.budget option ref = ref None

(* Parallel-leg width for par_speedup (set with `-- --jobs N`); defaults
   to 4, the CI runner's vCPU count. *)
let jobs_opt : int ref = ref 4

(* Machine-readable results: experiments append BENCH_<ID>.json next to
   the human-readable output so the perf trajectory is tracked across
   PRs (the CI bench smoke job uploads these as artifacts). *)
let write_bench id fields =
  let open Dfv_obs.Json in
  let path = Printf.sprintf "BENCH_%s.json" (String.uppercase_ascii id) in
  write_file path
    (envelope ~schema:"dfv-bench" ~version:1
       (("experiment", String id) :: fields));
  Printf.printf "wrote %s\n%!" path

let header id title claim =
  Printf.printf "\n==============================================================\n";
  Printf.printf "%s: %s\n" id title;
  Printf.printf "paper: %s\n" claim;
  Printf.printf "--------------------------------------------------------------\n%!"

(* Micro-benchmark helper: bechamel OLS estimate of ns/run per test. *)
let bechamel_table rows =
  let open Bechamel in
  let open Toolkit in
  let test =
    Test.make_grouped ~name:"g"
      (List.map (fun (name, f) -> Test.make ~name (Staged.stage f)) rows)
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  List.filter_map
    (fun (name, _) ->
      match Hashtbl.find_opt results ("g/" ^ name) with
      | Some o -> (
        match Analyze.OLS.estimates o with
        | Some (e :: _) -> Some (name, e)
        | Some [] | None -> None)
      | None -> None)
    rows

(* ---------------------------------------------------------------------- *)
(* F1: Fig. 1 — addition is non-associative in finite precision            *)
(* ---------------------------------------------------------------------- *)

let fig1_module ~first =
  let open Expr in
  {
    (Netlist.empty (if first then "fig1_left" else "fig1_right")) with
    Netlist.inputs =
      [ { Netlist.port_name = "a"; port_width = 8 };
        { Netlist.port_name = "b"; port_width = 8 };
        { Netlist.port_name = "c"; port_width = 8 } ];
    wires =
      [ ( "tmp",
          if first then sig_ "a" +: sig_ "b" else sig_ "b" +: sig_ "c" ) ];
    outputs =
      [ ( "out",
          sext (sig_ "tmp") 9 +: sext (if first then sig_ "c" else sig_ "a") 9
        ) ];
  }

let f1 () =
  header "F1" "Fig. 1: non-associativity of 8-bit addition"
    "(a+b)+c != (b+c)+a through an 8-bit tmp; masked when the SLM uses C ints";
  (* The paper's witness, through the actual RTL simulator. *)
  let run m a b c =
    let sim = Sim.create (Netlist.elaborate m) in
    Bitvec.to_signed_int
      (List.assoc "out"
         (Sim.cycle sim
            [ ("a", Bitvec.create ~width:8 a);
              ("b", Bitvec.create ~width:8 b);
              ("c", Bitvec.create ~width:8 c) ]))
  in
  let left = run (fig1_module ~first:true) 64 64 (-1) in
  let right = run (fig1_module ~first:false) 64 64 (-1) in
  Printf.printf "RTL witness a=b=64, c=-1:  (a+b)+c = %d   (b+c)+a = %d\n" left
    right;
  (* The same computation in a C-int SLM: the overflow is masked. *)
  let module C = Dfv_bitvec.Cint in
  let i8 = C.make C.I8 in
  let c1 = C.add (C.add (i8 64) (i8 64)) (i8 (-1)) in
  let c2 = C.add (C.add (i8 64) (i8 (-1))) (i8 64) in
  Printf.printf "C-int SLM (int arithmetic): (a+b)+c = %d   (b+c)+a = %d  (masked!)\n"
    (C.value c1) (C.value c2);
  (* Exhaustive witness count over all 2^24 inputs (semantics mirrored on
     plain ints for speed; the Bitvec path is checked by the test suite). *)
  let t0 = now () in
  let to_s8 x = if x land 0x80 <> 0 then (x land 0xff) - 256 else x land 0xff in
  let count = ref 0 in
  for a = 0 to 255 do
    for b = 0 to 255 do
      for c = 0 to 255 do
        let tmp1 = to_s8 (a + b) in
        let o1 = tmp1 + to_s8 c in
        let tmp2 = to_s8 (b + c) in
        let o2 = tmp2 + to_s8 a in
        if o1 <> o2 then incr count
      done
    done
  done;
  Printf.printf
    "exhaustive 2^24 sweep: %d diverging inputs (%.1f%%) in %.1fs\n" !count
    (100.0 *. float_of_int !count /. 16777216.0)
    (now () -. t0);
  (* And SEC finds a witness formally, without any sweep. *)
  let t0 = now () in
  match
    Checker.check_rtl_rtl
      ~a:(Netlist.elaborate (fig1_module ~first:true))
      ~b:(Netlist.elaborate (fig1_module ~first:false))
      ~bound:1 ()
  with
  | Checker.Rtl_not_equivalent (cex, _) ->
    let v n = Bitvec.to_signed_int (List.assoc n cex.Checker.inputs_per_cycle.(0)) in
    Printf.printf "SEC witness in %.3fs: a=%d b=%d c=%d -> %d vs %d\n"
      (now () -. t0) (v "a") (v "b") (v "c")
      (Bitvec.to_signed_int cex.Checker.value_a)
      (Bitvec.to_signed_int cex.Checker.value_b)
  | _ -> print_endline "unexpected: SEC found the orders equivalent"

(* ---------------------------------------------------------------------- *)
(* F2: Fig. 2 — timing alignment between SLM and RTL is non-trivial        *)
(* ---------------------------------------------------------------------- *)

let f2 () =
  header "F2" "Fig. 2: SLM/RTL timing alignment"
    "same outputs, different cycles; alignment needs latency-aware transactors";
  (* FIR: fixed latency 1, so the offset is constant. *)
  let fir = Fir.make ~taps:[ 3; -5; 7; 2 ] () in
  let st = Random.State.make [| 5 |] in
  let signal = Array.init 64 (fun _ -> Random.State.int st 256) in
  let _, cycles = Fir.run_rtl_stream fir signal in
  Printf.printf "FIR: 64 untimed SLM outputs vs %d RTL cycles (constant skew)\n"
    cycles;
  (* Memsys: latency depends on the cache state. *)
  let c = Memsys.default_config in
  let requests =
    List.init 24 (fun i ->
        { Memsys.req_tag = i mod 16;
          op = Memsys.Read (if i mod 3 = 0 then 16 * (i / 3) else 0x10) })
  in
  let completions, _ =
    Txn_engine.run ~rtl:(Memsys.rtl_cached c) ~iface:(Memsys.iface c ~ready:true)
      ~requests:(Memsys.to_engine_requests c requests) ()
  in
  (* Latency per completion = completion cycle - issue index (approximate
     issue time; requests issue 1/cycle when accepted). *)
  let sb = Scoreboard.create Scoreboard.Out_of_order in
  let slm = Memsys.Slm.create c in
  List.iteri
    (fun i (tag, data) ->
      Scoreboard.expect sb
        ~tag:(Bitvec.create ~width:c.Memsys.tag_width tag)
        ~cycle:i
        (Bitvec.create ~width:c.Memsys.data_width data))
    (Memsys.Slm.execute_all slm requests);
  List.iter
    (fun (cp : Txn_engine.completion) ->
      Scoreboard.observe sb ~tag:cp.Txn_engine.c_tag ~cycle:cp.Txn_engine.c_cycle
        cp.Txn_engine.c_data)
    completions;
  let r = Scoreboard.report sb in
  let hist = Hashtbl.create 8 in
  List.iter
    (fun l ->
      Hashtbl.replace hist l (1 + Option.value ~default:0 (Hashtbl.find_opt hist l)))
    r.Scoreboard.latencies;
  print_endline "cached-memory latency histogram (cycles from program order):";
  Hashtbl.fold (fun l n acc -> (l, n) :: acc) hist []
  |> List.sort compare
  |> List.iter (fun (l, n) -> Printf.printf "  %3d: %s\n" l (String.make n '#'));
  Printf.printf "alignment: out-of-order scoreboard %s (matched %d/%d)\n"
    (if Scoreboard.ok r then "PASS" else "FAIL")
    r.Scoreboard.matched (List.length requests)

(* ---------------------------------------------------------------------- *)
(* C1: SLM simulates 10x-1000x faster than RTL                             *)
(* ---------------------------------------------------------------------- *)

(* A cycle-approximate SLM of the FIR on the event kernel: one clocked
   thread consuming a sample per clock edge.  It sits between the untimed
   model (no events at all) and the RTL (every register explicit). *)
let kernel_fir_throughput fir signal =
  let k = Kernel.create () in
  let clk = Clock.create k "clk" ~period:10 in
  let input = Fifo.create k "in" ~capacity:16 in
  let output = Fifo.create k "out" ~capacity:(Array.length signal + 4) in
  let n = Array.length signal in
  Kernel.thread k ~name:"stimulus" (fun () ->
      Array.iter (fun s -> Fifo.write input s) signal);
  Kernel.thread k ~name:"fir" (fun () ->
      let taps = Array.of_list fir.Fir.taps in
      let window = Array.make (Array.length taps) 0 in
      for _ = 1 to n do
        Clock.wait_posedge clk;
        let s = Fifo.read input in
        Array.blit window 0 window 1 (Array.length window - 1);
        window.(0) <- s;
        Fifo.write output (Fir.golden_exact fir window)
      done);
  let t0 = now () in
  Kernel.run ~until:(10 * (n + 4)) k;
  let dt = now () -. t0 in
  if Fifo.length output <> n then failwith "kernel fir lost samples";
  dt

(* Regression gate for the compiled HWIR engine (ISSUE 6): the
   normal-form rung must stay >= 5x the tree-walking interpreter on the
   FIR window model, or the bench job fails. *)
let hwir_compiled_min_ratio = 5.0

let c1 () =
  header "C1" "simulation speed across abstraction levels"
    "SLMs simulate typically 10x to 1000x faster than RTL";
  let fir = Fir.make ~taps:[ 3; -5; 7; 2 ] () in
  let st = Random.State.make [| 9 |] in
  let n = 20_000 in
  let signal = Array.init n (fun _ -> Random.State.int st 256) in
  (* Rung 1: untimed native SLM. *)
  let t0 = now () in
  let _ = Fir.filter_signal fir signal in
  let t_native = now () -. t0 in
  (* Rungs 2/2b feed the compiled-vs-interpreted gate, so they are
     measured engine-only: windows are built outside the timed region
     and each rung takes the best of three passes to shed scheduler
     noise. *)
  let windows =
    Array.init n (fun i ->
        Array.init 4 (fun k -> if i - k >= 0 then signal.(i - k) else 0))
  in
  let best_of_3 count run =
    let pass () =
      let t0 = now () in
      for i = 0 to count - 1 do
        ignore (run windows.(i))
      done;
      now () -. t0
    in
    min (pass ()) (min (pass ()) (pass ()))
  in
  (* Rung 2: untimed HWIR-interpreted SLM (window per sample). *)
  let n_interp = 2000 in
  let run_interp =
    Fir.slm_window_runner ~engine:`Interp fir.Fir.slm_exact
      ~width:fir.Fir.width
  in
  let t_interp =
    best_of_3 n_interp run_interp *. float_of_int n /. float_of_int n_interp
  in
  (* Rung 2b: the same HWIR model through the verified normal form onto
     the slot-indexed kernel, prepared once and run per window. *)
  let run_compiled =
    Fir.slm_window_runner ~engine:`Compiled fir.Fir.slm_exact
      ~width:fir.Fir.width
  in
  let t_hwir_compiled = best_of_3 n run_compiled in
  (* Rung 3: cycle-approximate SLM on the event kernel. *)
  let n_kernel = 5000 in
  let t_kernel =
    kernel_fir_throughput fir (Array.sub signal 0 n_kernel)
    *. float_of_int n /. float_of_int n_kernel
  in
  (* Rung 4: cycle-accurate RTL simulation (compiled engine, the
     default since the closure-kernel rewrite). *)
  let n_rtl = 20_000 in
  let t0 = now () in
  let _ = Fir.run_rtl_stream fir (Array.sub signal 0 n_rtl) in
  let t_rtl = (now () -. t0) *. float_of_int n /. float_of_int n_rtl in
  (* Rung 5: the retained tree-walking interpreter, for the trajectory. *)
  let n_rtl_interp = 2000 in
  let sim_interp = Sim.create ~engine:`Interp fir.Fir.rtl in
  let vin = Bitvec.one 1 in
  let t0 = now () in
  for i = 0 to n_rtl_interp - 1 do
    ignore
      (Sim.cycle sim_interp
         [ ("din", Bitvec.create ~width:8 signal.(i)); ("vin", vin) ])
  done;
  let t_rtl_interp =
    (now () -. t0) *. float_of_int n /. float_of_int n_rtl_interp
  in
  let json_rows = ref [] in
  let row name t =
    json_rows :=
      (name, float_of_int n /. t, t_rtl /. t) :: !json_rows;
    Printf.printf "  %-28s %10.0f samples/s   %8.1fx vs RTL\n" name
      (float_of_int n /. t) (t_rtl /. t)
  in
  Printf.printf "FIR filtering, %d samples (normalized):\n" n;
  row "untimed SLM (native)" t_native;
  row "untimed SLM (HWIR interp)" t_interp;
  row "untimed SLM (HWIR compiled)" t_hwir_compiled;
  row "cycle-approx SLM (kernel)" t_kernel;
  row "cycle-accurate RTL" t_rtl;
  row "cycle-accurate RTL (interp)" t_rtl_interp;
  Printf.printf
    "shape check: untimed/RTL = %.0fx interpreted (paper: 10x-1000x), \
     %.0fx compiled\n"
    (t_rtl_interp /. t_native) (t_rtl /. t_native);
  (* Bechamel micro-benchmarks of one transaction at each level. *)
  let window = [| 11; 22; 33; 44 |] in
  let rtl_sim = Sim.create fir.Fir.rtl in
  let rtl_sim_interp = Sim.create ~engine:`Interp fir.Fir.rtl in
  let rows =
    bechamel_table
      [ ("untimed-native", fun () -> ignore (Fir.golden_exact fir window));
        ( "untimed-interp",
          fun () ->
            ignore (Fir.run_slm_window fir.Fir.slm_exact ~width:8 window) );
        ("untimed-compiled", fun () -> ignore (run_compiled window));
        ( "rtl-cycle",
          fun () ->
            ignore
              (Sim.cycle rtl_sim
                 [ ("din", Bitvec.create ~width:8 17); ("vin", Bitvec.one 1) ])
        );
        ( "rtl-cycle-interp",
          fun () ->
            ignore
              (Sim.cycle rtl_sim_interp
                 [ ("din", Bitvec.create ~width:8 17); ("vin", Bitvec.one 1) ])
        ) ]
  in
  print_endline "bechamel (per transaction / per cycle):";
  List.iter (fun (n, ns) -> Printf.printf "  %-18s %12.1f ns\n" n ns) rows;
  let open Dfv_obs.Json in
  write_bench "c1"
    [ ("design", String "fir");
      ("samples", Int n);
      ( "rungs",
        List
          (List.rev_map
             (fun (name, rate, vs_rtl) ->
               Obj
                 [ ("name", String name);
                   ("samples_per_s", Float rate);
                   ("vs_rtl", Float vs_rtl) ])
             !json_rows) );
      ("untimed_over_rtl", Float (t_rtl /. t_native));
      ("untimed_over_rtl_interp", Float (t_rtl_interp /. t_native));
      ("compiled_over_interp", Float (t_rtl_interp /. t_rtl));
      ("hwir_gate", Float hwir_compiled_min_ratio);
      ("hwir_compiled_over_interp", Float (t_interp /. t_hwir_compiled));
      ( "bechamel_ns",
        Obj (List.map (fun (name, ns) -> (name, Float ns)) rows) ) ];
  let hwir_ratio = t_interp /. t_hwir_compiled in
  if hwir_ratio < hwir_compiled_min_ratio then begin
    Printf.printf
      "REGRESSION: compiled HWIR is only %.1fx the interpreter on the FIR \
       window (gate: >= %.0fx)\n"
      hwir_ratio hwir_compiled_min_ratio;
    exit 1
  end;
  Printf.printf
    "shape check: the compiled HWIR rung clears the %.0fx gate over the \
     interpreter (%.1fx).\n"
    hwir_compiled_min_ratio hwir_ratio

(* ---------------------------------------------------------------------- *)
(* C2: SEC finds discrepancies quickly, without block testbenches          *)
(* ---------------------------------------------------------------------- *)

let c2 () =
  header "C2" "SEC vs random simulation: time to first discrepancy"
    "SEC is very effective at quickly finding SLM/RTL discrepancies";
  let open Dfv_core in
  Printf.printf "  %-26s %14s %22s\n" "bug" "SEC time" "random sim (vectors)";
  let trial name pair =
    let t0 = now () in
    let sec_result =
      match Flow.sec pair with
      | Checker.Not_equivalent _ -> Printf.sprintf "cex %.3fs" (now () -. t0)
      | Checker.Equivalent _ -> "missed!"
      | Checker.Unknown _ -> "unknown!"
    in
    let t0 = now () in
    let sim_result =
      match Flow.simulate ~seed:7 ~vectors:200_000 pair with
      | Ok (Flow.Sim_mismatch { vector_index; _ }) ->
        Printf.sprintf "cex %.3fs (%d vectors)" (now () -. t0) (vector_index + 1)
      | Ok (Flow.Sim_clean { vectors }) -> Printf.sprintf ">%d vectors" vectors
      | Error e -> "error: " ^ Dfv_core.Dfv_error.to_string e
    in
    Printf.printf "  %-26s %14s %22s\n%!" name sec_result sim_result
  in
  List.iter
    (fun bug ->
      let t = Alu.make ~bug ~width:8 () in
      trial
        ("alu/" ^ Alu.bug_name bug)
        (Pair.create ~name:"alu" ~slm:t.Alu.slm ~rtl:t.Alu.rtl ~spec:t.Alu.spec))
    Alu.all_bugs;
  let fir = Fir.make ~taps:[ 127; 127; 127; -128 ] () in
  trial "fir/c-style-accumulator"
    (Pair.create ~name:"fir" ~slm:fir.Fir.slm_cstyle ~rtl:fir.Fir.rtl
       ~spec:fir.Fir.spec);
  let good = Conv_image.make ~kernel:Conv_image.sharpen ~shift:2 () in
  let wrap = Conv_image.make ~clamped:false ~kernel:Conv_image.sharpen ~shift:2 () in
  trial "conv/missing-clamp"
    (Pair.create ~name:"conv" ~slm:good.Conv_image.slm_window
       ~rtl:wrap.Conv_image.rtl_window ~spec:good.Conv_image.window_spec);
  (* Corner-case bugs through the composed chain: the off-by-one threshold
     only shows when the convolution output lands exactly on the
     threshold, and the missing brightness clamp only on near-saturated
     pixels that survive the later stages — the needles the paper says
     simulation struggles with. *)
  List.iter
    (fun block ->
      let chain = Image_chain.make ~buggy:block () in
      trial
        ("chain/" ^ Image_chain.block_name block ^ " (corner case)")
        (Pair.create ~name:"chain" ~slm:chain.Image_chain.slm
           ~rtl:chain.Image_chain.rtl_top ~spec:chain.Image_chain.chain_spec))
    [ Image_chain.Threshold; Image_chain.Brightness ];
  (* The sharpest needle: flushed denormals under *realistic* stimulus.
     The paper's point exactly — workloads on well-conditioned data never
     visit the corner the RTL cut, so simulation runs clean for a long
     time while SEC dives straight into it. *)
  let mf = Minifloat.make () in
  let t0 = now () in
  let sec_str =
    match Checker.check_slm_slm ~a:mf.Minifloat.full ~b:mf.Minifloat.lite () with
    | Checker.Not_equivalent _ -> Printf.sprintf "cex %.3fs" (now () -. t0)
    | Checker.Equivalent _ -> "missed!"
    | Checker.Unknown _ -> "unknown!"
  in
  let st = Random.State.make [| 99 |] in
  let t0 = now () in
  let rec hunt i =
    if i >= 200_000 then Printf.sprintf ">%d vectors" 200_000
    else begin
      (* Realistic stimulus: well-scaled operands (exponent >= 3), the
         kind of data an application workload actually produces. *)
      let draw () =
        ((3 + Random.State.int st 13) lsl 3)
        lor Random.State.int st 8
        lor (if Random.State.bool st then 0x80 else 0)
      in
      let a = draw () and b = draw () in
      if
        Minifloat.golden_add ~flush:false a b
        <> Minifloat.golden_add ~flush:true a b
      then Printf.sprintf "cex %.3fs (%d vectors)" (now () -. t0) (i + 1)
      else hunt (i + 1)
    end
  in
  Printf.printf "  %-30s %12s %22s\n" "fpu/flushed-denormals" sec_str (hunt 0);
  print_endline
    "shape check: gross datapath bugs fall to both methods instantly; the\n\
     corner-case bugs need orders of magnitude more random vectors while\n\
     SEC stays in seconds, with a concrete witness either way."

(* ---------------------------------------------------------------------- *)
(* C3: incremental block-level SEC is cheaper and localizes                *)
(* ---------------------------------------------------------------------- *)

let c3 () =
  header "C3" "incremental vs monolithic SEC"
    "incremental runs are much more effective and localize the source quickly";
  let vstr = function
    | Checker.Equivalent _ -> "EQ "
    | Checker.Not_equivalent _ -> "NEQ"
    | Checker.Unknown _ -> "UNK"
  in
  let sec_time ?session slm rtl spec =
    let t0 = now () in
    let verdict = Checker.check_slm_rtl ?budget:!budget_opt ?session ~slm ~rtl ~spec () in
    (now () -. t0, vstr verdict)
  in
  (* Per-block SEC both ways: a fresh substrate per block (the seed
     behaviour) and one shared session across the three blocks — the
     incremental path whose reuse the session counters quantify. *)
  let per_block ?session chain =
    let rows =
      List.map
        (fun b ->
          let t, v =
            sec_time ?session
              (Image_chain.block_slm chain b)
              (Image_chain.block_rtl chain b)
              (Image_chain.block_spec b)
          in
          (b, t, v))
        Image_chain.all_blocks
    in
    (rows, List.fold_left (fun acc (_, t, _) -> acc +. t) 0.0 rows)
  in
  Printf.printf "  %-14s %14s %15s %16s %22s\n" "planted bug" "monolithic"
    "blocks (fresh)" "blocks (session)" "session reuse";
  let fresh_grand = ref 0.0 and shared_grand = ref 0.0 in
  let c3_rows = ref [] in
  List.iter
    (fun buggy ->
      let chain = Image_chain.make ?buggy:(Some buggy) () in
      let mono_t, mono_v =
        sec_time chain.Image_chain.slm chain.Image_chain.rtl_top
          chain.Image_chain.chain_spec
      in
      let _, fresh_total = per_block chain in
      let session = Dfv_sec.Session.create ?budget:!budget_opt () in
      let rows, shared_total = per_block ~session chain in
      fresh_grand := !fresh_grand +. fresh_total;
      shared_grand := !shared_grand +. shared_total;
      let s = Dfv_sec.Session.stats session in
      let reuse_pct =
        let total = s.Dfv_sec.Session.nodes_encoded + s.Dfv_sec.Session.nodes_reused in
        if total = 0 then 0.0
        else
          100.0
          *. float_of_int s.Dfv_sec.Session.nodes_reused
          /. float_of_int total
      in
      let localized =
        List.for_all (fun (b, _, v) -> (v = "NEQ") = (b = buggy)) rows
      in
      c3_rows :=
        Dfv_obs.Json.Obj
          [ ("bug", String (Image_chain.block_name buggy));
            ("monolithic_s", Float mono_t);
            ("blocks_fresh_s", Float fresh_total);
            ("blocks_session_s", Float shared_total);
            ("session_reuse_pct", Float reuse_pct);
            ("localized", Bool localized) ]
        :: !c3_rows;
      Printf.printf
        "  %-14s %8.3fs %s %13.3fs %15.3fs %7.1f%% (%d/%d)  %s\n%!"
        (Image_chain.block_name buggy)
        mono_t mono_v fresh_total shared_total reuse_pct
        s.Dfv_sec.Session.nodes_reused
        (s.Dfv_sec.Session.nodes_encoded + s.Dfv_sec.Session.nodes_reused)
        (if localized then "names the block" else "ambiguous"))
    Image_chain.all_blocks;
  let chain = Image_chain.make () in
  let mono_t, mono_v =
    sec_time chain.Image_chain.slm chain.Image_chain.rtl_top
      chain.Image_chain.chain_spec
  in
  Printf.printf "  %-14s %8.3fs %s %s\n" "(clean)" mono_t mono_v
    "               (baseline)";
  Printf.printf
    "per-block totals across the bug sweep: shared session %.3fs vs fresh %.3fs\n"
    !shared_grand !fresh_grand;
  write_bench "c3"
    [ ("rows", Dfv_obs.Json.List (List.rev !c3_rows));
      ("fresh_total_s", Dfv_obs.Json.Float !fresh_grand);
      ("session_total_s", Dfv_obs.Json.Float !shared_grand) ];
  (* Guard the point of the session layer: sharing the substrate must not
     cost wall-clock vs the seed's fresh-solver-per-block behaviour (the
     slack absorbs timer noise on these millisecond-scale queries). *)
  if !shared_grand > (!fresh_grand *. 1.5) +. 0.1 then begin
    Printf.printf
      "REGRESSION: shared-session per-block SEC (%.3fs) is slower than \
       fresh sessions (%.3fs)\n"
      !shared_grand !fresh_grand;
    exit 1
  end;
  print_endline
    "shape check: per-block runs localize the planted bug by name, reuse a\n\
     nonzero share of the encoding, and sharing one session costs no wall\n\
     clock vs fresh per-block solvers."

(* ---------------------------------------------------------------------- *)
(* C4: int-based SLMs mask overflow; bit-accurate datatypes restore SEC    *)
(* ---------------------------------------------------------------------- *)

let c4 () =
  header "C4" "bit-accuracy vs C-int masking (saturating FIR)"
    "int-based C models mask overflow effects that RTL bit-vectors exhibit";
  Printf.printf "  %-26s %12s %13s %11s\n" "taps" "divergence" "SEC c-style"
    "SEC exact";
  let st = Random.State.make [| 4 |] in
  (* Intermediate saturation (and hence divergence of the wide-int model)
     becomes reachable once the partial sums can exceed the 16-bit
     saturation bound; the ladder crosses that point. *)
  List.iter
    (fun (name, taps) ->
      let fir = Fir.make ~taps () in
      let n = 20_000 in
      let diverging = ref 0 in
      for _ = 1 to n do
        let w = Array.init 4 (fun _ -> Random.State.int st 256) in
        if Fir.golden_exact fir w <> Fir.golden_cstyle fir w then incr diverging
      done;
      let verdict slm =
        match Checker.check_slm_rtl ~slm ~rtl:fir.Fir.rtl ~spec:fir.Fir.spec () with
        | Checker.Equivalent _ -> "EQ"
        | Checker.Not_equivalent _ -> "NEQ"
        | Checker.Unknown _ -> "UNK"
      in
      Printf.printf "  %-26s %10.2f%% %13s %11s\n%!" name
        (100.0 *. float_of_int !diverging /. float_of_int n)
        (verdict fir.Fir.slm_cstyle) (verdict fir.Fir.slm_exact))
    [ ("mild [3;-5;7;2]", [ 3; -5; 7; 2 ]);
      ("medium [64;-64;64;32]", [ 64; -64; 64; 32 ]);
      ("hot [100;-110;120;-90]", [ 100; -110; 120; -90 ]);
      ("max [127;127;127;-128]", [ 127; 127; 127; -128 ]) ];
  print_endline
    "shape check: the bit-accurate model stays EQ at every scale; the C-int\n\
     model crosses from EQ to NEQ once intermediate sums can overflow."

(* ---------------------------------------------------------------------- *)
(* C4b: fault-injection robustness — the verifier catches seeded faults    *)
(* ---------------------------------------------------------------------- *)

let c4f () =
  header "C4F" "fault-injection robustness of the verification flow"
    "every activatable single fault must surface as a counterexample or a \
     justified unknown — never a false equivalence";
  let open Dfv_fault in
  let reports = Suite.run ?budget:!budget_opt () in
  List.iter
    (fun (r : Campaign.report) ->
      Printf.printf
        "  %-18s %3d mutants: %3d detected %3d survived %3d unknown %3d \
         crashed %3d false-eq %3d mislocalized (%.2fs)\n%!"
        r.Campaign.r_subject r.Campaign.r_total r.Campaign.r_detected
        r.Campaign.r_survived r.Campaign.r_unknown r.Campaign.r_crashed
        r.Campaign.r_false_eq r.Campaign.r_mislocalized r.Campaign.r_wall)
    reports;
  let rate, false_eq, pass = Suite.gate reports in
  Printf.printf
    "detection rate %.1f%% (min %.0f%%), %d false equivalents: %s\n"
    (100.0 *. rate)
    (100.0 *. Suite.default_min_rate)
    false_eq
    (if pass then "PASS" else "FAIL");
  print_endline
    "shape check: injected stuck-ats, operator substitutions and bit-flips\n\
     are detected (or justifiably unknown); the prover never certifies a\n\
     detectable fault as equivalent.";
  if not pass then exit 1

(* ---------------------------------------------------------------------- *)
(* PAR: worker-pool speedup, fork vs domains, byte-identical verdicts      *)
(* ---------------------------------------------------------------------- *)

let par_speedup () =
  let open Dfv_fault in
  let jobs = max 2 !jobs_opt in
  let cores = Dfv_par.Pool.cores () in
  header "PAR"
    (Printf.sprintf "fault-campaign wall-clock at %d jobs, fork vs domains"
       jobs)
    "job->seed partitioning keeps verdicts byte-identical at any --jobs \
     and on either executor; domains must never lose to sequential, and \
     any pool must buy real wall-clock on a multicore host";
  (* Canonical verdict transcript: every field except the timings.  The
     two legs must agree byte-for-byte or the pool changed a verdict. *)
  let canon reports =
    reports
    |> List.concat_map (fun (r : Campaign.report) ->
           List.map
             (fun (m : Campaign.mutant_result) ->
               let v =
                 match m.Campaign.verdict with
                 | Campaign.Detected { engine; localized; _ } ->
                   Printf.sprintf "detected(%s,%s)" engine
                     (match localized with
                     | None -> "-"
                     | Some b -> string_of_bool b)
                 | Campaign.Survived _ -> "survived"
                 | Campaign.False_equivalent _ -> "false-equivalent"
                 | Campaign.Unknown { reason; _ } -> "unknown(" ^ reason ^ ")"
                 | Campaign.Crashed e ->
                   "crashed(" ^ Dfv_core.Dfv_error.to_string e ^ ")"
               in
               Printf.sprintf "%s/%s[%s@%s]=%s" r.Campaign.r_subject
                 m.Campaign.m_name m.Campaign.m_class m.Campaign.m_site v)
             r.Campaign.r_results)
    |> String.concat "\n"
  in
  let time_run f =
    let t0 = now () in
    let reports = f () in
    (now () -. t0, reports)
  in
  (* The sequential leg runs first on purpose: it fixes the global
     metric/coverage registry insertion order that the canonical
     transcript (and any telemetry comparison) is read back in. *)
  let seq_s, seq_reports =
    time_run (fun () -> Suite.run ?budget:!budget_opt ~jobs:1 ())
  in
  let seq_canon = canon seq_reports in
  Printf.printf "  seq      %6.2fs\n%!" seq_s;
  let run_seq () = Suite.run ?budget:!budget_opt ~jobs:1 () in
  let run_mode exec () = Suite.run ?budget:!budget_opt ~jobs ~pool:true ~exec () in
  let leg mode exec =
    let s, reports = time_run (run_mode exec) in
    let parity = canon reports = seq_canon in
    let speedup = seq_s /. s in
    Printf.printf "  %-8s %6.2fs   speedup %.2fx on %d core(s), parity %s\n%!"
      mode s speedup cores
      (if parity then "byte-identical" else "MISMATCH");
    (mode, s, speedup, parity, [])
  in
  (* Fork strictly before domains: OCaml 5 forbids Unix.fork in any
     process that has ever spawned a domain, so the fork leg must run
     while the door is still open (sequential lets, not a list literal —
     list elements evaluate right-to-left). *)
  let fork_leg = leg "fork" `Fork in
  (* The domains gate on a 1-core host is a breakeven test with zero
     parallelism margin, and small hosts (burstable VMs) suffer
     multi-second CPU-steal episodes that swamp any single ~30s timing.
     So each domains rep is timed against a sequential rep run
     immediately after it, and the BEST paired ratio is the verdict: a
     genuine regression (the fork pool's ~0.8x on this workload) loses
     in every pair, while scheduler noise only ever makes a pair look
     worse.  All pairs land in the artifact for transparency. *)
  let dom_reps = if cores = 1 then 3 else 1 in
  let dom_pairs = ref [] in
  for rep = 1 to dom_reps do
    let d_s, d_reports = time_run (run_mode `Domains) in
    let parity = canon d_reports = seq_canon in
    let s_s, _ = time_run run_seq in
    let ratio = s_s /. d_s in
    Printf.printf
      "  domains  %6.2fs vs adjacent seq %6.2fs   pair %d/%d: %.2fx, \
       parity %s\n%!"
      d_s s_s rep dom_reps ratio
      (if parity then "byte-identical" else "MISMATCH");
    dom_pairs := (d_s, s_s, ratio, parity) :: !dom_pairs
  done;
  let dom_pairs = List.rev !dom_pairs in
  let best_d, _, best_ratio, _ =
    List.fold_left
      (fun (bd, bs, br, bp) (d, s, r, p) ->
        if r > br then (d, s, r, p) else (bd, bs, br, bp))
      (List.hd dom_pairs) (List.tl dom_pairs)
  in
  let dom_parity = List.for_all (fun (_, _, _, p) -> p) dom_pairs in
  Printf.printf "  domains  best paired speedup %.2fx over %d pair(s)\n%!"
    best_ratio dom_reps;
  let open Dfv_obs.Json in
  let domains_leg =
    ( "domains", best_d, best_ratio, dom_parity,
      List.map
        (fun (d, s, r, p) ->
          Obj
            [ ("seconds", Float d); ("adjacent_seq_seconds", Float s);
              ("speedup", Float r); ("verdict_parity", Bool p) ])
        dom_pairs )
  in
  let legs = [ fork_leg; domains_leg ] in
  write_bench "par_speedup"
    [ ("jobs", Int jobs); ("cores", Int cores); ("seq_seconds", Float seq_s);
      ( "modes",
        List
          (List.map
             (fun (mode, s, speedup, parity, pairs) ->
               Obj
                 ([ ("mode", String mode); ("jobs", Int jobs);
                    ("cores", Int cores); ("seconds", Float s);
                    ("speedup", Float speedup);
                    ("verdict_parity", Bool parity) ]
                 @ if pairs = [] then [] else [ ("pairs", List pairs) ]))
             legs) ) ];
  print_endline
    "shape check: verdicts are a pure function of (campaign seed, mutant\n\
     index), so neither the job count nor the executor changes them; the\n\
     domains executor must at least break even against sequential on any\n\
     host, and both pools must shrink wall-clock given real cores.";
  let parity_failed = ref false in
  List.iter
    (fun (mode, _, _, parity, _) ->
      if not parity then begin
        Printf.printf "REGRESSION: %s verdicts differ from --jobs 1\n" mode;
        parity_failed := true
      end)
    legs;
  if !parity_failed then exit 1;
  let speedup_of m =
    let _, _, sp, _, _ = List.find (fun (mode, _, _, _, _) -> mode = m) legs in
    sp
  in
  let fork_speedup = speedup_of "fork" and dom_speedup = speedup_of "domains" in
  if cores >= 4 && jobs >= 4 then begin
    if fork_speedup < 2.5 then begin
      Printf.printf
        "REGRESSION: fork speedup %.2fx < 2.5x at %d jobs on %d cores\n"
        fork_speedup jobs cores;
      exit 1
    end;
    if dom_speedup < 2.5 then begin
      Printf.printf
        "REGRESSION: domains speedup %.2fx < 2.5x at %d jobs on %d cores\n"
        dom_speedup jobs cores;
      exit 1
    end
  end
  else
    Printf.printf
      "multicore speedup gates skipped (need >= 4 cores and >= 4 jobs; \
       have %d/%d)\n"
      cores jobs;
  (* The flagship number this executor exists for: on a 1-core host the
     fork pool historically lost to sequential (~0.92x); domains must
     at least break even.  0.995 is >= 1.0x within the two-decimal
     resolution the artifact records — anything below it is a real
     in-process scheduling overhead, not timer noise. *)
  if cores = 1 && dom_speedup < 0.995 then begin
    Printf.printf
      "REGRESSION: best paired domains speedup %.2fx < 1.0x against \
       sequential on a 1-core host\n"
      dom_speedup;
    exit 1
  end

(* ---------------------------------------------------------------------- *)
(* JOURNAL: write-ahead journal overhead and resume fidelity               *)
(* ---------------------------------------------------------------------- *)

let journal_overhead () =
  let open Dfv_fault in
  header "JOURNAL" "durable-campaign journal: fsync cost and resume fidelity"
    "durability must be cheap relative to a SAT-bound mutant and must \
     never perturb verdicts";
  (* Raw append throughput: every append is an fsync, the worst case. *)
  let module Journal = Dfv_par.Journal in
  let path = Filename.temp_file "dfv_bench_journal" ".jsonl" in
  Sys.remove path;
  let j =
    match Journal.open_ ~path ~campaign:"bench" with
    | Ok j -> j
    | Error m -> failwith ("journal: " ^ m)
  in
  let n = 500 in
  let payload i =
    let open Dfv_obs.Json in
    Obj
      [ ("name", String (Printf.sprintf "mutant#%d" i));
        ("class", String "stuck-at-0"); ("site", String "y");
        ( "verdict",
          Obj
            [ ("kind", String "detected"); ("engine", String "sec");
              ("seconds", Float 0.123); ("localized", Bool true) ] ) ]
  in
  let t0 = now () in
  for i = 0 to n - 1 do
    Journal.append j ~fp:(Journal.fingerprint (string_of_int i)) (payload i)
  done;
  let append_s = now () -. t0 in
  Journal.close j;
  let replayed =
    match Journal.open_ ~path ~campaign:"bench" with
    | Ok j ->
      let r = Journal.replayed j in
      Journal.close j;
      r
    | Error m -> failwith ("journal reopen: " ^ m)
  in
  Sys.remove path;
  let per_append_us = 1e6 *. append_s /. float_of_int n in
  Printf.printf
    "  %d fsync'd appends in %.3fs (%.0f us/append, %.0f appends/s)\n" n
    append_s per_append_us
    (float_of_int n /. append_s);
  Printf.printf "  reload: %d/%d records replayed\n" replayed n;
  (* End-to-end: a journaled campaign must match an unjournaled one
     verdict-for-verdict, and the fsync tax must stay small against the
     SAT work each record represents. *)
  let canon (r : Campaign.report) =
    List.map
      (fun (m : Campaign.mutant_result) ->
        (m.Campaign.m_name, Campaign.verdict_label m.Campaign.verdict))
      r.Campaign.r_results
  in
  let subject () =
    let t = Dfv_designs.Alu.make ~width:8 () in
    Campaign.Sec_pair
      (Dfv_core.Pair.create ~name:"alu" ~slm:t.Dfv_designs.Alu.slm
         ~rtl:t.Dfv_designs.Alu.rtl ~spec:t.Dfv_designs.Alu.spec)
  in
  let t0 = now () in
  let plain = Campaign.run ?budget:!budget_opt (subject ()) in
  let plain_s = now () -. t0 in
  let jpath = Filename.temp_file "dfv_bench_campaign" ".jsonl" in
  Sys.remove jpath;
  let j =
    match Journal.open_ ~path:jpath ~campaign:"bench-campaign" with
    | Ok j -> j
    | Error m -> failwith ("journal: " ^ m)
  in
  let t0 = now () in
  let journaled = Campaign.run ?budget:!budget_opt ~journal:j (subject ()) in
  let journaled_s = now () -. t0 in
  Journal.close j;
  Sys.remove jpath;
  let parity = canon plain = canon journaled in
  let overhead_pct = 100.0 *. ((journaled_s /. plain_s) -. 1.0) in
  Printf.printf
    "  campaign: plain %.2fs, journaled %.2fs (%+.1f%% wall)\n" plain_s
    journaled_s overhead_pct;
  Printf.printf "  verdict parity: %s\n%!"
    (if parity then "byte-identical" else "MISMATCH");
  let open Dfv_obs.Json in
  write_bench "journal_overhead"
    [ ("appends", Int n); ("append_seconds", Float append_s);
      ("append_us", Float per_append_us); ("replayed", Int replayed);
      ("campaign_plain_seconds", Float plain_s);
      ("campaign_journaled_seconds", Float journaled_s);
      ("overhead_pct", Float overhead_pct); ("verdict_parity", Bool parity) ];
  if replayed <> n then begin
    Printf.printf "REGRESSION: %d of %d records lost on reload\n" (n - replayed)
      n;
    exit 1
  end;
  if not parity then begin
    print_endline "REGRESSION: journaling changed campaign verdicts";
    exit 1
  end

(* ---------------------------------------------------------------------- *)
(* C5: floating-point corner cases; constraints restore equivalence        *)
(* ---------------------------------------------------------------------- *)

let c5 () =
  header "C5" "floating point: IEEE SLM vs corner-cutting RTL"
    "non-IEEE RTL diverges on corner cases; constrain the inputs for SEC";
  let open Dfv_softfloat in
  let st = Random.State.make [| 21 |] in
  let rand32 () =
    (Random.State.bits st land 0xFFFF) lor ((Random.State.bits st land 0xFFFF) lsl 16)
  in
  let n = 200_000 in
  let classes = Hashtbl.create 8 in
  let total = ref 0 in
  for _ = 1 to n do
    let a = rand32 () and b = rand32 () in
    List.iter
      (fun (opname, op) ->
        let i = op F32.ieee a b and r = op F32.rtl_lite a b in
        if not (F32.equal_numeric i r) then begin
          incr total;
          let k =
            if F32.is_nan a || F32.is_nan b then opname ^ "/nan-input"
            else if F32.is_infinity a || F32.is_infinity b then opname ^ "/inf-input"
            else if F32.is_denormal a || F32.is_denormal b then
              opname ^ "/denormal-input"
            else opname ^ "/overflow-or-underflow"
          in
          Hashtbl.replace classes k
            (1 + Option.value ~default:0 (Hashtbl.find_opt classes k))
        end)
      [ ("add", F32.add); ("mul", F32.mul) ]
  done;
  Printf.printf "binary32, %d random pairs: %d divergences\n" n !total;
  let class_rows =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) classes [] |> List.sort compare
  in
  List.iter (fun (k, v) -> Printf.printf "  %-28s %d\n" k v) class_rows;
  let mf = Minifloat.make () in
  let t0 = now () in
  let unconstrained_verdict, unconstrained_t =
    match Checker.check_slm_slm ~a:mf.Minifloat.full ~b:mf.Minifloat.lite () with
    | Checker.Not_equivalent _ ->
      let dt = now () -. t0 in
      Printf.printf "minifloat SEC unconstrained: NOT EQUIVALENT (%.2fs)\n" dt;
      ("NEQ", dt)
    | Checker.Equivalent _ ->
      print_endline "unexpected EQ";
      ("EQ", now () -. t0)
    | Checker.Unknown _ ->
      print_endline "unexpected UNKNOWN";
      ("UNK", now () -. t0)
  in
  let t0 = now () in
  let constrained_verdict, constrained_t =
    match
      Checker.check_slm_slm ~a:mf.Minifloat.full ~b:mf.Minifloat.lite
        ~constraints:mf.Minifloat.safe_constraints ()
    with
    | Checker.Equivalent _ ->
      let dt = now () -. t0 in
      Printf.printf "minifloat SEC with input constraints: EQUIVALENT (%.2fs)\n"
        dt;
      ("EQ", dt)
    | Checker.Not_equivalent _ ->
      print_endline "unexpected NEQ";
      ("NEQ", now () -. t0)
    | Checker.Unknown _ ->
      print_endline "unexpected UNKNOWN";
      ("UNK", now () -. t0)
  in
  let open Dfv_obs.Json in
  write_bench "c5"
    [ ("random_pairs", Int n);
      ("divergences", Int !total);
      ( "classes",
        Obj (List.map (fun (k, v) -> (k, Int v)) class_rows) );
      ( "minifloat_sec",
        Obj
          [ ("unconstrained", String unconstrained_verdict);
            ("unconstrained_s", Float unconstrained_t);
            ("constrained", String constrained_verdict);
            ("constrained_s", Float constrained_t) ] ) ]

(* ---------------------------------------------------------------------- *)
(* C6: model conditioning gates static analyzability                       *)
(* ---------------------------------------------------------------------- *)

let c6 () =
  header "C6" "model conditioning (Section 4.3 guidelines)"
    "conditioned SLMs admit static analysis (SEC/synthesis); others do not";
  let open Ast in
  let gcd = Gcd.make ~width:4 in
  let unconditioned_gcd =
    {
      gcd.Gcd.slm with
      funcs =
        List.map
          (fun f ->
            {
              f with
              body =
                List.map
                  (function
                    | Bounded_while { cond; body; _ } -> While (cond, body)
                    | st -> st)
                  f.body;
            })
          gcd.Gcd.slm.funcs;
    }
  in
  let alloc_model =
    {
      funcs =
        [ {
            fname = "f";
            params = [ ("n", uint 8) ];
            ret = uint 8;
            locals = [];
            body =
              [ Alloc { var = "buf"; elem = uint 8; size = var "n" };
                Extern_call ("memset", [ var "n" ]);
                ret (var "n") ];
          } ];
      entry = "f";
    }
  in
  let fir = Fir.make ~taps:[ 3; -5; 7; 2 ] () in
  let mf = Minifloat.make () in
  Printf.printf "  %-28s %10s %12s %10s\n" "model" "violations" "elaborates"
    "SEC-ready";
  List.iter
    (fun (name, p) ->
      let blocking =
        List.filter (fun v -> not (Guideline.is_advisory v)) (Guideline.check p)
      in
      let elaborates =
        match Elab.elaborate p ~g:(Dfv_aig.Aig.create ()) with
        | _ -> true
        | exception Elab.Not_synthesizable _ -> false
      in
      Printf.printf "  %-28s %10d %12s %10s\n" name (List.length blocking)
        (if elaborates then "yes" else "NO")
        (if elaborates && blocking = [] then "yes" else "NO"))
    [ ("gcd (bounded loop)", gcd.Gcd.slm);
      ("gcd (while loop)", unconditioned_gcd);
      ("fir (exact)", fir.Fir.slm_exact);
      ("fir (c-style)", fir.Fir.slm_cstyle);
      ("minifloat adder", mf.Minifloat.full);
      ("malloc + extern model", alloc_model) ];
  print_endline
    "shape check: exactly the guideline-conditioned models elaborate; the\n\
     unconditioned ones still *run* (interpreter) but block formal tools.";
  (* And the lint pinpoints each guideline by name. *)
  List.iter
    (fun v -> Format.printf "  lint: %a@." Guideline.pp_violation v)
    (Guideline.check alloc_model);
  (* The other payoff of conditioning (Section 4.3): behavioral
     synthesis.  Generate RTL from the conditioned gcd and prove it. *)
  let module Behsyn = Dfv_behsyn.Behsyn in
  let t0 = now () in
  let synth = Netlist.elaborate (Behsyn.synthesize gcd.Gcd.slm) in
  (match
     Checker.check_slm_rtl ~slm:gcd.Gcd.slm ~rtl:synth
       ~spec:(Behsyn.spec gcd.Gcd.slm) ()
   with
  | Checker.Equivalent _ ->
    Printf.printf
      "behavioral synthesis: conditioned gcd -> FSM RTL, SEC-proved in %.2fs\n"
      (now () -. t0)
  | Checker.Not_equivalent _ | Checker.Unknown _ -> print_endline "synthesis bug?!")

(* ---------------------------------------------------------------------- *)
(* C7: variable latency / out-of-order completion vs comparison discipline *)
(* ---------------------------------------------------------------------- *)

let c7 () =
  header "C7" "latency variability and scoreboard policies (memsys)"
    "stalls/caches break cycle-accurate comparison; OOO needs tagged transactors";
  let c = Memsys.default_config in
  let run_mix name locality nreq =
    let st = Random.State.make [| locality; nreq |] in
    let requests =
      List.init nreq (fun i ->
          let addr =
            if Random.State.int st 100 < locality then Random.State.int st 4
            else Random.State.int st 256
          in
          if i < 4 then { Memsys.req_tag = i mod 16; op = Memsys.Write (addr, i * 7) }
          else { Memsys.req_tag = i mod 16; op = Memsys.Read addr })
    in
    let completions, cycles =
      Txn_engine.run ~rtl:(Memsys.rtl_cached c)
        ~iface:(Memsys.iface c ~ready:true)
        ~requests:(Memsys.to_engine_requests c requests) ()
    in
    (* Reorder metric: inversions — request pairs issued in one order but
       completed in the other (first completion per tag). *)
    let completion_pos = Hashtbl.create 64 in
    List.iteri
      (fun pos (cp : Txn_engine.completion) ->
        let t = Bitvec.to_int cp.Txn_engine.c_tag in
        if not (Hashtbl.mem completion_pos t) then
          Hashtbl.replace completion_pos t pos)
      completions;
    let inversions = ref 0 in
    List.iteri
      (fun i ri ->
        List.iteri
          (fun j rj ->
            if i < j && i < 16 && j < 16 then begin
              match
                ( Hashtbl.find_opt completion_pos ri.Memsys.req_tag,
                  Hashtbl.find_opt completion_pos rj.Memsys.req_tag )
              with
              | Some pi, Some pj when pi > pj -> incr inversions
              | _ -> ()
            end)
          requests)
      requests;
    (* Scoreboard verdicts. *)
    let slm = Memsys.Slm.create c in
    let golden = Memsys.Slm.execute_all slm requests in
    let policy_ok policy uses_tag =
      let sb = Scoreboard.create policy in
      List.iteri
        (fun i (tag, data) ->
          let tag =
            if uses_tag then Some (Bitvec.create ~width:c.Memsys.tag_width tag)
            else None
          in
          Scoreboard.expect ?tag sb ~cycle:i
            (Bitvec.create ~width:c.Memsys.data_width data))
        golden;
      List.iter
        (fun (cp : Txn_engine.completion) ->
          let tag = if uses_tag then Some cp.Txn_engine.c_tag else None in
          Scoreboard.observe ?tag sb ~cycle:cp.Txn_engine.c_cycle
            cp.Txn_engine.c_data)
        completions;
      Scoreboard.ok (Scoreboard.report sb)
    in
    Printf.printf "  %-18s %7d %8d %12s %10s %12s\n%!" name cycles !inversions
      (if policy_ok Scoreboard.Exact_cycle false then "PASS" else "FAIL")
      (if policy_ok Scoreboard.In_order false then "PASS" else "FAIL")
      (if policy_ok Scoreboard.Out_of_order true then "PASS" else "FAIL")
  in
  Printf.printf "  %-18s %7s %8s %12s %10s %12s\n" "mix" "cycles" "invrsns"
    "exact-cycle" "in-order" "out-of-order";
  run_mix "hot (95% local)" 95 16;
  run_mix "warm (60% local)" 60 16;
  run_mix "cold (10% local)" 10 16;
  print_endline
    "shape check: the tagged (out-of-order) policy is the only one that\n\
     accepts every mix; in-order fails once misses are overtaken.";
  (* The fixed-latency memory passes even the exact-cycle policy if the
     expectation accounts for the constant pipeline delay. *)
  let requests =
    List.init 8 (fun i -> { Memsys.req_tag = i; op = Memsys.Read i })
  in
  let completions, _ =
    Txn_engine.run ~rtl:(Memsys.rtl_simple c) ~iface:(Memsys.iface c ~ready:false)
      ~requests:(Memsys.to_engine_requests c requests) ()
  in
  let sb = Scoreboard.create Scoreboard.Exact_cycle in
  let slm = Memsys.Slm.create c in
  List.iteri
    (fun i (_, data) ->
      Scoreboard.expect sb ~cycle:(i + 3)
        (Bitvec.create ~width:c.Memsys.data_width data))
    (Memsys.Slm.execute_all slm requests);
  List.iter
    (fun (cp : Txn_engine.completion) ->
      Scoreboard.observe sb ~cycle:cp.Txn_engine.c_cycle cp.Txn_engine.c_data)
    completions;
  Printf.printf
    "fixed-latency memory + constant-skew expectation: exact-cycle %s\n"
    (if Scoreboard.ok (Scoreboard.report sb) then "PASS" else "FAIL")

(* ---------------------------------------------------------------------- *)
(* C8: consistent partitioning enables SLM/RTL plug-and-play               *)
(* ---------------------------------------------------------------------- *)

let c8 () =
  header "C8" "plug-and-play co-simulation (partitioned pipeline)"
    "consistent partitioning allows swapping SLM and RTL blocks freely";
  let chain = Image_chain.make () in
  let st = Random.State.make [| 77 |] in
  let pixels =
    Array.init 4096 (fun _ -> Bitvec.create ~width:8 (Random.State.int st 256))
  in
  let slm_b = Image_chain.slm_stage chain Image_chain.Brightness in
  let slm_t = Image_chain.slm_stage chain Image_chain.Threshold in
  let rtl_b =
    Stream.rtl_stage ~name:"brightness-rtl" ~rtl:chain.Image_chain.rtl_brightness
      ~in_port:"p" ~out_port:"q" ~latency:0 ()
  in
  let rtl_t =
    Stream.rtl_stage ~name:"threshold-rtl" ~rtl:chain.Image_chain.rtl_threshold
      ~in_port:"p" ~out_port:"q" ~latency:0 ()
  in
  let configs =
    [ ("SLM | SLM", [ slm_b; slm_t ]);
      ("RTL | SLM", [ rtl_b; slm_t ]);
      ("SLM | RTL", [ slm_b; rtl_t ]);
      ("RTL | RTL", [ rtl_b; rtl_t ]) ]
  in
  let reference = ref [||] in
  Printf.printf "  %-10s %10s %14s %10s\n" "pipeline" "rtl-cycles" "wall" "output";
  List.iter
    (fun (name, stages) ->
      let t0 = now () in
      let out, stats = Stream.run_pipeline stages pixels in
      let dt = now () -. t0 in
      let cycles =
        List.fold_left (fun acc s -> acc + s.Stream.cycles) 0 stats
      in
      if !reference = [||] then reference := out;
      Printf.printf "  %-10s %10d %12.1fms %10s\n%!" name cycles (1000.0 *. dt)
        (if Array.for_all2 Bitvec.equal !reference out then "identical"
         else "DIFFERS");
      ())
    configs;
  print_endline
    "shape check: every mix produces identical output; each swapped-in RTL\n\
     block adds simulation cost (the cosim price of detail)."

(* ---------------------------------------------------------------------- *)
(* C5O: observability overhead — spans/metrics/coverage must be cheap      *)
(* ---------------------------------------------------------------------- *)

let c5o () =
  header "C5O" "observability overhead (spans + metrics + coverage)"
    "instrumentation must cost ~nothing when the sinks are off and stay \
     under 5% with them on";
  (* The C3-style workload, which crosses every instrumented layer: a
     shared-session per-block SEC sweep (sat.solve spans, solver counter
     deltas, sec.frame histograms) plus a constrained-random cosimulation
     (Sim.cycle counters, SLM kernel deltas, stimulus covergroups). *)
  let workload () =
    let chain = Image_chain.make () in
    let session = Dfv_sec.Session.create ?budget:!budget_opt () in
    List.iter
      (fun b ->
        ignore
          (Checker.check_slm_rtl ?budget:!budget_opt ~session
             ~slm:(Image_chain.block_slm chain b)
             ~rtl:(Image_chain.block_rtl chain b)
             ~spec:(Image_chain.block_spec b) ()))
      Image_chain.all_blocks;
    let t = Alu.make ~width:8 () in
    let pair =
      Dfv_core.Pair.create ~name:"alu" ~slm:t.Alu.slm ~rtl:t.Alu.rtl
        ~spec:t.Alu.spec
    in
    ignore (Dfv_core.Flow.simulate ~seed:5 ~vectors:400 pair)
  in
  let time_min f =
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = now () in
      f ();
      best := min !best (now () -. t0)
    done;
    !best
  in
  workload () (* warm-up so neither configuration pays first-run costs *);
  Dfv_obs.Trace.disable ();
  Dfv_obs.Coverage.disable ();
  let t_off = time_min workload in
  Dfv_obs.Trace.enable ();
  Dfv_obs.Coverage.enable ();
  let t_on = time_min workload in
  let span_events = List.length (Dfv_obs.Trace.events ()) in
  Dfv_obs.Trace.disable ();
  Dfv_obs.Coverage.disable ();
  Printf.printf
    "  sinks off: %.3fs   sinks on: %.3fs (%d span events)   overhead %+.1f%%\n"
    t_off t_on span_events
    (100.0 *. (t_on -. t_off) /. t_off);
  (* The acceptance gate: <5% with sinks on (the additive slack absorbs
     timer noise on sub-second runs).  The sinks-off run shares the run
     with the seed's uninstrumented behaviour by construction: every
     span/coverage entry point is a branch-and-return when disabled. *)
  if t_on > (t_off *. 1.05) +. 0.05 then begin
    Printf.printf
      "REGRESSION: instrumented run (%.3fs) exceeds 5%% overhead over the \
       uninstrumented baseline (%.3fs)\n"
      t_on t_off;
    exit 1
  end;
  print_endline
    "shape check: the instrumented run records every span event yet stays\n\
     within noise of the sinks-off baseline; disabled sinks reduce every\n\
     instrumentation site to a branch.";
  (* --- pooled shipping: parity and overhead across --jobs -------------- *)
  (* The fork pool ships each worker's metric/trace/coverage deltas back
     over the result pipe and merges them in the parent.  Three gates:
     (1) a --jobs 4 campaign's merged trace carries spans from at least
     2 distinct worker pids; (2) its merged metrics and coverage
     snapshots equal the --jobs 1 run's byte for byte once
     duration-valued fields are stripped; (3) shipping keeps the pooled
     instrumented run inside the same 5% envelope. *)
  let campaign jobs =
    let t = Alu.make ~width:8 () in
    let pair =
      Dfv_core.Pair.create ~name:"alu" ~slm:t.Alu.slm ~rtl:t.Alu.rtl
        ~spec:t.Alu.spec
    in
    ignore
      (Dfv_fault.Campaign.run ?budget:!budget_opt ~seed:0 ~jobs ~pool:true
         ~max_rtl_faults:8 ~max_slm_faults:4
         (Dfv_fault.Campaign.Sec_pair pair))
  in
  let snapshots jobs =
    Dfv_obs.Metrics.reset ();
    Dfv_obs.Trace.enable ();
    Dfv_obs.Coverage.enable ();
    Dfv_obs.Coverage.reset ();
    campaign jobs;
    let m = Dfv_obs.Metrics.strip_timing (Dfv_obs.Metrics.snapshot ()) in
    let c = Dfv_obs.Coverage.snapshot () in
    let trace = Dfv_obs.Trace.to_json () in
    Dfv_obs.Trace.disable ();
    Dfv_obs.Coverage.disable ();
    (Dfv_obs.Json.to_string m, Dfv_obs.Json.to_string c, trace)
  in
  let m1, c1, _ = snapshots 1 in
  let m4, c4, trace4 = snapshots 4 in
  let worker_pids =
    match Dfv_obs.Json.field "traceEvents" trace4 with
    | Some (Dfv_obs.Json.List evs) ->
      let self = Unix.getpid () in
      List.sort_uniq compare
        (List.filter_map
           (fun e ->
             match Dfv_obs.Json.field "pid" e with
             | Some (Dfv_obs.Json.Int p) when p <> self -> Some p
             | _ -> None)
           evs)
    | _ -> []
  in
  Printf.printf
    "  pooled --jobs 4: %d worker pid(s) in the merged trace; metrics \
     parity %s; coverage parity %s\n"
    (List.length worker_pids)
    (if m1 = m4 then "ok" else "BROKEN")
    (if c1 = c4 then "ok" else "BROKEN");
  if List.length worker_pids < 2 then begin
    Printf.printf
      "REGRESSION: merged --jobs 4 trace has spans from %d worker \
       process(es) (gate: >= 2)\n"
      (List.length worker_pids);
    exit 1
  end;
  if m1 <> m4 then begin
    Printf.printf
      "REGRESSION: merged --jobs 4 metrics snapshot differs from the \
       --jobs 1 run's (timing fields excluded)\n\
      \  jobs=1: %s\n\
      \  jobs=4: %s\n"
      m1 m4;
    exit 1
  end;
  if c1 <> c4 then begin
    Printf.printf
      "REGRESSION: merged --jobs 4 coverage snapshot differs from the \
       --jobs 1 run's\n";
    exit 1
  end;
  let time_pooled sinks =
    let best = ref infinity in
    for _ = 1 to 3 do
      if sinks then begin
        Dfv_obs.Trace.enable ();
        Dfv_obs.Coverage.enable ()
      end;
      let t0 = now () in
      campaign 4;
      best := min !best (now () -. t0);
      Dfv_obs.Trace.disable ();
      Dfv_obs.Coverage.disable ()
    done;
    !best
  in
  let tp_off = time_pooled false in
  let tp_on = time_pooled true in
  Printf.printf
    "  pooled sinks off: %.3fs   sinks on (shipping): %.3fs   overhead \
     %+.1f%%\n"
    tp_off tp_on
    (100.0 *. (tp_on -. tp_off) /. tp_off);
  if tp_on > (tp_off *. 1.05) +. 0.05 then begin
    Printf.printf
      "REGRESSION: pooled instrumented run (%.3fs) exceeds 5%% overhead \
       over the pooled uninstrumented baseline (%.3fs)\n"
      tp_on tp_off;
    exit 1
  end;
  print_endline
    "shape check: worker telemetry merges into one multi-pid timeline, the\n\
     sharded snapshots reproduce the sequential run's, and shipping the\n\
     deltas costs no more than the sinks themselves."

(* ---------------------------------------------------------------------- *)
(* SIMT: compiled vs interpreted RTL simulation throughput                 *)
(* ---------------------------------------------------------------------- *)

(* Regression gate for the compiled engine (ISSUE 4): compiled must stay
   >= 5x the interpreter on FIR, or the bench job fails.  The measured
   target of the PR itself is >= 10x on FIR and memsys. *)
let sim_throughput_min_ratio = 5.0

let sim_throughput () =
  header "SIMT" "RTL simulation throughput: compiled kernel vs interpreter"
    "compiled-code simulation is the standard answer to interpreter-bound \
     RTL rungs (Strauch, AOC C-models)";
  (* Stimulus is precomputed per port (a 256-entry random table) so both
     engines pay the same negligible driver cost. *)
  let make_inputs st (design : Netlist.elaborated) =
    let table =
      List.map
        (fun p ->
          ( p.Netlist.port_name,
            Array.init 256 (fun _ ->
                Bitvec.random st ~width:p.Netlist.port_width) ))
        design.Netlist.e_inputs
    in
    fun i -> List.map (fun (name, arr) -> (name, arr.(i land 255))) table
  in
  let throughput design inputs ~cycles engine =
    let sim = Sim.create ~engine design in
    let t0 = now () in
    for i = 0 to cycles - 1 do
      ignore (Sim.cycle sim (inputs i))
    done;
    float_of_int cycles /. (now () -. t0)
  in
  let st = Random.State.make [| 13 |] in
  let fir = Fir.make ~taps:[ 3; -5; 7; 2 ] () in
  let designs =
    [ ("fir", fir.Fir.rtl, 400_000, 20_000);
      (* "memsys" is the cached memory system — the design C7/C8/F2
         actually drive; the fixed-latency pipe is kept as context (it
         has almost no combinational logic, so the compiled engine's
         advantage is smallest there). *)
      ("memsys", Memsys.rtl_cached Memsys.default_config, 100_000, 5_000);
      ("memsys_simple", Memsys.rtl_simple Memsys.default_config, 100_000, 10_000) ]
  in
  Printf.printf "  %-16s %16s %16s %10s\n" "design" "compiled cyc/s"
    "interp cyc/s" "speedup";
  let rows =
    List.map
      (fun (name, design, n_compiled, n_interp) ->
        let inputs = make_inputs st design in
        (* Warm both engines once so neither pays first-touch costs. *)
        ignore (throughput design inputs ~cycles:100 `Compiled);
        ignore (throughput design inputs ~cycles:100 `Interp);
        let compiled = throughput design inputs ~cycles:n_compiled `Compiled in
        let interp = throughput design inputs ~cycles:n_interp `Interp in
        let ratio = compiled /. interp in
        Printf.printf "  %-16s %16.0f %16.0f %9.1fx\n%!" name compiled interp
          ratio;
        (name, compiled, interp, ratio))
      designs
  in
  let open Dfv_obs.Json in
  write_bench "sim_throughput"
    [ ("min_ratio_gate", Float sim_throughput_min_ratio);
      ( "designs",
        List
          (List.map
             (fun (name, compiled, interp, ratio) ->
               Obj
                 [ ("design", String name);
                   ("compiled_cycles_per_s", Float compiled);
                   ("interp_cycles_per_s", Float interp);
                   ("speedup", Float ratio) ])
             rows) ) ];
  let _, _, _, fir_ratio = List.hd rows in
  if fir_ratio < sim_throughput_min_ratio then begin
    Printf.printf
      "REGRESSION: compiled engine is only %.1fx the interpreter on FIR \
       (gate: >= %.0fx)\n"
      fir_ratio sim_throughput_min_ratio;
    exit 1
  end;
  Printf.printf
    "shape check: the compiled kernel clears the %.0fx gate on FIR and the\n\
     speedup holds across the memory-system designs.\n"
    sim_throughput_min_ratio

(* ---------------------------------------------------------------------- *)
(* SERVE_CACHE: the dfv serve daemon answers repeats from cache            *)
(* ---------------------------------------------------------------------- *)

(* Acceptance gate for the serve daemon (ISSUE 10): a repeated SEC
   request answered from the content-addressed cache must come back at
   least 10x faster than the cold solve, with a byte-identical verdict
   (timing fields excluded — they record the original solve). *)
let serve_cache_min_ratio = 10.0

let serve_cache () =
  header "SERVE_CACHE" "dfv serve: cached SEC requests vs the cold solve"
    "a verification service keyed on structural fingerprints answers \
     repeated questions from cache at interactive latency";
  let module Protocol = Dfv_serve.Protocol in
  let module Server = Dfv_serve.Server in
  let module Client = Dfv_serve.Client in
  let module Portfolio = Dfv_par.Portfolio in
  let chain = Image_chain.make () in
  let pair =
    Dfv_core.Pair.create ~name:"chain" ~slm:chain.Image_chain.slm
      ~rtl:chain.Image_chain.rtl_top ~spec:chain.Image_chain.chain_spec
  in
  (* Cold baseline: the single-shot CLI path, one full solve. *)
  let t0 = now () in
  let cold_verdict = Dfv_core.Flow.sec ?budget:!budget_opt pair in
  let cold_s = now () -. t0 in
  let cold_wire = Portfolio.slm_wire_of_verdict cold_verdict in
  Printf.printf "  cold solve (single-shot CLI path): %.3fs\n%!" cold_s;
  (* The daemon, forked on a private socket.  This experiment forks, so
     it must not follow a domains-spawning experiment (par_speedup) in
     the same invocation — both are off the default list and CI runs
     them as separate processes. *)
  let dir = Filename.temp_file "dfv_bench_serve" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let socket = Filename.concat dir "s.sock" in
  let resolve ~design ~bug =
    if design = "chain" && bug = "none" then Ok pair
    else Error (Printf.sprintf "unknown %s/%s" design bug)
  in
  let pid =
    match Unix.fork () with
    | 0 ->
      let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
      Unix.dup2 devnull Unix.stdout;
      Unix.dup2 devnull Unix.stderr;
      Unix.close devnull;
      Dfv_par.Pool.reset_stop ();
      let cfg =
        { (Server.default_config ~socket) with Server.capacity = 16; jobs = 2 }
      in
      let code = try Server.run ~resolve cfg with _ -> 3 in
      Unix._exit code
    | pid -> pid
  in
  let c =
    match Client.connect ~retries:100 ~delay:0.05 socket with
    | Ok c -> c
    | Error m -> failwith ("serve_cache connect: " ^ m)
  in
  let op =
    Protocol.Sec
      { design = "chain"; bug = "none"; budget = !budget_opt }
  in
  let call () =
    let t0 = now () in
    match Client.call c op with
    | Ok r -> (r, now () -. t0)
    | Error m -> failwith ("serve_cache call: " ^ m)
  in
  (* First request: a miss — the daemon pays one solve. *)
  let first, first_s = call () in
  if first.Protocol.cached then failwith "first request must be a cache miss";
  Printf.printf "  first request (daemon miss + solve): %.3fs round-trip\n%!"
    first_s;
  (* Repeats: every one must be a hit; the mean round-trip is the
     latency a client actually sees. *)
  let n = 20 in
  let times =
    List.init n (fun _ ->
        let r, dt = call () in
        if not r.Protocol.cached then failwith "repeat was not served from cache";
        dt)
  in
  let mean_s = List.fold_left ( +. ) 0.0 times /. float_of_int n in
  let min_s = List.fold_left min infinity times in
  let speedup = cold_s /. mean_s in
  Printf.printf
    "  %d cached repeats: mean %.4fs, min %.4fs round-trip   speedup %.0fx \
     vs cold\n%!"
    n mean_s min_s speedup;
  (* Verdict parity: the served payload must equal the cold solve's wire
     form byte for byte once the timing fields (which record the
     original solve) are zeroed. *)
  let strip_stats s =
    { s with Checker.frame_seconds = []; wall_seconds = 0.0 }
  in
  let strip = function
    | Portfolio.W_equivalent s -> Portfolio.W_equivalent (strip_stats s)
    | Portfolio.W_not_equivalent (p, s) ->
      Portfolio.W_not_equivalent (p, strip_stats s)
    | Portfolio.W_unknown (r, s) -> Portfolio.W_unknown (r, strip_stats s)
  in
  let served_wire =
    match first.Protocol.outcome with
    | Ok (Protocol.R_sec w) -> w
    | Ok _ -> failwith "sec request answered with a non-sec payload"
    | Error e -> failwith ("serve_cache: " ^ Dfv_core.Dfv_error.to_string e)
  in
  let parity =
    Dfv_obs.Json.to_string (Portfolio.slm_wire_to_json (strip cold_wire))
    = Dfv_obs.Json.to_string (Portfolio.slm_wire_to_json (strip served_wire))
  in
  Printf.printf "  verdict parity vs cold solve: %s\n%!"
    (if parity then "byte-identical (timings excluded)" else "MISMATCH");
  (match Client.call c Protocol.Shutdown with
  | Ok _ -> ()
  | Error m -> failwith ("serve_cache shutdown: " ^ m));
  Client.close c;
  let exit_code =
    match snd (Unix.waitpid [] pid) with Unix.WEXITED n -> n | _ -> -1
  in
  let open Dfv_obs.Json in
  write_bench "serve_cache"
    [ ("design", String "chain");
      ("cold_seconds", Float cold_s);
      ("first_request_seconds", Float first_s);
      ("cached_repeats", Int n);
      ("cached_mean_seconds", Float mean_s);
      ("cached_min_seconds", Float min_s);
      ("speedup", Float speedup);
      ("min_ratio_gate", Float serve_cache_min_ratio);
      ("verdict_parity", Bool parity);
      ("daemon_exit", Int exit_code) ];
  if exit_code <> 0 then begin
    Printf.printf "REGRESSION: daemon exited %d after Shutdown (want 0)\n"
      exit_code;
    exit 1
  end;
  if not parity then begin
    print_endline "REGRESSION: served verdict differs from the cold solve";
    exit 1
  end;
  if speedup < serve_cache_min_ratio then begin
    Printf.printf
      "REGRESSION: cached request is only %.1fx the cold solve (gate: >= \
       %.0fx)\n"
      speedup serve_cache_min_ratio;
    exit 1
  end;
  Printf.printf
    "shape check: the daemon spends one solve on the first request and\n\
     answers every repeat from the fingerprint-keyed cache, clearing the\n\
     %.0fx gate with the verdict unchanged.\n"
    serve_cache_min_ratio

(* ---------------------------------------------------------------------- *)

let experiments =
  [ ("f1", f1); ("f2", f2); ("c1", c1); ("c2", c2); ("c3", c3);
    ("c3_incremental_sec", c3); ("c4", c4); ("c4_fault_robustness", c4f);
    ("c5", c5); ("c5_obs_overhead", c5o); ("c6", c6); ("c7", c7); ("c8", c8);
    ("sim_throughput", sim_throughput); ("par_speedup", par_speedup);
    ("journal_overhead", journal_overhead); ("serve_cache", serve_cache) ]

let () =
  let rec parse names = function
    | [] -> List.rev names
    | "--budget" :: n :: rest ->
      (match int_of_string_opt n with
      | Some n when n > 0 ->
        budget_opt :=
          Some
            {
              Dfv_sat.Solver.max_conflicts = Some n;
              Dfv_sat.Solver.max_seconds = None;
            }
      | Some _ | None -> Printf.eprintf "bad --budget value %s\n" n);
      parse names rest
    | "--jobs" :: n :: rest ->
      (match int_of_string_opt n with
      | Some n when n > 0 -> jobs_opt := n
      | Some _ | None -> Printf.eprintf "bad --jobs value %s\n" n);
      parse names rest
    | name :: rest -> parse (String.lowercase_ascii name :: names) rest
  in
  let requested =
    match parse [] (List.tl (Array.to_list Sys.argv)) with
    | [] ->
      List.map fst
        (List.remove_assoc "c3_incremental_sec"
           (List.remove_assoc "c4_fault_robustness"
              (List.remove_assoc "c5_obs_overhead"
                 (List.remove_assoc "par_speedup"
                    (List.remove_assoc "serve_cache" experiments)))))
    | names -> names
  in
  let t0 = now () in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None -> Printf.eprintf "unknown experiment %s\n" name)
    requested;
  Printf.printf "\nall experiments done in %.1fs\n" (now () -. t0)
