(* Tests for the behavioral synthesizer: every synthesized block is run
   against the interpreter, and SEC closes the loop by proving the
   generated RTL equivalent to its own source SLM. *)

open Dfv_bitvec
open Dfv_rtl
open Dfv_hwir
open Dfv_sec
open Dfv_designs
module Behsyn = Dfv_behsyn.Behsyn

let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool

(* Run a synthesized block on concrete scalar arguments. *)
let run_synth rtl prog args =
  let fn = Option.get (Ast.find_func prog prog.Ast.entry) in
  let sim = Sim.create rtl in
  let inputs first =
    ("start", Bitvec.create ~width:1 (if first then 1 else 0))
    :: List.map2
         (fun (n, ty) v -> ("in_" ^ n, Bitvec.create ~width:(Ast.ty_width ty) v))
         fn.Ast.params args
  in
  let budget = Behsyn.cycle_bound prog + 2 in
  let rec go cycle =
    let outs = Sim.cycle sim (inputs (cycle = 0)) in
    if Bitvec.reduce_or (List.assoc "done_" outs) then
      (Bitvec.to_int (List.assoc "result" outs), cycle)
    else if cycle > budget then failwith "behsyn block did not finish"
    else go (cycle + 1)
  in
  go 0

let test_synthesized_gcd_runs () =
  let t = Gcd.make ~width:8 in
  let rtl = Netlist.elaborate (Behsyn.synthesize t.Gcd.slm) in
  for a = 0 to 40 do
    for b = 0 to 40 do
      let r, _ = run_synth rtl t.Gcd.slm [ a; b ] in
      if r <> Gcd.golden a b then
        Alcotest.failf "synth gcd(%d,%d) = %d, want %d" a b r (Gcd.golden a b)
    done
  done

let test_synthesized_alu_runs () =
  let t = Alu.make ~width:8 () in
  let rtl = Netlist.elaborate (Behsyn.synthesize t.Alu.slm) in
  let st = Random.State.make [| 61 |] in
  for _ = 1 to 300 do
    let op = Random.State.int st 8 in
    let a = Random.State.int st 256 and b = Random.State.int st 256 in
    let r, _ = run_synth rtl t.Alu.slm [ op; a; b ] in
    if r <> Alu.golden ~width:8 ~op a b then
      Alcotest.failf "synth alu op=%d a=%d b=%d = %d" op a b r
  done

let test_synthesized_minifloat_runs () =
  (* Behavioral synthesis of a floating-point adder, validated against
     the native reference on corners and random patterns. *)
  let mf = Minifloat.make () in
  let rtl = Netlist.elaborate (Behsyn.synthesize mf.Minifloat.full) in
  let st = Random.State.make [| 62 |] in
  let cases =
    [ (0x00, 0x00); (0x38, 0x38); (0x01, 0x01); (0x7f, 0x7f); (0xB8, 0x38) ]
    @ List.init 400 (fun _ -> (Random.State.int st 256, Random.State.int st 256))
  in
  List.iter
    (fun (a, b) ->
      let r, _ = run_synth rtl mf.Minifloat.full [ a; b ] in
      let expect = Minifloat.golden_add ~flush:false a b in
      if r <> expect then
        Alcotest.failf "synth fadd(%02x, %02x) = %02x, want %02x" a b r expect)
    cases

let test_variable_latency () =
  (* The FSM takes fewer cycles on easy inputs — real behavioral
     synthesis behaviour, and the Section 3.2 alignment problem born. *)
  let t = Gcd.make ~width:8 in
  let rtl = Netlist.elaborate (Behsyn.synthesize t.Gcd.slm) in
  let _, fast = run_synth rtl t.Gcd.slm [ 7; 0 ] in
  let _, slow = run_synth rtl t.Gcd.slm [ 233; 144 ] (* Fibonacci pair *) in
  check_bool "latency varies with data" true (slow > fast + 5)

let sec_against_source prog =
  let rtl = Netlist.elaborate (Behsyn.synthesize prog) in
  Checker.check_slm_rtl ~slm:prog ~rtl ~spec:(Behsyn.spec prog) ()

let test_sec_proves_synthesized_gcd () =
  let t = Gcd.make ~width:4 in
  match sec_against_source t.Gcd.slm with
  | Checker.Equivalent _ -> ()
  | Checker.Not_equivalent _ -> Alcotest.fail "synthesized gcd not equivalent"
  | Checker.Unknown _ -> Alcotest.fail "unexpected unknown"

let test_sec_proves_synthesized_alu () =
  let t = Alu.make ~width:8 () in
  match sec_against_source t.Alu.slm with
  | Checker.Equivalent _ -> ()
  | Checker.Not_equivalent _ -> Alcotest.fail "synthesized alu not equivalent"
  | Checker.Unknown _ -> Alcotest.fail "unexpected unknown"

let test_sec_proves_synthesized_conv () =
  (* Arrays as locals are fine (they become memories); the conv window
     model has an array *parameter*, so wrap it in a scalar-interface
     driver... instead use the image-chain brightness model, which is
     scalar end to end. *)
  let chain = Image_chain.make () in
  let prog = Image_chain.block_slm chain Image_chain.Brightness in
  match sec_against_source prog with
  | Checker.Equivalent _ -> ()
  | Checker.Not_equivalent _ ->
    Alcotest.fail "synthesized brightness not equivalent"
  | Checker.Unknown _ -> Alcotest.fail "unexpected unknown"

let test_rejects_unsupported () =
  let open Ast in
  let expect name p =
    match Behsyn.synthesize p with
    | exception Behsyn.Not_synthesizable _ -> ()
    | _ -> Alcotest.failf "%s: expected Not_synthesizable" name
  in
  (* Calls. *)
  let t = Fir.make ~taps:[ 1; 2; 3; 4 ] () in
  expect "array parameter" t.Fir.slm_exact;
  (* While loop. *)
  expect "while"
    {
      funcs =
        [ {
            fname = "f";
            params = [ ("a", uint 8) ];
            ret = uint 8;
            locals = [];
            body =
              [ While (var "a" <>^ u 8 0, [ assign "a" (var "a" -^ u 8 1) ]);
                ret (var "a") ];
          } ];
      entry = "f";
    }

let test_cycle_bound_is_sound () =
  (* No input may exceed the static bound (exhaustive at width 4). *)
  let t = Gcd.make ~width:4 in
  let rtl = Netlist.elaborate (Behsyn.synthesize t.Gcd.slm) in
  let bound = Behsyn.cycle_bound t.Gcd.slm in
  for a = 0 to 15 do
    for b = 0 to 15 do
      let _, cycles = run_synth rtl t.Gcd.slm [ a; b ] in
      if cycles > bound then
        Alcotest.failf "gcd(%d,%d) took %d cycles > bound %d" a b cycles bound
    done
  done

let test_array_local_memory () =
  (* A program with an array local: it becomes a memory in the RTL. *)
  let open Ast in
  let prog =
    (* Histogram-style: write then read back through a 4-entry table. *)
    {
      funcs =
        [ {
            fname = "f";
            params = [ ("a", uint 8) ];
            ret = uint 8;
            locals = [ ("tbl", Tarray (uint 8, 4)) ];
            body =
              [ For
                  {
                    ivar = "i";
                    count = 4;
                    body =
                      [ assign_idx "tbl"
                          (cast (uint 2) (var "i"))
                          (var "a" +^ cast (uint 8) (var "i")) ];
                  };
                ret
                  (idx "tbl" (cast (uint 2) (var "a" &^ u 8 3))
                  +^ idx "tbl" (u 2 0)) ];
          } ];
      entry = "f";
    }
  in
  Typecheck.check prog;
  let netlist = Behsyn.synthesize prog in
  check_int "has a memory" 1 (List.length netlist.Netlist.mems);
  let rtl = Netlist.elaborate netlist in
  for a = 0 to 255 do
    let expect =
      Bitvec.to_int
        (Interp.as_int (Interp.run prog [ Interp.vint ~width:8 a ]))
    in
    let r, _ = run_synth rtl prog [ a ] in
    if r <> expect then Alcotest.failf "tbl(%d) = %d, want %d" a r expect
  done;
  (* And SEC proves it. *)
  match sec_against_source prog with
  | Checker.Equivalent _ -> ()
  | Checker.Not_equivalent _ -> Alcotest.fail "array-local block not equivalent"
  | Checker.Unknown _ -> Alcotest.fail "unexpected unknown"

let suite =
  [ Alcotest.test_case "synthesized gcd runs" `Quick test_synthesized_gcd_runs;
    Alcotest.test_case "synthesized alu runs" `Quick test_synthesized_alu_runs;
    Alcotest.test_case "synthesized minifloat adder runs" `Quick
      test_synthesized_minifloat_runs;
    Alcotest.test_case "variable latency" `Quick test_variable_latency;
    Alcotest.test_case "SEC proves synthesized gcd" `Quick
      test_sec_proves_synthesized_gcd;
    Alcotest.test_case "SEC proves synthesized alu" `Quick
      test_sec_proves_synthesized_alu;
    Alcotest.test_case "SEC proves synthesized brightness" `Quick
      test_sec_proves_synthesized_conv;
    Alcotest.test_case "rejects unsupported" `Quick test_rejects_unsupported;
    Alcotest.test_case "cycle bound sound" `Quick test_cycle_bound_is_sound;
    Alcotest.test_case "array local becomes memory" `Quick
      test_array_local_memory ]
