(* Tests for the CDCL SAT solver. *)

open Dfv_sat

let check_bool = Alcotest.check Alcotest.bool
let check_res = Alcotest.check Alcotest.bool

let is_sat (r : Solver.result) =
  match r with Solver.Sat -> true | Solver.Unsat -> false

(* Build a solver with [n] fresh variables. *)
let fresh n =
  let s = Solver.create () in
  let vars = Array.init n (fun _ -> Solver.new_var s) in
  (s, vars)

let test_trivial_sat () =
  let s, v = fresh 2 in
  Solver.add_clause s [ Lit.pos v.(0) ];
  Solver.add_clause s [ Lit.neg v.(1) ];
  check_res "sat" true (is_sat (Solver.solve s));
  check_bool "v0 true" true (Solver.value s (Lit.pos v.(0)));
  check_bool "v1 false" false (Solver.value s (Lit.pos v.(1)))

let test_trivial_unsat () =
  let s, v = fresh 1 in
  Solver.add_clause s [ Lit.pos v.(0) ];
  Solver.add_clause s [ Lit.neg v.(0) ];
  check_res "unsat" false (is_sat (Solver.solve s))

let test_empty_clause () =
  let s, _ = fresh 1 in
  Solver.add_clause s [];
  check_res "unsat" false (is_sat (Solver.solve s))

let test_no_clauses () =
  let s, _ = fresh 3 in
  check_res "sat" true (is_sat (Solver.solve s))

let test_propagation_chain () =
  (* x0 and a chain of implications x_i -> x_{i+1}; then force ~x_last. *)
  let n = 50 in
  let s, v = fresh n in
  Solver.add_clause s [ Lit.pos v.(0) ];
  for i = 0 to n - 2 do
    Solver.add_clause s [ Lit.neg v.(i); Lit.pos v.(i + 1) ]
  done;
  check_res "sat" true (is_sat (Solver.solve s));
  check_bool "chain end true" true (Solver.value s (Lit.pos v.(n - 1)));
  Solver.add_clause s [ Lit.neg v.(n - 1) ];
  check_res "now unsat" false (is_sat (Solver.solve s))

let test_xor_chain_unsat () =
  (* XOR constraints as CNF: x0 (+) x1 = 1, x1 (+) x2 = 1, ..., and then
     force x0 = x_last for an odd-length chain: unsat. *)
  let n = 9 in
  let s, v = fresh n in
  let xor1 a b =
    (* a (+) b = 1 : (a | b) & (~a | ~b) *)
    Solver.add_clause s [ Lit.pos a; Lit.pos b ];
    Solver.add_clause s [ Lit.neg a; Lit.neg b ]
  in
  for i = 0 to n - 2 do
    xor1 v.(i) v.(i + 1)
  done;
  (* Chain of 8 inversions: x8 = x0.  Forcing x8 <> x0 is unsat. *)
  xor1 v.(0) v.(n - 1);
  check_res "unsat" false (is_sat (Solver.solve s))

let pigeonhole pigeons holes =
  (* PHP: pigeon i in some hole; no two pigeons share a hole. *)
  let s = Solver.create () in
  let var = Array.init pigeons (fun _ -> Array.init holes (fun _ -> Solver.new_var s)) in
  for i = 0 to pigeons - 1 do
    Solver.add_clause s
      (List.init holes (fun j -> Lit.pos var.(i).(j)))
  done;
  for j = 0 to holes - 1 do
    for i1 = 0 to pigeons - 1 do
      for i2 = i1 + 1 to pigeons - 1 do
        Solver.add_clause s [ Lit.neg var.(i1).(j); Lit.neg var.(i2).(j) ]
      done
    done
  done;
  s

let test_pigeonhole_unsat () =
  check_res "php 4/3" false (is_sat (Solver.solve (pigeonhole 4 3)));
  check_res "php 5/4" false (is_sat (Solver.solve (pigeonhole 5 4)));
  check_res "php 6/5" false (is_sat (Solver.solve (pigeonhole 6 5)))

let test_pigeonhole_sat () =
  check_res "php 4/4" true (is_sat (Solver.solve (pigeonhole 4 4)));
  check_res "php 5/6" true (is_sat (Solver.solve (pigeonhole 5 6)))

let test_assumptions () =
  let s, v = fresh 3 in
  (* v0 -> v1, v1 -> v2 *)
  Solver.add_clause s [ Lit.neg v.(0); Lit.pos v.(1) ];
  Solver.add_clause s [ Lit.neg v.(1); Lit.pos v.(2) ];
  check_res "assume v0, ~v2 unsat" false
    (is_sat (Solver.solve ~assumptions:[ Lit.pos v.(0); Lit.neg v.(2) ] s));
  check_res "assume v0 sat" true
    (is_sat (Solver.solve ~assumptions:[ Lit.pos v.(0) ] s));
  check_bool "v2 forced" true (Solver.value s (Lit.pos v.(2)));
  check_res "still sat without assumptions" true (is_sat (Solver.solve s));
  check_res "conflicting assumptions" false
    (is_sat (Solver.solve ~assumptions:[ Lit.pos v.(0); Lit.neg v.(0) ] s))

let test_incremental () =
  let s, v = fresh 4 in
  Solver.add_clause s [ Lit.pos v.(0); Lit.pos v.(1) ];
  check_res "sat 1" true (is_sat (Solver.solve s));
  Solver.add_clause s [ Lit.neg v.(0) ];
  check_res "sat 2" true (is_sat (Solver.solve s));
  check_bool "v1 now forced" true (Solver.value s (Lit.pos v.(1)));
  Solver.add_clause s [ Lit.neg v.(1) ];
  check_res "unsat 3" false (is_sat (Solver.solve s));
  (* A permanently-unsat solver stays unsat. *)
  check_res "still unsat" false (is_sat (Solver.solve s))

let test_true_lit () =
  let s = Solver.create () in
  let t = Solver.true_lit s in
  check_res "sat" true (is_sat (Solver.solve s));
  check_bool "true_lit is true" true (Solver.value s t);
  check_bool "false_lit is false" false (Solver.value s (Solver.false_lit s))

let test_duplicate_and_tautology () =
  let s, v = fresh 2 in
  Solver.add_clause s [ Lit.pos v.(0); Lit.pos v.(0); Lit.pos v.(0) ];
  Solver.add_clause s [ Lit.pos v.(1); Lit.neg v.(1) ] (* dropped *);
  check_res "sat" true (is_sat (Solver.solve s));
  check_bool "v0 true" true (Solver.value s (Lit.pos v.(0)))

let test_unallocated_var_rejected () =
  let s, _ = fresh 1 in
  check_bool "raises" true
    (match Solver.add_clause s [ Lit.pos 5 ] with
    | exception Invalid_argument _ -> true
    | () -> false)

(* --- model validity and brute-force cross-check ---------------------- *)

let eval_clauses clauses model =
  List.for_all
    (fun clause ->
      List.exists
        (fun l ->
          let v = model.(Lit.var l) in
          if Lit.is_pos l then v else not v)
        clause)
    clauses

let brute_force_sat nvars clauses =
  let rec go i model =
    if i = nvars then eval_clauses clauses model
    else begin
      model.(i) <- false;
      go (i + 1) model
      ||
      (model.(i) <- true;
       go (i + 1) model)
    end
  in
  go 0 (Array.make nvars false)

let gen_random_cnf =
  QCheck.Gen.(
    int_range 3 12 >>= fun nvars ->
    int_range 1 50 >>= fun nclauses ->
    let gen_lit = map2 (fun v pos -> Lit.make v pos) (int_range 0 (nvars - 1)) bool in
    let gen_clause = list_size (int_range 1 3) gen_lit in
    map (fun cs -> (nvars, cs)) (list_size (return nclauses) gen_clause))

let arb_random_cnf =
  QCheck.make gen_random_cnf ~print:(fun (nvars, cs) ->
      Printf.sprintf "nvars=%d clauses=[%s]" nvars
        (String.concat "; "
           (List.map
              (fun c -> String.concat " " (List.map Lit.to_string c))
              cs)))

let prop_agrees_with_brute_force =
  QCheck.Test.make ~name:"CDCL agrees with brute force" ~count:300
    arb_random_cnf (fun (nvars, clauses) ->
      let s = Solver.create () in
      for _ = 1 to nvars do
        ignore (Solver.new_var s)
      done;
      List.iter (Solver.add_clause s) clauses;
      let cdcl = is_sat (Solver.solve s) in
      let brute = brute_force_sat nvars clauses in
      if cdcl <> brute then false
      else if cdcl then
        (* When SAT, the produced model must satisfy every clause. *)
        eval_clauses clauses (Solver.model s)
      else true)

let prop_assumption_consistency =
  QCheck.Test.make ~name:"solve under assumptions = solve with units"
    ~count:150 arb_random_cnf (fun (nvars, clauses) ->
      let mk () =
        let s = Solver.create () in
        for _ = 1 to nvars do
          ignore (Solver.new_var s)
        done;
        List.iter (Solver.add_clause s) clauses;
        s
      in
      let assumps = [ Lit.pos 0; Lit.neg 1 ] in
      let s1 = mk () in
      let r1 = is_sat (Solver.solve ~assumptions:assumps s1) in
      let s2 = mk () in
      List.iter (fun l -> Solver.add_clause s2 [ l ]) assumps;
      let r2 = is_sat (Solver.solve s2) in
      r1 = r2)

(* --- DIMACS ---------------------------------------------------------- *)

let test_dimacs_parse () =
  let cnf = Dimacs.parse_string "c comment\np cnf 3 2\n1 -2 0\n2 3 0\n" in
  Alcotest.check Alcotest.int "vars" 3 cnf.Dimacs.num_vars;
  Alcotest.check Alcotest.int "clauses" 2 (List.length cnf.Dimacs.clauses);
  let s = Solver.create () in
  let base = Dimacs.load s cnf in
  Alcotest.check Alcotest.int "fresh solver base" 0 base;
  check_res "sat" true (is_sat (Solver.solve s))

let test_dimacs_roundtrip () =
  let cnf = Dimacs.parse_string "p cnf 4 3\n1 2 0\n-3 4 0\n-1 -2 -4 0\n" in
  let cnf2 = Dimacs.parse_string (Dimacs.to_string cnf) in
  Alcotest.check Alcotest.bool "same" true (cnf = cnf2)

let test_dimacs_errors () =
  let expect_fail s =
    match Dimacs.parse_string s with
    | exception Failure _ -> ()
    | _ -> Alcotest.failf "expected failure for %S" s
  in
  expect_fail "1 2 0\n";
  expect_fail "p cnf 2 1\n1 3 0\n";
  expect_fail "p cnf 2 1\n1 2\n";
  expect_fail "p cnf 2 5\n1 2 0\n"

let test_stats_reported () =
  let s = pigeonhole 5 4 in
  ignore (Solver.solve s);
  check_bool "conflicts counted" true (Solver.nconflicts s > 0);
  check_bool "decisions counted" true (Solver.ndecisions s > 0);
  check_bool "propagations counted" true (Solver.npropagations s > 0);
  check_bool "learnt clauses" true (Solver.nlearnts s > 0)

let qcheck_props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_agrees_with_brute_force; prop_assumption_consistency ]

let suite =
  [ Alcotest.test_case "trivial sat" `Quick test_trivial_sat;
    Alcotest.test_case "trivial unsat" `Quick test_trivial_unsat;
    Alcotest.test_case "empty clause" `Quick test_empty_clause;
    Alcotest.test_case "no clauses" `Quick test_no_clauses;
    Alcotest.test_case "propagation chain" `Quick test_propagation_chain;
    Alcotest.test_case "xor chain unsat" `Quick test_xor_chain_unsat;
    Alcotest.test_case "pigeonhole unsat" `Quick test_pigeonhole_unsat;
    Alcotest.test_case "pigeonhole sat" `Quick test_pigeonhole_sat;
    Alcotest.test_case "assumptions" `Quick test_assumptions;
    Alcotest.test_case "incremental" `Quick test_incremental;
    Alcotest.test_case "true_lit" `Quick test_true_lit;
    Alcotest.test_case "duplicates and tautologies" `Quick
      test_duplicate_and_tautology;
    Alcotest.test_case "unallocated var rejected" `Quick
      test_unallocated_var_rejected;
    Alcotest.test_case "dimacs parse" `Quick test_dimacs_parse;
    Alcotest.test_case "dimacs roundtrip" `Quick test_dimacs_roundtrip;
    Alcotest.test_case "dimacs errors" `Quick test_dimacs_errors;
    Alcotest.test_case "stats reported" `Quick test_stats_reported ]
  @ qcheck_props

let test_solve_bounded () =
  (* A hard instance: the budget is honored and the solver stays usable. *)
  let s = pigeonhole 9 8 in
  (match Solver.solve_bounded ~max_conflicts:50 s with
  | None -> ()
  | Some _ -> Alcotest.fail "php(9,8) should not decide in 50 conflicts");
  check_bool "conflicts counted" true (Solver.nconflicts s >= 50);
  (* After giving up, an unbounded call still works... *)
  check_res "still decidable" false (is_sat (Solver.solve s));
  (* ... and an easy instance decides within a small budget. *)
  let s2 = pigeonhole 4 4 in
  match Solver.solve_bounded ~max_conflicts:100000 s2 with
  | Some r -> check_res "easy decided" true (is_sat r)
  | None -> Alcotest.fail "easy instance exceeded a huge budget"

(* --- budgets and the learnt-clause DB --------------------------------- *)

let test_budgeted_conflicts () =
  let s = pigeonhole 9 8 in
  (match
     Solver.solve_budgeted
       ~budget:{ Solver.max_conflicts = Some 50; max_seconds = None }
       s
   with
  | Solver.Unknown Solver.Conflict_limit -> ()
  | Solver.Unknown Solver.Time_limit -> Alcotest.fail "wrong reason"
  | Solver.Sat | Solver.Unsat ->
    Alcotest.fail "php(9,8) should not decide in 50 conflicts");
  (* The budget is per call, not sticky: an unlimited call still decides,
     keeping the clauses learnt during the budgeted attempt. *)
  (match Solver.solve_budgeted s with
  | Solver.Unsat -> ()
  | Solver.Sat | Solver.Unknown _ -> Alcotest.fail "php(9,8) must be unsat")

let test_budgeted_time () =
  let s = pigeonhole 9 8 in
  (match
     Solver.solve_budgeted
       ~budget:{ Solver.max_conflicts = None; max_seconds = Some 0.0 }
       s
   with
  | Solver.Unknown Solver.Time_limit -> ()
  | Solver.Unknown Solver.Conflict_limit -> Alcotest.fail "wrong reason"
  | Solver.Sat | Solver.Unsat ->
    Alcotest.fail "php(9,8) should not decide in zero time");
  (* A query that decides without conflicting finishes even under a zero
     time budget (the clock is only polled at conflicts). *)
  let s2, v = fresh 2 in
  Solver.add_clause s2 [ Lit.pos v.(0) ];
  match
    Solver.solve_budgeted
      ~budget:{ Solver.max_conflicts = None; max_seconds = Some 0.0 }
      s2
  with
  | Solver.Sat -> ()
  | Solver.Unsat | Solver.Unknown _ ->
    Alcotest.fail "conflict-free query must still decide"

let test_budget_validation () =
  let s, _ = fresh 1 in
  let bad b =
    match Solver.solve_budgeted ~budget:b s with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  check_bool "conflicts >= 1" true
    (bad { Solver.max_conflicts = Some 0; max_seconds = None });
  check_bool "seconds >= 0" true
    (bad { Solver.max_conflicts = None; max_seconds = Some (-1.0) })

let test_learnt_reduction () =
  (* Force many reductions on a hard instance and check the answer is
     still right: reduction must be sound (learnts are implied). *)
  let s = pigeonhole 7 6 in
  Solver.set_learnt_limit s 64;
  check_res "php(7,6) unsat with tiny learnt DB" false (is_sat (Solver.solve s));
  check_bool "reductions happened" true (Solver.nlearnts_removed s > 0);
  (* And a satisfiable instance still finds a (valid) model. *)
  let s2 = pigeonhole 6 6 in
  Solver.set_learnt_limit s2 16;
  check_res "php(6,6) sat with tiny learnt DB" true (is_sat (Solver.solve s2));
  check_bool "bad limit rejected" true
    (match Solver.set_learnt_limit s2 0 with
    | exception Invalid_argument _ -> true
    | () -> false)

let test_interleaved_sessions () =
  (* The access pattern of an equivalence session: add_clause / solve /
     solve ~assumptions interleaved on one solver, with assumption-scoped
     queries not perturbing later unconstrained ones. *)
  let s, v = fresh 6 in
  Solver.add_clause s [ Lit.neg v.(0); Lit.pos v.(1) ];
  Solver.add_clause s [ Lit.neg v.(1); Lit.pos v.(2) ];
  check_res "frame 0" true (is_sat (Solver.solve ~assumptions:[ Lit.pos v.(0) ] s));
  check_bool "implied" true (Solver.value s (Lit.pos v.(2)));
  (* Block the frame, as BMC does after proving it unreachable. *)
  Solver.add_clause s [ Lit.neg v.(2) ];
  check_res "frame 0 now closed" false
    (is_sat (Solver.solve ~assumptions:[ Lit.pos v.(0) ] s));
  check_res "other frames open" true
    (is_sat (Solver.solve ~assumptions:[ Lit.pos v.(3) ] s));
  (* An activation literal scoping a guarded constraint. *)
  let act = Lit.pos (Solver.new_var s) in
  Solver.add_clause s [ Lit.negate act; Lit.pos v.(4) ];
  check_res "guarded active" true (is_sat (Solver.solve ~assumptions:[ act ] s));
  check_bool "guard fired" true (Solver.value s (Lit.pos v.(4)));
  Solver.add_clause s [ Lit.negate act ];
  check_res "guard retired, v4 free" true
    (is_sat (Solver.solve ~assumptions:[ Lit.neg v.(4) ] s));
  Solver.add_clause s [ Lit.pos v.(5) ];
  check_res "still incremental" true (is_sat (Solver.solve s));
  check_bool "unit holds" true (Solver.value s (Lit.pos v.(5)))

let test_dimacs_offset_load () =
  (* Loading composes with a solver that already has variables. *)
  let s, v = fresh 2 in
  Solver.add_clause s [ Lit.pos v.(0) ];
  Solver.add_clause s [ Lit.neg v.(1) ];
  let cnf = Dimacs.parse_string "p cnf 2 2\n1 2 0\n-1 2 0\n" in
  let base = Dimacs.load s cnf in
  Alcotest.check Alcotest.int "base after 2 vars" 2 base;
  check_res "combined sat" true (is_sat (Solver.solve s));
  (* The pre-existing constraints and the loaded ones both hold. *)
  check_bool "old unit kept" true (Solver.value s (Lit.pos v.(0)));
  check_bool "loaded clause solved" true
    (Solver.value s (Dimacs.solver_lit ~base (Lit.of_dimacs 2)));
  (* A second load gets its own block; make it clash-free with the first
     by construction and force a contradiction across blocks. *)
  let base2 = Dimacs.load s (Dimacs.parse_string "p cnf 1 1\n1 0\n") in
  Alcotest.check Alcotest.int "blocks stack" 4 base2;
  check_res "still sat" true (is_sat (Solver.solve s));
  Solver.add_clause s [ Lit.negate (Dimacs.solver_lit ~base:base2 (Lit.of_dimacs 1)) ];
  check_res "cross-block contradiction" false (is_sat (Solver.solve s))

let suite =
  suite
  @ [ Alcotest.test_case "solve_bounded budget" `Quick test_solve_bounded;
      Alcotest.test_case "budgeted conflicts" `Quick test_budgeted_conflicts;
      Alcotest.test_case "budgeted wall clock" `Quick test_budgeted_time;
      Alcotest.test_case "budget validation" `Quick test_budget_validation;
      Alcotest.test_case "learnt DB reduction" `Quick test_learnt_reduction;
      Alcotest.test_case "interleaved incremental sessions" `Quick
        test_interleaved_sessions;
      Alcotest.test_case "dimacs offset load" `Quick test_dimacs_offset_load ]
