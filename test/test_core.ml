(* Integration tests for the methodology facade: audits, combined
   verification flows, incremental SEC localization on the image chain,
   and SLM/RTL plug-and-play. *)

open Dfv_bitvec
open Dfv_hwir
open Dfv_sec
open Dfv_core
open Dfv_designs

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int

let alu_pair ?bug () =
  let t = Alu.make ?bug ~width:8 () in
  Pair.create ~name:"alu" ~slm:t.Alu.slm ~rtl:t.Alu.rtl ~spec:t.Alu.spec

(* The worker pool carries taxonomy values across the result pipe as
   JSON, so to_json/of_json must invert exactly for every constructor. *)
let test_error_json_roundtrip () =
  let cases =
    [ Dfv_error.Stimulus_exhausted
        { attempts = 400; rounds = 3; detail = "all widened" };
      Dfv_error.Protocol_violation
        { channel = "req"; detail = "response before request" };
      Dfv_error.Watchdog
        {
          kind = Dfv_error.Starvation;
          at_time = 120;
          deltas = 4;
          activations = 9;
          processes = [ "consumer"; "arbiter" ];
        };
      Dfv_error.Transaction_incomplete "2 in flight";
      Dfv_error.Elaboration_failure "unknown signal q";
      Dfv_error.Spec_violation "check references missing port";
      Dfv_error.Model_runtime_fault "division by zero";
      Dfv_error.Worker_crashed
        { job = "mutant-7"; detail = "killed by SIGKILL" };
      Dfv_error.Worker_timeout { job = "mutant-9"; seconds = 2.5 };
      Dfv_error.Internal "boom" ]
  in
  List.iter
    (fun e ->
      match Dfv_error.of_json (Dfv_error.to_json e) with
      | Ok e' ->
        check_bool (Dfv_error.to_string e) true (e = e')
      | Error m ->
        Alcotest.failf "%s did not roundtrip: %s" (Dfv_error.to_string e) m)
    cases;
  match Dfv_error.of_json (Dfv_obs.Json.Obj [ ("kind", Dfv_obs.Json.String "no-such") ]) with
  | Ok _ -> Alcotest.fail "unknown kind must not decode"
  | Error _ -> ()

let test_audit_clean () =
  let a = Pair.audit (alu_pair ()) in
  check_bool "types ok" true (a.Pair.slm_types = Ok ());
  check_bool "conditioned" true a.Pair.conditioned;
  check_bool "sec ready" true a.Pair.sec_ready;
  check_bool "no blocker" true (a.Pair.sec_blocker = None)

let test_audit_unconditioned () =
  (* An SLM with a data-dependent loop: flagged, SEC blocked. *)
  let open Ast in
  let slm =
    {
      funcs =
        [ {
            fname = "f";
            params = [ ("a", uint 8); ("b", uint 8); ("op", uint 3) ];
            ret = uint 8;
            locals = [ ("n", uint 8) ];
            body =
              [ assign "n" (var "a");
                While (var "n" <>^ u 8 0, [ assign "n" (var "n" -^ u 8 1) ]);
                ret (var "b") ];
          } ];
      entry = "f";
    }
  in
  let t = Alu.make ~width:8 () in
  let pair = Pair.create ~name:"bad" ~slm ~rtl:t.Alu.rtl ~spec:t.Alu.spec in
  let a = Pair.audit pair in
  check_bool "not conditioned" false a.Pair.conditioned;
  check_bool "sec blocked" false a.Pair.sec_ready;
  check_bool "violations listed" true (a.Pair.violations <> [])

let test_audit_spec_coverage () =
  let t = Alu.make ~width:8 () in
  let broken_spec = { t.Alu.spec with Spec.drives = List.tl t.Alu.spec.Spec.drives } in
  let pair = Pair.create ~name:"alu" ~slm:t.Alu.slm ~rtl:t.Alu.rtl ~spec:broken_spec in
  let a = Pair.audit pair in
  check_bool "sec blocked by spec" false a.Pair.sec_ready

let test_flow_simulate_clean () =
  match Flow.simulate ~vectors:300 (alu_pair ()) with
  | Ok (Flow.Sim_clean { vectors }) -> check_int "all run" 300 vectors
  | Ok (Flow.Sim_mismatch _) -> Alcotest.fail "clean ALU mismatched in simulation"
  | Error _ -> Alcotest.fail "clean ALU errored in simulation"

let test_flow_simulate_finds_gross_bug () =
  (* The swapped or/xor bug hits ~1/8 of random vectors: simulation finds
     it fast. *)
  match
    Flow.simulate ~vectors:2000 (alu_pair ~bug:Alu.Swapped_or_xor ())
  with
  | Ok (Flow.Sim_mismatch { failed_checks; _ }) ->
    check_bool "details recorded" true (failed_checks <> [])
  | Ok (Flow.Sim_clean _) -> Alcotest.fail "gross bug survived 2000 vectors"
  | Error _ -> Alcotest.fail "gross-bug simulation errored"

let test_flow_simulate_widening_finds_narrow_constraint () =
  (* A single-point equality constraint (1/256 per fresh draw): the
     bounded retry rounds widen the attempt budget until a satisfying
     vector lands, instead of the old "constraints too tight" failwith. *)
  let open Ast in
  let pair = alu_pair () in
  let spec =
    { pair.Pair.spec with Spec.constraints = [ var "a" ==^ u 8 123 ] }
  in
  match Flow.simulate ~seed:0 ~vectors:50 { pair with Pair.spec } with
  | Ok (Flow.Sim_clean { vectors }) -> check_int "all vectors run" 50 vectors
  | Ok (Flow.Sim_mismatch _) -> Alcotest.fail "clean ALU mismatched"
  | Error e ->
    Alcotest.failf "widening should satisfy a 1/256 constraint: %s"
      (Dfv_error.to_string e)

let test_flow_simulate_exhaustion_is_typed () =
  (* A conjunction of three point constraints (1/2^19 per draw) defeats
     every retry round: the flow must return the typed error, not raise. *)
  let open Ast in
  let pair = alu_pair () in
  let spec =
    {
      pair.Pair.spec with
      Spec.constraints =
        [ var "a" ==^ u 8 123; var "b" ==^ u 8 45; var "op" ==^ u 3 2 ];
    }
  in
  match Flow.simulate ~seed:0 ~max_rounds:2 ~vectors:5 { pair with Pair.spec } with
  | Ok _ -> Alcotest.fail "expected stimulus exhaustion"
  | Error (Dfv_error.Stimulus_exhausted { attempts; rounds; _ }) ->
    check_int "all rounds tried" 2 rounds;
    check_bool "attempts counted" true (attempts > 0)
  | Error e ->
    Alcotest.failf "wrong error class: %s" (Dfv_error.to_string e)

let test_flow_verify_proves () =
  let r = Flow.verify (alu_pair ()) in
  match r.Flow.outcome with
  | Flow.Proved _ -> ()
  | Flow.Refuted _ | Flow.Simulated _ | Flow.Undecided _ | Flow.Errored _ ->
    Alcotest.fail "expected a proof"

let test_flow_verify_refutes () =
  let r = Flow.verify (alu_pair ~bug:Alu.Unsigned_slt ()) in
  match r.Flow.outcome with
  | Flow.Refuted (cex, _) ->
    check_bool "has params" true (cex.Checker.params <> [])
  | Flow.Proved _ | Flow.Simulated _ | Flow.Undecided _ | Flow.Errored _ ->
    Alcotest.fail "expected refutation"

let test_flow_verify_falls_back_to_simulation () =
  (* Unconditioned SLM: verify must degrade to simulation and say so. *)
  let t = Gcd.make ~width:4 in
  let open Ast in
  let unconditioned =
    {
      t.Gcd.slm with
      funcs =
        List.map
          (fun f ->
            {
              f with
              body =
                List.map
                  (function
                    | Bounded_while { cond; body; _ } -> While (cond, body)
                    | st -> st)
                  f.body;
            })
          t.Gcd.slm.funcs;
    }
  in
  let pair =
    Pair.create ~name:"gcd-uncond" ~slm:unconditioned ~rtl:t.Gcd.rtl
      ~spec:t.Gcd.spec
  in
  let r = Flow.verify ~sim_vectors:100 pair in
  match r.Flow.outcome with
  | Flow.Simulated (Flow.Sim_clean { vectors = 100 }) -> ()
  | Flow.Simulated _ -> Alcotest.fail "simulation should be clean"
  | Flow.Proved _ | Flow.Refuted _ | Flow.Undecided _ | Flow.Errored _ ->
    Alcotest.fail "SEC should have been blocked"

let test_report_renders () =
  let r = Flow.verify (alu_pair ()) in
  let text = Format.asprintf "%a" Flow.pp_report r in
  check_bool "mentions verdict" true
    (String.length text > 0
    &&
    let contains needle =
      let n = String.length needle and h = String.length text in
      let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
      go 0
    in
    contains "EQUIVALENT")

(* --- image chain: incremental SEC localizes the bug (C3) ----------------- *)

let sec_block chain block =
  Checker.check_slm_rtl
    ~slm:(Image_chain.block_slm chain block)
    ~rtl:(Image_chain.block_rtl chain block)
    ~spec:(Image_chain.block_spec block) ()

let test_chain_clean_all_levels () =
  let chain = Image_chain.make () in
  (* Whole-chain SEC. *)
  (match
     Checker.check_slm_rtl ~slm:chain.Image_chain.slm
       ~rtl:chain.Image_chain.rtl_top ~spec:chain.Image_chain.chain_spec ()
   with
  | Checker.Equivalent _ -> ()
  | Checker.Not_equivalent _ -> Alcotest.fail "clean chain should match"
  | Checker.Unknown _ -> Alcotest.fail "unexpected unknown");
  (* Every block individually. *)
  List.iter
    (fun b ->
      match sec_block chain b with
      | Checker.Equivalent _ -> ()
      | Checker.Not_equivalent _ ->
        Alcotest.failf "clean block %s should match" (Image_chain.block_name b)
      | Checker.Unknown _ -> Alcotest.fail "unexpected unknown")
    Image_chain.all_blocks

let test_chain_incremental_localization () =
  (* Plant a bug per block: monolithic SEC says only yes/no; per-block
     SEC names the guilty block exactly. *)
  List.iter
    (fun guilty ->
      let chain = Image_chain.make ~buggy:guilty () in
      (match
         Checker.check_slm_rtl ~slm:chain.Image_chain.slm
           ~rtl:chain.Image_chain.rtl_top ~spec:chain.Image_chain.chain_spec ()
       with
      | Checker.Not_equivalent _ -> ()
      | Checker.Equivalent _ ->
        Alcotest.failf "monolithic SEC missed the %s bug"
          (Image_chain.block_name guilty)
      | Checker.Unknown _ -> Alcotest.fail "unexpected unknown");
      List.iter
        (fun b ->
          let verdict = sec_block chain b in
          let failed =
            match verdict with
            | Checker.Not_equivalent _ -> true
            | Checker.Equivalent _ -> false
            | Checker.Unknown _ -> Alcotest.fail "unexpected unknown"
          in
          if failed <> (b = guilty) then
            Alcotest.failf "bug in %s: block %s reported %s"
              (Image_chain.block_name guilty)
              (Image_chain.block_name b)
              (if failed then "not-equivalent" else "equivalent"))
        Image_chain.all_blocks)
    Image_chain.all_blocks

let test_chain_golden_matches_slm () =
  let chain = Image_chain.make () in
  let st = Random.State.make [| 3 |] in
  for _ = 1 to 100 do
    let w = Array.init 9 (fun _ -> Random.State.int st 256) in
    let expect = Image_chain.golden chain w in
    let got =
      Bitvec.to_int
        (Interp.as_int
           (Interp.run chain.Image_chain.slm
              [ Interp.Varr (Array.map (fun v -> Bitvec.create ~width:8 v) w) ]))
    in
    check_int "chain" expect got
  done

let test_chain_plug_and_play_stages () =
  (* Element-wise blocks as cosim stages: SLM stage vs wrapped-RTL stage
     produce identical streams (C8 at the stage level). *)
  let chain = Image_chain.make () in
  let st = Random.State.make [| 17 |] in
  let pixels = Array.init 64 (fun _ -> Bitvec.create ~width:8 (Random.State.int st 256)) in
  let slm_out, _ =
    Dfv_cosim.Stream.run_stage (Image_chain.slm_stage chain Image_chain.Brightness) pixels
  in
  (* The brightness RTL is combinational: wrap it with no valid chain and
     a 1-cycle collection offset via out_valid-less default. *)
  let rtl_stage =
    Dfv_cosim.Stream.rtl_stage ~name:"brightness-rtl"
      ~rtl:chain.Image_chain.rtl_brightness ~in_port:"p" ~out_port:"q" ~latency:0 ()
  in
  let rtl_out, _ = Dfv_cosim.Stream.run_stage rtl_stage pixels in
  check_bool "streams equal" true (Array.for_all2 Bitvec.equal slm_out rtl_out)

let suite =
  [ Alcotest.test_case "error taxonomy json roundtrip" `Quick
      test_error_json_roundtrip;
    Alcotest.test_case "audit clean pair" `Quick test_audit_clean;
    Alcotest.test_case "audit unconditioned SLM" `Quick
      test_audit_unconditioned;
    Alcotest.test_case "audit spec coverage" `Quick test_audit_spec_coverage;
    Alcotest.test_case "simulate clean" `Quick test_flow_simulate_clean;
    Alcotest.test_case "simulate finds gross bug" `Quick
      test_flow_simulate_finds_gross_bug;
    Alcotest.test_case "simulate widens into narrow constraints" `Quick
      test_flow_simulate_widening_finds_narrow_constraint;
    Alcotest.test_case "simulate exhaustion is typed" `Quick
      test_flow_simulate_exhaustion_is_typed;
    Alcotest.test_case "verify proves" `Quick test_flow_verify_proves;
    Alcotest.test_case "verify refutes" `Quick test_flow_verify_refutes;
    Alcotest.test_case "verify falls back to simulation" `Quick
      test_flow_verify_falls_back_to_simulation;
    Alcotest.test_case "report renders" `Quick test_report_renders;
    Alcotest.test_case "image chain clean at all levels" `Quick
      test_chain_clean_all_levels;
    Alcotest.test_case "incremental SEC localizes bugs" `Quick
      test_chain_incremental_localization;
    Alcotest.test_case "chain golden = slm" `Quick test_chain_golden_matches_slm;
    Alcotest.test_case "plug-and-play stages" `Quick
      test_chain_plug_and_play_stages ]
