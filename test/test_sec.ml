(* Tests for the sequential equivalence checker: SLM-vs-RTL transactions,
   input constraints, RTL-vs-RTL BMC and k-induction. *)

open Dfv_bitvec
open Dfv_rtl
open Dfv_hwir
open Dfv_sec

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int
let bv w x = Bitvec.create ~width:w x

(* --- SLM models --------------------------------------------------------- *)

(* SLM: 8-bit addition. *)
let slm_add =
  let open Ast in
  {
    funcs =
      [ {
          fname = "add8";
          params = [ ("a", uint 8); ("b", uint 8) ];
          ret = uint 8;
          locals = [];
          body = [ ret (var "a" +^ var "b") ];
        } ];
    entry = "add8";
  }

(* SLM: sum of a 4-element array (parallel interface — the whole array is
   one argument, paper Section 3.2). *)
let slm_sum4 =
  let open Ast in
  {
    funcs =
      [ {
          fname = "sum4";
          params = [ ("x", Tarray (uint 8, 4)) ];
          ret = uint 8;
          locals = [ ("acc", uint 8) ];
          body =
            [ For
                {
                  ivar = "i";
                  count = 4;
                  body =
                    [ assign "acc" (var "acc" +^ idx "x" (cast (uint 2) (var "i"))) ];
                };
              ret (var "acc") ];
        } ];
    entry = "sum4";
  }

(* --- RTL designs --------------------------------------------------------- *)

(* Combinational 8-bit adder. *)
let rtl_add_comb () =
  let open Expr in
  Netlist.elaborate
    {
      (Netlist.empty "add_comb") with
      Netlist.inputs =
        [ { Netlist.port_name = "a"; port_width = 8 };
          { Netlist.port_name = "b"; port_width = 8 } ];
      outputs = [ ("s", sig_ "a" +: sig_ "b") ];
    }

(* Two-stage pipelined adder: result appears two cycles after inputs. *)
let rtl_add_pipe () =
  let open Expr in
  Netlist.elaborate
    {
      (Netlist.empty "add_pipe") with
      Netlist.inputs =
        [ { Netlist.port_name = "a"; port_width = 8 };
          { Netlist.port_name = "b"; port_width = 8 } ];
      regs =
        [ Netlist.reg ~name:"a1" ~width:8 (sig_ "a");
          Netlist.reg ~name:"b1" ~width:8 (sig_ "b");
          Netlist.reg ~name:"s2" ~width:8 (sig_ "a1" +: sig_ "b1") ];
      outputs = [ ("s", sig_ "s2") ];
    }

(* A buggy adder: drops the carry into bit 4 (realistic width typo). *)
let rtl_add_buggy () =
  let open Expr in
  let lo = slice (sig_ "a") ~hi:3 ~lo:0 +: slice (sig_ "b") ~hi:3 ~lo:0 in
  let hi = slice (sig_ "a") ~hi:7 ~lo:4 +: slice (sig_ "b") ~hi:7 ~lo:4 in
  Netlist.elaborate
    {
      (Netlist.empty "add_buggy") with
      Netlist.inputs =
        [ { Netlist.port_name = "a"; port_width = 8 };
          { Netlist.port_name = "b"; port_width = 8 } ];
      outputs = [ ("s", concat [ hi; lo ]) ];
    }

(* An adder that is only correct when a < 128: it forces a's MSB to 0
   (models the paper's "RTL relies on input constraints" scenario). *)
let rtl_add_constrained () =
  let open Expr in
  Netlist.elaborate
    {
      (Netlist.empty "add_constrained") with
      Netlist.inputs =
        [ { Netlist.port_name = "a"; port_width = 8 };
          { Netlist.port_name = "b"; port_width = 8 } ];
      wires = [ ("a_masked", concat [ const ~width:1 0; slice (sig_ "a") ~hi:6 ~lo:0 ]) ];
      outputs = [ ("s", sig_ "a_masked" +: sig_ "b") ];
    }

(* Serial accumulator: one array element per cycle on port x. *)
let rtl_sum_serial () =
  let open Expr in
  Netlist.elaborate
    {
      (Netlist.empty "sum_serial") with
      Netlist.inputs = [ { Netlist.port_name = "x"; port_width = 8 } ];
      regs = [ Netlist.reg ~name:"acc" ~width:8 (sig_ "acc" +: sig_ "x") ];
      outputs = [ ("sum", sig_ "acc") ];
    }

(* --- SLM vs RTL --------------------------------------------------------- *)

let drives_ab =
  [ ("a", Spec.At (fun _ -> Spec.Param "a"));
    ("b", Spec.At (fun _ -> Spec.Param "b")) ]

let test_comb_adder_equivalent () =
  let spec =
    {
      Spec.rtl_cycles = 1;
      drives = drives_ab;
      checks = [ { Spec.rtl_port = "s"; at_cycle = 0; expect = Spec.Result } ];
      constraints = [];
    }
  in
  match Checker.check_slm_rtl ~slm:slm_add ~rtl:(rtl_add_comb ()) ~spec () with
  | Checker.Equivalent stats ->
    check_bool "did some work" true (stats.Checker.aig_ands > 0)
  | Checker.Not_equivalent _ -> Alcotest.fail "expected equivalence"
  | Checker.Unknown _ -> Alcotest.fail "unexpected unknown"

let test_pipelined_adder_equivalent () =
  (* Same SLM, but the transaction spans 3 RTL cycles with the check at
     cycle 2 — the paper's "timing alignment" made explicit in the spec. *)
  let spec =
    {
      Spec.rtl_cycles = 3;
      drives = drives_ab;
      checks = [ { Spec.rtl_port = "s"; at_cycle = 2; expect = Spec.Result } ];
      constraints = [];
    }
  in
  match Checker.check_slm_rtl ~slm:slm_add ~rtl:(rtl_add_pipe ()) ~spec () with
  | Checker.Equivalent _ -> ()
  | Checker.Not_equivalent _ -> Alcotest.fail "expected equivalence"
  | Checker.Unknown _ -> Alcotest.fail "unexpected unknown"

let test_pipelined_adder_wrong_cycle () =
  (* Checking at the wrong cycle is a *spec* bug the checker catches as
     non-equivalence: at cycle 1 the output register still holds 0. *)
  let spec =
    {
      Spec.rtl_cycles = 3;
      drives = drives_ab;
      checks = [ { Spec.rtl_port = "s"; at_cycle = 1; expect = Spec.Result } ];
      constraints = [];
    }
  in
  match Checker.check_slm_rtl ~slm:slm_add ~rtl:(rtl_add_pipe ()) ~spec () with
  | Checker.Not_equivalent (cex, _) ->
    check_bool "has failed checks" true (cex.Checker.failed_checks <> [])
  | Checker.Equivalent _ -> Alcotest.fail "expected divergence"
  | Checker.Unknown _ -> Alcotest.fail "unexpected unknown"

let test_buggy_adder_caught () =
  let spec =
    {
      Spec.rtl_cycles = 1;
      drives = drives_ab;
      checks = [ { Spec.rtl_port = "s"; at_cycle = 0; expect = Spec.Result } ];
      constraints = [];
    }
  in
  match Checker.check_slm_rtl ~slm:slm_add ~rtl:(rtl_add_buggy ()) ~spec () with
  | Checker.Not_equivalent (cex, _) -> (
    (* The counterexample must be genuine: low nibbles must carry. *)
    match (List.assoc "a" cex.Checker.params, List.assoc "b" cex.Checker.params) with
    | Interp.Vint a, Interp.Vint b ->
      let lo x = Bitvec.to_int x land 0xf in
      check_bool "low nibbles carry" true (lo a + lo b > 15);
      (match cex.Checker.slm_result with
      | Some (Interp.Vint s) ->
        check_int "slm result is the true sum"
          ((Bitvec.to_int a + Bitvec.to_int b) land 0xff)
          (Bitvec.to_int s)
      | _ -> Alcotest.fail "missing slm result")
    | _ -> Alcotest.fail "bad cex shape")
  | Checker.Equivalent _ -> Alcotest.fail "bug not caught"
  | Checker.Unknown _ -> Alcotest.fail "unexpected unknown"

let test_constraints_rescue_equivalence () =
  let open Ast in
  let base_spec =
    {
      Spec.rtl_cycles = 1;
      drives = drives_ab;
      checks = [ { Spec.rtl_port = "s"; at_cycle = 0; expect = Spec.Result } ];
      constraints = [];
    }
  in
  (* Unconstrained: the masked-MSB adder diverges. *)
  (match
     Checker.check_slm_rtl ~slm:slm_add ~rtl:(rtl_add_constrained ())
       ~spec:base_spec ()
   with
  | Checker.Not_equivalent (cex, _) -> (
    match List.assoc "a" cex.Checker.params with
    | Interp.Vint a -> check_bool "cex has a >= 128" true (Bitvec.to_int a >= 128)
    | _ -> Alcotest.fail "bad cex")
  | Checker.Equivalent _ -> Alcotest.fail "expected divergence"
  | Checker.Unknown _ -> Alcotest.fail "unexpected unknown");
  (* Constrained to a < 128 (the paper's Section 3.1.2 remedy): equivalent. *)
  let spec =
    { base_spec with Spec.constraints = [ var "a" <^ u 8 128 ] }
  in
  match
    Checker.check_slm_rtl ~slm:slm_add ~rtl:(rtl_add_constrained ()) ~spec ()
  with
  | Checker.Equivalent _ -> ()
  | Checker.Not_equivalent _ -> Alcotest.fail "constraint did not rescue"
  | Checker.Unknown _ -> Alcotest.fail "unexpected unknown"

let test_stream_transaction () =
  (* Parallel SLM interface vs serial RTL interface via stream_in. *)
  let spec =
    {
      Spec.rtl_cycles = 5;
      drives = [ ("x", Spec.stream_in ~param:"x" ~count:4 ()) ];
      checks = [ { Spec.rtl_port = "sum"; at_cycle = 4; expect = Spec.Result } ];
      constraints = [];
    }
  in
  match Checker.check_slm_rtl ~slm:slm_sum4 ~rtl:(rtl_sum_serial ()) ~spec () with
  | Checker.Equivalent _ -> ()
  | Checker.Not_equivalent (cex, _) ->
    (match List.assoc "x" cex.Checker.params with
    | Interp.Varr a ->
      Alcotest.failf "unexpected cex x=[%s]"
        (String.concat ";"
           (Array.to_list (Array.map Bitvec.to_string a)))
    | _ -> ());
    Alcotest.fail "expected equivalence"
  | Checker.Unknown _ -> Alcotest.fail "unexpected unknown"

let test_stream_transaction_bug () =
  (* Same transaction but the check fires one cycle early: the last
     element is missing from the RTL sum. *)
  let spec =
    {
      Spec.rtl_cycles = 5;
      drives = [ ("x", Spec.stream_in ~param:"x" ~count:4 ()) ];
      checks = [ { Spec.rtl_port = "sum"; at_cycle = 3; expect = Spec.Result } ];
      constraints = [];
    }
  in
  match Checker.check_slm_rtl ~slm:slm_sum4 ~rtl:(rtl_sum_serial ()) ~spec () with
  | Checker.Not_equivalent (cex, _) -> (
    match List.assoc "x" cex.Checker.params with
    | Interp.Varr a ->
      (* Any cex must have a nonzero last element. *)
      check_bool "last element nonzero" true (not (Bitvec.is_zero a.(3)))
    | _ -> Alcotest.fail "bad cex")
  | Checker.Equivalent _ -> Alcotest.fail "expected divergence"
  | Checker.Unknown _ -> Alcotest.fail "unexpected unknown"

let test_spec_errors () =
  let expect name f =
    match f () with
    | exception Checker.Spec_error _ -> ()
    | _ -> Alcotest.failf "%s: expected Spec_error" name
  in
  let rtl = rtl_add_comb () in
  expect "undriven input" (fun () ->
      Checker.check_slm_rtl ~slm:slm_add ~rtl
        ~spec:
          {
            Spec.rtl_cycles = 1;
            drives = [ ("a", Spec.At (fun _ -> Spec.Param "a")) ];
            checks = [ { Spec.rtl_port = "s"; at_cycle = 0; expect = Spec.Result } ];
            constraints = [];
          }
        ());
  expect "unknown port" (fun () ->
      Checker.check_slm_rtl ~slm:slm_add ~rtl
        ~spec:
          {
            Spec.rtl_cycles = 1;
            drives = drives_ab;
            checks =
              [ { Spec.rtl_port = "nope"; at_cycle = 0; expect = Spec.Result } ];
            constraints = [];
          }
        ());
  expect "width mismatch" (fun () ->
      Checker.check_slm_rtl ~slm:slm_sum4 ~rtl
        ~spec:
          {
            Spec.rtl_cycles = 1;
            drives =
              [ ("a", Spec.At (fun _ -> Spec.Param_elem ("x", 0)));
                ("b", Spec.At (fun _ -> Spec.Param "x")) ];
            checks = [ { Spec.rtl_port = "s"; at_cycle = 0; expect = Spec.Result } ];
            constraints = [];
          }
        ());
  expect "check outside transaction" (fun () ->
      Checker.check_slm_rtl ~slm:slm_add ~rtl
        ~spec:
          {
            Spec.rtl_cycles = 1;
            drives = drives_ab;
            checks = [ { Spec.rtl_port = "s"; at_cycle = 3; expect = Spec.Result } ];
            constraints = [];
          }
        ())

(* --- RTL vs RTL ---------------------------------------------------------- *)

(* Two counters written differently. *)
let counter_inc () =
  let open Expr in
  Netlist.elaborate
    {
      (Netlist.empty "counter_inc") with
      Netlist.regs =
        [ Netlist.reg ~name:"c" ~width:4 (sig_ "c" +: const ~width:4 1) ];
      outputs = [ ("q", sig_ "c") ];
    }

let counter_sub () =
  let open Expr in
  Netlist.elaborate
    {
      (Netlist.empty "counter_sub") with
      Netlist.regs =
        [ Netlist.reg ~name:"c" ~width:4 (sig_ "c" -: const ~width:4 15) ];
      outputs = [ ("q", sig_ "c") ];
    }

(* A counter that glitches when it reaches 5. *)
let counter_glitch () =
  let open Expr in
  Netlist.elaborate
    {
      (Netlist.empty "counter_glitch") with
      Netlist.regs =
        [ Netlist.reg ~name:"c" ~width:4
            (mux
               (sig_ "c" ==: const ~width:4 5)
               (const ~width:4 9)
               (sig_ "c" +: const ~width:4 1)) ];
      outputs = [ ("q", sig_ "c") ];
    }

let test_rtl_rtl_bmc_equivalent () =
  match Checker.check_rtl_rtl ~a:(counter_inc ()) ~b:(counter_sub ()) ~bound:20 () with
  | Checker.Rtl_equivalent_to_bound (20, _) -> ()
  | Checker.Rtl_equivalent_to_bound _ | Checker.Rtl_proved _
  | Checker.Rtl_not_equivalent _ | Checker.Rtl_unknown _ ->
    Alcotest.fail "expected bounded equivalence"

let test_rtl_rtl_bmc_cex () =
  match
    Checker.check_rtl_rtl ~a:(counter_inc ()) ~b:(counter_glitch ()) ~bound:10 ()
  with
  | Checker.Rtl_not_equivalent (cex, _) ->
    (* c reaches 5 after 5 edges; the glitch is visible at cycle 6. *)
    check_int "diverging cycle" 6 cex.Checker.diverging_cycle;
    check_bool "port q" true (cex.Checker.diverging_port = "q");
    check_int "good value" 6 (Bitvec.to_int cex.Checker.value_a);
    check_int "bad value" 9 (Bitvec.to_int cex.Checker.value_b)
  | Checker.Rtl_equivalent_to_bound _ | Checker.Rtl_proved _
  | Checker.Rtl_unknown _ -> Alcotest.fail "expected divergence"

let test_rtl_rtl_bmc_misses_deep_bug () =
  (* A bound below the divergence depth reports bounded equivalence —
     the known limitation of BMC the paper's incremental-SEC advice
     works around. *)
  match
    Checker.check_rtl_rtl ~a:(counter_inc ()) ~b:(counter_glitch ()) ~bound:5 ()
  with
  | Checker.Rtl_equivalent_to_bound (5, _) -> ()
  | Checker.Rtl_equivalent_to_bound _ | Checker.Rtl_proved _
  | Checker.Rtl_not_equivalent _ | Checker.Rtl_unknown _ ->
    Alcotest.fail "expected bounded claim"

let test_k_induction_proves_counters () =
  match Checker.prove_rtl_rtl ~a:(counter_inc ()) ~b:(counter_sub ()) ~k:1 () with
  | Checker.Rtl_proved (1, _) -> ()
  | Checker.Rtl_proved _ -> Alcotest.fail "wrong k reported"
  | Checker.Rtl_equivalent_to_bound _ -> Alcotest.fail "induction failed"
  | Checker.Rtl_not_equivalent _ -> Alcotest.fail "unexpected cex"
  | Checker.Rtl_unknown _ -> Alcotest.fail "unexpected unknown"

let test_k_induction_pipelines () =
  (* Pipelined adders with different stage split: k=1 fails (internal
     registers are unconstrained), k=2 proves. *)
  let open Expr in
  let pipe_early =
    Netlist.elaborate
      {
        (Netlist.empty "pipe_early") with
        Netlist.inputs =
          [ { Netlist.port_name = "a"; port_width = 8 };
            { Netlist.port_name = "b"; port_width = 8 } ];
        regs =
          [ Netlist.reg ~name:"s1" ~width:8 (sig_ "a" +: sig_ "b");
            Netlist.reg ~name:"s2" ~width:8 (sig_ "s1") ];
        outputs = [ ("s", sig_ "s2") ];
      }
  in
  let pipe_late =
    Netlist.elaborate
      {
        (Netlist.empty "pipe_late") with
        Netlist.inputs =
          [ { Netlist.port_name = "a"; port_width = 8 };
            { Netlist.port_name = "b"; port_width = 8 } ];
        regs =
          [ Netlist.reg ~name:"a1" ~width:8 (sig_ "a");
            Netlist.reg ~name:"b1" ~width:8 (sig_ "b");
            Netlist.reg ~name:"s2" ~width:8 (sig_ "a1" +: sig_ "b1") ];
        outputs = [ ("s", sig_ "s2") ];
      }
  in
  (match Checker.prove_rtl_rtl ~a:pipe_early ~b:pipe_late ~k:1 () with
  | Checker.Rtl_equivalent_to_bound (1, _) -> ()
  | Checker.Rtl_equivalent_to_bound _ -> Alcotest.fail "wrong bound reported"
  | Checker.Rtl_proved _ -> Alcotest.fail "k=1 should not be inductive"
  | Checker.Rtl_not_equivalent _ -> Alcotest.fail "unexpected cex"
  | Checker.Rtl_unknown _ -> Alcotest.fail "unexpected unknown");
  match Checker.prove_rtl_rtl ~a:pipe_early ~b:pipe_late ~k:2 () with
  | Checker.Rtl_proved (2, _) -> ()
  | Checker.Rtl_proved _ -> Alcotest.fail "wrong k reported"
  | Checker.Rtl_equivalent_to_bound _ -> Alcotest.fail "k=2 should prove"
  | Checker.Rtl_not_equivalent _ -> Alcotest.fail "unexpected cex"
  | Checker.Rtl_unknown _ -> Alcotest.fail "unexpected unknown"

let test_rtl_rtl_port_mismatch () =
  match
    Checker.check_rtl_rtl ~a:(counter_inc ()) ~b:(rtl_add_comb ()) ~bound:2 ()
  with
  | exception Checker.Spec_error _ -> ()
  | _ -> Alcotest.fail "expected Spec_error"

(* Verify the counterexample's stimulus replays deterministically. *)
let test_cex_replay () =
  match
    Checker.check_rtl_rtl ~a:(counter_inc ()) ~b:(counter_glitch ()) ~bound:10 ()
  with
  | Checker.Rtl_not_equivalent (cex, _) ->
    let sim_a = Sim.create (counter_inc ()) in
    let sim_b = Sim.create (counter_glitch ()) in
    let diverged = ref false in
    Array.iter
      (fun ins ->
        let oa = Sim.cycle sim_a ins and ob = Sim.cycle sim_b ins in
        if not (Bitvec.equal (List.assoc "q" oa) (List.assoc "q" ob)) then
          diverged := true)
      cex.Checker.inputs_per_cycle;
    check_bool "replay diverges" true !diverged
  | Checker.Rtl_equivalent_to_bound _ | Checker.Rtl_proved _
  | Checker.Rtl_unknown _ -> Alcotest.fail "expected divergence"

let _ = bv

let suite =
  [ Alcotest.test_case "comb adder equivalent" `Quick
      test_comb_adder_equivalent;
    Alcotest.test_case "pipelined adder equivalent" `Quick
      test_pipelined_adder_equivalent;
    Alcotest.test_case "pipelined adder, wrong check cycle" `Quick
      test_pipelined_adder_wrong_cycle;
    Alcotest.test_case "buggy adder caught with valid cex" `Quick
      test_buggy_adder_caught;
    Alcotest.test_case "constraints rescue equivalence" `Quick
      test_constraints_rescue_equivalence;
    Alcotest.test_case "stream transaction (parallel vs serial)" `Quick
      test_stream_transaction;
    Alcotest.test_case "stream transaction bug" `Quick
      test_stream_transaction_bug;
    Alcotest.test_case "spec errors" `Quick test_spec_errors;
    Alcotest.test_case "rtl-rtl BMC equivalent" `Quick
      test_rtl_rtl_bmc_equivalent;
    Alcotest.test_case "rtl-rtl BMC counterexample" `Quick test_rtl_rtl_bmc_cex;
    Alcotest.test_case "rtl-rtl BMC bound too small" `Quick
      test_rtl_rtl_bmc_misses_deep_bug;
    Alcotest.test_case "k-induction proves counters" `Quick
      test_k_induction_proves_counters;
    Alcotest.test_case "k-induction on pipelines" `Quick
      test_k_induction_pipelines;
    Alcotest.test_case "rtl-rtl port mismatch" `Quick
      test_rtl_rtl_port_mismatch;
    Alcotest.test_case "cex replays in simulation" `Quick test_cex_replay ]
