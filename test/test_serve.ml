(* The dfv serve stack: protocol codecs, the content-addressed LRU
   cache with its journal-backed disk store, and the daemon end to end
   over a real Unix socket — coalescing, cache hits, byte-identical
   verdicts, interruption, and store replay across restarts.

   ORDERING: the end-to-end tests fork server children, so this suite
   must run before any test spawns a domain (OCaml 5 forbids fork
   after domains) — test_main registers it before fault-domains. *)

module Cache = Dfv_serve.Cache
module Protocol = Dfv_serve.Protocol
module Server = Dfv_serve.Server
module Client = Dfv_serve.Client
module Json = Dfv_obs.Json
module Journal = Dfv_par.Journal
module Fingerprint = Dfv_sec.Fingerprint
module Portfolio = Dfv_par.Portfolio
module Dfv_error = Dfv_core.Dfv_error
module Pair = Dfv_core.Pair
module Gcd = Dfv_designs.Gcd

let tmp suffix = Filename.temp_file "dfv_serve" suffix

let gcd_pair () =
  let t = Gcd.make ~width:4 in
  Pair.create ~name:"gcd" ~slm:t.Gcd.slm ~rtl:t.Gcd.rtl ~spec:t.Gcd.spec

(* The server's sec cache key, re-derived independently: the whole
   cache rests on this being a pure function of the structural content,
   equal across processes. *)
let sec_key pair budget =
  Fingerprint.combine
    [ "sec";
      Fingerprint.pair ~slm:pair.Pair.slm ~rtl:pair.Pair.rtl
        ~spec:pair.Pair.spec;
      Protocol.budget_key budget ]

(* --- protocol ----------------------------------------------------------- *)

let roundtrip_request r =
  match Protocol.request_of_json (Protocol.request_to_json r) with
  | Ok r' ->
    Alcotest.(check string)
      "request JSON round-trips"
      (Json.to_string (Protocol.request_to_json r))
      (Json.to_string (Protocol.request_to_json r'))
  | Error m -> Alcotest.failf "request did not decode: %s" m

let test_protocol_requests () =
  List.iter roundtrip_request
    [ { Protocol.id = 1; op = Protocol.Ping };
      { Protocol.id = 2; op = Protocol.Stats };
      { Protocol.id = 3; op = Protocol.Shutdown };
      {
        Protocol.id = 4;
        op = Protocol.Sec { design = "gcd"; bug = "none"; budget = None };
      };
      {
        Protocol.id = 5;
        op =
          Protocol.Sec
            {
              design = "alu";
              bug = "missing-carry";
              budget =
                Some
                  {
                    Dfv_sat.Solver.max_conflicts = Some 1000;
                    max_seconds = Some 2.5;
                  };
            };
      };
      {
        Protocol.id = 6;
        op =
          Protocol.Sim { design = "fir"; bug = "cstyle"; vectors = 77; seed = 9 };
      };
      {
        Protocol.id = 7;
        op =
          Protocol.Faultsim
            {
              designs = [ "gcd"; "alu" ];
              seed = 3;
              max_rtl_faults = 5;
              max_slm_faults = 2;
              sim_vectors = 100;
              budget = None;
            };
      } ]

let roundtrip_response r =
  match Protocol.response_of_json (Protocol.response_to_json r) with
  | Ok r' ->
    Alcotest.(check string)
      "response JSON round-trips"
      (Json.to_string (Protocol.response_to_json r))
      (Json.to_string (Protocol.response_to_json r'))
  | Error m -> Alcotest.failf "response did not decode: %s" m

let test_protocol_responses () =
  let mk outcome =
    {
      Protocol.rsp_id = 11;
      key = "abc";
      cached = true;
      seconds = 0.25;
      outcome;
    }
  in
  List.iter roundtrip_response
    [ mk (Ok Protocol.R_pong);
      mk (Ok Protocol.R_shutdown);
      mk (Ok (Protocol.R_sim (Protocol.Sim_clean 100)));
      mk (Ok (Protocol.R_sim (Protocol.Sim_mismatch 23)));
      mk
        (Ok
           (Protocol.R_faultsim
              {
                Protocol.f_pass = false;
                f_rate = 0.875;
                f_false_eq = 1;
                f_report = Json.Obj [ ("subjects", Json.List []) ];
              }));
      mk (Ok (Protocol.R_stats (Json.Obj [ ("requests", Json.Int 3) ])));
      mk (Error (Dfv_error.Worker_timeout { job = "sec:gcd"; seconds = 5.0 }));
      mk (Error (Dfv_error.Interrupted { job = "serve" })) ]

let test_protocol_rejects () =
  let bad s =
    match Result.bind (Protocol.parse_frame s) Protocol.request_of_json with
    | Ok _ -> Alcotest.failf "accepted bad frame: %s" s
    | Error _ -> ()
  in
  bad "{}";
  bad "{\"schema\":\"dfv-serve\",\"version\":1}";
  bad "{\"schema\":\"dfv-serve\",\"version\":1,\"kind\":\"request\",\"id\":1}";
  bad
    "{\"schema\":\"dfv-serve\",\"version\":1,\"kind\":\"request\",\"id\":1,\
     \"op\":\"frobnicate\"}";
  bad
    "{\"schema\":\"dfv-trace\",\"version\":1,\"kind\":\"request\",\"id\":1,\
     \"op\":\"ping\"}";
  bad "not json at all"

(* --- cache: LRU discipline --------------------------------------------- *)

let payload n = Json.Obj [ ("n", Json.Int n) ]

let test_cache_lru_eviction () =
  let c = Result.get_ok (Cache.create ~capacity:3 ()) in
  Cache.add c ~key:"k1" (payload 1);
  Cache.add c ~key:"k2" (payload 2);
  Cache.add c ~key:"k3" (payload 3);
  Alcotest.(check (list string))
    "LRU order is insertion order" [ "k1"; "k2"; "k3" ] (Cache.lru_keys c);
  (* A hit moves k1 to most-recent; mem must not. *)
  Alcotest.(check bool) "k1 hit" true (Cache.find c "k1" <> None);
  Alcotest.(check bool) "mem k2" true (Cache.mem c "k2");
  Alcotest.(check (list string))
    "find touches, mem does not" [ "k2"; "k3"; "k1" ] (Cache.lru_keys c);
  Cache.add c ~key:"k4" (payload 4);
  Alcotest.(check (list string))
    "k2 (least recent) evicted" [ "k3"; "k1"; "k4" ] (Cache.lru_keys c);
  Alcotest.(check bool) "k2 gone" false (Cache.mem c "k2");
  Alcotest.(check int) "one eviction" 1 (Cache.evicted c);
  Alcotest.(check int) "hits" 1 (Cache.hits c);
  Alcotest.(check bool) "k2 probe misses" true (Cache.find c "k2" = None);
  Alcotest.(check int) "misses counted" 1 (Cache.misses c);
  Alcotest.(check int) "size" 3 (Cache.size c);
  Cache.close c

let test_cache_duplicate_add () =
  let c = Result.get_ok (Cache.create ~capacity:2 ()) in
  Cache.add c ~key:"k" (payload 1);
  Cache.add c ~key:"k" (payload 2);
  Alcotest.(check int) "no duplicate entry" 1 (Cache.size c);
  (match Cache.find c "k" with
  | Some p ->
    Alcotest.(check string)
      "first add wins" (Json.to_string (payload 1)) (Json.to_string p)
  | None -> Alcotest.fail "k vanished");
  Cache.close c

(* --- cache: disk store -------------------------------------------------- *)

let test_store_replay () =
  let store = tmp ".journal" in
  Sys.remove store;
  let c1 = Result.get_ok (Cache.create ~capacity:8 ~store ()) in
  Cache.add c1 ~key:"a" (payload 1);
  Cache.add c1 ~key:"b" (payload 2);
  Cache.close c1;
  let c2 = Result.get_ok (Cache.create ~capacity:8 ~store ()) in
  Alcotest.(check int) "both records replayed" 2 (Cache.replayed c2);
  Alcotest.(check int) "none rejected" 0 (Cache.rejected c2);
  Alcotest.(check (list string))
    "warmed in append order" [ "a"; "b" ] (Cache.lru_keys c2);
  (match Cache.find c2 "a" with
  | Some p ->
    Alcotest.(check string)
      "payload intact" (Json.to_string (payload 1)) (Json.to_string p)
  | None -> Alcotest.fail "a not warmed");
  Cache.close c2;
  (* A store beyond capacity warms only the newest entries. *)
  let c3 = Result.get_ok (Cache.create ~capacity:1 ~store ()) in
  Alcotest.(check (list string))
    "oldest fell out of a small LRU" [ "b" ] (Cache.lru_keys c3);
  Cache.close c3;
  Sys.remove store

let test_store_rejects_poison () =
  let store = tmp ".journal" in
  Sys.remove store;
  let c1 = Result.get_ok (Cache.create ~capacity:8 ~store ()) in
  Cache.add c1 ~key:"good" (Json.Obj [ ("ok", Json.Bool true) ]);
  Cache.close c1;
  (* Corrupt the store the two ways create must catch: a record filed
     under the wrong fingerprint (hash collision / external edit), and
     a record whose payload fails shape validation. *)
  let j =
    Result.get_ok (Journal.open_ ~path:store ~campaign:Cache.store_campaign)
  in
  Journal.append j
    ~fp:(Journal.fingerprint "some-other-key")
    (Json.Obj
       [ ("key", Json.String "collided"); ("entry", payload 1) ]);
  Journal.append j
    ~fp:(Journal.fingerprint "badshape")
    (Json.Obj
       [ ("key", Json.String "badshape");
         ("entry", Json.Obj [ ("malformed", Json.Bool true) ]) ]);
  Journal.close j;
  let validate p = Json.field "ok" p <> None in
  let c2 = Result.get_ok (Cache.create ~capacity:8 ~store ~validate ()) in
  Alcotest.(check int) "all records read" 3 (Cache.replayed c2);
  Alcotest.(check int) "both poisoned records rejected" 2 (Cache.rejected c2);
  Alcotest.(check int) "only the good entry served" 1 (Cache.size c2);
  Alcotest.(check bool) "good survives" true (Cache.mem c2 "good");
  Alcotest.(check bool) "collided not served" false (Cache.mem c2 "collided");
  Alcotest.(check bool) "badshape not served" false (Cache.mem c2 "badshape");
  Cache.close c2;
  Sys.remove store

let test_store_campaign_mismatch () =
  let store = tmp ".journal" in
  Sys.remove store;
  let j =
    Result.get_ok (Journal.open_ ~path:store ~campaign:"not-a-serve-store")
  in
  Journal.close j;
  (match Cache.create ~capacity:8 ~store () with
  | Ok _ -> Alcotest.fail "opened a foreign journal as a serve store"
  | Error _ -> ());
  Sys.remove store

(* --- fingerprints across processes -------------------------------------- *)

(* The restart story rests on key stability across processes: a child
   process re-derives the same sec key the parent computes.  (The
   end-to-end test then shows a *daemon* restart serving a warm hit.) *)
let test_fingerprint_stable_across_fork () =
  let parent_key = sec_key (gcd_pair ()) None in
  let r, w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
    Unix.close r;
    let key = sec_key (gcd_pair ()) None in
    let b = Bytes.of_string key in
    ignore (Unix.write w b 0 (Bytes.length b));
    Unix.close w;
    Unix._exit 0
  | pid ->
    Unix.close w;
    let buf = Bytes.create 256 in
    let n = Unix.read r buf 0 (Bytes.length buf) in
    Unix.close r;
    ignore (Unix.waitpid [] pid);
    Alcotest.(check string)
      "child re-derives the same key" parent_key
      (Bytes.sub_string buf 0 n)

(* --- the daemon end to end ---------------------------------------------- *)

let resolve ~design ~bug =
  if design = "gcd" && bug = "none" then Ok (gcd_pair ())
  else Error (Printf.sprintf "unknown %s/%s" design bug)

(* Fork a server child on [socket].  SIGTERM routes through the pool's
   cooperative stop flag, so the child exits with the daemon's return
   code (4: interrupted, resumable). *)
let fork_server ?store ?summary socket =
  match Unix.fork () with
  | 0 ->
    let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
    Unix.dup2 devnull Unix.stdout;
    Unix.dup2 devnull Unix.stderr;
    Unix.close devnull;
    Dfv_par.Pool.reset_stop ();
    Sys.set_signal Sys.sigterm
      (Sys.Signal_handle (fun _ -> Dfv_par.Pool.request_stop ()));
    let cfg =
      {
        (Server.default_config ~socket) with
        Server.capacity = 16;
        store;
        summary;
        jobs = 2;
      }
    in
    let code = try Server.run ~resolve cfg with _ -> 3 in
    Unix._exit code
  | pid -> pid

let connect socket =
  match Client.connect ~retries:100 ~delay:0.05 socket with
  | Ok c -> c
  | Error m -> Alcotest.failf "connect: %s" m

let call c op =
  match Client.call c op with
  | Ok r -> r
  | Error m -> Alcotest.failf "call: %s" m

let wait_exit pid =
  match snd (Unix.waitpid [] pid) with
  | Unix.WEXITED n -> n
  | Unix.WSIGNALED s -> Alcotest.failf "server killed by signal %d" s
  | Unix.WSTOPPED _ -> Alcotest.fail "server stopped"

let payload_exn r =
  match r.Protocol.outcome with
  | Ok p -> p
  | Error e -> Alcotest.failf "server error: %s" (Dfv_error.to_string e)

let int_field v name =
  match Json.field name v with Some (Json.Int i) -> i | _ -> -1

let endpoint_stats stats op =
  match Json.field "endpoints" stats with
  | Some (Json.List eps) -> (
    match
      List.find_opt
        (fun e -> Json.field "op" e = Some (Json.String op))
        eps
    with
    | Some e -> e
    | None -> Alcotest.failf "no %s endpoint in stats" op)
  | _ -> Alcotest.fail "stats without endpoints"

let test_serve_end_to_end () =
  let dir = Filename.temp_file "dfv_serve" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let socket = Filename.concat dir "s.sock" in
  let store = Filename.concat dir "store.journal" in
  let summary = Filename.concat dir "summary.json" in
  let pid = fork_server ~store ~summary socket in
  (* Two connections issue the same sec query before either answer is
     out, plus duplicate sims: the daemon must spend exactly one solve
     per unique key (coalesced in one batch, or a cache hit across
     batches — either way one solve). *)
  let c1 = connect socket and c2 = connect socket in
  let sec_op = Protocol.Sec { design = "gcd"; bug = "none"; budget = None } in
  let sim_op =
    Protocol.Sim { design = "gcd"; bug = "none"; vectors = 50; seed = 7 }
  in
  let id_sec1 = Client.send c1 sec_op in
  let id_sec2 = Client.send c2 sec_op in
  let id_sim1 = Client.send c1 sim_op in
  let id_sim2 = Client.send c2 sim_op in
  let get c id =
    match Client.receive c ~id with
    | Ok r -> r
    | Error m -> Alcotest.failf "receive: %s" m
  in
  let rsec1 = get c1 id_sec1 and rsec2 = get c2 id_sec2 in
  let rsim1 = get c1 id_sim1 and rsim2 = get c2 id_sim2 in
  (* Identical answers, byte for byte: the duplicate was served from the
     same solve, so even the embedded solver stats agree. *)
  Alcotest.(check string)
    "duplicate sec verdicts byte-identical"
    (Json.to_string (Protocol.payload_to_json (payload_exn rsec1)))
    (Json.to_string (Protocol.payload_to_json (payload_exn rsec2)));
  Alcotest.(check string)
    "duplicate sim verdicts byte-identical"
    (Json.to_string (Protocol.payload_to_json (payload_exn rsim1)))
    (Json.to_string (Protocol.payload_to_json (payload_exn rsim2)));
  (match payload_exn rsec1 with
  | Protocol.R_sec (Portfolio.W_equivalent _) -> ()
  | _ -> Alcotest.fail "gcd should be equivalent");
  Alcotest.(check string)
    "both sec responses carry the re-derivable key"
    (sec_key (gcd_pair ()) None)
    rsec1.Protocol.key;
  Alcotest.(check string)
    "same key on the duplicate" rsec1.Protocol.key rsec2.Protocol.key;
  (* Unknown design: a structured error, not a dead connection. *)
  (match
     (call c1 (Protocol.Sec { design = "nope"; bug = "none"; budget = None }))
       .Protocol.outcome
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown design must error");
  (* The daemon's own accounting: 3 sec requests, 2 sim requests, one
     solve each for the duplicated keys. *)
  let stats =
    match payload_exn (call c2 Protocol.Stats) with
    | Protocol.R_stats s -> s
    | _ -> Alcotest.fail "stats payload"
  in
  let sec_ep = endpoint_stats stats "sec" in
  Alcotest.(check int) "sec requests" 3 (int_field sec_ep "requests");
  Alcotest.(check int)
    "one solve for two identical sec queries" 1 (int_field sec_ep "solves");
  let sim_ep = endpoint_stats stats "sim" in
  Alcotest.(check int) "sim requests" 2 (int_field sim_ep "requests");
  Alcotest.(check int)
    "one solve for two identical sims" 1 (int_field sim_ep "solves");
  let cache_hits =
    match Json.field "cache" stats with
    | Some c -> int_field c "hits"
    | None -> -1
  in
  let coalesced =
    int_field sec_ep "requests" + int_field sim_ep "requests"
    - int_field sec_ep "solves" - int_field sim_ep "solves" - cache_hits
    (* the error request neither hits nor solves *) - 1
  in
  Alcotest.(check bool)
    "every duplicate was a hit or coalesced" true
    (cache_hits + coalesced = 2);
  Client.close c1;
  Client.close c2;
  (* SIGTERM: the interrupted-resumable contract, exit code 4, with the
     store intact on disk. *)
  Unix.kill pid Sys.sigterm;
  Alcotest.(check int) "daemon exits 4 on SIGTERM" 4 (wait_exit pid);
  Alcotest.(check bool) "summary written" true (Sys.file_exists summary);
  (* The store replays — first into a bare cache... *)
  let c =
    Result.get_ok
      (Cache.create ~capacity:16 ~store ~validate:Protocol.payload_valid ())
  in
  Alcotest.(check int) "sec + sim verdicts in the store" 2 (Cache.replayed c);
  Alcotest.(check int) "nothing rejected" 0 (Cache.rejected c);
  Alcotest.(check bool)
    "sec verdict found under the re-derived key" true
    (Cache.mem c (sec_key (gcd_pair ()) None));
  Cache.close c;
  (* ...then into a restarted daemon, which must answer from cache
     without solving (cached=true in a brand-new process). *)
  let pid2 = fork_server ~store socket in
  let c3 = connect socket in
  let r = call c3 sec_op in
  Alcotest.(check bool) "warm hit after restart" true r.Protocol.cached;
  Alcotest.(check string)
    "warm verdict byte-identical to the original solve"
    (Json.to_string (Protocol.payload_to_json (payload_exn rsec1)))
    (Json.to_string (Protocol.payload_to_json (payload_exn r)));
  (match payload_exn (call c3 Protocol.Shutdown) with
  | Protocol.R_shutdown -> ()
  | _ -> Alcotest.fail "shutdown ack");
  Client.close c3;
  Alcotest.(check int) "clean shutdown exits 0" 0 (wait_exit pid2)

(* SIGKILL mid-write is the crash the journal discipline exists for:
   whatever was fsync'd before the kill replays; the file is never
   unusable. *)
let test_store_survives_sigkill () =
  let dir = Filename.temp_file "dfv_serve" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let socket = Filename.concat dir "s.sock" in
  let store = Filename.concat dir "store.journal" in
  let pid = fork_server ~store socket in
  let c = connect socket in
  let r =
    call c (Protocol.Sec { design = "gcd"; bug = "none"; budget = None })
  in
  ignore (payload_exn r);
  Unix.kill pid Sys.sigkill;
  (match snd (Unix.waitpid [] pid) with
  | Unix.WSIGNALED s when s = Sys.sigkill -> ()
  | _ -> Alcotest.fail "expected SIGKILL death");
  Client.close c;
  let cache =
    Result.get_ok
      (Cache.create ~capacity:16 ~store ~validate:Protocol.payload_valid ())
  in
  Alcotest.(check int)
    "the answered verdict survived the kill" 1 (Cache.replayed cache);
  Alcotest.(check bool)
    "and is served under its key" true
    (Cache.mem cache (sec_key (gcd_pair ()) None));
  Cache.close cache

let suite =
  [ Alcotest.test_case "protocol request round-trip" `Quick
      test_protocol_requests;
    Alcotest.test_case "protocol response round-trip" `Quick
      test_protocol_responses;
    Alcotest.test_case "protocol rejects bad frames" `Quick
      test_protocol_rejects;
    Alcotest.test_case "cache LRU eviction order" `Quick
      test_cache_lru_eviction;
    Alcotest.test_case "cache duplicate add is first-wins" `Quick
      test_cache_duplicate_add;
    Alcotest.test_case "store replay warms the LRU" `Quick test_store_replay;
    Alcotest.test_case "store rejects poisoned records" `Quick
      test_store_rejects_poison;
    Alcotest.test_case "store refuses foreign journals" `Quick
      test_store_campaign_mismatch;
    Alcotest.test_case "fingerprints stable across processes" `Quick
      test_fingerprint_stable_across_fork;
    Alcotest.test_case "daemon end to end" `Quick test_serve_end_to_end;
    Alcotest.test_case "store survives SIGKILL" `Quick
      test_store_survives_sigkill ]
