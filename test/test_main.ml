let () =
  Alcotest.run "dfv"
    [ ("bitvec", Test_bitvec.suite);
      ("cint", Test_cint.suite);
      ("sat", Test_sat.suite);
      ("aig", Test_aig.suite);
      ("sweep", Test_sweep.suite);
      ("aiger", Test_aiger.suite);
      ("rtl", Test_rtl.suite);
      ("sim_engines", Test_sim_engines.suite);
      ("hwir_engines", Test_hwir_engines.suite);
      ("verilog", Test_verilog.suite);
      ("slm", Test_slm.suite);
      ("tlm", Test_tlm.suite);
      ("hwir", Test_hwir.suite);
      ("sec", Test_sec.suite);
      ("session", Test_session.suite);
      ("cosim", Test_cosim.suite);
      ("softfloat", Test_softfloat.suite);
      ("designs", Test_designs.suite);
      ("core", Test_core.suite);
      ("fault", Test_fault.suite);
      ("par", Test_par.suite);
      (* Forks server children, so it must also precede fault-domains. *)
      ("serve", Test_serve.suite);
      ("obs", Test_obs.suite);
      ("properties", Test_properties.suite);
      ("behsyn", Test_behsyn.suite);
      (* Last on purpose: campaigns on the domains executor may spawn
         worker domains, and OCaml 5 forbids Unix.fork in any process
         that ever did — every fork-pool test must already be done. *)
      ("fault-domains", Test_fault.domains_suite) ]
