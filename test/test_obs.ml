(* Tests for the observability layer: JSON emission, span tracer,
   metrics histograms, functional coverage, and triage bundles. *)

open Dfv_obs

let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool
let check_string = Alcotest.check Alcotest.string

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* --- Json ------------------------------------------------------------- *)

let test_json_escaping () =
  check_string "quotes/backslash/control chars escaped"
    "\"a\\\"b\\\\c\\nd\\te\\u0001f\""
    (Json.to_string (Json.String "a\"b\\c\nd\te\x01f"));
  check_string "non-finite floats are null" "[null,null]"
    (Json.to_string (Json.List [ Json.Float nan; Json.Float infinity ]));
  check_string "scalars" "{\"a\":1,\"b\":true,\"c\":null}"
    (Json.to_string
       (Json.Obj [ ("a", Json.Int 1); ("b", Json.Bool true); ("c", Json.Null) ]))

let test_json_envelope () =
  check_string "envelope leads with schema and version"
    "{\"schema\":\"dfv-test\",\"version\":3,\"x\":7}"
    (Json.to_string
       (Json.envelope ~schema:"dfv-test" ~version:3 [ ("x", Json.Int 7) ]))

let test_json_parse_roundtrip () =
  let v =
    Json.Obj
      [ ("schema", Json.String "dfv-par");
        ("version", Json.Int 1);
        ("neg", Json.Int (-42));
        ("pi", Json.Float 3.5);
        ("esc", Json.String "a\"b\\c\nd\te\x01f");
        ("null", Json.Null);
        ("flags", Json.List [ Json.Bool true; Json.Bool false ]);
        ("nested", Json.Obj [ ("xs", Json.List [ Json.Int 0; Json.Int 7 ]) ]) ]
  in
  (match Json.parse (Json.to_string v) with
  | Ok v' ->
    check_string "parse inverts to_string" (Json.to_string v)
      (Json.to_string v')
  | Error e -> Alcotest.failf "roundtrip parse failed: %s" e);
  check_bool "surrounding whitespace ok" true
    (Json.parse "  [1, 2]\n" = Ok (Json.List [ Json.Int 1; Json.Int 2 ]))

let test_json_parse_rejects_malformed () =
  let bad s =
    match Json.parse s with
    | Ok _ -> Alcotest.failf "parse accepted malformed input %S" s
    | Error _ -> ()
  in
  bad "";
  bad "{\"a\":1";
  bad "\"unterminated";
  bad "\"bad \\q escape\"";
  bad "[1,]";
  bad "01";
  bad "{\"a\":1} trailing";
  bad "nul"

let test_json_envelope_of () =
  let enveloped = Json.envelope ~schema:"dfv-bench" ~version:2 [] in
  check_bool "envelope recognized" true
    (Json.envelope_of enveloped = Some ("dfv-bench", 2));
  check_bool "field access" true
    (Json.field "schema" enveloped = Some (Json.String "dfv-bench"));
  check_bool "plain object is not an envelope" true
    (Json.envelope_of (Json.Obj [ ("x", Json.Int 1) ]) = None);
  check_bool "non-object is not an envelope" true
    (Json.envelope_of (Json.Int 3) = None)

(* --- Trace ------------------------------------------------------------ *)

let test_span_nesting () =
  Fun.protect ~finally:Trace.disable @@ fun () ->
  Trace.enable ~capacity:64 ();
  check_int "depth outside any span" 0 (Trace.depth ());
  Trace.with_span "outer" (fun () ->
      check_int "depth inside outer" 1 (Trace.depth ());
      Trace.with_span "inner" (fun () ->
          check_int "depth inside inner" 2 (Trace.depth ()));
      Trace.instant "mark");
  check_int "depth unwound" 0 (Trace.depth ());
  check_int "max depth observed" 2 (Trace.max_depth ());
  match Trace.events () with
  | [ ("outer", o_ts, o_dur, 0); ("inner", i_ts, i_dur, 1);
      ("mark", m_ts, m_dur, 1) ] ->
    check_bool "durations non-negative" true (o_dur >= 0.0 && i_dur >= 0.0);
    check_bool "instant has no duration" true (m_dur = 0.0);
    (* The monotonized clock makes nesting reconstructible from ts/dur:
       the parent's interval encloses the child's. *)
    check_bool "child starts after parent" true (i_ts >= o_ts);
    check_bool "child ends before parent" true
      (i_ts +. i_dur <= o_ts +. o_dur);
    check_bool "instant inside parent" true
      (m_ts >= o_ts && m_ts <= o_ts +. o_dur)
  | evs -> Alcotest.failf "unexpected event list (%d events)" (List.length evs)

let test_span_disabled_is_noop () =
  Trace.disable ();
  (* No sink: spans are null, thunks still run, nothing is recorded. *)
  let ran = ref false in
  Trace.with_span "ghost" (fun () -> ran := true);
  Trace.instant "ghost-instant";
  check_bool "thunk ran" true !ran;
  check_int "nothing recorded" 0 (List.length (Trace.events ()));
  check_bool "begin_span yields the shared null span" true
    (Trace.begin_span "x" == Trace.null_span)

let test_span_ring_overflow () =
  Fun.protect ~finally:Trace.disable @@ fun () ->
  Trace.enable ~capacity:2 ();
  Trace.instant "a";
  Trace.instant "b";
  Trace.instant "c";
  (match Trace.events () with
  | [ ("b", _, _, _); ("c", _, _, _) ] -> ()
  | evs -> Alcotest.failf "ring kept %d events" (List.length evs));
  check_bool "dropped count reported" true
    (contains ~needle:"\"dropped\":1" (Json.to_string (Trace.to_json ())))

let test_trace_json_envelope () =
  Fun.protect ~finally:Trace.disable @@ fun () ->
  Trace.enable ();
  Trace.with_span ~cat:"test" "span" (fun () -> ());
  let s = Json.to_string (Trace.to_json ()) in
  check_bool "schema" true (contains ~needle:"\"schema\":\"dfv-trace\"" s);
  check_bool "version" true (contains ~needle:"\"version\":1" s);
  check_bool "complete event" true (contains ~needle:"\"ph\":\"X\"" s);
  check_bool "maxDepth" true (contains ~needle:"\"maxDepth\":1" s)

(* --- Metrics ---------------------------------------------------------- *)

let test_histogram_buckets () =
  (* Bucket 0 catches <= 0; v >= 1 lands in floor(log2 v) + 1, so bucket
     i >= 1 spans [2^(i-1), 2^i - 1].  Probe every boundary. *)
  List.iter
    (fun (v, b) ->
      check_int (Printf.sprintf "bucket_of %d" v) b (Metrics.bucket_of v))
    [ (min_int, 0); (-1, 0); (0, 0); (1, 1); (2, 2); (3, 2); (4, 3); (7, 3);
      (8, 4); (1023, 10); (1024, 11); (max_int, 62) ];
  check_bool "bucket 0 bounds" true (Metrics.bucket_bounds 0 = (min_int, 0));
  check_bool "bucket 1 bounds" true (Metrics.bucket_bounds 1 = (1, 1));
  check_bool "bucket 4 bounds" true (Metrics.bucket_bounds 4 = (8, 15));
  (* Round-trip: every probed value lies inside its bucket's bounds. *)
  List.iter
    (fun v ->
      let lo, hi = Metrics.bucket_bounds (Metrics.bucket_of v) in
      check_bool (Printf.sprintf "%d within bounds" v) true (lo <= v && v <= hi))
    [ -3; 0; 1; 2; 5; 16; 100; 65535; max_int ]

let test_histogram_observe () =
  let h = Metrics.histogram "test.obs.histogram" in
  List.iter (Metrics.observe h) [ 0; 1; 1; 3; 1000 ];
  check_int "count" 5 (Metrics.histogram_count h);
  check_int "sum" 1005 (Metrics.histogram_sum h);
  let counts = Metrics.bucket_counts h in
  check_int "bucket 0 (v<=0)" 1 counts.(0);
  check_int "bucket 1 (v=1)" 2 counts.(1);
  check_int "bucket 2 (v in 2..3)" 1 counts.(2);
  check_int "bucket 10 (v in 512..1023)" 1 counts.(10)

let test_counters_and_gauges () =
  let c = Metrics.counter "test.obs.counter" in
  let v0 = Metrics.counter_value c in
  Metrics.incr c;
  Metrics.add c 4;
  check_int "counter accumulates" (v0 + 5) (Metrics.counter_value c);
  check_bool "same name, same handle" true
    (Metrics.counter "test.obs.counter" == c);
  let g = Metrics.gauge "test.obs.gauge" in
  Metrics.set_gauge g 7;
  Metrics.set_gauge g 3;
  check_int "gauge holds last value" 3 (Metrics.gauge_value g);
  check_bool "gauge tracks high-water" true (Metrics.gauge_max g >= 7);
  let s = Json.to_string (Metrics.snapshot ()) in
  check_bool "snapshot schema" true
    (contains ~needle:"\"schema\":\"dfv-metrics\"" s);
  check_bool "snapshot lists the counter" true
    (contains ~needle:"test.obs.counter" s)

(* --- Coverage --------------------------------------------------------- *)

let test_coverage_classification () =
  Fun.protect ~finally:(fun () -> Coverage.disable ()) @@ fun () ->
  Coverage.enable ();
  let g = Coverage.group "test.obs.cov" in
  let p =
    Coverage.point g "op"
      [ Coverage.bin "low" ~lo:0 ~hi:3;
        Coverage.bin ~kind:Coverage.Ignore_bin "mid" ~lo:4 ~hi:7;
        Coverage.bin ~kind:Coverage.Illegal "bad" ~lo:8 ~hi:15;
        Coverage.bin "high" ~lo:16 ~hi:31 ]
  in
  List.iter (Coverage.sample p) [ 1; 2; 5; 9; 100; 20 ];
  check_int "samples" 6 (Coverage.samples p);
  check_int "illegal hits" 1 (Coverage.illegal_count p);
  check_int "misses (no bin)" 1 (Coverage.miss_count p);
  (match Coverage.bin_hits p with
  | [ ("low", Coverage.Count, 2); ("mid", Coverage.Ignore_bin, 1);
      ("bad", Coverage.Illegal, 1); ("high", Coverage.Count, 1) ] -> ()
  | hits -> Alcotest.failf "unexpected bin hits (%d bins)" (List.length hits));
  (* Both Count bins hit at least once: full coverage — ignore and
     illegal bins never contribute to the percentage. *)
  check_bool "point coverage 1.0" true (Coverage.point_coverage p = 1.0);
  check_bool "group coverage 1.0" true (Coverage.group_coverage g = 1.0);
  let s = Json.to_string (Coverage.snapshot ()) in
  check_bool "snapshot schema" true
    (contains ~needle:"\"schema\":\"dfv-coverage\"" s);
  check_bool "snapshot lists the group" true (contains ~needle:"test.obs.cov" s)

let test_coverage_first_matching_bin () =
  Fun.protect ~finally:(fun () -> Coverage.disable ()) @@ fun () ->
  Coverage.enable ();
  let g = Coverage.group "test.obs.cov-overlap" in
  let p =
    Coverage.point g "v"
      [ Coverage.bin "first" ~lo:0 ~hi:10; Coverage.bin "second" ~lo:5 ~hi:10 ]
  in
  Coverage.sample p 7;
  (match Coverage.bin_hits p with
  | [ ("first", _, 1); ("second", _, 0) ] -> ()
  | _ -> Alcotest.fail "overlap not resolved to the first bin");
  check_bool "half covered" true (Coverage.point_coverage p = 0.5)

let test_coverage_at_least () =
  Fun.protect ~finally:(fun () -> Coverage.disable ()) @@ fun () ->
  Coverage.enable ();
  let g = Coverage.group "test.obs.cov-atleast" in
  let p =
    Coverage.point g "v" ~at_least:2 [ Coverage.bin "only" ~lo:0 ~hi:9 ]
  in
  Coverage.sample p 1;
  check_bool "one hit below at_least" true (Coverage.point_coverage p = 0.0);
  Coverage.sample p 2;
  check_bool "threshold reached" true (Coverage.point_coverage p = 1.0)

(* --- Triage ----------------------------------------------------------- *)

let test_triage_bundle_json () =
  let t =
    Triage.make ~design:"unit" ~kind:"sec-counterexample" ~txn_index:3
      ~stimulus:[ ("a", "0xff") ]
      ~failures:
        [ { Triage.f_port = "out"; f_cycle = 2; f_expected = Some "0x01";
            f_got = "0x00" } ]
      ~vcd:"$enddefinitions $end\n#0\n" ~vcd_window:(0, 4)
      ~notes:[ "seeded" ] ()
  in
  check_string "design" "unit" (Triage.design t);
  check_string "kind" "sec-counterexample" (Triage.kind t);
  check_bool "txn index" true (Triage.txn_index t = Some 3);
  let s = Json.to_string (Triage.to_json t) in
  List.iter
    (fun needle ->
      check_bool needle true (contains ~needle s))
    [ "\"schema\":\"dfv-triage\""; "\"version\":1"; "\"txn_index\":3";
      "\"port\":\"out\""; "\"expected\":\"0x01\""; "\"got\":\"0x00\"";
      "\"vcd_window\":[0,4]"; "\"metrics\"" ]

let test_memsys_triage () =
  (* Seed a fault into the memsys RTL and demand a complete bundle: the
     failing transaction, the full stimulus, the mismatch evidence and a
     VCD slice around the failure cycle. *)
  match Dfv_fault.Suite.memsys_triage () with
  | None -> Alcotest.fail "no enumerated fault produced a miscompare"
  | Some t ->
    check_string "design" "memsys" (Triage.design t);
    check_string "kind" "scoreboard-miscompare" (Triage.kind t);
    check_bool "failing transaction identified" true
      (Triage.txn_index t <> None);
    check_bool "mismatches recorded" true (Triage.failures t <> []);
    List.iter
      (fun (f : Triage.failure) ->
        check_bool "failure names a port" true (f.Triage.f_port <> "");
        check_bool "failure cycle sane" true (f.Triage.f_cycle >= 0))
      (Triage.failures t);
    (match Triage.vcd t with
    | None -> Alcotest.fail "no VCD slice captured"
    | Some vcd ->
      check_bool "VCD has definitions" true
        (contains ~needle:"$enddefinitions" vcd);
      check_bool "VCD has samples" true (contains ~needle:"#" vcd));
    let s = Json.to_string (Triage.to_json t) in
    check_bool "bundle names the injected fault" true
      (contains ~needle:"injected fault" s)

let suite =
  [ Alcotest.test_case "json escaping" `Quick test_json_escaping;
    Alcotest.test_case "json envelope" `Quick test_json_envelope;
    Alcotest.test_case "json parse roundtrip" `Quick test_json_parse_roundtrip;
    Alcotest.test_case "json parse rejects malformed" `Quick
      test_json_parse_rejects_malformed;
    Alcotest.test_case "json envelope recognition" `Quick
      test_json_envelope_of;
    Alcotest.test_case "span nesting and monotonicity" `Quick test_span_nesting;
    Alcotest.test_case "disabled tracer is a no-op" `Quick
      test_span_disabled_is_noop;
    Alcotest.test_case "span ring overflow" `Quick test_span_ring_overflow;
    Alcotest.test_case "trace json envelope" `Quick test_trace_json_envelope;
    Alcotest.test_case "histogram bucket boundaries" `Quick
      test_histogram_buckets;
    Alcotest.test_case "histogram observe" `Quick test_histogram_observe;
    Alcotest.test_case "counters and gauges" `Quick test_counters_and_gauges;
    Alcotest.test_case "coverage bin classification" `Quick
      test_coverage_classification;
    Alcotest.test_case "coverage first-matching bin" `Quick
      test_coverage_first_matching_bin;
    Alcotest.test_case "coverage at_least threshold" `Quick
      test_coverage_at_least;
    Alcotest.test_case "triage bundle json" `Quick test_triage_bundle_json;
    Alcotest.test_case "memsys triage bundle" `Quick test_memsys_triage ]
