(* Tests for the observability layer: JSON emission, span tracer,
   metrics histograms, functional coverage, and triage bundles. *)

open Dfv_obs

let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool
let check_string = Alcotest.check Alcotest.string

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* --- Json ------------------------------------------------------------- *)

let test_json_escaping () =
  check_string "quotes/backslash/control chars escaped"
    "\"a\\\"b\\\\c\\nd\\te\\u0001f\""
    (Json.to_string (Json.String "a\"b\\c\nd\te\x01f"));
  check_string "non-finite floats are null" "[null,null]"
    (Json.to_string (Json.List [ Json.Float nan; Json.Float infinity ]));
  check_string "scalars" "{\"a\":1,\"b\":true,\"c\":null}"
    (Json.to_string
       (Json.Obj [ ("a", Json.Int 1); ("b", Json.Bool true); ("c", Json.Null) ]))

let test_json_envelope () =
  check_string "envelope leads with schema and version"
    "{\"schema\":\"dfv-test\",\"version\":3,\"x\":7}"
    (Json.to_string
       (Json.envelope ~schema:"dfv-test" ~version:3 [ ("x", Json.Int 7) ]))

let test_json_parse_roundtrip () =
  let v =
    Json.Obj
      [ ("schema", Json.String "dfv-par");
        ("version", Json.Int 1);
        ("neg", Json.Int (-42));
        ("pi", Json.Float 3.5);
        ("esc", Json.String "a\"b\\c\nd\te\x01f");
        ("null", Json.Null);
        ("flags", Json.List [ Json.Bool true; Json.Bool false ]);
        ("nested", Json.Obj [ ("xs", Json.List [ Json.Int 0; Json.Int 7 ]) ]) ]
  in
  (match Json.parse (Json.to_string v) with
  | Ok v' ->
    check_string "parse inverts to_string" (Json.to_string v)
      (Json.to_string v')
  | Error e -> Alcotest.failf "roundtrip parse failed: %s" e);
  check_bool "surrounding whitespace ok" true
    (Json.parse "  [1, 2]\n" = Ok (Json.List [ Json.Int 1; Json.Int 2 ]))

let test_json_parse_rejects_malformed () =
  let bad s =
    match Json.parse s with
    | Ok _ -> Alcotest.failf "parse accepted malformed input %S" s
    | Error _ -> ()
  in
  bad "";
  bad "{\"a\":1";
  bad "\"unterminated";
  bad "\"bad \\q escape\"";
  bad "[1,]";
  bad "01";
  bad "{\"a\":1} trailing";
  bad "nul"

let test_json_envelope_of () =
  let enveloped = Json.envelope ~schema:"dfv-bench" ~version:2 [] in
  check_bool "envelope recognized" true
    (Json.envelope_of enveloped = Some ("dfv-bench", 2));
  check_bool "field access" true
    (Json.field "schema" enveloped = Some (Json.String "dfv-bench"));
  check_bool "plain object is not an envelope" true
    (Json.envelope_of (Json.Obj [ ("x", Json.Int 1) ]) = None);
  check_bool "non-object is not an envelope" true
    (Json.envelope_of (Json.Int 3) = None)

(* --- Trace ------------------------------------------------------------ *)

let test_span_nesting () =
  Fun.protect ~finally:Trace.disable @@ fun () ->
  Trace.enable ~capacity:64 ();
  check_int "depth outside any span" 0 (Trace.depth ());
  Trace.with_span "outer" (fun () ->
      check_int "depth inside outer" 1 (Trace.depth ());
      Trace.with_span "inner" (fun () ->
          check_int "depth inside inner" 2 (Trace.depth ()));
      Trace.instant "mark");
  check_int "depth unwound" 0 (Trace.depth ());
  check_int "max depth observed" 2 (Trace.max_depth ());
  match Trace.events () with
  | [ ("outer", o_ts, o_dur, 0); ("inner", i_ts, i_dur, 1);
      ("mark", m_ts, m_dur, 1) ] ->
    check_bool "durations non-negative" true (o_dur >= 0.0 && i_dur >= 0.0);
    check_bool "instant has no duration" true (m_dur = 0.0);
    (* The monotonized clock makes nesting reconstructible from ts/dur:
       the parent's interval encloses the child's. *)
    check_bool "child starts after parent" true (i_ts >= o_ts);
    check_bool "child ends before parent" true
      (i_ts +. i_dur <= o_ts +. o_dur);
    check_bool "instant inside parent" true
      (m_ts >= o_ts && m_ts <= o_ts +. o_dur)
  | evs -> Alcotest.failf "unexpected event list (%d events)" (List.length evs)

let test_span_disabled_is_noop () =
  Trace.disable ();
  (* No sink: spans are null, thunks still run, nothing is recorded. *)
  let ran = ref false in
  Trace.with_span "ghost" (fun () -> ran := true);
  Trace.instant "ghost-instant";
  check_bool "thunk ran" true !ran;
  check_int "nothing recorded" 0 (List.length (Trace.events ()));
  check_bool "begin_span yields the shared null span" true
    (Trace.begin_span "x" == Trace.null_span)

let test_span_ring_overflow () =
  Fun.protect ~finally:Trace.disable @@ fun () ->
  Trace.enable ~capacity:2 ();
  Trace.instant "a";
  Trace.instant "b";
  Trace.instant "c";
  (match Trace.events () with
  | [ ("b", _, _, _); ("c", _, _, _) ] -> ()
  | evs -> Alcotest.failf "ring kept %d events" (List.length evs));
  check_bool "dropped count reported" true
    (contains ~needle:"\"dropped\":1" (Json.to_string (Trace.to_json ())))

let test_trace_json_envelope () =
  Fun.protect ~finally:Trace.disable @@ fun () ->
  Trace.enable ();
  Trace.with_span ~cat:"test" "span" (fun () -> ());
  let s = Json.to_string (Trace.to_json ()) in
  check_bool "schema" true (contains ~needle:"\"schema\":\"dfv-trace\"" s);
  check_bool "version" true (contains ~needle:"\"version\":1" s);
  check_bool "complete event" true (contains ~needle:"\"ph\":\"X\"" s);
  check_bool "maxDepth" true (contains ~needle:"\"maxDepth\":1" s)

(* --- Metrics ---------------------------------------------------------- *)

let test_histogram_buckets () =
  (* Bucket 0 catches <= 0; v >= 1 lands in floor(log2 v) + 1, so bucket
     i >= 1 spans [2^(i-1), 2^i - 1].  Probe every boundary. *)
  List.iter
    (fun (v, b) ->
      check_int (Printf.sprintf "bucket_of %d" v) b (Metrics.bucket_of v))
    [ (min_int, 0); (-1, 0); (0, 0); (1, 1); (2, 2); (3, 2); (4, 3); (7, 3);
      (8, 4); (1023, 10); (1024, 11); (max_int, 62) ];
  check_bool "bucket 0 bounds" true (Metrics.bucket_bounds 0 = (min_int, 0));
  check_bool "bucket 1 bounds" true (Metrics.bucket_bounds 1 = (1, 1));
  check_bool "bucket 4 bounds" true (Metrics.bucket_bounds 4 = (8, 15));
  (* Round-trip: every probed value lies inside its bucket's bounds. *)
  List.iter
    (fun v ->
      let lo, hi = Metrics.bucket_bounds (Metrics.bucket_of v) in
      check_bool (Printf.sprintf "%d within bounds" v) true (lo <= v && v <= hi))
    [ -3; 0; 1; 2; 5; 16; 100; 65535; max_int ]

let test_histogram_observe () =
  let h = Metrics.histogram "test.obs.histogram" in
  List.iter (Metrics.observe h) [ 0; 1; 1; 3; 1000 ];
  check_int "count" 5 (Metrics.histogram_count h);
  check_int "sum" 1005 (Metrics.histogram_sum h);
  let counts = Metrics.bucket_counts h in
  check_int "bucket 0 (v<=0)" 1 counts.(0);
  check_int "bucket 1 (v=1)" 2 counts.(1);
  check_int "bucket 2 (v in 2..3)" 1 counts.(2);
  check_int "bucket 10 (v in 512..1023)" 1 counts.(10)

let test_counters_and_gauges () =
  let c = Metrics.counter "test.obs.counter" in
  let v0 = Metrics.counter_value c in
  Metrics.incr c;
  Metrics.add c 4;
  check_int "counter accumulates" (v0 + 5) (Metrics.counter_value c);
  check_bool "same name, same handle" true
    (Metrics.counter "test.obs.counter" == c);
  let g = Metrics.gauge "test.obs.gauge" in
  Metrics.set_gauge g 7;
  Metrics.set_gauge g 3;
  check_int "gauge holds last value" 3 (Metrics.gauge_value g);
  check_bool "gauge tracks high-water" true (Metrics.gauge_max g >= 7);
  let s = Json.to_string (Metrics.snapshot ()) in
  check_bool "snapshot schema" true
    (contains ~needle:"\"schema\":\"dfv-metrics\"" s);
  check_bool "snapshot lists the counter" true
    (contains ~needle:"test.obs.counter" s)

(* --- Coverage --------------------------------------------------------- *)

let test_coverage_classification () =
  Fun.protect ~finally:(fun () -> Coverage.disable ()) @@ fun () ->
  Coverage.enable ();
  let g = Coverage.group "test.obs.cov" in
  let p =
    Coverage.point g "op"
      [ Coverage.bin "low" ~lo:0 ~hi:3;
        Coverage.bin ~kind:Coverage.Ignore_bin "mid" ~lo:4 ~hi:7;
        Coverage.bin ~kind:Coverage.Illegal "bad" ~lo:8 ~hi:15;
        Coverage.bin "high" ~lo:16 ~hi:31 ]
  in
  List.iter (Coverage.sample p) [ 1; 2; 5; 9; 100; 20 ];
  check_int "samples" 6 (Coverage.samples p);
  check_int "illegal hits" 1 (Coverage.illegal_count p);
  check_int "misses (no bin)" 1 (Coverage.miss_count p);
  (match Coverage.bin_hits p with
  | [ ("low", Coverage.Count, 2); ("mid", Coverage.Ignore_bin, 1);
      ("bad", Coverage.Illegal, 1); ("high", Coverage.Count, 1) ] -> ()
  | hits -> Alcotest.failf "unexpected bin hits (%d bins)" (List.length hits));
  (* Both Count bins hit at least once: full coverage — ignore and
     illegal bins never contribute to the percentage. *)
  check_bool "point coverage 1.0" true (Coverage.point_coverage p = 1.0);
  check_bool "group coverage 1.0" true (Coverage.group_coverage g = 1.0);
  let s = Json.to_string (Coverage.snapshot ()) in
  check_bool "snapshot schema" true
    (contains ~needle:"\"schema\":\"dfv-coverage\"" s);
  check_bool "snapshot lists the group" true (contains ~needle:"test.obs.cov" s)

let test_coverage_first_matching_bin () =
  Fun.protect ~finally:(fun () -> Coverage.disable ()) @@ fun () ->
  Coverage.enable ();
  let g = Coverage.group "test.obs.cov-overlap" in
  let p =
    Coverage.point g "v"
      [ Coverage.bin "first" ~lo:0 ~hi:10; Coverage.bin "second" ~lo:5 ~hi:10 ]
  in
  Coverage.sample p 7;
  (match Coverage.bin_hits p with
  | [ ("first", _, 1); ("second", _, 0) ] -> ()
  | _ -> Alcotest.fail "overlap not resolved to the first bin");
  check_bool "half covered" true (Coverage.point_coverage p = 0.5)

let test_coverage_at_least () =
  Fun.protect ~finally:(fun () -> Coverage.disable ()) @@ fun () ->
  Coverage.enable ();
  let g = Coverage.group "test.obs.cov-atleast" in
  let p =
    Coverage.point g "v" ~at_least:2 [ Coverage.bin "only" ~lo:0 ~hi:9 ]
  in
  Coverage.sample p 1;
  check_bool "one hit below at_least" true (Coverage.point_coverage p = 0.0);
  Coverage.sample p 2;
  check_bool "threshold reached" true (Coverage.point_coverage p = 1.0)

(* --- Triage ----------------------------------------------------------- *)

let test_triage_bundle_json () =
  let t =
    Triage.make ~design:"unit" ~kind:"sec-counterexample" ~txn_index:3
      ~stimulus:[ ("a", "0xff") ]
      ~failures:
        [ { Triage.f_port = "out"; f_cycle = 2; f_expected = Some "0x01";
            f_got = "0x00" } ]
      ~vcd:"$enddefinitions $end\n#0\n" ~vcd_window:(0, 4)
      ~notes:[ "seeded" ] ()
  in
  check_string "design" "unit" (Triage.design t);
  check_string "kind" "sec-counterexample" (Triage.kind t);
  check_bool "txn index" true (Triage.txn_index t = Some 3);
  let s = Json.to_string (Triage.to_json t) in
  List.iter
    (fun needle ->
      check_bool needle true (contains ~needle s))
    [ "\"schema\":\"dfv-triage\""; "\"version\":1"; "\"txn_index\":3";
      "\"port\":\"out\""; "\"expected\":\"0x01\""; "\"got\":\"0x00\"";
      "\"vcd_window\":[0,4]"; "\"metrics\"" ]

let test_memsys_triage () =
  (* Seed a fault into the memsys RTL and demand a complete bundle: the
     failing transaction, the full stimulus, the mismatch evidence and a
     VCD slice around the failure cycle. *)
  match Dfv_fault.Suite.memsys_triage () with
  | None -> Alcotest.fail "no enumerated fault produced a miscompare"
  | Some t ->
    check_string "design" "memsys" (Triage.design t);
    check_string "kind" "scoreboard-miscompare" (Triage.kind t);
    check_bool "failing transaction identified" true
      (Triage.txn_index t <> None);
    check_bool "mismatches recorded" true (Triage.failures t <> []);
    List.iter
      (fun (f : Triage.failure) ->
        check_bool "failure names a port" true (f.Triage.f_port <> "");
        check_bool "failure cycle sane" true (f.Triage.f_cycle >= 0))
      (Triage.failures t);
    (match Triage.vcd t with
    | None -> Alcotest.fail "no VCD slice captured"
    | Some vcd ->
      check_bool "VCD has definitions" true
        (contains ~needle:"$enddefinitions" vcd);
      check_bool "VCD has samples" true (contains ~needle:"#" vcd));
    let s = Json.to_string (Triage.to_json t) in
    check_bool "bundle names the injected fault" true
      (contains ~needle:"injected fault" s)

(* --- cross-process merge ---------------------------------------------- *)

(* Merging a worker snapshot: counters sum, gauges take the max of both
   value and high-water mark, histogram count/sum/buckets sum (the
   bucket index recovered from each bucket's lo bound — including
   bucket 0 and a large bucket), unknown names register on the fly. *)
let test_metrics_merge () =
  let c = Metrics.counter "t.merge.count" in
  Metrics.add c 5;
  let g = Metrics.gauge "t.merge.gauge" in
  Metrics.set_gauge g 9;
  Metrics.set_gauge g 3;
  let h = Metrics.histogram "t.merge.hist" in
  Metrics.observe h 0;
  Metrics.observe h 5;
  Metrics.observe h 1_000_000;
  let worker =
    Json.envelope ~schema:"dfv-metrics" ~version:1
      [ ( "counters",
          Json.Obj
            [ ("t.merge.count", Json.Int 7); ("t.merge.fresh", Json.Int 2) ] );
        ( "gauges",
          Json.Obj
            [ ( "t.merge.gauge",
                Json.Obj [ ("value", Json.Int 4); ("max", Json.Int 11) ] ) ] );
        ( "histograms",
          Json.Obj
            [ ( "t.merge.hist",
                Json.Obj
                  [ ("count", Json.Int 3);
                    ("sum", Json.Int 1_000_006);
                    ( "buckets",
                      Json.List
                        [ Json.Obj
                            [ ("lo", Json.Int min_int);
                              ("hi", Json.Int 0);
                              ("count", Json.Int 1) ];
                          Json.Obj
                            [ ("lo", Json.Int 4);
                              ("hi", Json.Int 7);
                              ("count", Json.Int 1) ];
                          Json.Obj
                            [ ("lo", Json.Int 524_288);
                              ("hi", Json.Int 1_048_575);
                              ("count", Json.Int 1) ] ] ) ] ) ] ) ]
  in
  (match Metrics.merge worker with
  | Ok () -> ()
  | Error e -> Alcotest.failf "merge failed: %s" e);
  check_int "counters sum" 12 (Metrics.counter_value c);
  check_int "unknown counter registers" 2
    (Metrics.counter_value (Metrics.counter "t.merge.fresh"));
  check_int "gauge value maxes" 4 (Metrics.gauge_value g);
  check_int "gauge high-water maxes" 11 (Metrics.gauge_max g);
  check_int "histogram count sums" 6 (Metrics.histogram_count h);
  check_int "histogram sum sums" 2_000_011 (Metrics.histogram_sum h);
  let buckets = Metrics.bucket_counts h in
  check_int "bucket 0 (v <= 0) sums" 2 buckets.(0);
  check_int "bucket of 5 sums" 2 buckets.(Metrics.bucket_of 5);
  check_int "large bucket sums" 2 buckets.(Metrics.bucket_of 1_000_000)

let test_metrics_merge_malformed () =
  (match Metrics.merge (Json.Obj [ ("schema", Json.String "dfv-trace") ]) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "merge accepted a non-metrics envelope");
  (* A malformed field is reported, but valid fields still merge. *)
  let c = Metrics.counter "t.merge.partial" in
  let before = Metrics.counter_value c in
  let worker =
    Json.envelope ~schema:"dfv-metrics" ~version:1
      [ ( "counters",
          Json.Obj
            [ ("t.merge.bad", Json.String "nope");
              ("t.merge.partial", Json.Int 3) ] ) ]
  in
  (match Metrics.merge worker with
  | Error e ->
    check_bool "error names the offender" true (contains ~needle:"bad" e)
  | Ok () -> Alcotest.fail "merge accepted a string-valued counter");
  check_int "valid sibling still merged" (before + 3) (Metrics.counter_value c)

let test_metrics_strip_timing () =
  check_bool "suffix _us is timing" true (Metrics.timing_metric "sat.solve_us");
  check_bool "suffix _ns is timing" true (Metrics.timing_metric "x_ns");
  check_bool "suffix _ms is timing" true (Metrics.timing_metric "x_ms");
  check_bool "plain name is not" false (Metrics.timing_metric "sat.solves");
  let snap =
    Json.envelope ~schema:"dfv-metrics" ~version:1
      [ ( "counters",
          Json.Obj [ ("a.total", Json.Int 4); ("a.wait_us", Json.Int 9) ] );
        ( "gauges",
          Json.Obj
            [ ( "a.depth",
                Json.Obj [ ("value", Json.Int 1); ("max", Json.Int 6) ] ) ] );
        ( "histograms",
          Json.Obj
            [ ("a.solve_us", Json.Obj [ ("count", Json.Int 2) ]);
              ("a.size", Json.Obj [ ("count", Json.Int 2) ]) ] ) ]
  in
  check_string "timing dropped, gauges reduced to max"
    "{\"schema\":\"dfv-metrics\",\"version\":1,\"counters\":{\"a.total\":4},\"gauges\":{\"a.depth\":{\"max\":6}},\"histograms\":{\"a.size\":{\"count\":2}}}"
    (Json.to_string (Metrics.strip_timing snap))

let test_coverage_merge () =
  Coverage.clear ();
  Coverage.enable ();
  let g = Coverage.group "t.cg" in
  let p =
    Coverage.point g "val" ~at_least:2
      [ Coverage.bin "lo" ~lo:0 ~hi:9; Coverage.bin "hi" ~lo:10 ~hi:19 ]
  in
  List.iter (Coverage.sample p) [ 5; 5; 12; 50 ];
  let snap = Coverage.snapshot () in
  Coverage.disable ();
  (* Merge into an empty registry, twice: groups/points/bins rebuild
     from the shipped descriptors (even while disabled — merging is
     bookkeeping, not sampling) and hits sum. *)
  Coverage.clear ();
  (match Coverage.merge snap with
  | Ok () -> ()
  | Error e -> Alcotest.failf "first merge failed: %s" e);
  (match Coverage.merge snap with
  | Ok () -> ()
  | Error e -> Alcotest.failf "second merge failed: %s" e);
  let g = Coverage.group "t.cg" in
  let p = List.hd (Coverage.points g) in
  check_string "point survives the wire" "val" (Coverage.point_name p);
  (match Coverage.bin_hits p with
  | [ ("lo", Coverage.Count, 4); ("hi", Coverage.Count, 2) ] -> ()
  | _ -> Alcotest.fail "expected summed bin hits [lo=4; hi=2]");
  check_int "misses sum" 2 (Coverage.miss_count p);
  check_int "samples sum" 8 (Coverage.samples p);
  check_bool "at_least travels (4 and 2 hits >= 2)" true
    (Coverage.point_coverage p = 1.0);
  (* A shape mismatch (wrong bin count) is an error. *)
  let bad =
    Json.envelope ~schema:"dfv-coverage" ~version:1
      [ ( "groups",
          Json.List
            [ Json.Obj
                [ ("name", Json.String "t.cg");
                  ( "points",
                    Json.List
                      [ Json.Obj
                          [ ("name", Json.String "val");
                            ("samples", Json.Int 0);
                            ("at_least", Json.Int 2);
                            ("illegal_hits", Json.Int 0);
                            ("misses", Json.Int 0);
                            ( "bins",
                              Json.List
                                [ Json.Obj
                                    [ ("name", Json.String "lo");
                                      ("kind", Json.String "count");
                                      ("lo", Json.Int 0);
                                      ("hi", Json.Int 9);
                                      ("hits", Json.Int 1) ] ] ) ] ] ) ] ] ) ]
  in
  (match Coverage.merge bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "merge accepted a bin-count mismatch");
  Coverage.clear ()

(* Worker spans absorbed into the parent sink keep the worker's pid (a
   separate Chrome process lane, with a process_name label), gain a
   job tag, and the export's drop count accumulates. *)
let test_trace_export_absorb () =
  Trace.disable ();
  check_bool "export while disabled is Null" true (Trace.export () = Json.Null);
  check_bool "absorb while disabled is a no-op" true
    (Trace.absorb (Json.Int 0) = Ok ());
  Trace.enable ();
  Trace.with_span ~cat:"t" "worker.op" (fun () -> ());
  let forge pid dropped =
    match Trace.export () with
    | Json.Obj fs ->
      Json.Obj
        (List.map
           (fun (k, v) ->
             match k with
             | "pid" -> (k, Json.Int pid)
             | "dropped" -> (k, Json.Int dropped)
             | _ -> (k, v))
           fs)
    | _ -> Alcotest.fail "export is not an object"
  in
  let ex = forge 4242 3 in
  Trace.enable () (* fresh parent sink *);
  Trace.with_span "parent.op" (fun () -> ());
  (match Trace.absorb ~job:7 ex with
  | Ok () -> ()
  | Error e -> Alcotest.failf "absorb failed: %s" e);
  let j = Trace.to_json () in
  let s = Json.to_string j in
  check_bool "worker events keep their pid" true
    (contains ~needle:"\"pid\":4242" s);
  check_bool "worker lane labelled" true
    (contains ~needle:"dfv worker 4242" s);
  check_bool "events tagged with the job index" true
    (contains ~needle:"\"job\":7" s);
  check_bool "parent span kept" true (contains ~needle:"parent.op" s);
  check_bool "worker span kept" true (contains ~needle:"worker.op" s);
  check_bool "foreign drops accumulate" true
    (Json.field "dropped" j = Some (Json.Int 3));
  (match Trace.absorb (Json.Obj [ ("schema", Json.String "dfv-metrics") ]) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "absorb accepted a non-export payload");
  (* The raw escape hatch: a bare JSON array, no envelope, drop count
     carried as an instant. *)
  (match Trace.raw_json () with
  | Json.List evs ->
    let raw = Json.to_string (Json.List evs) in
    check_bool "no envelope keys" false (contains ~needle:"\"schema\"" raw);
    check_bool "drop count travels as an instant" true
      (contains ~needle:"trace.dropped" raw)
  | _ -> Alcotest.fail "raw_json is not a bare list");
  Trace.disable ()

(* Ring overwrites surface in metrics, not just in the trace file. *)
let test_trace_dropped_counter () =
  let c = Metrics.counter "trace.dropped" in
  let before = Metrics.counter_value c in
  Trace.enable ~capacity:4 ();
  for i = 1 to 10 do
    Trace.instant (Printf.sprintf "ev%d" i)
  done;
  Trace.disable ();
  check_int "overwrites counted" (before + 6) (Metrics.counter_value c)

let suite =
  [ Alcotest.test_case "json escaping" `Quick test_json_escaping;
    Alcotest.test_case "json envelope" `Quick test_json_envelope;
    Alcotest.test_case "json parse roundtrip" `Quick test_json_parse_roundtrip;
    Alcotest.test_case "json parse rejects malformed" `Quick
      test_json_parse_rejects_malformed;
    Alcotest.test_case "json envelope recognition" `Quick
      test_json_envelope_of;
    Alcotest.test_case "span nesting and monotonicity" `Quick test_span_nesting;
    Alcotest.test_case "disabled tracer is a no-op" `Quick
      test_span_disabled_is_noop;
    Alcotest.test_case "span ring overflow" `Quick test_span_ring_overflow;
    Alcotest.test_case "trace json envelope" `Quick test_trace_json_envelope;
    Alcotest.test_case "histogram bucket boundaries" `Quick
      test_histogram_buckets;
    Alcotest.test_case "histogram observe" `Quick test_histogram_observe;
    Alcotest.test_case "counters and gauges" `Quick test_counters_and_gauges;
    Alcotest.test_case "coverage bin classification" `Quick
      test_coverage_classification;
    Alcotest.test_case "coverage first-matching bin" `Quick
      test_coverage_first_matching_bin;
    Alcotest.test_case "coverage at_least threshold" `Quick
      test_coverage_at_least;
    Alcotest.test_case "triage bundle json" `Quick test_triage_bundle_json;
    Alcotest.test_case "memsys triage bundle" `Quick test_memsys_triage;
    Alcotest.test_case "metrics merge" `Quick test_metrics_merge;
    Alcotest.test_case "metrics merge flags malformed fields" `Quick
      test_metrics_merge_malformed;
    Alcotest.test_case "strip_timing projects the deterministic core" `Quick
      test_metrics_strip_timing;
    Alcotest.test_case "coverage merge" `Quick test_coverage_merge;
    Alcotest.test_case "trace export/absorb" `Quick test_trace_export_absorb;
    Alcotest.test_case "ring overwrites hit trace.dropped" `Quick
      test_trace_dropped_counter ]
