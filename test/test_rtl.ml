(* Tests for the RTL IR: elaboration, simulation, hierarchy, memories,
   lint, and simulator-vs-synthesis consistency. *)

open Dfv_bitvec
open Dfv_rtl
open Dfv_aig

let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool

let bv w x = Bitvec.create ~width:w x

let out_int outputs name =
  Bitvec.to_int (List.assoc name outputs)

(* --- basic designs ----------------------------------------------------- *)

(* An 8-bit free-running counter. *)
let counter () =
  let open Expr in
  {
    (Netlist.empty "counter") with
    Netlist.regs =
      [ Netlist.reg ~name:"count" ~width:8 (sig_ "count" +: const ~width:8 1) ];
    outputs = [ ("q", sig_ "count") ];
  }

(* An accumulator with enable and clear. *)
let accumulator () =
  let open Expr in
  {
    (Netlist.empty "acc") with
    Netlist.inputs =
      [ { Netlist.port_name = "en"; port_width = 1 };
        { Netlist.port_name = "clr"; port_width = 1 };
        { Netlist.port_name = "d"; port_width = 16 } ];
    regs =
      [ Netlist.reg ~enable:(sig_ "en" |: sig_ "clr") ~name:"sum" ~width:16
          (mux (sig_ "clr") (const ~width:16 0) (sig_ "sum" +: sig_ "d")) ];
    outputs = [ ("sum", sig_ "sum") ];
  }

let test_counter () =
  let d = Netlist.elaborate (counter ()) in
  let sim = Sim.create d in
  for i = 0 to 300 do
    let outs = Sim.cycle sim [] in
    check_int (Printf.sprintf "cycle %d" i) (i land 0xff) (out_int outs "q")
  done;
  Sim.reset sim;
  check_int "after reset" 0 (out_int (Sim.cycle sim []) "q")

let test_accumulator () =
  let d = Netlist.elaborate (accumulator ()) in
  let sim = Sim.create d in
  let step en clr dv =
    out_int
      (Sim.cycle sim
         [ ("en", bv 1 (if en then 1 else 0));
           ("clr", bv 1 (if clr then 1 else 0));
           ("d", bv 16 dv) ])
      "sum"
  in
  check_int "initial" 0 (step true false 5);
  check_int "accumulated 5" 5 (step true false 7);
  check_int "accumulated 12" 12 (step false false 100);
  check_int "enable off holds" 12 (step true false 1);
  check_int "now 13" 13 (step false true 0);
  check_int "clear wins" 0 (step true false 0)

(* --- Fig. 1 as RTL ------------------------------------------------------ *)

(* The paper's Fig. 1 netlists, verbatim: two combinational modules that
   differ only in association order. *)
let fig1_module ~first =
  let open Expr in
  let tmp =
    if first then sig_ "a" +: sig_ "b" (* tmp = a + b *)
    else sig_ "b" +: sig_ "c" (* tmp = b + c *)
  in
  let last = if first then sig_ "c" else sig_ "a" in
  {
    (Netlist.empty (if first then "fig1_left" else "fig1_right")) with
    Netlist.inputs =
      [ { Netlist.port_name = "a"; port_width = 8 };
        { Netlist.port_name = "b"; port_width = 8 };
        { Netlist.port_name = "c"; port_width = 8 } ];
    wires = [ ("tmp", tmp) ];
    outputs = [ ("out", sext (sig_ "tmp") 9 +: sext last 9) ];
  }

let test_fig1_rtl_divergence () =
  let dl = Netlist.elaborate (fig1_module ~first:true) in
  let dr = Netlist.elaborate (fig1_module ~first:false) in
  let run d a b c =
    let sim = Sim.create d in
    Bitvec.to_signed_int
      (List.assoc "out"
         (Sim.cycle sim [ ("a", bv 8 a); ("b", bv 8 b); ("c", bv 8 c) ]))
  in
  (* The paper's overflow witness. *)
  check_int "left (a+b)+c" (-129) (run dl 64 64 (-1));
  check_int "right (b+c)+a" 127 (run dr 64 64 (-1));
  (* And a benign input where both agree. *)
  check_int "agree left" 3 (run dl 1 1 1);
  check_int "agree right" 3 (run dr 1 1 1)

(* --- hierarchy ----------------------------------------------------------- *)

let adder_module () =
  let open Expr in
  {
    (Netlist.empty "adder") with
    Netlist.inputs =
      [ { Netlist.port_name = "x"; port_width = 8 };
        { Netlist.port_name = "y"; port_width = 8 } ];
    outputs = [ ("s", sig_ "x" +: sig_ "y") ];
  }

let test_hierarchy () =
  let open Expr in
  (* Two chained adder instances: out = (a + b) + c. *)
  let top =
    {
      (Netlist.empty "top") with
      Netlist.inputs =
        [ { Netlist.port_name = "a"; port_width = 8 };
          { Netlist.port_name = "b"; port_width = 8 };
          { Netlist.port_name = "c"; port_width = 8 } ];
      instances =
        [ { Netlist.inst_name = "u0";
            inst_module = adder_module ();
            connections = [ ("x", sig_ "a"); ("y", sig_ "b") ] };
          { Netlist.inst_name = "u1";
            inst_module = adder_module ();
            connections = [ ("x", sig_ "u0.s"); ("y", sig_ "c") ] } ];
      outputs = [ ("out", sig_ "u1.s") ];
    }
  in
  let d = Netlist.elaborate top in
  let sim = Sim.create d in
  let outs =
    Sim.cycle sim [ ("a", bv 8 10); ("b", bv 8 20); ("c", bv 8 30) ]
  in
  check_int "chained adders" 60 (out_int outs "out");
  (* Internal signals are visible under hierarchical names. *)
  check_int "u0.s peek" 30 (Bitvec.to_int (Sim.peek sim "u0.s"))

let test_hierarchy_errors () =
  let open Expr in
  let missing =
    {
      (Netlist.empty "top") with
      Netlist.instances =
        [ { Netlist.inst_name = "u0";
            inst_module = adder_module ();
            connections = [ ("x", const ~width:8 0) ] } ];
    }
  in
  check_bool "missing connection rejected" true
    (match Netlist.elaborate missing with
    | exception Netlist.Elaboration_error _ -> true
    | _ -> false);
  let extra =
    {
      (Netlist.empty "top") with
      Netlist.instances =
        [ { Netlist.inst_name = "u0";
            inst_module = adder_module ();
            connections =
              [ ("x", const ~width:8 0); ("y", const ~width:8 0);
                ("zz", const ~width:8 0) ] } ];
    }
  in
  check_bool "extra connection rejected" true
    (match Netlist.elaborate extra with
    | exception Netlist.Elaboration_error _ -> true
    | _ -> false)

(* --- memories ------------------------------------------------------------ *)

let regfile () =
  let open Expr in
  {
    (Netlist.empty "regfile") with
    Netlist.inputs =
      [ { Netlist.port_name = "we"; port_width = 1 };
        { Netlist.port_name = "waddr"; port_width = 4 };
        { Netlist.port_name = "wdata"; port_width = 8 };
        { Netlist.port_name = "raddr"; port_width = 4 } ];
    mems =
      [ { Netlist.mem_name = "rf";
          word_width = 8;
          mem_size = 16;
          writes =
            [ { Netlist.wr_enable = sig_ "we";
                wr_addr = sig_ "waddr";
                wr_data = sig_ "wdata" } ];
          mem_init = None } ];
    outputs = [ ("rdata", mem_read "rf" (sig_ "raddr")) ];
  }

let test_memory () =
  let d = Netlist.elaborate (regfile ()) in
  let sim = Sim.create d in
  let step we waddr wdata raddr =
    out_int
      (Sim.cycle sim
         [ ("we", bv 1 (if we then 1 else 0));
           ("waddr", bv 4 waddr);
           ("wdata", bv 8 wdata);
           ("raddr", bv 4 raddr) ])
      "rdata"
  in
  check_int "initially zero" 0 (step true 3 42 3);
  (* Write committed at the clock edge: visible next cycle (read is
     asynchronous but the write is synchronous). *)
  check_int "write visible" 42 (step false 0 0 3);
  check_int "other word still zero" 0 (step true 3 99 5);
  check_int "overwrite" 99 (step false 0 0 3);
  check_int "peek_mem" 99 (Bitvec.to_int (Sim.peek_mem sim "rf" 3))

(* --- elaboration errors ---------------------------------------------------- *)

let test_elaboration_errors () =
  let open Expr in
  let expect_error name m =
    match Netlist.elaborate m with
    | exception Netlist.Elaboration_error _ -> ()
    | _ -> Alcotest.failf "%s: expected elaboration error" name
  in
  expect_error "duplicate wire"
    { (Netlist.empty "m") with
      Netlist.wires = [ ("w", const ~width:1 0); ("w", const ~width:1 1) ] };
  expect_error "unknown signal"
    { (Netlist.empty "m") with Netlist.outputs = [ ("o", sig_ "nope") ] };
  expect_error "width mismatch"
    { (Netlist.empty "m") with
      Netlist.wires = [ ("w", const ~width:4 1 +: const ~width:5 1) ];
      outputs = [ ("o", sig_ "w") ] };
  expect_error "comb cycle"
    { (Netlist.empty "m") with
      Netlist.wires =
        [ ("x", sig_ "y" +: const ~width:4 1); ("y", sig_ "x") ];
      outputs = [ ("o", sig_ "x") ] };
  expect_error "bad mux select"
    { (Netlist.empty "m") with
      Netlist.wires =
        [ ("w", mux (const ~width:2 1) (const ~width:4 0) (const ~width:4 1)) ];
      outputs = [ ("o", sig_ "w") ] };
  expect_error "reg next width"
    { (Netlist.empty "m") with
      Netlist.regs = [ Netlist.reg ~name:"r" ~width:8 (const ~width:4 0) ] };
  expect_error "mem init size"
    { (Netlist.empty "m") with
      Netlist.mems =
        [ { Netlist.mem_name = "m0";
            word_width = 8;
            mem_size = 4;
            writes = [];
            mem_init = Some (Array.make 3 (Bitvec.zero 8)) } ] }

(* --- lint ------------------------------------------------------------------ *)

let test_lint () =
  let open Expr in
  let m =
    {
      (Netlist.empty "linty") with
      Netlist.inputs =
        [ { Netlist.port_name = "used"; port_width = 4 };
          { Netlist.port_name = "dangling"; port_width = 4 } ];
      wires =
        [ ("w", sig_ "used" +: const ~width:4 1);
          ("degenerate",
           mux (bit (sig_ "used") 0) (const ~width:4 3) (const ~width:4 3)) ];
      regs = [ Netlist.reg ~name:"silent" ~width:2 (const ~width:2 0) ];
      outputs = [ ("o", sig_ "w"); ("k", const ~width:3 5) ];
      mems =
        [ { Netlist.mem_name = "dead";
            word_width = 4;
            mem_size = 2;
            writes = [];
            mem_init = None } ];
    }
  in
  let issues = Lint.check (Netlist.elaborate m) in
  let has p = List.exists p issues in
  check_bool "unused input" true
    (has (function Lint.Unused_signal "dangling" -> true | _ -> false));
  check_bool "unread register" true
    (has (function Lint.Unread_register "silent" -> true | _ -> false));
  check_bool "dead memory" true
    (has (function Lint.Memory_never_read "dead" -> true | _ -> false));
  check_bool "never written memory" true
    (has (function Lint.Memory_never_written "dead" -> true | _ -> false));
  check_bool "constant output" true
    (has (function Lint.Constant_output "k" -> true | _ -> false));
  check_bool "degenerate mux" true
    (has (function Lint.Degenerate_mux "degenerate" -> true | _ -> false));
  check_bool "no false positive on w" false
    (has (function Lint.Unused_signal "w" -> true | _ -> false))

(* --- simulator vs AIG synthesis -------------------------------------------- *)

(* Build the one-cycle transition function as an AIG whose primary inputs
   are the design inputs followed by the state elements, then co-simulate
   it against the interpreter for [cycles] random cycles. *)
let aig_stepper design =
  let g = Aig.create () in
  let input_words =
    List.map
      (fun p -> (p.Netlist.port_name, Word.inputs g p.Netlist.port_width))
      design.Netlist.e_inputs
  in
  let state_elts = Synth.state_elements design in
  let state_words =
    List.map (fun (id, w, _) -> (id, Word.inputs g w)) state_elts
  in
  let outputs, next =
    Synth.build design ~g
      ~inputs:(fun n -> List.assoc n input_words)
      ~state:(fun id -> List.assoc id state_words)
  in
  fun in_vals state_vals ->
    (* Primary input order = allocation order: inputs then state. *)
    let bits =
      Array.concat
        (List.map
           (fun p -> Bitvec.to_bits (List.assoc p.Netlist.port_name in_vals))
           design.Netlist.e_inputs
        @ List.map Bitvec.to_bits state_vals)
    in
    let values = Aig.simulate g bits in
    let outs = List.map (fun (n, w) -> (n, Word.to_bitvec g values w)) outputs in
    let nexts = List.map (fun (_, w) -> Word.to_bitvec g values w) next in
    (outs, nexts)

let check_sim_vs_synth ~name ~cycles design gen_inputs =
  let d = Netlist.elaborate design in
  let sim = Sim.create d in
  let step = aig_stepper d in
  let state_elts = Synth.state_elements d in
  let state = ref (List.map (fun (_, _, init) -> init) state_elts) in
  let st = Random.State.make [| Hashtbl.hash name |] in
  for cycle = 0 to cycles - 1 do
    let ins = gen_inputs st in
    let sim_outs = Sim.cycle sim ins in
    let aig_outs, next_state = step ins !state in
    List.iter
      (fun (n, v) ->
        let v' = List.assoc n aig_outs in
        if not (Bitvec.equal v v') then
          Alcotest.failf "%s cycle %d output %s: sim %s, aig %s" name cycle n
            (Bitvec.to_string v) (Bitvec.to_string v'))
      sim_outs;
    state := next_state
  done

let test_synth_counter () =
  check_sim_vs_synth ~name:"counter" ~cycles:50 (counter ()) (fun _ -> [])

let test_synth_accumulator () =
  check_sim_vs_synth ~name:"acc" ~cycles:100 (accumulator ()) (fun st ->
      [ ("en", Bitvec.random st ~width:1);
        ("clr", Bitvec.random st ~width:1);
        ("d", Bitvec.random st ~width:16) ])

let test_synth_regfile () =
  check_sim_vs_synth ~name:"regfile" ~cycles:200 (regfile ()) (fun st ->
      [ ("we", Bitvec.random st ~width:1);
        ("waddr", Bitvec.random st ~width:4);
        ("wdata", Bitvec.random st ~width:8);
        ("raddr", Bitvec.random st ~width:4) ])

let test_synth_fig1 () =
  check_sim_vs_synth ~name:"fig1" ~cycles:200 (fig1_module ~first:true)
    (fun st ->
      [ ("a", Bitvec.random st ~width:8);
        ("b", Bitvec.random st ~width:8);
        ("c", Bitvec.random st ~width:8) ])

(* A design exercising the trickier operators end to end. *)
let ops_soup () =
  let open Expr in
  {
    (Netlist.empty "soup") with
    Netlist.inputs =
      [ { Netlist.port_name = "a"; port_width = 8 };
        { Netlist.port_name = "b"; port_width = 8 } ];
    wires =
      [ ("shifted", sig_ "a" <<: slice (sig_ "b") ~hi:3 ~lo:0);
        ("cmp",
         concat
           [ sig_ "a" <+ sig_ "b"; sig_ "a" <: sig_ "b"; sig_ "a" ==: sig_ "b";
             sig_ "a" <=+ sig_ "b" ]);
        ("arith", (sig_ "a" *: sig_ "b") -: (sig_ "a" ^: sig_ "b"));
        ("red", concat [ red_and (sig_ "a"); red_or (sig_ "b"); red_xor (sig_ "a") ]) ];
    regs =
      [ Netlist.reg ~name:"hist" ~width:8 (sig_ "shifted" +: sig_ "arith") ];
    outputs =
      [ ("o1", sig_ "shifted");
        ("o2", zext (sig_ "cmp") 8 +: sig_ "hist");
        ("o3", sig_ "red");
        ("o4", sig_ "a" >>+ slice (sig_ "b") ~hi:2 ~lo:0) ];
  }

let test_synth_ops_soup () =
  check_sim_vs_synth ~name:"soup" ~cycles:300 (ops_soup ()) (fun st ->
      [ ("a", Bitvec.random st ~width:8); ("b", Bitvec.random st ~width:8) ])

(* --- VCD -------------------------------------------------------------------- *)

let test_vcd () =
  let d = Netlist.elaborate (accumulator ()) in
  let sim = Sim.create d in
  let buf = Buffer.create 256 in
  let vcd = Vcd.create buf d sim in
  for i = 0 to 3 do
    ignore
      (Sim.cycle sim
         [ ("en", bv 1 1); ("clr", bv 1 0); ("d", bv 16 (i + 1)) ]);
    Vcd.sample vcd
  done;
  let text = Buffer.contents buf in
  check_bool "has header" true
    (String.length text > 0
    && String.sub text 0 5 = "$date");
  let contains needle =
    let n = String.length needle and h = String.length text in
    let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "declares sum" true (contains "$var wire 16");
  check_bool "has timesteps" true (contains "#3");
  check_bool "binary values" true (contains "b")

let test_vcd_clamps_before_first_cycle () =
  (* Sampling before the first clock edge used to emit "#-1" (the
     cycles_run - 1 convention underflows); the timestamp must clamp
     to 0 and stay aligned afterwards. *)
  let d = Netlist.elaborate (accumulator ()) in
  let sim = Sim.create d in
  let buf = Buffer.create 256 in
  let vcd = Vcd.create buf d sim in
  Vcd.sample vcd;
  ignore (Sim.cycle sim [ ("en", bv 1 1); ("clr", bv 1 0); ("d", bv 16 5) ]);
  Vcd.sample vcd;
  let text = Buffer.contents buf in
  let contains needle =
    let n = String.length needle and h = String.length text in
    let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "no negative timestamp" false (contains "#-");
  check_bool "pre-cycle sample lands at #0" true (contains "#0")

let suite =
  [ Alcotest.test_case "counter" `Quick test_counter;
    Alcotest.test_case "accumulator" `Quick test_accumulator;
    Alcotest.test_case "Fig.1 RTL divergence" `Quick test_fig1_rtl_divergence;
    Alcotest.test_case "hierarchy" `Quick test_hierarchy;
    Alcotest.test_case "hierarchy errors" `Quick test_hierarchy_errors;
    Alcotest.test_case "memory" `Quick test_memory;
    Alcotest.test_case "elaboration errors" `Quick test_elaboration_errors;
    Alcotest.test_case "lint" `Quick test_lint;
    Alcotest.test_case "synth=sim: counter" `Quick test_synth_counter;
    Alcotest.test_case "synth=sim: accumulator" `Quick test_synth_accumulator;
    Alcotest.test_case "synth=sim: regfile" `Quick test_synth_regfile;
    Alcotest.test_case "synth=sim: fig1" `Quick test_synth_fig1;
    Alcotest.test_case "synth=sim: ops soup" `Quick test_synth_ops_soup;
    Alcotest.test_case "vcd" `Quick test_vcd;
    Alcotest.test_case "vcd clamps pre-cycle sample" `Quick
      test_vcd_clamps_before_first_cycle ]
