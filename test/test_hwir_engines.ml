(* Differential fuzz of the compiled HWIR engine against the
   tree-walking interpreter.

   The compiled engine (Exec.create ~engine:`Compiled, the default)
   lowers the program through the verified normal form (Norm) onto the
   shared slot-indexed kernel and must be observationally identical to
   the Interp oracle: same values and the same Runtime_error messages,
   including evaluation order (which operand of a division fails
   first).  Driven over random well-typed HWIR programs exercising the
   full conditioned language (calls, counted and bounded loops, early
   returns, arrays with dynamic and const-foldable indices, division)
   and over every bundled design's SLM.

   Also under test here: the source-located rejection diagnostics for
   every VNF rule, and the machine-checked well-formedness gate
   (Norm.validate) on hand-built broken normal forms. *)

module Bitvec = Dfv_bitvec.Bitvec
module Ast = Dfv_hwir.Ast
module Typecheck = Dfv_hwir.Typecheck
module Interp = Dfv_hwir.Interp
module Norm = Dfv_hwir.Norm
module Compile = Dfv_hwir.Compile
module Exec = Dfv_hwir.Exec
open Dfv_designs

(* --- observation: value or error message -------------------------------- *)

type obs = Value of Interp.value | Raised of string

let obs_eq a b =
  match (a, b) with
  | Value (Interp.Vint x), Value (Interp.Vint y) -> Bitvec.equal x y
  | Value (Interp.Varr x), Value (Interp.Varr y) ->
    Array.length x = Array.length y
    && Array.for_all2 Bitvec.equal x y
  | Raised x, Raised y -> String.equal x y
  | _ -> false

let pp_obs fmt = function
  | Value (Interp.Vint v) -> Bitvec.pp fmt v
  | Value (Interp.Varr a) ->
    Format.fprintf fmt "[|";
    Array.iter (fun v -> Format.fprintf fmt "%a; " Bitvec.pp v) a;
    Format.fprintf fmt "|]"
  | Raised m -> Format.fprintf fmt "raised %S" m

let obs_t = Alcotest.testable pp_obs obs_eq

let observe f =
  match f () with
  | v -> Value v
  | exception Interp.Runtime_error m -> Raised m

let random_value st (ty : Ast.ty) =
  match ty with
  | Ast.Tint { width; _ } -> Interp.Vint (Bitvec.random st ~width)
  | Ast.Tarray (Ast.Tint { width; _ }, n) ->
    Interp.Varr (Array.init n (fun _ -> Bitvec.random st ~width))
  | Ast.Tarray (Ast.Tarray _, _) -> assert false

(* Drive both engines on random entry arguments and hold them to
   identical observations.  Also checks that lowering is deterministic
   and that the compiled path really is the compiled path. *)
let diff_program ?(samples = 50) ~seed name prog =
  let st = Random.State.make [| seed |] in
  let params, _ = Typecheck.entry_signature prog in
  let compiled = Exec.create ~engine:`Compiled prog in
  let interp = Exec.create ~engine:`Interp prog in
  Alcotest.(check bool) (name ^ ": default engine is compiled") true
    (Exec.engine (Exec.create prog) = `Compiled);
  Alcotest.(check bool) (name ^ ": auto picks compiled") true
    (Exec.engine (Exec.auto prog) = `Compiled);
  Alcotest.(check bool) (name ^ ": lowering deterministic") true
    (Norm.lower prog = Norm.lower prog);
  for i = 1 to samples do
    let args = List.map (fun (_, ty) -> random_value st ty) params in
    let oi = observe (fun () -> Exec.run interp args) in
    let oc = observe (fun () -> Exec.run compiled args) in
    Alcotest.check obs_t (Printf.sprintf "%s: sample %d" name i) oi oc
  done

(* --- random program generation ------------------------------------------ *)

(* A fixed environment wide enough to exercise every lowering path:
   unsigned and signed scalars, a bool, two arrays (one parameter, one
   zero-initialized local), plus two helper functions — one with an
   early return (exercises the return-flag threading), one taking a
   whole array (exercises by-value array passing and loop unrolling). *)

let ty_u8 = Ast.uint 8
let ty_s12 = Ast.sint 12
let ty_u32 = Ast.uint 32

let scalar_pool = [| ty_u8; ty_s12; ty_u32; Ast.bool_ty |]

let scalar_vars =
  [ ("a", ty_u8); ("b", ty_s12); ("c", ty_u32); ("f", Ast.bool_ty);
    ("t", ty_u8); ("u", ty_s12); ("n", ty_u32); ("g", Ast.bool_ty) ]

let mutable_vars = [ ("t", ty_u8); ("u", ty_s12); ("n", ty_u32);
                     ("g", Ast.bool_ty) ]

let pick st arr = arr.(Random.State.int st (Array.length arr))

let helper_mix =
  let open Ast in
  {
    fname = "mix";
    params = [ ("p", uint 8); ("q", uint 8) ];
    ret = uint 8;
    locals = [ ("r", uint 8) ];
    body =
      [ If (var "p" <^ var "q", [ ret (var "q" -^ var "p") ], []);
        assign "r" ((var "p" &^ u 8 0x5a) |^ Binop (Xor, var "q", u 8 3));
        ret (var "r" +^ u 8 1) ];
  }

let helper_suma =
  let open Ast in
  {
    fname = "suma";
    params = [ ("w", Tarray (uint 8, 4)) ];
    ret = uint 8;
    locals = [ ("sum", uint 8) ];
    body =
      [ For
          {
            ivar = "k";
            count = 4;
            body =
              [ assign "sum"
                  (var "sum" +^ idx "w" (cast (uint 3) (var "k"))) ];
          };
        ret (var "sum") ];
  }

let rec gen_expr st depth (ty : Ast.ty) : Ast.expr =
  let open Ast in
  let w, signed =
    match ty with
    | Tint { width; signed } -> (width, signed)
    | Tarray _ -> assert false
  in
  let lit () = Int (Bitvec.random st ~width:w, signed) in
  let leaf () =
    let cands = List.filter (fun (_, t) -> ty_equal t ty) scalar_vars in
    if cands <> [] && Random.State.bool st then
      Var (fst (List.nth cands (Random.State.int st (List.length cands))))
    else lit ()
  in
  if depth <= 0 then leaf ()
  else
    let d = depth - 1 in
    let sub t = gen_expr st d t in
    let is_bool = ty_equal ty bool_ty in
    match Random.State.int st 14 with
    | 0 -> leaf ()
    | 1 ->
      if is_bool && Random.State.bool st then Unop (Lnot, sub bool_ty)
      else Unop ((if Random.State.bool st then Not else Neg), sub ty)
    | 2 ->
      let op = pick st [| Add; Sub; Mul; And; Or; Xor |] in
      Binop (op, sub ty, sub ty)
    | 3 ->
      (* Division by a dynamic divisor: both engines must raise
         "division by zero" at the same evaluation point when it is. *)
      Binop ((if Random.State.bool st then Div else Rem), sub ty, sub ty)
    | 4 -> Binop ((if Random.State.bool st then Shl else Shr), sub ty,
                  sub (uint 3))
    | 5 when is_bool ->
      let t = pick st scalar_pool in
      Binop (pick st [| Eq; Ne; Lt; Le |], sub t, sub t)
    | 6 when is_bool ->
      Binop ((if Random.State.bool st then Land else Lor), sub bool_ty,
             sub bool_ty)
    | 7 -> Cond (gen_expr st d bool_ty, sub ty, sub ty)
    | 8 -> Cast (ty, sub (pick st scalar_pool))
    | 9 when not signed ->
      let src_w = w + Random.State.int st 8 in
      let lo = Random.State.int st (src_w - w + 1) in
      Bitsel (Cast (uint src_w, sub (pick st scalar_pool)), lo + w - 1, lo)
    | 10 when ty_equal ty ty_u8 ->
      (* Dynamic index in 0..7 over a size-4 array: out-of-bounds about
         half the time, and the bounds-check message must match. *)
      let arr = if Random.State.bool st then "xs" else "zs" in
      Index (arr, Cast (uint 3, sub (uint 3)))
    | 11 when ty_equal ty ty_u8 ->
      (* Const-foldable index (a cast literal dodges the typechecker's
         static bounds check): exercises the immediate-index paths,
         including the compile-time out-of-bounds placeholder. *)
      Index ("xs", Cast (uint 3, Int (Bitvec.random st ~width:3, false)))
    | 12 when ty_equal ty ty_u8 ->
      if Random.State.bool st then Call ("mix", [ sub ty_u8; sub ty_u8 ])
      else
        Call ("suma", [ Var (if Random.State.bool st then "xs" else "zs") ])
    | _ -> leaf ()

let rec gen_stmts st depth ctr n : Ast.stmt list =
  List.concat (List.init n (fun _ -> gen_stmt st depth ctr))

and gen_stmt st depth ctr : Ast.stmt list =
  let open Ast in
  match Random.State.int st (if depth <= 0 then 3 else 8) with
  | 0 | 1 ->
    let v, ty =
      List.nth mutable_vars (Random.State.int st (List.length mutable_vars))
    in
    [ Assign (Lvar v, gen_expr st 2 ty) ]
  | 2 ->
    [ Assign
        ( Lindex ("zs", Cast (uint 3, gen_expr st 1 (uint 3))),
          gen_expr st 2 ty_u8 ) ]
  | 3 ->
    (* Whole-array copy, then element stores see the new contents. *)
    [ Assign (Lvar "zs", Var "xs") ]
  | 4 ->
    let t = gen_stmts st (depth - 1) ctr (1 + Random.State.int st 2) in
    let e =
      if Random.State.bool st then []
      else gen_stmts st (depth - 1) ctr (1 + Random.State.int st 2)
    in
    let t =
      if Random.State.int st 3 = 0 then t @ [ ret (gen_expr st 1 ty_u8) ]
      else t
    in
    [ If (gen_expr st 2 bool_ty, t, e) ]
  | 5 ->
    incr ctr;
    let iv = Printf.sprintf "i%d" !ctr in
    [ For
        {
          ivar = iv;
          count = Random.State.int st 4;
          body =
            (assign "n" (var "n" +^ var iv)
            :: gen_stmts st (depth - 1) ctr (1 + Random.State.int st 2));
        } ]
  | 6 ->
    [ Bounded_while
        {
          cond = gen_expr st 2 bool_ty;
          max_iter = 1 + Random.State.int st 3;
          body =
            gen_stmts st (depth - 1) ctr 1
            @ [ assign "g" (Unop (Lnot, var "g")) ];
        } ]
  | _ -> [ Assign (Lvar "t", gen_expr st 3 ty_u8) ]

let gen_program seed : Ast.program =
  let st = Random.State.make [| seed |] in
  let ctr = ref 0 in
  let body =
    gen_stmts st 3 ctr (2 + Random.State.int st 4)
    @ [ Ast.ret (gen_expr st 3 ty_u8) ]
  in
  let main =
    {
      Ast.fname = "main";
      params =
        [ ("a", ty_u8); ("b", ty_s12); ("c", ty_u32); ("f", Ast.bool_ty);
          ("xs", Ast.Tarray (ty_u8, 4)) ];
      ret = ty_u8;
      locals =
        [ ("t", ty_u8); ("u", ty_s12); ("n", ty_u32); ("g", Ast.bool_ty);
          ("zs", Ast.Tarray (ty_u8, 4)) ];
      body;
    }
  in
  { Ast.funcs = [ helper_mix; helper_suma; main ]; entry = "main" }

let test_random_programs () =
  for seed = 1 to 40 do
    let prog = gen_program seed in
    (* The generator must produce well-typed programs; a Type_error
       here is a generator bug, not an engine bug. *)
    Typecheck.check prog;
    diff_program ~seed:(1000 + seed) ~samples:25
      (Printf.sprintf "gen%d" seed)
      prog
  done

(* --- every bundled design SLM ------------------------------------------- *)

let test_designs () =
  let fir = Fir.make ~taps:[ 3; -5; 7; 2 ] () in
  diff_program ~seed:201 "fir_exact" fir.Fir.slm_exact;
  diff_program ~seed:202 "fir_cstyle" fir.Fir.slm_cstyle;
  let gcd = Gcd.make ~width:8 in
  diff_program ~seed:203 "gcd" gcd.Gcd.slm;
  let alu = Alu.make ~width:8 () in
  diff_program ~seed:204 "alu" alu.Alu.slm;
  let uart = Uart.make () in
  diff_program ~seed:205 "uart" uart.Uart.slm;
  let mf = Minifloat.make () in
  diff_program ~seed:206 "minifloat_full" mf.Minifloat.full;
  diff_program ~seed:207 "minifloat_lite" mf.Minifloat.lite;
  let conv = Conv_image.make ~kernel:Conv_image.sharpen ~shift:2 () in
  diff_program ~seed:208 "conv_window" conv.Conv_image.slm_window;
  let chain = Image_chain.make () in
  diff_program ~seed:209 "image_chain" chain.Image_chain.slm;
  List.iter
    (fun block ->
      diff_program ~seed:210 ("chain_" ^ Image_chain.block_name block)
        (Image_chain.block_slm chain block))
    Image_chain.all_blocks

(* --- runtime error-message parity --------------------------------------- *)

let msg_of engine prog args =
  let ex = Exec.create ~engine prog in
  match Exec.run ex args with
  | _ -> "no exception"
  | exception Interp.Runtime_error m -> m

let check_raises_both name prog args expected =
  List.iter
    (fun (ename, engine) ->
      Alcotest.(check string)
        (Printf.sprintf "%s (%s)" name ename)
        expected (msg_of engine prog args))
    [ ("interp", `Interp); ("compiled", `Compiled) ]

let ui8 v = Interp.Vint (Bitvec.create ~width:8 v)
let uarr ?(width = 8) vs =
  Interp.Varr (Array.map (fun v -> Bitvec.create ~width v) (Array.of_list vs))

let test_error_parity () =
  let open Ast in
  let one_fn ?(params = [ ("a", uint 8); ("b", uint 8) ]) ?(locals = []) body
      =
    {
      funcs = [ { fname = "main"; params; ret = uint 8; locals; body } ];
      entry = "main";
    }
  in
  check_raises_both "div by zero"
    (one_fn [ ret (var "a" /^ var "b") ])
    [ ui8 7; ui8 0 ] "division by zero";
  check_raises_both "rem by zero"
    (one_fn [ ret (var "a" %^ var "b") ])
    [ ui8 7; ui8 0 ] "remainder by zero";
  (* The left operand is evaluated first: its failure wins. *)
  check_raises_both "eval order"
    (one_fn
       ~params:[ ("a", uint 8); ("b", uint 8); ("xs", Tarray (uint 8, 4)) ]
       [ ret (idx "xs" (var "a") /^ (var "b" -^ var "b")) ])
    [ ui8 200; ui8 3; uarr [ 1; 2; 3; 4 ] ]
    "index 200 out of bounds for xs (size 4)";
  check_raises_both "load out of bounds"
    (one_fn
       ~params:[ ("i", uint 8); ("xs", Tarray (uint 8, 4)) ]
       [ ret (idx "xs" (var "i")) ])
    [ ui8 9; uarr [ 1; 2; 3; 4 ] ]
    "index 9 out of bounds for xs (size 4)";
  check_raises_both "store out of bounds"
    (one_fn
       ~params:[ ("i", uint 8) ]
       ~locals:[ ("ys", Tarray (uint 8, 4)) ]
       [ Assign (Lindex ("ys", var "i"), u 8 1); ret (u 8 0) ])
    [ ui8 7 ] "store index 7 out of bounds for ys (size 4)";
  check_raises_both "no return (zero-trip for)"
    (one_fn [ For { ivar = "k"; count = 0; body = [ ret (u 8 1) ] } ])
    [ ui8 0; ui8 0 ] "main: function finished without returning";
  check_raises_both "no return (never-true bounded loop)"
    (one_fn
       [ Bounded_while
           {
             cond = var "a" <^ u 8 0;
             max_iter = 3;
             body = [ ret (var "a") ];
           } ])
    [ ui8 5; ui8 0 ] "main: function finished without returning";
  (* Entry binding: same messages for every malformed argument list. *)
  let bindp =
    one_fn
      ~params:[ ("a", uint 8); ("xs", Tarray (uint 8, 4)) ]
      [ ret (var "a") ]
  in
  check_raises_both "arity" bindp [ ui8 1 ] "main: expected 2 arguments, got 1";
  check_raises_both "scalar width" bindp
    [ Interp.Vint (Bitvec.create ~width:9 1); uarr [ 0; 0; 0; 0 ] ]
    "main: argument a has width 9, expected 8";
  check_raises_both "array size" bindp
    [ ui8 1; uarr [ 0; 0; 0 ] ]
    "main: argument xs has 3 elements, expected 4";
  check_raises_both "element width" bindp
    [ ui8 1; uarr ~width:9 [ 0; 0; 0; 0 ] ]
    "main: argument xs has a 9-bit element, expected 8";
  check_raises_both "scalar/array shape" bindp
    [ uarr [ 0; 0; 0; 0 ]; uarr [ 0; 0; 0; 0 ] ]
    "main: argument a has the wrong shape";
  check_raises_both "array/scalar shape" bindp
    [ ui8 1; ui8 1 ]
    "main: argument xs has the wrong shape";
  (* A wider-than-62-bit index cannot be in bounds; both engines must
     render the same (saturated) message. *)
  let widep =
    one_fn
      ~params:[ ("j", uint 64); ("xs", Tarray (uint 8, 4)) ]
      [ ret (idx "xs" (var "j")) ]
  in
  let args = [ Interp.Vint (Bitvec.create ~width:64 (-1)); uarr [ 1; 2; 3; 4 ] ] in
  Alcotest.(check string) "wide index parity"
    (msg_of `Interp widep args)
    (msg_of `Compiled widep args)

(* --- rejection diagnostics ---------------------------------------------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let reject_case name ?budget ?path prog ~rule ~func =
  match Norm.lower ?budget prog with
  | _ -> Alcotest.fail (name ^ ": expected Norm.Rejected")
  | exception Norm.Rejected d ->
    Alcotest.(check string) (name ^ ": rule") rule d.Norm.d_rule;
    Alcotest.(check string) (name ^ ": func") func d.Norm.d_loc.Norm.l_func;
    (match path with
    | Some p ->
      Alcotest.(check string) (name ^ ": path") p d.Norm.d_loc.Norm.l_path
    | None -> ());
    let rendered = Norm.diagnostic_to_string d in
    Alcotest.(check bool)
      (name ^ ": rendering names the rule")
      true (contains rendered rule)

let test_rejections () =
  let open Ast in
  let main ?(params = [ ("a", uint 8) ]) ?(locals = []) body =
    {
      funcs = [ { fname = "main"; params; ret = uint 8; locals; body } ];
      entry = "main";
    }
  in
  reject_case "while"
    (main
       [ assign "a" (var "a" +^ u 8 1);
         While (var "a" <^ u 8 10, [ ret (var "a") ]) ])
    ~rule:"VNF-L1" ~func:"main" ~path:"body[1]";
  (* Source location threads through nesting: a while inside an if's
     then-branch inside a for body. *)
  reject_case "nested while"
    (main
       [ For
           {
             ivar = "i";
             count = 2;
             body =
               [ If
                   ( var "a" <^ u 8 9,
                     [ assign "a" (u 8 0);
                       While (var "a" <^ u 8 10, []) ],
                     [] ) ];
           };
         ret (var "a") ])
    ~rule:"VNF-L1" ~func:"main" ~path:"body[0]/for[0]/then[1]";
  reject_case "alloc"
    (main
       [ Alloc { var = "buf"; elem = uint 8; size = var "a" }; ret (u 8 0) ])
    ~rule:"VNF-M1" ~func:"main" ~path:"body[0]";
  reject_case "alias"
    (main
       ~locals:[ ("xs", Tarray (uint 8, 4)) ]
       [ Alias { var = "p"; target = "xs" }; ret (u 8 0) ])
    ~rule:"VNF-M2" ~func:"main" ~path:"body[0]";
  reject_case "extern call"
    (main [ Extern_call ("printf", [ var "a" ]); ret (var "a") ])
    ~rule:"VNF-X1" ~func:"main" ~path:"body[0]";
  reject_case "ill-typed"
    (main [ ret (var "a" +^ u 9 1) ])
    ~rule:"VNF-T0" ~func:"main" ~path:"main";
  reject_case "budget" ~budget:32
    (main
       [ For
           {
             ivar = "i";
             count = 64;
             body = [ assign "a" (var "a" +^ u 8 1) ];
           };
         ret (var "a") ])
    ~rule:"VNF-S1" ~func:"main";
  (* Rejection is what `auto` falls back on; explicit `Compiled is strict. *)
  let unconditioned = main [ While (Bool true, [ ret (var "a") ]) ] in
  Alcotest.(check bool) "auto falls back to interp" true
    (Exec.engine (Exec.auto unconditioned) = `Interp);
  Alcotest.(check bool) "explicit compiled is strict" true
    (match Exec.create ~engine:`Compiled unconditioned with
    | _ -> false
    | exception Norm.Rejected _ -> true);
  Alcotest.check obs_t "fallback still runs"
    (Value (ui8 3))
    (observe (fun () -> Exec.run (Exec.auto unconditioned) [ ui8 3 ]))

(* --- the well-formedness gate on hand-built normal forms ----------------- *)

let mk_vnf ?(params = [ Norm.P_int { p_name = "a"; p_width = 8; p_slot = 0 } ])
    ?(slots = [| 8; 8 |]) ?(arrays = [||]) ?(insts = [||])
    ?(ret = Norm.Rslot 0) () : Norm.vnf =
  {
    Norm.v_entry = "main";
    v_params = params;
    v_slots = slots;
    v_arrays = arrays;
    v_insts = insts;
    v_ret = ret;
    v_stats =
      {
        Norm.n_insts = Array.length insts;
        n_slots = Array.length slots;
        n_arrays = Array.length arrays;
        n_folded = 0;
        n_cse = 0;
      };
  }

let gate_rejects name vnf =
  Alcotest.(check bool) (name ^ ": validate") true
    (match Norm.validate vnf with
    | () -> false
    | exception Norm.Ill_formed _ -> true);
  (* The backend re-validates its input: a broken normal form must not
     reach the kernel even if handed to Compile directly. *)
  Alcotest.(check bool) (name ^ ": compile re-validates") true
    (match Compile.compile vnf with
    | _ -> false
    | exception Norm.Ill_formed _ -> true)

let test_validate_gates () =
  let open Norm in
  (* Sanity: a minimal correct form passes and runs. *)
  let ok =
    mk_vnf
      ~insts:
        [| { i_dst = 1; i_guard = Galways; i_op = Vmov (Oslot 0) } |]
      ~ret:(Rslot 1) ()
  in
  Norm.validate ok;
  Alcotest.check obs_t "minimal vnf runs"
    (Value (ui8 42))
    (observe (fun () -> Compile.run (Compile.compile ok) [ ui8 42 ]));
  gate_rejects "use before def"
    (mk_vnf
       ~insts:[| { i_dst = 1; i_guard = Galways; i_op = Vmov (Oslot 1) } |]
       ~ret:(Rslot 1) ());
  gate_rejects "return never defined"
    (mk_vnf ~insts:[||] ~ret:(Rslot 1) ());
  gate_rejects "guard slot not 1-bit"
    (mk_vnf
       ~insts:[| { i_dst = 1; i_guard = Gslot 0; i_op = Vmov (Oimm (Bitvec.zero 8)) } |]
       ());
  gate_rejects "width mismatch"
    (mk_vnf ~slots:[| 8; 4 |]
       ~insts:[| { i_dst = 1; i_guard = Galways; i_op = Vmov (Oslot 0) } |]
       ~ret:(Rslot 1) ());
  gate_rejects "frontend operator"
    (mk_vnf ~slots:[| 1; 1 |]
       ~params:[ P_int { p_name = "a"; p_width = 1; p_slot = 0 } ]
       ~insts:
         [| { i_dst = 1; i_guard = Galways;
              i_op = Vbin { op = Ast.Land; sa = false; a = Oslot 0;
                            b = Oslot 0 } } |]
       ~ret:(Rslot 1) ());
  gate_rejects "uninitialized array"
    (mk_vnf ~arrays:[| (8, 4) |]
       ~insts:
         [| { i_dst = 1; i_guard = Galways;
              i_op = Vload { arr = 0; idx = Oimm (Bitvec.zero 2);
                             aname = "xs" } } |]
       ~ret:(Rslot 1) ());
  gate_rejects "slot id out of range"
    (mk_vnf
       ~insts:[| { i_dst = 9; i_guard = Galways; i_op = Vmov (Oslot 0) } |]
       ());
  gate_rejects "zero-width slot" (mk_vnf ~slots:[| 8; 0 |] ())

(* --- compiled statistics ------------------------------------------------- *)

let test_stats () =
  let fir = Fir.make ~taps:[ 3; -5; 7; 2 ] () in
  let c = Compile.of_program fir.Fir.slm_exact in
  let s = Compile.stats c in
  Alcotest.(check bool) "insts counted" true (s.Norm.n_insts > 0);
  Alcotest.(check bool) "slots counted" true (s.Norm.n_slots > 0);
  Alcotest.(check bool) "window array counted" true (s.Norm.n_arrays >= 1);
  Alcotest.(check int) "stats match vnf" s.Norm.n_insts
    (Array.length (Compile.vnf c).Norm.v_insts)

let suite =
  [
    Alcotest.test_case "random programs: compiled = interp" `Quick
      test_random_programs;
    Alcotest.test_case "design SLMs: compiled = interp" `Quick test_designs;
    Alcotest.test_case "runtime error parity" `Quick test_error_parity;
    Alcotest.test_case "rejection diagnostics" `Quick test_rejections;
    Alcotest.test_case "well-formedness gates" `Quick test_validate_gates;
    Alcotest.test_case "compiled statistics" `Quick test_stats;
  ]
